package midas_test

import (
	"fmt"

	"github.com/midas-graph/midas"
	"github.com/midas-graph/midas/graph"
)

// ExampleNew selects canned patterns over a miniature database and
// prints the panel.
func ExampleNew() {
	db := graph.DatabaseOf(
		graph.Path(0, "C", "O", "C"),
		graph.Path(1, "C", "O", "C"),
		graph.Path(2, "C", "O", "C", "N"),
		graph.Star(3, "C", "N", "N", "N"),
	)
	eng := midas.New(db, midas.Options{
		Budget: midas.Budget{MinSize: 2, MaxSize: 3, Count: 2},
		SupMin: 0.5,
		Seed:   1,
	})
	for _, p := range eng.Patterns() {
		fmt.Printf("pattern of %d edges covering %.0f%% of the database\n",
			p.Size(), 100*midas.NewEvaluator(db, midas.Options{SupMin: 0.5}).Scov(p))
	}
	// Output:
	// pattern of 3 edges covering 25% of the database
	// pattern of 2 edges covering 75% of the database
}

// ExampleFormulator compares edge-at-a-time and pattern-at-a-time
// construction of one query.
func ExampleFormulator() {
	gui := midas.NewFormulator(10, 0)
	query := graph.Path(0, "C", "O", "C", "O", "C")
	pattern := graph.Path(1, "C", "O", "C")

	edge := gui.EdgeAtATime(query)
	plan := gui.PatternAtATime(query, []*graph.Graph{pattern})
	fmt.Printf("edge-at-a-time: %d steps\n", edge.Steps)
	fmt.Printf("pattern-at-a-time: %d steps using %d pattern drops\n",
		plan.Steps, len(plan.PatternsUsed))
	// Output:
	// edge-at-a-time: 9 steps
	// pattern-at-a-time: 2 steps using 2 pattern drops
}

// ExampleEditScript shows the modification hints between two graphs.
func ExampleEditScript() {
	from := graph.Path(0, "C", "O", "N")
	to := graph.Path(1, "C", "O", "S")
	steps, cost := midas.EditScript(from, to)
	fmt.Printf("cost %.0f: %s vertex %d to %s\n",
		cost, steps[0].Op, steps[0].Vertex, steps[0].Label)
	// Output:
	// cost 1: relabel-vertex vertex 2 to S
}
