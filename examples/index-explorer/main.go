// Index-explorer looks inside the MIDAS machinery: it mines frequent
// closed trees from a small database, prints their canonical strings
// and supports, builds the FCT-Index and IFE-Index, and shows how the
// index filters subgraph-containment candidates.
//
//	go run ./examples/index-explorer
package main

import (
	"fmt"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/dataset"
	"github.com/midas-graph/midas/internal/index"
	"github.com/midas-graph/midas/internal/iso"
	"github.com/midas-graph/midas/internal/tree"
)

func main() {
	db := dataset.EMolLike().GenerateDB(60, 21)
	fmt.Printf("database: %d molecules\n\n", db.Len())

	// Mine frequent closed trees (FCTs) with sup_min = 0.4, trees up to
	// 3 edges.
	set := tree.Mine(db, 0.4, 3)
	fcts := set.FrequentClosed()
	fmt.Printf("frequent closed trees (sup_min=0.4): %d\n", len(fcts))
	for _, f := range fcts {
		fmt.Printf("  %-28s support %3d/%d  tokens %v\n",
			f.Key, f.SupportCount(), db.Len(), tree.CanonicalTokens(f.G))
	}
	fmt.Printf("frequent edges: %d, infrequent edges: %d\n\n",
		len(set.FrequentEdges()), len(set.InfrequentEdges()))

	// Build the indices.
	ix := index.Build(set, db, nil)
	fmt.Printf("FCT-Index trie: %d features, %d nodes, depth %d\n",
		ix.Trie.Len(), ix.Trie.NodeCount(), ix.Trie.Depth())
	fmt.Printf("TG-matrix: %d non-zero entries; EG-matrix: %d\n\n",
		ix.TG.NNZ(), ix.EG.NNZ())

	// Containment filtering: how many candidate graphs does the index
	// leave for an example pattern, versus brute force?
	pattern := graph.Path(999, "C", "O", "C", "C")
	universe := db.IDs()
	cands := ix.CandidateGraphs(pattern, universe)
	truth := 0
	for _, g := range db.Graphs() {
		if iso.HasSubgraph(pattern, g, iso.Options{}) {
			truth++
		}
	}
	fmt.Printf("pattern %s:\n", pattern)
	fmt.Printf("  index candidates: %d of %d graphs (%d isomorphism checks saved)\n",
		len(cands), db.Len(), db.Len()-len(cands))
	fmt.Printf("  true containments: %d  (scov = %.3f)\n", truth, ix.Scov(pattern, db))
}
