// Query-formulation compares pattern-at-a-time and edge-at-a-time
// construction over a whole query workload, reporting the measures of
// the paper's §7: steps, QFT, VMT, missed percentage and reduction
// ratio.
//
//	go run ./examples/query-formulation
package main

import (
	"fmt"

	"github.com/midas-graph/midas"
	"github.com/midas-graph/midas/internal/dataset"
)

func main() {
	db := dataset.AIDSLike().GenerateDB(100, 5)
	eng := midas.New(db, midas.Options{
		Budget: midas.Budget{MinSize: 3, MaxSize: 6, Count: 10},
		SupMin: 0.4,
		Seed:   5,
	})
	patterns := eng.Patterns()
	fmt.Printf("GUI shows %d canned patterns\n", len(patterns))

	queries := dataset.Queries(eng.DB().Graphs(), 50, 6, 16, 9)
	fmt.Printf("workload: %d random connected subgraph queries (6-16 edges)\n\n", len(queries))

	gui := midas.NewFormulator(len(patterns), 0)
	var edgeSteps, patSteps, edgeQFT, patQFT, vmt float64
	for _, q := range queries {
		e := gui.EdgeAtATime(q)
		p := gui.PatternAtATime(q, patterns)
		edgeSteps += float64(e.Steps)
		patSteps += float64(p.Steps)
		edgeQFT += e.QFT
		patQFT += p.QFT
		vmt += p.VMT
	}
	n := float64(len(queries))
	fmt.Printf("edge-at-a-time:    avg %5.1f steps, avg QFT %5.1fs\n", edgeSteps/n, edgeQFT/n)
	fmt.Printf("pattern-at-a-time: avg %5.1f steps, avg QFT %5.1fs, avg VMT %4.1fs\n",
		patSteps/n, patQFT/n, vmt/n)
	fmt.Printf("\nmissed percentage (no usable pattern): %.1f%%\n",
		midas.MissedPercentage(queries, patterns))
	fmt.Printf("step reduction ratio vs edge-at-a-time: %.2f\n",
		midas.ReductionRatio(edgeSteps, patSteps))

	// Formulated queries get executed too: run the workload through the
	// filter-verify search engine backed by the maintained indices.
	searcher := eng.Searcher()
	matches, candidates, pruned := 0, 0, 0
	for _, q := range queries {
		rs, st := searcher.Query(q, 0)
		matches += len(rs)
		candidates += st.Candidates
		pruned += st.Pruned
	}
	fmt.Printf("\nexecuting the workload: %d total matches;", matches)
	fmt.Printf(" index pruned %d of %d containment checks (%.0f%%)\n",
		pruned, pruned+candidates, 100*float64(pruned)/float64(pruned+candidates))
}
