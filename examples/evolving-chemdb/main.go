// Evolving-chemdb replays the paper's running example (Examples
// 1.1/1.2): a chemist formulates a boronic-acid query on a PubChem-like
// GUI; then a batch of boronic esters is added to the repository and
// the query is formulated again with the refreshed pattern set.
//
//	go run ./examples/evolving-chemdb
package main

import (
	"fmt"

	"github.com/midas-graph/midas"
	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/dataset"
)

// boronicAcid builds a phenylboronic-acid-like query graph.
func boronicAcid() *graph.Graph {
	g := graph.New(0)
	ring := make([]int, 6)
	for i := range ring {
		ring[i] = g.AddVertex("C")
	}
	for i := range ring {
		g.AddEdge(ring[i], ring[(i+1)%6])
	}
	b := g.AddVertex("B")
	g.AddEdge(ring[0], b)
	for i := 0; i < 2; i++ {
		o := g.AddVertex("O")
		g.AddEdge(b, o)
		h := g.AddVertex("H")
		g.AddEdge(o, h)
	}
	for i := 1; i < 6; i++ {
		h := g.AddVertex("H")
		g.AddEdge(ring[i], h)
	}
	g.SortAdjacency()
	return g
}

func main() {
	db := dataset.PubChemLike().GenerateDB(150, 11)
	opts := midas.Options{
		Budget: midas.Budget{MinSize: 3, MaxSize: 9, Count: 16},
		SupMin: 0.4,
		// ε calibrated to the synthetic generator's graphlet drift
		// (see EXPERIMENTS.md); the paper's default is 0.1.
		Epsilon: 0.02,
		Seed:    3,
	}
	eng := midas.New(db, opts)
	stale := eng.Patterns()

	query := boronicAcid()
	fmt.Printf("query: boronic acid, %d vertices, %d edges\n\n", query.Order(), query.Size())

	// The GUI displays 16 patterns; users may delete one edge from a
	// dropped pattern (as John does with p4 in Example 1.1).
	gui := midas.NewFormulator(16, 1)

	edge := gui.EdgeAtATime(query)
	fmt.Printf("edge-at-a-time:              %2d steps, QFT %5.1fs\n", edge.Steps, edge.QFT)

	before := gui.PatternAtATime(query, stale)
	fmt.Printf("patterns (before evolution): %2d steps, QFT %5.1fs, %d pattern uses\n",
		before.Steps, before.QFT, len(before.PatternsUsed))

	// PubChem adds a batch of boronic esters (Example 1.2).
	inserted := dataset.BoronicEsters().Generate(60, db.NextID(), 12)
	rep, err := eng.Maintain(graph.Update{Insert: inserted})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nbatch of %d boronic esters added: major=%v, %d pattern(s) swapped\n\n",
		len(inserted), rep.Major, rep.Swaps)

	after := gui.PatternAtATime(query, eng.Patterns())
	fmt.Printf("patterns (after maintenance): %2d steps, QFT %5.1fs, %d pattern uses\n",
		after.Steps, after.QFT, len(after.PatternsUsed))

	fmt.Printf("\nstep reduction vs edge-at-a-time: %.0f%%\n",
		100*midas.ReductionRatio(float64(edge.Steps), float64(after.Steps)))
	if after.Steps < before.Steps {
		fmt.Printf("refresh saved %d further steps over the stale GUI\n", before.Steps-after.Steps)
	}

	// The refreshed patterns shine on queries for the NEW family: take
	// a boronic-ester query drawn from the inserted compounds
	// (Example 1.2's bottom-up search for boronic esters).
	esterQuery := dataset.Queries(inserted, 1, 10, 14, 99)[0]
	fmt.Printf("\nboronic-ester query (%d vertices, %d edges):\n",
		esterQuery.Order(), esterQuery.Size())
	staleEster := gui.PatternAtATime(esterQuery, stale)
	freshEster := gui.PatternAtATime(esterQuery, eng.Patterns())
	fmt.Printf("  stale GUI:     %2d steps, QFT %5.1fs (missed=%v)\n",
		staleEster.Steps, staleEster.QFT, staleEster.Missed)
	fmt.Printf("  refreshed GUI: %2d steps, QFT %5.1fs\n", freshEster.Steps, freshEster.QFT)
}
