// Quickstart: select a canned pattern set over a small synthetic
// chemical database, evolve the database, and let MIDAS maintain the
// patterns.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"github.com/midas-graph/midas"
	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/dataset"
)

func main() {
	// 1. A database of small labelled graphs. Any data source works —
	// here we generate 120 PubChem-like molecules.
	db := dataset.PubChemLike().GenerateDB(120, 42)
	fmt.Printf("database: %d graphs, %d edges total\n", db.Len(), db.TotalEdges())

	// 2. Bootstrap the engine: mine frequent closed trees, cluster,
	// summarise, index, and select the initial canned pattern set.
	opts := midas.Options{
		Budget: midas.Budget{MinSize: 3, MaxSize: 6, Count: 10},
		SupMin: 0.4,
		// ε calibrated to the synthetic generator's graphlet drift
		// (see EXPERIMENTS.md); the paper's default is 0.1.
		Epsilon: 0.02,
		Seed:    7,
	}
	eng := midas.New(db, opts)
	fmt.Printf("selected %d patterns in %v\n", len(eng.Patterns()), eng.BootstrapTime())
	for _, p := range eng.Patterns() {
		fmt.Printf("  pattern %2d: %s\n", p.ID, p)
	}
	q := eng.Quality()
	fmt.Printf("quality: scov=%.3f lcov=%.3f div=%.2f cog=%.2f\n", q.Scov, q.Lcov, q.Div, q.Cog)

	// 3. The repository evolves: a new compound family arrives.
	inserted := dataset.BoronicEsters().Generate(40, db.NextID(), 43)
	rep, err := eng.Maintain(graph.Update{Insert: inserted})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nmaintained after +%d graphs: graphlet-dist=%.4f major=%v swaps=%d PMT=%v\n",
		len(inserted), rep.GraphletDistance, rep.Major, rep.Swaps, rep.PMT)
	for _, p := range eng.Patterns() {
		fmt.Printf("  pattern %2d: %s\n", p.ID, p)
	}
	q = eng.Quality()
	fmt.Printf("quality: scov=%.3f lcov=%.3f div=%.2f cog=%.2f\n", q.Scov, q.Lcov, q.Div, q.Cog)
}
