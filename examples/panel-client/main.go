// Panel-client demonstrates the HTTP deployment path end to end: it
// starts the pattern-panel service in-process, then acts as a GUI front
// end — fetching patterns as JSON, posting a batch update, executing a
// subgraph query, and reading the refreshed panel.
//
//	go run ./examples/panel-client
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"

	"github.com/midas-graph/midas"
	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/dataset"
	"github.com/midas-graph/midas/internal/panel"
)

func main() {
	// Server side: bootstrap an engine and expose it over HTTP.
	db := dataset.PubChemLike().GenerateDB(80, 17)
	opts := midas.Options{
		Budget:  midas.Budget{MinSize: 3, MaxSize: 6, Count: 8},
		SupMin:  0.4,
		Epsilon: 0.02,
		Seed:    4,
	}
	eng := midas.New(db, opts)
	srv := httptest.NewServer(panel.New(eng, opts).Handler())
	defer srv.Close()
	fmt.Println("panel service listening on", srv.URL)

	// Client side: fetch the current panel.
	var patterns []struct {
		ID   int `json:"id"`
		Size int `json:"size"`
	}
	getJSON(srv.URL+"/patterns", &patterns)
	fmt.Printf("panel shows %d patterns:", len(patterns))
	for _, p := range patterns {
		fmt.Printf(" #%d(%de)", p.ID, p.Size)
	}
	fmt.Println()

	// Post a batch update: 30 boronic esters arrive.
	ins := dataset.BoronicEsters().Generate(30, 10000, 18)
	resp, err := http.Post(srv.URL+"/maintain", "text/plain",
		strings.NewReader(graph.Marshal(ins)))
	must(err)
	var rep map[string]interface{}
	decode(resp, &rep)
	fmt.Printf("maintenance: major=%v swaps=%v pmt=%vms\n",
		rep["major"], rep["swaps"], rep["pmtMillis"])

	// Execute a subgraph query against the evolved database.
	q := graph.Marshal([]*graph.Graph{graph.Path(0, "B", "O", "C")})
	resp, err = http.Post(srv.URL+"/query?limit=5", "text/plain", strings.NewReader(q))
	must(err)
	var qres struct {
		Matches    []int `json:"matches"`
		Candidates int   `json:"candidates"`
		Pruned     int   `json:"pruned"`
	}
	decode(resp, &qres)
	fmt.Printf("query B-O-C: %d matches (index pruned %d of %d checks)\n",
		len(qres.Matches), qres.Pruned, qres.Pruned+qres.Candidates)

	// Quality after maintenance.
	var quality map[string]float64
	getJSON(srv.URL+"/quality", &quality)
	fmt.Printf("panel quality: scov=%.3f lcov=%.3f div=%.2f cog=%.2f\n",
		quality["scov"], quality["lcov"], quality["div"], quality["cog"])
}

func getJSON(url string, v interface{}) {
	resp, err := http.Get(url)
	must(err)
	decode(resp, v)
}

func decode(resp *http.Response, v interface{}) {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	must(err)
	if resp.StatusCode != http.StatusOK {
		panic(fmt.Sprintf("HTTP %d: %s", resp.StatusCode, body))
	}
	must(json.Unmarshal(body, v))
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
