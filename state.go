package midas

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/core"
)

// State persistence: a deployed interface maintains its pattern panel
// across process restarts. SaveState writes the database, the selected
// pattern set and the options to a versioned, human-readable bundle;
// LoadState rebuilds the engine, re-deriving the maintained structures
// (FCTs, clusters, summaries, indices) but *restoring* the patterns —
// the expensive selection step is skipped.
//
// The bundle layout is line-oriented:
//
//	MIDAS-STATE v1
//	{json header: options + pattern IDs}
//	== database ==
//	<graphs in the text format>
//	== patterns ==
//	<patterns in the text format>

const stateMagic = "MIDAS-STATE v1"

type stateHeader struct {
	Options  Options `json:"options"`
	Patterns int     `json:"patterns"`
	Graphs   int     `json:"graphs"`
}

// SaveState serialises the engine's database, options and current
// pattern set to w.
func SaveState(w io.Writer, e *Engine, opts Options) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, stateMagic); err != nil {
		return err
	}
	hdr := stateHeader{
		Options:  opts,
		Patterns: len(e.Patterns()),
		Graphs:   e.DB().Len(),
	}
	enc, err := json.Marshal(hdr)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%s\n== database ==\n", enc); err != nil {
		return err
	}
	if err := graph.Write(bw, e.DB().Graphs()); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(bw, "== patterns =="); err != nil {
		return err
	}
	if err := graph.Write(bw, e.Patterns()); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadState reads a bundle written by SaveState and rebuilds the
// engine: the maintained structures are re-derived from the database,
// the pattern set is restored verbatim (selection is skipped).
func LoadState(r io.Reader) (*Engine, error) {
	br := bufio.NewReader(r)
	magic, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("midas: reading state magic: %w", err)
	}
	if strings.TrimSpace(magic) != stateMagic {
		return nil, fmt.Errorf("midas: not a MIDAS state bundle (got %q)", strings.TrimSpace(magic))
	}
	hdrLine, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("midas: reading state header: %w", err)
	}
	var hdr stateHeader
	if err := json.Unmarshal([]byte(hdrLine), &hdr); err != nil {
		return nil, fmt.Errorf("midas: decoding state header: %w", err)
	}

	rest, err := io.ReadAll(br)
	if err != nil {
		return nil, err
	}
	text := string(rest)
	dbMark := "== database ==\n"
	patMark := "== patterns ==\n"
	di := strings.Index(text, dbMark)
	pi := strings.Index(text, patMark)
	if di < 0 || pi < 0 || pi < di {
		return nil, fmt.Errorf("midas: malformed state bundle: missing section markers")
	}
	dbText := text[di+len(dbMark) : pi]
	patText := text[pi+len(patMark):]

	graphs, err := graph.Unmarshal(dbText)
	if err != nil {
		return nil, fmt.Errorf("midas: decoding database section: %w", err)
	}
	if len(graphs) != hdr.Graphs {
		return nil, fmt.Errorf("midas: state bundle corrupt: %d graphs, header says %d",
			len(graphs), hdr.Graphs)
	}
	db := graph.NewDatabase()
	for _, g := range graphs {
		if err := db.Add(g); err != nil {
			return nil, fmt.Errorf("midas: state database: %w", err)
		}
	}
	patterns, err := graph.Unmarshal(patText)
	if err != nil {
		return nil, fmt.Errorf("midas: decoding patterns section: %w", err)
	}
	if len(patterns) != hdr.Patterns {
		return nil, fmt.Errorf("midas: state bundle corrupt: %d patterns, header says %d",
			len(patterns), hdr.Patterns)
	}
	inner := core.NewEngineWithPatterns(db, hdr.Options.toCore(), patterns)
	return &Engine{inner: inner}, nil
}
