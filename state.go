package midas

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/core"
	"github.com/midas-graph/midas/internal/store"
)

// State persistence: a deployed interface maintains its pattern panel
// across process restarts. SaveState writes the database, the selected
// pattern set and the options to a versioned, human-readable bundle;
// LoadState rebuilds the engine, re-deriving the maintained structures
// (FCTs, clusters, summaries, indices) but *restoring* the patterns —
// the expensive selection step is skipped.
//
// The bundle layout is line-oriented:
//
//	MIDAS-STATE v2
//	{json header: options + counts + payload crc32 + metadata}
//	== database ==
//	<graphs in the text format>
//	== patterns ==
//	<patterns in the text format>
//
// The header carries the IEEE CRC32 of everything after the header
// line; LoadState verifies it, so a truncated or bit-flipped bundle is
// rejected instead of silently booting a corrupt engine. v1 bundles
// (no checksum) are still accepted for backward compatibility.

const (
	stateMagic   = "MIDAS-STATE v2"
	stateMagicV1 = "MIDAS-STATE v1"
)

type stateHeader struct {
	Options  Options `json:"options"`
	Patterns int     `json:"patterns"`
	Graphs   int     `json:"graphs"`
	// CRC is the hex IEEE CRC32 of the payload (all bytes after the
	// header line). Absent in v1 bundles.
	CRC string `json:"crc32,omitempty"`
	// Meta carries server bookkeeping (e.g. the last applied spool
	// batch), closing the crash window between saving state and
	// journalling the batch as applied.
	Meta map[string]string `json:"meta,omitempty"`
}

// SaveState serialises the engine's database, options and current
// pattern set to w.
func SaveState(w io.Writer, e *Engine, opts Options) error {
	return SaveStateMeta(w, e, opts, nil)
}

// SaveStateMeta is SaveState with an attached metadata map, persisted
// in the bundle header and returned by LoadStateMeta.
func SaveStateMeta(w io.Writer, e *Engine, opts Options, meta map[string]string) error {
	// The header records the state, not the knobs that merely choose how
	// it is computed: NoDeltaIndex is normalised off so bundles stay
	// byte-identical with the delta network on and off (the differential
	// suite's contract). Restorers re-apply the knob via SetNoDeltaIndex.
	opts.NoDeltaIndex = false
	var payload bytes.Buffer
	if _, err := fmt.Fprintln(&payload, "== database =="); err != nil {
		return err
	}
	if err := graph.Write(&payload, e.DB().Graphs()); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(&payload, "== patterns =="); err != nil {
		return err
	}
	if err := graph.Write(&payload, e.Patterns()); err != nil {
		return err
	}

	hdr := stateHeader{
		Options:  opts,
		Patterns: len(e.Patterns()),
		Graphs:   e.DB().Len(),
		CRC:      fmt.Sprintf("%08x", store.ChecksumBytes(payload.Bytes())),
		Meta:     meta,
	}
	enc, err := json.Marshal(hdr)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s\n%s\n", stateMagic, enc); err != nil {
		return err
	}
	if _, err := bw.Write(payload.Bytes()); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadState reads a bundle written by SaveState and rebuilds the
// engine: the maintained structures are re-derived from the database,
// the pattern set is restored verbatim (selection is skipped).
func LoadState(r io.Reader) (*Engine, error) {
	e, _, err := LoadStateMeta(r)
	return e, err
}

// parseStateEnvelope checks the bundle envelope — magic line, JSON
// header, payload checksum for v2, section markers — and returns the
// header plus the database and pattern sections. Corruption errors wrap
// store.ErrCorrupt so recovery (store.LoadBundle / store.Recover) can
// distinguish damaged bytes from I/O failures.
func parseStateEnvelope(r io.Reader) (hdr stateHeader, dbText, patText string, err error) {
	br := bufio.NewReader(r)
	magic, err := br.ReadString('\n')
	if err != nil {
		return hdr, "", "", fmt.Errorf("midas: reading state magic: %w", errors.Join(err, store.ErrCorrupt))
	}
	version := 0
	switch strings.TrimSpace(magic) {
	case stateMagic:
		version = 2
	case stateMagicV1:
		version = 1
	default:
		return hdr, "", "", fmt.Errorf("midas: not a MIDAS state bundle (got %q): %w",
			strings.TrimSpace(magic), store.ErrCorrupt)
	}
	hdrLine, err := br.ReadString('\n')
	if err != nil {
		return hdr, "", "", fmt.Errorf("midas: reading state header: %w", errors.Join(err, store.ErrCorrupt))
	}
	if err := json.Unmarshal([]byte(hdrLine), &hdr); err != nil {
		return hdr, "", "", fmt.Errorf("midas: decoding state header: %w", errors.Join(err, store.ErrCorrupt))
	}

	rest, err := io.ReadAll(br)
	if err != nil {
		return hdr, "", "", err
	}
	if version >= 2 {
		if hdr.CRC == "" {
			return hdr, "", "", fmt.Errorf("midas: state bundle corrupt: v2 header missing checksum: %w",
				store.ErrCorrupt)
		}
		want, err := strconv.ParseUint(hdr.CRC, 16, 32)
		if err != nil {
			return hdr, "", "", fmt.Errorf("midas: state bundle corrupt: bad checksum %q: %w",
				hdr.CRC, store.ErrCorrupt)
		}
		if got := store.ChecksumBytes(rest); got != uint32(want) {
			return hdr, "", "", fmt.Errorf("midas: state bundle corrupt: checksum %08x, header says %08x: %w",
				got, uint32(want), store.ErrCorrupt)
		}
	}
	text := string(rest)
	dbMark := "== database ==\n"
	patMark := "== patterns ==\n"
	di := strings.Index(text, dbMark)
	pi := strings.Index(text, patMark)
	if di < 0 || pi < 0 || pi < di {
		return hdr, "", "", fmt.Errorf("midas: malformed state bundle: missing section markers: %w",
			store.ErrCorrupt)
	}
	return hdr, text[di+len(dbMark) : pi], text[pi+len(patMark):], nil
}

// VerifyState is the cheap validity check used as the store.LoadBundle
// validator: it verifies the envelope (magic, header, payload CRC,
// section markers) without rebuilding an engine, so recovery can rank
// bundle generations quickly. A nil return means LoadStateMeta will not
// fail on crash damage (a valid CRC rules out truncation and bit rot).
func VerifyState(b []byte) error {
	_, _, _, err := parseStateEnvelope(bytes.NewReader(b))
	return err
}

// LoadStateMeta is LoadState returning the metadata map stored in the
// bundle header (nil for v1 bundles or when none was saved). The
// payload checksum is verified for v2 bundles before anything is
// decoded; corruption errors wrap store.ErrCorrupt.
func LoadStateMeta(r io.Reader) (*Engine, map[string]string, error) {
	hdr, dbText, patText, err := parseStateEnvelope(r)
	if err != nil {
		return nil, nil, err
	}

	graphs, err := graph.Unmarshal(dbText)
	if err != nil {
		return nil, nil, fmt.Errorf("midas: decoding database section: %w", errors.Join(err, store.ErrCorrupt))
	}
	if len(graphs) != hdr.Graphs {
		return nil, nil, fmt.Errorf("midas: state bundle corrupt: %d graphs, header says %d: %w",
			len(graphs), hdr.Graphs, store.ErrCorrupt)
	}
	db := graph.NewDatabase()
	for _, g := range graphs {
		if err := db.Add(g); err != nil {
			return nil, nil, fmt.Errorf("midas: state database: %w", err)
		}
	}
	patterns, err := graph.Unmarshal(patText)
	if err != nil {
		return nil, nil, fmt.Errorf("midas: decoding patterns section: %w", errors.Join(err, store.ErrCorrupt))
	}
	if len(patterns) != hdr.Patterns {
		return nil, nil, fmt.Errorf("midas: state bundle corrupt: %d patterns, header says %d: %w",
			len(patterns), hdr.Patterns, store.ErrCorrupt)
	}
	inner := core.NewEngineWithPatterns(db, hdr.Options.toCore(), patterns)
	return &Engine{inner: inner}, hdr.Meta, nil
}
