// Package midas is the public API of the MIDAS canned-pattern
// maintenance framework (Huang, Chua, Bhowmick, Choi, Zhou: "MIDAS:
// Towards Efficient and Effective Maintenance of Canned Patterns in
// Visual Graph Query Interfaces", SIGMOD 2021).
//
// A visual graph query interface displays a small set of canned
// patterns — little subgraphs users drag onto the canvas to build
// subgraph queries quickly. Given a database of small labelled graphs,
// this package
//
//   - selects an initial high-quality pattern set (the CATAPULT
//     pipeline: FCT mining, clustering, cluster summary graphs, weighted
//     random walks), and
//   - maintains that set incrementally as the database evolves under
//     batch insertions and deletions (the MIDAS framework: selective
//     maintenance by graphlet-distribution distance, index-assisted
//     candidate pruning, and multi-scan swap with quality guarantees).
//
// The entry point is New, which bootstraps an Engine over a
// graph.Database; Engine.Maintain applies updates. Quality reports,
// baseline strategies and a GUI formulation simulator (used by the
// reproduction experiments) are also exposed.
package midas

import (
	"context"
	"time"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/catapult"
	"github.com/midas-graph/midas/internal/cluster"
	"github.com/midas-graph/midas/internal/core"
	"github.com/midas-graph/midas/internal/telemetry"
	"github.com/midas-graph/midas/internal/tree"
)

// Update-validation sentinels: Maintain rejects a malformed batch with
// an error wrapping ErrInvalidUpdate before touching any state.
// ErrConflict (an inserted graph ID already present in the database)
// wraps ErrInvalidUpdate, so errors.Is(err, ErrInvalidUpdate) holds for
// both.
var (
	ErrInvalidUpdate = core.ErrInvalidUpdate
	ErrConflict      = core.ErrConflict
)

// Budget is the pattern budget b = (η_min, η_max, γ): patterns have
// between MinSize and MaxSize edges and at most Count patterns are
// displayed.
type Budget struct {
	MinSize int
	MaxSize int
	Count   int
}

// Strategy selects how stale patterns are replaced on a major database
// modification.
type Strategy string

const (
	// StrategyMultiScan is MIDAS's multi-scan swap (the default).
	StrategyMultiScan Strategy = "multiscan"
	// StrategyRandom is the random-swapping baseline.
	StrategyRandom Strategy = "random"
)

// Options configures an Engine. The zero value selects the paper's
// defaults: budget (3, 12, 30), sup_min 0.5, ε 0.1, κ = λ = 0.1.
type Options struct {
	Budget Budget

	// SupMin is the frequent-closed-tree support threshold.
	SupMin float64
	// Epsilon is the evolution ratio threshold ε: batch updates moving
	// the graphlet frequency distribution at least this far trigger
	// pattern maintenance.
	Epsilon float64
	// Kappa and Lambda are the swapping thresholds of §6.2.
	Kappa, Lambda float64

	// ClusterK is the number of coarse clusters (0 = auto).
	ClusterK int
	// ClusterMaxSize is the fine-clustering threshold N (0 = 50).
	ClusterMaxSize int

	// Walks is the number of random walks per summary graph.
	Walks int
	// SampleSize enables lazy-sampled coverage estimation (0 = exact).
	SampleSize int
	// Workers selects the execution mode of the maintenance kernels:
	// 0 runs the sequential reference path; n >= 1 fans the pairwise
	// MCCS/GED computations, batch classification and swap scoring out
	// over n pooled workers and enables process-wide kernel
	// memoization. Maintain and Query produce byte-identical state and
	// reports at every setting — the differential test suite enforces
	// it — so Workers is purely a wall-clock knob.
	Workers int
	// Seed makes every stochastic component reproducible.
	Seed int64
	// Strategy selects the swap strategy (default multi-scan).
	Strategy Strategy
	// NoDeltaIndex disables the incremental index-maintenance network
	// (internal/index/delta) and recomputes cover sets from scratch
	// each batch — an escape hatch; results are byte-identical either
	// way (the differential suite enforces it), only maintain time
	// differs. Like Workers it describes how state is computed, not
	// what it is, so state bundles are saved with it normalised off.
	NoDeltaIndex bool `json:",omitempty"`

	// AlphaDiv, AlphaCog and AlphaLcov optionally tighten the swap
	// guards (§6.2 "additional requirements by users"): a swap must
	// improve diversity by a factor (1+AlphaDiv), may relax cognitive
	// load by (1+AlphaCog), and must improve label coverage by
	// (1+AlphaLcov). Zeros reproduce the plain sw3–sw5 criteria.
	AlphaDiv, AlphaCog, AlphaLcov float64
}

func (o Options) toCore() core.Config {
	cfg := core.Config{
		Budget:       catapult.Budget{MinSize: o.Budget.MinSize, MaxSize: o.Budget.MaxSize, Count: o.Budget.Count},
		SupMin:       o.SupMin,
		Epsilon:      o.Epsilon,
		Kappa:        o.Kappa,
		Lambda:       o.Lambda,
		Walks:        o.Walks,
		SampleSize:   o.SampleSize,
		Workers:      o.Workers,
		Seed:         o.Seed,
		NoDeltaIndex: o.NoDeltaIndex,
		Cluster:      cluster.Config{K: o.ClusterK, MaxSize: o.ClusterMaxSize},
	}
	cfg.AlphaDiv = o.AlphaDiv
	cfg.AlphaCog = o.AlphaCog
	cfg.AlphaLcov = o.AlphaLcov
	if o.Strategy == StrategyRandom {
		cfg.Strategy = core.RandomSwap
	}
	return cfg
}

// Quality reports the four pattern-set objectives of the CPM problem
// (Definition 3.1) plus the multiplicative set score.
type Quality struct {
	Scov float64 // subgraph coverage f_scov
	Lcov float64 // label coverage f_lcov
	Div  float64 // diversity f_div (minimum pairwise GED)
	Cog  float64 // cognitive load f_cog (maximum per-pattern)
}

// Score returns scov × lcov × div / cog.
func (q Quality) Score() float64 {
	return catapult.Quality{Scov: q.Scov, Lcov: q.Lcov, Div: q.Div, Cog: q.Cog}.Score()
}

func fromQuality(q catapult.Quality) Quality {
	return Quality{Scov: q.Scov, Lcov: q.Lcov, Div: q.Div, Cog: q.Cog}
}

// MaintenanceReport describes one Maintain invocation.
type MaintenanceReport struct {
	// GraphletDistance is dist(ψ_D, ψ_{D⊕ΔD}) (§3.4).
	GraphletDistance float64
	// Major reports whether the update was a Type-1 (major)
	// modification requiring pattern maintenance.
	Major bool
	// Swaps is the number of patterns replaced.
	Swaps int
	// Candidates is the number of promising candidate patterns
	// generated.
	Candidates int

	// Scans is the number of swap scans executed (multi-scan strategy).
	Scans int

	// PMT is the total pattern maintenance time.
	PMT time.Duration
	// PGT is the pattern generation time (candidates + swapping).
	PGT time.Duration
	// ClusterTime through SmallTime break down PMT by pipeline stage.
	ClusterTime   time.Duration
	FCTTime       time.Duration
	CSGTime       time.Duration
	IndexTime     time.Duration
	CandidateTime time.Duration
	SwapTime      time.Duration
	SmallTime     time.Duration

	// VF2Steps, MCCSSteps and GEDNodes are the kernel work burned by
	// this call (deltas of the process-wide iso/ged counters).
	VF2Steps  uint64
	MCCSSteps uint64
	GEDNodes  uint64
}

// StageTiming is one named stage of a maintenance breakdown.
type StageTiming struct {
	Name     string
	Duration time.Duration
}

// Stages returns the PMT breakdown in pipeline execution order. Stages
// that did not run (candidates/swap on a minor modification) report
// zero.
func (r MaintenanceReport) Stages() []StageTiming {
	return []StageTiming{
		{"cluster", r.ClusterTime},
		{"fct", r.FCTTime},
		{"csg", r.CSGTime},
		{"index", r.IndexTime},
		{"candidates", r.CandidateTime},
		{"swap", r.SwapTime},
		{"small", r.SmallTime},
	}
}

func fromReport(r core.Report) MaintenanceReport {
	return MaintenanceReport{
		GraphletDistance: r.GraphletDistance,
		Major:            r.Major,
		Swaps:            r.Swaps,
		Candidates:       r.Candidates,
		Scans:            r.Scans,
		PMT:              r.Total,
		PGT:              r.PGT(),
		ClusterTime:      r.ClusterTime,
		FCTTime:          r.FCTTime,
		CSGTime:          r.CSGTime,
		IndexTime:        r.IndexTime,
		CandidateTime:    r.CandidateTime,
		SwapTime:         r.SwapTime,
		SmallTime:        r.SmallTime,
		VF2Steps:         r.VF2Steps,
		MCCSSteps:        r.MCCSSteps,
		GEDNodes:         r.GEDNodes,
	}
}

// Engine owns a database and its maintained canned pattern set.
type Engine struct {
	inner *core.Engine
}

// New bootstraps the full MIDAS stack over db (FCT mining, clustering,
// summaries, indices) and selects the initial pattern set. The engine
// takes ownership of db: later Maintain calls mutate it.
func New(db *graph.Database, opts Options) *Engine {
	return &Engine{inner: core.NewEngine(db, opts.toCore())}
}

// Patterns returns the current canned pattern set. Pattern graphs are
// owned by the engine and must not be mutated.
func (e *Engine) Patterns() []*graph.Graph { return e.inner.Patterns() }

// SetTelemetry attaches the engine to a telemetry registry: every
// Maintain call records its per-stage timings, outcome, and swap and
// candidate counts, and the pattern/database sizes are exported as
// gauges. Pass telemetry.Nop (or nil) to detach.
func (e *Engine) SetTelemetry(reg *telemetry.Registry) { e.inner.SetTelemetry(reg) }

// DB returns the engine's current database.
func (e *Engine) DB() *graph.Database { return e.inner.DB() }

// SetWorkers reconfigures the maintenance kernels' fan-out width on a
// live engine (see Options.Workers). State bundles record the pattern
// state, not the knob, so callers restoring via LoadState apply the
// desired width with this; outputs are identical at every setting.
func (e *Engine) SetWorkers(n int) { e.inner.SetWorkers(n) }

// SetNoDeltaIndex toggles the incremental index delta network on a
// live engine (see Options.NoDeltaIndex). State bundles record the
// pattern state, not the knob, so callers restoring via LoadState
// apply the escape hatch with this; outputs are byte-identical either
// way.
func (e *Engine) SetNoDeltaIndex(off bool) { e.inner.SetNoDeltaIndex(off) }

// Maintain applies the batch update ΔD (deletions then insertions) and
// maintains the pattern set per Algorithm 1.
func (e *Engine) Maintain(u graph.Update) (MaintenanceReport, error) {
	rep, err := e.inner.Maintain(u)
	return fromReport(rep), err
}

// MaintainContext is Maintain with cancellation: when ctx expires the
// pipeline stops at the next stage boundary (or inside its long loops),
// the pre-batch state is restored, and ctx.Err() is returned. Maintain
// is transactional either way — any error rolls the engine back.
func (e *Engine) MaintainContext(ctx context.Context, u graph.Update) (MaintenanceReport, error) {
	rep, err := e.inner.MaintainContext(ctx, u)
	return fromReport(rep), err
}

// ApplyReplicated applies a batch whose pattern maintenance already
// ran on a replication primary: the database delta and structural
// upkeep are applied locally, and the supplied post-apply pattern set
// is installed verbatim instead of re-running swap decisions (which
// read engine internals that state bundles rebuild rather than
// restore, and so are not reproducible on a follower). Transactional
// like MaintainContext: any error rolls the engine back.
func (e *Engine) ApplyReplicated(ctx context.Context, u graph.Update, patterns []*graph.Graph) (MaintenanceReport, error) {
	rep, err := e.inner.ApplyReplicated(ctx, u, patterns)
	return fromReport(rep), err
}

// ValidateShape checks a batch update's internal consistency — nil or
// negatively-numbered graphs, duplicate insert or delete IDs — without
// consulting any database. Serving layers use it to reject malformed
// input before ID remapping; Maintain performs the full check
// (including database conflicts) again regardless.
func ValidateShape(u graph.Update) error { return core.ValidateShape(u) }

// Quality evaluates the current pattern set against the current
// database.
func (e *Engine) Quality() Quality { return fromQuality(e.inner.Quality()) }

// SetQueryLogWeight installs a query-log usage weight for swap scoring:
// when the interface has access to a query log, patterns matched often
// by logged queries resist eviction and log-popular candidates swap in
// sooner (the extension sketched in §3.5). fn must return a positive
// multiplier (1 = neutral); pass nil to remove.
func (e *Engine) SetQueryLogWeight(fn func(p *graph.Graph) float64) {
	e.inner.SetQueryLogWeight(fn)
}

// SetAfterMaintain installs a hook that runs after every successful
// Maintain/MaintainContext call with the call's report. The hook runs
// on the calling goroutine while the engine is still under the caller's
// lock, so it must not re-enter the engine; serving layers use it for
// durability chores keyed to maintenance progress, such as compacting
// the batch journal. Pass nil to remove.
func (e *Engine) SetAfterMaintain(fn func(MaintenanceReport)) {
	if fn == nil {
		e.inner.SetAfterMaintain(nil)
		return
	}
	e.inner.SetAfterMaintain(func(r core.Report) { fn(fromReport(r)) })
}

// PanelView is a coherent export of everything a serving layer needs to
// answer panel reads: the pattern set, its per-pattern statistics, the
// set-level quality, the database size, and a query engine over an
// isolated copy of the search structures. Once exported, the view is
// detached from the engine — later Maintain calls never mutate it — so
// a serving layer can publish it to concurrent readers and keep serving
// it while the next batch runs. Pattern graphs are shared with the
// engine and must not be mutated (the engine never structurally mutates
// stored graphs either, so sharing is safe).
type PanelView struct {
	Patterns []*graph.Graph
	Stats    []PatternStat
	Quality  Quality
	DBLen    int
	Searcher *Searcher
}

// ExportView captures a PanelView of the engine's current state. Like
// SetAfterMaintain, it belongs to the maintenance side of the engine:
// call it only while no Maintain is in flight (e.g. from the
// maintenance goroutine right after a batch commits, or at startup
// before serving begins). The returned view is then safe for any number
// of concurrent readers.
func (e *Engine) ExportView() PanelView {
	return PanelView{
		Patterns: e.Patterns(),
		Stats:    e.PatternStats(),
		Quality:  e.Quality(),
		DBLen:    e.DB().Len(),
		Searcher: e.SearcherSnapshot(),
	}
}

// EvaluatePatterns evaluates an arbitrary pattern set against the
// engine's current database — e.g. a stale set for a no-maintenance
// comparison.
func (e *Engine) EvaluatePatterns(ps []*graph.Graph) Quality {
	return fromQuality(e.inner.Metrics().Evaluate(ps))
}

// PatternStat describes one displayed pattern, for panel UIs.
type PatternStat struct {
	ID       int
	Vertices int
	Edges    int
	// Scov is the pattern's subgraph coverage over the current database.
	Scov float64
	// Cog is the pattern's cognitive load.
	Cog float64
}

// PatternStats returns per-pattern statistics over the current database,
// in panel order.
func (e *Engine) PatternStats() []PatternStat {
	m := e.inner.Metrics()
	ps := e.inner.Patterns()
	out := make([]PatternStat, len(ps))
	for i, p := range ps {
		out[i] = PatternStat{
			ID:       p.ID,
			Vertices: p.Order(),
			Edges:    p.Size(),
			Scov:     m.Scov(p),
			Cog:      p.CognitiveLoad(),
		}
	}
	return out
}

// BootstrapTime reports how long the initial selection took.
func (e *Engine) BootstrapTime() time.Duration { return e.inner.BootstrapTime }

// LastReport returns the report of the most recent Maintain call.
func (e *Engine) LastReport() MaintenanceReport {
	return fromReport(e.inner.LastReport)
}

// Baseline identifies a from-scratch selection pipeline.
type Baseline string

const (
	// BaselineCATAPULT uses frequent subtrees and no indices (the
	// original SIGMOD'19 pipeline).
	BaselineCATAPULT Baseline = "catapult"
	// BaselineCATAPULTPlus uses frequent closed trees and the MIDAS
	// indices (CATAPULT++, §3.3).
	BaselineCATAPULTPlus Baseline = "catapult++"
)

// SelectFromScratch runs a full selection pipeline over db and returns
// the chosen patterns with the wall-clock cost. It is the
// "maintenance-from-scratch" baseline of §7: rerun it on D⊕ΔD to
// compare against Engine.Maintain.
func SelectFromScratch(db *graph.Database, opts Options, b Baseline) ([]*graph.Graph, time.Duration) {
	cfg := opts.toCore()
	switch b {
	case BaselineCATAPULT:
		cfg.UseClosedFeatures = false
		cfg.UseIndices = false
	default:
		cfg.UseClosedFeatures = true
		cfg.UseIndices = true
	}
	e := core.NewEngineWith(db, cfg)
	return e.Patterns(), e.BootstrapTime
}

// Evaluator measures pattern-set quality against a fixed database
// without running selection — e.g. to score a stale pattern set on an
// evolved database (the NoMaintain comparison of §7.3).
type Evaluator struct {
	m *catapult.Metrics
}

// NewEvaluator mines the edge statistics of db and returns an
// evaluator. SupMin and SampleSize from opts are honoured; other
// options are ignored.
func NewEvaluator(db *graph.Database, opts Options) *Evaluator {
	cfg := opts.toCore()
	set := tree.Mine(db, cfg.SupMin, 1) // edge postings suffice for lcov
	return &Evaluator{m: catapult.NewMetrics(db, set, nil, cfg.SampleSize, cfg.Seed)}
}

// Quality evaluates a pattern set.
func (ev *Evaluator) Quality(ps []*graph.Graph) Quality {
	return fromQuality(ev.m.Evaluate(ps))
}

// Scov returns the subgraph coverage of a single pattern.
func (ev *Evaluator) Scov(p *graph.Graph) float64 { return ev.m.Scov(p) }
