package midas

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/dataset"
	"github.com/midas-graph/midas/internal/search"
)

// reportFacts are the report fields the Workers knob must not change
// (timings and kernel step counters are excluded: they measure wall
// clock and cache misses, which parallelism exists to change).
type reportFacts struct {
	Distance   float64
	Major      bool
	Swaps      int
	Candidates int
}

// runBundleTrace bootstraps an engine, replays a two-batch trace, and
// returns the saved state bundle plus the report facts per batch. The
// bundle is saved with Workers and NoDeltaIndex normalised so the
// header reflects the state, not the knobs that produced it.
func runBundleTrace(t *testing.T, seed int64, workers int) ([]byte, []reportFacts) {
	return runBundleTraceMode(t, seed, workers, false)
}

func runBundleTraceMode(t *testing.T, seed int64, workers int, noDelta bool) ([]byte, []reportFacts) {
	t.Helper()
	opts := smallOptions()
	opts.Seed = seed
	opts.Epsilon = 0.01
	opts.Workers = workers
	opts.NoDeltaIndex = noDelta
	db := dataset.PubChemLike().GenerateDB(24, seed)
	e := New(db, opts)
	var facts []reportFacts
	for bi, u := range []graph.Update{
		{Insert: dataset.BoronicEsters().Generate(12, 1000+int(seed)*100, seed+50), Delete: []int{0, 1}},
		{Delete: []int{2, 3}},
	} {
		rep, err := e.Maintain(u)
		if err != nil {
			t.Fatalf("seed %d workers %d batch %d: %v", seed, workers, bi, err)
		}
		facts = append(facts, reportFacts{
			Distance:   rep.GraphletDistance,
			Major:      rep.Major,
			Swaps:      rep.Swaps,
			Candidates: rep.Candidates,
		})
	}
	saveOpts := opts
	saveOpts.Workers = 0
	saveOpts.NoDeltaIndex = false
	var buf bytes.Buffer
	if err := SaveState(&buf, e, saveOpts); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), facts
}

// TestStateBundleByteIdenticalAcrossWorkers is the end-to-end
// determinism acceptance test: for every seed, a maintenance trace
// replayed at Workers 1, 2 and 8 must save a byte-identical state
// bundle — and report the same facts — as the sequential reference.
// Runs share one process, so later runs also start with the memo
// caches the earlier runs warmed; hits must be indistinguishable from
// fresh computation.
func TestStateBundleByteIdenticalAcrossWorkers(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		wantBundle, wantFacts := runBundleTrace(t, seed, 0)
		for _, w := range []int{1, 2, 8} {
			bundle, facts := runBundleTrace(t, seed, w)
			if !bytes.Equal(bundle, wantBundle) {
				t.Errorf("seed %d: workers=%d bundle differs from sequential reference (%d vs %d bytes)",
					seed, w, len(bundle), len(wantBundle))
			}
			for i := range facts {
				if facts[i] != wantFacts[i] {
					t.Errorf("seed %d: workers=%d batch %d report %+v, want %+v", seed, w, i, facts[i], wantFacts[i])
				}
			}
		}
	}
}

// TestStateBundleByteIdenticalDeltaOnOff extends the acceptance test
// to the delta network: maintaining with incremental index/cover
// upkeep must save the byte-identical bundle — and report the same
// facts — as the per-batch from-scratch recompute, at sequential and
// parallel worker counts.
func TestStateBundleByteIdenticalDeltaOnOff(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for _, w := range []int{0, 2} {
			onBundle, onFacts := runBundleTraceMode(t, seed, w, false)
			offBundle, offFacts := runBundleTraceMode(t, seed, w, true)
			if !bytes.Equal(onBundle, offBundle) {
				t.Errorf("seed %d workers %d: delta on/off bundles differ (%d vs %d bytes)",
					seed, w, len(onBundle), len(offBundle))
			}
			for i := range onFacts {
				if onFacts[i] != offFacts[i] {
					t.Errorf("seed %d workers %d batch %d: delta on %+v, off %+v", seed, w, i, onFacts[i], offFacts[i])
				}
			}
		}
	}
}

// TestQueryIdenticalAcrossWorkers: the query funnel must return the
// same matches, embeddings and funnel statistics in the same order
// whether verification runs inline or fanned out.
func TestQueryIdenticalAcrossWorkers(t *testing.T) {
	db := dataset.PubChemLike().GenerateDB(30, 7)
	s := search.NewFromDB(db, 0.3, 3)
	q := graph.Path(0, "C", "O", "C")
	want, wantStats := s.Query(q, search.Options{})
	if len(want) == 0 {
		t.Fatal("probe query matched nothing; fixture too weak")
	}
	for _, w := range []int{1, 2, 8} {
		got, stats := s.Query(q, search.Options{Workers: w})
		if stats != wantStats {
			t.Fatalf("workers %d: stats %+v, want %+v", w, stats, wantStats)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers %d: results diverged\ngot  %+v\nwant %+v", w, got, want)
		}
	}
}
