package midas

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/dataset"
	"github.com/midas-graph/midas/internal/store"
	"github.com/midas-graph/midas/internal/vfs"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db := dataset.EMolLike().GenerateDB(25, 3)
	opts := smallOptions()
	e := New(db, opts)
	wantPatterns := e.Patterns()
	wantQuality := e.Quality()

	var buf strings.Builder
	if err := SaveState(&buf, e, opts); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadState(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.Patterns()
	if len(got) != len(wantPatterns) {
		t.Fatalf("patterns = %d, want %d", len(got), len(wantPatterns))
	}
	for i := range got {
		if got[i].ID != wantPatterns[i].ID {
			t.Fatalf("pattern %d ID changed: %d vs %d", i, got[i].ID, wantPatterns[i].ID)
		}
		if graph.Signature(got[i]) != graph.Signature(wantPatterns[i]) {
			t.Fatalf("pattern %d structure changed", i)
		}
	}
	if loaded.DB().Len() != 25 {
		t.Fatalf("db len = %d, want 25", loaded.DB().Len())
	}
	q := loaded.Quality()
	if q.Scov != wantQuality.Scov || q.Cog != wantQuality.Cog {
		t.Fatalf("quality drifted: %+v vs %+v", q, wantQuality)
	}
}

func TestLoadedEngineMaintains(t *testing.T) {
	db := dataset.EMolLike().GenerateDB(20, 5)
	opts := smallOptions()
	opts.Epsilon = 0.02
	e := New(db, opts)
	var buf strings.Builder
	if err := SaveState(&buf, e, opts); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadState(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	ins := dataset.BoronicEsters().Generate(15, loaded.DB().NextID(), 6)
	rep, err := loaded.Maintain(graph.Update{Insert: ins})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PMT <= 0 {
		t.Fatal("maintenance on loaded engine produced no report")
	}
	if loaded.DB().Len() != 35 {
		t.Fatalf("db len = %d, want 35", loaded.DB().Len())
	}
}

func TestLoadStateErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"empty", ""},
		{"bad magic", "WRONG v9\n{}\n"},
		{"bad header", stateMagic + "\nnot-json\n== database ==\n== patterns ==\n"},
		{"missing sections", stateMagic + "\n{\"graphs\":0,\"patterns\":0}\n"},
		{"count mismatch", stateMagic + "\n{\"graphs\":5,\"patterns\":0}\n== database ==\n== patterns ==\n"},
		{"bad db section", stateMagic + "\n{\"graphs\":1,\"patterns\":0}\n== database ==\ngarbage\n== patterns ==\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := LoadState(strings.NewReader(c.text)); err == nil {
				t.Fatalf("LoadState(%q) succeeded, want error", c.name)
			}
		})
	}
}

func TestSearcherAfterLoad(t *testing.T) {
	db := dataset.EMolLike().GenerateDB(15, 7)
	opts := smallOptions()
	e := New(db, opts)
	var buf strings.Builder
	if err := SaveState(&buf, e, opts); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadState(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	s := loaded.Searcher()
	q := graph.Path(0, "C", "C")
	if s.Count(q) == 0 {
		t.Fatal("searcher over loaded engine found nothing for C-C")
	}
}

// TestVerifyStateDetectsDamage pins VerifyState as the cheap bundle
// validator: truncation and bit flips anywhere in a v2 bundle must
// surface as store.ErrCorrupt, and a bundle with no surviving
// generation must name the offending path in the error.
func TestVerifyStateDetectsDamage(t *testing.T) {
	db := dataset.EMolLike().GenerateDB(12, 11)
	opts := smallOptions()
	e := New(db, opts)
	var buf strings.Builder
	if err := SaveState(&buf, e, opts); err != nil {
		t.Fatal(err)
	}
	good := []byte(buf.String())
	if err := VerifyState(good); err != nil {
		t.Fatalf("pristine bundle rejected: %v", err)
	}

	// Truncation at representative depths: mid-header, mid-database,
	// just before the final marker.
	for _, cut := range []int{len(good) / 10, len(good) / 2, len(good) - 3} {
		if err := VerifyState(good[:cut]); !errors.Is(err, store.ErrCorrupt) {
			t.Fatalf("truncated at %d: err = %v, want ErrCorrupt", cut, err)
		}
	}
	// A single flipped bit breaks the payload checksum.
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x01
	if err := VerifyState(flipped); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("bit flip: err = %v, want ErrCorrupt", err)
	}

	// Through the generational loader: with no valid generation left the
	// error unwraps to ErrCorrupt and names the path; the damage is
	// quarantined for post-mortem.
	dir := t.TempDir()
	path := filepath.Join(dir, "panel.state")
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rep, err := store.LoadBundle(vfs.OS, path, VerifyState)
	if !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("LoadBundle err = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("error does not name the offending path: %v", err)
	}
	if len(rep.Quarantined) != 1 {
		t.Fatalf("quarantined = %v", rep.Quarantined)
	}

	// With an intact previous generation the loader rolls back instead.
	if err := os.WriteFile(path+".prev", good, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	data, rep, err := store.LoadBundle(vfs.OS, path, VerifyState)
	if err != nil {
		t.Fatalf("rollback load: %v", err)
	}
	if !rep.RolledBack {
		t.Fatal("salvage did not report a rollback")
	}
	if eng, loadErr := LoadState(strings.NewReader(string(data))); loadErr != nil {
		t.Fatalf("rolled-back bundle unusable: %v", loadErr)
	} else if eng.DB().Len() != 12 {
		t.Fatalf("rolled-back db len = %d, want 12", eng.DB().Len())
	}
}
