package midas

import (
	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/ged"
	"github.com/midas-graph/midas/internal/gui"
)

// FormulationPlan describes how one visual query would be constructed.
type FormulationPlan struct {
	// PatternsUsed lists the IDs of canned patterns dragged onto the
	// canvas (repeats allowed).
	PatternsUsed []int
	// VertexAdds, EdgeAdds and Deletes are the remaining primitive
	// steps.
	VertexAdds, EdgeAdds, Deletes int
	// Steps is the total number of formulation steps.
	Steps int
	// QFT is the modelled query formulation time in seconds; VMT is the
	// pattern-browsing component included in it.
	QFT, VMT float64
	// Missed reports that no canned pattern was usable.
	Missed bool
}

func fromPlan(p gui.Plan) FormulationPlan {
	return FormulationPlan{
		PatternsUsed: p.PatternsUsed,
		VertexAdds:   p.VertexAdds,
		EdgeAdds:     p.EdgeAdds,
		Deletes:      p.Deletes,
		Steps:        p.Steps,
		QFT:          p.QFT,
		VMT:          p.VMT,
		Missed:       p.Missed,
	}
}

// Formulator simulates visual query formulation in a
// direct-manipulation GUI, calibrated on the paper's Example 1.1
// (≈3.5 s per primitive action; VMT within the measured 6.4–9.4 s
// band for 30 displayed patterns).
type Formulator struct {
	sim *gui.Simulator
}

// NewFormulator returns a simulator for a GUI displaying the given
// number of patterns. allowEdits > 0 lets the simulated user delete up
// to that many edges from a dropped pattern (the paper's user study
// allows modifications; its automated study does not).
func NewFormulator(displayed, allowEdits int) *Formulator {
	s := gui.NewSimulator(displayed)
	s.AllowEdits = allowEdits
	return &Formulator{sim: s}
}

// EdgeAtATime plans building q one vertex/edge at a time.
func (f *Formulator) EdgeAtATime(q *graph.Graph) FormulationPlan {
	return fromPlan(f.sim.EdgeAtATime(q))
}

// PatternAtATime plans building q with the given canned patterns.
func (f *Formulator) PatternAtATime(q *graph.Graph, patterns []*graph.Graph) FormulationPlan {
	return fromPlan(f.sim.PatternAtATime(q, patterns))
}

// MissedPercentage returns the share (in %) of queries that no pattern
// in the set can help construct (the MP measure of §7.1).
func MissedPercentage(queries, patterns []*graph.Graph) float64 {
	return gui.MP(queries, patterns)
}

// ReductionRatio returns μ = (steps_X − steps_ref) / steps_X: positive
// when the reference pattern set needs fewer steps than X's (§7.1).
func ReductionRatio(stepsX, stepsRef float64) float64 {
	return gui.ReductionRatio(stepsX, stepsRef)
}

// EditStep is one operation of an edit script between two graphs.
type EditStep struct {
	// Op is one of "relabel-vertex", "delete-vertex", "insert-vertex",
	// "delete-edge", "insert-edge".
	Op string
	// Vertex / Edge reference the source graph where applicable; Label
	// carries the new or inserted label.
	Vertex int
	EdgeU  int
	EdgeV  int
	Label  string
}

// EditScript returns a minimal (exact for small graphs, approximate
// beyond) edit script turning `from` into a graph isomorphic to `to`,
// with its cost (the graph edit distance realised by the script). A GUI
// can display it as modification hints after a user drops a canned
// pattern that almost matches their intent.
func EditScript(from, to *graph.Graph) ([]EditStep, float64) {
	ops, cost := ged.EditPath(from, to)
	out := make([]EditStep, 0, len(ops))
	for _, op := range ops {
		switch op.Kind {
		case ged.RelabelVertex:
			out = append(out, EditStep{Op: "relabel-vertex", Vertex: op.V, Label: op.Label})
		case ged.DeleteVertex:
			out = append(out, EditStep{Op: "delete-vertex", Vertex: op.V})
		case ged.InsertVertex:
			out = append(out, EditStep{Op: "insert-vertex", Vertex: op.V, Label: op.Label})
		case ged.DeleteEdge:
			out = append(out, EditStep{Op: "delete-edge", EdgeU: op.U, EdgeV: op.W})
		case ged.InsertEdge:
			out = append(out, EditStep{Op: "insert-edge", EdgeU: op.A.V, EdgeV: op.B.V})
		}
	}
	return out, cost
}
