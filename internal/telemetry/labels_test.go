package telemetry

import (
	"strings"
	"testing"
)

// Two tenant views of one registry must share each family (registered
// once, with the tenant label first) while keeping their children
// separate.
func TestWithLabelsSharedFamilies(t *testing.T) {
	reg := NewRegistry()
	a := reg.WithLabels("tenant", "a")
	b := reg.WithLabels("tenant", "b")

	ca := a.NewCounter("widget_events_total", "Widget events.")
	cb := b.NewCounter("widget_events_total", "Widget events.")
	if ca == cb {
		t.Fatal("tenant views handed out the same counter child")
	}
	ca.Add(3)
	cb.Add(5)

	ga := a.NewGauge("widget_depth", "Widget depth.")
	ga.Set(7)
	b.NewGauge("widget_depth", "Widget depth.").Set(9)

	va := a.NewCounterVec("widget_requests_total", "Widget requests.", "route")
	va.With("index").Inc()
	vb := b.NewCounterVec("widget_requests_total", "Widget requests.", "route")
	vb.With("index").Add(2)

	a.NewGaugeFunc("widget_uptime_seconds", "Uptime.", func() float64 { return 1 })
	b.NewGaugeFunc("widget_uptime_seconds", "Uptime.", func() float64 { return 2 })

	a.NewHistogram("widget_wait_seconds", "Wait.", []float64{1}).Observe(0.5)

	// Families registered once each, on the shared base.
	if got, want := reg.Families(), 5; got != want {
		t.Fatalf("Families() = %d, want %d", got, want)
	}
	if got := a.Families(); got != reg.Families() {
		t.Fatalf("view Families() = %d, base = %d", got, reg.Families())
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	doc := sb.String()
	for _, want := range []string{
		`widget_events_total{tenant="a"} 3`,
		`widget_events_total{tenant="b"} 5`,
		`widget_depth{tenant="a"} 7`,
		`widget_depth{tenant="b"} 9`,
		`widget_requests_total{tenant="a",route="index"} 1`,
		`widget_requests_total{tenant="b",route="index"} 2`,
		`widget_uptime_seconds{tenant="a"} 1`,
		`widget_uptime_seconds{tenant="b"} 2`,
		`widget_wait_seconds_bucket{tenant="a",le="1"} 1`,
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("rendered document missing %q:\n%s", want, doc)
		}
	}

	// A view renders the same document as its base (shared storage).
	var sv strings.Builder
	if err := a.WritePrometheus(&sv); err != nil {
		t.Fatal(err)
	}
	if sv.String() != doc {
		t.Fatal("view and base render different documents")
	}
}

// Views compose: a view of a view concatenates constant labels.
func TestWithLabelsCompose(t *testing.T) {
	reg := NewRegistry()
	v := reg.WithLabels("tenant", "a").WithLabels("shard", "0")
	names, values := v.ConstLabels()
	if strings.Join(names, ",") != "tenant,shard" || strings.Join(values, ",") != "a,0" {
		t.Fatalf("composed labels = %v=%v", names, values)
	}
	v.NewCounter("compose_events_total", "Events.").Inc()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `compose_events_total{tenant="a",shard="0"} 1`) {
		t.Fatalf("composed child missing:\n%s", sb.String())
	}
}

// Re-creating the same child through a view is idempotent, matching
// plain registration semantics.
func TestWithLabelsIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.WithLabels("tenant", "a")
	c1 := a.NewCounter("idem_events_total", "Events.")
	c2 := a.NewCounter("idem_events_total", "Events.")
	if c1 != c2 {
		t.Fatal("same view + same name must return the same child")
	}
	a.NewGaugeFunc("idem_value", "Value.", func() float64 { return 1 })
	a.NewGaugeFunc("idem_value", "Value.", func() float64 { return 99 })
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `idem_value{tenant="a"} 1`) {
		t.Fatalf("first callback must win:\n%s", sb.String())
	}
}

// Nop stays inert through WithLabels.
func TestWithLabelsNop(t *testing.T) {
	v := Nop.WithLabels("tenant", "a")
	if v != Nop {
		t.Fatal("Nop.WithLabels must return Nop")
	}
	v.NewCounter("nop_events_total", "Events.").Inc()
	v.NewGaugeVec("nop_depth", "Depth.", "k").With("v").Set(1)
	if v.Families() != 0 {
		t.Fatal("Nop view registered families")
	}
}
