package telemetry

import (
	"strings"
	"testing"
)

// The rendering contract: two registries holding the same families
// produce byte-identical documents regardless of the order in which
// the families were registered or the label children created. Package
// init order is not deterministic across refactors, and golden tests
// and scrape diffs must not depend on it.
func TestRenderOrderIndependentOfRegistration(t *testing.T) {
	type wiring func(r *Registry)
	wire := []wiring{
		func(r *Registry) { r.NewCounter("zz_events_total", "z help").Add(3) },
		func(r *Registry) { r.NewGauge("aa_depth", "a help").Set(2.5) },
		func(r *Registry) { r.NewHistogram("mm_latency_seconds", "m help", []float64{0.1, 1}).Observe(0.2) },
		func(r *Registry) {
			v := r.NewCounterVec("kk_ops_total", "k help", "op", "ok")
			v.With("write", "true").Add(1)
			v.With("read", "false").Add(2)
			v.With("read", "true").Add(5)
		},
		func(r *Registry) {
			v := r.NewHistogramVec("hh_span_seconds", "h help", []float64{0.5}, "stage")
			v.With("swap").Observe(0.1)
			v.With("cand").Observe(0.9)
		},
	}

	render := func(r *Registry) string {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		return b.String()
	}

	forward := NewRegistry()
	for _, w := range wire {
		w(forward)
	}
	reversed := NewRegistry()
	for i := len(wire) - 1; i >= 0; i-- {
		wire[i](reversed)
	}

	got, want := render(reversed), render(forward)
	if got != want {
		t.Fatalf("render depends on registration order:\nforward:\n%s\nreversed:\n%s", want, got)
	}

	// Families must appear in name order (the documented contract).
	names := []string{"aa_depth", "hh_span_seconds", "kk_ops_total", "mm_latency_seconds", "zz_events_total"}
	last := -1
	for _, name := range names {
		idx := strings.Index(want, "# HELP "+name+" ")
		if idx < 0 {
			t.Fatalf("family %s missing from render:\n%s", name, want)
		}
		if idx < last {
			t.Fatalf("family %s rendered out of name order:\n%s", name, want)
		}
		last = idx
	}

	// JSON rendering must be equally order-blind.
	var j1, j2 strings.Builder
	if err := forward.WriteJSON(&j1); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := reversed.WriteJSON(&j2); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if j1.String() != j2.String() {
		t.Fatalf("JSON render depends on registration order:\n%s\nvs:\n%s", j1.String(), j2.String())
	}
}

// Repeated renders of the same registry must be byte-identical: the
// vec children live in maps, and a render that iterated them directly
// would shuffle on every scrape.
func TestRenderStableAcrossCalls(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("ops_total", "ops", "kind")
	for _, k := range []string{"e", "c", "a", "d", "b"} {
		v.With(k).Inc()
	}
	var first strings.Builder
	if err := r.WritePrometheus(&first); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for i := 0; i < 20; i++ {
		var again strings.Builder
		if err := r.WritePrometheus(&again); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		if again.String() != first.String() {
			t.Fatalf("render %d differs:\n%s\nvs:\n%s", i, again.String(), first.String())
		}
	}
}
