package telemetry

import (
	"os"
	"strings"
	"sync"
	"testing"
)

func TestLoggerLevels(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelWarn)
	l.Debugf("d %d", 1)
	l.Infof("i %d", 2)
	l.Warnf("w %d", 3)
	l.Errorf("e %d", 4)
	out := b.String()
	if strings.Contains(out, "d 1") || strings.Contains(out, "i 2") {
		t.Fatalf("below-level lines emitted:\n%s", out)
	}
	if !strings.Contains(out, "WARN") || !strings.Contains(out, "w 3") {
		t.Fatalf("warn line missing:\n%s", out)
	}
	if !strings.Contains(out, "ERROR") || !strings.Contains(out, "e 4") {
		t.Fatalf("error line missing:\n%s", out)
	}

	l.SetLevel(LevelDebug)
	l.Debugf("now visible")
	if !strings.Contains(b.String(), "now visible") {
		t.Fatal("SetLevel did not take effect")
	}
}

func TestLoggerPrintfShim(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelInfo)
	// The Printf method must satisfy the Server.Logf hook signature.
	var hook func(string, ...interface{}) = l.Printf
	hook("via shim: %s", "ok")
	if !strings.Contains(b.String(), "via shim: ok") {
		t.Fatalf("Printf shim did not log:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "INFO") {
		t.Fatalf("Printf shim should log at info:\n%s", b.String())
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Infof("does not panic")
	l.SetLevel(LevelDebug)
	if l.Enabled(LevelError) {
		t.Fatal("nil logger reports enabled")
	}
}

func TestLoggerConcurrent(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		lines = append(lines, string(p))
		mu.Unlock()
		return len(p), nil
	})
	l := NewLogger(w, LevelInfo)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Infof("worker %d line %d", n, j)
			}
		}(i)
	}
	wg.Wait()
	if len(lines) != 400 {
		t.Fatalf("lines = %d, want 400", len(lines))
	}
	for _, line := range lines {
		if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
			t.Fatalf("interleaved or unterminated line: %q", line)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "Warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "": LevelInfo,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Fatal("ParseLevel(verbose) should fail")
	}
}

func TestLevelFromEnv(t *testing.T) {
	t.Setenv("MIDAS_LOG_LEVEL", "error")
	if got := LevelFromEnv(); got != LevelError {
		t.Fatalf("LevelFromEnv = %v, want error", got)
	}
	t.Setenv("MIDAS_LOG_LEVEL", "nonsense")
	if got := LevelFromEnv(); got != LevelInfo {
		t.Fatalf("LevelFromEnv fallback = %v, want info", got)
	}
	os.Unsetenv("MIDAS_LOG_LEVEL")
}

func TestLoggerFatalf(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelInfo)
	code := -1
	l.exit = func(c int) { code = c }
	l.Fatalf("fatal: %s", "boom")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(b.String(), "fatal: boom") {
		t.Fatalf("fatal line missing:\n%s", b.String())
	}
}
