package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4): HELP/TYPE headers, escaped
// label values, cumulative histogram buckets with the implicit +Inf
// bucket, and _sum/_count series.
//
// Output order is deterministic by contract: families are rendered in
// name order and the children of labelled families in label-value
// order, independent of registration or observation order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.snapshotMetrics() {
		fam := m.family()
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			fam.name, escapeHelp(fam.help), fam.name, fam.kind); err != nil {
			return err
		}
		var err error
		switch v := m.(type) {
		case *Histogram:
			err = writeHistogram(w, fam, nil, v)
		case *HistogramVec:
			for _, child := range v.children() {
				if err = writeHistogram(w, fam, child.labels, child.h); err != nil {
					break
				}
			}
		default:
			for _, s := range m.samples() {
				if _, err = fmt.Fprintf(w, "%s%s %s\n",
					fam.name, renderLabels(fam.labels, s.labels), formatValue(s.value)); err != nil {
					break
				}
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, fam familyMeta, labelValues []string, h *Histogram) error {
	upper, cumulative, count, sum := h.bucketState()
	for i, ub := range upper {
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			fam.name, renderLabelsLe(fam.labels, labelValues, formatValue(ub)), cumulative[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		fam.name, renderLabelsLe(fam.labels, labelValues, "+Inf"), cumulative[len(cumulative)-1]); err != nil {
		return err
	}
	base := renderLabels(fam.labels, labelValues)
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fam.name, base, formatValue(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", fam.name, base, count)
	return err
}

// renderLabels renders `{k1="v1",k2="v2"}` (empty string when there are
// no labels), escaping values per the exposition format.
func renderLabels(names, values []string) string {
	if len(names) == 0 || len(values) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i >= len(values) {
			break
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// renderLabelsLe renders labels with a trailing le="..." bucket bound.
func renderLabelsLe(names, values []string, le string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i >= len(values) {
			break
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	if len(names) > 0 && len(values) > 0 {
		b.WriteByte(',')
	}
	b.WriteString(`le="`)
	b.WriteString(le)
	b.WriteString(`"}`)
	return b.String()
}

// EscapeLabelValue escapes a label value for the Prometheus text
// format: backslash, double-quote and newline must be escaped.
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string (backslash and newline only; quotes
// are legal there).
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// formatValue renders a float the way Prometheus expects: integers
// without exponent or trailing zeros, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON renders the registry as a single expvar-style JSON object:
// metric name -> value for plain families, name -> {"<labels>": value}
// for vectors, and name -> {count, sum, buckets} for histograms. It is
// the /debug/vars payload.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := make(map[string]interface{})
	for _, m := range r.snapshotMetrics() {
		fam := m.family()
		switch v := m.(type) {
		case *Histogram:
			doc[fam.name] = histJSON(v)
		case *HistogramVec:
			obj := make(map[string]interface{})
			for _, child := range v.children() {
				obj[jsonLabelKey(fam.labels, child.labels)] = histJSON(child.h)
			}
			doc[fam.name] = obj
		case *CounterVec, *GaugeVec, *funcVec:
			obj := make(map[string]interface{})
			for _, s := range m.samples() {
				obj[jsonLabelKey(fam.labels, s.labels)] = s.value
			}
			doc[fam.name] = obj
		default:
			ss := m.samples()
			if len(ss) == 1 && len(ss[0].labels) == 0 {
				doc[fam.name] = ss[0].value
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func jsonLabelKey(names, values []string) string {
	parts := make([]string, 0, len(names))
	for i, n := range names {
		if i >= len(values) {
			break
		}
		parts = append(parts, n+"="+values[i])
	}
	return strings.Join(parts, ",")
}

func histJSON(h *Histogram) map[string]interface{} {
	upper, cumulative, count, sum := h.bucketState()
	buckets := make(map[string]uint64, len(upper)+1)
	for i, ub := range upper {
		buckets["le="+formatValue(ub)] = cumulative[i]
	}
	buckets["le=+Inf"] = cumulative[len(cumulative)-1]
	return map[string]interface{}{
		"count":   count,
		"sum":     sum,
		"buckets": buckets,
	}
}
