package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("test_events_total", "events")
	vec := reg.NewCounterVec("test_labelled_total", "labelled events", "kind")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				vec.With("a").Inc()
				vec.With("b").Add(2)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := vec.With("a").Value(); got != workers*perWorker {
		t.Fatalf("vec[a] = %d, want %d", got, workers*perWorker)
	}
	if got := vec.With("b").Value(); got != 2*workers*perWorker {
		t.Fatalf("vec[b] = %d, want %d", got, 2*workers*perWorker)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	reg := NewRegistry()
	g := reg.NewGauge("test_inflight", "in-flight")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %v, want 0", got)
	}
	g.Set(42.5)
	if got := g.Value(); got != 42.5 {
		t.Fatalf("gauge = %v, want 42.5", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("test_latency_seconds", "latency", []float64{0.1, 1, 10})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				h.Observe(0.05) // first bucket
				h.Observe(0.5)  // second
				h.Observe(5)    // third
				h.Observe(50)   // +Inf
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
	wantSum := 8 * 250 * (0.05 + 0.5 + 5 + 50)
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
	_, cum, _, _ := h.bucketState()
	want := []uint64{2000, 4000, 6000, 8000}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d", i, cum[i], w)
		}
	}
}

func TestPrometheusRendering(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("midas_a_total", "counts a").Add(3)
	reg.NewGauge("midas_b", "gauge b").Set(1.5)
	vec := reg.NewCounterVec("midas_c_total", "labelled", "route", "code")
	vec.With("/maintain", "200").Add(2)
	h := reg.NewHistogram("midas_d_seconds", "hist", []float64{0.5, 1})
	h.Observe(0.2)
	h.Observe(2)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP midas_a_total counts a",
		"# TYPE midas_a_total counter",
		"midas_a_total 3",
		"# TYPE midas_b gauge",
		"midas_b 1.5",
		`midas_c_total{route="/maintain",code="200"} 2`,
		"# TYPE midas_d_seconds histogram",
		`midas_d_seconds_bucket{le="0.5"} 1`,
		`midas_d_seconds_bucket{le="1"} 1`,
		`midas_d_seconds_bucket{le="+Inf"} 2`,
		"midas_d_seconds_sum 2.2",
		"midas_d_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	vec := reg.NewCounterVec("esc_total", "escaping", "path")
	vec.With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaped sample %q missing from:\n%s", want, b.String())
	}
	if got := EscapeLabelValue(`plain`); got != "plain" {
		t.Fatalf("EscapeLabelValue(plain) = %q", got)
	}
}

func TestJSONRendering(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("j_total", "j").Add(7)
	vec := reg.NewCounterVec("jv_total", "jv", "kind")
	vec.With("x").Inc()
	reg.NewHistogram("jh_seconds", "jh", []float64{1}).Observe(0.5)
	var b strings.Builder
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"j_total": 7`, `"kind=x": 1`, `"jh_seconds"`, `"count": 1`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q\n%s", want, out)
		}
	}
}

func TestIdempotentRegistration(t *testing.T) {
	reg := NewRegistry()
	a := reg.NewCounter("same_total", "x")
	b := reg.NewCounter("same_total", "x")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("re-registered counter does not share state")
	}
	if reg.Families() != 1 {
		t.Fatalf("families = %d, want 1", reg.Families())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type mismatch on an existing name should panic")
		}
	}()
	reg.NewGauge("same_total", "x")
}

func TestNopRegistryIsInertAndAllocationFree(t *testing.T) {
	c := Nop.NewCounter("nop_total", "nop")
	g := Nop.NewGauge("nop_gauge", "nop")
	h := Nop.NewHistogram("nop_seconds", "nop", nil)
	v := Nop.NewCounterVec("nop_vec_total", "nop", "k")
	hv := Nop.NewHistogramVec("nop_hv_seconds", "nop", nil, "k")

	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(5)
		g.Set(1)
		g.Add(2)
		h.Observe(0.1)
		v.With("x").Inc()
		hv.With("x").Observe(0.2)
	})
	if allocs != 0 {
		t.Fatalf("nop hot path allocates: %v allocs/op", allocs)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nop metrics accumulated state")
	}
	if Nop.Families() != 0 {
		t.Fatal("nop registry registered families")
	}
	var b strings.Builder
	if err := Nop.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nop rendering: err=%v out=%q", err, b.String())
	}

	// A nil registry behaves like Nop.
	var nilReg *Registry
	nilReg.NewCounter("x_total", "x").Inc()
	if nilReg.Families() != 0 {
		t.Fatal("nil registry registered families")
	}
}

func TestSpan(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("span_seconds", "span", nil)
	sp := h.Start()
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d <= 0 {
		t.Fatalf("span duration = %v", d)
	}
	if h.Count() != 1 {
		t.Fatalf("span did not observe: count=%d", h.Count())
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:            "0",
		3:            "3",
		1.5:          "1.5",
		0.001:        "0.001",
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
}
