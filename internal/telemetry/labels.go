package telemetry

import (
	"sort"
	"sync"
)

// This file adds labelled views over a Registry — the multi-tenant
// telemetry seam. A view created with WithLabels behaves exactly like
// the registry it derives from, except that every family created
// through it carries the view's constant labels and every metric it
// hands out is the child for the view's constant label values. Two
// views of the same registry that create the same family share it: the
// family is registered once with the constant label names, and each
// view contributes its own children. Serving shells use this to give
// each tenant shard a `tenant="..."`-labelled slice of every panel,
// snapshot and engine metric family while scraping one registry.
//
// Views share the base registry's storage, so WritePrometheus and
// WriteJSON on either render the same document.

// WithLabels returns a labelled view of r: pairs is an alternating
// name, value list (WithLabels("tenant", "pubchem")). Views compose —
// a view of a view concatenates the constant labels. A Nop (or nil)
// registry returns Nop; a malformed (odd-length or empty) pair list
// panics, as this is a wiring error.
func (r *Registry) WithLabels(pairs ...string) *Registry {
	if r.isNop() {
		return Nop
	}
	if len(pairs) == 0 || len(pairs)%2 != 0 {
		panic("telemetry: WithLabels needs a non-empty, even-length name/value list")
	}
	base := r
	var names, values []string
	if r.base != nil {
		base = r.base
		names = append(names, r.constNames...)
		values = append(values, r.constValues...)
	}
	for i := 0; i < len(pairs); i += 2 {
		names = append(names, pairs[i])
		values = append(values, pairs[i+1])
	}
	return &Registry{base: base, constNames: names, constValues: values}
}

// ConstLabels returns the view's constant label names and values (nil
// for a plain registry). Exposed for tests and diagnostics.
func (r *Registry) ConstLabels() (names, values []string) {
	return append([]string(nil), r.constNames...), append([]string(nil), r.constValues...)
}

// ---------------------------------------------------------------------
// GaugeVec

// GaugeVec is a gauge family partitioned by label values. Label values
// must be drawn from a bounded set — cardinality is the caller's
// responsibility.
type GaugeVec struct {
	nop    bool
	fam    familyMeta
	mu     sync.RWMutex
	kids   map[string]*Gauge
	kidLbl map[string][]string

	// curry delegates a labelled view's vec to the registered base
	// family with the view's constant label values prepended. A curried
	// vec is never itself registered or rendered.
	curry  *GaugeVec
	prefix []string
}

var nopGaugeVec = &GaugeVec{nop: true}

func (v *GaugeVec) family() familyMeta { return v.fam }

func (v *GaugeVec) samples() []sample {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]sample, 0, len(v.kids))
	for k, g := range v.kids {
		out = append(out, sample{labels: v.kidLbl[k], value: g.Value()})
	}
	sort.Slice(out, func(i, j int) bool {
		return labelKey(out[i].labels) < labelKey(out[j].labels)
	})
	return out
}

// With returns the child gauge for the given label values (one per
// declared label name, in order).
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil || v.nop {
		return nopGauge
	}
	if v.curry != nil {
		return v.curry.With(append(append([]string(nil), v.prefix...), values...)...)
	}
	key := labelKey(values)
	v.mu.RLock()
	g, ok := v.kids[key]
	v.mu.RUnlock()
	if ok {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok := v.kids[key]; ok {
		return g
	}
	g = &Gauge{}
	v.kids[key] = g
	v.kidLbl[key] = append([]string(nil), values...)
	return g
}

// NewGaugeVec registers a labelled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	if r.isNop() {
		return nopGaugeVec
	}
	if r.base != nil {
		base := r.base.NewGaugeVec(name, help, append(append([]string(nil), r.constNames...), labels...)...)
		return &GaugeVec{curry: base, prefix: r.constValues}
	}
	m := r.register(&GaugeVec{
		fam:    familyMeta{name: name, help: help, kind: "gauge", labels: labels},
		kids:   make(map[string]*Gauge),
		kidLbl: make(map[string][]string),
	})
	v, ok := m.(*GaugeVec)
	if !ok {
		panic(badType(name))
	}
	return v
}

// ---------------------------------------------------------------------
// funcVec: labelled callback families (view-created GaugeFunc /
// CounterFunc children — one callback per label-value tuple)

type funcVec struct {
	fam    familyMeta
	mu     sync.RWMutex
	fns    map[string]func() float64
	kidLbl map[string][]string
}

func (v *funcVec) family() familyMeta { return v.fam }

func (v *funcVec) samples() []sample {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]sample, 0, len(v.fns))
	for k, fn := range v.fns {
		out = append(out, sample{labels: v.kidLbl[k], value: fn()})
	}
	sort.Slice(out, func(i, j int) bool {
		return labelKey(out[i].labels) < labelKey(out[j].labels)
	})
	return out
}

// setChild installs fn as the child for the given label values,
// keeping the first registration (idempotent, matching register).
func (v *funcVec) setChild(values []string, fn func() float64) {
	key := labelKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.fns[key]; ok {
		return
	}
	v.fns[key] = fn
	v.kidLbl[key] = append([]string(nil), values...)
}

// newFuncChild registers (or fetches) the labelled callback family and
// adds the view's child to it.
func (r *Registry) newFuncChild(kind, name, help string, fn func() float64) {
	m := r.base.register(&funcVec{
		fam:    familyMeta{name: name, help: help, kind: kind, labels: r.constNames},
		fns:    make(map[string]func() float64),
		kidLbl: make(map[string][]string),
	})
	v, ok := m.(*funcVec)
	if !ok {
		panic(badType(name))
	}
	v.setChild(r.constValues, fn)
}
