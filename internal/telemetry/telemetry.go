// Package telemetry is the observability substrate of the MIDAS stack:
// stdlib-only counters, gauges and fixed-bucket histograms with atomic
// hot paths, a Registry that renders both Prometheus text format and
// expvar-style JSON, a lightweight span/stage-timer API, and a small
// leveled logger.
//
// Design rules:
//
//   - The hot path is an atomic add (plus a bucket scan for
//     histograms); no locks, no allocations, no formatting.
//   - Nop is a registry whose metrics are shared inert singletons:
//     every operation on them is a single branch, so library users and
//     tests that never ask for telemetry pay (almost) nothing.
//   - Registration is idempotent by name: asking twice for the same
//     metric returns the same object, so package-level wiring can run
//     once per process or once per engine without double registration.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// metric is one registered family: it knows how to emit its samples.
// Histogram families return nil from samples and are rendered through
// their bucket state instead.
type metric interface {
	family() familyMeta
	samples() []sample
}

type familyMeta struct {
	name   string
	help   string
	kind   string // "counter" | "gauge" | "histogram"
	labels []string
}

type sample struct {
	labels []string // label values aligned with familyMeta.labels
	value  float64
}

// Registry holds a set of metric families. The zero value is not
// usable; construct with NewRegistry, or use Nop.
type Registry struct {
	nop bool

	mu      sync.Mutex
	ordered []metric
	byName  map[string]metric

	// base/constNames/constValues make this registry a labelled view
	// (WithLabels): families are registered on base with the constant
	// label names, and New* hands out the child for the constant label
	// values. nil base = plain registry.
	base        *Registry
	constNames  []string
	constValues []string
}

// NewRegistry returns an empty collecting registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]metric)}
}

// Nop is the do-nothing registry: metrics created from it are shared
// inert singletons, operations on them are single-branch no-ops, and
// rendering produces no families. A nil *Registry behaves the same, so
// optional telemetry can be threaded without guarding every call site.
var Nop = &Registry{nop: true}

func (r *Registry) isNop() bool { return r == nil || r.nop }

// register installs m under its name, returning the already-registered
// family when the name is taken (idempotent registration).
func (r *Registry) register(m metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.byName[m.family().name]; ok {
		return existing
	}
	r.byName[m.family().name] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Families returns the number of registered metric families. A
// labelled view reports its base registry's families — they share
// storage.
func (r *Registry) Families() int {
	if r.isNop() {
		return 0
	}
	if r.base != nil {
		return r.base.Families()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ordered)
}

// snapshotMetrics returns the families sorted by name. Sorted — not
// registration — order is the rendering contract: two processes (or
// two runs) that register the same families in different orders must
// produce byte-identical /metrics documents, so scrape diffs and
// golden tests never depend on package-init ordering.
func (r *Registry) snapshotMetrics() []metric {
	if r.isNop() {
		return nil
	}
	if r.base != nil {
		return r.base.snapshotMetrics()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]metric, len(r.ordered))
	copy(out, r.ordered)
	sort.Slice(out, func(i, j int) bool { return out[i].family().name < out[j].family().name })
	return out
}

func badType(name string) string {
	return fmt.Sprintf("telemetry: %s already registered with a different type", name)
}

// ---------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing event count.
type Counter struct {
	nop bool
	v   atomic.Uint64
	fam familyMeta
}

var nopCounter = &Counter{nop: true}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n; negative deltas are ignored (counters are monotonic).
func (c *Counter) Add(n int) {
	if c == nil || c.nop || n <= 0 {
		return
	}
	c.v.Add(uint64(n))
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil || c.nop {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) family() familyMeta { return c.fam }
func (c *Counter) samples() []sample  { return []sample{{value: float64(c.v.Load())}} }

// NewCounter registers (or returns the existing) counter. Through a
// labelled view it returns the view's child of a labelled family.
func (r *Registry) NewCounter(name, help string) *Counter {
	if r.isNop() {
		return nopCounter
	}
	if r.base != nil {
		return r.base.NewCounterVec(name, help, r.constNames...).With(r.constValues...)
	}
	m := r.register(&Counter{fam: familyMeta{name: name, help: help, kind: "counter"}})
	c, ok := m.(*Counter)
	if !ok {
		panic(badType(name))
	}
	return c
}

// counterFunc exposes an externally maintained monotonic value (e.g. a
// package-level atomic in a kernel package) as a counter family.
type counterFunc struct {
	fam familyMeta
	fn  func() float64
}

func (c *counterFunc) family() familyMeta { return c.fam }
func (c *counterFunc) samples() []sample  { return []sample{{value: c.fn()}} }

// NewCounterFunc registers a counter whose value is read from fn at
// scrape time. fn must be safe for concurrent use.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	if r.isNop() {
		return
	}
	if r.base != nil {
		r.newFuncChild("counter", name, help, fn)
		return
	}
	r.register(&counterFunc{fam: familyMeta{name: name, help: help, kind: "counter"}, fn: fn})
}

// ---------------------------------------------------------------------
// Gauge

// Gauge is a value that can go up and down (float64 bits, atomic).
type Gauge struct {
	nop  bool
	bits atomic.Uint64
	fam  familyMeta
}

var nopGauge = &Gauge{nop: true}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil || g.nop {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (CAS loop; contention-safe).
func (g *Gauge) Add(delta float64) {
	if g == nil || g.nop {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds 1 and Dec subtracts 1; the pair tracks in-flight work.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil || g.nop {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) family() familyMeta { return g.fam }
func (g *Gauge) samples() []sample  { return []sample{{value: g.Value()}} }

// NewGauge registers (or returns the existing) gauge. Through a
// labelled view it returns the view's child of a labelled family.
func (r *Registry) NewGauge(name, help string) *Gauge {
	if r.isNop() {
		return nopGauge
	}
	if r.base != nil {
		return r.base.NewGaugeVec(name, help, r.constNames...).With(r.constValues...)
	}
	m := r.register(&Gauge{fam: familyMeta{name: name, help: help, kind: "gauge"}})
	g, ok := m.(*Gauge)
	if !ok {
		panic(badType(name))
	}
	return g
}

// gaugeFunc exposes a callback-valued gauge (uptime, pool sizes, ...).
type gaugeFunc struct {
	fam familyMeta
	fn  func() float64
}

func (g *gaugeFunc) family() familyMeta { return g.fam }
func (g *gaugeFunc) samples() []sample  { return []sample{{value: g.fn()}} }

// NewGaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	if r.isNop() {
		return
	}
	if r.base != nil {
		r.newFuncChild("gauge", name, help, fn)
		return
	}
	r.register(&gaugeFunc{fam: familyMeta{name: name, help: help, kind: "gauge"}, fn: fn})
}

// ---------------------------------------------------------------------
// Histogram

// DefBuckets are the default latency buckets (seconds): Prometheus's
// classic spread widened upward for maintenance batches.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts.
type Histogram struct {
	nop    bool
	upper  []float64       // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(upper)+1, last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
	fam    familyMeta
}

var nopHistogram = &Histogram{nop: true}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil || h.nop {
		return
	}
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.ObserveDuration(time.Since(t0)) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil || h.nop {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil || h.nop {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Span times one operation against a histogram.
type Span struct {
	h     *Histogram
	start time.Time
}

// Start opens a span; End observes the elapsed seconds.
func (h *Histogram) Start() Span { return Span{h: h, start: time.Now()} }

// End closes the span, records it, and returns the elapsed duration.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	s.h.ObserveDuration(d)
	return d
}

func (h *Histogram) family() familyMeta { return h.fam }
func (h *Histogram) samples() []sample  { return nil } // rendered from bucket state

// bucketState snapshots the histogram for rendering: cumulative bucket
// counts aligned with upper bounds, then total count and sum.
func (h *Histogram) bucketState() (upper []float64, cumulative []uint64, count uint64, sum float64) {
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return h.upper, cumulative, h.Count(), h.Sum()
}

func newHistogram(fam familyMeta, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	up := append([]float64(nil), buckets...)
	sort.Float64s(up)
	return &Histogram{
		upper:  up,
		counts: make([]atomic.Uint64, len(up)+1),
		fam:    fam,
	}
}

// NewHistogram registers (or returns the existing) histogram. A nil or
// empty buckets slice selects DefBuckets. Through a labelled view it
// returns the view's child of a labelled family.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	if r.isNop() {
		return nopHistogram
	}
	if r.base != nil {
		return r.base.NewHistogramVec(name, help, buckets, r.constNames...).With(r.constValues...)
	}
	m := r.register(newHistogram(familyMeta{name: name, help: help, kind: "histogram"}, buckets))
	h, ok := m.(*Histogram)
	if !ok {
		panic(badType(name))
	}
	return h
}

// ---------------------------------------------------------------------
// Vector (labelled) families

// labelKey renders label values into a canonical child key.
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

// CounterVec is a counter family partitioned by label values. Label
// values must be drawn from a bounded set — cardinality is the
// caller's responsibility.
type CounterVec struct {
	nop    bool
	fam    familyMeta
	mu     sync.RWMutex
	kids   map[string]*Counter
	kidLbl map[string][]string

	// curry delegates a labelled view's vec to the registered base
	// family with the view's constant label values prepended. A curried
	// vec is never itself registered or rendered.
	curry  *CounterVec
	prefix []string
}

var nopCounterVec = &CounterVec{nop: true}

func (v *CounterVec) family() familyMeta { return v.fam }

func (v *CounterVec) samples() []sample {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]sample, 0, len(v.kids))
	for k, c := range v.kids {
		out = append(out, sample{labels: v.kidLbl[k], value: float64(c.Value())})
	}
	sort.Slice(out, func(i, j int) bool {
		return labelKey(out[i].labels) < labelKey(out[j].labels)
	})
	return out
}

// With returns the child counter for the given label values (one per
// declared label name, in order).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil || v.nop {
		return nopCounter
	}
	if v.curry != nil {
		return v.curry.With(append(append([]string(nil), v.prefix...), values...)...)
	}
	key := labelKey(values)
	v.mu.RLock()
	c, ok := v.kids[key]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.kids[key]; ok {
		return c
	}
	c = &Counter{}
	v.kids[key] = c
	v.kidLbl[key] = append([]string(nil), values...)
	return c
}

// NewCounterVec registers a labelled counter family. Through a
// labelled view, the family carries the view's constant labels first
// and With prepends the constant values.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	if r.isNop() {
		return nopCounterVec
	}
	if r.base != nil {
		base := r.base.NewCounterVec(name, help, append(append([]string(nil), r.constNames...), labels...)...)
		return &CounterVec{curry: base, prefix: r.constValues}
	}
	m := r.register(&CounterVec{
		fam:    familyMeta{name: name, help: help, kind: "counter", labels: labels},
		kids:   make(map[string]*Counter),
		kidLbl: make(map[string][]string),
	})
	v, ok := m.(*CounterVec)
	if !ok {
		panic(badType(name))
	}
	return v
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct {
	nop     bool
	fam     familyMeta
	buckets []float64
	mu      sync.RWMutex
	kids    map[string]*Histogram
	kidLbl  map[string][]string

	// curry/prefix: see CounterVec.
	curry  *HistogramVec
	prefix []string
}

var nopHistogramVec = &HistogramVec{nop: true}

func (v *HistogramVec) family() familyMeta { return v.fam }
func (v *HistogramVec) samples() []sample  { return nil } // rendered from children

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil || v.nop {
		return nopHistogram
	}
	if v.curry != nil {
		return v.curry.With(append(append([]string(nil), v.prefix...), values...)...)
	}
	key := labelKey(values)
	v.mu.RLock()
	h, ok := v.kids[key]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.kids[key]; ok {
		return h
	}
	h = newHistogram(v.fam, v.buckets)
	v.kids[key] = h
	v.kidLbl[key] = append([]string(nil), values...)
	return h
}

type histChild struct {
	labels []string
	h      *Histogram
}

// children returns the child histograms sorted by label values.
func (v *HistogramVec) children() []histChild {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]histChild, 0, len(v.kids))
	for k, h := range v.kids {
		out = append(out, histChild{labels: v.kidLbl[k], h: h})
	}
	sort.Slice(out, func(i, j int) bool {
		return labelKey(out[i].labels) < labelKey(out[j].labels)
	})
	return out
}

// NewHistogramVec registers a labelled histogram family. A nil or empty
// buckets slice selects DefBuckets. Through a labelled view, the family
// carries the view's constant labels first and With prepends the
// constant values.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r.isNop() {
		return nopHistogramVec
	}
	if r.base != nil {
		base := r.base.NewHistogramVec(name, help, buckets, append(append([]string(nil), r.constNames...), labels...)...)
		return &HistogramVec{curry: base, prefix: r.constValues}
	}
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	m := r.register(&HistogramVec{
		fam:     familyMeta{name: name, help: help, kind: "histogram", labels: labels},
		buckets: buckets,
		kids:    make(map[string]*Histogram),
		kidLbl:  make(map[string][]string),
	})
	v, ok := m.(*HistogramVec)
	if !ok {
		panic(badType(name))
	}
	return v
}
