package telemetry

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity. Messages below the logger's level are
// dropped before formatting.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int32(l))
}

// ParseLevel parses a level name ("debug", "info", "warn"/"warning",
// "error"), case-insensitively.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("telemetry: unknown log level %q", s)
}

// LevelFromEnv reads MIDAS_LOG_LEVEL; unset or unparseable values fall
// back to info.
func LevelFromEnv() Level {
	lvl, err := ParseLevel(os.Getenv("MIDAS_LOG_LEVEL"))
	if err != nil {
		return LevelInfo
	}
	return lvl
}

// Logger is a small leveled logger: timestamped lines to one writer,
// with an atomically adjustable level. The zero value is unusable;
// construct with NewLogger or NewLoggerFromEnv. A nil *Logger drops
// everything, so optional logging needs no guards.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level atomic.Int32
	// now is stubbed in tests.
	now func() time.Time
	// exit is stubbed in tests of Fatalf.
	exit func(int)
}

// NewLogger returns a logger writing to w at the given level.
func NewLogger(w io.Writer, level Level) *Logger {
	l := &Logger{w: w, now: time.Now, exit: os.Exit}
	l.level.Store(int32(level))
	return l
}

// NewLoggerFromEnv returns a logger at the MIDAS_LOG_LEVEL level.
func NewLoggerFromEnv(w io.Writer) *Logger {
	return NewLogger(w, LevelFromEnv())
}

// SetLevel changes the level at runtime (safe under concurrency).
func (l *Logger) SetLevel(level Level) {
	if l == nil {
		return
	}
	l.level.Store(int32(level))
}

// Enabled reports whether a message at the given level would be
// emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && int32(level) >= l.level.Load()
}

func (l *Logger) output(level Level, format string, args ...interface{}) {
	if !l.Enabled(level) {
		return
	}
	msg := fmt.Sprintf(format, args...)
	line := fmt.Sprintf("%s %-5s %s", l.now().Format("2006/01/02 15:04:05"), strings.ToUpper(level.String()), msg)
	if !strings.HasSuffix(line, "\n") {
		line += "\n"
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	io.WriteString(l.w, line)
}

// Debugf logs at debug level.
func (l *Logger) Debugf(format string, args ...interface{}) { l.output(LevelDebug, format, args...) }

// Infof logs at info level.
func (l *Logger) Infof(format string, args ...interface{}) { l.output(LevelInfo, format, args...) }

// Warnf logs at warn level.
func (l *Logger) Warnf(format string, args ...interface{}) { l.output(LevelWarn, format, args...) }

// Errorf logs at error level.
func (l *Logger) Errorf(format string, args ...interface{}) { l.output(LevelError, format, args...) }

// Printf logs at info level — the drop-in signature for code holding a
// `func(string, ...interface{})` hook (Server.Logf, Watcher.Logf).
func (l *Logger) Printf(format string, args ...interface{}) { l.Infof(format, args...) }

// Fatalf logs at error level and exits with status 1, mirroring
// log.Fatalf for the command-line shims.
func (l *Logger) Fatalf(format string, args ...interface{}) {
	l.output(LevelError, format, args...)
	exit := os.Exit
	if l != nil && l.exit != nil {
		exit = l.exit
	}
	exit(1)
}
