package experiments

import "github.com/midas-graph/midas/graph"

// BaselineFigure reproduces Figures 14 and 15 (Exp 3b/3c): MIDAS versus
// CATAPULT, CATAPULT++ and Random on one dataset profile across batch
// modifications — maintenance time, missed percentage, reduction ratio
// μ and the four quality measures.
type BaselineFigure struct {
	Dataset     string
	Comparisons []BatchComparison
}

// Fig14BaselinesAIDS runs the sweep on the AIDS-like profile.
func Fig14BaselinesAIDS(s Scale) BaselineFigure {
	return baselineFigure("AIDS-like", aidsBase(s.Base), s)
}

// Fig15BaselinesPubChem runs the sweep on the PubChem-like profile.
func Fig15BaselinesPubChem(s Scale) BaselineFigure {
	return baselineFigure("PubChem-like", pubchemBase(s.Base), s)
}

func baselineFigure(name string, base func(int64) *graph.Database, s Scale) BaselineFigure {
	res := BaselineFigure{Dataset: name}
	for _, spec := range DefaultBatches() {
		res.Comparisons = append(res.Comparisons, runBatch(base, spec, s))
	}
	return res
}

// Tables renders the time/MP/μ table and the quality table.
func (r BaselineFigure) Tables() []*Table {
	tt := &Table{
		Title:  "Figure 14/15 (" + r.Dataset + "): maintenance time, MP and μ per batch",
		Header: []string{"batch", "approach", "time", "MP%", "avg steps", "mu vs MIDAS"},
	}
	for _, c := range r.Comparisons {
		for _, app := range []Approach{MIDAS, CATAPULT, CATAPULTPP, Random} {
			o := c.Outcomes[app]
			tt.Add(c.Batch, string(app), ms(o.Time), f2(o.MP), f2(o.AvgSteps), f3(o.Mu))
		}
	}
	tq := &Table{
		Title:  "Figure 14/15 (" + r.Dataset + "): pattern set quality per batch",
		Header: []string{"batch", "approach", "scov", "lcov", "div", "cog"},
	}
	for _, c := range r.Comparisons {
		for _, app := range []Approach{MIDAS, CATAPULT, CATAPULTPP, Random} {
			q := c.Outcomes[app].Quality
			tq.Add(c.Batch, string(app), f3(q.Scov), f3(q.Lcov), f2(q.Div), f2(q.Cog))
		}
	}
	return []*Table{tt, tq}
}
