package experiments

import (
	"strconv"
	"time"

	"github.com/midas-graph/midas/internal/core"
)

// Fig11Epsilon is one ε setting's outcome: MIDAS maintenance times
// versus the CATAPULT++ from-scratch rebuild.
type Fig11Epsilon struct {
	Epsilon       float64
	PMT           time.Duration // MIDAS pattern maintenance time
	ClusterTime   time.Duration // MIDAS cluster+CSG maintenance
	Major         bool
	ScratchPMT    time.Duration // CATAPULT++ rebuild on D⊕ΔD
	QualityDeltaS float64       // scov(MIDAS) - scov(CATAPULT++)
}

// Fig11Kappa is one κ=λ setting's outcome.
type Fig11Kappa struct {
	Kappa float64
	PMT   time.Duration
	PGT   time.Duration
	Swaps int
}

// Fig11Result reproduces Figure 11 (Exp 1): threshold sensitivity on
// the AIDS-like dataset with a batch addition.
type Fig11Result struct {
	EpsilonRows []Fig11Epsilon
	KappaRows   []Fig11Kappa
}

// Fig11Thresholds varies the evolution ratio threshold ε and the
// swapping thresholds κ=λ (paper grid: ε ∈ {0.05, 0.1, 0.2},
// κ=λ ∈ {0.05, 0.1, 0.2, 0.4}; our ε grid is scaled ×0.1 to match the
// synthetic generator's graphlet-drift calibration).
func Fig11Thresholds(s Scale) Fig11Result {
	var res Fig11Result
	base := aidsBase(s.Base)
	update := boronInsert(s.Delta, s.Seed+100)

	for _, eps := range []float64{0.01, 0.02, 0.05} {
		cfg := s.config()
		cfg.Epsilon = eps
		eng := core.NewEngine(base(s.Seed), cfg)
		u := update(eng.DB())
		rep, err := eng.Maintain(u)
		if err != nil {
			panic(err)
		}
		// CATAPULT++ from scratch on the evolved database.
		after, err := base(s.Seed).ApplyToCopy(cloneUpdate(u))
		if err != nil {
			panic(err)
		}
		cfgP := s.config()
		cfgP.UseClosedFeatures = true
		cfgP.UseIndices = true
		scratch := core.NewEngineWith(after, cfgP)

		res.EpsilonRows = append(res.EpsilonRows, Fig11Epsilon{
			Epsilon:       eps,
			PMT:           rep.Total,
			ClusterTime:   rep.ClusterTime + rep.CSGTime,
			Major:         rep.Major,
			ScratchPMT:    scratch.BootstrapTime,
			QualityDeltaS: eng.Quality().Scov - scratch.Quality().Scov,
		})
	}

	for _, kappa := range []float64{0.05, 0.1, 0.2, 0.4} {
		cfg := s.config()
		cfg.Kappa = kappa
		cfg.Lambda = kappa
		eng := core.NewEngine(base(s.Seed), cfg)
		u := update(eng.DB())
		rep, err := eng.Maintain(u)
		if err != nil {
			panic(err)
		}
		res.KappaRows = append(res.KappaRows, Fig11Kappa{
			Kappa: kappa,
			PMT:   rep.Total,
			PGT:   rep.PGT(),
			Swaps: rep.Swaps,
		})
	}
	return res
}

// Tables renders both panels of the figure.
func (r Fig11Result) Tables() []*Table {
	te := &Table{
		Title:  "Figure 11 (top): varying evolution ratio threshold ε (AIDS-like, batch addition)",
		Header: []string{"epsilon", "major", "MIDAS PMT", "MIDAS cluster+CSG", "CATAPULT++ PMT", "Δscov"},
	}
	for _, row := range r.EpsilonRows {
		te.Add(f2(row.Epsilon), boolStr(row.Major), ms(row.PMT), ms(row.ClusterTime),
			ms(row.ScratchPMT), f3(row.QualityDeltaS))
	}
	tk := &Table{
		Title:  "Figure 11 (bottom): varying swapping thresholds κ=λ",
		Header: []string{"kappa", "PMT", "PGT", "swaps"},
	}
	for _, row := range r.KappaRows {
		tk.Add(f2(row.Kappa), ms(row.PMT), ms(row.PGT), itoa(row.Swaps))
	}
	return []*Table{te, tk}
}

func boolStr(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func itoa(n int) string { return strconv.Itoa(n) }
