package experiments

import (
	"fmt"
	"time"

	"github.com/midas-graph/midas/internal/ged"
	"github.com/midas-graph/midas/internal/iso"
)

// CompareResult is the sequential-vs-parallel benchmark document
// (schema "midas-bench-compare/1", written by midas-bench
// -compare-workers). Both modes replay the same maintenance trace for
// the same number of rounds from a cold process-wide memo cache; the
// deterministic per-batch facts are cross-checked between the modes
// before any timing is reported, so a speedup from divergent work can
// never be published.
type CompareResult struct {
	Schema  string `json:"schema"`
	Scale   string `json:"scale"`
	Seed    int64  `json:"seed"`
	Workers int    `json:"workers"`
	Rounds  int    `json:"rounds"`
	// SequentialSeconds and ParallelSeconds are wall clock for the
	// whole replay, bootstraps included — restart-and-replay is the
	// workload the memo layer exists for.
	SequentialSeconds float64 `json:"sequentialSeconds"`
	ParallelSeconds   float64 `json:"parallelSeconds"`
	Speedup           float64 `json:"speedup"`
	// MaintainSpeedup isolates the Maintain calls (PMT only, no
	// bootstrap).
	SequentialMaintainMillis float64        `json:"sequentialMaintainMillis"`
	ParallelMaintainMillis   float64        `json:"parallelMaintainMillis"`
	MaintainSpeedup          float64        `json:"maintainSpeedup"`
	Identical                bool           `json:"identical"`
	Batches                  []CompareBatch `json:"batches"`
}

// CompareBatch is one batch of the final round, timed in both modes
// with the deterministic facts that were verified equal.
type CompareBatch struct {
	Batch            string  `json:"batch"`
	SequentialMillis float64 `json:"sequentialMillis"`
	ParallelMillis   float64 `json:"parallelMillis"`
	GraphletDistance float64 `json:"graphletDistance"`
	Major            bool    `json:"major"`
	Swaps            int     `json:"swaps"`
	Candidates       int     `json:"candidates"`
	Scans            int     `json:"scans"`
}

// CompareWorkers replays the standard maintenance trace `rounds` times
// in the sequential reference mode (Workers=0, no memoization) and
// again at the given worker count (pool + process-wide kernel memos),
// each from a cold memo cache, verifying that every deterministic
// per-batch fact agrees before reporting wall-clock numbers. An error
// means the determinism contract was violated — the numbers are then
// meaningless and none are returned.
func CompareWorkers(s Scale, workers, rounds int) (CompareResult, error) {
	if rounds < 1 {
		rounds = 1
	}
	if workers < 1 {
		return CompareResult{}, fmt.Errorf("compare: workers must be >= 1, got %d", workers)
	}
	seq, par := s, s
	seq.Workers = 0
	par.Workers = workers

	replay := func(sc Scale) ([][]BatchTrace, float64) {
		iso.ResetMemo()
		ged.ResetMemo()
		start := time.Now()
		traces := make([][]BatchTrace, rounds)
		for r := range traces {
			traces[r] = MaintainTrace(sc)
		}
		return traces, time.Since(start).Seconds()
	}
	seqTraces, seqSec := replay(seq)
	parTraces, parSec := replay(par)

	res := CompareResult{
		Schema:            "midas-bench-compare/1",
		Seed:              s.Seed,
		Workers:           workers,
		Rounds:            rounds,
		SequentialSeconds: seqSec,
		ParallelSeconds:   parSec,
	}
	for r := range seqTraces {
		for i := range seqTraces[r] {
			a, b := seqTraces[r][i], parTraces[r][i]
			if a.GraphletDistance != b.GraphletDistance || a.Major != b.Major ||
				a.Swaps != b.Swaps || a.Candidates != b.Candidates || a.Scans != b.Scans ||
				a.Quality != b.Quality {
				return res, fmt.Errorf("compare: round %d batch %s diverged between Workers=0 and Workers=%d:\nseq %+v\npar %+v",
					r, a.Batch, workers, a, b)
			}
			res.SequentialMaintainMillis += a.PMTMillis
			res.ParallelMaintainMillis += b.PMTMillis
		}
	}
	res.Identical = true
	if parSec > 0 {
		res.Speedup = seqSec / parSec
	}
	if res.ParallelMaintainMillis > 0 {
		res.MaintainSpeedup = res.SequentialMaintainMillis / res.ParallelMaintainMillis
	}
	last := len(seqTraces) - 1
	for i := range seqTraces[last] {
		a, b := seqTraces[last][i], parTraces[last][i]
		res.Batches = append(res.Batches, CompareBatch{
			Batch:            a.Batch,
			SequentialMillis: a.PMTMillis,
			ParallelMillis:   b.PMTMillis,
			GraphletDistance: a.GraphletDistance,
			Major:            a.Major,
			Swaps:            a.Swaps,
			Candidates:       a.Candidates,
			Scans:            a.Scans,
		})
	}
	return res, nil
}
