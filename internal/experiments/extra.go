package experiments

import (
	"time"

	"github.com/midas-graph/midas/internal/core"
	"github.com/midas-graph/midas/internal/dataset"
	"github.com/midas-graph/midas/internal/gui"
	"github.com/midas-graph/midas/internal/tree"
)

// Additional experiments in the style of the paper's technical report
// [24]: sensitivity of the pipeline to the FCT support threshold and to
// the pattern budget γ.

// SupMinRow is one sup_min setting's outcome.
type SupMinRow struct {
	SupMin   float64
	FCTCount int
	FreqEdge int
	InfEdge  int
	MineTime time.Duration
}

// SupMinResult sweeps the FCT support threshold.
type SupMinResult struct {
	Rows []SupMinRow
}

// SupMinSweep mines the same database at several thresholds: lower
// thresholds admit more (closed) trees at higher mining cost, the
// trade-off behind the paper's sup_min = 0.5 default.
func SupMinSweep(s Scale) SupMinResult {
	db := dataset.PubChemLike().GenerateDB(s.Base, s.Seed)
	var res SupMinResult
	for _, sm := range []float64{0.2, 0.3, 0.4, 0.5, 0.7} {
		t0 := time.Now()
		set := tree.Mine(db, sm, 3)
		res.Rows = append(res.Rows, SupMinRow{
			SupMin:   sm,
			FCTCount: len(set.FrequentClosed()),
			FreqEdge: len(set.FrequentEdges()),
			InfEdge:  len(set.InfrequentEdges()),
			MineTime: time.Since(t0),
		})
	}
	return res
}

// Table renders the sweep.
func (r SupMinResult) Table() *Table {
	t := &Table{
		Title:  "Extra: FCT support threshold sweep (PubChem-like)",
		Header: []string{"sup_min", "|FCT|", "freq edges", "infreq edges", "mine time"},
	}
	for _, row := range r.Rows {
		t.Add(f2(row.SupMin), itoa(row.FCTCount), itoa(row.FreqEdge),
			itoa(row.InfEdge), ms(row.MineTime))
	}
	return t
}

// GammaRow is one pattern-budget setting's outcome.
type GammaRow struct {
	Gamma     int
	MP        float64
	AvgSteps  float64
	Bootstrap time.Duration
}

// GammaResult sweeps the number of displayed patterns.
type GammaResult struct {
	Rows []GammaRow
}

// GammaSweep selects pattern sets of growing size over one database and
// measures the query workload impact: more patterns cut MP and steps at
// growing selection cost and VMT (the display-budget trade-off of
// §2.2's "impractical to display a large number of patterns").
func GammaSweep(s Scale) GammaResult {
	db := dataset.PubChemLike().GenerateDB(s.Base, s.Seed)
	queries := dataset.Queries(db.Graphs(), s.Queries, 4, 12, s.Seed+3)
	var res GammaResult
	for _, gamma := range []int{4, 8, 16, 24} {
		cfg := s.config()
		cfg.Budget.Count = gamma
		eng := core.NewEngineWith(mustCopy(db), withFullStack(cfg))
		sim := gui.NewSimulator(gamma)
		steps := 0.0
		for _, q := range queries {
			steps += float64(sim.PatternAtATime(q, eng.Patterns()).Steps)
		}
		res.Rows = append(res.Rows, GammaRow{
			Gamma:     gamma,
			MP:        gui.MP(queries, eng.Patterns()),
			AvgSteps:  steps / float64(len(queries)),
			Bootstrap: eng.BootstrapTime,
		})
	}
	return res
}

func withFullStack(cfg core.Config) core.Config {
	cfg.UseClosedFeatures = true
	cfg.UseIndices = true
	return cfg
}

// Table renders the sweep.
func (r GammaResult) Table() *Table {
	t := &Table{
		Title:  "Extra: pattern budget γ sweep (PubChem-like)",
		Header: []string{"gamma", "MP%", "avg steps", "selection time"},
	}
	for _, row := range r.Rows {
		t.Add(itoa(row.Gamma), f2(row.MP), f2(row.AvgSteps), ms(row.Bootstrap))
	}
	return t
}

// DiscoverabilityRow compares bottom-up-search support for one
// approach.
type DiscoverabilityRow struct {
	Approach        Approach
	Discoverability float64 // % of Δ+ queries sharing >=3 edges with some pattern
	MP              float64 // missed percentage on the same workload
}

// DiscoverabilityResult quantifies Example 1.2's bottom-up search
// claim: without maintenance, the panel offers no visual cue for the
// new compound family, so browsing cannot initiate those queries.
type DiscoverabilityResult struct {
	Rows []DiscoverabilityRow
}

// Discoverability runs the evolved-PubChem scenario and measures, over
// queries drawn exclusively from Δ+, how often each approach's panel
// contains a pattern sharing a substantial (>=3 edge) substructure.
func Discoverability(s Scale) DiscoverabilityResult {
	sc := buildScenario(pubchemBase(s.Base), boronInsert(s.Delta, s.Seed+100), s)
	queries := dataset.Queries(sc.inserted, s.Queries/2, 6, 14, s.Seed+77)
	var res DiscoverabilityResult
	for _, app := range Approaches {
		res.Rows = append(res.Rows, DiscoverabilityRow{
			Approach:        app,
			Discoverability: gui.Discoverability(queries, sc.patterns[app], 3, 20000),
			MP:              gui.MP(queries, sc.patterns[app]),
		})
	}
	return res
}

// Table renders the comparison.
func (r DiscoverabilityResult) Table() *Table {
	t := &Table{
		Title:  "Extra: bottom-up search support on Δ+ queries (PubChem-like + boronic esters)",
		Header: []string{"approach", "discoverability%", "MP%"},
	}
	for _, row := range r.Rows {
		t.Add(string(row.Approach), f2(row.Discoverability), f2(row.MP))
	}
	return t
}
