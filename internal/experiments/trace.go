package experiments

import (
	"github.com/midas-graph/midas/internal/core"
)

// BatchTrace is the machine-readable record of one maintained batch:
// the maintenance cost with its per-stage breakdown, the kernel work
// burned, and the resulting pattern-set quality. midas-bench -json
// emits one per DefaultBatches spec; the schema is documented in
// EXPERIMENTS.md.
type BatchTrace struct {
	Batch            string             `json:"batch"`
	GraphletDistance float64            `json:"graphletDistance"`
	Major            bool               `json:"major"`
	Swaps            int                `json:"swaps"`
	Candidates       int                `json:"candidates"`
	Scans            int                `json:"scans"`
	PMTMillis        float64            `json:"pmtMillis"`
	PGTMillis        float64            `json:"pgtMillis"`
	StageMillis      map[string]float64 `json:"stageMillis"`
	VF2Steps         uint64             `json:"vf2Steps"`
	MCCSSteps        uint64             `json:"mccsSteps"`
	GEDNodes         uint64             `json:"gedNodes"`
	Quality          TraceQuality       `json:"quality"`
}

// TraceQuality is the CPM objective vector plus the set score.
type TraceQuality struct {
	Scov  float64 `json:"scov"`
	Lcov  float64 `json:"lcov"`
	Div   float64 `json:"div"`
	Cog   float64 `json:"cog"`
	Score float64 `json:"score"`
}

// MaintainTrace maintains one MIDAS engine through every DefaultBatches
// spec (each on a fresh database, as in Figures 13–15) and returns the
// per-batch records.
func MaintainTrace(s Scale) []BatchTrace {
	out := make([]BatchTrace, 0, len(DefaultBatches()))
	for _, spec := range DefaultBatches() {
		db := aidsBase(s.Base)(s.Seed)
		eng := core.NewEngine(db, s.config())
		u := makeBatchUpdate(spec, s.Seed+hash32(spec.Name))(db)
		rep, err := eng.Maintain(u)
		if err != nil {
			panic(err)
		}
		out = append(out, traceOf(spec.Name, rep, eng))
	}
	return out
}

func traceOf(name string, rep core.Report, eng *core.Engine) BatchTrace {
	stages := make(map[string]float64, 7)
	for _, st := range rep.Stages() {
		stages[st.Name] = float64(st.Duration.Nanoseconds()) / 1e6
	}
	q := eng.Quality()
	return BatchTrace{
		Batch:            name,
		GraphletDistance: rep.GraphletDistance,
		Major:            rep.Major,
		Swaps:            rep.Swaps,
		Candidates:       rep.Candidates,
		Scans:            rep.Scans,
		PMTMillis:        float64(rep.Total.Nanoseconds()) / 1e6,
		PGTMillis:        float64(rep.PGT().Nanoseconds()) / 1e6,
		StageMillis:      stages,
		VF2Steps:         rep.VF2Steps,
		MCCSSteps:        rep.MCCSSteps,
		GEDNodes:         rep.GEDNodes,
		Quality: TraceQuality{
			Scov: q.Scov, Lcov: q.Lcov, Div: q.Div, Cog: q.Cog,
			Score: q.Score(),
		},
	}
}
