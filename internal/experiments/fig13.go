package experiments

// Fig13Result reproduces Figure 13 (Exp 3a): MIDAS versus NoMaintain
// on the AIDS-like dataset across batch modifications — missed
// percentage, diversity and subgraph coverage.
type Fig13Result struct {
	Comparisons []BatchComparison
}

// Fig13NoMaintain runs the batch sweep.
func Fig13NoMaintain(s Scale) Fig13Result {
	var res Fig13Result
	for _, spec := range DefaultBatches() {
		res.Comparisons = append(res.Comparisons, runBatch(aidsBase(s.Base), spec, s))
	}
	return res
}

// Table renders MP/div/scov for both approaches per batch.
func (r Fig13Result) Table() *Table {
	t := &Table{
		Title: "Figure 13: MIDAS vs NoMaintain (AIDS-like)",
		Header: []string{"batch", "MP(MIDAS)%", "MP(NoMaint)%",
			"div(MIDAS)", "div(NoMaint)", "scov(MIDAS)", "scov(NoMaint)"},
	}
	for _, c := range r.Comparisons {
		m := c.Outcomes[MIDAS]
		n := c.Outcomes[NoMaintain]
		t.Add(c.Batch, f2(m.MP), f2(n.MP),
			f2(m.Quality.Div), f2(n.Quality.Div),
			f3(m.Quality.Scov), f3(n.Quality.Scov))
	}
	return t
}
