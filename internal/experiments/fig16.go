package experiments

import (
	"math/rand"
	"time"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/catapult"
	"github.com/midas-graph/midas/internal/cluster"
	"github.com/midas-graph/midas/internal/core"
	"github.com/midas-graph/midas/internal/csg"
	"github.com/midas-graph/midas/internal/dataset"
	"github.com/midas-graph/midas/internal/gui"
	"github.com/midas-graph/midas/internal/stats"
	"github.com/midas-graph/midas/internal/tree"
)

// Fig16Row is one dataset-scale point.
type Fig16Row struct {
	DBSize int
	PMT    time.Duration
	PGT    time.Duration
	// ClusterMaintain is MIDAS's cluster+CSG maintenance; ClusterScratch
	// is building clusters and summaries from scratch on D⊕ΔD (the
	// paper's 2.3 min vs 25 h comparison).
	ClusterMaintain time.Duration
	ClusterScratch  time.Duration
	Quality         catapult.Quality
	// Mu compares formulation steps using this scale's maintained
	// pattern set against the smallest scale's set on this scale's own
	// workload (the paper's step_X vs step_200K; negative values mean
	// the larger-scale set needs fewer steps).
	Mu float64
}

// Fig16Result reproduces Figure 16 (Exp 4): scalability on the
// PubChem-like profile with a fixed-size batch addition, at dataset
// scales ×1, ×2.25, ×4.75 (the paper's 200K/450K/950K shape).
type Fig16Result struct {
	Rows []Fig16Row
}

// Fig16Scalability runs the sweep.
func Fig16Scalability(s Scale) Fig16Result {
	multipliers := []float64{1, 2.25, 4.75}
	prof := dataset.PubChemLike()
	var res Fig16Result
	var smallestPatterns []*graph.Graph
	for _, mult := range multipliers {
		n := int(float64(s.Base) * mult)
		db := prof.GenerateDB(n, s.Seed)
		cfg := s.config()
		eng := core.NewEngine(db, cfg)

		ins := dataset.BoronicEsters().Generate(s.Delta, db.NextID(), s.Seed+11)
		u := graph.Update{Insert: ins}
		rep, err := eng.Maintain(u)
		if err != nil {
			panic(err)
		}

		// From-scratch cluster generation on D⊕ΔD for the speedup
		// comparison (mining + clustering + summaries).
		after := mustCopy(eng.DB())
		t0 := time.Now()
		set := tree.Mine(after, 0.4, 3)
		cl := cluster.Build(after, set, cluster.Config{}, rand.New(rand.NewSource(s.Seed)))
		mgr := csg.NewManager(0)
		mgr.BuildAll(cl)
		scratch := time.Since(t0)

		queries := dataset.BalancedQueries(eng.DB(), ins, s.Queries, 4, 12, s.Seed+13)
		sim := gui.NewSimulator(s.Gamma)
		mu := 0.0
		if smallestPatterns == nil {
			smallestPatterns = eng.Patterns()
		} else {
			var mus []float64
			for _, q := range queries {
				sSmall := float64(sim.PatternAtATime(q, smallestPatterns).Steps)
				sThis := float64(sim.PatternAtATime(q, eng.Patterns()).Steps)
				if sThis > 0 {
					// μ = (step_X − step_smallest)/step_X with X = this
					// scale; negative means this scale's set wins.
					mus = append(mus, gui.ReductionRatio(sThis, sSmall))
				}
			}
			mu = -stats.Mean(mus) // sign convention of the paper's Exp 4
		}

		res.Rows = append(res.Rows, Fig16Row{
			DBSize:          n,
			PMT:             rep.Total,
			PGT:             rep.PGT(),
			ClusterMaintain: rep.ClusterTime + rep.CSGTime,
			ClusterScratch:  scratch,
			Quality:         eng.Quality(),
			Mu:              mu,
		})
	}
	return res
}

// Table renders the sweep.
func (r Fig16Result) Table() *Table {
	t := &Table{
		Title: "Figure 16: scalability (PubChem-like, fixed-size batch addition)",
		Header: []string{"|D|", "PMT", "PGT", "cluster maint", "cluster scratch",
			"speedup", "scov", "lcov", "div", "cog", "mu"},
	}
	for _, row := range r.Rows {
		speedup := 0.0
		if row.ClusterMaintain > 0 {
			speedup = float64(row.ClusterScratch) / float64(row.ClusterMaintain)
		}
		t.Add(itoa(row.DBSize), ms(row.PMT), ms(row.PGT),
			ms(row.ClusterMaintain), ms(row.ClusterScratch), f2(speedup),
			f3(row.Quality.Scov), f3(row.Quality.Lcov),
			f2(row.Quality.Div), f2(row.Quality.Cog), f3(row.Mu))
	}
	return t
}
