package experiments

import (
	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/dataset"
	"github.com/midas-graph/midas/internal/gui"
	"github.com/midas-graph/midas/internal/stats"
)

// Fig9Row is one (query set, approach) cell of Figure 9: average QFT,
// steps and VMT across users and queries.
type Fig9Row struct {
	QuerySet string
	Approach Approach
	QFT      float64
	Steps    float64
	VMT      float64
}

// Fig9Result reproduces Figure 9: the user study on the PubChem-like
// dataset with three query sets — Qs1 from D, Qs2 mixed, Qs3 from Δ+ —
// across all five approaches.
type Fig9Result struct {
	Rows []Fig9Row
}

// Fig9UserStudy builds the evolved PubChem-like scenario (a boronic
// ester family is added, as in Example 1.2), selects the three query
// sets of §7.2, and simulates the participant pool formulating each
// query with each approach's pattern set.
func Fig9UserStudy(s Scale) Fig9Result {
	sc := buildScenario(pubchemBase(s.Base), boronInsert(s.Delta, s.Seed+100), s)
	qPerSet := 5
	minQ, maxQ := 8, 20 // scaled from the paper's [19,45] to molecule size

	var oldGraphs []*graph.Graph
	insertedIDs := map[int]struct{}{}
	for _, g := range sc.inserted {
		insertedIDs[g.ID] = struct{}{}
	}
	for _, g := range sc.after.Graphs() {
		if _, isNew := insertedIDs[g.ID]; !isNew {
			oldGraphs = append(oldGraphs, g)
		}
	}

	qs1 := dataset.Queries(oldGraphs, qPerSet, minQ, maxQ, s.Seed+201)
	qs2 := append(
		dataset.Queries(oldGraphs, 2, minQ, maxQ, s.Seed+202),
		dataset.Queries(sc.inserted, 3, minQ, maxQ, s.Seed+203)...)
	qs3 := dataset.Queries(sc.inserted, qPerSet, minQ, maxQ, s.Seed+204)

	sets := []struct {
		name    string
		queries []*graph.Graph
	}{{"Qs1", qs1}, {"Qs2", qs2}, {"Qs3", qs3}}

	users := gui.NewUsers(s.Users, s.Seed+300)
	var res Fig9Result
	for _, set := range sets {
		for _, app := range Approaches {
			row := simulateUsers(users, set.queries, sc.patterns[app], s.Gamma)
			row.QuerySet = set.name
			row.Approach = app
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// simulateUsers averages QFT/steps/VMT over every (user, query) pair;
// the paper's study allows pattern modification, so one edge edit is
// permitted.
func simulateUsers(users []*gui.User, queries []*graph.Graph, patterns []*graph.Graph, displayed int) Fig9Row {
	sim := gui.NewSimulator(displayed)
	sim.AllowEdits = 1
	var qft, steps, vmt []float64
	for _, u := range users {
		for _, q := range queries {
			plan := u.Formulate(sim, q, patterns)
			qft = append(qft, plan.QFT)
			steps = append(steps, float64(plan.Steps))
			vmt = append(vmt, plan.VMT)
		}
	}
	return Fig9Row{
		QFT:   stats.Mean(qft),
		Steps: stats.Mean(steps),
		VMT:   stats.Mean(vmt),
	}
}

// Table renders the figure as three blocks of approach rows.
func (r Fig9Result) Table() *Table {
	t := &Table{
		Title:  "Figure 9: user study (PubChem-like), QFT/steps/VMT per query set",
		Header: []string{"queryset", "approach", "QFT(s)", "steps", "VMT(s)"},
	}
	for _, row := range r.Rows {
		t.Add(row.QuerySet, string(row.Approach), f2(row.QFT), f2(row.Steps), f2(row.VMT))
	}
	return t
}

// Row returns the cell for a query set and approach, or nil.
func (r Fig9Result) Row(qs string, app Approach) *Fig9Row {
	for i := range r.Rows {
		if r.Rows[i].QuerySet == qs && r.Rows[i].Approach == app {
			return &r.Rows[i]
		}
	}
	return nil
}
