package experiments

import (
	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/core"
	"github.com/midas-graph/midas/internal/dataset"
	"github.com/midas-graph/midas/internal/gui"
)

// Example11Result reproduces the walkthrough of Examples 1.1/1.2: the
// boronic-acid query formulated edge-at-a-time, pattern-at-a-time with
// the stale pattern set, and pattern-at-a-time after MIDAS refreshes the
// patterns for the boronic-ester family.
type Example11Result struct {
	EdgeSteps    int
	EdgeQFT      float64
	StaleSteps   int
	StaleQFT     float64
	FreshSteps   int
	FreshQFT     float64
	FreshMissed  bool
	PatternCount int
}

// BoronicAcidQuery builds a phenylboronic-acid-like query: a benzene
// ring with a B(OH)(OH) group and hydrogens.
func BoronicAcidQuery() *graph.Graph {
	g := graph.New(0)
	ring := make([]int, 6)
	for i := range ring {
		ring[i] = g.AddVertex("C")
	}
	for i := range ring {
		g.AddEdge(ring[i], ring[(i+1)%6])
	}
	b := g.AddVertex("B")
	g.AddEdge(ring[0], b)
	o1 := g.AddVertex("O")
	o2 := g.AddVertex("O")
	g.AddEdge(b, o1)
	g.AddEdge(b, o2)
	for _, o := range []int{o1, o2} {
		h := g.AddVertex("H")
		g.AddEdge(o, h)
	}
	for i := 1; i < 6; i++ {
		h := g.AddVertex("H")
		g.AddEdge(ring[i], h)
	}
	g.SortAdjacency()
	return g
}

// Example11Boronic runs the walkthrough at the given scale.
func Example11Boronic(s Scale) Example11Result {
	db := dataset.PubChemLike().GenerateDB(s.Base, s.Seed)
	cfg := s.config()
	eng := core.NewEngine(db, cfg)
	stale := eng.Patterns()

	ins := dataset.BoronicEsters().Generate(s.Delta*2, db.NextID(), s.Seed+5)
	if _, err := eng.Maintain(graph.Update{Insert: ins}); err != nil {
		panic(err)
	}
	fresh := eng.Patterns()

	q := BoronicAcidQuery()
	sim := gui.NewSimulator(s.Gamma)
	sim.AllowEdits = 1

	edge := sim.EdgeAtATime(q)
	stalePlan := sim.PatternAtATime(q, stale)
	freshPlan := sim.PatternAtATime(q, fresh)

	return Example11Result{
		EdgeSteps:    edge.Steps,
		EdgeQFT:      edge.QFT,
		StaleSteps:   stalePlan.Steps,
		StaleQFT:     stalePlan.QFT,
		FreshSteps:   freshPlan.Steps,
		FreshQFT:     freshPlan.QFT,
		FreshMissed:  freshPlan.Missed,
		PatternCount: len(fresh),
	}
}

// Table renders the walkthrough.
func (r Example11Result) Table() *Table {
	t := &Table{
		Title:  "Examples 1.1/1.2: boronic acid formulation",
		Header: []string{"mode", "steps", "QFT(s)"},
	}
	t.Add("edge-at-a-time", itoa(r.EdgeSteps), f2(r.EdgeQFT))
	t.Add("patterns (stale)", itoa(r.StaleSteps), f2(r.StaleQFT))
	t.Add("patterns (MIDAS-refreshed)", itoa(r.FreshSteps), f2(r.FreshQFT))
	return t
}
