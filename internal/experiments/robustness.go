package experiments

import (
	"github.com/midas-graph/midas/internal/stats"
)

// RobustnessRow summarises one metric's spread over seeds.
type RobustnessRow struct {
	Metric    string
	Mean, Std float64
	Min, Max  float64
	SeedsRun  int
}

// RobustnessResult reports how stable the headline comparisons are
// across random seeds — reproduction hygiene the paper's single-run
// figures cannot show.
type RobustnessResult struct {
	Rows []RobustnessRow
}

// SeedRobustness repeats the Figure 13 "+20%" batch (the clearest major
// modification) over several seeds and reports the spread of the
// MP gap and scov gap between MIDAS and NoMaintain.
func SeedRobustness(s Scale, seeds []int64) RobustnessResult {
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3}
	}
	var mpGap, scovGap, pmtMs []float64
	for _, seed := range seeds {
		sc := s
		sc.Seed = seed
		cmp := runBatch(aidsBase(sc.Base), BatchSpec{Name: "+20%", AddPct: 20}, sc)
		m := cmp.Outcomes[MIDAS]
		n := cmp.Outcomes[NoMaintain]
		mpGap = append(mpGap, n.MP-m.MP)
		scovGap = append(scovGap, m.Quality.Scov-n.Quality.Scov)
		pmtMs = append(pmtMs, float64(m.Time.Milliseconds()))
	}
	mk := func(name string, xs []float64) RobustnessRow {
		return RobustnessRow{
			Metric:   name,
			Mean:     stats.Mean(xs),
			Std:      stats.StdDev(xs),
			Min:      stats.Min(xs),
			Max:      stats.Max(xs),
			SeedsRun: len(xs),
		}
	}
	return RobustnessResult{Rows: []RobustnessRow{
		mk("MP gap (NoMaintain - MIDAS), pct pts", mpGap),
		mk("scov gap (MIDAS - NoMaintain)", scovGap),
		mk("MIDAS PMT (ms)", pmtMs),
	}}
}

// Table renders the spread.
func (r RobustnessResult) Table() *Table {
	t := &Table{
		Title:  "Extra: seed robustness of the +20% batch comparison (AIDS-like)",
		Header: []string{"metric", "mean", "std", "min", "max", "seeds"},
	}
	for _, row := range r.Rows {
		t.Add(row.Metric, f3(row.Mean), f3(row.Std), f3(row.Min), f3(row.Max), itoa(row.SeedsRun))
	}
	return t
}
