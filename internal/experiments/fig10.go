package experiments

import (
	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/dataset"
	"github.com/midas-graph/midas/internal/gui"
	"github.com/midas-graph/midas/internal/stats"
)

// Fig10Row is one (dataset, approach) cell of Figure 10.
type Fig10Row struct {
	Dataset  string
	Approach Approach
	QFT      float64
	Steps    float64
	VMT      float64
}

// Fig10Result reproduces Figure 10: the user study with user-specified
// queries (any size/topology) on all three dataset profiles.
type Fig10Result struct {
	Rows []Fig10Row
}

// Fig10UserQueries runs the free-form query study: each simulated user
// "comes up with" queries of their own — modelled as random connected
// subgraphs of D⊕ΔD of widely varying size — and formulates them with
// every approach's pattern set.
func Fig10UserQueries(s Scale) Fig10Result {
	profiles := []struct {
		name string
		base func(seed int64) *graph.Database
	}{
		{"PubChem", pubchemBase(s.Base)},
		{"AIDS", aidsBase(s.Base)},
		{"eMol", func(seed int64) *graph.Database {
			return dataset.EMolLike().GenerateDB(s.Base, seed)
		}},
	}
	users := gui.NewUsers(s.Users, s.Seed+900)
	qPerUser := 5
	var res Fig10Result
	for pi, prof := range profiles {
		sc := buildScenario(prof.base, boronInsert(s.Delta, s.Seed+int64(pi)+500), s)
		// User-specified queries: drawn from the evolved database with a
		// broad size range (paper: sizes 18–42; scaled here).
		queries := dataset.Queries(sc.after.Graphs(), s.Users*qPerUser, 6, 18, s.Seed+int64(pi)+600)
		for _, app := range Approaches {
			row := simulatePerUserQueries(users, queries, sc.patterns[app], s.Gamma, qPerUser)
			res.Rows = append(res.Rows, Fig10Row{
				Dataset: prof.name, Approach: app,
				QFT: row.QFT, Steps: row.Steps, VMT: row.VMT,
			})
		}
	}
	return res
}

// simulatePerUserQueries gives each user their own slice of queries
// (their "own" queries) and averages the measures.
func simulatePerUserQueries(users []*gui.User, queries []*graph.Graph, patterns []*graph.Graph, displayed, qPerUser int) Fig9Row {
	sim := gui.NewSimulator(displayed)
	sim.AllowEdits = 1
	var qft, steps, vmt []float64
	for ui, u := range users {
		for qi := 0; qi < qPerUser; qi++ {
			idx := ui*qPerUser + qi
			if idx >= len(queries) {
				break
			}
			plan := u.Formulate(sim, queries[idx], patterns)
			qft = append(qft, plan.QFT)
			steps = append(steps, float64(plan.Steps))
			vmt = append(vmt, plan.VMT)
		}
	}
	return Fig9Row{QFT: stats.Mean(qft), Steps: stats.Mean(steps), VMT: stats.Mean(vmt)}
}

// Table renders the figure.
func (r Fig10Result) Table() *Table {
	t := &Table{
		Title:  "Figure 10: user study with user-specified queries",
		Header: []string{"dataset", "approach", "QFT(s)", "steps", "VMT(s)"},
	}
	for _, row := range r.Rows {
		t.Add(row.Dataset, string(row.Approach), f2(row.QFT), f2(row.Steps), f2(row.VMT))
	}
	return t
}

// Row returns the cell for a dataset and approach, or nil.
func (r Fig10Result) Row(ds string, app Approach) *Fig10Row {
	for i := range r.Rows {
		if r.Rows[i].Dataset == ds && r.Rows[i].Approach == app {
			return &r.Rows[i]
		}
	}
	return nil
}
