// Package experiments reproduces the performance study of §7: one
// driver per figure, each producing the same rows/series the paper
// reports. Dataset scale is configurable; the shapes (who wins, by
// roughly what factor, where the crossovers fall) are the reproduction
// target, not the absolute numbers, since the substrate here is the
// synthetic dataset generator of internal/dataset rather than the
// authors' chemical repositories (see DESIGN.md §2).
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/catapult"
	"github.com/midas-graph/midas/internal/cluster"
	"github.com/midas-graph/midas/internal/core"
	"github.com/midas-graph/midas/internal/dataset"
)

// Scale sizes an experiment run.
type Scale struct {
	// Base is |D|, Delta the default |Δ+|.
	Base, Delta int
	// Queries is the automated query-workload size (the paper uses
	// 1000).
	Queries int
	// Users is the simulated-participant count (the paper uses 25).
	Users int
	// Gamma, MinSize, MaxSize form the pattern budget.
	Gamma, MinSize, MaxSize int
	// Walks controls candidate generation effort.
	Walks int
	// SampleSize caps scov computation (lazy sampling).
	SampleSize int
	// ClusterMaxSize is the fine-clustering threshold N; small enough
	// that the database spreads over many clusters and maintenance only
	// touches the affected ones (the paper's regime).
	ClusterMaxSize int
	// Seed drives everything.
	Seed int64
	// Workers selects the maintenance kernels' execution mode (0 =
	// sequential reference path). Every figure is identical at every
	// setting; only wall clock moves.
	Workers int
	// NoDeltaIndex disables the incremental index/cover delta network
	// and recomputes cover state from scratch each batch. Every figure
	// is identical either way; only wall clock moves.
	NoDeltaIndex bool
}

// Tiny is for unit tests.
func Tiny() Scale {
	return Scale{Base: 40, Delta: 16, Queries: 20, Users: 4,
		Gamma: 6, MinSize: 2, MaxSize: 4, Walks: 30, SampleSize: 40,
		ClusterMaxSize: 10, Seed: 1}
}

// Small finishes each figure in seconds; the default for benches.
func Small() Scale {
	return Scale{Base: 100, Delta: 30, Queries: 60, Users: 10,
		Gamma: 10, MinSize: 3, MaxSize: 6, Walks: 40, SampleSize: 80,
		ClusterMaxSize: 14, Seed: 1}
}

// Default approximates the paper's parameter shape (γ=30, sizes 3–12)
// at laptop scale.
func Default() Scale {
	return Scale{Base: 300, Delta: 90, Queries: 200, Users: 25,
		Gamma: 30, MinSize: 3, MaxSize: 12, Walks: 60, SampleSize: 150,
		ClusterMaxSize: 20, Seed: 1}
}

func (s Scale) budget() catapult.Budget {
	return catapult.Budget{MinSize: s.MinSize, MaxSize: s.MaxSize, Count: s.Gamma}
}

func (s Scale) config() core.Config {
	return core.Config{
		Budget: s.budget(),
		SupMin: 0.4,
		// ε is calibrated to the synthetic generator: its topological
		// drift under a new-family insertion is milder than real
		// chemistry's, so the paper's 0.1 scales down to 0.01 (the
		// major/minor separation is preserved — see EXPERIMENTS.md).
		Epsilon:      0.01,
		Kappa:        0.1,
		Lambda:       0.1,
		Walks:        s.Walks,
		SampleSize:   s.SampleSize,
		Seed:         s.Seed,
		Workers:      s.Workers,
		NoDeltaIndex: s.NoDeltaIndex,
		Cluster:      cluster.Config{MaxSize: s.ClusterMaxSize},
	}
}

// Approach names the compared systems, matching §7.1's baselines.
type Approach string

const (
	MIDAS      Approach = "MIDAS"
	CATAPULT   Approach = "CATAPULT"
	CATAPULTPP Approach = "CATAPULT++"
	Random     Approach = "Random"
	NoMaintain Approach = "NoMaintain"
)

// Approaches lists the comparison order used in tables.
var Approaches = []Approach{MIDAS, CATAPULT, CATAPULTPP, Random, NoMaintain}

// scenario holds one evolved-database comparison: every approach's
// pattern set over D⊕ΔD plus the maintenance costs.
type scenario struct {
	scale    Scale
	before   *graph.Database // D (still owned by the MIDAS engine!)
	after    *graph.Database // D⊕ΔD (fresh copies for baselines)
	inserted []*graph.Graph
	patterns map[Approach][]*graph.Graph
	cost     map[Approach]time.Duration
	engine   *core.Engine // the maintained MIDAS engine
	report   core.Report
}

// buildScenario bootstraps on `base`, applies the update, and produces
// every approach's pattern set.
//
// The from-scratch baselines (CATAPULT, CATAPULT++) rebuild their whole
// stack on D⊕ΔD; NoMaintain keeps the initial pattern set; Random is a
// second engine maintained with random swapping.
func buildScenario(base func(seed int64) *graph.Database, makeUpdate func(d *graph.Database) graph.Update, s Scale) *scenario {
	cfg := s.config()

	// MIDAS engine over its own copy.
	dbM := base(s.Seed)
	eng := core.NewEngine(dbM, cfg)
	initial := eng.Patterns()

	u := makeUpdate(dbM)
	// The baselines need D⊕ΔD copies before the engine mutates shared
	// graphs (graphs are shared but never mutated, so shallow copies
	// are fine).
	dbAfter, err := base(s.Seed).ApplyToCopy(u)
	if err != nil {
		panic(err)
	}

	sc := &scenario{
		scale:    s,
		after:    dbAfter,
		inserted: u.Insert,
		patterns: make(map[Approach][]*graph.Graph),
		cost:     make(map[Approach]time.Duration),
	}

	rep, err := eng.Maintain(u)
	if err != nil {
		panic(err)
	}
	sc.engine = eng
	sc.report = rep
	sc.patterns[MIDAS] = eng.Patterns()
	sc.cost[MIDAS] = rep.Total
	sc.patterns[NoMaintain] = initial
	sc.cost[NoMaintain] = 0

	// Random swapping engine.
	cfgR := cfg
	cfgR.Strategy = core.RandomSwap
	engR := core.NewEngine(base(s.Seed), cfgR)
	repR, err := engR.Maintain(cloneUpdate(u))
	if err != nil {
		panic(err)
	}
	sc.patterns[Random] = engR.Patterns()
	sc.cost[Random] = repR.Total

	// From-scratch baselines on D⊕ΔD.
	cfgC := cfg
	cfgC.UseClosedFeatures = false
	cfgC.UseIndices = false
	engC := core.NewEngineWith(mustCopy(dbAfter), cfgC)
	sc.patterns[CATAPULT] = engC.Patterns()
	sc.cost[CATAPULT] = engC.BootstrapTime

	cfgP := cfg
	cfgP.UseClosedFeatures = true
	cfgP.UseIndices = true
	engP := core.NewEngineWith(mustCopy(dbAfter), cfgP)
	sc.patterns[CATAPULTPP] = engP.Patterns()
	sc.cost[CATAPULTPP] = engP.BootstrapTime

	return sc
}

// cloneUpdate deep-copies inserted graphs so two engines never share
// mutable state.
func cloneUpdate(u graph.Update) graph.Update {
	out := graph.Update{Delete: append([]int(nil), u.Delete...)}
	for _, g := range u.Insert {
		out.Insert = append(out.Insert, g.Clone())
	}
	return out
}

func mustCopy(d *graph.Database) *graph.Database {
	c := graph.NewDatabase()
	for _, g := range d.Graphs() {
		if err := c.Add(g); err != nil {
			panic(err)
		}
	}
	return c
}

// Table renders rows with a header, right-aligned numeric columns.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint writes the table in aligned plain text.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (header row first, fields
// quoted when needed) for plotting pipelines.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Header)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func ms(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}

// pubchemBase returns a PubChem-like database builder.
func pubchemBase(n int) func(seed int64) *graph.Database {
	return func(seed int64) *graph.Database {
		return dataset.PubChemLike().GenerateDB(n, seed)
	}
}

// aidsBase returns an AIDS-like database builder.
func aidsBase(n int) func(seed int64) *graph.Database {
	return func(seed int64) *graph.Database {
		return dataset.AIDSLike().GenerateDB(n, seed)
	}
}

// boronInsert builds the "new compound family" Δ+ of Example 1.2.
func boronInsert(n int, seed int64) func(d *graph.Database) graph.Update {
	return func(d *graph.Database) graph.Update {
		return graph.Update{Insert: dataset.BoronicEsters().Generate(n, d.NextID(), seed)}
	}
}
