package experiments

import (
	"fmt"
	"time"

	"github.com/midas-graph/midas/internal/ged"
	"github.com/midas-graph/midas/internal/index/delta"
	"github.com/midas-graph/midas/internal/iso"
)

// CompareIndexResult is the delta-network-vs-rebuild benchmark document
// (schema "midas-bench-compare-index/1", written by midas-bench
// -compare-index). Both modes replay the same maintenance trace from a
// cold process-wide memo cache — one recomputing cover state from
// scratch each batch (-no-delta-index), one maintaining it
// incrementally through the delta network — and the deterministic
// per-batch facts are cross-checked between the modes before any
// timing is reported, so a speedup from divergent work can never be
// published.
type CompareIndexResult struct {
	Schema  string `json:"schema"`
	Scale   string `json:"scale"`
	Seed    int64  `json:"seed"`
	Workers int    `json:"workers"`
	Rounds  int    `json:"rounds"`
	// RebuildSeconds and DeltaSeconds are wall clock for the whole
	// replay, bootstraps included.
	RebuildSeconds float64 `json:"rebuildSeconds"`
	DeltaSeconds   float64 `json:"deltaSeconds"`
	Speedup        float64 `json:"speedup"`
	// MaintainSpeedup isolates the Maintain calls (PMT only, no
	// bootstrap) — the number the delta network exists to move.
	RebuildMaintainMillis float64 `json:"rebuildMaintainMillis"`
	DeltaMaintainMillis   float64 `json:"deltaMaintainMillis"`
	MaintainSpeedup       float64 `json:"maintainSpeedup"`
	Identical             bool    `json:"identical"`
	// Telemetry is the delta network's per-node counters accumulated
	// over the delta-mode replay.
	Telemetry delta.Stats         `json:"deltaTelemetry"`
	Batches   []CompareIndexBatch `json:"batches"`
}

// CompareIndexBatch is one batch of the final round, timed in both
// modes with the deterministic facts that were verified equal.
type CompareIndexBatch struct {
	Batch            string  `json:"batch"`
	RebuildMillis    float64 `json:"rebuildMillis"`
	DeltaMillis      float64 `json:"deltaMillis"`
	GraphletDistance float64 `json:"graphletDistance"`
	Major            bool    `json:"major"`
	Swaps            int     `json:"swaps"`
	Candidates       int     `json:"candidates"`
	Scans            int     `json:"scans"`
}

// CompareIndex replays the standard maintenance trace `rounds` times
// with the delta network disabled (per-batch from-scratch cover
// recompute) and again with it enabled, each from a cold memo cache,
// verifying that every deterministic per-batch fact agrees before
// reporting wall-clock numbers. An error means the byte-identity
// contract was violated — the numbers are then meaningless and none
// are returned.
func CompareIndex(s Scale, rounds int) (CompareIndexResult, error) {
	if rounds < 1 {
		rounds = 1
	}
	off, on := s, s
	off.NoDeltaIndex = true
	on.NoDeltaIndex = false

	replay := func(sc Scale) ([][]BatchTrace, float64) {
		iso.ResetMemo()
		ged.ResetMemo()
		start := time.Now()
		traces := make([][]BatchTrace, rounds)
		for r := range traces {
			traces[r] = MaintainTrace(sc)
		}
		return traces, time.Since(start).Seconds()
	}
	offTraces, offSec := replay(off)
	delta.ResetStats()
	onTraces, onSec := replay(on)

	res := CompareIndexResult{
		Schema:         "midas-bench-compare-index/1",
		Seed:           s.Seed,
		Workers:        s.Workers,
		Rounds:         rounds,
		RebuildSeconds: offSec,
		DeltaSeconds:   onSec,
		Telemetry:      delta.Snapshot(),
	}
	for r := range offTraces {
		for i := range offTraces[r] {
			a, b := offTraces[r][i], onTraces[r][i]
			if a.GraphletDistance != b.GraphletDistance || a.Major != b.Major ||
				a.Swaps != b.Swaps || a.Candidates != b.Candidates || a.Scans != b.Scans ||
				a.Quality != b.Quality {
				return res, fmt.Errorf("compare-index: round %d batch %s diverged between rebuild and delta modes:\nrebuild %+v\ndelta %+v",
					r, a.Batch, a, b)
			}
			res.RebuildMaintainMillis += a.PMTMillis
			res.DeltaMaintainMillis += b.PMTMillis
		}
	}
	res.Identical = true
	if onSec > 0 {
		res.Speedup = offSec / onSec
	}
	if res.DeltaMaintainMillis > 0 {
		res.MaintainSpeedup = res.RebuildMaintainMillis / res.DeltaMaintainMillis
	}
	last := len(offTraces) - 1
	for i := range offTraces[last] {
		a, b := offTraces[last][i], onTraces[last][i]
		res.Batches = append(res.Batches, CompareIndexBatch{
			Batch:            a.Batch,
			RebuildMillis:    a.PMTMillis,
			DeltaMillis:      b.PMTMillis,
			GraphletDistance: a.GraphletDistance,
			Major:            a.Major,
			Swaps:            a.Swaps,
			Candidates:       a.Candidates,
			Scans:            a.Scans,
		})
	}
	return res, nil
}
