package experiments

import (
	"time"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/catapult"
	"github.com/midas-graph/midas/internal/dataset"
	"github.com/midas-graph/midas/internal/gui"
	"github.com/midas-graph/midas/internal/stats"
)

// BatchSpec is one batch modification of §7.3: +Y% insertions and/or
// -Y% deletions relative to |D|.
type BatchSpec struct {
	Name   string
	AddPct int
	DelPct int
}

// DefaultBatches is the modification sweep used by Figures 13–15.
func DefaultBatches() []BatchSpec {
	return []BatchSpec{
		{"+5%", 5, 0},
		{"+10%", 10, 0},
		{"+20%", 20, 0},
		{"-5%", 0, 5},
		{"-10%", 0, 10},
		{"+10%/-5%", 10, 5},
	}
}

// makeBatchUpdate builds the update for a spec: insertions come from
// the boronic-ester family (the evolving-repository scenario of
// Example 1.2), deletions are random.
func makeBatchUpdate(spec BatchSpec, seed int64) func(d *graph.Database) graph.Update {
	return func(d *graph.Database) graph.Update {
		var u graph.Update
		if spec.AddPct > 0 {
			n := d.Len() * spec.AddPct / 100
			if n < 1 {
				n = 1
			}
			u.Insert = dataset.BoronicEsters().Generate(n, d.NextID(), seed)
		}
		if spec.DelPct > 0 {
			m := d.Len() * spec.DelPct / 100
			if m < 1 {
				m = 1
			}
			u.Delete = dataset.RandomDeletion(d, m, seed+1)
		}
		return u
	}
}

// ApproachOutcome aggregates one approach's results on one batch.
type ApproachOutcome struct {
	Time     time.Duration // maintenance cost (0 for NoMaintain)
	MP       float64       // missed percentage over the workload
	AvgSteps float64       // average formulation steps
	Mu       float64       // reduction ratio vs MIDAS (positive: MIDAS better)
	Quality  catapult.Quality
}

// BatchComparison is one batch's full comparison.
type BatchComparison struct {
	Batch    string
	Outcomes map[Approach]ApproachOutcome
}

// runBatch builds the scenario for a batch spec and measures every
// approach on the balanced query workload.
func runBatch(base func(seed int64) *graph.Database, spec BatchSpec, s Scale) BatchComparison {
	sc := buildScenario(base, makeBatchUpdate(spec, s.Seed+hash32(spec.Name)), s)
	queries := dataset.BalancedQueries(sc.after, sc.inserted, s.Queries, 4, 12, s.Seed+7)

	sim := gui.NewSimulator(s.Gamma) // automated study: no edits
	stepsOf := func(ps []*graph.Graph) []float64 {
		out := make([]float64, len(queries))
		for i, q := range queries {
			out[i] = float64(sim.PatternAtATime(q, ps).Steps)
		}
		return out
	}

	perSteps := make(map[Approach][]float64, len(Approaches))
	for _, app := range Approaches {
		perSteps[app] = stepsOf(sc.patterns[app])
	}

	cmp := BatchComparison{Batch: spec.Name, Outcomes: make(map[Approach]ApproachOutcome)}
	for _, app := range Approaches {
		mu := 0.0
		if app != MIDAS {
			var mus []float64
			for i := range queries {
				if perSteps[app][i] > 0 {
					mus = append(mus, gui.ReductionRatio(perSteps[app][i], perSteps[MIDAS][i]))
				}
			}
			mu = stats.Mean(mus)
		}
		cmp.Outcomes[app] = ApproachOutcome{
			Time:     sc.cost[app],
			MP:       gui.MP(queries, sc.patterns[app]),
			AvgSteps: stats.Mean(perSteps[app]),
			Mu:       mu,
			Quality:  sc.engine.Metrics().Evaluate(sc.patterns[app]),
		}
	}
	return cmp
}

// hash32 gives a small deterministic per-name seed offset.
func hash32(s string) int64 {
	var h int64 = 17
	for _, c := range s {
		h = h*31 + int64(c)
	}
	if h < 0 {
		h = -h
	}
	return h % 1000
}
