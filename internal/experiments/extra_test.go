package experiments

import "testing"

func TestSupMinSweepShape(t *testing.T) {
	res := SupMinSweep(Tiny())
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Lower thresholds must admit at least as many FCTs and frequent
	// edges as higher ones.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].SupMin <= res.Rows[i-1].SupMin {
			t.Fatal("sweep not increasing")
		}
		if res.Rows[i].FreqEdge > res.Rows[i-1].FreqEdge {
			t.Fatalf("frequent edges grew with threshold: %+v", res.Rows)
		}
	}
	if res.Table().String() == "" {
		t.Fatal("empty table")
	}
}

func TestGammaSweepShape(t *testing.T) {
	res := GammaSweep(Tiny())
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	// More patterns must not hurt MP or steps.
	if last.MP > first.MP+1e-9 {
		t.Fatalf("MP grew with gamma: %v -> %v", first.MP, last.MP)
	}
	if last.AvgSteps > first.AvgSteps+1e-9 {
		t.Fatalf("steps grew with gamma: %v -> %v", first.AvgSteps, last.AvgSteps)
	}
	if res.Table().String() == "" {
		t.Fatal("empty table")
	}
}

func TestFig15SmokeTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	res := Fig15BaselinesPubChem(Tiny())
	if res.Dataset != "PubChem-like" || len(res.Comparisons) != len(DefaultBatches()) {
		t.Fatalf("bad result: %s, %d comparisons", res.Dataset, len(res.Comparisons))
	}
	for _, c := range res.Comparisons {
		m := c.Outcomes[MIDAS]
		if m.Quality.Lcov <= 0 {
			t.Fatalf("batch %s: degenerate quality", c.Batch)
		}
	}
}

func TestSeedRobustnessShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	res := SeedRobustness(Tiny(), []int64{1, 2})
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.SeedsRun != 2 {
			t.Fatalf("seeds run = %d", row.SeedsRun)
		}
		if row.Min > row.Max {
			t.Fatalf("min %v > max %v", row.Min, row.Max)
		}
	}
	// The MP gap must never be negative on this clearly-major batch.
	if res.Rows[0].Min < -1e-9 {
		t.Fatalf("MP gap went negative: %+v", res.Rows[0])
	}
	if res.Table().String() == "" {
		t.Fatal("empty table")
	}
}

func TestDiscoverabilityShape(t *testing.T) {
	res := Discoverability(Tiny())
	if len(res.Rows) != len(Approaches) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byApp := map[Approach]DiscoverabilityRow{}
	for _, r := range res.Rows {
		byApp[r.Approach] = r
	}
	m, n := byApp[MIDAS], byApp[NoMaintain]
	// The refreshed panel must offer at least as much bottom-up support
	// for the new family as the stale one.
	if m.Discoverability < n.Discoverability-1e-9 {
		t.Fatalf("MIDAS discoverability %v below NoMaintain %v",
			m.Discoverability, n.Discoverability)
	}
	if res.Table().String() == "" {
		t.Fatal("empty table")
	}
}
