package experiments

import (
	"time"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/dataset"
	"github.com/midas-graph/midas/internal/index"
	"github.com/midas-graph/midas/internal/tree"
)

// Fig12SizeRow measures construction cost at one database size.
type Fig12SizeRow struct {
	DBSize        int
	FCTMine       time.Duration
	IndexBuild    time.Duration
	FCTCount      int
	IndexEntries  int // NNZ across the four matrices
	IndexBytesEst int // rough triplet-storage estimate
}

// Fig12DeltaRow measures maintenance cost at one modification size.
type Fig12DeltaRow struct {
	DeltaSize   int
	FCTMaintain time.Duration
	FCTRemine   time.Duration // from-scratch comparison
	IndexUpkeep time.Duration
}

// Fig12Result reproduces Figure 12 (Exp 2): cost of FCT mining and the
// two indices versus dataset size, and their maintenance cost versus
// modification size.
type Fig12Result struct {
	SizeRows  []Fig12SizeRow
	DeltaRows []Fig12DeltaRow
}

// Fig12IndexCost sweeps dataset sizes ×1, ×2, ×4 and modification
// sizes 25%, 50%, 100% of Δ.
func Fig12IndexCost(s Scale) Fig12Result {
	var res Fig12Result
	prof := dataset.PubChemLike()
	for _, mult := range []int{1, 2, 4} {
		n := s.Base * mult
		db := prof.GenerateDB(n, s.Seed)
		t0 := time.Now()
		set := tree.Mine(db, 0.4, 3)
		mine := time.Since(t0)
		t1 := time.Now()
		ix := index.Build(set, db, nil)
		build := time.Since(t1)
		nnz := ix.TG.NNZ() + ix.TP.NNZ() + ix.EG.NNZ() + ix.EP.NNZ()
		res.SizeRows = append(res.SizeRows, Fig12SizeRow{
			DBSize:        n,
			FCTMine:       mine,
			IndexBuild:    build,
			FCTCount:      len(set.FrequentClosed()),
			IndexEntries:  nnz,
			IndexBytesEst: nnz * 24, // ~(row ptr, col, value) per triplet
		})
	}

	for _, frac := range []int{4, 2, 1} {
		db := prof.GenerateDB(s.Base, s.Seed)
		set := tree.Mine(db, 0.4, 3)
		ix := index.Build(set, db, nil)
		delta := s.Delta / frac
		if delta < 1 {
			delta = 1
		}
		ins := dataset.BoronicEsters().Generate(delta, db.NextID(), s.Seed+int64(frac))
		after, err := db.ApplyToCopy(graph.Update{Insert: ins})
		if err != nil {
			panic(err)
		}

		t0 := time.Now()
		set.Add(after, ins)
		maintain := time.Since(t0)

		t1 := time.Now()
		for _, g := range ins {
			ix.AddGraph(g)
		}
		ix.SyncFeatures(set, after, nil)
		upkeep := time.Since(t1)

		t2 := time.Now()
		tree.Mine(after, 0.4, 3)
		remine := time.Since(t2)

		res.DeltaRows = append(res.DeltaRows, Fig12DeltaRow{
			DeltaSize:   delta,
			FCTMaintain: maintain,
			FCTRemine:   remine,
			IndexUpkeep: upkeep,
		})
	}
	return res
}

// Tables renders both panels.
func (r Fig12Result) Tables() []*Table {
	ts := &Table{
		Title:  "Figure 12 (left): FCT and index construction vs dataset size (PubChem-like)",
		Header: []string{"|D|", "FCT mine", "index build", "|FCT|", "index NNZ", "~bytes"},
	}
	for _, row := range r.SizeRows {
		ts.Add(itoa(row.DBSize), ms(row.FCTMine), ms(row.IndexBuild),
			itoa(row.FCTCount), itoa(row.IndexEntries), itoa(row.IndexBytesEst))
	}
	td := &Table{
		Title:  "Figure 12 (right): maintenance vs modification size",
		Header: []string{"|Δ+|", "FCT maintain", "FCT re-mine", "index upkeep"},
	}
	for _, row := range r.DeltaRows {
		td.Add(itoa(row.DeltaSize), ms(row.FCTMaintain), ms(row.FCTRemine), ms(row.IndexUpkeep))
	}
	return []*Table{ts, td}
}
