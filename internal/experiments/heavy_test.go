package experiments

import (
	"os"
	"testing"
)

// Heavy-scale checks, opt-in because they take minutes:
//
//	MIDAS_HEAVY=1 go test ./internal/experiments -run TestHeavy -v
//
// They assert the paper's headline shapes at the Small harness scale —
// the same claims EXPERIMENTS.md documents from `results_small.txt` —
// so regressions in the shapes (not just in correctness) fail loudly.
func heavyGate(t *testing.T) {
	t.Helper()
	if os.Getenv("MIDAS_HEAVY") == "" {
		t.Skip("set MIDAS_HEAVY=1 to run heavy-scale shape checks")
	}
}

func TestHeavyFig13MajorBatchGains(t *testing.T) {
	heavyGate(t)
	res := Fig13NoMaintain(Small())
	majorGain := false
	for _, c := range res.Comparisons {
		m := c.Outcomes[MIDAS]
		n := c.Outcomes[NoMaintain]
		if m.MP > n.MP+1e-9 {
			t.Fatalf("batch %s: MIDAS MP %v worse than NoMaintain %v", c.Batch, m.MP, n.MP)
		}
		if n.MP-m.MP >= 10 { // a double-digit MP cut on some major batch
			majorGain = true
		}
	}
	if !majorGain {
		t.Fatal("no batch showed a >=10pp MP gain; staleness effect missing")
	}
}

func TestHeavyFig11SpeedupBand(t *testing.T) {
	heavyGate(t)
	res := Fig11Thresholds(Small())
	row := res.EpsilonRows[0] // the major-classified setting
	if !row.Major {
		t.Fatalf("eps=%v should classify the batch as major", row.Epsilon)
	}
	speedup := float64(row.ScratchPMT) / float64(row.PMT)
	if speedup < 2 {
		t.Fatalf("MIDAS speedup over CATAPULT++ = %.1fx, want >= 2x", speedup)
	}
}

func TestHeavyDiscoverabilityGap(t *testing.T) {
	heavyGate(t)
	res := Discoverability(Small())
	byApp := map[Approach]DiscoverabilityRow{}
	for _, r := range res.Rows {
		byApp[r.Approach] = r
	}
	gap := byApp[MIDAS].Discoverability - byApp[NoMaintain].Discoverability
	if gap < 10 {
		t.Fatalf("discoverability gap = %.1fpp, want >= 10pp", gap)
	}
}
