package experiments

import (
	"strings"
	"testing"
)

func TestFig9UserStudyShape(t *testing.T) {
	res := Fig9UserStudy(Tiny())
	if len(res.Rows) != 3*len(Approaches) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), 3*len(Approaches))
	}
	for _, qs := range []string{"Qs1", "Qs2", "Qs3"} {
		m := res.Row(qs, MIDAS)
		n := res.Row(qs, NoMaintain)
		if m == nil || n == nil {
			t.Fatalf("missing rows for %s", qs)
		}
		if m.QFT <= 0 || m.Steps <= 0 {
			t.Fatalf("degenerate MIDAS row for %s: %+v", qs, m)
		}
	}
	// The headline shape: on Δ+-only queries (Qs3), MIDAS must not be
	// slower than the stale NoMaintain set.
	m3, n3 := res.Row("Qs3", MIDAS), res.Row("Qs3", NoMaintain)
	if m3.Steps > n3.Steps+1e-9 {
		t.Fatalf("MIDAS steps %v worse than NoMaintain %v on Qs3", m3.Steps, n3.Steps)
	}
	tbl := res.Table().String()
	if !strings.Contains(tbl, "Qs3") || !strings.Contains(tbl, "MIDAS") {
		t.Fatal("table rendering broken")
	}
}

func TestFig10Shape(t *testing.T) {
	res := Fig10UserQueries(Tiny())
	if len(res.Rows) != 3*len(Approaches) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// At this toy scale a single swap can sting one dataset's free-form
	// workload, so assert the aggregate shape: averaged across datasets
	// MIDAS must not lose to the stale set, and no dataset may regress
	// by more than 25%.
	var sumM, sumN float64
	for _, ds := range []string{"PubChem", "AIDS", "eMol"} {
		m := res.Row(ds, MIDAS)
		if m == nil || m.QFT <= 0 {
			t.Fatalf("bad MIDAS row for %s", ds)
		}
		n := res.Row(ds, NoMaintain)
		sumM += m.Steps
		sumN += n.Steps
		if m.Steps > 1.25*n.Steps {
			t.Fatalf("%s: MIDAS steps %v far worse than NoMaintain %v", ds, m.Steps, n.Steps)
		}
	}
	if sumM > sumN*1.05 {
		t.Fatalf("avg steps: MIDAS %v worse than NoMaintain %v", sumM/3, sumN/3)
	}
}

func TestFig11Shape(t *testing.T) {
	res := Fig11Thresholds(Tiny())
	if len(res.EpsilonRows) != 3 || len(res.KappaRows) != 4 {
		t.Fatalf("rows = %d/%d", len(res.EpsilonRows), len(res.KappaRows))
	}
	for _, row := range res.EpsilonRows {
		if row.PMT <= 0 || row.ScratchPMT <= 0 {
			t.Fatalf("missing timings: %+v", row)
		}
		// Headline: incremental maintenance beats the from-scratch
		// CATAPULT++ rebuild.
		if row.PMT >= row.ScratchPMT {
			t.Fatalf("eps=%v: MIDAS PMT %v not faster than scratch %v",
				row.Epsilon, row.PMT, row.ScratchPMT)
		}
	}
	for _, row := range res.KappaRows {
		if row.PMT <= 0 {
			t.Fatalf("missing PMT for kappa=%v", row.Kappa)
		}
	}
	for _, tbl := range res.Tables() {
		if tbl.String() == "" {
			t.Fatal("empty table")
		}
	}
}

func TestFig12Shape(t *testing.T) {
	res := Fig12IndexCost(Tiny())
	if len(res.SizeRows) != 3 || len(res.DeltaRows) != 3 {
		t.Fatalf("rows = %d/%d", len(res.SizeRows), len(res.DeltaRows))
	}
	// Construction cost grows with dataset size.
	if res.SizeRows[0].DBSize >= res.SizeRows[2].DBSize {
		t.Fatal("size sweep not increasing")
	}
	for _, row := range res.SizeRows {
		if row.FCTMine <= 0 || row.IndexBuild <= 0 {
			t.Fatalf("missing timings at |D|=%d", row.DBSize)
		}
	}
	// Headline: maintaining the FCT set is cheaper than remining. The
	// margin is structural at small Δ (cost scales with |Δ|, remining
	// with |D|); at Δ approaching |D| the two legitimately converge, so
	// assert on the smallest Δ row.
	first := res.DeltaRows[0]
	if first.FCTMaintain >= first.FCTRemine {
		t.Fatalf("FCT maintain %v not faster than remine %v at smallest Δ",
			first.FCTMaintain, first.FCTRemine)
	}
}

func TestFig13Shape(t *testing.T) {
	res := Fig13NoMaintain(Tiny())
	if len(res.Comparisons) != len(DefaultBatches()) {
		t.Fatalf("comparisons = %d", len(res.Comparisons))
	}
	// Aggregate headline: averaged over batches, MIDAS's MP must not
	// exceed NoMaintain's beyond one-query granularity (MP is measured
	// on a finite workload and is not one of the swap-guarded
	// quantities), and its guarded scov must not be lower at all.
	granularity := 100.0 / float64(Tiny().Queries)
	var mpM, mpN, scM, scN float64
	for _, c := range res.Comparisons {
		mpM += c.Outcomes[MIDAS].MP
		mpN += c.Outcomes[NoMaintain].MP
		scM += c.Outcomes[MIDAS].Quality.Scov
		scN += c.Outcomes[NoMaintain].Quality.Scov
	}
	k := float64(len(res.Comparisons))
	if mpM/k > mpN/k+granularity {
		t.Fatalf("avg MP: MIDAS %v > NoMaintain %v beyond granularity", mpM/k, mpN/k)
	}
	if scM < scN-1e-9 {
		t.Fatalf("avg scov: MIDAS %v < NoMaintain %v", scM, scN)
	}
	if res.Table().String() == "" {
		t.Fatal("empty table")
	}
}

func TestFig14Shape(t *testing.T) {
	res := Fig14BaselinesAIDS(Tiny())
	if res.Dataset != "AIDS-like" || len(res.Comparisons) == 0 {
		t.Fatal("bad result")
	}
	// Headline: on insertion batches (major modifications), MIDAS
	// maintenance is faster than CATAPULT from-scratch.
	for _, c := range res.Comparisons {
		m := c.Outcomes[MIDAS]
		cat := c.Outcomes[CATAPULT]
		if strings.HasPrefix(c.Batch, "+") && m.Time >= cat.Time {
			t.Fatalf("batch %s: MIDAS %v not faster than CATAPULT %v",
				c.Batch, m.Time, cat.Time)
		}
	}
	for _, tbl := range res.Tables() {
		if tbl.String() == "" {
			t.Fatal("empty table")
		}
	}
}

func TestFig16Shape(t *testing.T) {
	res := Fig16Scalability(Tiny())
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].DBSize >= res.Rows[2].DBSize {
		t.Fatal("sweep not increasing")
	}
	for _, row := range res.Rows {
		if row.PMT <= 0 {
			t.Fatalf("missing PMT at |D|=%d", row.DBSize)
		}
		// Cluster maintenance must beat from-scratch regeneration.
		if row.ClusterMaintain >= row.ClusterScratch {
			t.Fatalf("|D|=%d: cluster maintain %v not faster than scratch %v",
				row.DBSize, row.ClusterMaintain, row.ClusterScratch)
		}
	}
	if res.Table().String() == "" {
		t.Fatal("empty table")
	}
}

func TestExample11Shape(t *testing.T) {
	res := Example11Boronic(Tiny())
	if res.EdgeSteps <= 0 || res.EdgeQFT <= 0 {
		t.Fatal("edge mode missing")
	}
	// Pattern-at-a-time (refreshed) must use no more steps than
	// edge-at-a-time; against the stale set the guards are set-level
	// (coverage/diversity/cognitive load), not per-query, so allow a
	// small per-query tolerance at this toy scale.
	if res.FreshSteps > res.EdgeSteps {
		t.Fatalf("fresh steps %d > edge steps %d", res.FreshSteps, res.EdgeSteps)
	}
	if float64(res.FreshSteps) > 1.15*float64(res.StaleSteps) {
		t.Fatalf("fresh steps %d far worse than stale %d", res.FreshSteps, res.StaleSteps)
	}
	if res.Table().String() == "" {
		t.Fatal("empty table")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"a", "bb"}}
	tbl.Add("1", "2")
	s := tbl.String()
	if !strings.Contains(s, "== T ==") || !strings.Contains(s, "bb") {
		t.Fatalf("table = %q", s)
	}
}

func TestScalePresets(t *testing.T) {
	for _, s := range []Scale{Tiny(), Small(), Default()} {
		if s.Base <= 0 || s.Gamma <= 0 || s.MinSize <= 0 || s.MaxSize < s.MinSize {
			t.Fatalf("bad preset: %+v", s)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Header: []string{"a", "b"}}
	tbl.Add("1", "x,y")
	tbl.Add(`q"r`, "2")
	got := tbl.CSV()
	want := "a,b\n1,\"x,y\"\n\"q\"\"r\",2\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}
