// Package faultinject provides named failpoints for crash and error
// injection in tests. Production code calls Hit(name) at interesting
// pipeline stages; tests arm individual failpoints with Enable or
// EnableErr to force an error return at exactly that stage.
//
// The disabled path is a single atomic load, so failpoints are cheap
// enough to leave compiled into hot maintenance code.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrInjected is the default error returned by an armed failpoint.
var ErrInjected = errors.New("faultinject: injected failure")

var (
	armed int64 // number of currently armed failpoints (fast path)

	mu     sync.Mutex
	points map[string]error
)

// Enable arms the named failpoint with the default ErrInjected error.
func Enable(name string) { EnableErr(name, nil) }

// EnableErr arms the named failpoint with a specific error. A nil err
// arms it with ErrInjected wrapped with the failpoint name.
func EnableErr(name string, err error) {
	if err == nil {
		err = fmt.Errorf("%w at %s", ErrInjected, name)
	}
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]error)
	}
	if _, ok := points[name]; !ok {
		atomic.AddInt64(&armed, 1)
	}
	points[name] = err
}

// Disable disarms the named failpoint. Disarming an unarmed failpoint
// is a no-op.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		atomic.AddInt64(&armed, -1)
	}
}

// Reset disarms every failpoint. Tests should defer this.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	if n := int64(len(points)); n > 0 {
		atomic.AddInt64(&armed, -n)
	}
	points = nil
}

// Hit reports whether the named failpoint is armed: it returns the
// armed error, or nil when the failpoint is disarmed. When no
// failpoints are armed at all (the production case) Hit costs one
// atomic load.
func Hit(name string) error {
	if atomic.LoadInt64(&armed) == 0 {
		return nil
	}
	mu.Lock()
	defer mu.Unlock()
	return points[name]
}
