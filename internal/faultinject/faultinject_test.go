package faultinject

import (
	"errors"
	"testing"
)

func TestDisarmedHitIsNil(t *testing.T) {
	defer Reset()
	if err := Hit("nope"); err != nil {
		t.Fatalf("Hit on disarmed failpoint = %v", err)
	}
}

func TestEnableDisable(t *testing.T) {
	defer Reset()
	Enable("a")
	if err := Hit("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Hit(a) = %v, want ErrInjected", err)
	}
	if err := Hit("b"); err != nil {
		t.Fatalf("Hit(b) = %v, want nil", err)
	}
	Disable("a")
	if err := Hit("a"); err != nil {
		t.Fatalf("Hit(a) after Disable = %v", err)
	}
}

func TestEnableErr(t *testing.T) {
	defer Reset()
	custom := errors.New("boom")
	EnableErr("x", custom)
	if err := Hit("x"); !errors.Is(err, custom) {
		t.Fatalf("Hit(x) = %v, want boom", err)
	}
}

func TestReset(t *testing.T) {
	Enable("a")
	Enable("b")
	Reset()
	if err := Hit("a"); err != nil {
		t.Fatal("Reset did not disarm a")
	}
	if err := Hit("b"); err != nil {
		t.Fatal("Reset did not disarm b")
	}
	// Double-enable must not double-count the armed counter.
	Enable("c")
	Enable("c")
	Reset()
	if err := Hit("c"); err != nil {
		t.Fatal("Reset did not disarm c")
	}
}
