package csg

import "github.com/midas-graph/midas/graph"

// Clone returns a deep copy of the manager for transactional rollback.
func (m *Manager) Clone() *Manager {
	out := &Manager{csgs: make(map[int]*CSG, len(m.csgs)), budget: m.budget, memo: m.memo}
	for id, s := range m.csgs {
		out.csgs[id] = s.clone()
	}
	return out
}

// clone deep-copies one CSG: the summary graph is structurally mutated
// by Integrate/RemoveGraph, and edge supports are per-edge ID sets, so
// both must be copied.
func (s *CSG) clone() *CSG {
	nc := &CSG{
		ClusterID: s.ClusterID,
		G:         s.G.Clone(),
		support:   make(map[graph.Edge]map[int]struct{}, len(s.support)),
		budget:    s.budget,
		memo:      s.memo,
	}
	for e, ids := range s.support {
		ns := make(map[int]struct{}, len(ids))
		for id := range ids {
			ns[id] = struct{}{}
		}
		nc.support[e] = ns
	}
	return nc
}
