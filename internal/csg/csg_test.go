package csg

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/cluster"
	"github.com/midas-graph/midas/internal/iso"
	"github.com/midas-graph/midas/internal/tree"
)

func TestBuildSingleGraph(t *testing.T) {
	g := graph.Path(1, "C", "O", "C")
	s := Build(0, []*graph.Graph{g}, 0)
	if s.Size() != 2 {
		t.Fatalf("summary edges = %d, want 2", s.Size())
	}
	for _, e := range s.Edges() {
		if got := s.EdgeSupport(e); !reflect.DeepEqual(got, []int{1}) {
			t.Fatalf("support = %v, want [1]", got)
		}
	}
}

func TestBuildIdenticalGraphsShareEdges(t *testing.T) {
	g1 := graph.Path(1, "C", "O", "C")
	g2 := graph.Path(2, "C", "O", "C")
	s := Build(0, []*graph.Graph{g1, g2}, 0)
	// Identical graphs must overlay perfectly: still 2 summary edges,
	// each supported by both graphs.
	if s.Size() != 2 {
		t.Fatalf("summary edges = %d, want 2", s.Size())
	}
	for _, e := range s.Edges() {
		if got := s.EdgeSupport(e); !reflect.DeepEqual(got, []int{1, 2}) {
			t.Fatalf("support = %v, want [1 2]", got)
		}
	}
}

func TestBuildOverlappingGraphs(t *testing.T) {
	// C-O-C and C-O-N share the C-O edge.
	g1 := graph.Path(1, "C", "O", "C")
	g2 := graph.Path(2, "C", "O", "N")
	s := Build(0, []*graph.Graph{g1, g2}, 0)
	if s.Size() != 3 {
		t.Fatalf("summary edges = %d, want 3 (C-O shared, O-C and O-N separate)", s.Size())
	}
	// Exactly one edge should have support {1,2}.
	shared := 0
	for _, e := range s.Edges() {
		if len(s.EdgeSupport(e)) == 2 {
			shared++
		}
	}
	if shared != 1 {
		t.Fatalf("shared edges = %d, want 1", shared)
	}
}

func TestIntegrateThenRemoveRestores(t *testing.T) {
	g1 := graph.Path(1, "C", "O", "C")
	s := Build(0, []*graph.Graph{g1}, 0)
	before := s.Size()
	g2 := graph.Cycle(2, "C", "O", "N")
	s.Integrate(g2)
	if s.Size() <= before {
		t.Fatal("integration should add edges")
	}
	s.RemoveGraph(2)
	if s.Size() != before {
		t.Fatalf("size after remove = %d, want %d", s.Size(), before)
	}
	if got := s.MemberIDs(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("members = %v, want [1]", got)
	}
}

func TestRemoveKeepsSharedEdges(t *testing.T) {
	g1 := graph.Path(1, "C", "O")
	g2 := graph.Path(2, "C", "O")
	s := Build(0, []*graph.Graph{g1, g2}, 0)
	s.RemoveGraph(1)
	if s.Size() != 1 {
		t.Fatalf("size = %d, want 1 (edge still supported by graph 2)", s.Size())
	}
	e := s.Edges()[0]
	if !reflect.DeepEqual(s.EdgeSupport(e), []int{2}) {
		t.Fatalf("support = %v, want [2]", s.EdgeSupport(e))
	}
}

func TestEverySummaryEdgeBacksAMember(t *testing.T) {
	// Each member graph must be embeddable in the summary via edges it
	// supports: here we check the weaker invariant that each member's
	// edge count equals its supported summary edge count.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var members []*graph.Graph
		for i := 0; i < 1+r.Intn(4); i++ {
			members = append(members, randomMolecule(r, i+1))
		}
		s := Build(0, members, 0)
		for _, g := range members {
			supported := 0
			for _, e := range s.Edges() {
				for _, id := range s.EdgeSupport(e) {
					if id == g.ID {
						supported++
					}
				}
			}
			// Distinct g edges may merge onto one summary edge only if
			// they map to the same vertex pair, which cannot happen for a
			// simple graph under an injective vertex mapping.
			if supported != g.Size() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMemberContainedInSummary(t *testing.T) {
	// The closure property: every member graph is a subgraph of the
	// summary.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var members []*graph.Graph
		for i := 0; i < 1+r.Intn(4); i++ {
			members = append(members, randomMolecule(r, i+1))
		}
		s := Build(0, members, 0)
		for _, g := range members {
			if !iso.HasSubgraph(g, s.G, iso.Options{MaxSteps: 100000}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func randomMolecule(r *rand.Rand, id int) *graph.Graph {
	labels := []string{"C", "O", "N"}
	n := 2 + r.Intn(6)
	g := graph.New(id)
	for i := 0; i < n; i++ {
		g.AddVertex(labels[r.Intn(len(labels))])
	}
	for i := 1; i < n; i++ {
		g.AddEdge(i, r.Intn(i))
	}
	if r.Intn(2) == 0 && n > 2 {
		g.AddEdge(r.Intn(n), r.Intn(n))
	}
	g.SortAdjacency()
	return g
}

func TestLabelCoverage(t *testing.T) {
	g1 := graph.Path(1, "C", "O", "C")
	g2 := graph.Path(2, "C", "O")
	s := Build(0, []*graph.Graph{g1, g2}, 0)
	lc := s.LabelCoverage()
	if len(lc["C.O"]) != 2 {
		t.Fatalf("lcov(C.O) members = %d, want 2", len(lc["C.O"]))
	}
}

func TestWeights(t *testing.T) {
	g1 := graph.Path(1, "C", "O", "C")
	g2 := graph.Path(2, "C", "O")
	s := Build(0, []*graph.Graph{g1, g2}, 0)
	w := s.Weights(func(label string) float64 {
		if label == "C.O" {
			return 0.5
		}
		return 0
	}, 2)
	for e, weight := range w {
		label := s.G.EdgeLabel(e.U, e.V)
		if label == "C.O" {
			if weight != 0.5*1.0 {
				t.Fatalf("w(C.O) = %v, want 0.5", weight)
			}
		} else if weight != 0 {
			t.Fatalf("w(%s) = %v, want 0", label, weight)
		}
	}
}

func TestManagerLifecycle(t *testing.T) {
	d := graph.DatabaseOf(
		graph.Path(0, "C", "O", "C"),
		graph.Path(1, "C", "O", "C"),
		graph.Star(2, "C", "N", "N", "N"),
		graph.Star(3, "C", "N", "N", "N"),
	)
	set := tree.Mine(d, 0.3, 3)
	cl := cluster.Build(d, set, cluster.Config{K: 2, MaxSize: 50}, rand.New(rand.NewSource(1)))
	m := NewManager(0)
	m.BuildAll(cl)
	if len(m.ClusterIDs()) != cl.Len() {
		t.Fatalf("summaries = %d, want %d", len(m.ClusterIDs()), cl.Len())
	}

	// Assign a new graph.
	g := graph.Path(10, "C", "O", "C")
	cid := cl.Assign(g, set)
	m.OnAssign(cid, g)
	found := false
	for _, id := range m.Get(cid).MemberIDs() {
		if id == 10 {
			found = true
		}
	}
	if !found {
		t.Fatal("assigned graph not in summary")
	}

	// Remove it again.
	cl.Remove(10)
	m.OnRemove(cid, 10)
	for _, id := range m.Get(cid).MemberIDs() {
		if id == 10 {
			t.Fatal("removed graph still in summary")
		}
	}
}

func TestManagerOnRemoveDropsEmpty(t *testing.T) {
	m := NewManager(0)
	g := graph.Path(5, "C", "O")
	m.OnAssign(7, g)
	if m.Get(7) == nil {
		t.Fatal("summary not created on assign")
	}
	m.OnRemove(7, 5)
	if m.Get(7) != nil {
		t.Fatal("empty summary should be dropped")
	}
	m.OnRemove(99, 1) // no-op must not panic
}

func TestManagerSync(t *testing.T) {
	d := graph.DatabaseOf(
		graph.Path(0, "C", "O", "C"),
		graph.Star(1, "C", "N", "N", "N"),
	)
	set := tree.Mine(d, 0.3, 3)
	cl := cluster.Build(d, set, cluster.Config{K: 2, MaxSize: 50}, rand.New(rand.NewSource(1)))
	m := NewManager(0)
	rebuilt := m.Sync(cl)
	if len(rebuilt) != cl.Len() {
		t.Fatalf("rebuilt = %v, want all %d clusters", rebuilt, cl.Len())
	}
	// Vanished cluster summaries are dropped on the next sync.
	cl.Remove(0)
	cl.Remove(1)
	m.Sync(cl)
	if len(m.ClusterIDs()) != 0 {
		t.Fatalf("summaries = %v, want none", m.ClusterIDs())
	}
}
