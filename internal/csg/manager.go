package csg

import (
	"sort"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/cluster"
)

// Manager owns the CSG set S, one summary per cluster, and applies the
// maintenance steps of Algorithm 1 lines 6–7: summaries of clusters that
// receive insertions are updated in place, summaries of clusters that
// lose members shed support, and clusters created by fine clustering get
// freshly built summaries.
type Manager struct {
	csgs   map[int]*CSG
	budget int
	cancel func() bool
	memo   bool
}

// NewManager returns a manager; budget caps each MCCS alignment
// (<=0 selects the default).
func NewManager(budget int) *Manager {
	return &Manager{csgs: make(map[int]*CSG), budget: budget}
}

// SetCancel installs (or, with nil, removes) a cancellation hook polled
// during MCCS alignments in summary integrations and rebuilds.
func (m *Manager) SetCancel(fn func() bool) {
	m.cancel = fn
	for _, s := range m.csgs {
		s.cancel = fn
	}
}

// SetMemo enables (or disables) process-wide memoization of the MCCS/VF2
// alignment kernels in all current and future summaries. Memoised and
// fresh alignments are identical (instance-exact cache keys), so this
// only affects wall-clock time.
func (m *Manager) SetMemo(on bool) {
	m.memo = on
	for _, s := range m.csgs {
		s.memo = on
	}
}

// BuildAll constructs summaries for every cluster.
func (m *Manager) BuildAll(cl *cluster.Clustering) {
	for _, c := range cl.Clusters() {
		m.csgs[c.ID] = m.build(c.ID, c.Members())
	}
}

func (m *Manager) build(clusterID int, members []*graph.Graph) *CSG {
	return buildCSG(clusterID, members, m.budget, m.cancel, m.memo)
}

// Get returns the summary of a cluster, or nil.
func (m *Manager) Get(clusterID int) *CSG { return m.csgs[clusterID] }

// ClusterIDs returns the sorted cluster IDs with summaries.
func (m *Manager) ClusterIDs() []int {
	ids := make([]int, 0, len(m.csgs))
	for id := range m.csgs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// OnAssign integrates a newly assigned graph into its cluster's summary,
// creating the summary if the cluster is new.
func (m *Manager) OnAssign(clusterID int, g *graph.Graph) {
	s := m.csgs[clusterID]
	if s == nil {
		s = m.build(clusterID, nil)
		m.csgs[clusterID] = s
	}
	s.Integrate(g)
}

// OnRemove sheds a removed graph's support from its cluster's summary.
// Empty summaries are dropped.
func (m *Manager) OnRemove(clusterID, graphID int) {
	s := m.csgs[clusterID]
	if s == nil {
		return
	}
	s.RemoveGraph(graphID)
	if s.Size() == 0 {
		delete(m.csgs, clusterID)
	}
}

// Rebuild replaces the summary of a cluster from scratch — used for
// clusters produced by fine clustering, whose membership changed
// wholesale (§4.3).
func (m *Manager) Rebuild(c *cluster.Cluster) {
	m.csgs[c.ID] = m.build(c.ID, c.Members())
}

// Sync reconciles the manager with the clustering: summaries for
// missing clusters are built, summaries for vanished clusters dropped.
// It returns the IDs of clusters whose summaries were (re)built.
func (m *Manager) Sync(cl *cluster.Clustering) []int {
	var rebuilt []int
	live := make(map[int]struct{})
	for _, c := range cl.Clusters() {
		live[c.ID] = struct{}{}
		if m.csgs[c.ID] == nil {
			m.Rebuild(c)
			rebuilt = append(rebuilt, c.ID)
		}
	}
	for id := range m.csgs {
		if _, ok := live[id]; !ok {
			delete(m.csgs, id)
		}
	}
	sort.Ints(rebuilt)
	return rebuilt
}
