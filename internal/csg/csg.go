// Package csg implements cluster summary graphs (CSGs): each cluster is
// summarised into a single labelled graph by iterated graph closure
// (paper §2.3), and the summary is maintained incrementally under graph
// insertions and deletions exactly as prescribed by §4.4 — every CSG
// edge carries the set of member-graph IDs supporting it; insertion adds
// IDs (creating edges as needed), deletion removes IDs and drops edges
// whose support becomes empty.
//
// The closure construction integrates one member graph at a time: a
// mapping φ between the incoming graph and the current summary is
// computed (an MCCS-based alignment followed by greedy label-compatible
// matching — dummy ε vertices of the paper's extended graphs correspond
// to the unmapped vertices we materialise as fresh summary vertices).
package csg

import (
	"sort"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/iso"
)

// CSG is the closure summary graph of one cluster.
type CSG struct {
	ClusterID int
	// G is the summary structure. Vertices are never removed (isolated
	// vertices may remain after deletions); edges carry support.
	G *graph.Graph
	// support maps each summary edge to the IDs of member graphs
	// containing it.
	support map[graph.Edge]map[int]struct{}
	// budget caps the MCCS alignment search per integration.
	budget int
	// cancel, when set, is polled by the MCCS/VF2 alignment kernels so
	// a cancelled maintenance call stops integrating promptly.
	cancel func() bool
	// memo, when set, routes the alignment kernels through the
	// process-wide instance-keyed memo caches in internal/iso. Rebuilding
	// a summary over the same members replays identical (g, summary)
	// alignment queries, so the replay is nearly free; keys are
	// instance-exact, so memoised alignments equal fresh ones and the
	// resulting summary is byte-identical either way.
	memo bool
}

// Build summarises the given member graphs (typically a cluster's
// members, largest first for a good closure base).
func Build(clusterID int, members []*graph.Graph, budget int) *CSG {
	return BuildWithCancel(clusterID, members, budget, nil)
}

// BuildWithCancel is Build with a cancellation hook polled during the
// MCCS alignments; a cancelled build returns a partial summary, which
// the caller is expected to discard (maintenance rolls back).
func BuildWithCancel(clusterID int, members []*graph.Graph, budget int, cancel func() bool) *CSG {
	return buildCSG(clusterID, members, budget, cancel, false)
}

func buildCSG(clusterID int, members []*graph.Graph, budget int, cancel func() bool, memo bool) *CSG {
	if budget <= 0 {
		budget = 20000
	}
	s := &CSG{
		ClusterID: clusterID,
		G:         graph.New(clusterID),
		support:   make(map[graph.Edge]map[int]struct{}),
		budget:    budget,
		cancel:    cancel,
		memo:      memo,
	}
	ordered := append([]*graph.Graph(nil), members...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Size() != ordered[j].Size() {
			return ordered[i].Size() > ordered[j].Size()
		}
		return ordered[i].ID < ordered[j].ID
	})
	for _, g := range ordered {
		s.Integrate(g)
	}
	return s
}

// Size returns the number of summary edges.
func (s *CSG) Size() int { return s.G.Size() }

// Integrate merges member graph g into the summary (§4.4 step 1): a
// vertex mapping φ from g to the summary is computed, missing vertices
// and edges are added, and g's ID is recorded on every image edge.
func (s *CSG) Integrate(g *graph.Graph) {
	mapping := s.align(g)
	for _, e := range g.Edges() {
		u, v := mapping[e.U], mapping[e.V]
		se := graph.Edge{U: u, V: v}.Canon()
		if !s.G.HasEdge(u, v) {
			s.G.AddEdge(u, v)
		}
		sup := s.support[se]
		if sup == nil {
			sup = make(map[int]struct{})
			s.support[se] = sup
		}
		sup[g.ID] = struct{}{}
	}
}

// align computes φ: g vertex -> summary vertex, creating fresh summary
// vertices for anything unmatched.
func (s *CSG) align(g *graph.Graph) []int {
	mapping := make([]int, g.Order())
	for i := range mapping {
		mapping[i] = -1
	}
	used := make(map[int]bool)
	if s.G.Size() > 0 && g.Size() > 0 {
		// Fast path: graphs from the same family usually embed wholly
		// into a mature summary; a full VF2 embedding is far cheaper
		// than the MCCS search and yields a perfect alignment. The memo
		// variants key on the exact (g, summary) instance pair, and the
		// summary mutates between integrations, so stale hits are
		// impossible; cached mappings are read-only here.
		embed := iso.FindEmbedding
		mccs := iso.MCCSWithCancel
		if s.memo {
			embed = iso.FindEmbeddingCached
			mccs = iso.MCCSCached
		}
		if m := embed(g, s.G, iso.Options{MaxSteps: s.budget, Cancel: s.cancel}); m != nil {
			for gv, sv := range m {
				mapping[gv] = sv
				used[sv] = true
			}
			return mapping
		}
		res := mccs(g, s.G, s.budget, s.cancel)
		for gv, sv := range res.Mapping {
			if sv >= 0 {
				mapping[gv] = sv
				used[sv] = true
			}
		}
	}
	// Greedy completion: BFS from mapped vertices; prefer summary
	// vertices with the same label adjacent to the images of already
	// mapped neighbours.
	orderVs := bfsOrder(g, mapping)
	for _, gv := range orderVs {
		if mapping[gv] >= 0 {
			continue
		}
		best, bestScore := -1, -1
		for sv := 0; sv < s.G.Order(); sv++ {
			if used[sv] || s.G.Label(sv) != g.Label(gv) {
				continue
			}
			score := 0
			for _, gw := range g.Neighbors(gv) {
				if img := mapping[gw]; img >= 0 && s.G.HasEdge(sv, img) {
					score++
				}
			}
			if score > bestScore {
				best, bestScore = sv, score
			}
		}
		if best == -1 {
			best = s.G.AddVertex(g.Label(gv))
		}
		mapping[gv] = best
		used[best] = true
	}
	return mapping
}

// bfsOrder returns g's vertices, mapped ones first, then by BFS from
// them, so that greedy completion has anchored neighbours.
func bfsOrder(g *graph.Graph, mapping []int) []int {
	n := g.Order()
	var order []int
	seen := make([]bool, n)
	var queue []int
	for v := 0; v < n; v++ {
		if mapping[v] >= 0 {
			order = append(order, v)
			seen[v] = true
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if !seen[w] {
				seen[w] = true
				order = append(order, w)
				queue = append(queue, w)
			}
		}
	}
	for v := 0; v < n; v++ {
		if !seen[v] {
			order = append(order, v)
		}
	}
	return order
}

// RemoveGraph removes member graph id from the summary (§4.4 step 2):
// its ID is removed from every supporting edge; edges left without
// support are deleted.
func (s *CSG) RemoveGraph(id int) {
	for e, sup := range s.support {
		if _, ok := sup[id]; !ok {
			continue
		}
		delete(sup, id)
		if len(sup) == 0 {
			s.G.RemoveEdge(e.U, e.V)
			delete(s.support, e)
		}
	}
}

// EdgeSupport returns the sorted member IDs supporting a summary edge.
func (s *CSG) EdgeSupport(e graph.Edge) []int {
	sup := s.support[e.Canon()]
	ids := make([]int, 0, len(sup))
	for id := range sup {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// SupportCount returns the number of members supporting a summary edge.
func (s *CSG) SupportCount(e graph.Edge) int { return len(s.support[e.Canon()]) }

// LabelCoverage returns, per edge label, the set of member IDs having at
// least one edge with that label — lcov(e, C) numerators (§2.3).
func (s *CSG) LabelCoverage() map[string]map[int]struct{} {
	out := make(map[string]map[int]struct{})
	for e, sup := range s.support {
		label := s.G.EdgeLabel(e.U, e.V)
		set := out[label]
		if set == nil {
			set = make(map[int]struct{})
			out[label] = set
		}
		for id := range sup {
			set[id] = struct{}{}
		}
	}
	return out
}

// Weights assigns each summary edge the weight w_e = lcov(e,D) ×
// lcov(e,C) (§2.3). lcovD maps an edge label to its database label
// coverage; clusterSize is |C|.
func (s *CSG) Weights(lcovD func(label string) float64, clusterSize int) map[graph.Edge]float64 {
	lc := s.LabelCoverage()
	out := make(map[graph.Edge]float64, len(s.support))
	for e := range s.support {
		label := s.G.EdgeLabel(e.U, e.V)
		covC := 0.0
		if clusterSize > 0 {
			covC = float64(len(lc[label])) / float64(clusterSize)
		}
		out[e] = lcovD(label) * covC
	}
	return out
}

// Edges returns the summary edges sorted canonically.
func (s *CSG) Edges() []graph.Edge {
	out := make([]graph.Edge, 0, len(s.support))
	for e := range s.support {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// MemberIDs returns the sorted IDs of all members contributing support.
func (s *CSG) MemberIDs() []int {
	set := make(map[int]struct{})
	for _, sup := range s.support {
		for id := range sup {
			set[id] = struct{}{}
		}
	}
	ids := make([]int, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
