// Package tree implements labelled free-tree patterns and frequent
// closed tree (FCT) mining and maintenance, the scaffolding MIDAS uses in
// place of CATAPULT's frequent subtrees (paper §3.3, §4.1–4.2).
//
// Trees are canonicalised by rooting at the tree centre and recursively
// sorting child encodings, as in CATAPULT's canonical trees; the trie
// tokens of the FCT-Index are produced by a top-down level-by-level BFS
// scan with `$` separating families of siblings (paper §5.1, Figure 5).
package tree

import (
	"sort"
	"strings"

	"github.com/midas-graph/midas/graph"
)

// Centers returns the one or two centre vertices of a tree (the vertices
// minimising eccentricity), computed by iterative leaf removal. It
// panics if g is not a tree, since callers must guarantee tree shape.
func Centers(g *graph.Graph) []int {
	if !g.IsTree() {
		panic("tree: Centers called on a non-tree")
	}
	n := g.Order()
	if n <= 2 {
		vs := make([]int, n)
		for i := range vs {
			vs[i] = i
		}
		return vs
	}
	deg := make([]int, n)
	removed := make([]bool, n)
	var leaves []int
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] == 1 {
			leaves = append(leaves, v)
		}
	}
	remaining := n
	for remaining > 2 {
		var next []int
		for _, v := range leaves {
			removed[v] = true
			remaining--
			for _, w := range g.Neighbors(v) {
				if removed[w] {
					continue
				}
				deg[w]--
				if deg[w] == 1 {
					next = append(next, w)
				}
			}
		}
		leaves = next
	}
	var centers []int
	for v := 0; v < n; v++ {
		if !removed[v] {
			centers = append(centers, v)
		}
	}
	return centers
}

// encodeRooted returns the canonical encoding of the subtree rooted at
// root (coming from parent): label(children sorted by encoding).
func encodeRooted(g *graph.Graph, root, parent int) string {
	var kids []string
	for _, w := range g.Neighbors(root) {
		if w != parent {
			kids = append(kids, encodeRooted(g, w, root))
		}
	}
	if len(kids) == 0 {
		return g.Label(root)
	}
	sort.Strings(kids)
	return g.Label(root) + "(" + strings.Join(kids, ",") + ")"
}

// CanonicalKey returns the canonical string of a labelled free tree. Two
// trees have equal keys iff they are isomorphic. It panics on non-trees.
func CanonicalKey(g *graph.Graph) string {
	centers := Centers(g)
	best := ""
	for _, c := range centers {
		enc := encodeRooted(g, c, -1)
		if best == "" || enc < best {
			best = enc
		}
	}
	return best
}

// canonicalRoot returns the centre whose rooted encoding is minimal.
func canonicalRoot(g *graph.Graph) int {
	centers := Centers(g)
	bestRoot, best := -1, ""
	for _, c := range centers {
		enc := encodeRooted(g, c, -1)
		if bestRoot == -1 || enc < best {
			bestRoot, best = c, enc
		}
	}
	return bestRoot
}

// CanonicalTokens returns the trie tokens of the canonical tree: a
// top-down level-by-level BFS where each vertex contributes its label and
// each family of siblings is terminated by "$" (paper §5.1). Children
// are visited in canonical-encoding order, so tokens are canonical.
func CanonicalTokens(g *graph.Graph) []string {
	root := canonicalRoot(g)
	tokens := []string{g.Label(root)}
	type qent struct{ v, parent int }
	queue := []qent{{root, -1}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		kids := childrenInOrder(g, cur.v, cur.parent)
		if len(kids) == 0 {
			continue
		}
		for _, k := range kids {
			tokens = append(tokens, g.Label(k))
			queue = append(queue, qent{k, cur.v})
		}
		tokens = append(tokens, "$")
	}
	return tokens
}

func childrenInOrder(g *graph.Graph, v, parent int) []int {
	var kids []int
	for _, w := range g.Neighbors(v) {
		if w != parent {
			kids = append(kids, w)
		}
	}
	sort.Slice(kids, func(i, j int) bool {
		return encodeRooted(g, kids[i], v) < encodeRooted(g, kids[j], v)
	})
	return kids
}

// CanonicalString joins the canonical tokens with spaces; this is the
// string inserted into the FCT-Index trie.
func CanonicalString(g *graph.Graph) string {
	return strings.Join(CanonicalTokens(g), " ")
}
