package tree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/midas-graph/midas/graph"
)

func TestAddUpdatesExistingPostings(t *testing.T) {
	d := fixtureDB()
	s := Mine(d, 0.5, 3)
	ins := []*graph.Graph{graph.Path(10, "C", "O", "C", "N")}
	after, err := d.ApplyToCopy(graph.Update{Insert: ins})
	if err != nil {
		t.Fatal(err)
	}
	s.Add(after, ins)
	pathKey := CanonicalKey(graph.Path(0, "C", "O", "C"))
	tr := s.Lookup(pathKey)
	if tr == nil {
		t.Fatal("path lost after Add")
	}
	if _, ok := tr.Post[10]; !ok {
		t.Fatal("new graph not added to existing tree posting")
	}
	if s.DBSize() != 4 {
		t.Fatalf("dbSize = %d, want 4", s.DBSize())
	}
	verifyPostings(t, s, after)
}

func TestAddDiscoversNewTrees(t *testing.T) {
	// Old D has no N at all; Δ+ introduces a C-N rich family.
	d := graph.DatabaseOf(
		graph.Path(1, "C", "O"),
		graph.Path(2, "C", "O"),
	)
	s := Mine(d, 0.5, 3)
	var ins []*graph.Graph
	for i := 0; i < 4; i++ {
		ins = append(ins, graph.Path(10+i, "C", "N", "C"))
	}
	after, err := d.ApplyToCopy(graph.Update{Insert: ins})
	if err != nil {
		t.Fatal(err)
	}
	s.Add(after, ins)
	key := CanonicalKey(graph.Path(0, "C", "N", "C"))
	tr := s.Lookup(key)
	if tr == nil {
		t.Fatal("new frequent tree C-N-C not discovered")
	}
	if tr.SupportCount() != 4 {
		t.Fatalf("C-N-C support = %d, want 4", tr.SupportCount())
	}
	verifyPostings(t, s, after)
}

func TestRemoveShrinksPostings(t *testing.T) {
	d := fixtureDB()
	s := Mine(d, 0.5, 3)
	s.Remove(2, []int{1})
	pathKey := CanonicalKey(graph.Path(0, "C", "O", "C"))
	tr := s.Lookup(pathKey)
	if tr == nil {
		t.Fatal("path pruned although still frequent at relaxed threshold")
	}
	if tr.SupportCount() != 1 {
		t.Fatalf("support = %d, want 1", tr.SupportCount())
	}
	if s.DBSize() != 2 {
		t.Fatalf("dbSize = %d, want 2", s.DBSize())
	}
}

func TestRemovePrunesBelowRelaxed(t *testing.T) {
	d := graph.DatabaseOf(
		graph.Path(1, "C", "O", "C"),
		graph.Path(2, "C", "N"),
		graph.Path(3, "C", "N"),
		graph.Path(4, "C", "N"),
	)
	s := Mine(d, 0.5, 3)
	pathKey := CanonicalKey(graph.Path(0, "C", "O", "C"))
	if s.Lookup(pathKey) == nil {
		t.Fatal("path should be mined at relaxed threshold (1/4 >= 0.25)")
	}
	// After deleting graph 1 the path's support is 0 -> pruned.
	s.Remove(3, []int{1})
	if s.Lookup(pathKey) != nil {
		t.Fatal("path with zero support should be pruned")
	}
	// Edge posting list still knows C.O had no remaining occurrences.
	if s.EdgeTree("C.O").SupportCount() != 0 {
		t.Fatal("edge posting not shrunk")
	}
}

func TestUpdateMixed(t *testing.T) {
	d := fixtureDB()
	s := Mine(d, 0.5, 3)
	u := graph.Update{
		Insert: []*graph.Graph{graph.Path(20, "C", "O", "C"), graph.Path(21, "N", "O")},
		Delete: []int{3},
	}
	after, err := d.ApplyToCopy(u)
	if err != nil {
		t.Fatal(err)
	}
	s.Update(after, u)
	if s.DBSize() != after.Len() {
		t.Fatalf("dbSize = %d, want %d", s.DBSize(), after.Len())
	}
	verifyPostings(t, s, after)
	pathKey := CanonicalKey(graph.Path(0, "C", "O", "C"))
	if got := s.Lookup(pathKey).SupportCount(); got != 3 {
		t.Fatalf("C-O-C support = %d, want 3", got)
	}
}

func TestPropertyMaintainSoundness(t *testing.T) {
	// After arbitrary updates: postings are exact, all maintained trees
	// meet the relaxed threshold, and all reported FCTs meet sup_min.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDB(r, 6, 7)
		s := Mine(d, 0.4, 3)
		// Random update: delete up to 2, insert up to 3.
		var u graph.Update
		ids := d.IDs()
		for i := 0; i < r.Intn(3) && i < len(ids); i++ {
			u.Delete = append(u.Delete, ids[i])
		}
		for i := 0; i < 1+r.Intn(3); i++ {
			g := randomDB(r, 1, 7).Graphs()[0].Clone()
			g.ID = 100 + i
			u.Insert = append(u.Insert, g)
		}
		after, err := d.ApplyToCopy(u)
		if err != nil {
			return false
		}
		s.Update(after, u)
		if s.DBSize() != after.Len() {
			return false
		}
		minRelaxed := s.minCount(s.relaxed(), s.DBSize())
		for _, tr := range s.Trees() {
			if tr.SupportCount() < minRelaxed {
				return false
			}
			for _, g := range after.Graphs() {
				_, inPost := tr.Post[g.ID]
				if tr.Contains(g) != inPost {
					return false
				}
			}
			for id := range tr.Post {
				if !after.Has(id) {
					return false
				}
			}
		}
		minFreq := s.minCount(s.SupMin, s.DBSize())
		for _, f := range s.FrequentClosed() {
			if f.SupportCount() < minFreq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyInsertOnlyMatchesScratchSupports(t *testing.T) {
	// Insert-only maintenance must agree with from-scratch mining on the
	// support of every tree both sets know about, and every tree known
	// to the incremental set must be known to scratch (scratch may know
	// more only when a tree frequent in D⊕Δ was infrequent in both D
	// and Δ separately — impossible at the relaxed threshold? It is
	// possible; so we only check the subset direction).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDB(r, 5, 6)
		s := Mine(d, 0.4, 3)
		var ins []*graph.Graph
		for i := 0; i < 1+r.Intn(3); i++ {
			g := randomDB(r, 1, 6).Graphs()[0].Clone()
			g.ID = 200 + i
			ins = append(ins, g)
		}
		after, err := d.ApplyToCopy(graph.Update{Insert: ins})
		if err != nil {
			return false
		}
		s.Add(after, ins)
		scratch := Mine(after, 0.4, 3)
		for _, tr := range s.Trees() {
			st := scratch.Lookup(tr.Key)
			if st == nil {
				return false
			}
			if st.SupportCount() != tr.SupportCount() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLemma34ClosedSurvivesUnion(t *testing.T) {
	// A tree closed (and frequent) in D stays present after adding ΔD
	// whose graphs all contain it, and support grows accordingly
	// (Proposition 4.1 analogue).
	d := graph.DatabaseOf(
		graph.Path(1, "C", "O", "C"),
		graph.Path(2, "C", "O", "C"),
	)
	s := Mine(d, 0.5, 3)
	ins := []*graph.Graph{graph.Path(5, "C", "O", "C"), graph.Path(6, "C", "O", "C")}
	after, _ := d.ApplyToCopy(graph.Update{Insert: ins})
	s.Add(after, ins)
	key := CanonicalKey(graph.Path(0, "C", "O", "C"))
	tr := s.Lookup(key)
	if tr == nil || tr.SupportCount() != 4 {
		t.Fatalf("closed tree lost or wrong support after add: %v", tr)
	}
	fct := false
	for _, f := range s.FrequentClosed() {
		if f.Key == key {
			fct = true
		}
	}
	if !fct {
		t.Fatal("tree should remain an FCT after union")
	}
}

func TestAddEmptyDelta(t *testing.T) {
	d := fixtureDB()
	s := Mine(d, 0.5, 3)
	before := len(s.Trees())
	s.Add(d, nil)
	if len(s.Trees()) != before || s.DBSize() != d.Len() {
		t.Fatal("empty delta changed state")
	}
}
