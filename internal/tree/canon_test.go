package tree

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"github.com/midas-graph/midas/graph"
)

func TestCentersPath(t *testing.T) {
	// Odd path: single centre.
	p := graph.Path(0, "A", "B", "C")
	if got := Centers(p); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("Centers = %v, want [1]", got)
	}
	// Even path: two centres.
	p4 := graph.Path(0, "A", "B", "C", "D")
	if got := Centers(p4); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("Centers = %v, want [1 2]", got)
	}
}

func TestCentersStar(t *testing.T) {
	s := graph.Star(0, "C", "H", "H", "H")
	if got := Centers(s); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("Centers = %v, want [0]", got)
	}
}

func TestCentersSingleVertex(t *testing.T) {
	g := graph.New(0)
	g.AddVertex("A")
	if got := Centers(g); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("Centers = %v, want [0]", got)
	}
}

func TestCentersPanicsOnNonTree(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Centers on cycle should panic")
		}
	}()
	Centers(graph.Cycle(0, "A", "B", "C"))
}

func TestCanonicalKeyShapes(t *testing.T) {
	path := graph.Path(0, "A", "B", "C", "D")
	star := graph.Star(1, "B", "A", "C", "D")
	if CanonicalKey(path) == CanonicalKey(star) {
		t.Fatal("path and star with same labels must differ")
	}
}

func TestCanonicalKeyLabelSensitive(t *testing.T) {
	a := graph.Path(0, "C", "O", "N")
	b := graph.Path(1, "C", "O", "S")
	if CanonicalKey(a) == CanonicalKey(b) {
		t.Fatal("different labels must give different keys")
	}
}

func TestCanonicalKeyEdgeSymmetric(t *testing.T) {
	a := graph.Path(0, "C", "O")
	b := graph.Path(1, "O", "C")
	if CanonicalKey(a) != CanonicalKey(b) {
		t.Fatal("edge key must be orientation independent")
	}
}

// randomTree builds a random labelled free tree.
func randomTree(r *rand.Rand, maxN int, labels []string) *graph.Graph {
	n := 1 + r.Intn(maxN)
	g := graph.New(0)
	for i := 0; i < n; i++ {
		g.AddVertex(labels[r.Intn(len(labels))])
	}
	for i := 1; i < n; i++ {
		g.AddEdge(i, r.Intn(i))
	}
	g.SortAdjacency()
	return g
}

// permuteTree relabels vertex IDs by a random permutation.
func permuteTree(r *rand.Rand, g *graph.Graph) *graph.Graph {
	perm := r.Perm(g.Order())
	inv := make([]int, g.Order())
	for i, p := range perm {
		inv[p] = i
	}
	h := graph.New(g.ID)
	for i := 0; i < g.Order(); i++ {
		h.AddVertex(g.Label(inv[i]))
	}
	for _, e := range g.Edges() {
		h.AddEdge(perm[e.U], perm[e.V])
	}
	h.SortAdjacency()
	return h
}

func TestPropertyCanonicalKeyInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomTree(r, 10, []string{"C", "O", "N", "H"})
		h := permuteTree(r, g)
		return CanonicalKey(g) == CanonicalKey(h)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCanonicalTokensInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomTree(r, 10, []string{"C", "O", "N"})
		h := permuteTree(r, g)
		return CanonicalString(g) == CanonicalString(h)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalTokensFormat(t *testing.T) {
	// Star C(H,H,O): root C, one sibling family.
	s := graph.Star(0, "C", "H", "O", "H")
	tokens := CanonicalTokens(s)
	if tokens[0] != "C" {
		t.Fatalf("first token = %q, want root label C", tokens[0])
	}
	want := []string{"C", "H", "H", "O", "$"}
	if !reflect.DeepEqual(tokens, want) {
		t.Fatalf("tokens = %v, want %v", tokens, want)
	}
}

func TestCanonicalTokensSeparatesFamilies(t *testing.T) {
	// Path A-B-C rooted at centre B: two children families? No - one
	// family (A and C are siblings under B).
	p := graph.Path(0, "A", "B", "C")
	tokens := CanonicalTokens(p)
	want := []string{"B", "A", "C", "$"}
	if !reflect.DeepEqual(tokens, want) {
		t.Fatalf("tokens = %v, want %v", tokens, want)
	}
	// Deeper tree: B with children A, C; C has child D.
	g := graph.FromEdges(0, []string{"B", "A", "C", "D"},
		[][2]int{{0, 1}, {0, 2}, {2, 3}})
	toks := CanonicalTokens(g)
	if strings.Count(strings.Join(toks, " "), "$") != 2 {
		t.Fatalf("want 2 family separators, got %v", toks)
	}
}

func TestCanonicalSingleVertex(t *testing.T) {
	g := graph.New(0)
	g.AddVertex("C")
	if CanonicalKey(g) != "C" {
		t.Fatalf("key = %q", CanonicalKey(g))
	}
	if got := CanonicalTokens(g); !reflect.DeepEqual(got, []string{"C"}) {
		t.Fatalf("tokens = %v", got)
	}
}
