package tree

import (
	"github.com/midas-graph/midas/graph"
)

// Incremental maintenance of the mined set (paper §4.2). The paper's
// CTMiningAdd/CTMiningDelete procedures integrate trees mined from ΔD at
// the relaxed threshold sup_min/2 and re-derive support and closedness
// via Propositions 4.1–4.4. Our representation keeps exact posting lists
// per tree, which subsumes the support bookkeeping: supports after the
// update are read directly from the lists, and closedness is recomputed
// from equal-support one-edge extensions (see Set.isClosed). Only the
// graphs of ΔD are ever mined from scratch, and only genuinely new trees
// are matched against the rest of the database (restricted by edge-label
// posting intersection), which is what makes maintenance fast compared
// with remining D⊕ΔD.

// Add integrates a batch of inserted graphs (Δ+). dbAfter must be the
// database after the insertion (D⊕Δ+); inserted lists the new graphs.
func (s *Set) Add(dbAfter *graph.Database, inserted []*graph.Graph) {
	if len(inserted) == 0 {
		s.dbSize = dbAfter.Len()
		return
	}
	// 1. Update edge postings with the new graphs.
	for _, g := range inserted {
		s.scanEdges(g)
	}
	// 2. Update postings of existing trees against the new graphs only
	// (Proposition 4.1: supports of surviving trees just shift).
	for _, t := range s.trees {
		if t.Size() == 1 {
			continue // edge trees were updated by scanEdges
		}
		for _, g := range inserted {
			if hasAllEdgeLabels(t.G, g) && t.Contains(g) {
				t.Post[g.ID] = struct{}{}
			}
		}
	}
	// 3. Mine Δ+ at the relaxed threshold and integrate new trees
	// (Corollary 4.3: trees closed in Δ+ are closed in D⊕Δ+; we admit
	// every tree frequent-at-relaxed in Δ+ and let posting lists decide
	// final support and closedness).
	deltaDB := graph.NewDatabase()
	for _, g := range inserted {
		if err := deltaDB.Add(g); err != nil {
			// Caller violated unique-ID contract; skip the duplicate.
			continue
		}
	}
	mini := Mine(deltaDB, s.SupMin, s.MaxEdges)
	byID := make(map[int]*graph.Graph, dbAfter.Len())
	for _, g := range dbAfter.Graphs() {
		byID[g.ID] = g
	}
	for key, mt := range mini.trees {
		if _, known := s.trees[key]; known {
			continue
		}
		if mt.Size() == 1 {
			// Reuse the global edge tree so postings stay shared.
			if et := s.edges[edgeLabelOf(mt.G)]; et != nil {
				s.trees[key] = et
				continue
			}
		}
		nt := &Tree{G: mt.G, Key: key, Post: make(map[int]struct{})}
		// Full posting over D⊕Δ+: candidates from edge-label posting
		// intersection, verified exactly.
		cand, ok := s.edgeLabelPosting(nt.G)
		if !ok {
			continue
		}
		for id := range cand {
			if g := byID[id]; g != nil && nt.Contains(g) {
				nt.Post[id] = struct{}{}
			}
		}
		s.trees[key] = nt
	}
	s.dbSize = dbAfter.Len()
	s.prune()
}

// Remove integrates a batch of deleted graph IDs (Δ-). dbAfterLen is
// |D ⊖ Δ-|. Posting lists shrink exactly (Proposition 4.4's closedness
// re-check happens lazily inside FrequentClosed).
func (s *Set) Remove(dbAfterLen int, removed []int) {
	for _, id := range removed {
		for _, t := range s.trees {
			delete(t.Post, id)
		}
		s.unscanEdges(id)
	}
	s.dbSize = dbAfterLen
	s.prune()
}

// Update applies a full batch update: deletions then insertions, like
// graph.Database.Apply. dbAfter must already reflect the whole update.
func (s *Set) Update(dbAfter *graph.Database, u graph.Update) {
	// Deletions first; the intermediate dbSize is |D| - |Δ-|.
	s.Remove(s.dbSize-len(u.Delete), u.Delete)
	s.Add(dbAfter, u.Insert)
}

// prune drops trees whose support fell below the relaxed threshold,
// bounding memory. Edge posting lists are retained in full: infrequent
// edges feed the IFE-Index.
func (s *Set) prune() {
	minCount := s.minCount(s.relaxed(), s.dbSize)
	for key, t := range s.trees {
		if t.SupportCount() < minCount {
			delete(s.trees, key)
		}
	}
}

// hasAllEdgeLabels is a cheap pre-filter: every edge label of pattern p
// must occur in g.
func hasAllEdgeLabels(p, g *graph.Graph) bool {
	gl := g.EdgeLabels()
	for l := range p.EdgeLabels() {
		if _, ok := gl[l]; !ok {
			return false
		}
	}
	return true
}
