package tree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/midas-graph/midas/graph"
)

// fixtureDB: three graphs sharing a C-O-C path; one lone C-O edge graph.
func fixtureDB() *graph.Database {
	return graph.DatabaseOf(
		graph.Path(1, "C", "O", "C"),
		graph.Path(2, "C", "O", "C"),
		graph.Path(3, "C", "O"),
	)
}

func TestMineEdgeSupports(t *testing.T) {
	s := Mine(fixtureDB(), 0.5, 3)
	co := s.EdgeTree("C.O")
	if co == nil {
		t.Fatal("edge C.O not tracked")
	}
	if co.SupportCount() != 3 {
		t.Fatalf("C.O support = %d, want 3", co.SupportCount())
	}
}

func TestMineFindsPath(t *testing.T) {
	s := Mine(fixtureDB(), 0.5, 3)
	key := CanonicalKey(graph.Path(0, "C", "O", "C"))
	tr := s.Lookup(key)
	if tr == nil {
		t.Fatal("C-O-C not mined")
	}
	if tr.SupportCount() != 2 {
		t.Fatalf("C-O-C support = %d, want 2", tr.SupportCount())
	}
}

func TestFrequentClosed(t *testing.T) {
	s := Mine(fixtureDB(), 0.5, 3)
	fcts := s.FrequentClosed()
	keys := map[string]int{}
	for _, f := range fcts {
		keys[f.Key] = f.SupportCount()
	}
	edgeKey := CanonicalKey(graph.Path(0, "C", "O"))
	pathKey := CanonicalKey(graph.Path(0, "C", "O", "C"))
	// Edge C.O (3/3) is closed: its supertree C-O-C has support 2 != 3.
	if keys[edgeKey] != 3 {
		t.Fatalf("edge C.O should be closed with support 3; fcts=%v", keys)
	}
	// Path C-O-C (2/3) is closed within the bound.
	if keys[pathKey] != 2 {
		t.Fatalf("path C-O-C should be closed with support 2; fcts=%v", keys)
	}
}

func TestNotClosedWhenSupertreeEqualSupport(t *testing.T) {
	// Every graph containing C.O also contains C-O-C: edge not closed.
	d := graph.DatabaseOf(
		graph.Path(1, "C", "O", "C"),
		graph.Path(2, "C", "O", "C"),
	)
	s := Mine(d, 0.5, 3)
	edgeKey := CanonicalKey(graph.Path(0, "C", "O"))
	for _, f := range s.FrequentClosed() {
		if f.Key == edgeKey {
			t.Fatal("edge C.O should not be closed (supertree has equal support)")
		}
	}
	pathKey := CanonicalKey(graph.Path(0, "C", "O", "C"))
	found := false
	for _, f := range s.FrequentClosed() {
		if f.Key == pathKey {
			found = true
		}
	}
	if !found {
		t.Fatal("path C-O-C should be a FCT")
	}
}

func TestInfrequentEdges(t *testing.T) {
	d := graph.DatabaseOf(
		graph.Path(1, "C", "O"),
		graph.Path(2, "C", "O"),
		graph.Path(3, "C", "O"),
		graph.Path(4, "C", "N"), // support 1/4 < 0.5
	)
	s := Mine(d, 0.5, 3)
	inf := s.InfrequentEdges()
	if len(inf) != 1 || edgeLabelOf(inf[0].G) != "C.N" {
		t.Fatalf("infrequent edges = %v", inf)
	}
	freq := s.FrequentEdges()
	if len(freq) != 1 || edgeLabelOf(freq[0].G) != "C.O" {
		t.Fatalf("frequent edges = %v", freq)
	}
}

func TestMineMaxEdgesBound(t *testing.T) {
	d := graph.DatabaseOf(
		graph.Path(1, "C", "C", "C", "C", "C"),
		graph.Path(2, "C", "C", "C", "C", "C"),
	)
	s := Mine(d, 0.5, 2)
	for _, tr := range s.Trees() {
		if tr.Size() > 2 {
			t.Fatalf("tree of size %d exceeds bound 2", tr.Size())
		}
	}
}

func TestMineEmptyDB(t *testing.T) {
	s := Mine(graph.NewDatabase(), 0.5, 3)
	if len(s.Trees()) != 0 || len(s.FrequentClosed()) != 0 {
		t.Fatal("empty DB should mine nothing")
	}
}

func TestFeatureVectors(t *testing.T) {
	d := fixtureDB()
	s := Mine(d, 0.5, 3)
	keys := s.FeatureKeys()
	if len(keys) == 0 {
		t.Fatal("no feature keys")
	}
	v1 := s.FeatureVector(keys, 1)
	v3 := s.FeatureVector(keys, 3)
	// Graph 1 (C-O-C) contains everything graph 3 (C-O) does and more.
	ge := false
	for i := range keys {
		if v1[i] < v3[i] {
			t.Fatalf("v1 should dominate v3: %v vs %v", v1, v3)
		}
		if v1[i] > v3[i] {
			ge = true
		}
	}
	if !ge {
		t.Fatal("v1 should strictly dominate v3")
	}
	// FeatureVectorOf on an out-of-database graph matches posting-based
	// vectors for an identical structure.
	ext := graph.Path(99, "C", "O", "C")
	vx := s.FeatureVectorOf(keys, ext)
	for i := range keys {
		if vx[i] != v1[i] {
			t.Fatalf("FeatureVectorOf mismatch: %v vs %v", vx, v1)
		}
	}
}

// verifyPostings checks every maintained tree's posting list against
// direct containment tests — the core soundness invariant.
func verifyPostings(t *testing.T, s *Set, d *graph.Database) {
	t.Helper()
	for _, tr := range s.Trees() {
		for _, g := range d.Graphs() {
			_, inPost := tr.Post[g.ID]
			if got := tr.Contains(g); got != inPost {
				t.Fatalf("posting mismatch for %s in graph %d: posting=%v contains=%v",
					tr.Key, g.ID, inPost, got)
			}
		}
		for id := range tr.Post {
			if !d.Has(id) {
				t.Fatalf("posting of %s references missing graph %d", tr.Key, id)
			}
		}
	}
}

func TestMinePostingsExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDB(r, 6, 8)
		s := Mine(d, 0.4, 3)
		for _, tr := range s.Trees() {
			for _, g := range d.Graphs() {
				_, inPost := tr.Post[g.ID]
				if tr.Contains(g) != inPost {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// randomDB builds a database of random connected labelled graphs.
func randomDB(r *rand.Rand, n, maxV int) *graph.Database {
	labels := []string{"C", "O", "N"}
	d := graph.NewDatabase()
	for i := 0; i < n; i++ {
		nv := 2 + r.Intn(maxV-1)
		g := graph.New(i)
		for v := 0; v < nv; v++ {
			g.AddVertex(labels[r.Intn(len(labels))])
		}
		for v := 1; v < nv; v++ {
			g.AddEdge(v, r.Intn(v))
		}
		for k := 0; k < nv/3; k++ {
			g.AddEdge(r.Intn(nv), r.Intn(nv))
		}
		g.SortAdjacency()
		if err := d.Add(g); err != nil {
			panic(err)
		}
	}
	return d
}

func TestMineTreesAreTrees(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	d := randomDB(r, 8, 8)
	s := Mine(d, 0.3, 4)
	for _, tr := range s.Trees() {
		if !tr.G.IsTree() {
			t.Fatalf("mined pattern %s is not a tree", tr.Key)
		}
		if tr.Key != CanonicalKey(tr.G) {
			t.Fatalf("stale canonical key for %s", tr.Key)
		}
	}
}

func TestSupportFraction(t *testing.T) {
	tr := newTree(graph.Path(0, "C", "O"))
	tr.Post[1] = struct{}{}
	tr.Post[2] = struct{}{}
	if tr.Support(4) != 0.5 {
		t.Fatalf("Support = %v, want 0.5", tr.Support(4))
	}
	if tr.Support(0) != 0 {
		t.Fatal("Support with empty DB should be 0")
	}
}
