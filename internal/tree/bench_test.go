package tree

import (
	"math/rand"
	"testing"

	"github.com/midas-graph/midas/graph"
)

func BenchmarkMine(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	d := randomDB(r, 60, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Mine(d, 0.4, 3)
	}
}

func BenchmarkMaintainAdd(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := randomDB(r, 60, 12)
		s := Mine(d, 0.4, 3)
		var ins []*graph.Graph
		for j := 0; j < 10; j++ {
			g := randomDB(r, 1, 12).Graphs()[0].Clone()
			g.ID = 1000 + j
			ins = append(ins, g)
		}
		after, err := d.ApplyToCopy(graph.Update{Insert: ins})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		s.Add(after, ins)
	}
}

func BenchmarkCanonicalKey(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	trees := make([]*graph.Graph, 32)
	for i := range trees {
		trees[i] = randomTree(r, 10, []string{"C", "O", "N"})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CanonicalKey(trees[i%len(trees)])
	}
}
