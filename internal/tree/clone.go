package tree

// Clone returns a deep copy of the set suitable for transactional
// rollback: posting lists are copied so mutations of the original no
// longer reach the clone. Tree graphs are shared (they are never
// structurally mutated after mining). The identity aliasing between
// the trees and edges maps — single-edge trees appear in both so their
// postings stay shared (see Add) — is preserved in the clone.
func (s *Set) Clone() *Set {
	remap := make(map[*Tree]*Tree, len(s.trees)+len(s.edges))
	cloneTree := func(t *Tree) *Tree {
		if t == nil {
			return nil
		}
		if c, ok := remap[t]; ok {
			return c
		}
		post := make(map[int]struct{}, len(t.Post))
		for id := range t.Post {
			post[id] = struct{}{}
		}
		c := &Tree{G: t.G, Key: t.Key, Post: post}
		remap[t] = c
		return c
	}
	out := &Set{
		SupMin:   s.SupMin,
		MaxEdges: s.MaxEdges,
		trees:    make(map[string]*Tree, len(s.trees)),
		edges:    make(map[string]*Tree, len(s.edges)),
		dbSize:   s.dbSize,
	}
	for k, t := range s.trees {
		out.trees[k] = cloneTree(t)
	}
	for k, t := range s.edges {
		out.edges[k] = cloneTree(t)
	}
	return out
}
