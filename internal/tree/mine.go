package tree

import (
	"github.com/midas-graph/midas/graph"
)

// Mine runs the TreeNat-style bottom-up miner over database d: starting
// from frequent edges, trees are grown one leaf at a time, deduplicated
// by canonical key, and kept when their support reaches the working
// threshold. The returned Set maintains every tree frequent at
// sup_min/2 (the relaxation of Lemma 4.5) so that subsequent incremental
// maintenance cannot miss trees that become frequent; the FCTs at
// sup_min are exposed by Set.FrequentClosed.
//
// maxEdges bounds the pattern size; the paper's FCTs are small, and the
// closure property is judged within this bound.
func Mine(d *graph.Database, supMin float64, maxEdges int) *Set {
	if maxEdges < 1 {
		maxEdges = 1
	}
	s := &Set{
		SupMin:   supMin,
		MaxEdges: maxEdges,
		trees:    make(map[string]*Tree),
		edges:    make(map[string]*Tree),
		dbSize:   d.Len(),
	}
	// Edge scan: posting lists for every edge label, frequent or not.
	for _, g := range d.Graphs() {
		s.scanEdges(g)
	}
	s.growFrom(d.Graphs())
	return s
}

// scanEdges records g's distinct edge labels in the edge posting lists,
// creating single-edge trees as needed.
func (s *Set) scanEdges(g *graph.Graph) {
	for label := range g.EdgeLabels() {
		et := s.edges[label]
		if et == nil {
			et = newTree(edgeGraph(label))
			s.edges[label] = et
		}
		et.Post[g.ID] = struct{}{}
	}
}

// unscanEdges removes graph id from every edge posting list.
func (s *Set) unscanEdges(id int) {
	for _, et := range s.edges {
		delete(et.Post, id)
	}
}

// edgeGraph builds the 2-vertex tree for an edge label "a.b".
func edgeGraph(label string) *graph.Graph {
	a, b := splitEdgeLabel(label)
	g := graph.New(-1)
	u := g.AddVertex(a)
	v := g.AddVertex(b)
	g.AddEdge(u, v)
	return g
}

// splitEdgeLabel splits "a.b" into its two vertex labels. Vertex labels
// themselves never contain '.', which the dataset generator and parsers
// guarantee.
func splitEdgeLabel(label string) (string, string) {
	for i := 0; i < len(label); i++ {
		if label[i] == '.' {
			return label[:i], label[i+1:]
		}
	}
	return label, ""
}

// growFrom (re)derives s.trees from the edge postings by levelwise
// growth over the given graphs, at the relaxed threshold.
func (s *Set) growFrom(graphs []*graph.Graph) {
	byID := make(map[int]*graph.Graph, len(graphs))
	for _, g := range graphs {
		byID[g.ID] = g
	}
	minCount := s.minCount(s.relaxed(), s.dbSize)

	// Level 1: frequent-at-relaxed edges participate as trees.
	var frontier []*Tree
	for _, et := range s.sortedEdges() {
		if et.SupportCount() >= minCount {
			if _, dup := s.trees[et.Key]; !dup {
				s.trees[et.Key] = et
			}
			frontier = append(frontier, et)
		}
	}
	freqLabels := s.relaxedFrequentEdgeLabels(minCount)

	for level := 1; level < s.MaxEdges && len(frontier) > 0; level++ {
		var next []*Tree
		for _, t := range frontier {
			for _, ext := range extensions(t.G, freqLabels) {
				key := CanonicalKey(ext)
				if _, dup := s.trees[key]; dup {
					continue
				}
				nt := &Tree{G: ext, Key: key, Post: make(map[int]struct{})}
				s.fillPosting(nt, t.Post, byID)
				if nt.SupportCount() >= minCount {
					s.trees[key] = nt
					next = append(next, nt)
				}
			}
		}
		frontier = next
	}
}

// relaxedFrequentEdgeLabels returns the edge labels usable for growth.
func (s *Set) relaxedFrequentEdgeLabels(minCount int) []string {
	var out []string
	for _, et := range s.sortedEdges() {
		if et.SupportCount() >= minCount {
			out = append(out, edgeLabelOf(et.G))
		}
	}
	return out
}

func edgeLabelOf(g *graph.Graph) string {
	e := g.Edges()[0]
	return g.EdgeLabel(e.U, e.V)
}

// extensions returns every tree obtained by attaching one new leaf to g
// via a frequent edge label.
func extensions(g *graph.Graph, freqLabels []string) []*graph.Graph {
	var out []*graph.Graph
	for v := 0; v < g.Order(); v++ {
		vl := g.Label(v)
		for _, el := range freqLabels {
			a, b := splitEdgeLabel(el)
			var leaves []string
			if vl == a {
				leaves = append(leaves, b)
			}
			if vl == b && a != b {
				leaves = append(leaves, a)
			}
			for _, leaf := range leaves {
				ext := g.Clone()
				ext.ID = -1
				w := ext.AddVertex(leaf)
				ext.AddEdge(v, w)
				ext.SortAdjacency()
				out = append(out, ext)
			}
		}
	}
	return out
}

// fillPosting computes nt's posting list: candidates are the parent's
// posting intersected with the posting of every edge label of nt, then
// verified by subgraph isomorphism.
func (s *Set) fillPosting(nt *Tree, parentPost map[int]struct{}, byID map[int]*graph.Graph) {
	cand, ok := s.edgeLabelPosting(nt.G)
	if !ok {
		return
	}
	for id := range parentPost {
		if _, in := cand[id]; !in {
			continue
		}
		g := byID[id]
		if g != nil && nt.Contains(g) {
			nt.Post[id] = struct{}{}
		}
	}
}
