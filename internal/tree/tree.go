package tree

import (
	"sort"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/iso"
)

// matchBudget caps the VF2 search for each tree-in-graph containment
// test. Trees are tiny (a handful of edges) so real searches finish far
// below this; the cap only guards pathological inputs.
const matchBudget = 200000

// Tree is a mined tree pattern with its posting list: the set of data
// graph IDs containing it. Support is |posting| / |D|.
type Tree struct {
	G    *graph.Graph
	Key  string
	Post map[int]struct{}
}

func newTree(g *graph.Graph) *Tree {
	return &Tree{G: g, Key: CanonicalKey(g), Post: make(map[int]struct{})}
}

// SupportCount returns the number of data graphs containing the tree.
func (t *Tree) SupportCount() int { return len(t.Post) }

// Support returns the support fraction relative to a database of size n.
func (t *Tree) Support(n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(len(t.Post)) / float64(n)
}

// Contains reports whether data graph g contains the tree pattern.
func (t *Tree) Contains(g *graph.Graph) bool {
	return iso.HasSubgraph(t.G, g, iso.Options{MaxSteps: matchBudget})
}

// PostIDs returns the sorted posting list.
func (t *Tree) PostIDs() []int {
	ids := make([]int, 0, len(t.Post))
	for id := range t.Post {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Size returns the number of edges of the tree.
func (t *Tree) Size() int { return t.G.Size() }

// Set is the maintained collection of mined trees. Internally it keeps
// every tree frequent at the relaxed threshold sup_min/2 (Lemma 4.5:
// halving sup_min prevents missing trees that become frequent after a
// modification), plus posting lists for every edge label ever seen
// (frequent and infrequent edges feed the FCT-Index and IFE-Index).
type Set struct {
	SupMin   float64
	MaxEdges int

	trees  map[string]*Tree // canonical key -> tree, at relaxed threshold
	edges  map[string]*Tree // edge label -> single-edge tree with full posting
	dbSize int
}

// relaxed returns the working threshold sup_min/2.
func (s *Set) relaxed() float64 { return s.SupMin / 2 }

// DBSize returns the current |D| the set is maintained against.
func (s *Set) DBSize() int { return s.dbSize }

// Trees returns all maintained trees (threshold sup_min/2) sorted by
// canonical key.
func (s *Set) Trees() []*Tree {
	out := make([]*Tree, 0, len(s.trees))
	for _, t := range s.trees {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Lookup returns the maintained tree with the given canonical key, or
// nil.
func (s *Set) Lookup(key string) *Tree { return s.trees[key] }

// FrequentClosed returns the FCTs: trees with support >= sup_min such
// that no maintained proper supertree has the same support (§3.3).
// Closedness is judged within the mined size bound MaxEdges.
func (s *Set) FrequentClosed() []*Tree {
	minCount := s.minCount(s.SupMin, s.dbSize)
	var out []*Tree
	for _, t := range s.Trees() {
		if t.SupportCount() < minCount {
			continue
		}
		if s.isClosed(t) {
			out = append(out, t)
		}
	}
	return out
}

// isClosed reports whether no maintained proper supertree of t has equal
// support. It suffices to inspect trees with exactly one more edge: along
// any chain of one-edge extensions support is non-increasing, so an equal
// -support supertree implies an equal-support immediate extension.
func (s *Set) isClosed(t *Tree) bool {
	for _, u := range s.trees {
		if u.Size() != t.Size()+1 || u.SupportCount() != t.SupportCount() {
			continue
		}
		if iso.HasSubgraph(t.G, u.G, iso.Options{MaxSteps: matchBudget}) {
			return false
		}
	}
	return true
}

// minCount converts a fractional threshold to a minimum posting size.
func (s *Set) minCount(frac float64, n int) int {
	c := int(frac * float64(n))
	if frac*float64(n) > float64(c) {
		c++
	}
	if c < 1 {
		c = 1
	}
	return c
}

// FrequentAll returns every tree with support >= sup_min, closed or
// not — the frequent-subtree (FS) feature set of the original CATAPULT,
// kept for the CATAPULT baseline (§2.3).
func (s *Set) FrequentAll() []*Tree {
	minCount := s.minCount(s.SupMin, s.dbSize)
	var out []*Tree
	for _, t := range s.Trees() {
		if t.SupportCount() >= minCount {
			out = append(out, t)
		}
	}
	return out
}

// FeatureKeysAll returns canonical keys of all frequent trees (the FS
// feature dimensions of the CATAPULT baseline).
func (s *Set) FeatureKeysAll() []string {
	all := s.FrequentAll()
	keys := make([]string, len(all))
	for i, t := range all {
		keys[i] = t.Key
	}
	return keys
}

// FrequentEdges returns single-edge trees with support >= sup_min,
// sorted by label.
func (s *Set) FrequentEdges() []*Tree {
	minCount := s.minCount(s.SupMin, s.dbSize)
	var out []*Tree
	for _, t := range s.sortedEdges() {
		if t.SupportCount() >= minCount {
			out = append(out, t)
		}
	}
	return out
}

// InfrequentEdges returns single-edge trees with 0 < support < sup_min,
// sorted by label. These feed the IFE-Index.
func (s *Set) InfrequentEdges() []*Tree {
	minCount := s.minCount(s.SupMin, s.dbSize)
	var out []*Tree
	for _, t := range s.sortedEdges() {
		if n := t.SupportCount(); n > 0 && n < minCount {
			out = append(out, t)
		}
	}
	return out
}

// EdgeTree returns the single-edge tree for an edge label ("a.b"), or
// nil if the label never occurred.
func (s *Set) EdgeTree(label string) *Tree { return s.edges[label] }

func (s *Set) sortedEdges() []*Tree {
	keys := make([]string, 0, len(s.edges))
	for k := range s.edges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Tree, 0, len(keys))
	for _, k := range keys {
		out = append(out, s.edges[k])
	}
	return out
}

// FeatureKeys returns the canonical keys of the current FCTs, the
// feature-vector dimensions used for clustering.
func (s *Set) FeatureKeys() []string {
	fcts := s.FrequentClosed()
	keys := make([]string, len(fcts))
	for i, t := range fcts {
		keys[i] = t.Key
	}
	return keys
}

// FeatureVector returns the binary FCT feature vector of data graph id
// using posting lists (no isomorphism tests), aligned with keys.
func (s *Set) FeatureVector(keys []string, id int) []float64 {
	v := make([]float64, len(keys))
	for i, k := range keys {
		if t := s.trees[k]; t != nil {
			if _, ok := t.Post[id]; ok {
				v[i] = 1
			}
		}
	}
	return v
}

// FeatureVectorOf computes the feature vector of an arbitrary graph not
// necessarily in the database, via containment tests.
func (s *Set) FeatureVectorOf(keys []string, g *graph.Graph) []float64 {
	v := make([]float64, len(keys))
	for i, k := range keys {
		if t := s.trees[k]; t != nil && t.Contains(g) {
			v[i] = 1
		}
	}
	return v
}

// edgeLabelPosting returns data-graph candidates containing every edge
// label of pattern p, by intersecting edge posting lists. It returns nil
// when some label never occurs (support is empty). The boolean reports
// whether the intersection is meaningful (p has at least one edge).
func (s *Set) edgeLabelPosting(p *graph.Graph) (map[int]struct{}, bool) {
	labels := p.EdgeLabels()
	if len(labels) == 0 {
		return nil, false
	}
	var acc map[int]struct{}
	for l := range labels {
		et := s.edges[l]
		if et == nil {
			return map[int]struct{}{}, true
		}
		if acc == nil {
			acc = make(map[int]struct{}, len(et.Post))
			for id := range et.Post {
				acc[id] = struct{}{}
			}
			continue
		}
		for id := range acc {
			if _, ok := et.Post[id]; !ok {
				delete(acc, id)
			}
		}
	}
	return acc, true
}
