package tree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/iso"
)

func TestFrequentAllSupersetOfClosed(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	d := randomDB(r, 8, 8)
	s := Mine(d, 0.3, 3)
	closed := map[string]struct{}{}
	for _, f := range s.FrequentClosed() {
		closed[f.Key] = struct{}{}
	}
	all := map[string]struct{}{}
	for _, f := range s.FrequentAll() {
		all[f.Key] = struct{}{}
	}
	for k := range closed {
		if _, ok := all[k]; !ok {
			t.Fatalf("closed tree %s not in FrequentAll", k)
		}
	}
	if len(all) < len(closed) {
		t.Fatal("FrequentAll smaller than FrequentClosed")
	}
}

func TestFeatureKeysAllMatchesFrequentAll(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	d := randomDB(r, 6, 7)
	s := Mine(d, 0.3, 3)
	keys := s.FeatureKeysAll()
	if len(keys) != len(s.FrequentAll()) {
		t.Fatalf("keys = %d, trees = %d", len(keys), len(s.FrequentAll()))
	}
}

func TestPropertyCanonicalKeyFaithful(t *testing.T) {
	// Soundness of the canonical form in BOTH directions: equal keys
	// imply isomorphic trees, and isomorphic (permuted) trees have equal
	// keys (the latter is covered in canon_test; here we check the
	// former on independent random trees).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomTree(r, 8, []string{"C", "O"})
		b := randomTree(r, 8, []string{"C", "O"})
		eq := CanonicalKey(a) == CanonicalKey(b)
		isoEq := iso.Isomorphic(a, b)
		return eq == isoEq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeLabelPosting(t *testing.T) {
	d := graph.DatabaseOf(
		graph.Path(1, "C", "O", "N"),
		graph.Path(2, "C", "O"),
		graph.Path(3, "C", "N"),
	)
	s := Mine(d, 0.3, 3)
	// Pattern C-O-N requires both C.O and N.O labels: only graph 1.
	p := graph.Path(0, "C", "O", "N")
	cand, ok := s.edgeLabelPosting(p)
	if !ok {
		t.Fatal("posting lookup failed")
	}
	if len(cand) != 1 {
		t.Fatalf("candidates = %v, want just graph 1", cand)
	}
	if _, has := cand[1]; !has {
		t.Fatal("graph 1 missing")
	}
	// A pattern with an unseen label has an empty posting.
	px := graph.Path(0, "X", "Y")
	cand2, ok2 := s.edgeLabelPosting(px)
	if !ok2 || len(cand2) != 0 {
		t.Fatalf("unseen label posting = %v, %v", cand2, ok2)
	}
	// A pattern without edges is not meaningful.
	if _, ok3 := s.edgeLabelPosting(graph.New(0)); ok3 {
		t.Fatal("edgeless pattern should report not-ok")
	}
}

func TestLookupMissing(t *testing.T) {
	s := Mine(graph.NewDatabase(), 0.5, 3)
	if s.Lookup("nope") != nil {
		t.Fatal("Lookup on empty set should be nil")
	}
}

func TestSplitEdgeLabel(t *testing.T) {
	a, b := splitEdgeLabel("C.O")
	if a != "C" || b != "O" {
		t.Fatalf("split = %q,%q", a, b)
	}
	a, b = splitEdgeLabel("Cl.N")
	if a != "Cl" || b != "N" {
		t.Fatalf("split = %q,%q", a, b)
	}
}

func TestMinCountBoundaries(t *testing.T) {
	s := &Set{SupMin: 0.5}
	if got := s.minCount(0.5, 4); got != 2 {
		t.Fatalf("minCount(0.5,4) = %d, want 2", got)
	}
	if got := s.minCount(0.5, 5); got != 3 {
		t.Fatalf("minCount(0.5,5) = %d, want 3 (ceil)", got)
	}
	if got := s.minCount(0.5, 0); got != 1 {
		t.Fatalf("minCount(0.5,0) = %d, want at least 1", got)
	}
}
