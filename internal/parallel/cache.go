package parallel

import "sync"

// Cache is a bounded, concurrency-safe memoization table for
// deterministic computations. Keys must identify the computation's
// concrete inputs exactly (see GraphKey/PairKey): a hit then returns
// precisely the value a fresh computation would produce, which makes
// cache fills — in any order, from any goroutine, with any eviction —
// result-neutral. That property is what lets the sequential and
// parallel maintenance paths share a cache and still emit byte-identical
// state bundles.
//
// Values may contain slices or maps; they are returned by reference, so
// callers must treat hits as immutable.
//
// When the table reaches its capacity the whole generation is dropped
// (an O(1)-amortised reset) rather than evicting piecemeal; eviction
// policy affects only hit rate, never values, so the simplest bounded
// policy wins.
type Cache[V any] struct {
	name string
	cap  int

	mu sync.Mutex
	m  map[string]V
}

// NewCache returns a cache holding at most capacity entries (values
// below 1 select a default of 1<<15). The name labels telemetry.
func NewCache[V any](name string, capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1 << 15
	}
	return &Cache[V]{name: name, cap: capacity, m: make(map[string]V)}
}

// Get returns the cached value for key, recording a hit or miss.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	v, ok := c.m[key]
	c.mu.Unlock()
	if ok {
		cacheStats.hits.Add(1)
	} else {
		cacheStats.misses.Add(1)
	}
	return v, ok
}

// Put stores key -> v. At capacity the current generation is dropped
// first, so the table never exceeds cap entries.
func (c *Cache[V]) Put(key string, v V) {
	c.mu.Lock()
	if _, exists := c.m[key]; !exists && len(c.m) >= c.cap {
		cacheStats.evictions.Add(uint64(len(c.m)))
		cacheStats.entries.Add(-int64(len(c.m)))
		c.m = make(map[string]V)
	}
	if _, exists := c.m[key]; !exists {
		cacheStats.entries.Add(1)
	}
	c.m[key] = v
	c.mu.Unlock()
}

// Len returns the current number of entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Reset drops every entry. Benchmarks use it to compare cold-cache
// configurations fairly.
func (c *Cache[V]) Reset() {
	c.mu.Lock()
	cacheStats.entries.Add(-int64(len(c.m)))
	c.m = make(map[string]V)
	c.mu.Unlock()
}
