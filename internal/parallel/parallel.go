// Package parallel provides the deterministic fan-out primitives used
// by the maintenance and serving hot paths: a bounded worker pool whose
// results are always reduced in submission order, and a bounded
// concurrency-safe memoization cache for pairwise kernel results.
//
// The package enforces one invariant end to end: running a computation
// through Do/Map at any worker count produces exactly the results of
// the plain sequential loop. Tasks are index-addressed — each writes
// only its own slot — so the caller's reduction happens sequentially
// over slots in submission order (ordered fan-in), never in completion
// order. No map iteration, no channel arrival order, no tie-breaking by
// scheduler whim.
//
// Cancellation uses the repo-wide `func() bool` hook convention (core
// installs ctx.Err() != nil). The hook must be monotonic: once it
// reports true it must keep reporting true. Do polls it before every
// dispatch; a fired hook skips the remaining tasks, which is safe
// because every cancelled maintenance call rolls back wholesale.
//
// Do never returns before every started task has finished, even when
// cancelled or panicking — callers may mutate shared state immediately
// after it returns without racing in-flight workers (the rollback path
// of core.MaintainContext depends on this).
package parallel

import (
	"context"
	"sync"
	"sync/atomic"
)

// Do runs n index-addressed tasks, run(0) .. run(n-1), over at most
// `workers` goroutines. workers <= 1 degenerates to the plain
// sequential loop on the calling goroutine (no pool, no overhead), so
// callers use one code path for both modes.
//
// Tasks must be independent and write results only to caller-owned,
// index-addressed slots. Do returns after every started task has
// finished. If tasks panic, the panic with the lowest task index is
// re-raised on the calling goroutine after the join (a deterministic
// choice), with the others discarded.
func Do(workers, n int, cancel func() bool, run func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if cancel != nil && cancel() {
				return
			}
			run(i)
		}
		return
	}

	poolStats.batches.Add(1)
	poolStats.tasks.Add(uint64(n))
	poolStats.queued.Add(int64(n))

	var (
		next  atomic.Int64 // next undispatched index
		wg    sync.WaitGroup
		panMu sync.Mutex
		pans  []taskPanic
	)
	worker := func() {
		defer wg.Done()
		poolStats.active.Add(1)
		defer poolStats.active.Add(-1)
		for {
			i := int(next.Add(1) - 1)
			if i >= n {
				return
			}
			poolStats.queued.Add(-1)
			if cancel != nil && cancel() {
				poolStats.skipped.Add(1)
				continue // drain remaining indices without running them
			}
			runOne(i, run, &panMu, &pans)
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()

	if len(pans) > 0 {
		poolStats.panics.Add(uint64(len(pans)))
		first := pans[0]
		for _, p := range pans[1:] {
			if p.index < first.index {
				first = p
			}
		}
		panic(first.value)
	}
}

// taskPanic records a captured task panic for deterministic re-raise.
type taskPanic struct {
	index int
	value interface{}
}

// runOne executes one task, capturing a panic instead of unwinding the
// worker goroutine (which would strand the join).
func runOne(i int, run func(int), panMu *sync.Mutex, pans *[]taskPanic) {
	defer func() {
		if v := recover(); v != nil {
			panMu.Lock()
			*pans = append(*pans, taskPanic{index: i, value: v})
			panMu.Unlock()
		}
	}()
	run(i)
}

// Map computes out[i] = fn(i) for i in [0,n) over the pool and returns
// the slice in submission order. Indices skipped by a fired cancel hook
// keep their zero value; cancelled maintenance rolls back, so partial
// results never reach durable state.
func Map[T any](workers, n int, cancel func() bool, fn func(i int) T) []T {
	out := make([]T, n)
	Do(workers, n, cancel, func(i int) { out[i] = fn(i) })
	return out
}

// DoContext is Do with a context instead of a hook: ctx cancellation
// (which is monotonic by construction) skips undispatched tasks.
func DoContext(ctx context.Context, workers, n int, run func(i int)) {
	var cancel func() bool
	if ctx != nil && ctx.Done() != nil {
		cancel = func() bool { return ctx.Err() != nil }
	}
	Do(workers, n, cancel, run)
}
