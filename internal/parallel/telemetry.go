package parallel

import (
	"sync/atomic"

	"github.com/midas-graph/midas/internal/telemetry"
)

// Process-wide pool and cache counters, following the iso/ged kernel
// convention: accumulate with atomics, expose snapshots for per-batch
// diffing, and register lazily on whatever registry the binary uses.
// The speedup-relevant signals are tasks vs batches (fan-out width),
// active/queued gauges (pool saturation) and cache hits vs misses
// (memoised kernel work avoided).
var poolStats struct {
	batches atomic.Uint64 // Do invocations that actually pooled (workers > 1)
	tasks   atomic.Uint64 // tasks submitted to pooled batches
	skipped atomic.Uint64 // tasks skipped by a fired cancel hook
	panics  atomic.Uint64 // task panics captured and re-raised
	active  atomic.Int64  // workers currently running (gauge)
	queued  atomic.Int64  // submitted tasks not yet dispatched (gauge)
}

var cacheStats struct {
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64 // entries dropped by generation resets
	entries   atomic.Int64  // live entries across all caches (gauge)
}

// Stats is a snapshot of the package counters.
type Stats struct {
	// Batches counts pooled Do invocations; Tasks the tasks they ran;
	// Skipped the tasks a fired cancel hook suppressed; Panics the task
	// panics captured.
	Batches, Tasks, Skipped, Panics uint64
	// CacheHits/CacheMisses/CacheEvictions aggregate over every Cache.
	CacheHits, CacheMisses, CacheEvictions uint64
	// CacheEntries is the current live entry count across caches.
	CacheEntries int64
}

// Snapshot returns the current counters.
func Snapshot() Stats {
	return Stats{
		Batches:        poolStats.batches.Load(),
		Tasks:          poolStats.tasks.Load(),
		Skipped:        poolStats.skipped.Load(),
		Panics:         poolStats.panics.Load(),
		CacheHits:      cacheStats.hits.Load(),
		CacheMisses:    cacheStats.misses.Load(),
		CacheEvictions: cacheStats.evictions.Load(),
		CacheEntries:   cacheStats.entries.Load(),
	}
}

// RegisterMetrics exposes the pool and cache counters on reg in
// Prometheus form. Registration is idempotent; a Nop registry is a
// no-op.
func RegisterMetrics(reg *telemetry.Registry) {
	reg.NewCounterFunc("midas_parallel_batches_total",
		"Pooled fan-out batches executed (Do with workers > 1).",
		func() float64 { return float64(poolStats.batches.Load()) })
	reg.NewCounterFunc("midas_parallel_tasks_total",
		"Tasks submitted to pooled fan-out batches.",
		func() float64 { return float64(poolStats.tasks.Load()) })
	reg.NewCounterFunc("midas_parallel_tasks_skipped_total",
		"Fan-out tasks skipped because the cancellation hook fired.",
		func() float64 { return float64(poolStats.skipped.Load()) })
	reg.NewCounterFunc("midas_parallel_task_panics_total",
		"Task panics captured by the pool and re-raised after the join.",
		func() float64 { return float64(poolStats.panics.Load()) })
	reg.NewGaugeFunc("midas_parallel_workers_active",
		"Pool workers currently executing tasks.",
		func() float64 { return float64(poolStats.active.Load()) })
	reg.NewGaugeFunc("midas_parallel_queue_depth",
		"Submitted fan-out tasks not yet dispatched to a worker.",
		func() float64 { return float64(poolStats.queued.Load()) })
	reg.NewCounterFunc("midas_parallel_cache_hits_total",
		"Kernel memo-cache hits (pairwise MCCS/GED/embedding results reused).",
		func() float64 { return float64(cacheStats.hits.Load()) })
	reg.NewCounterFunc("midas_parallel_cache_misses_total",
		"Kernel memo-cache misses.",
		func() float64 { return float64(cacheStats.misses.Load()) })
	reg.NewCounterFunc("midas_parallel_cache_evictions_total",
		"Memo-cache entries dropped by capacity generation resets.",
		func() float64 { return float64(cacheStats.evictions.Load()) })
	reg.NewGaugeFunc("midas_parallel_cache_entries",
		"Live memo-cache entries across all kernel caches.",
		func() float64 { return float64(cacheStats.entries.Load()) })
}
