package parallel

import (
	"strconv"
	"strings"

	"github.com/midas-graph/midas/graph"
)

// GraphKey serialises every kernel-visible part of a graph instance:
// vertex labels in index order, the edge list in stored order, and the
// adjacency lists in stored order. Two graphs with equal keys are
// indistinguishable to the matching kernels (VF2, MCCS, GED), which
// traverse labels, edges and adjacency exactly as stored — so a value
// computed for one is exactly the value for the other, even when a step
// budget truncated the search.
//
// The graph ID is deliberately excluded: kernels never read it, and
// excluding it is what lets rebuilt engines (same data, fresh IDs for
// patterns) share cached kernel results across maintenance batches.
//
// Deliberately NOT isomorphism-invariant: a budget-capped kernel result
// depends on the concrete vertex numbering, so keying by a canonical
// form (e.g. graph.Signature) could serve a value the sequential path
// would not have computed, breaking byte-identity between the modes.
func GraphKey(g *graph.Graph) string {
	var b strings.Builder
	b.Grow(16 + 8*g.Order() + 8*g.Size())
	b.WriteString(strconv.Itoa(g.Order()))
	for _, l := range g.Labels() {
		b.WriteByte(';')
		// Length-prefixed so label content cannot collide with the
		// separators.
		b.WriteString(strconv.Itoa(len(l)))
		b.WriteByte(':')
		b.WriteString(l)
	}
	b.WriteByte('|')
	for _, e := range g.Edges() {
		b.WriteString(strconv.Itoa(e.U))
		b.WriteByte('-')
		b.WriteString(strconv.Itoa(e.V))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	for v := 0; v < g.Order(); v++ {
		for _, w := range g.Neighbors(v) {
			b.WriteString(strconv.Itoa(w))
			b.WriteByte(',')
		}
		b.WriteByte(';')
	}
	return b.String()
}

// PairKey keys an ordered pair of graph instances. Direction is
// preserved: several kernels (bipartite GED, MCCS seeding) are not
// symmetric in their arguments, so (a,b) and (b,a) must not share an
// entry.
func PairKey(a, b *graph.Graph) string {
	return GraphKey(a) + "\x00" + GraphKey(b)
}
