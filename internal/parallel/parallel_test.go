package parallel

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/midas-graph/midas/graph"
)

func TestDoRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16, 100} {
		n := 57
		counts := make([]atomic.Int32, n)
		Do(workers, n, nil, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestDoOrderedSlots(t *testing.T) {
	// The invariant callers rely on: each task writes its own slot, and
	// after Do returns the slots read exactly as the sequential loop
	// would have left them — at every worker count.
	want := make([]int, 200)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{0, 1, 2, 8} {
		got := Map(workers, len(want), nil, func(i int) int { return i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestDoZeroAndNegativeN(t *testing.T) {
	ran := false
	Do(4, 0, nil, func(int) { ran = true })
	Do(4, -3, nil, func(int) { ran = true })
	if ran {
		t.Fatal("task ran for n <= 0")
	}
}

func TestDoCancelSkipsRemaining(t *testing.T) {
	// A hook that fires after the first execution: the sequential
	// degenerate path must stop, and the pooled path must skip every
	// undispatched task while still joining all workers.
	for _, workers := range []int{1, 4} {
		var fired atomic.Bool
		var ran atomic.Int32
		cancel := func() bool { return fired.Load() }
		Do(workers, 1000, cancel, func(i int) {
			ran.Add(1)
			fired.Store(true)
		})
		if got := ran.Load(); got < 1 || got > int32(workers) {
			t.Fatalf("workers=%d: %d tasks ran; want between 1 and %d", workers, got, workers)
		}
	}
}

func TestDoCancelledBeforeStart(t *testing.T) {
	ran := false
	Do(4, 100, func() bool { return true }, func(int) { ran = true })
	if ran {
		t.Fatal("task ran under a pre-fired cancel hook")
	}
}

func TestDoPanicLowestIndexWins(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("expected re-raised panic")
		}
		// Every panicking task must have been captured, and the one
		// re-raised must be the lowest index — a deterministic choice.
		if v != "task-0" {
			t.Fatalf("re-raised %v, want task-0", v)
		}
	}()
	Do(4, 8, nil, func(i int) {
		if i%2 == 0 {
			panic(fmt.Sprintf("task-%d", i))
		}
	})
}

func TestDoContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	DoContext(ctx, 4, 50, func(int) { ran = true })
	if ran {
		t.Fatal("task ran under a cancelled context")
	}
	sum := 0
	DoContext(context.Background(), 1, 5, func(i int) { sum += i })
	if sum != 10 {
		t.Fatalf("sum = %d, want 10", sum)
	}
}

func TestCacheBasics(t *testing.T) {
	c := NewCache[int]("test", 8)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d,%v", v, ok)
	}
	c.Put("a", 1) // idempotent
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len after Reset = %d", c.Len())
	}
}

func TestCacheBoundedByGenerationReset(t *testing.T) {
	c := NewCache[int]("test", 4)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
		if c.Len() > 4 {
			t.Fatalf("cache grew to %d entries past cap 4", c.Len())
		}
	}
	// The latest entry always survives its own Put.
	if v, ok := c.Get("k99"); !ok || v != 99 {
		t.Fatalf("latest entry lost: %d,%v", v, ok)
	}
}

func TestCacheConcurrentFill(t *testing.T) {
	c := NewCache[int]("test", 1<<10)
	Do(8, 500, nil, func(i int) {
		key := fmt.Sprintf("k%d", i%50)
		if v, ok := c.Get(key); ok && v != i%50 {
			t.Errorf("key %s held %d", key, v)
		}
		c.Put(key, i%50)
	})
	for i := 0; i < 50; i++ {
		if v, ok := c.Get(fmt.Sprintf("k%d", i)); !ok || v != i {
			t.Fatalf("k%d = %d,%v", i, v, ok)
		}
	}
}

func TestSnapshotCounters(t *testing.T) {
	before := Snapshot()
	Do(4, 32, nil, func(int) {})
	c := NewCache[int]("test", 8)
	c.Put("x", 1)
	c.Get("x")
	c.Get("y")
	after := Snapshot()
	if after.Batches <= before.Batches {
		t.Fatal("pooled batch not counted")
	}
	if after.Tasks-before.Tasks < 32 {
		t.Fatalf("tasks delta %d < 32", after.Tasks-before.Tasks)
	}
	if after.CacheHits <= before.CacheHits || after.CacheMisses <= before.CacheMisses {
		t.Fatal("cache hit/miss not counted")
	}
}

func TestSequentialPathBypassesPoolCounters(t *testing.T) {
	before := Snapshot()
	Do(1, 100, nil, func(int) {})
	Do(0, 100, nil, func(int) {})
	after := Snapshot()
	if after.Batches != before.Batches {
		t.Fatal("degenerate path must not count pooled batches")
	}
}

func line(n int, label string) *graph.Graph {
	g := graph.New(0)
	for i := 0; i < n; i++ {
		g.AddVertex(label)
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestGraphKeyInstanceExact(t *testing.T) {
	a := line(4, "C")
	b := line(4, "C")
	if GraphKey(a) != GraphKey(b) {
		t.Fatal("identical instances must share a key")
	}
	b.ID = 99
	if GraphKey(a) != GraphKey(b) {
		t.Fatal("the graph ID must not enter the key")
	}
	if GraphKey(line(4, "C")) == GraphKey(line(4, "N")) {
		t.Fatal("labels must distinguish keys")
	}
	if GraphKey(line(4, "C")) == GraphKey(line(5, "C")) {
		t.Fatal("order must distinguish keys")
	}
	// Same structure, different stored edge order: distinct instances to
	// a budget-capped kernel, so distinct keys.
	c := graph.New(0)
	for i := 0; i < 3; i++ {
		c.AddVertex("C")
	}
	c.AddEdge(1, 2)
	c.AddEdge(0, 1)
	d := graph.New(0)
	for i := 0; i < 3; i++ {
		d.AddVertex("C")
	}
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	if GraphKey(c) == GraphKey(d) {
		t.Fatal("stored edge order must distinguish keys")
	}
	// Label content must not collide with separators.
	e := graph.New(0)
	e.AddVertex("a;1:b")
	f := graph.New(0)
	f.AddVertex("a")
	f.AddVertex("b") // distinct split of similar bytes
	if GraphKey(e) == GraphKey(f) {
		t.Fatal("length prefixes must keep labels unambiguous")
	}
}

func TestPairKeyDirectional(t *testing.T) {
	a, b := line(3, "C"), line(4, "C")
	if PairKey(a, b) == PairKey(b, a) {
		t.Fatal("pair keys must preserve direction")
	}
	if PairKey(a, b) != PairKey(a, b) {
		t.Fatal("pair keys must be stable")
	}
}
