package cluster

import "github.com/midas-graph/midas/graph"

// Clone returns a copy of the clustering deep enough for transactional
// rollback: cluster membership maps and centroid sums are copied, while
// member graphs and feature-vector slices are shared (neither is
// mutated after insertion).
func (cl *Clustering) Clone() *Clustering {
	out := &Clustering{
		cfg:      cl.cfg,
		keys:     append([]string(nil), cl.keys...),
		clusters: make(map[int]*Cluster, len(cl.clusters)),
		owner:    make(map[int]int, len(cl.owner)),
		nextID:   cl.nextID,
	}
	for id, c := range cl.clusters {
		out.clusters[id] = c.clone()
	}
	for g, c := range cl.owner {
		out.owner[g] = c
	}
	return out
}

func (c *Cluster) clone() *Cluster {
	nc := &Cluster{
		ID:      c.ID,
		members: make(map[int]*graph.Graph, len(c.members)),
		vecs:    make(map[int][]float64, len(c.vecs)),
		sum:     append([]float64(nil), c.sum...),
	}
	for id, g := range c.members {
		nc.members[id] = g
	}
	for id, v := range c.vecs {
		nc.vecs[id] = v
	}
	return nc
}
