package cluster

import (
	"testing"

	"github.com/midas-graph/midas/graph"
)

// meanDistTo must visit members in sorted-ID order: float addition is
// not associative, so a map-order walk over mixed-magnitude distances
// yields different low bits per run, which in turn makes Silhouette —
// and any golden experiment output derived from it — flap.
func TestMeanDistToDeterministic(t *testing.T) {
	c := newCluster(0, 1)
	// Mixed magnitudes so that the order of additions changes the
	// rounded sum: (1e16 + 1) + 1 == 1e16 but 1e16 + (1 + 1) != 1e16.
	vecs := [][]float64{{0}, {1e16}, {1}, {1}, {3}, {1e16}, {2}}
	for i, v := range vecs {
		c.add(graph.New(i), v)
	}
	probe := []float64{0}
	first := meanDistTo(probe, c, -1)
	for i := 0; i < 100; i++ {
		if got := meanDistTo(probe, c, -1); got != first {
			t.Fatalf("run %d: meanDistTo = %v, want %v (bit-identical)", i, got, first)
		}
	}
	// Excluding a member must also stay stable.
	firstSkip := meanDistTo(probe, c, 3)
	for i := 0; i < 100; i++ {
		if got := meanDistTo(probe, c, 3); got != firstSkip {
			t.Fatalf("run %d with skip: meanDistTo = %v, want %v", i, got, firstSkip)
		}
	}
}
