// Package cluster implements CATAPULT's two-step small-graph clustering
// (paper §2.3) and MIDAS's incremental cluster maintenance (paper §4.3).
//
// Coarse clustering is k-means over FCT feature vectors with k-means++
// seeding (CATAPULT uses frequent subtrees; CATAPULT++/MIDAS replace them
// with frequent closed trees, §3.3). Coarse clusters exceeding the
// maximum cluster size N are refined by fine clustering, which groups
// graphs by maximum-connected-common-subgraph similarity ω_MCCS.
package cluster

import (
	"math"
	"math/rand"
	"sort"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/iso"
	"github.com/midas-graph/midas/internal/parallel"
	"github.com/midas-graph/midas/internal/tree"
)

// Cluster is one graph cluster C_i ⊆ D.
type Cluster struct {
	ID      int
	members map[int]*graph.Graph
	vecs    map[int][]float64 // member feature vectors
	sum     []float64         // running sum for centroid maintenance
}

func newCluster(id, dims int) *Cluster {
	return &Cluster{
		ID:      id,
		members: make(map[int]*graph.Graph),
		vecs:    make(map[int][]float64),
		sum:     make([]float64, dims),
	}
}

// Len returns |C_i|.
func (c *Cluster) Len() int { return len(c.members) }

// MemberIDs returns the sorted member graph IDs.
func (c *Cluster) MemberIDs() []int {
	ids := make([]int, 0, len(c.members))
	for id := range c.members {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Members returns the member graphs sorted by ID.
func (c *Cluster) Members() []*graph.Graph {
	ids := c.MemberIDs()
	out := make([]*graph.Graph, len(ids))
	for i, id := range ids {
		out[i] = c.members[id]
	}
	return out
}

// Member returns the member with the given graph ID, or nil.
func (c *Cluster) Member(id int) *graph.Graph { return c.members[id] }

// Has reports membership of a graph ID.
func (c *Cluster) Has(id int) bool {
	_, ok := c.members[id]
	return ok
}

// Centroid returns the mean feature vector; zero vector when empty.
func (c *Cluster) Centroid() []float64 {
	out := make([]float64, len(c.sum))
	if len(c.members) == 0 {
		return out
	}
	n := float64(len(c.members))
	for i, s := range c.sum {
		out[i] = s / n
	}
	return out
}

// Weight returns cw_i = |C_i| / |D| (Definition 2.1).
func (c *Cluster) Weight(dbSize int) float64 {
	if dbSize == 0 {
		return 0
	}
	return float64(len(c.members)) / float64(dbSize)
}

func (c *Cluster) add(g *graph.Graph, vec []float64) {
	if old, ok := c.vecs[g.ID]; ok {
		for i := range c.sum {
			c.sum[i] -= old[i]
		}
	}
	c.members[g.ID] = g
	c.vecs[g.ID] = vec
	for i := range c.sum {
		c.sum[i] += vec[i]
	}
}

func (c *Cluster) remove(id int) bool {
	vec, ok := c.vecs[id]
	if !ok {
		return false
	}
	for i := range c.sum {
		c.sum[i] -= vec[i]
	}
	delete(c.members, id)
	delete(c.vecs, id)
	return true
}

// Config controls clustering.
type Config struct {
	// K is the number of coarse clusters. Values below 1 default to
	// max(1, |D|/MaxSize).
	K int
	// MaxSize is the maximum cluster size N before fine clustering.
	MaxSize int
	// MaxIter bounds Lloyd iterations (default 25).
	MaxIter int
	// MCCSBudget bounds each MCCS search during fine clustering
	// (default 20000 steps).
	MCCSBudget int
	// Workers selects the execution mode of fine clustering: 0 is the
	// sequential reference path (plain loop, no memoization), >= 1 runs
	// the per-pivot ω_MCCS computations through the internal/parallel
	// pool with the process-wide MCCS memo cache. Results are identical
	// at every setting (ordered fan-in, instance-exact memo keys); only
	// wall-clock changes.
	Workers int
}

func (c Config) withDefaults(dbLen int) Config {
	if c.MaxSize < 1 {
		c.MaxSize = 50
	}
	if c.K < 1 {
		c.K = dbLen / c.MaxSize
		if c.K < 1 {
			c.K = 1
		}
	}
	if c.MaxIter < 1 {
		c.MaxIter = 25
	}
	if c.MCCSBudget < 1 {
		c.MCCSBudget = 20000
	}
	return c
}

// Clustering is the maintained set of clusters C = {C_1..C_k}.
type Clustering struct {
	cfg      Config
	keys     []string // feature dimensions (FCT canonical keys at build)
	clusters map[int]*Cluster
	owner    map[int]int // graph ID -> cluster ID
	nextID   int
	// cancel, when set, is polled by the MCCS kernel during fine
	// clustering so a cancelled maintenance call stops splitting
	// promptly.
	cancel func() bool
}

// SetCancel installs (or, with nil, removes) the cancellation hook used
// during fine clustering.
func (cl *Clustering) SetCancel(fn func() bool) { cl.cancel = fn }

// SetWorkers changes the fan-out width used by fine clustering after
// construction — e.g. on a clustering restored from a state bundle,
// where Config came from the bundle header rather than the command
// line. Splits are identical at every setting.
func (cl *Clustering) SetWorkers(n int) { cl.cfg.Workers = n }

// Build partitions database d using FCT feature vectors from the mined
// tree set (the CATAPULT++/MIDAS feature family). The random source
// drives k-means++ seeding; passing the same seed reproduces the
// clustering exactly.
func Build(d *graph.Database, set *tree.Set, cfg Config, rng *rand.Rand) *Clustering {
	return BuildWithKeys(d, set, set.FeatureKeys(), cfg, rng)
}

// BuildWithKeys partitions d using an explicit feature-key set — e.g.
// all frequent subtrees for the plain CATAPULT baseline (§2.3) instead
// of the closed ones.
func BuildWithKeys(d *graph.Database, set *tree.Set, keys []string, cfg Config, rng *rand.Rand) *Clustering {
	cfg = cfg.withDefaults(d.Len())
	cl := &Clustering{
		cfg:      cfg,
		keys:     keys,
		clusters: make(map[int]*Cluster),
		owner:    make(map[int]int),
	}
	graphs := d.Graphs()
	if len(graphs) == 0 {
		return cl
	}
	vecs := make([][]float64, len(graphs))
	for i, g := range graphs {
		vecs[i] = set.FeatureVector(keys, g.ID)
	}
	k := cfg.K
	if k > len(graphs) {
		k = len(graphs)
	}
	centroids := kmeansPP(vecs, k, rng)
	assign := lloyd(vecs, centroids, cfg.MaxIter)
	for ci := 0; ci < k; ci++ {
		c := newCluster(cl.nextID, len(keys))
		cl.nextID++
		cl.clusters[c.ID] = c
	}
	for i, g := range graphs {
		c := cl.clusters[assign[i]]
		c.add(g, vecs[i])
		cl.owner[g.ID] = c.ID
	}
	// Drop empty clusters from degenerate seeding.
	for id, c := range cl.clusters {
		if c.Len() == 0 {
			delete(cl.clusters, id)
		}
	}
	cl.RefineOversized()
	return cl
}

// kmeansPP picks k initial centroids with the k-means++ D² weighting.
func kmeansPP(vecs [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := rng.Intn(len(vecs))
	centroids = append(centroids, append([]float64(nil), vecs[first]...))
	d2 := make([]float64, len(vecs))
	for len(centroids) < k {
		total := 0.0
		for i, v := range vecs {
			best := math.MaxFloat64
			for _, c := range centroids {
				if d := sqDist(v, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		var pick int
		if total == 0 {
			pick = rng.Intn(len(vecs))
		} else {
			x := rng.Float64() * total
			for i, w := range d2 {
				x -= w
				if x <= 0 {
					pick = i
					break
				}
			}
		}
		centroids = append(centroids, append([]float64(nil), vecs[pick]...))
	}
	return centroids
}

// lloyd iterates assignment/update until stable or maxIter.
func lloyd(vecs, centroids [][]float64, maxIter int) []int {
	k := len(centroids)
	assign := make([]int, len(vecs))
	for i := range assign {
		assign[i] = -1
	}
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, v := range vecs {
			best, bestD := 0, math.MaxFloat64
			for c := 0; c < k; c++ {
				if d := sqDist(v, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		counts := make([]int, k)
		for c := range centroids {
			for j := range centroids[c] {
				centroids[c][j] = 0
			}
		}
		for i, v := range vecs {
			c := assign[i]
			counts[c]++
			for j := range v {
				centroids[c][j] += v[j]
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue
			}
			for j := range centroids[c] {
				centroids[c][j] /= float64(counts[c])
			}
		}
	}
	return assign
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Clusters returns the clusters sorted by ID.
func (cl *Clustering) Clusters() []*Cluster {
	ids := make([]int, 0, len(cl.clusters))
	for id := range cl.clusters {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]*Cluster, len(ids))
	for i, id := range ids {
		out[i] = cl.clusters[id]
	}
	return out
}

// Cluster returns the cluster with the given ID, or nil.
func (cl *Clustering) Cluster(id int) *Cluster { return cl.clusters[id] }

// OwnerOf returns the cluster ID containing graph id, or -1.
func (cl *Clustering) OwnerOf(id int) int {
	if c, ok := cl.owner[id]; ok {
		return c
	}
	return -1
}

// Len returns the number of clusters.
func (cl *Clustering) Len() int { return len(cl.clusters) }

// Size returns the number of clustered graphs.
func (cl *Clustering) Size() int { return len(cl.owner) }

// Keys returns the feature dimensions used by this clustering.
func (cl *Clustering) Keys() []string { return cl.keys }

// Assign adds graph g to the cluster with the nearest centroid
// (Algorithm 1 line 1) and returns that cluster's ID. With no clusters
// yet, a fresh cluster is created.
func (cl *Clustering) Assign(g *graph.Graph, set *tree.Set) int {
	return cl.AssignWithVector(g, set.FeatureVectorOf(cl.keys, g))
}

// AssignWithVector is Assign with a precomputed feature vector (as
// returned by tree.Set.FeatureVectorOf over Keys()). The maintenance
// pipeline precomputes the vectors of a whole insertion batch in
// parallel — the vectors depend only on the pre-update tree set, so
// they are independent of assignment order — and then assigns
// sequentially, which keeps centroid evolution identical to the plain
// sequential loop.
func (cl *Clustering) AssignWithVector(g *graph.Graph, vec []float64) int {
	bestID, bestD := -1, math.MaxFloat64
	for _, c := range cl.Clusters() {
		if c.Len() == 0 {
			continue
		}
		if d := sqDist(vec, c.Centroid()); d < bestD {
			bestID, bestD = c.ID, d
		}
	}
	if bestID == -1 {
		c := newCluster(cl.nextID, len(cl.keys))
		cl.nextID++
		cl.clusters[c.ID] = c
		bestID = c.ID
	}
	cl.clusters[bestID].add(g, vec)
	cl.owner[g.ID] = bestID
	return bestID
}

// Remove deletes graph id from its cluster (Algorithm 1 line 2) and
// returns the affected cluster ID, or -1 if the graph was not clustered.
// Empty clusters are dropped.
func (cl *Clustering) Remove(id int) int {
	cid, ok := cl.owner[id]
	if !ok {
		return -1
	}
	c := cl.clusters[cid]
	c.remove(id)
	delete(cl.owner, id)
	if c.Len() == 0 {
		delete(cl.clusters, cid)
	}
	return cid
}

// RefineOversized runs fine clustering on every cluster exceeding
// MaxSize, replacing it with MCCS-similarity groups of at most MaxSize
// members (paper §2.3 fine clustering; §4.3 step 3). It returns the IDs
// of newly created clusters.
func (cl *Clustering) RefineOversized() []int {
	var created []int
	for _, c := range cl.Clusters() {
		if c.Len() <= cl.cfg.MaxSize {
			continue
		}
		groups := cl.fineSplit(c)
		// Replace c: first group keeps the ID, rest get fresh IDs.
		delete(cl.clusters, c.ID)
		for gi, grp := range groups {
			nc := newCluster(c.ID, len(cl.keys))
			if gi > 0 {
				nc.ID = cl.nextID
				cl.nextID++
				created = append(created, nc.ID)
			}
			for _, g := range grp {
				nc.add(g, c.vecs[g.ID])
				cl.owner[g.ID] = nc.ID
			}
			cl.clusters[nc.ID] = nc
		}
	}
	return created
}

// fineSplit greedily groups members by MCCS similarity: repeatedly take
// the smallest-ID ungrouped graph as pivot and attach the MaxSize-1
// ungrouped graphs most similar to it.
func (cl *Clustering) fineSplit(c *Cluster) [][]*graph.Graph {
	remaining := c.Members()
	var groups [][]*graph.Graph
	for len(remaining) > 0 {
		pivot := remaining[0]
		rest := remaining[1:]
		type scored struct {
			g   *graph.Graph
			sim float64
		}
		// The pairwise ω_MCCS column is embarrassingly parallel: each
		// task writes its own slot and the greedy grouping below reads
		// the slots in submission order (ordered fan-in), so the split
		// is identical at every worker count. Workers >= 1 additionally
		// routes through the process-wide MCCS memo cache; its keys are
		// instance-exact, so hits are result-neutral too.
		sim := iso.MCCSSimilarityCancel
		if cl.cfg.Workers >= 1 {
			sim = iso.MCCSSimilarityCached
		}
		// Graphs are slotted before the fan-out: a fired cancel hook
		// skips remaining similarity tasks, and the grouping below must
		// still see valid members (the cancelled call rolls back, but
		// only after this function returns).
		ss := make([]scored, len(rest))
		for i, g := range rest {
			ss[i].g = g
		}
		parallel.Do(cl.cfg.Workers, len(rest), cl.cancel, func(i int) {
			ss[i].sim = sim(pivot, rest[i], cl.cfg.MCCSBudget, cl.cancel)
		})
		sort.SliceStable(ss, func(i, j int) bool { return ss[i].sim > ss[j].sim })
		take := cl.cfg.MaxSize - 1
		if take > len(ss) {
			take = len(ss)
		}
		group := []*graph.Graph{pivot}
		for i := 0; i < take; i++ {
			group = append(group, ss[i].g)
		}
		groups = append(groups, group)
		remaining = remaining[:0]
		for i := take; i < len(ss); i++ {
			remaining = append(remaining, ss[i].g)
		}
		sort.Slice(remaining, func(i, j int) bool { return remaining[i].ID < remaining[j].ID })
	}
	return groups
}

// MaxSize exposes the configured N.
func (cl *Clustering) MaxSize() int { return cl.cfg.MaxSize }

// Silhouette returns the mean silhouette coefficient of the clustering
// in feature space: for each member, (b−a)/max(a,b) with a the mean
// distance to its own cluster and b the smallest mean distance to
// another cluster. Values near 1 indicate tight, well-separated
// clusters; 0 means overlapping. Single-cluster (or empty) clusterings
// return 0 by convention. Quadratic in the clustered population — a
// diagnostic, not a hot path.
func (cl *Clustering) Silhouette() float64 {
	clusters := cl.Clusters()
	if len(clusters) < 2 {
		return 0
	}
	total, count := 0.0, 0
	for _, c := range clusters {
		for _, id := range c.MemberIDs() {
			v := c.vecs[id]
			a := meanDistTo(v, c, id)
			b := -1.0
			for _, other := range clusters {
				if other.ID == c.ID || other.Len() == 0 {
					continue
				}
				if d := meanDistTo(v, other, -1); b < 0 || d < b {
					b = d
				}
			}
			if b < 0 {
				continue
			}
			den := a
			if b > den {
				den = b
			}
			if den > 0 {
				total += (b - a) / den
			}
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// meanDistTo returns the mean Euclidean distance from v to the members
// of c, excluding member `skip` (pass -1 to include all). Singleton
// own-clusters yield 0. Members are visited in sorted-ID order: float
// addition is not associative, so summing in map order would make the
// silhouette differ in the low bits run to run.
func meanDistTo(v []float64, c *Cluster, skip int) float64 {
	sum, n := 0.0, 0
	for _, id := range c.MemberIDs() {
		if id == skip {
			continue
		}
		sum += euclid(v, c.vecs[id])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func euclid(a, b []float64) float64 {
	return math.Sqrt(sqDist(a, b))
}
