package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/tree"
)

// twoFamilyDB builds a database with two structurally distinct families:
// C-O chains and C-N stars.
func twoFamilyDB(perFamily int) *graph.Database {
	d := graph.NewDatabase()
	id := 0
	for i := 0; i < perFamily; i++ {
		d.Add(graph.Path(id, "C", "O", "C", "O"))
		id++
	}
	for i := 0; i < perFamily; i++ {
		d.Add(graph.Star(id, "C", "N", "N", "N"))
		id++
	}
	return d
}

func mineFor(d *graph.Database) *tree.Set {
	return tree.Mine(d, 0.3, 3)
}

func TestBuildSeparatesFamilies(t *testing.T) {
	d := twoFamilyDB(6)
	set := mineFor(d)
	cl := Build(d, set, Config{K: 2, MaxSize: 50}, rand.New(rand.NewSource(1)))
	if cl.Len() != 2 {
		t.Fatalf("clusters = %d, want 2", cl.Len())
	}
	// All chain graphs (IDs 0..5) should share a cluster, stars another.
	chainOwner := cl.OwnerOf(0)
	starOwner := cl.OwnerOf(6)
	if chainOwner == starOwner {
		t.Fatal("families not separated")
	}
	for id := 0; id < 6; id++ {
		if cl.OwnerOf(id) != chainOwner {
			t.Fatalf("chain graph %d in wrong cluster", id)
		}
	}
	for id := 6; id < 12; id++ {
		if cl.OwnerOf(id) != starOwner {
			t.Fatalf("star graph %d in wrong cluster", id)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	d := twoFamilyDB(5)
	set := mineFor(d)
	a := Build(d, set, Config{K: 2, MaxSize: 50}, rand.New(rand.NewSource(7)))
	b := Build(d, set, Config{K: 2, MaxSize: 50}, rand.New(rand.NewSource(7)))
	for id := 0; id < 10; id++ {
		if a.OwnerOf(id) != b.OwnerOf(id) {
			t.Fatal("same seed should give identical clustering")
		}
	}
}

func TestBuildEmptyDB(t *testing.T) {
	d := graph.NewDatabase()
	cl := Build(d, mineFor(d), Config{}, rand.New(rand.NewSource(1)))
	if cl.Len() != 0 || cl.Size() != 0 {
		t.Fatal("empty DB should produce no clusters")
	}
}

func TestBuildKLargerThanDB(t *testing.T) {
	d := graph.DatabaseOf(graph.Path(0, "C", "O"), graph.Path(1, "C", "O"))
	cl := Build(d, mineFor(d), Config{K: 10, MaxSize: 50}, rand.New(rand.NewSource(1)))
	if cl.Size() != 2 {
		t.Fatalf("clustered graphs = %d, want 2", cl.Size())
	}
	if cl.Len() > 2 {
		t.Fatalf("clusters = %d, want <= 2", cl.Len())
	}
}

func TestAssignJoinsNearestFamily(t *testing.T) {
	d := twoFamilyDB(6)
	set := mineFor(d)
	cl := Build(d, set, Config{K: 2, MaxSize: 50}, rand.New(rand.NewSource(1)))
	chainOwner := cl.OwnerOf(0)
	g := graph.Path(100, "C", "O", "C", "O")
	got := cl.Assign(g, set)
	if got != chainOwner {
		t.Fatalf("new chain assigned to %d, want %d", got, chainOwner)
	}
	if !cl.Cluster(got).Has(100) {
		t.Fatal("cluster does not contain assigned graph")
	}
	if cl.OwnerOf(100) != got {
		t.Fatal("owner map inconsistent")
	}
}

func TestAssignToEmptyClustering(t *testing.T) {
	d := graph.NewDatabase()
	set := mineFor(d)
	cl := Build(d, set, Config{}, rand.New(rand.NewSource(1)))
	id := cl.Assign(graph.Path(1, "C", "O"), set)
	if cl.Cluster(id) == nil || !cl.Cluster(id).Has(1) {
		t.Fatal("assignment to fresh cluster failed")
	}
}

func TestRemove(t *testing.T) {
	d := twoFamilyDB(4)
	set := mineFor(d)
	cl := Build(d, set, Config{K: 2, MaxSize: 50}, rand.New(rand.NewSource(1)))
	cid := cl.OwnerOf(0)
	if got := cl.Remove(0); got != cid {
		t.Fatalf("Remove returned %d, want %d", got, cid)
	}
	if cl.OwnerOf(0) != -1 {
		t.Fatal("graph still owned after removal")
	}
	if cl.Remove(0) != -1 {
		t.Fatal("double removal should return -1")
	}
	if cl.Cluster(cid).Has(0) {
		t.Fatal("cluster still has removed member")
	}
}

func TestRemoveDropsEmptyCluster(t *testing.T) {
	d := graph.DatabaseOf(graph.Path(0, "C", "O"))
	set := mineFor(d)
	cl := Build(d, set, Config{K: 1, MaxSize: 50}, rand.New(rand.NewSource(1)))
	cid := cl.OwnerOf(0)
	cl.Remove(0)
	if cl.Cluster(cid) != nil {
		t.Fatal("empty cluster should be dropped")
	}
}

func TestCentroidMaintenance(t *testing.T) {
	d := twoFamilyDB(3)
	set := mineFor(d)
	cl := Build(d, set, Config{K: 2, MaxSize: 50}, rand.New(rand.NewSource(1)))
	for _, c := range cl.Clusters() {
		// Centroid must equal the mean of member vectors.
		mean := make([]float64, len(cl.Keys()))
		for _, id := range c.MemberIDs() {
			v := set.FeatureVector(cl.Keys(), id)
			for i := range mean {
				mean[i] += v[i]
			}
		}
		for i := range mean {
			mean[i] /= float64(c.Len())
		}
		got := c.Centroid()
		for i := range mean {
			if diff := got[i] - mean[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("centroid[%d] = %v, want %v", i, got[i], mean[i])
			}
		}
	}
}

func TestRefineOversized(t *testing.T) {
	d := graph.NewDatabase()
	for i := 0; i < 9; i++ {
		d.Add(graph.Path(i, "C", "O", "C"))
	}
	set := mineFor(d)
	cl := Build(d, set, Config{K: 1, MaxSize: 3}, rand.New(rand.NewSource(1)))
	for _, c := range cl.Clusters() {
		if c.Len() > 3 {
			t.Fatalf("cluster %d has %d members, exceeds MaxSize 3", c.ID, c.Len())
		}
	}
	if cl.Len() != 3 {
		t.Fatalf("clusters = %d, want 3", cl.Len())
	}
	if cl.Size() != 9 {
		t.Fatalf("clustered graphs = %d, want 9", cl.Size())
	}
}

func TestClusterWeight(t *testing.T) {
	c := newCluster(0, 1)
	c.add(graph.Path(0, "C", "O"), []float64{1})
	c.add(graph.Path(1, "C", "O"), []float64{0})
	if c.Weight(4) != 0.5 {
		t.Fatalf("Weight = %v, want 0.5", c.Weight(4))
	}
	if c.Weight(0) != 0 {
		t.Fatal("Weight with empty DB should be 0")
	}
}

func TestPropertyPartition(t *testing.T) {
	// Clusters always partition the clustered graphs: disjoint, total.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := graph.NewDatabase()
		n := 4 + r.Intn(12)
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				d.Add(graph.Path(i, "C", "O", "C"))
			} else {
				d.Add(graph.Star(i, "C", "N", "N"))
			}
		}
		set := mineFor(d)
		cl := Build(d, set, Config{K: 1 + r.Intn(3), MaxSize: 4}, r)
		seen := map[int]int{}
		for _, c := range cl.Clusters() {
			if c.Len() > 4 {
				return false
			}
			for _, id := range c.MemberIDs() {
				if _, dup := seen[id]; dup {
					return false
				}
				seen[id] = c.ID
				if cl.OwnerOf(id) != c.ID {
					return false
				}
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAssignRemoveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := twoFamilyDB(3)
		set := mineFor(d)
		cl := Build(d, set, Config{K: 2, MaxSize: 50}, r)
		g := graph.Path(50, "C", "O", "C", "O")
		cid := cl.Assign(g, set)
		if cl.OwnerOf(50) != cid {
			return false
		}
		cl.Remove(50)
		return cl.OwnerOf(50) == -1 && cl.Size() == 6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestSilhouetteSeparatedFamilies(t *testing.T) {
	d := twoFamilyDB(6)
	set := mineFor(d)
	cl := Build(d, set, Config{K: 2, MaxSize: 50}, rand.New(rand.NewSource(1)))
	s := cl.Silhouette()
	if s <= 0.5 {
		t.Fatalf("silhouette = %v, want > 0.5 for well-separated families", s)
	}
	if s > 1 {
		t.Fatalf("silhouette = %v out of range", s)
	}
}

func TestSilhouetteSingleCluster(t *testing.T) {
	d := graph.DatabaseOf(graph.Path(0, "C", "O"), graph.Path(1, "C", "O"))
	set := mineFor(d)
	cl := Build(d, set, Config{K: 1, MaxSize: 50}, rand.New(rand.NewSource(1)))
	if cl.Silhouette() != 0 {
		t.Fatal("single cluster silhouette should be 0 by convention")
	}
}
