package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/midas-graph/midas/graph"
)

// clusterShape captures everything fine clustering decides: which
// cluster owns each graph, and the sorted member lists per cluster.
func clusterShape(cl *Clustering) map[int][]int {
	out := make(map[int][]int)
	for _, c := range cl.Clusters() {
		out[c.ID] = c.MemberIDs()
	}
	return out
}

// TestRefineOversizedDifferentialAcrossWorkers: fine clustering (the
// pairwise ω_MCCS fan-out) must produce identical splits at every
// worker count and seed, with warm process-wide MCCS memo caches from
// earlier runs included in the sweep.
func TestRefineOversizedDifferentialAcrossWorkers(t *testing.T) {
	build := func(seed int64, workers int) (*Clustering, []int) {
		d := twoFamilyDB(9)
		set := mineFor(d)
		cfg := Config{K: 2, MaxSize: 4, MCCSBudget: 20000, Workers: workers}
		cl := Build(d, set, cfg, rand.New(rand.NewSource(seed)))
		created := cl.RefineOversized()
		return cl, created
	}
	for _, seed := range []int64{1, 2, 3} {
		refCl, refCreated := build(seed, 0)
		want := clusterShape(refCl)
		for _, w := range []int{1, 2, 8} {
			cl, created := build(seed, w)
			if got := clusterShape(cl); !reflect.DeepEqual(got, want) {
				t.Errorf("seed %d workers %d: split diverged\ngot  %v\nwant %v", seed, w, got, want)
			}
			if !reflect.DeepEqual(created, refCreated) {
				t.Errorf("seed %d workers %d: created IDs %v, want %v", seed, w, created, refCreated)
			}
		}
	}
}

// TestAssignDifferentialAcrossWorkers: incremental assignment on top of
// a refined clustering must also be worker-independent.
func TestAssignDifferentialAcrossWorkers(t *testing.T) {
	run := func(workers int) map[int][]int {
		d := twoFamilyDB(6)
		set := mineFor(d)
		cl := Build(d, set, Config{K: 2, MaxSize: 5, MCCSBudget: 20000, Workers: workers}, rand.New(rand.NewSource(9)))
		cl.RefineOversized()
		for i := 0; i < 6; i++ {
			g := graph.Star(100+i, "B", "O", "O")
			d.Add(g)
			cl.Assign(g, set)
		}
		cl.RefineOversized()
		return clusterShape(cl)
	}
	want := run(0)
	for _, w := range []int{1, 2, 8} {
		if got := run(w); !reflect.DeepEqual(got, want) {
			t.Errorf("workers %d: assignment diverged\ngot  %v\nwant %v", w, got, want)
		}
	}
}
