package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// This file is the interprocedural layer under midas-lint: a
// whole-module call graph with conservative interface resolution, plus
// the shared notions the concurrency analyzers (lockorder, goroleak,
// atomichygiene, the call-graph-aware lockscope) build on — stable
// cross-package identities for functions and for lock/channel/
// WaitGroup state, and per-function call-site lists that distinguish
// synchronous calls from work handed to another goroutine.
//
// Identity across type-checks: the loader type-checks every package
// twice (once "pure" for importers, once with its test files for
// analysis), producing distinct types.Object copies of the same
// declaration. Both checks share one FileSet and one parse of each
// file, so an object's declaration position is identical in both
// copies — token.Pos is therefore the module-wide identity for
// functions, fields and variables, and the graph is keyed by it.

// FuncID identifies a declared function or method across the module by
// its declaration position.
type FuncID = token.Pos

// CallSite is one call expression inside a function body.
type CallSite struct {
	Pos token.Pos
	// Callee is the statically resolved module function, or NoPos for
	// external (stdlib) and unresolved dynamic calls.
	Callee FuncID
	// Obj is the callee object when the call resolved to a named
	// function or method (module or stdlib); nil for calls through
	// variables.
	Obj *types.Func
	// Targets holds the conservative interface-dispatch resolution:
	// every module method the call may reach. Set only when Iface.
	Iface   bool
	Targets []FuncID
	// Async marks a site lexically inside a `go func(){...}` body
	// launched by this function: it runs on another goroutine, so it
	// neither holds the caller's locks nor blocks the caller.
	Async bool
	// GoCall marks the call operand of a `go` statement itself.
	GoCall bool
}

// GoSite is one `go` statement: the unit goroleak must prove a stop
// path for.
type GoSite struct {
	Pos token.Pos
	// Body is the launched function-literal body — either written
	// inline (`go func(){...}()`) or a local variable the function
	// assigned a literal to (`w := func(){...}; go w()`).
	Body *ast.FuncLit
	// Callee is the launched module function when the statement spawns
	// a named function or method (`go p.run()`).
	Callee FuncID
	// Call is the full spawn expression (for argument binding).
	Call *ast.CallExpr
}

// CGNode is one declared function or method.
type CGNode struct {
	ID   FuncID
	Name string // display name, e.g. "tenant.(*Shard).Drain"
	Pkg  *Package
	Decl *ast.FuncDecl
	Test bool // declared in a _test.go file or an external test package

	Calls   []CallSite
	GoSites []GoSite

	// asyncRanges are the positions of `go func(){...}` literal bodies
	// inside this declaration: code in them runs on another goroutine.
	asyncRanges [][2]token.Pos
	// litRanges are the positions of every function-literal body inside
	// this declaration (async ones included). Lock regions never span a
	// literal boundary: a closure is its own lock-pairing context, as in
	// the original syntactic lockscope.
	litRanges []litRange
}

type litRange struct {
	lo, hi token.Pos
	async  bool // launched by a go statement
}

// InAsync reports whether pos lies inside one of the node's
// `go`-launched literal bodies.
func (n *CGNode) InAsync(pos token.Pos) bool {
	for _, r := range n.asyncRanges {
		if posWithin(pos, r[0], r[1]) {
			return true
		}
	}
	return false
}

// CallGraph is the whole-module view.
type CallGraph struct {
	Module *Module
	Nodes  map[FuncID]*CGNode
	// IDs is every node in deterministic (file, offset) order.
	IDs []FuncID

	// Stats for the midas-lint/2 report.
	NumFuncs      int
	NumCallSites  int
	NumEdges      int // resolved static module edges
	NumIfaceEdges int // conservative interface-dispatch edges
	BuildTime     time.Duration

	// ifaceTargets memoizes interface-method resolution, keyed by the
	// method's full name plus the static receiver interface type.
	ifaceTargets map[string][]FuncID
	pkgByPath    map[string]*Package

	slowOnce sync_Once
	slow     map[FuncID]map[string]slowReach
	lockOnce sync_Once
	locks    map[FuncID]map[token.Pos]lockRef
}

// sync_Once avoids importing sync here solely for memoization; the
// lint driver is single-threaded, so a plain flag suffices.
type sync_Once struct{ done bool }

func (o *sync_Once) Do(f func()) {
	if !o.done {
		o.done = true
		f()
	}
}

// CallGraph builds (once) and returns the module's call graph.
func (m *Module) CallGraph() *CallGraph {
	if m.cg == nil {
		m.cg = buildCallGraph(m)
	}
	return m.cg
}

func buildCallGraph(m *Module) *CallGraph {
	start := time.Now()
	g := &CallGraph{
		Module:       m,
		Nodes:        make(map[FuncID]*CGNode),
		ifaceTargets: make(map[string][]FuncID),
		pkgByPath:    make(map[string]*Package),
	}
	for _, pkg := range m.Packages {
		if !pkg.ForTest {
			g.pkgByPath[pkg.ImportPath] = pkg
		}
	}
	for _, pkg := range m.Packages {
		for i, f := range pkg.Files {
			test := pkg.IsTestFile(i)
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				g.addNode(pkg, fd, test)
			}
		}
	}
	g.IDs = make([]FuncID, 0, len(g.Nodes))
	for id := range g.Nodes {
		g.IDs = append(g.IDs, id)
	}
	sort.Slice(g.IDs, func(i, j int) bool { return g.IDs[i] < g.IDs[j] })
	g.NumFuncs = len(g.Nodes)
	for _, id := range g.IDs {
		n := g.Nodes[id]
		g.NumCallSites += len(n.Calls)
		for _, cs := range n.Calls {
			if cs.Callee != token.NoPos {
				g.NumEdges++
			}
			g.NumIfaceEdges += len(cs.Targets)
		}
	}
	g.BuildTime = time.Since(start)
	return g
}

// addNode collects one declaration's call sites, go sites and async
// ranges.
func (g *CallGraph) addNode(pkg *Package, fd *ast.FuncDecl, test bool) {
	obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return
	}
	n := &CGNode{
		ID:   obj.Pos(),
		Name: pkg.Name + "." + funcDeclName(fd),
		Pkg:  pkg,
		Decl: fd,
		Test: test,
	}

	// Map local variables assigned exactly one function literal, so
	// `go worker()` resolves to the literal's body.
	litVars := localFuncLits(pkg.Info, fd.Body)

	// First pass: literal bodies and which of them run asynchronously —
	// written inline under `go`, or assigned to a variable the function
	// only ever launches with `go`.
	asyncLits := make(map[*ast.FuncLit]bool)
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		gs, ok := node.(*ast.GoStmt)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(gs.Call.Fun).(type) {
		case *ast.FuncLit:
			asyncLits[fun] = true
		case *ast.Ident:
			if obj := pkg.Info.ObjectOf(fun); obj != nil {
				if lit, ok := litVars[obj]; ok {
					asyncLits[lit] = true
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		lit, ok := node.(*ast.FuncLit)
		if !ok {
			return true
		}
		r := litRange{lo: lit.Body.Pos(), hi: lit.Body.End(), async: asyncLits[lit]}
		n.litRanges = append(n.litRanges, r)
		if r.async {
			n.asyncRanges = append(n.asyncRanges, [2]token.Pos{r.lo, r.hi})
		}
		return true
	})

	goCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.GoStmt:
			goCalls[v.Call] = true
			n.GoSites = append(n.GoSites, g.resolveGoSite(pkg, v, litVars))
		case *ast.CallExpr:
			cs := g.resolveCall(pkg, v)
			cs.Async = n.InAsync(v.Pos())
			cs.GoCall = goCalls[v]
			n.Calls = append(n.Calls, cs)
		}
		return true
	})
	g.Nodes[n.ID] = n
}

// localFuncLits maps local variables to the single function literal
// assigned to them, when unambiguous.
func localFuncLits(info *types.Info, body *ast.BlockStmt) map[types.Object]*ast.FuncLit {
	out := make(map[types.Object]*ast.FuncLit)
	ambiguous := make(map[types.Object]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return
		}
		lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
		if !ok {
			ambiguous[obj] = true
			return
		}
		if _, seen := out[obj]; seen {
			ambiguous[obj] = true
			return
		}
		out[obj] = lit
	}
	ast.Inspect(body, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.AssignStmt:
			if len(v.Lhs) == len(v.Rhs) {
				for i := range v.Lhs {
					record(v.Lhs[i], v.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(v.Names) == len(v.Values) {
				for i := range v.Names {
					record(v.Names[i], v.Values[i])
				}
			}
		}
		return true
	})
	for obj := range ambiguous {
		delete(out, obj)
	}
	return out
}

// resolveGoSite classifies one `go` statement.
func (g *CallGraph) resolveGoSite(pkg *Package, gs *ast.GoStmt, litVars map[types.Object]*ast.FuncLit) GoSite {
	site := GoSite{Pos: gs.Pos(), Call: gs.Call}
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		site.Body = fun
		return site
	case *ast.Ident:
		if obj := pkg.Info.ObjectOf(fun); obj != nil {
			if lit, ok := litVars[obj]; ok {
				site.Body = lit
				return site
			}
		}
	}
	cs := g.resolveCall(pkg, gs.Call)
	site.Callee = cs.Callee
	return site
}

// resolveCall resolves one call expression: static module callee,
// external callee, or conservative interface dispatch.
func (g *CallGraph) resolveCall(pkg *Package, call *ast.CallExpr) CallSite {
	cs := CallSite{Pos: call.Pos()}
	obj := calleeOf(pkg.Info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return cs // builtin, conversion, or dynamic call through a variable
	}
	cs.Obj = fn
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		cs.Iface = true
		// Dispatch against the STATIC type of the receiver expression,
		// not the interface that declares the method: j.f.Close() on a
		// vfs.File must only match implementers of the full File
		// interface, not of the embedded io.Closer (which would pull in
		// every type with a Close method, the *Journal included).
		recv := sig.Recv().Type()
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, ok := pkg.Info.Selections[sel]; ok && s.Recv() != nil && types.IsInterface(s.Recv()) {
				recv = s.Recv()
			}
		}
		cs.Targets = g.interfaceTargets(fn, recv)
		return cs
	}
	if inModulePkg(g.Module, fn) {
		cs.Callee = fn.Pos()
	}
	return cs
}

// interfaceTargets conservatively resolves an interface method to every
// module method that can satisfy it: each named type in the module's
// pure universe whose method set (value or pointer) implements recvType
// (the call site's static receiver interface) contributes its method of
// that name. Resolution works in the pure universe only, so types
// declared in test files never become targets.
func (g *CallGraph) interfaceTargets(ifaceMethod *types.Func, recvType types.Type) []FuncID {
	memoKey := ifaceMethod.FullName() + "|" + types.TypeString(recvType, nil)
	if ts, ok := g.ifaceTargets[memoKey]; ok {
		return ts
	}
	var targets []FuncID
	defer func() { g.ifaceTargets[memoKey] = targets }()

	iface := canonicalInterface(g, recvType)
	if iface == nil {
		return targets
	}
	seen := make(map[FuncID]bool)
	for _, path := range sortedKeys(g.pkgByPath) {
		pkg := g.pkgByPath[path]
		if pkg.PureTypes == nil {
			continue
		}
		scope := pkg.PureTypes.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			ptr := types.NewPointer(named)
			if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			mobj, _, _ := types.LookupFieldOrMethod(ptr, true, ifaceMethod.Pkg(), ifaceMethod.Name())
			m, ok := mobj.(*types.Func)
			if !ok {
				continue
			}
			if id := m.Pos(); id != token.NoPos && !seen[id] {
				seen[id] = true
				targets = append(targets, id)
			}
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	return targets
}

// canonicalInterface maps an interface receiver type (from whichever
// type-check universe the call site lives in) to the pure-universe
// interface, so Implements checks compare within one universe.
func canonicalInterface(g *CallGraph, t types.Type) *types.Interface {
	switch v := t.(type) {
	case *types.Named:
		obj := v.Obj()
		if obj.Pkg() == nil {
			return nil
		}
		if pkg, ok := g.pkgByPath[obj.Pkg().Path()]; ok && pkg.PureTypes != nil {
			if tn, ok := pkg.PureTypes.Scope().Lookup(obj.Name()).(*types.TypeName); ok {
				if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
					return iface
				}
			}
			return nil
		}
		// External (stdlib) interfaces already live in the one shared
		// importer universe.
		iface, _ := v.Underlying().(*types.Interface)
		return iface
	case *types.Interface:
		return v
	}
	return nil
}

func sortedKeys(m map[string]*Package) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SyncTargets returns the module functions a call site can reach
// synchronously: the static callee or the interface-dispatch targets.
func (cs *CallSite) SyncTargets() []FuncID {
	if cs.Callee != token.NoPos {
		return []FuncID{cs.Callee}
	}
	return cs.Targets
}

// ---------------------------------------------------------------------
// Stable identities for lock / channel / WaitGroup state.

// stateClass is the identity of one piece of synchronization state —
// a struct field ("every Shard's metaMu"), a package-level variable, or
// a local/parameter — keyed by the declaring object's position.
type stateClass struct {
	ID      token.Pos
	Display string
	// Param is set when the object is a function parameter: receives
	// through it can be rebound to the caller's argument.
	Param *types.Var
}

// classOf resolves the expression naming a mutex, channel or WaitGroup
// to its class. It accepts the shapes the codebase uses: `x`, `s.f`,
// `s.a.b` (the innermost selected field is the class).
func classOf(pkg *Package, e ast.Expr) (stateClass, bool) {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pkg.Info.ObjectOf(v)
		vr, ok := obj.(*types.Var)
		if !ok {
			return stateClass{}, false
		}
		c := stateClass{ID: obj.Pos(), Display: displayForObj(pkg, vr, "")}
		if isParamVar(pkg.Info, vr) {
			c.Param = vr
		}
		return c, true
	case *ast.SelectorExpr:
		obj := pkg.Info.ObjectOf(v.Sel)
		vr, ok := obj.(*types.Var)
		if !ok || !vr.IsField() {
			return stateClass{}, false
		}
		owner := ""
		if t := pkg.Info.TypeOf(v.X); t != nil {
			if n, ok := deref(t).(*types.Named); ok {
				owner = n.Obj().Name()
			}
		}
		return stateClass{ID: obj.Pos(), Display: displayForObj(pkg, vr, owner)}, true
	case *ast.IndexExpr:
		return classOf(pkg, v.X)
	case *ast.StarExpr:
		return classOf(pkg, v.X)
	}
	return stateClass{}, false
}

// displayForObj renders a human-readable class name:
// "pkg.Type.field" for fields, "pkg.name" for package-level variables,
// and "name" for locals and parameters.
func displayForObj(pkg *Package, vr *types.Var, owner string) string {
	pkgName := pkg.Name
	if vr.Pkg() != nil {
		pkgName = vr.Pkg().Name()
	}
	switch {
	case vr.IsField() && owner != "":
		return pkgName + "." + owner + "." + vr.Name()
	case vr.IsField():
		return pkgName + "." + vr.Name()
	case vr.Parent() != nil && vr.Pkg() != nil && vr.Parent() == vr.Pkg().Scope():
		return pkgName + "." + vr.Name()
	}
	return vr.Name()
}

// isParamVar reports whether vr is a function parameter (its parent
// scope is a function scope and it is not a field or package-level).
func isParamVar(info *types.Info, vr *types.Var) bool {
	if vr.IsField() || vr.Pkg() == nil || vr.Parent() == vr.Pkg().Scope() {
		return false
	}
	// Parameters are declared in the function's scope; there is no
	// direct API, so approximate: a non-field, non-package var used as
	// a channel that we want to rebind. Locals qualify too, which is
	// harmless — they simply never appear in a caller's binding map.
	return true
}

// ---------------------------------------------------------------------
// Summaries shared by lockscope (transitive slow calls) and lockorder
// (transitive lock acquisition).

// slowReach describes one slow/blocking call reachable from a function.
type slowReach struct {
	Desc string // e.g. "store.SaveBundle" or "time.Sleep"
	Pkg  string // callee package name ("" for stdlib descriptors)
	Via  string // first module hop on the path, "" when direct
}

// SlowSummaries computes, for every node, the set of slow/blocking
// descriptors reachable through synchronous module calls (interface
// dispatch included, `go`-launched work excluded), as a worklist
// fixpoint over the condensed graph.
func (g *CallGraph) SlowSummaries() map[FuncID]map[string]slowReach {
	g.slowOnce.Do(func() { g.slow = g.computeSlowSummaries() })
	return g.slow
}

func (g *CallGraph) computeSlowSummaries() map[FuncID]map[string]slowReach {
	sum := make(map[FuncID]map[string]slowReach, len(g.Nodes))
	for _, id := range g.IDs {
		sum[id] = make(map[string]slowReach)
	}
	// Seed with each node's direct slow calls.
	for _, id := range g.IDs {
		n := g.Nodes[id]
		for _, cs := range n.Calls {
			if cs.Async || cs.GoCall {
				continue
			}
			if desc, pkgName := slowCallDescObj(g.Module, cs.Obj); desc != "" {
				sum[id][desc] = slowReach{Desc: desc, Pkg: pkgName}
			}
		}
	}
	// Propagate callee summaries up through synchronous edges until the
	// fixpoint: descriptors are a finite set, so this terminates.
	for changed := true; changed; {
		changed = false
		for _, id := range g.IDs {
			n := g.Nodes[id]
			for _, cs := range n.Calls {
				if cs.Async || cs.GoCall {
					continue
				}
				for _, callee := range cs.SyncTargets() {
					cn := g.Nodes[callee]
					if cn == nil {
						continue
					}
					for desc, r := range sum[callee] {
						if _, ok := sum[id][desc]; ok {
							continue
						}
						via := cn.Name
						if r.Via != "" {
							via = cn.Name + " -> " + r.Via
						}
						sum[id][desc] = slowReach{Desc: r.Desc, Pkg: r.Pkg, Via: via}
						changed = true
					}
				}
			}
		}
	}
	return sum
}

// slowCallDescObj classifies a callee object as slow/blocking. It is
// the object-level form of lockscope's classification: exported entry
// points of the slow module packages, time.Sleep, and blocking
// net/net/http calls. The caller applies the same-package exemption.
func slowCallDescObj(m *Module, obj *types.Func) (desc, pkgName string) {
	if obj == nil || obj.Pkg() == nil {
		return "", ""
	}
	if inModulePkg(m, obj) {
		if slowModulePkgs[obj.Pkg().Name()] && ast.IsExported(obj.Name()) {
			return obj.Pkg().Name() + "." + obj.Name(), obj.Pkg().Name()
		}
		return "", ""
	}
	if stdlibFunc(obj, "time", "Sleep") {
		return "time.Sleep", ""
	}
	if pkg := obj.Pkg().Path(); pkg == "net/http" || pkg == "net" {
		switch obj.Name() {
		case "Get", "Post", "PostForm", "Head", "Do", "Dial", "DialTimeout", "DialTCP", "Listen", "ListenAndServe", "ListenAndServeTLS":
			return pkg + "." + obj.Name(), ""
		}
	}
	return "", ""
}

// lockRef is one lock class a function may acquire (directly or
// transitively), with the position witnessing the acquisition.
type lockRef struct {
	Class stateClass
	At    token.Pos
	Rlock bool
	Via   string // first module hop, "" when acquired directly
}

// LockSummaries computes, for every node, the set of lock classes the
// function may acquire through synchronous calls. Locks taken inside
// `go`-launched bodies belong to the spawned goroutine and are
// excluded.
func (g *CallGraph) LockSummaries() map[FuncID]map[token.Pos]lockRef {
	g.lockOnce.Do(func() { g.locks = g.computeLockSummaries() })
	return g.locks
}

func (g *CallGraph) computeLockSummaries() map[FuncID]map[token.Pos]lockRef {
	sum := make(map[FuncID]map[token.Pos]lockRef, len(g.Nodes))
	for _, id := range g.IDs {
		sum[id] = make(map[token.Pos]lockRef)
		n := g.Nodes[id]
		for _, ev := range mutexEvents(n.Pkg, n.Decl.Body) {
			if !ev.lock || n.InAsync(ev.pos) {
				continue
			}
			sum[id][ev.class.ID] = lockRef{Class: ev.class, At: ev.pos, Rlock: ev.rlock}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, id := range g.IDs {
			n := g.Nodes[id]
			for _, cs := range n.Calls {
				if cs.Async || cs.GoCall {
					continue
				}
				for _, callee := range cs.SyncTargets() {
					cn := g.Nodes[callee]
					if cn == nil {
						continue
					}
					for lid, r := range sum[callee] {
						if _, ok := sum[id][lid]; ok {
							continue
						}
						via := cn.Name
						if r.Via != "" {
							via = cn.Name + " -> " + r.Via
						}
						sum[id][lid] = lockRef{Class: r.Class, At: cs.Pos, Rlock: r.Rlock, Via: via}
						changed = true
					}
				}
			}
		}
	}
	return sum
}

// ---------------------------------------------------------------------
// Mutex lock/unlock event extraction (shared by lockscope + lockorder).

type mutexEvent struct {
	pos      token.Pos
	class    stateClass
	expr     string // rendered lock expression, e.g. "s.mu"
	lock     bool   // Lock/RLock vs Unlock/RUnlock
	rlock    bool   // RLock/RUnlock
	deferred bool
}

// mutexEvents lists Lock/RLock/Unlock/RUnlock calls on sync.Mutex /
// sync.RWMutex values in body, in source order.
func mutexEvents(pkg *Package, body *ast.BlockStmt) []mutexEvent {
	var evs []mutexEvent
	deferredCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferredCalls[d.Call] = true
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		isLock := name == "Lock" || name == "RLock"
		isUnlock := name == "Unlock" || name == "RUnlock"
		if !isLock && !isUnlock {
			return true
		}
		t := pkg.Info.TypeOf(sel.X)
		if t == nil || !(namedTypePath(t, "sync", "Mutex") || namedTypePath(t, "sync", "RWMutex")) {
			return true
		}
		class, ok := classOf(pkg, sel.X)
		if !ok {
			class = stateClass{ID: call.Pos(), Display: exprText(sel.X)}
		}
		evs = append(evs, mutexEvent{
			pos:      call.Pos(),
			class:    class,
			expr:     exprText(sel.X),
			lock:     isLock,
			rlock:    name == "RLock" || name == "RUnlock",
			deferred: deferredCalls[call],
		})
		return true
	})
	return evs
}

// heldRegion is one span of a function body during which a lock is
// held. Regions never cross a goroutine boundary: events inside
// `go`-launched literal bodies pair among themselves.
type heldRegion struct {
	class stateClass
	expr  string // rendered lock expression for messages
	lo    token.Pos
	hi    token.Pos
	rlock bool // held via RLock
	async bool // region lives inside a go-launched body
}

// heldRegions pairs lock events into held spans, per context. A
// context is the function body or one function-literal body (closures
// pair their own lock events, exactly as the original per-funcBody
// lockscope did): an explicit Unlock bounds the region, `defer
// Unlock()` (or a Lock with no visible Unlock) extends it to the end
// of the containing context.
func heldRegions(n *CGNode) []heldRegion {
	evs := mutexEvents(n.Pkg, n.Decl.Body)
	type openLock struct {
		pos   token.Pos
		class stateClass
		rlock bool
	}
	var regions []heldRegion
	// The innermost literal body containing pos, or -1 for the function
	// proper. litRanges comes from a pre-order walk, so later entries
	// are nested deeper — scan backwards for the innermost.
	ctxOf := func(pos token.Pos) int {
		for i := len(n.litRanges) - 1; i >= 0; i-- {
			if posWithin(pos, n.litRanges[i].lo, n.litRanges[i].hi) {
				return i
			}
		}
		return -1
	}
	ctxEnd := func(ctx int) token.Pos {
		if ctx < 0 {
			return n.Decl.Body.End()
		}
		return n.litRanges[ctx].hi
	}
	ctxAsync := func(ctx int) bool { return ctx >= 0 && n.litRanges[ctx].async }
	type key struct {
		ctx  int
		expr string
	}
	open := make(map[key]openLock)
	var keys []key // insertion order for deterministic flush
	for _, e := range evs {
		k := key{ctx: ctxOf(e.pos), expr: e.expr}
		switch {
		case e.lock:
			if _, ok := open[k]; !ok {
				open[k] = openLock{pos: e.pos, class: e.class, rlock: e.rlock}
				keys = append(keys, k)
			}
		case e.deferred:
			if o, ok := open[k]; ok {
				regions = append(regions, heldRegion{class: o.class, expr: k.expr, lo: o.pos, hi: ctxEnd(k.ctx), rlock: o.rlock, async: ctxAsync(k.ctx)})
				delete(open, k)
			}
		default:
			if o, ok := open[k]; ok {
				regions = append(regions, heldRegion{class: o.class, expr: k.expr, lo: o.pos, hi: e.pos, rlock: o.rlock, async: ctxAsync(k.ctx)})
				delete(open, k)
			}
		}
	}
	for _, k := range keys {
		if o, ok := open[k]; ok {
			regions = append(regions, heldRegion{class: o.class, expr: k.expr, lo: o.pos, hi: ctxEnd(k.ctx), rlock: o.rlock, async: ctxAsync(k.ctx)})
			delete(open, k)
		}
	}
	sort.Slice(regions, func(i, j int) bool {
		if regions[i].lo != regions[j].lo {
			return regions[i].lo < regions[j].lo
		}
		return regions[i].expr < regions[j].expr
	})
	return regions
}

// contains reports whether pos executes while the region's lock is
// held: inside the span, and not inside a nested literal body the
// region's own Lock call is outside of (a closure may run on another
// goroutine or after the unlock; the original lockscope made the same
// conservative choice by treating every literal as its own function).
func (r *heldRegion) contains(n *CGNode, pos token.Pos) bool {
	if !posWithin(pos, r.lo, r.hi) {
		return false
	}
	for _, lr := range n.litRanges {
		if posWithin(pos, lr.lo, lr.hi) && !posWithin(r.lo, lr.lo, lr.hi) {
			return false
		}
	}
	return true
}

// describeFuncPos renders "file:line" for diagnostics embedded in
// messages (the lock graph's witnesses).
func describeFuncPos(m *Module, pos token.Pos) string {
	p := m.Fset.Position(pos)
	name := p.Filename
	if rel := relToModule(m, name); rel != "" {
		name = rel
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}

func relToModule(m *Module, file string) string {
	if m.Dir == "" {
		return ""
	}
	prefix := m.Dir + string([]rune{'/'})
	if strings.HasPrefix(file, prefix) {
		return file[len(prefix):]
	}
	return ""
}
