package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
	"unicode/utf8"
)

// ErrWrap enforces the Go 1.13+ error discipline the serving layer's
// HTTP status mapping depends on (errors.Is(err, ErrConflict) → 409,
// etc.): comparing an error to a sentinel with == breaks as soon as
// any layer wraps the error with %w, and formatting an error with %v
// strips the chain so downstream errors.Is sees nothing. It flags
//
//   - err == ErrSentinel / err != ErrSentinel where the sentinel is a
//     package-level error variable — use errors.Is;
//   - fmt.Errorf("... %v ...", err) with an error argument under a
//     %v/%s verb — wrap with %w so the chain survives.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "sentinel errors must be compared with errors.Is, and fmt.Errorf must wrap error arguments with %w, not %v/%s",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, v)
			case *ast.CallExpr:
				checkErrorfWrap(pass, v)
			}
			return true
		})
	}
}

func checkSentinelCompare(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if isSentinelError(pass, be.X) || isSentinelError(pass, be.Y) {
		// Only when the other side is error-typed (not a sentinel-to-
		// sentinel identity check, which is deliberate).
		other := be.Y
		sentinel := be.X
		if !isSentinelError(pass, be.X) {
			other, sentinel = be.X, be.Y
		}
		if t := pass.TypeOf(other); t == nil || !isErrorType(t) {
			return
		}
		if isSentinelError(pass, other) {
			return
		}
		pass.Reportf(be.Pos(), "error compared to sentinel %s with %s; a wrapped error never matches — use errors.Is", exprText(sentinel), be.Op)
	}
}

// isSentinelError reports whether e denotes a package-level variable of
// type error (the sentinel idiom, usually named Err*).
func isSentinelError(pass *Pass, e ast.Expr) bool {
	var id *ast.Ident
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
	default:
		return false
	}
	obj, ok := pass.Pkg.Info.ObjectOf(id).(*types.Var)
	if !ok || obj.Pkg() == nil {
		return false
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return false // not package-level
	}
	return isErrorType(obj.Type())
}

// checkErrorfWrap flags fmt.Errorf calls whose error-typed arguments
// sit under a %v or %s verb instead of %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	obj := calleeOf(pass.Pkg.Info, call)
	if !stdlibFunc(obj, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	format, ok := stringArg(call, 0)
	if !ok {
		return
	}
	verbs := parseVerbs(format)
	for _, verb := range verbs {
		argIdx := 1 + verb.argIndex
		if argIdx >= len(call.Args) {
			break
		}
		if verb.verb != 'v' && verb.verb != 's' {
			continue
		}
		t := pass.TypeOf(call.Args[argIdx])
		if t == nil || !isErrorType(t) {
			continue
		}
		pass.Reportf(call.Args[argIdx].Pos(), "error argument formatted with %%%c in fmt.Errorf; use %%w so errors.Is/errors.As can unwrap it", verb.verb)
	}
}

type fmtVerb struct {
	verb     rune
	argIndex int // 0-based operand index this verb consumes
}

// parseVerbs extracts the argument-consuming verbs of a fmt format
// string, tracking '*' width/precision arguments and explicit [n]
// argument indexes well enough to map verbs to arguments.
func parseVerbs(format string) []fmtVerb {
	var out []fmtVerb
	consumed := 0 // implicit args consumed so far (including '*')
	for i := 0; i < len(format); {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		explicit := -1
		// flags
		for i < len(format) && strings.ContainsRune("+-# 0", rune(format[i])) {
			i++
		}
		// width
		if i < len(format) && format[i] == '*' {
			consumed++
			i++
		} else {
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
		}
		// precision
		if i < len(format) && format[i] == '.' {
			i++
			if i < len(format) && format[i] == '*' {
				consumed++
				i++
			} else {
				for i < len(format) && format[i] >= '0' && format[i] <= '9' {
					i++
				}
			}
		}
		// explicit argument index [n]
		if i < len(format) && format[i] == '[' {
			j := strings.IndexByte(format[i:], ']')
			if j < 0 {
				break
			}
			if n, err := strconv.Atoi(format[i+1 : i+j]); err == nil {
				explicit = n - 1
			}
			i += j + 1
		}
		if i >= len(format) {
			break
		}
		r, size := utf8.DecodeRuneInString(format[i:])
		i += size
		if explicit >= 0 {
			out = append(out, fmtVerb{verb: r, argIndex: explicit})
			consumed = explicit + 1
		} else {
			out = append(out, fmtVerb{verb: r, argIndex: consumed})
			consumed++
		}
	}
	return out
}
