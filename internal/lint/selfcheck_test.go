package lint

import (
	"path/filepath"
	"testing"
)

// The repo must be lint-clean under its own analyzers: every finding is
// either fixed or carries a justified allowlist entry, and no allowlist
// entry is stale. This is the same gate `make lint` and CI enforce;
// having it as a test keeps `go test ./...` sufficient to catch
// regressions. Skipped under -short: it type-checks the whole module.
func TestRepoSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule(%s): %v", root, err)
	}
	diags := Run(m, All())
	al, err := ParseAllowlist(filepath.Join(root, ".midas-lint-allow"))
	if err != nil {
		t.Fatalf("ParseAllowlist: %v", err)
	}
	diags = al.Apply(diags)
	for _, d := range diags {
		if !d.Allowed {
			t.Errorf("repo is not lint-clean: %s", d)
		}
	}
	for _, e := range al.Unused() {
		t.Errorf("%s:%d: stale allowlist entry (%s %s) matches nothing; delete it", al.Path, e.Line, e.Analyzer, e.Path)
	}
}
