package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// IndexDelta enforces the delta-network ownership contract from PR 10:
// the FCT/IFE posting matrices (sparse.Matrix) are written only by the
// index layer itself — AddGraph/RemoveGraph, Register/UnregisterPattern
// and SyncFeatures — so that the delta network's incremental cover
// bookkeeping can trust every mutation to arrive as a delta event. A
// direct Set/Incr/DeleteRow/DeleteCol on a matrix from anywhere else
// bypasses the delta API: the index and the network silently disagree,
// and the from-scratch differential oracle is the only thing that will
// ever notice. The analyzer flags those mutator calls in every package
// other than sparse (the type's home) and the index packages (the
// sanctioned writers). Test files are exempt: oracles and fixtures
// legitimately poke matrices to set up divergence scenarios.
var IndexDelta = &Analyzer{
	Name: "indexdelta",
	Doc:  "sparse.Matrix mutations belong to the index layer: no Set/Incr/DeleteRow/DeleteCol outside sparse or index packages",
	Run:  runIndexDelta,
}

// sparseMutators are the Matrix methods that change posting lists.
var sparseMutators = map[string]bool{
	"Set":       true,
	"Incr":      true,
	"DeleteRow": true,
	"DeleteCol": true,
}

func runIndexDelta(pass *Pass) {
	if isSparsePkgPath(pass.Pkg.ImportPath) || isIndexPkgPath(pass.Pkg.ImportPath) {
		return
	}
	for i, f := range pass.Pkg.Files {
		if pass.Pkg.IsTestFile(i) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !sparseMutators[sel.Sel.Name] {
				return true
			}
			if isSparseMatrixType(pass.TypeOf(sel.X)) {
				pass.Reportf(call.Pos(),
					"%s.%s writes a posting matrix outside the index layer; route the mutation through the index delta API (AddGraph/RemoveGraph/RegisterPattern/UnregisterPattern/SyncFeatures) so the delta network sees it",
					exprText(sel.X), sel.Sel.Name)
			}
			return true
		})
	}
}

func isSparsePkgPath(path string) bool {
	return path == "sparse" || strings.HasSuffix(path, "/sparse")
}

// isIndexPkgPath matches the index package and its subpackages (e.g.
// index/delta), which together own the posting matrices.
func isIndexPkgPath(path string) bool {
	return path == "index" || strings.HasSuffix(path, "/index") ||
		strings.Contains(path, "/index/")
}

func isSparseMatrixType(t types.Type) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Matrix" && obj.Pkg() != nil && isSparsePkgPath(obj.Pkg().Path())
}
