package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// FsyncDiscipline enforces the durability discipline of the storage
// layer: data must be fsynced before it is renamed into place, and the
// crash-consistency-critical zones must do ALL file I/O through the
// vfs seam so the crash sweep (internal/store/crashtest) actually
// exercises every operation they perform. Concretely, in non-test code
// it flags
//
//   - an os.Rename call with no preceding (*os.File).Sync call in the
//     same function — the rename can surface a file whose contents were
//     never flushed, which is exactly the torn-bundle crash the
//     fault-injection tests exist to prevent;
//   - any direct os file-I/O call (open/create/read/write/rename/
//     remove/readdir/stat/...) inside the package store or inside
//     internal/panel's watcher.go — those zones are model-checked by
//     replaying their vfs op traces, so an os call there is invisible
//     to the checker and silently exempt from crash testing. Route it
//     through a vfs.FS.
//
// The vfs package itself is the seam's production passthrough and is
// exempt. Renames that are deliberately non-durable (e.g. quarantine
// paths made idempotent by journal replay) belong in the allowlist
// with their justification.
var FsyncDiscipline = &Analyzer{
	Name: "fsyncdiscipline",
	Doc:  "os.Rename requires a prior File.Sync in the same function; store and the spool watcher must route all file I/O through the vfs seam",
	Run:  runFsyncDiscipline,
}

// osFileIO is every os entry point that touches the filesystem. Inside
// the seam-routed zones each one must go through vfs.FS instead.
var osFileIO = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "Rename": true, "Remove": true,
	"RemoveAll": true, "ReadDir": true, "Stat": true, "Lstat": true,
	"Truncate": true, "Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"Chmod": true, "Chtimes": true, "Link": true, "Symlink": true,
}

func runFsyncDiscipline(pass *Pass) {
	if pass.Pkg.ForTest || pass.Pkg.Name == "vfs" {
		// The vfs package is the seam itself: its production
		// passthrough is the one place allowed to call os directly.
		return
	}
	info := pass.Pkg.Info
	for _, fb := range funcBodies(pass.Pkg) {
		if pass.Pkg.IsTestFile(fb.File) {
			continue
		}
		fb := fb
		sealed := seamZone(pass.Pkg, fb.File)
		ast.Inspect(fb.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeOf(info, call)
			fn, isOsIO := osFileIOCall(obj)
			switch {
			case sealed && isOsIO:
				pass.Reportf(call.Pos(), "os.%s in %s bypasses the vfs seam; the crash sweep cannot see this operation — take a vfs.FS and call it instead", fn, fb.Name)
			case stdlibFunc(obj, "os", "Rename"):
				if !syncBefore(pass, fb, call) {
					pass.Reportf(call.Pos(), "os.Rename in %s without a preceding File.Sync; an unflushed rename can surface torn data after a crash — fsync first or use store.WriteAtomic", fb.Name)
				}
			}
			return true
		})
	}
}

// seamZone reports whether the i'th file of pkg must do all file I/O
// through the vfs seam: the whole store package, and the spool watcher
// inside the panel package.
func seamZone(pkg *Package, file int) bool {
	switch pkg.Name {
	case "store":
		return true
	case "panel":
		return filepath.Base(pkg.FileNames[file]) == "watcher.go"
	}
	return false
}

// osFileIOCall reports whether obj is one of the os package's
// filesystem entry points, returning its name.
func osFileIOCall(obj types.Object) (string, bool) {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return "", false
	}
	if osFileIO[fn.Name()] {
		return fn.Name(), true
	}
	return "", false
}

// syncBefore reports whether a Sync() call on an *os.File (or a call
// into a helper of the store package, which is trusted to sync) occurs
// lexically before call within the function body.
func syncBefore(pass *Pass, fb funcBody, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(fb.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok || c.Pos() >= call.Pos() {
			return true
		}
		if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Sync" {
			if t := pass.TypeOf(sel.X); t != nil && namedTypePath(t, "os", "File") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
