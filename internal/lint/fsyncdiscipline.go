package lint

import (
	"go/ast"
)

// FsyncDiscipline enforces the durability discipline PR 1 established
// in internal/store: data must be fsynced before it is renamed into
// place, and durable artifacts (state bundles, journals) must be
// written through the atomic-write helpers rather than ad-hoc file
// calls. Concretely, in non-test code it flags
//
//   - an os.Rename call with no preceding (*os.File).Sync call in the
//     same function — the rename can surface a file whose contents were
//     never flushed, which is exactly the torn-bundle crash PR 1's
//     fault-injection tests exist to prevent;
//   - os.WriteFile and os.Create in the store package itself — every
//     write there must flow through WriteAtomic or the journal's
//     append-fsync path so the checksum and fsync rules hold.
//
// Renames that are deliberately non-durable (e.g. spool quarantine,
// where journal replay makes the rename idempotent) belong in the
// allowlist with their justification.
var FsyncDiscipline = &Analyzer{
	Name: "fsyncdiscipline",
	Doc:  "os.Rename requires a prior File.Sync in the same function; the store package must use its atomic-write/journal helpers instead of raw file writes",
	Run:  runFsyncDiscipline,
}

func runFsyncDiscipline(pass *Pass) {
	if pass.Pkg.ForTest {
		return
	}
	info := pass.Pkg.Info
	for _, fb := range funcBodies(pass.Pkg) {
		if pass.Pkg.IsTestFile(fb.File) {
			continue
		}
		fb := fb
		ast.Inspect(fb.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeOf(info, call)
			switch {
			case stdlibFunc(obj, "os", "Rename"):
				if !syncBefore(pass, fb, call) {
					pass.Reportf(call.Pos(), "os.Rename in %s without a preceding File.Sync; an unflushed rename can surface torn data after a crash — fsync first or use store.WriteAtomic", fb.Name)
				}
			case pass.Pkg.Name == "store" && stdlibFunc(obj, "os", "WriteFile"):
				pass.Reportf(call.Pos(), "os.WriteFile in the store package bypasses the fsync/checksum discipline; use WriteAtomic")
			case pass.Pkg.Name == "store" && stdlibFunc(obj, "os", "Create"):
				pass.Reportf(call.Pos(), "os.Create in the store package bypasses the fsync/checksum discipline; use WriteAtomic or os.CreateTemp with an explicit Sync")
			}
			return true
		})
	}
}

// syncBefore reports whether a Sync() call on an *os.File (or a call
// into a helper of the store package, which is trusted to sync) occurs
// lexically before call within the function body.
func syncBefore(pass *Pass, fb funcBody, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(fb.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok || c.Pos() >= call.Pos() {
			return true
		}
		if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Sync" {
			if t := pass.TypeOf(sel.X); t != nil && namedTypePath(t, "os", "File") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
