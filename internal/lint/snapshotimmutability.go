package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SnapshotImmutability enforces the serving contract PR 6's atomic
// snapshot swap rests on: once a *snapshot.Snapshot is published,
// every reader may hold it concurrently without synchronisation, which
// is only sound if nobody writes to it. Construction happens inside
// the snapshot package (Build populates the struct before Publish
// makes it visible); everywhere else a Snapshot is read-only. The
// analyzer flags, in any package other than a snapshot package itself,
//
//   - assignments to fields of a Snapshot (snap.Quality = 0),
//   - writes through its slices or their elements
//     (snap.Patterns[0] = g, snap.SVGs[i] += "…"),
//   - increments/decrements of either.
//
// Mutating a published snapshot is a data race with every concurrent
// reader even when it "works" in tests; the fix is always to build and
// publish a fresh snapshot.
var SnapshotImmutability = &Analyzer{
	Name: "snapshotimmutability",
	Doc:  "snapshot.Snapshot values are immutable after publish: no field or element writes outside the snapshot package",
	Run:  runSnapshotImmutability,
}

func runSnapshotImmutability(pass *Pass) {
	if isSnapshotPkgPath(pass.Pkg.ImportPath) {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if st.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range st.Lhs {
					checkSnapshotWrite(pass, lhs)
				}
			case *ast.IncDecStmt:
				checkSnapshotWrite(pass, st.X)
			}
			return true
		})
	}
}

// checkSnapshotWrite walks the written expression down its
// selector/index chain; a Snapshot anywhere along the base means the
// write mutates state reachable from a published snapshot.
func checkSnapshotWrite(pass *Pass, lhs ast.Expr) {
	expr := lhs
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if isSnapshotType(pass.TypeOf(e.X)) {
				pass.Reportf(lhs.Pos(), "write to %s mutates a published snapshot; snapshots are immutable outside the snapshot package — build and publish a new one", exprText(lhs))
				return
			}
			expr = e.X
		default:
			return
		}
	}
}

func isSnapshotPkgPath(path string) bool {
	return path == "snapshot" || strings.HasSuffix(path, "/snapshot")
}

func isSnapshotType(t types.Type) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Snapshot" && obj.Pkg() != nil && isSnapshotPkgPath(obj.Pkg().Path())
}
