package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadModule parses and type-checks every package under the module
// rooted at dir (the directory containing go.mod) using only the
// standard library: go/parser for syntax, go/types for checking, and
// the GOROOT source importer for standard-library dependencies.
// Module-internal imports are resolved from the tree itself, so the
// loader needs no build cache, no network and no go command.
//
// Each package directory yields one analysis Package containing the
// non-test files plus the in-package _test.go files; external test
// packages (package foo_test) become their own entry with ForTest set.
func LoadModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := &loader{
		fset:    token.NewFileSet(),
		dir:     abs,
		path:    modPath,
		std:     importer.ForCompiler(token.NewFileSet(), "source", nil),
		parsed:  make(map[string]*parsedDir),
		checked: make(map[string]*types.Package),
		loading: make(map[string]bool),
	}
	dirs, err := l.packageDirs()
	if err != nil {
		return nil, err
	}
	m := &Module{Path: modPath, Dir: abs, Fset: l.fset}
	for _, d := range dirs {
		pkgs, err := l.analyze(d)
		if err != nil {
			return nil, err
		}
		m.Packages = append(m.Packages, pkgs...)
	}
	sort.Slice(m.Packages, func(i, j int) bool {
		a, b := m.Packages[i], m.Packages[j]
		if a.ImportPath != b.ImportPath {
			return a.ImportPath < b.ImportPath
		}
		return !a.ForTest // base package before its external test package
	})
	return m, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// parsedDir caches the parse of one package directory.
type parsedDir struct {
	name      string // package name of the non-test files
	files     []*ast.File
	fileNames []string
	testStart int // index of first in-package test file
	xtest     []*ast.File
	xtestName []string
}

type loader struct {
	fset    *token.FileSet
	dir     string // module root
	path    string // module path
	std     types.Importer
	parsed  map[string]*parsedDir     // package dir -> parse
	checked map[string]*types.Package // import path -> pure (no test files) package
	loading map[string]bool           // cycle detection
}

// packageDirs returns every directory under the module root containing
// Go files, skipping testdata, vendor, VCS and hidden directories.
func (l *loader) packageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.dir && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// importPathFor maps a package directory to its import path.
func (l *loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.dir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.path, nil
	}
	return l.path + "/" + filepath.ToSlash(rel), nil
}

// dirFor maps a module-internal import path to its directory.
func (l *loader) dirFor(importPath string) string {
	if importPath == l.path {
		return l.dir
	}
	rel := strings.TrimPrefix(importPath, l.path+"/")
	return filepath.Join(l.dir, filepath.FromSlash(rel))
}

func (l *loader) isModulePath(path string) bool {
	return path == l.path || strings.HasPrefix(path, l.path+"/")
}

// Import implements types.Importer: module-internal paths are resolved
// from source in the tree; "unsafe" maps to types.Unsafe; everything
// else (the standard library) goes through the GOROOT source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.isModulePath(path) {
		return l.importModule(path)
	}
	return l.std.Import(path)
}

// importModule type-checks the pure (non-test) files of one module
// package, memoized, with cycle detection.
func (l *loader) importModule(path string) (*types.Package, error) {
	if pkg, ok := l.checked[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	pd, err := l.parseDir(l.dirFor(path))
	if err != nil {
		return nil, err
	}
	pure := pd.files[:pd.testStart]
	pkg, _, err := l.check(path, pd.name, pure)
	if err != nil {
		return nil, err
	}
	l.checked[path] = pkg
	return pkg, nil
}

// parseDir parses every .go file in dir once, splitting into package
// files, in-package test files and external (xtest) files.
func (l *loader) parseDir(dir string) (*parsedDir, error) {
	if pd, ok := l.parsed[dir]; ok {
		return pd, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	pd := &parsedDir{}
	var nonTest, inTest []*ast.File
	var nonTestN, inTestN []string
	for _, name := range names {
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", full, err)
		}
		pkgName := f.Name.Name
		switch {
		case strings.HasSuffix(name, "_test.go") && strings.HasSuffix(pkgName, "_test"):
			pd.xtest = append(pd.xtest, f)
			pd.xtestName = append(pd.xtestName, full)
		case strings.HasSuffix(name, "_test.go"):
			inTest = append(inTest, f)
			inTestN = append(inTestN, full)
		default:
			nonTest = append(nonTest, f)
			nonTestN = append(nonTestN, full)
			pd.name = pkgName
		}
	}
	if pd.name == "" && len(inTest) > 0 {
		pd.name = inTest[0].Name.Name
	}
	pd.files = append(nonTest, inTest...)
	pd.fileNames = append(nonTestN, inTestN...)
	pd.testStart = len(nonTest)
	l.parsed[dir] = pd
	return pd, nil
}

// check type-checks one set of files as a package.
func (l *loader) check(path, name string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var errs []error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			errs = append(errs, err)
		},
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if len(errs) > 0 {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %w", path, errs[0])
	}
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return pkg, info, nil
}

// analyze builds the analysis packages for one directory: the package
// with its in-package test files, plus the external test package when
// present.
func (l *loader) analyze(dir string) ([]*Package, error) {
	pd, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(pd.files) == 0 && len(pd.xtest) == 0 {
		return nil, nil
	}
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	var out []*Package
	if len(pd.files) > 0 {
		// Make sure the pure package is memoized first so xtest files
		// and downstream importers share one types.Package identity.
		pure, err := l.importModule(path)
		if err != nil {
			return nil, err
		}
		tpkg, info, err := l.check(path, pd.name, pd.files)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{
			ImportPath:    path,
			Dir:           dir,
			Name:          pd.name,
			Files:         pd.files,
			FileNames:     pd.fileNames,
			TestFileStart: pd.testStart,
			Types:         tpkg,
			PureTypes:     pure,
			Info:          info,
		})
	}
	if len(pd.xtest) > 0 {
		xname := pd.xtest[0].Name.Name
		tpkg, info, err := l.check(path+"_test", xname, pd.xtest)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{
			ImportPath: path + "_test",
			Dir:        dir,
			Name:       xname,
			ForTest:    true,
			Files:      pd.xtest,
			FileNames:  pd.xtestName,
			Types:      tpkg,
			Info:       info,
		})
	}
	return out, nil
}
