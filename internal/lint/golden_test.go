package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden module under testdata/src seeds at least one violation
// per analyzer, marked with `// want "regex"` comments on the
// offending lines. The test fails on any diagnostic without a matching
// want, and on any want without a matching diagnostic — so it pins
// both the true-positive and the false-positive behaviour of every
// analyzer.

var wantRe = regexp.MustCompile("// want (?:\"([^\"]*)\"|`([^`]*)`)")

type wantDiag struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

func collectWants(t *testing.T, root string) []*wantDiag {
	t.Helper()
	var wants []*wantDiag
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				pat := m[1]
				if pat == "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, pat, err)
				}
				wants = append(wants, &wantDiag{file: path, line: i + 1, pattern: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(wants) == 0 {
		t.Fatalf("no want comments found under %s", root)
	}
	return wants
}

func TestGolden(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule(%s): %v", root, err)
	}
	diags := Run(m, All())
	wants := collectWants(t, root)
	perAnalyzer := make(map[string]int)
	for _, d := range diags {
		perAnalyzer[d.Analyzer]++
		found := false
		for _, w := range wants {
			if !w.matched && filepath.Clean(w.file) == filepath.Clean(d.Position.Filename) &&
				w.line == d.Position.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q was produced", w.file, w.line, w.pattern)
		}
	}
	for _, a := range All() {
		if perAnalyzer[a.Name] == 0 {
			t.Errorf("analyzer %s produced no findings on the golden module; its true-positive path is untested", a.Name)
		}
	}
}
