package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// GoroLeak requires every `go` statement to have a provable stop path.
// The maintenance loop runs for the lifetime of the process next to
// the serving path; a goroutine with no termination condition is a
// slow leak of memory and scheduler load that no test notices until
// production. A launch is accepted when the spawned body (searched
// through its synchronous module calls, with channel parameters bound
// to the caller's arguments) provably stops:
//
//   - it receives from a context.Context's Done() channel;
//   - it receives from / ranges over / selects on a channel that some
//     non-test module function close()s;
//   - it calls Done() on a sync.WaitGroup that is Wait()ed either in
//     the launching function itself (structured concurrency) or in an
//     owner method named like Stop/Shutdown/Drain/Close/Wait;
//   - or it contains no loops at all (transitively), so it terminates
//     by running off the end.
//
// Two launch shapes are exempt by design: test files (the test binary
// exits) and `package main` (process-lifetime goroutines die with the
// process). Everything else needs a proof or an allowlist entry with a
// reason.
var GoroLeak = &Analyzer{
	Name:      "goroleak",
	Doc:       "every go statement needs a provable stop path: ctx/done select, closed-channel receive, or an owner-joined WaitGroup",
	RunModule: runGoroLeak,
}

var ownerJoinName = regexp.MustCompile(`(?i)stop|shutdown|drain|close|wait`)

func runGoroLeak(m *Module, report func(Diagnostic)) {
	g := m.CallGraph()
	facts := collectLeakFacts(m, g)

	for _, id := range g.IDs {
		n := g.Nodes[id]
		if n.Test || n.Pkg.Name == "main" || n.Pkg.ForTest {
			continue
		}
		if n.Pkg.TestFileFor(m.Fset, n.Decl.Pos()) {
			continue
		}
		for _, site := range n.GoSites {
			if proveStop(g, facts, n, site) {
				continue
			}
			report(Diagnostic{
				Analyzer: "goroleak",
				Position: m.Fset.Position(site.Pos),
				Message:  "goroutine has no provable stop path; thread a context/done channel, consume a channel an owner closes, or join a WaitGroup in the launcher or an owner Stop/Shutdown/Drain",
			})
		}
	}
}

// leakFacts are the module-wide facts the per-site proof consults.
type leakFacts struct {
	// closedChans holds the class IDs of channels some non-test module
	// function passes to close().
	closedChans map[token.Pos]bool
	// wgWaiters maps a sync.WaitGroup class ID to the nodes that call
	// Wait() on it (non-test module code).
	wgWaiters map[token.Pos][]*CGNode
}

func collectLeakFacts(m *Module, g *CallGraph) *leakFacts {
	f := &leakFacts{
		closedChans: make(map[token.Pos]bool),
		wgWaiters:   make(map[token.Pos][]*CGNode),
	}
	for _, id := range g.IDs {
		n := g.Nodes[id]
		if n.Test || n.Pkg.ForTest {
			continue
		}
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
				if _, isBuiltin := n.Pkg.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
					if c, ok := classOf(n.Pkg, call.Args[0]); ok {
						f.closedChans[c.ID] = true
					}
				}
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if t := n.Pkg.Info.TypeOf(sel.X); t != nil && namedTypePath(t, "sync", "WaitGroup") {
					if c, ok := classOf(n.Pkg, sel.X); ok {
						f.wgWaiters[c.ID] = append(f.wgWaiters[c.ID], n)
					}
				}
			}
			return true
		})
	}
	return f
}

// proveStop attempts each accepted proof for one go site.
func proveStop(g *CallGraph, facts *leakFacts, launcher *CGNode, site GoSite) bool {
	p := &leakProver{g: g, facts: facts, launcher: launcher, visited: make(map[token.Pos]bool)}
	switch {
	case site.Body != nil:
		// Inline (or local-variable) function literal: arguments of the
		// immediate call bind the literal's parameters.
		binding := bindParams(launcher.Pkg, site.Body.Type, site.Call)
		return p.search(launcher, site.Body.Body, binding)
	case site.Callee != token.NoPos:
		callee := g.Nodes[site.Callee]
		if callee == nil {
			return false
		}
		binding := bindParams(callee.Pkg, callee.Decl.Type, site.Call)
		p.visited[callee.ID] = true
		return p.search(callee, callee.Decl.Body, binding)
	}
	// Dynamic or external launch target: nothing to inspect.
	return false
}

// bindParams maps channel-typed parameter object positions to the
// class IDs of the caller's corresponding arguments, so a receive on a
// parameter inside the spawned body resolves to the caller's channel.
func bindParams(pkg *Package, ft *ast.FuncType, call *ast.CallExpr) map[token.Pos]token.Pos {
	binding := make(map[token.Pos]token.Pos)
	if ft == nil || ft.Params == nil || call == nil {
		return binding
	}
	argIdx := 0
	for _, field := range ft.Params.List {
		names := field.Names
		if len(names) == 0 {
			argIdx++
			continue
		}
		for _, name := range names {
			if argIdx >= len(call.Args) {
				return binding
			}
			obj := pkg.Info.ObjectOf(name)
			if obj != nil {
				if c, ok := classOf(pkg, call.Args[argIdx]); ok {
					binding[obj.Pos()] = c.ID
				}
			}
			argIdx++
		}
	}
	return binding
}

type leakProver struct {
	g        *CallGraph
	facts    *leakFacts
	launcher *CGNode
	visited  map[token.Pos]bool
	// loops records whether any searched body contains a loop that is
	// not a bounded range (range over slice/map/array/int); used by the
	// termination proof.
	loops bool
}

// search walks one body (and, recursively, its synchronous module
// callees) looking for a stop proof. binding maps parameter object
// positions to caller-side class IDs.
func (p *leakProver) search(n *CGNode, body ast.Node, binding map[token.Pos]token.Pos) bool {
	if p.searchBody(n, body, binding) {
		return true
	}
	// Termination proof: the whole transitive body ran without finding
	// a loop, so the goroutine runs off the end.
	return !p.loops
}

func (p *leakProver) searchBody(n *CGNode, body ast.Node, binding map[token.Pos]token.Pos) bool {
	proven := false
	ast.Inspect(body, func(node ast.Node) bool {
		if proven {
			return false
		}
		switch v := node.(type) {
		case *ast.GoStmt:
			// A nested launch is its own go site with its own proof.
			return false
		case *ast.ForStmt:
			p.loops = true
		case *ast.RangeStmt:
			if t := n.Pkg.Info.TypeOf(v.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					p.loops = true
					if p.chanProven(n, v.X, binding) {
						proven = true
						return false
					}
				}
			}
		case *ast.UnaryExpr:
			if v.Op == token.ARROW && p.recvProven(n, v.X, binding) {
				proven = true
				return false
			}
		case *ast.CallExpr:
			if p.callProven(n, v, binding) {
				proven = true
				return false
			}
		}
		return true
	})
	return proven
}

// recvProven handles `<-expr`: a Done() of a context, or a channel
// closed by an owner.
func (p *leakProver) recvProven(n *CGNode, expr ast.Expr, binding map[token.Pos]token.Pos) bool {
	if call, ok := ast.Unparen(expr).(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			if isContextType(n.Pkg.Info.TypeOf(sel.X)) {
				return true
			}
		}
		return false
	}
	return p.chanProven(n, expr, binding)
}

// chanProven reports whether the channel expression resolves to a
// class some owner close()s.
func (p *leakProver) chanProven(n *CGNode, expr ast.Expr, binding map[token.Pos]token.Pos) bool {
	c, ok := classOf(n.Pkg, expr)
	if !ok {
		return false
	}
	id := c.ID
	if mapped, ok := binding[id]; ok {
		id = mapped
	}
	return p.facts.closedChans[id]
}

// callProven handles calls inside the spawned body: wg.Done() with an
// owner-joined WaitGroup, and recursion into synchronous module
// callees.
func (p *leakProver) callProven(n *CGNode, call *ast.CallExpr, binding map[token.Pos]token.Pos) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
		if t := n.Pkg.Info.TypeOf(sel.X); t != nil && namedTypePath(t, "sync", "WaitGroup") {
			if c, ok := classOf(n.Pkg, sel.X); ok {
				id := c.ID
				if mapped, ok := binding[id]; ok {
					id = mapped
				}
				for _, waiter := range p.facts.wgWaiters[id] {
					if waiter.ID == p.launcher.ID {
						return true // joined by the launching function itself
					}
					if ownerJoinName.MatchString(waiter.Decl.Name.Name) {
						return true // joined by an owner's Stop/Shutdown/Drain/Close/Wait
					}
				}
			}
		}
	}
	// Recurse into synchronous module callees, binding their channel
	// parameters to our arguments (depth-limited by the visited set).
	obj := calleeOf(n.Pkg.Info, call)
	fn, ok := obj.(*types.Func)
	if !ok || !inModulePkg(p.g.Module, fn) {
		return false
	}
	callee := p.g.Nodes[fn.Pos()]
	if callee == nil || p.visited[callee.ID] {
		return false
	}
	p.visited[callee.ID] = true
	nested := bindParams(callee.Pkg, callee.Decl.Type, call)
	// Compose bindings: the callee's param may be bound to OUR param,
	// which the outer binding maps onward to the real channel.
	for pos, target := range nested {
		if mapped, ok := binding[target]; ok {
			nested[pos] = mapped
		}
	}
	return p.searchBody(callee, callee.Decl.Body, nested)
}
