package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeAllow(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "allow")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func diagAt(analyzer, file, msg string) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Position: token.Position{Filename: file, Line: 10, Column: 2},
		Message:  msg,
	}
}

func TestParseAllowlistRequiresReason(t *testing.T) {
	_, err := ParseAllowlist(writeAllow(t, "errwrap graph/io.go\n"))
	if err == nil || !strings.Contains(err.Error(), "# reason") {
		t.Fatalf("entry without reason parsed; err = %v", err)
	}
}

func TestParseAllowlistRequiresAnalyzerAndPath(t *testing.T) {
	_, err := ParseAllowlist(writeAllow(t, "errwrap # lonely analyzer\n"))
	if err == nil || !strings.Contains(err.Error(), "path-suffix") {
		t.Fatalf("entry without path parsed; err = %v", err)
	}
}

func TestParseAllowlistSkipsBlanksAndComments(t *testing.T) {
	al, err := ParseAllowlist(writeAllow(t, "# header\n\nerrwrap graph/io.go # ok\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(al.Entries) != 1 {
		t.Fatalf("got %d entries, want 1", len(al.Entries))
	}
	e := al.Entries[0]
	if e.Analyzer != "errwrap" || e.Path != "graph/io.go" || e.Reason != "ok" {
		t.Fatalf("parsed entry %+v", e)
	}
}

func TestAllowlistMatching(t *testing.T) {
	al, err := ParseAllowlist(writeAllow(t, strings.Join([]string{
		"fsyncdiscipline panel/watcher.go noteFailure # quarantine rename",
		"* cluster/cluster.go # anything in there",
	}, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	diags := al.Apply([]Diagnostic{
		// Matches entry 0: analyzer, path suffix and substring all hit.
		diagAt("fsyncdiscipline", "/repo/internal/panel/watcher.go", "os.Rename in (*Watcher).noteFailure without sync"),
		// Same file, message lacks the substring: not allowed.
		diagAt("fsyncdiscipline", "/repo/internal/panel/watcher.go", "os.Rename in (*Watcher).finishBatch without sync"),
		// Wrong analyzer for entry 0; entry 1 is path-restricted elsewhere.
		diagAt("errwrap", "/repo/internal/panel/watcher.go", "os.Rename in (*Watcher).noteFailure without sync"),
		// Wildcard analyzer entry matches any analyzer in that file.
		diagAt("mapdeterminism", "/repo/internal/cluster/cluster.go", "float accumulated across map iteration"),
		// Suffix must match on path-component boundaries.
		diagAt("mapdeterminism", "/repo/internal/notcluster/cluster.go", "float accumulated across map iteration"),
	})
	want := []bool{true, false, false, true, false}
	for i, d := range diags {
		if d.Allowed != want[i] {
			t.Errorf("diag %d (%s %s): Allowed = %v, want %v", i, d.Analyzer, d.Position.Filename, d.Allowed, want[i])
		}
	}
	if unused := al.Unused(); len(unused) != 0 {
		t.Errorf("both entries matched, but Unused() = %v", unused)
	}
}

func TestAllowlistUnused(t *testing.T) {
	al, err := ParseAllowlist(writeAllow(t, "errwrap gone/file.go # the code this covered was deleted\n"))
	if err != nil {
		t.Fatal(err)
	}
	al.Apply([]Diagnostic{diagAt("errwrap", "/repo/other/file.go", "msg")})
	unused := al.Unused()
	if len(unused) != 1 || unused[0].Path != "gone/file.go" {
		t.Fatalf("Unused() = %+v, want the single stale entry", unused)
	}
}
