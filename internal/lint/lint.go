// Package lint is midas-lint: a small, stdlib-only static-analysis
// framework (go/parser + go/ast + go/types, no external dependencies)
// that loads every package in the module and runs project-specific
// analyzers enforcing the invariants the MIDAS stack depends on —
// deterministic canonical codes and state bundles, context propagation
// into the matching kernels, fsync-before-rename durability, lock
// scope hygiene, failpoint/metric registry hygiene, and errors.Is/%w
// discipline.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis in
// miniature: an Analyzer has a name, a doc string and a Run function
// over a type-checked Package; diagnostics carry a position and a
// message and are filtered through an allowlist of deliberate
// exceptions before they fail the build.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"time"
)

// Analyzer is one named check. Run inspects a single type-checked
// package and reports diagnostics through pass.Report. Analyzers that
// need a whole-module view (e.g. registry hygiene) implement RunModule
// instead, which is called once with every package loaded.
type Analyzer struct {
	Name string
	// Doc is a one-line description shown by midas-lint -list.
	Doc string
	// Run is invoked once per loaded package (including its test
	// files). Either Run or RunModule must be set.
	Run func(pass *Pass)
	// RunModule is invoked once per module with all packages.
	RunModule func(m *Module, report func(Diagnostic))
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Module   *Module
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Module.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expr in this package, or nil.
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	if t := p.Pkg.Info.TypeOf(expr); t != nil {
		return t
	}
	return nil
}

// ObjectOf returns the object denoted by ident, or nil.
func (p *Pass) ObjectOf(ident *ast.Ident) types.Object {
	return p.Pkg.Info.ObjectOf(ident)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Position token.Position
	Message  string
	// Allowed is set when an allowlist entry matched; allowed
	// diagnostics are reported separately and do not fail the run.
	Allowed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)",
		d.Position.Filename, d.Position.Line, d.Position.Column, d.Message, d.Analyzer)
}

// Module is every package loaded from one module root.
type Module struct {
	// Path is the module path from go.mod.
	Path string
	// Dir is the absolute module root directory.
	Dir  string
	Fset *token.FileSet
	// Packages in deterministic (import-path) order. Each entry is one
	// package directory: its non-test and in-package test files are
	// type-checked together; external _test packages appear as their
	// own entry with ForTest set.
	Packages []*Package

	// cg memoizes the whole-module call graph (built on first use by
	// any interprocedural analyzer; the driver is single-threaded).
	cg *CallGraph
	// lockGraph memoizes lockorder's derived acquisition-order graph
	// for the -json report and -lockgraph printing.
	lockGraph *LockGraph
}

// Package is one type-checked package.
type Package struct {
	// ImportPath is the package's import path within the module (the
	// module path itself for the root package).
	ImportPath string
	// Dir is the absolute package directory.
	Dir string
	// Name is the package name ("store", "telemetry", ...).
	Name string
	// ForTest is true for external _test packages (package foo_test).
	ForTest bool
	// PureTypes is the memoized no-test-files check of the same
	// directory — the types.Package every *other* package's Info
	// resolves this package's objects to. All PureTypes share one type
	// universe, which makes cross-package method-set questions
	// (interface implementation, promoted methods) answerable with
	// types.Implements. Nil for external test packages.
	PureTypes *types.Package
	// Files holds the parsed files: non-test files first, then
	// in-package _test.go files. TestFileStart is the index of the
	// first test file.
	Files         []*ast.File
	FileNames     []string
	TestFileStart int
	Types         *types.Package
	Info          *types.Info
}

// IsTestFile reports whether the i'th file of the package is a _test.go
// file (external test packages are test files throughout).
func (p *Package) IsTestFile(i int) bool {
	return p.ForTest || i >= p.TestFileStart
}

// TestFileFor reports whether the file containing pos is a test file.
func (p *Package) TestFileFor(fset *token.FileSet, pos token.Pos) bool {
	if p.ForTest {
		return true
	}
	name := fset.Position(pos).Filename
	for i, fn := range p.FileNames {
		if fn == name {
			return p.IsTestFile(i)
		}
	}
	return false
}

// AnalyzerTiming is one analyzer's wall-clock cost over the module.
type AnalyzerTiming struct {
	Name   string
	Millis float64
}

// CallGraphStats summarizes the interprocedural call graph, when one
// was built during the run.
type CallGraphStats struct {
	Functions   int
	CallSites   int
	Edges       int
	IfaceEdges  int
	BuildMillis float64
}

// RunStats is the per-run metadata surfaced in the midas-lint/2 JSON
// report.
type RunStats struct {
	Analyzers []AnalyzerTiming
	// CallGraph is nil when no interprocedural analyzer ran.
	CallGraph *CallGraphStats
}

// Run executes the analyzers over the module and returns diagnostics
// sorted by file, line, column, then analyzer name.
func Run(m *Module, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunTimed(m, analyzers)
	return diags
}

// RunTimed is Run plus per-analyzer wall-clock timing and call-graph
// statistics. The first interprocedural analyzer to run pays the graph
// construction cost inside its own timing; the build time is also
// reported separately in the stats.
func RunTimed(m *Module, analyzers []*Analyzer) ([]Diagnostic, *RunStats) {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	stats := &RunStats{}
	for _, a := range analyzers {
		start := time.Now()
		if a.RunModule != nil {
			a.RunModule(m, report)
		} else {
			for _, pkg := range m.Packages {
				pass := &Pass{Analyzer: a, Module: m, Pkg: pkg, report: report}
				a.Run(pass)
			}
		}
		stats.Analyzers = append(stats.Analyzers, AnalyzerTiming{
			Name:   a.Name,
			Millis: float64(time.Since(start).Microseconds()) / 1000,
		})
	}
	if m.cg != nil {
		stats.CallGraph = &CallGraphStats{
			Functions:   m.cg.NumFuncs,
			CallSites:   m.cg.NumCallSites,
			Edges:       m.cg.NumEdges,
			IfaceEdges:  m.cg.NumIfaceEdges,
			BuildMillis: float64(m.cg.BuildTime.Microseconds()) / 1000,
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, stats
}
