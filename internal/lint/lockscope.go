package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockScope enforces the engine-mutex rule PR 2's /metrics fix
// established: while a sync.Mutex / sync.RWMutex is held, the critical
// section must not run known-slow kernels or blocking I/O. A scrape
// endpoint, a health check or a concurrent query queuing behind a lock
// that is busy inside VF2 or an fsync is how the serving layer misses
// its deadlines. Inside a Lock()..Unlock() region (or to the end of
// the function after `defer Unlock()`) it flags calls to
//
//   - exported entry points of the kernel packages iso, ged and
//     catapult (graph matching and selection are unbounded work);
//   - the store package (every write there fsyncs);
//   - net/http client calls, net.Dial*, and time.Sleep.
//
// The analyzer is call-graph-aware: besides direct calls inside a
// critical section, it follows synchronous module calls (interface
// dispatch resolved conservatively, `go`-launched work excluded) and
// flags slow work reached through helper indirection, naming the call
// path. Critical sections that hold the lock across such work by
// design (e.g. the engine mutex serializing maintenance with state
// saves) belong in the allowlist with their justification.
var LockScope = &Analyzer{
	Name:      "lockscope",
	Doc:       "no slow kernels (iso/ged/catapult), fsyncing store calls, or blocking I/O while a sync.Mutex/RWMutex is held — directly or through helpers",
	RunModule: runLockScopeModule,
}

// slowModulePkgs are the module packages whose exported entry points
// count as unbounded work.
var slowModulePkgs = map[string]bool{"iso": true, "ged": true, "catapult": true, "store": true, "parallel": true, "tenant": true}

func runLockScopeModule(m *Module, report func(Diagnostic)) {
	// Direct pass: the original syntactic check, unchanged — every
	// function body (literals included, test files included), slow
	// calls lexically inside a lock region.
	named := &Analyzer{Name: "lockscope"}
	for _, pkg := range m.Packages {
		runLockScope(&Pass{Analyzer: named, Module: m, Pkg: pkg, report: report})
	}
	// Transitive pass: slow work reached through helper calls made
	// while a lock is held. Only non-test declarations; sites the
	// direct pass already reports are skipped.
	g := m.CallGraph()
	slow := g.SlowSummaries()
	for _, id := range g.IDs {
		n := g.Nodes[id]
		if n.Test || n.Pkg.ForTest {
			continue
		}
		regions := heldRegions(n)
		if len(regions) == 0 {
			continue
		}
		seenSite := make(map[token.Pos]bool)
		for ri := range regions {
			r := &regions[ri]
			for _, cs := range n.Calls {
				if cs.GoCall || seenSite[cs.Pos] || !r.contains(n, cs.Pos) {
					continue
				}
				if directlyReported(m, n, cs) {
					continue // the direct pass owns this site
				}
				if desc, via, ok := firstSlowReach(g, slow, n, cs); ok {
					seenSite[cs.Pos] = true
					report(Diagnostic{
						Analyzer: "lockscope",
						Position: m.Fset.Position(cs.Pos),
						Message: fmt.Sprintf("%s reachable via %s while %s is held in %s; move slow/blocking work outside the critical section",
							desc, via, r.expr, n.Name),
					})
				}
			}
		}
	}
}

// directlyReported mirrors the direct pass's decision for a call site:
// when it fires there, the transitive pass stays quiet.
func directlyReported(m *Module, n *CGNode, cs CallSite) bool {
	desc, pkgName := slowCallDescObj(m, cs.Obj)
	if desc == "" {
		return false
	}
	return pkgName == "" || pkgName != n.Pkg.Name
}

// firstSlowReach picks, deterministically, one slow descriptor
// reachable from the call site's targets, honouring the lock holder's
// same-package exemption.
func firstSlowReach(g *CallGraph, slow map[FuncID]map[string]slowReach, n *CGNode, cs CallSite) (desc, via string, ok bool) {
	for _, callee := range cs.SyncTargets() {
		cn := g.Nodes[callee]
		if cn == nil {
			continue
		}
		descs := make([]string, 0, len(slow[callee]))
		for d := range slow[callee] {
			descs = append(descs, d)
		}
		sort.Strings(descs)
		for _, d := range descs {
			sr := slow[callee][d]
			if sr.Pkg != "" && sr.Pkg == n.Pkg.Name {
				continue // same-package work is the implementation, not a foreign slow call
			}
			via := cn.Name
			if sr.Via != "" {
				via += " -> " + sr.Via
			}
			return d, via, true
		}
	}
	return "", "", false
}

func runLockScope(pass *Pass) {
	for _, fb := range funcBodies(pass.Pkg) {
		regions := lockRegions(pass, fb)
		if len(regions) == 0 {
			continue
		}
		goBodies := goStmtRanges(fb.Body)
		ast.Inspect(fb.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, g := range goBodies {
				if posWithin(call.Pos(), g[0], g[1]) {
					return true // runs on its own goroutine, not under the caller's lock
				}
			}
			for _, reg := range regions {
				if !posWithin(call.Pos(), reg.lo, reg.hi) {
					continue
				}
				if desc := slowCallDesc(pass, call); desc != "" {
					pass.Reportf(call.Pos(), "%s called while %s is held in %s; move slow/blocking work outside the critical section", desc, reg.key, fb.Name)
				}
				break
			}
			return true
		})
	}
}

type lockRegion struct {
	key    string // rendered lock expression, e.g. "s.mu"
	lo, hi token.Pos
}

// lockRegions finds Lock/RLock calls on sync mutexes and pairs each
// with its Unlock: an explicit Unlock bounds the region; `defer
// Unlock()` extends it to the end of the function.
func lockRegions(pass *Pass, fb funcBody) []lockRegion {
	type ev struct {
		pos      token.Pos
		key      string
		lock     bool
		deferred bool
	}
	var evs []ev
	deferredCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(fb.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferredCalls[d.Call] = true
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		deferred := deferredCalls[call]
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		isLock := name == "Lock" || name == "RLock"
		isUnlock := name == "Unlock" || name == "RUnlock"
		if !isLock && !isUnlock {
			return true
		}
		t := pass.TypeOf(sel.X)
		if t == nil || !(namedTypePath(t, "sync", "Mutex") || namedTypePath(t, "sync", "RWMutex")) {
			return true
		}
		evs = append(evs, ev{pos: call.Pos(), key: exprText(sel.X), lock: isLock, deferred: deferred})
		return true
	})
	var regions []lockRegion
	open := make(map[string]token.Pos)
	for _, e := range evs {
		switch {
		case e.lock:
			if _, ok := open[e.key]; !ok {
				open[e.key] = e.pos
			}
		case e.deferred:
			// defer Unlock: the lock is held to the end of the function.
			if lo, ok := open[e.key]; ok {
				regions = append(regions, lockRegion{key: e.key, lo: lo, hi: fb.Body.End()})
				delete(open, e.key)
			}
		default:
			if lo, ok := open[e.key]; ok {
				regions = append(regions, lockRegion{key: e.key, lo: lo, hi: e.pos})
				delete(open, e.key)
			}
		}
	}
	// Lock with no visible Unlock (e.g. handed to a helper): treat as
	// held to the end of the function. Sorted so diagnostics are
	// deterministic — this linter eats its own dog food.
	keys := make([]string, 0, len(open))
	for key := range open {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		regions = append(regions, lockRegion{key: key, lo: open[key], hi: fb.Body.End()})
	}
	return regions
}

// goStmtRanges returns the position ranges of `go` statement bodies.
func goStmtRanges(body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			out = append(out, [2]token.Pos{g.Call.Pos(), g.Call.End()})
		}
		return true
	})
	return out
}

// slowCallDesc classifies a call as slow/blocking, returning a
// human-readable description or "".
func slowCallDesc(pass *Pass, call *ast.CallExpr) string {
	obj := calleeOf(pass.Pkg.Info, call)
	if obj == nil {
		return ""
	}
	// Kernel and store entry points from this module, by package name.
	if inModulePkg(pass.Module, obj) && obj.Pkg().Name() != pass.Pkg.Name &&
		slowModulePkgs[obj.Pkg().Name()] && ast.IsExported(obj.Name()) {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	if stdlibFunc(obj, "time", "Sleep") {
		return "time.Sleep"
	}
	if pkg := objPkgPath(obj); pkg == "net/http" || pkg == "net" {
		switch obj.Name() {
		case "Get", "Post", "PostForm", "Head", "Do", "Dial", "DialTimeout", "DialTCP", "Listen", "ListenAndServe", "ListenAndServeTLS":
			return pkg + "." + obj.Name()
		}
	}
	return ""
}

func objPkgPath(obj types.Object) string {
	if p := obj.Pkg(); p != nil {
		return p.Path()
	}
	return ""
}
