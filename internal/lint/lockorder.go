package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// LockOrder derives the module's global mutex acquisition-order graph
// and machine-checks it. The serving path (snapshot readers, tenant
// router) and the maintenance path (pipeline, shard watchers) run
// concurrently and share half a dozen mutexes; a deadlock between them
// is an availability bug the race detector cannot see unless the
// schedule happens to interleave. The analyzer:
//
//   - computes, for every function, the spans during which each mutex
//     is held (per goroutine context: a `go func(){...}` body pairs
//     its own lock events);
//   - records an edge A -> B whenever B is acquired while A is held —
//     directly, or anywhere down the synchronous call graph (interface
//     dispatch resolved conservatively; `go`-launched work excluded,
//     since it runs on another goroutine);
//   - reports every cycle in the resulting graph (a 2-cycle is exactly
//     an inconsistent pairwise ordering), every re-acquisition of a
//     mutex already held (self-deadlock; two RLocks are exempt), and
//     every edge that contradicts the canonical order table below.
//
// The derived graph is printed by `midas-lint -lockgraph` and embedded
// in the midas-lint/2 JSON report, so the documented order in
// docs/STATIC_ANALYSIS.md stays machine-checked.
var LockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "mutex acquisition-order graph must stay acyclic and respect the documented canonical order",
	RunModule: runLockOrder,
}

// canonicalLockOrder is the documented module-wide acquisition order:
// a lock may only be acquired while holding locks that appear EARLIER
// in this list. Locks not listed are unranked — the cycle check still
// covers them, the pairwise-order check does not.
//
// Keep docs/STATIC_ANALYSIS.md ("Canonical lock order") in sync.
var canonicalLockOrder = []string{
	"tenant.Registry.mu",         // registry membership — outermost, serving entry
	"tenant.Shard.metaMu",        // per-shard metadata
	"tenant.Budget.mu",           // shared worker budget (leaf of the tenant layer)
	"snapshot.Pipeline.mu",       // maintenance pipeline state
	"snapshot.Pipeline.poisonMu", // poison bookkeeping, taken inside pipeline sections
	"telemetry.Registry.mu",      // metric registry membership
	"telemetry.CounterVec.mu",    // per-vector sample maps...
	"telemetry.GaugeVec.mu",
	"telemetry.HistogramVec.mu",
	"telemetry.funcVec.mu",
	"catapult.Metrics.mu", // selection metrics cache
	"parallel.Cache.mu",   // memoized kernel results
	"faultinject.mu",      // failpoint arming table
	"store.Journal.mu",    // durability journal
	"vfs.Sim.mu",          // simulated filesystem — innermost (under store I/O)
}

// LockGraph is the derived acquisition-order graph, kept on the Module
// for -lockgraph printing and the JSON report.
type LockGraph struct {
	Locks []LockGraphNode
	Edges []LockGraphEdge
}

// LockGraphNode is one mutex class (one field or variable declaration).
type LockGraphNode struct {
	Display string
	// Pos locates the declaration.
	Pos token.Position
}

// LockGraphEdge records "To acquired while From held", with one
// witness site and, for call-graph edges, the call path that reaches
// the inner acquisition.
type LockGraphEdge struct {
	From, To string
	// Witness is the source location ("file:line") of the inner
	// acquisition or the call that leads to it, inside the function
	// holding From.
	Witness string
	// Via is the module call path for indirect edges, "" when the
	// inner lock is taken directly in the same function.
	Via string
}

func runLockOrder(m *Module, report func(Diagnostic)) {
	g := m.CallGraph()
	lockSums := g.LockSummaries()

	type edgeKey struct{ from, to token.Pos }
	type edgeInfo struct {
		from, to stateClass
		witness  token.Pos
		via      string
	}
	edges := make(map[edgeKey]edgeInfo)
	classes := make(map[token.Pos]stateClass)
	addEdge := func(from, to stateClass, witness token.Pos, via string) {
		classes[from.ID] = from
		classes[to.ID] = to
		k := edgeKey{from.ID, to.ID}
		if _, ok := edges[k]; !ok {
			edges[k] = edgeInfo{from: from, to: to, witness: witness, via: via}
		}
	}

	for _, id := range g.IDs {
		n := g.Nodes[id]
		if n.Test {
			continue
		}
		regions := heldRegions(n)
		if len(regions) == 0 {
			continue
		}
		evs := mutexEvents(n.Pkg, n.Decl.Body)
		for ri := range regions {
			r := &regions[ri]
			classes[r.class.ID] = r.class
			// Direct nested acquisitions inside the region.
			for _, ev := range evs {
				if !ev.lock || ev.pos == r.lo || !r.contains(n, ev.pos) {
					continue
				}
				if ev.class.ID == r.class.ID {
					if ev.rlock && r.rlock {
						continue // two read locks; the writer-starvation case is a -race job
					}
					report(Diagnostic{
						Analyzer: "lockorder",
						Position: m.Fset.Position(ev.pos),
						Message: fmt.Sprintf("%s acquired again while already held in %s; this self-deadlocks",
							ev.expr, n.Name),
					})
					continue
				}
				addEdge(r.class, ev.class, ev.pos, "")
			}
			// Acquisitions reached through synchronous calls made while
			// the region's lock is held.
			for _, cs := range n.Calls {
				if cs.GoCall || !r.contains(n, cs.Pos) {
					continue
				}
				for _, callee := range cs.SyncTargets() {
					for _, lid := range sortedPosKeys(lockSums[callee]) {
						lr := lockSums[callee][lid]
						via := g.Nodes[callee].Name
						if lr.Via != "" {
							via = via + " -> " + lr.Via
						}
						if lr.Class.ID == r.class.ID {
							if r.rlock && lr.Rlock {
								continue
							}
							report(Diagnostic{
								Analyzer: "lockorder",
								Position: m.Fset.Position(cs.Pos),
								Message: fmt.Sprintf("%s may be acquired again via %s while already held in %s; this self-deadlocks",
									r.expr, via, n.Name),
							})
							continue
						}
						addEdge(r.class, lr.Class, cs.Pos, via)
					}
				}
			}
		}
	}

	// Materialize the graph deterministically.
	lg := &LockGraph{}
	classIDs := sortedClassIDs(classes)
	for _, cid := range classIDs {
		c := classes[cid]
		lg.Locks = append(lg.Locks, LockGraphNode{Display: c.Display, Pos: m.Fset.Position(cid)})
	}
	edgeKeys := make([]edgeKey, 0, len(edges))
	for k := range edges {
		edgeKeys = append(edgeKeys, k)
	}
	sort.Slice(edgeKeys, func(i, j int) bool {
		a, b := edgeKeys[i], edgeKeys[j]
		if a.from != b.from {
			return a.from < b.from
		}
		return a.to < b.to
	})
	for _, k := range edgeKeys {
		e := edges[k]
		lg.Edges = append(lg.Edges, LockGraphEdge{
			From:    e.from.Display,
			To:      e.to.Display,
			Witness: describeFuncPos(m, e.witness),
			Via:     e.via,
		})
	}
	m.lockGraph = lg

	// Cycles: any strongly connected component with more than one lock
	// (a 2-cycle is an inconsistent pairwise order, longer ones a
	// deadlock-capable ring).
	succ := make(map[token.Pos][]token.Pos)
	for _, k := range edgeKeys {
		succ[k.from] = append(succ[k.from], k.to)
	}
	for _, scc := range tarjanSCC(classIDs, succ) {
		if len(scc) < 2 {
			continue
		}
		names := make([]string, len(scc))
		var witness token.Pos
		for i, cid := range scc {
			names[i] = classes[cid].Display
		}
		sort.Strings(names)
		var details []string
		for _, k := range edgeKeys {
			if inPosSet(scc, k.from) && inPosSet(scc, k.to) {
				e := edges[k]
				if witness == token.NoPos || e.witness < witness {
					witness = e.witness
				}
				d := fmt.Sprintf("%s -> %s at %s", e.from.Display, e.to.Display, describeFuncPos(m, e.witness))
				if e.via != "" {
					d += " via " + e.via
				}
				details = append(details, d)
			}
		}
		report(Diagnostic{
			Analyzer: "lockorder",
			Position: m.Fset.Position(witness),
			Message: fmt.Sprintf("lock-order cycle between %s (potential deadlock): %s",
				strings.Join(names, ", "), strings.Join(details, "; ")),
		})
	}

	// Canonical order: every edge whose endpoints are both ranked must
	// point forward in the table.
	rank := make(map[string]int, len(canonicalLockOrder))
	for i, name := range canonicalLockOrder {
		rank[name] = i + 1
	}
	for _, k := range edgeKeys {
		e := edges[k]
		rf, okF := rank[e.from.Display]
		rt, okT := rank[e.to.Display]
		if okF && okT && rf >= rt {
			msg := fmt.Sprintf("%s acquired while %s is held, against the canonical lock order (%s ranks before %s)",
				e.to.Display, e.from.Display, e.to.Display, e.from.Display)
			if e.via != "" {
				msg += " via " + e.via
			}
			report(Diagnostic{
				Analyzer: "lockorder",
				Position: m.Fset.Position(e.witness),
				Message:  msg,
			})
		}
	}
}

// LockGraph returns the acquisition-order graph derived by the last
// lockorder run over this module, or nil.
func (m *Module) LockGraph() *LockGraph { return m.lockGraph }

func sortedPosKeys[V any](m map[token.Pos]V) []token.Pos {
	out := make([]token.Pos, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedClassIDs(m map[token.Pos]stateClass) []token.Pos {
	out := make([]token.Pos, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func inPosSet(s []token.Pos, p token.Pos) bool {
	for _, v := range s {
		if v == p {
			return true
		}
	}
	return false
}

// tarjanSCC computes strongly connected components over the given
// nodes, returned in a deterministic order with each component sorted.
func tarjanSCC(nodes []token.Pos, succ map[token.Pos][]token.Pos) [][]token.Pos {
	index := make(map[token.Pos]int)
	low := make(map[token.Pos]int)
	onStack := make(map[token.Pos]bool)
	var stack []token.Pos
	var sccs [][]token.Pos
	next := 0

	var strongconnect func(v token.Pos)
	strongconnect = func(v token.Pos) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []token.Pos
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Slice(scc, func(i, j int) bool { return scc[i] < scc[j] })
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}
