package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapDeterminism flags `range` over a map whose body has an
// order-dependent effect: appending to a slice that is never sorted
// afterwards in the same function, building a string, writing to an
// io.Writer / hash / encoder, or accumulating a float. Go randomizes
// map iteration order, so any of these makes canonical codes, state
// bundles, telemetry renders or selection scores differ run to run —
// exactly the class of bug that breaks bundle checksums and golden
// tests. Fix by iterating sorted keys or sorting the collected slice.
//
// It also enforces the ordered fan-in rule of internal/parallel on
// hand-rolled fan-outs: `range` over a channel that appends to (or
// accumulates into) outer state merges worker results in completion
// order, which varies with scheduling. Fan-outs must reduce in
// submission order — write into index-addressed slots (parallel.Do /
// parallel.Map) or sort the merged slice afterwards.
//
// Test files are skipped: nondeterministic assertions surface as flaky
// tests and are caught by `go test -count=2`.
var MapDeterminism = &Analyzer{
	Name: "mapdeterminism",
	Doc:  "range over a map or result channel must not have order-dependent effects (append without sort, string build, writer/hash/encoder writes, float accumulation)",
	Run:  runMapDeterminism,
}

func runMapDeterminism(pass *Pass) {
	if pass.Pkg.ForTest {
		return
	}
	for _, fb := range funcBodies(pass.Pkg) {
		if pass.Pkg.IsTestFile(fb.File) {
			continue
		}
		fb := fb
		ast.Inspect(fb.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			switch {
			case isMapType(t):
				checkMapRangeBody(pass, fb, rs)
			case isChanType(t):
				checkChanRangeBody(pass, fb, rs)
			}
			return true
		})
	}
}

func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isChanType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// checkChanRangeBody flags unordered fan-in merges: appending to (or
// accumulating a float/string into) state declared outside a
// range-over-channel loop. Channel receives arrive in worker completion
// order, so the merged result depends on scheduling unless the slice is
// sorted afterwards or results are written to index-addressed slots.
func checkChanRangeBody(pass *Pass, fb funcBody, rs *ast.RangeStmt) {
	info := pass.Pkg.Info
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			switch v.Tok {
			case token.ADD_ASSIGN:
				for _, lhs := range v.Lhs {
					t := pass.TypeOf(lhs)
					if t == nil {
						continue
					}
					obj := rootIdentObj(info, lhs)
					if obj == nil || declaredWithin(obj, rs) {
						continue
					}
					basic, ok := t.Underlying().(*types.Basic)
					if !ok {
						continue
					}
					switch {
					case basic.Info()&types.IsString != 0:
						pass.Reportf(v.Pos(), "string built up in channel arrival order of %s; completion order varies with scheduling — reduce in submission order (ordered fan-in)", exprText(rs.X))
					case basic.Kind() == types.Float32 || basic.Kind() == types.Float64:
						pass.Reportf(v.Pos(), "float accumulated in channel arrival order of %s; float addition is not associative, so the sum depends on completion order — reduce in submission order (ordered fan-in)", exprText(rs.X))
					}
				}
			case token.ASSIGN, token.DEFINE:
				for i, rhs := range v.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || !isBuiltinAppend(info, call) || len(call.Args) == 0 {
						continue
					}
					target := v.Lhs[min(i, len(v.Lhs)-1)]
					obj := rootIdentObj(info, target)
					if obj == nil || declaredWithin(obj, rs) {
						continue
					}
					if indexAddressedAppend(call) {
						continue
					}
					if sortedAfter(pass, fb, obj, rs.End()) {
						continue
					}
					pass.Reportf(v.Pos(), "%s collects fan-out results in channel arrival order of %s and is never sorted in %s; reduce in submission order (ordered fan-in) — use index-addressed slots (parallel.Do/Map) or sort the merge", obj.Name(), exprText(rs.X), fb.Name)
				}
			}
		}
		return true
	})
}

// indexAddressedAppend reports the benign slot pattern: the appended
// value is taken from an index carried on the received item itself
// (append(out, slots[it.idx])), which already fixes the order. Only the
// plain `append(dst, receivedValue)` shape is unordered.
func indexAddressedAppend(call *ast.CallExpr) bool {
	for _, arg := range call.Args[1:] {
		if _, ok := ast.Unparen(arg).(*ast.IndexExpr); !ok {
			return false
		}
	}
	return len(call.Args) > 1
}

func checkMapRangeBody(pass *Pass, fb funcBody, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false // has its own execution time; analyzed separately
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, fb, rs, v)
		case *ast.CallExpr:
			checkMapRangeCall(pass, rs, v)
		}
		return true
	})
}

// checkMapRangeAssign flags string builds, float accumulation and
// unsorted append collection inside a map-range body.
func checkMapRangeAssign(pass *Pass, fb funcBody, rs *ast.RangeStmt, as *ast.AssignStmt) {
	info := pass.Pkg.Info
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			t := pass.TypeOf(lhs)
			if t == nil {
				continue
			}
			obj := rootIdentObj(info, lhs)
			if obj == nil || declaredWithin(obj, rs) {
				continue // loop-local accumulation dies with the iteration
			}
			basic, ok := t.Underlying().(*types.Basic)
			if !ok {
				continue
			}
			switch {
			case basic.Info()&types.IsString != 0:
				pass.Reportf(as.Pos(), "string built up across map iteration of %s; map order is random — iterate sorted keys", exprText(rs.X))
			case basic.Kind() == types.Float32 || basic.Kind() == types.Float64:
				pass.Reportf(as.Pos(), "float accumulated across map iteration of %s; float addition is not associative, so the result depends on map order — iterate sorted keys", exprText(rs.X))
			}
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(info, call) || len(call.Args) == 0 {
				continue
			}
			// The canonical collect idiom: keys = append(keys, k).
			// Fine when the slice is sorted later in the same function.
			target := as.Lhs[min(i, len(as.Lhs)-1)]
			obj := rootIdentObj(info, target)
			if obj == nil || declaredWithin(obj, rs) {
				continue
			}
			if sortedAfter(pass, fb, obj, rs.End()) {
				continue
			}
			pass.Reportf(as.Pos(), "%s collects values in map iteration order of %s and is never sorted in %s; sort it before use or iterate sorted keys", obj.Name(), exprText(rs.X), fb.Name)
		}
	}
}

// checkMapRangeCall flags direct writes to writers, hashes, string
// builders and encoders inside a map-range body — those emit bytes in
// map order with no later chance to sort.
func checkMapRangeCall(pass *Pass, rs *ast.RangeStmt, call *ast.CallExpr) {
	info := pass.Pkg.Info
	// fmt.Fprint* / io.WriteString with a writer first argument.
	if obj := calleeOf(info, call); obj != nil {
		if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil {
			name := fn.Name()
			if fn.Pkg().Path() == "fmt" && (name == "Fprintf" || name == "Fprintln" || name == "Fprint") ||
				fn.Pkg().Path() == "io" && name == "WriteString" {
				pass.Reportf(call.Pos(), "%s.%s writes inside map iteration of %s; output order follows random map order — iterate sorted keys", fn.Pkg().Name(), name, exprText(rs.X))
				return
			}
		}
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv := pass.TypeOf(sel.X)
	if recv == nil {
		return
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		if implementsWriter(recv) || namedTypePath(recv, "strings", "Builder") {
			pass.Reportf(call.Pos(), "%s.%s inside map iteration of %s; bytes are emitted in random map order — iterate sorted keys", exprText(sel.X), sel.Sel.Name, exprText(rs.X))
		}
	case "Encode":
		if namedTypePath(recv, "encoding/json", "Encoder") || namedTypePath(recv, "encoding/gob", "Encoder") {
			pass.Reportf(call.Pos(), "%s.Encode inside map iteration of %s; records are encoded in random map order — iterate sorted keys", exprText(sel.X), exprText(rs.X))
		}
	case "Sum", "Sum32", "Sum64":
		// Reading a hash inside a map loop is fine; writing is caught
		// by the Write case above.
	}
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() != token.NoPos && posWithin(obj.Pos(), node.Pos(), node.End())
}

// sortedAfter reports whether obj is passed to a sorting call after pos
// in the same function: anything from package sort or slices, or a
// helper whose name starts with "sort" (the sortInts-style local
// wrappers common in this repo).
func sortedAfter(pass *Pass, fb funcBody, obj types.Object, pos token.Pos) bool {
	info := pass.Pkg.Info
	found := false
	ast.Inspect(fb.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		callee := calleeOf(info, call)
		fn, ok := callee.(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		if pkg != "sort" && pkg != "slices" && !sortLikeName(fn.Name()) {
			return true
		}
		for _, arg := range call.Args {
			if rootIdentObj(info, arg) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// sortLikeName matches local sorting helpers: sortInts, SortByWeight,
// canonSort, ...
func sortLikeName(name string) bool {
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "sort") || strings.HasSuffix(lower, "sort") || strings.HasSuffix(lower, "sorted")
}
