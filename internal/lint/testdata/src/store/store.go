// Package store mirrors the repo's durability layer by name: inside a
// package called "store", every direct os file-I/O call bypasses the
// vfs seam — the crash-consistency sweep replays vfs op traces, so an
// os call here is invisible to the model checker and is a violation.
package store

import "os"

func saveBad(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want "os.WriteFile in saveBad bypasses the vfs seam"
}

func createBad(path string) error {
	f, err := os.Create(path) // want "os.Create in createBad bypasses the vfs seam"
	if err != nil {
		return err
	}
	return f.Close()
}

func loadBad(path string) ([]byte, error) {
	return os.ReadFile(path) // want "os.ReadFile in loadBad bypasses the vfs seam"
}

func swapBad(tmp, dst string) error {
	f, err := os.OpenFile(tmp, os.O_WRONLY, 0o644) // want "os.OpenFile in swapBad bypasses the vfs seam"
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// Fsynced, so the rename rule is satisfied — but the call still
	// dodges the seam.
	return os.Rename(tmp, dst) // want "os.Rename in swapBad bypasses the vfs seam"
}
