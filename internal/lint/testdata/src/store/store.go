// Package store mirrors the repo's durability layer by name: inside a
// package called "store", every raw file write bypasses the
// fsync/checksum discipline and is a violation.
package store

import "os"

func saveBad(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want "os.WriteFile in the store package"
}

func createBad(path string) error {
	f, err := os.Create(path) // want "os.Create in the store package"
	if err != nil {
		return err
	}
	return f.Close()
}

// WriteAtomic is the blessed path: temp file, fsync, rename. It must
// not be flagged.
func WriteAtomic(path string, data []byte) error {
	f, err := os.CreateTemp("", "atomic-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), path)
}
