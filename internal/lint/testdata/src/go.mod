module example.com/lintdata

go 1.22
