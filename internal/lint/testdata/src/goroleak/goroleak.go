// Package goroleak seeds goroutine-leak violations: launches whose
// bodies loop forever with no context, closable channel, or joined
// WaitGroup in sight — next to every accepted stop-path shape, which
// must stay silent.
package goroleak

import (
	"context"
	"sync"
)

// leakForever is the canonical leak: an unbounded loop nothing stops.
func leakForever() {
	go func() { // want "goroutine has no provable stop path"
		n := 0
		for {
			n++
		}
	}()
}

// ticker leaks through a named method: the loop in loop() has no exit
// an owner controls.
type ticker struct {
	n int
}

func (t *ticker) Start() {
	go t.loop() // want "goroutine has no provable stop path"
}

func (t *ticker) loop() {
	for {
		t.n++
	}
}

// watchCtx is stopped by its context: accepted.
func watchCtx(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
	}()
}

// owner's stop channel, closed by Stop: accepted.
type worker struct {
	stop chan struct{}
	n    int
}

func (w *worker) Start() {
	go func() {
		for {
			select {
			case <-w.stop:
				return
			default:
				w.n++
			}
		}
	}()
}

func (w *worker) Stop() { close(w.stop) }

// runLoop receives its stop channel as a parameter; the launcher binds
// it to the owner's channel, which Shutdown closes: accepted.
type pump struct {
	quit chan struct{}
	n    int
}

func (p *pump) Start() {
	go runLoop(p.quit)
}

func runLoop(quit <-chan struct{}) {
	for {
		select {
		case <-quit:
			return
		default:
		}
	}
}

func (p *pump) Shutdown() { close(p.quit) }

// fanOut joins its workers in the launching function itself
// (structured concurrency): accepted.
func fanOut(items []int, f func(int)) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				f(it)
			}
		}(it)
	}
	wg.Wait()
}

// litOwner launches a literal held in a local variable; the range over
// the owner's jobs channel, closed by Close, is the stop path:
// accepted.
type litOwner struct {
	jobs chan int
}

func (o *litOwner) Start(f func(int)) {
	run := func() {
		for j := range o.jobs {
			f(j)
		}
	}
	go run()
}

func (o *litOwner) Close() { close(o.jobs) }

// fireAndForget terminates by running off the end — no loop at all:
// accepted.
func fireAndForget(f func()) {
	go func() {
		f()
	}()
}
