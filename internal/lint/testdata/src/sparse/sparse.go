// Package sparse is the golden-test stand-in for the real
// internal/sparse package: the posting matrix with its mutators. It is
// the type's home, so indexdelta never flags this package.
package sparse

// Matrix is a string-row × int-column counting matrix.
type Matrix struct {
	rows map[string]map[int]int
}

// New returns an empty matrix.
func New() *Matrix {
	return &Matrix{rows: map[string]map[int]int{}}
}

// Set writes one cell — a sanctioned mutation here in the type's home.
func (m *Matrix) Set(row string, col, value int) {
	if m.rows[row] == nil {
		m.rows[row] = map[int]int{}
	}
	m.rows[row][col] = value
}

// Incr adjusts one cell by delta.
func (m *Matrix) Incr(row string, col, delta int) {
	m.Set(row, col, m.Get(row, col)+delta)
}

// Get reads one cell.
func (m *Matrix) Get(row string, col int) int { return m.rows[row][col] }

// DeleteRow drops an entire feature row.
func (m *Matrix) DeleteRow(row string) { delete(m.rows, row) }

// DeleteCol drops a graph column from every row.
func (m *Matrix) DeleteCol(col int) {
	for _, r := range m.rows {
		delete(r, col)
	}
}

// Col returns a copy of one column.
func (m *Matrix) Col(col int) map[string]int {
	out := map[string]int{}
	for row, cells := range m.rows {
		if v, ok := cells[col]; ok {
			out[row] = v
		}
	}
	return out
}
