// Package vfs mirrors the seam's production passthrough by name: it is
// the one place allowed to call os directly — including renames whose
// durability the caller controls via SyncDir. Nothing here may be
// flagged.
package vfs

import "os"

func passthroughRename(oldpath, newpath string) error {
	return os.Rename(oldpath, newpath)
}

func passthroughWrite(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
