// Package parmerge seeds ordered fan-in violations: hand-rolled
// fan-outs whose results are merged in channel arrival (completion)
// order instead of submission order.
package parmerge

import (
	"sort"
	"sync"
)

type result struct {
	idx   int
	score float64
}

// mergeUnordered is the seeded violation: worker results are appended
// as they arrive, so the output order depends on goroutine scheduling.
func mergeUnordered(tasks []int, score func(int) float64) []result {
	out := make(chan result, len(tasks))
	var wg sync.WaitGroup
	for i, t := range tasks {
		wg.Add(1)
		go func(i, t int) {
			defer wg.Done()
			out <- result{idx: i, score: score(t)}
		}(i, t)
	}
	go func() { wg.Wait(); close(out) }()
	var merged []result
	for r := range out {
		merged = append(merged, r) // want "merged collects fan-out results in channel arrival order of out"
	}
	return merged
}

// sumUnordered accumulates a float in arrival order; float addition is
// not associative, so the sum varies run to run.
func sumUnordered(out chan float64) float64 {
	total := 0.0
	for v := range out {
		total += v // want "float accumulated in channel arrival order of out"
	}
	return total
}

// mergeSortedOK merges in arrival order but normalises afterwards, so
// the result is deterministic and must not be flagged.
func mergeSortedOK(out chan result) []result {
	var merged []result
	for r := range out {
		merged = append(merged, r)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].idx < merged[j].idx })
	return merged
}

// mergeSlotsOK drains the channel into index-addressed slots and then
// reduces the slots in submission order (ordered fan-in); the final
// append reads an indexed slot, which is the benign shape.
func mergeSlotsOK(n int, out chan result) []result {
	slots := make([]result, n)
	for r := range out {
		slots[r.idx] = r
	}
	var merged []result
	for i := 0; i < n; i++ {
		merged = append(merged, slots[i])
	}
	return merged
}
