// Package errwrapbad seeds errwrap violations: sentinel comparisons
// with == and error arguments formatted with %v.
package errwrapbad

import (
	"errors"
	"fmt"
)

var (
	ErrGone = errors.New("gone")
	ErrBusy = errors.New("busy")
)

func classify(err error) string {
	if err == ErrGone { // want "error compared to sentinel ErrGone with =="
		return "gone"
	}
	if ErrBusy != err { // want "error compared to sentinel ErrBusy with !="
		return "other"
	}
	return "busy"
}

func wrap(err error) error {
	return fmt.Errorf("maintain: %v", err) // want "error argument formatted with %v in fmt.Errorf"
}

func wrapIndexed(id int, err error) error {
	return fmt.Errorf("graph %d: %s", id, err) // want "error argument formatted with %s in fmt.Errorf"
}

// wrapOK uses the blessed forms and must not be flagged.
func wrapOK(err error) error {
	if errors.Is(err, ErrGone) {
		return err
	}
	if err == nil { // nil comparison is not a sentinel comparison
		return nil
	}
	return fmt.Errorf("maintain: %w", err)
}
