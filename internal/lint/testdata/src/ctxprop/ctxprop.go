// Package ctxprop seeds ctxpropagation violations: functions holding a
// ctx that drop it on the floor when calling cancellable kernels.
package ctxprop

import (
	"context"

	"example.com/lintdata/iso"
)

type Engine struct{}

func (e *Engine) Maintain() {}

func (e *Engine) MaintainContext(ctx context.Context) { _ = ctx }

func run(ctx context.Context, eng *Engine) int {
	eng.Maintain()           // want "Engine.Maintain ignores ctx.*MaintainContext exists"
	n := iso.MCCS(10)        // want "iso.MCCS ignores ctx.*iso.MCCSWithCancel exists"
	_ = context.Background() // want "context.Background.. inside run, which already has ctx"
	return n
}

// runOK threads cancellation everywhere and must not be flagged.
func runOK(ctx context.Context, eng *Engine) int {
	eng.MaintainContext(ctx)
	return iso.MCCSWithCancel(10, func() bool { return ctx.Err() != nil })
}

// nested function literals with their own ctx are analyzed on their
// own; this one inherits the outer ctx and is still a violation.
func runNested(ctx context.Context) {
	f := func() {
		iso.MCCS(5) // want "iso.MCCS ignores ctx"
	}
	f()
}

// noCtx has no context parameter, so nothing to propagate.
func noCtx() int { return iso.MCCS(10) }
