// Package indexdelta seeds the PR 10 delta-network hygiene findings: a
// consumer that writes posting matrices directly instead of going
// through the index delta API, and a delta application whose effect
// depends on map iteration order.
package indexdelta

import (
	"sort"

	"example.com/lintdata/sparse"
)

// applyDirect bypasses the delta API: every one of these mutators
// changes a posting list without the delta network hearing about it.
func applyDirect(tg *sparse.Matrix, feature string, graphID int) {
	tg.Set(feature, graphID, 1)  // want "writes a posting matrix outside the index layer"
	tg.Incr(feature, graphID, 2) // want "writes a posting matrix outside the index layer"
	tg.DeleteRow(feature)        // want "writes a posting matrix outside the index layer"
	tg.DeleteCol(graphID)        // want "writes a posting matrix outside the index layer"
	fresh := sparse.New()
	fresh.Set(feature, graphID, 1) // want "writes a posting matrix outside the index layer"
	_ = fresh
}

// coverDeltaOrderBad applies cover-set deltas by collecting the touched
// graph IDs in map iteration order — the downstream swap scan then
// visits them in a different order each run.
func coverDeltaOrderBad(added map[int]struct{}) []int {
	var ids []int
	for id := range added {
		ids = append(ids, id) // want "ids collects values in map iteration order of added"
	}
	return ids
}

// coverDeltaOrderOK is the sanctioned shape: collect, then sort, then
// apply.
func coverDeltaOrderOK(added map[int]struct{}) []int {
	var ids []int
	for id := range added {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// reads are always fine: profiles and candidacy only Get and Col.
func readProfile(tp *sparse.Matrix, patternID int) int {
	total := 0
	col := tp.Col(patternID)
	var keys []string
	for k := range col {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		total += tp.Get(k, patternID)
	}
	return total
}
