// Package failpoints seeds the registryhygiene failpoint check: the
// production path declares one failpoint; tests may only arm declared
// names.
package failpoints

import (
	"errors"

	"example.com/lintdata/faultinject"
)

var errTorn = errors.New("injected: torn write")

// Save is the production path whose failpoint tests may arm.
func Save() error {
	if faultinject.Hit("failpoints/save") {
		return errTorn
	}
	return nil
}
