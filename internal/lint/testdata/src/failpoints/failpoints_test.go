package failpoints

import (
	"testing"

	"example.com/lintdata/faultinject"
)

func TestSaveFails(t *testing.T) {
	faultinject.Enable("failpoints/save")
	defer faultinject.Disable("failpoints/save")
	if err := Save(); err == nil {
		t.Fatal("want injected failure")
	}
	faultinject.Enable("failpoints/ghost") // want "failpoint .failpoints/ghost. is armed in a test but no production code calls"
}
