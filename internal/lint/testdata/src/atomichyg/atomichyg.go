// Package atomichyg seeds atomic-hygiene violations: variables that
// mix sync/atomic access with plain reads and writes, and atomic
// wrapper values copied instead of used through their methods.
package atomichyg

import "sync/atomic"

type counter struct {
	// n is accessed atomically in incr: every other access must be
	// atomic too.
	n int64
	// plain is never touched by sync/atomic; ordinary access is fine.
	plain int64
}

func (c *counter) incr() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) readRacy() int64 {
	return c.n // want "atomichyg.counter.n is accessed with sync/atomic elsewhere"
}

func (c *counter) writeRacy() {
	c.n = 0 // want "atomichyg.counter.n is accessed with sync/atomic elsewhere"
}

func (c *counter) readAtomic() int64 {
	return atomic.LoadInt64(&c.n)
}

func (c *counter) plainOK() int64 {
	c.plain++
	return c.plain
}

// gauge wraps an atomic value type.
type gauge struct {
	v atomic.Int64
}

func copyGauge(g *gauge) int64 {
	snap := g.v // want `assignment copies a atomic.Int64 value`
	return snap.Load()
}

func passGauge(g *gauge, f func(atomic.Int64)) {
	f(g.v) // want `passing by value copies a atomic.Int64 value`
}

func methodsOK(g *gauge) int64 {
	g.v.Add(2)
	return g.v.Load()
}
