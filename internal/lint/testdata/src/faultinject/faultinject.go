// Package faultinject is a minimal stand-in for the repo's failpoint
// harness: the analyzers match it by package name, so the golden module
// can exercise registryhygiene without importing the real thing.
package faultinject

var enabled = map[string]error{}

// Hit reports whether the named failpoint is armed.
func Hit(name string) bool {
	_, ok := enabled[name]
	return ok
}

// Enable arms a failpoint.
func Enable(name string) { enabled[name] = nil }

// EnableErr arms a failpoint with a specific error.
func EnableErr(name string, err error) { enabled[name] = err }

// Disable disarms a failpoint.
func Disable(name string) { delete(enabled, name) }
