// Package fsync seeds fsyncdiscipline violations: renames that can
// surface unflushed data after a crash.
package fsync

import "os"

func swapBad(tmp, dst string) error {
	return os.Rename(tmp, dst) // want "os.Rename in swapBad without a preceding File.Sync"
}

// swapOK fsyncs before renaming and must not be flagged.
func swapOK(tmp, dst string) error {
	f, err := os.OpenFile(tmp, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, dst)
}
