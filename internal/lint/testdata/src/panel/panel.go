// panel.go is NOT the watcher file, so the seam rule does not apply —
// only the general rename-needs-fsync rule does.
package panel

import "os"

func exportOK(path string, data []byte) error {
	// Plain os file I/O outside watcher.go is allowed.
	return os.WriteFile(path, data, 0o644)
}

func renameBad(tmp, dst string) error {
	return os.Rename(tmp, dst) // want "os.Rename in renameBad without a preceding File.Sync"
}
