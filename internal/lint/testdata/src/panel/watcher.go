// watcher.go is the seam-routed file of the panel package: the spool
// watcher's operations are crash-tested by replaying vfs op traces, so
// direct os file I/O here is invisible to the model checker.
package panel

import "os"

func scanBad(dir string) ([]os.DirEntry, error) {
	return os.ReadDir(dir) // want "os.ReadDir in scanBad bypasses the vfs seam"
}

func parkBad(name string) error {
	return os.Rename(name, name+".failed") // want "os.Rename in parkBad bypasses the vfs seam"
}
