// Package snapuse seeds the snapshotimmutability findings: consumers
// of a published snapshot may read anything but write nothing.
package snapuse

import "example.com/lintdata/snapshot"

func mutate(s *snapshot.Snapshot) {
	s.Quality = 0.5       // want "mutates a published snapshot"
	s.Patterns[0] = 9     // want "mutates a published snapshot"
	s.SVGs[1] += "<svg/>" // want "mutates a published snapshot"
	s.Stats[2].Scov = 1.0 // want "mutates a published snapshot"
	s.Generation++        // want "mutates a published snapshot"
	(*s).Quality = 0.25   // want "mutates a published snapshot"
	// A struct copy still shares the published slices, and the
	// analyzer treats every Snapshot value as published.
	clone := *s
	clone.Patterns[0] = 1 // want "mutates a published snapshot"
	clone.Quality = 0     // want "mutates a published snapshot"
	_ = clone
}

// Reads and writes to caller-owned submission types are legitimate.
func legit(s *snapshot.Snapshot) int {
	b := snapshot.Batch{Name: "ok"}
	b.Name = "renamed" // caller owns the batch until Submit
	total := int(s.Generation)
	for _, p := range s.Patterns {
		total += p
	}
	if len(s.Stats) > 0 {
		total += int(s.Stats[0].Scov)
	}
	local := []int{1, 2, 3}
	local[0] = 4 // unrelated slice writes stay clean
	return total
}
