// Package lockorder seeds lock-ordering violations: an inconsistent
// pairwise acquisition order (the deliberate 2-cycle the acceptance
// test requires), a direct re-acquisition self-deadlock, and one
// reached through a helper call.
package lockorder

import "sync"

// A and B are two independent lock owners; the pair below acquires
// them in both orders, which is exactly the deadlock recipe.
type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

type pair struct {
	a A
	b B
}

// lockAB nests b under a. On its own this just records the edge
// lockorder.A.mu -> lockorder.B.mu; together with lockBA it forms the
// cycle, reported at the earlier of the two witnesses (here).
func (p *pair) lockAB() {
	p.a.mu.Lock()
	defer p.a.mu.Unlock()
	p.b.mu.Lock() // want "lock-order cycle between lockorder.A.mu, lockorder.B.mu"
	p.b.n++
	p.b.mu.Unlock()
}

// lockBA nests a under b: the inconsistent pairwise order.
func (p *pair) lockBA() {
	p.b.mu.Lock()
	defer p.b.mu.Unlock()
	p.a.mu.Lock()
	p.a.n++
	p.a.mu.Unlock()
}

// doubleLock re-acquires a mutex it already holds.
func (a *A) doubleLock() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.mu.Lock() // want "a.mu acquired again while already held in lockorder"
	a.n++
}

// relockViaHelper reaches the re-acquisition through a helper call.
func (b *B) relockViaHelper() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.bump() // want `b.mu may be acquired again via lockorder.\(\*B\).bump while already held`
}

func (b *B) bump() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

// sequential acquisitions — one released before the next — order
// nothing and must stay silent.
func (p *pair) sequentialOK() {
	p.a.mu.Lock()
	p.a.n++
	p.a.mu.Unlock()
	p.b.mu.Lock()
	p.b.n++
	p.b.mu.Unlock()
}

// spawnedOK hands the second acquisition to another goroutine: no
// ordering between the caller's lock and the goroutine's.
func (p *pair) spawnedOK(done chan struct{}) {
	p.a.mu.Lock()
	defer p.a.mu.Unlock()
	go func() {
		p.b.mu.Lock()
		p.b.n++
		p.b.mu.Unlock()
		close(done)
	}()
	p.a.n++
}
