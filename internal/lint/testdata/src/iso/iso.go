// Package iso is a stand-in for the repo's matching kernels: lockscope
// treats its exported entry points as unbounded work, and
// ctxpropagation pairs MCCS with its cancellable sibling.
package iso

// MCCS runs an unbounded search.
func MCCS(budget int) int { return budget }

// MCCSWithCancel is the cancellable variant of MCCS.
func MCCSWithCancel(budget int, cancel func() bool) int {
	if cancel != nil && cancel() {
		return 0
	}
	return budget
}
