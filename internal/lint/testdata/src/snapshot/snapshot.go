// Package snapshot is the golden-test stand-in for the real
// internal/snapshot package: an immutable published view plus the
// mutable submission types that legitimately get written by callers.
package snapshot

// Snapshot is the published read view. Immutable after Publish.
type Snapshot struct {
	Generation uint64
	Quality    float64
	Patterns   []int
	SVGs       []string
	Stats      []Stat
}

// Stat mirrors a per-pattern statistics row.
type Stat struct {
	Scov float64
}

// Batch is submission input, owned by the caller until Submit: writing
// its fields is fine and must not be flagged.
type Batch struct {
	Name string
}

// Build constructs a snapshot; the snapshot package itself may write
// fields freely (pre-publish construction).
func Build(n int) *Snapshot {
	s := &Snapshot{}
	s.Generation = uint64(n)
	s.Patterns = make([]int, n)
	for i := range s.Patterns {
		s.Patterns[i] = i
	}
	return s
}
