package snapshot

import "sync/atomic"

// Handle mirrors the real snapshot.Handle: generation state owned
// exclusively by Publish. atomichygiene pins the publisher invariant
// by package and type name, so this stand-in exercises it.
type Handle struct {
	gen         atomic.Uint64
	publishedAt atomic.Int64
	cur         atomic.Pointer[Snapshot]
}

// Publish is the single writer: advancing gen/publishedAt/cur here is
// the sanctioned path.
func (h *Handle) Publish(s *Snapshot) {
	h.cur.Store(s)
	h.gen.Add(1)
	h.publishedAt.Store(int64(s.Generation))
}

// Current reads are always fine.
func (h *Handle) Current() *Snapshot {
	return h.cur.Load()
}

// Rollback mutates the generation outside Publish — the seeded
// violation.
func (h *Handle) Rollback() {
	h.gen.Store(0) // want `snapshot.Handle.gen mutated outside \(\*Handle\).Publish`
}
