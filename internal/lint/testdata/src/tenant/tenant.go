// Package tenant is the golden-test stand-in for the real
// internal/tenant package: lockscope treats its exported entry points
// (shard cold starts, drains) as unbounded work — a drain checkpoints
// a journal and saves a bundle, which must never run under a mutex.
package tenant

import "example.com/lintdata/snapshot"

// Drain retires a shard: unbounded work (journal checkpoint, bundle
// save, pipeline drain).
func Drain(id string) error { return nil }

// Add cold-starts a shard: unbounded work (bundle load, bootstrap).
func Add(id string) error { return nil }

// internal helpers may call exported siblings under their own locks;
// the same-package exemption keeps registry-internal bookkeeping
// clean. (Exercised from the real package; here Status just reads.)
func Status(s *snapshot.Snapshot) uint64 {
	// Reading a published snapshot is the tenant package's bread and
	// butter and must not trip snapshotimmutability.
	total := s.Generation
	for _, p := range s.Patterns {
		total += uint64(p)
	}
	return total
}
