package tenant

import "sync"

// Registry and Shard mirror the real tenant types closely enough for
// lockorder's canonical table (which matches lock classes by
// pkg.Type.field display name) to apply to them.
type Registry struct {
	mu sync.RWMutex
	n  int
}

type Shard struct {
	metaMu sync.Mutex
	n      int
}

// lockedAdd touches both locks sequentially — never nested, so it
// contributes no ordering edge and stays silent. (A nested
// registry->shard acquisition would be canonical but, combined with
// backwardsRefresh below, would also be a genuine 2-cycle; the real
// registry drains shards outside its lock for exactly that reason.)
func (r *Registry) lockedAdd(s *Shard) {
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
	s.metaMu.Lock()
	s.n++
	s.metaMu.Unlock()
}

// backwardsRefresh grabs the registry lock while holding a shard's
// metaMu: against the documented canonical order.
func (s *Shard) backwardsRefresh(r *Registry) {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	r.mu.Lock() // want "tenant.Registry.mu acquired while tenant.Shard.metaMu is held, against the canonical lock order"
	r.n++
	r.mu.Unlock()
}
