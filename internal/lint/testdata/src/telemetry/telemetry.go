// Package telemetry is a minimal stand-in for the repo's metrics
// registry: registryhygiene matches the Registry type by package name
// and type name, so constructor calls here behave like the real ones.
package telemetry

type Registry struct{}

func NewRegistry() *Registry { return &Registry{} }

type Counter struct{}
type Gauge struct{}
type Histogram struct{}
type CounterVec struct{}
type HistogramVec struct{}

func (r *Registry) NewCounter(name, help string) *Counter { return &Counter{} }

func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {}

func (r *Registry) NewGauge(name, help string) *Gauge { return &Gauge{} }

func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {}

func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	return &Histogram{}
}

func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{}
}

func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{}
}
