// Package mapdet seeds mapdeterminism violations: order-dependent
// effects inside `range` over a map.
package mapdet

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func keyString(m map[string]int) string {
	out := ""
	for k := range m {
		out += k // want "string built up across map iteration of m"
	}
	return out
}

func checksum(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want "float accumulated across map iteration of m"
	}
	return sum
}

func collectBad(m map[int]bool) []int {
	var ids []int
	for id := range m {
		ids = append(ids, id) // want "ids collects values in map iteration order of m"
	}
	return ids
}

// collectOK is the canonical collect-then-sort idiom and must not be
// flagged.
func collectOK(m map[int]bool) []int {
	var ids []int
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// collectHelperOK sorts through a local sort-like helper, which the
// analyzer must also recognize.
func collectHelperOK(m map[int]bool) []int {
	var ids []int
	for id := range m {
		ids = append(ids, id)
	}
	sortInts(ids)
	return ids
}

func sortInts(xs []int) { sort.Ints(xs) }

func dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "fmt.Fprintf writes inside map iteration of m"
	}
}

func render(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "b.WriteString inside map iteration of m"
	}
	return b.String()
}

// loopLocalOK accumulates into a variable declared inside the loop;
// the value dies with each iteration, so order cannot leak out.
func loopLocalOK(m map[string][]float64) int {
	n := 0
	for _, vs := range m {
		s := 0.0
		for _, v := range vs {
			s += v
		}
		if s > 1 {
			n++
		}
	}
	return n
}
