// Package locks seeds lockscope violations: slow or blocking work
// while a sync mutex is held.
package locks

import (
	"sync"
	"time"

	"example.com/lintdata/iso"
)

type server struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func (s *server) sleepHeld() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep called while s.mu is held"
	s.mu.Unlock()
}

func (s *server) kernelHeld() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return iso.MCCS(100) // want "iso.MCCS called while s.mu is held"
}

func (s *server) readHeld() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return iso.MCCS(s.n) // want "iso.MCCS called while s.rw is held"
}

// unlockFirst releases the lock before the slow work and must not be
// flagged.
func (s *server) unlockFirst() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// spawned work runs on its own goroutine, not under the caller's lock.
func (s *server) goroutineOK() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() { time.Sleep(time.Millisecond) }()
	s.n++
}
