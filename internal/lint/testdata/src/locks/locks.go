// Package locks seeds lockscope violations: slow or blocking work
// while a sync mutex is held.
package locks

import (
	"sync"
	"time"

	"example.com/lintdata/iso"
	"example.com/lintdata/tenant"
)

type server struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func (s *server) sleepHeld() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep called while s.mu is held"
	s.mu.Unlock()
}

func (s *server) kernelHeld() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return iso.MCCS(100) // want "iso.MCCS called while s.mu is held"
}

func (s *server) readHeld() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return iso.MCCS(s.n) // want "iso.MCCS called while s.rw is held"
}

// drainHeld holds the routing lock across a shard drain — the exact
// mistake the real registry avoids by detaching under the lock and
// draining outside it.
func (s *server) drainHeld() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return tenant.Drain("aids") // want "tenant.Drain called while s.mu is held"
}

// drainOutside detaches under the lock and drains after releasing it:
// the correct shape, never flagged.
func (s *server) drainOutside() error {
	s.mu.Lock()
	s.n--
	s.mu.Unlock()
	if err := tenant.Add("aids"); err != nil {
		return err
	}
	return tenant.Drain("aids")
}

// unlockFirst releases the lock before the slow work and must not be
// flagged.
func (s *server) unlockFirst() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// spawned work runs on its own goroutine, not under the caller's lock.
func (s *server) goroutineOK() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() { time.Sleep(time.Millisecond) }()
	s.n++
}
