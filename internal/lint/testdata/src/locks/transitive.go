package locks

import (
	"example.com/lintdata/iso"
)

// The call-graph-aware lockscope: slow work hidden behind a helper (or
// an interface) is still slow work under the lock.

// helperHeld runs the kernel through one level of indirection while
// holding the mutex; the syntactic pass cannot see it, the transitive
// pass names the path.
func (s *server) helperHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slowHelper() // want `iso.MCCS reachable via locks.\(\*server\).slowHelper while s.mu is held`
}

func (s *server) slowHelper() {
	s.n = iso.MCCS(s.n)
}

// worker hides the kernel behind an interface; conservative dispatch
// resolution still finds the implementation.
type worker interface {
	Work(n int) int
}

type slowWorker struct{}

func (slowWorker) Work(n int) int { return iso.MCCS(n) }

func (s *server) ifaceHeld(w worker) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return w.Work(s.n) // want `iso.MCCS reachable via locks.\(slowWorker\).Work while s.mu is held`
}

// helperAfterUnlock calls the same helper outside the critical
// section: silent.
func (s *server) helperAfterUnlock() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.slowHelper()
}

// spawnedHelper hands the helper to its own goroutine; it does not run
// under the caller's lock. (The goroutine terminates — no loops — so
// goroleak accepts it too.)
func (s *server) spawnedHelper() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go s.slowHelper()
}
