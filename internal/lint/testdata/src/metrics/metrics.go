// Package metrics seeds the registryhygiene naming checks against the
// stand-in telemetry registry.
package metrics

import "example.com/lintdata/telemetry"

func register(r *telemetry.Registry) {
	r.NewCounter("opsDone_total", "camelCase name")      // want "not snake_case"
	r.NewCounter("requests_count", "counter sans total") // want "must end in _total"
	r.NewGauge("queue_total", "gauge with counter name") // want "must not end in _total"
	r.NewHistogram("latency", "no unit suffix", nil)     // want "needs a unit suffix"
	r.NewCounter("dup_total", "old help")
	r.NewCounter("dup_total", "new help") // want "re-registered with different help text"

	// Clean registrations must not be flagged.
	r.NewCounter("batches_applied_total", "fine")
	r.NewGauge("journal_depth", "fine")
	r.NewHistogram("swap_latency_seconds", "fine", nil)
	r.NewHistogramVec("stage_seconds", "fine", nil, "stage")
	r.NewCounterVec("kernel_steps_total", "fine", "kernel")
}
