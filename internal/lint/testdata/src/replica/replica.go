// Package replica mirrors the replication node's stream/apply
// concurrency: the ship and pull goroutines must carry a provable
// stop path, and applyMu — the serialization point for record
// installs — must not hold slow kernel work the way the real node's
// allowlisted sections are documented to.
package replica

import (
	"context"
	"sync"
	"time"

	"example.com/lintdata/iso"
)

// node mirrors the replication node: one applyMu serializing record
// installs, background ship/pull streams owned through stop+wg.
type node struct {
	applyMu sync.Mutex
	stop    chan struct{}
	wg      sync.WaitGroup
	lsn     int
}

// startShipLeak launches a ship stream nothing can stop: no context,
// no owner-closed channel, no joined WaitGroup — the retry loop would
// outlive the node.
func (n *node) startShipLeak() {
	go n.shipLoop() // want "goroutine has no provable stop path"
}

func (n *node) shipLoop() {
	for {
		n.lsn++
	}
}

// startAckLeak leaks through an inline literal: the ack fan-in loop
// blocks on a channel no owner ever closes.
func (n *node) startAckLeak(acks chan int) {
	go func() { // want "goroutine has no provable stop path"
		for a := range acks {
			n.lsn = a
		}
	}()
}

// startPull is the accepted shape the real pull loop uses: the
// goroutine exits when the owner closes stop, and Stop joins it
// through the WaitGroup.
func (n *node) startPull() {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			select {
			case <-n.stop:
				return
			default:
			}
		}
	}()
}

// Stop closes the stream channels and joins the loops: the owner-side
// half of startPull's proof.
func (n *node) Stop() {
	close(n.stop)
	n.wg.Wait()
}

// watchUpstream is stopped by its context: accepted.
func watchUpstream(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
	}()
}

// applyHeld is the bug the real node's allowlist documents its way
// around: unbounded kernel work inside the apply critical section.
func (n *node) applyHeld() int {
	n.applyMu.Lock()
	defer n.applyMu.Unlock()
	return iso.MCCS(n.lsn) // want "iso.MCCS called while n.applyMu is held"
}

// backoffHeld sleeps out a retry backoff without releasing applyMu,
// stalling every concurrent record install.
func (n *node) backoffHeld() {
	n.applyMu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep called while n.applyMu is held"
	n.applyMu.Unlock()
}

// applyOutside is the accepted shape: the slow work runs before the
// lock, only the cheap install happens under it.
func (n *node) applyOutside(rec int) {
	cost := iso.MCCS(rec)
	n.applyMu.Lock()
	n.lsn += cost
	n.applyMu.Unlock()
}
