package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// AllowEntry is one deliberate exception. A diagnostic is allowed when
// the entry's analyzer matches (or is "*"), the entry's path is a
// path-suffix of the diagnostic's file, and the entry's substring (when
// present) occurs in the diagnostic message. Line numbers are
// deliberately not part of the format — they rot on every edit.
type AllowEntry struct {
	Analyzer string
	Path     string
	Contains string
	// Reason is the trailing "# ..." comment; entries without a reason
	// are rejected so exceptions stay documented.
	Reason string
	Line   int
	used   bool
}

// Allowlist filters diagnostics through deliberate exceptions.
type Allowlist struct {
	Path    string
	Entries []*AllowEntry
}

// ParseAllowlist reads an allowlist file. Format, one entry per line:
//
//	<analyzer> <path-suffix> [substring...] # reason
//
// Blank lines and lines starting with # are ignored. The substring is
// everything between the path and the # (optional; spaces allowed).
// A missing "# reason" is an error: exceptions must say why.
func ParseAllowlist(path string) (*Allowlist, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	al := &Allowlist{Path: path}
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		body, reason, found := strings.Cut(line, "#")
		reason = strings.TrimSpace(reason)
		if !found || reason == "" {
			return nil, fmt.Errorf("%s:%d: allowlist entry needs a '# reason' comment", path, lineNo)
		}
		fields := strings.Fields(strings.TrimSpace(body))
		if len(fields) < 2 {
			return nil, fmt.Errorf("%s:%d: allowlist entry needs '<analyzer> <path-suffix>'", path, lineNo)
		}
		al.Entries = append(al.Entries, &AllowEntry{
			Analyzer: fields[0],
			Path:     fields[1],
			Contains: strings.Join(fields[2:], " "),
			Reason:   reason,
			Line:     lineNo,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return al, nil
}

// Apply marks diagnostics matched by an entry as Allowed and returns
// the list unchanged otherwise.
func (al *Allowlist) Apply(diags []Diagnostic) []Diagnostic {
	if al == nil {
		return diags
	}
	for i := range diags {
		for _, e := range al.Entries {
			if e.matches(diags[i]) {
				diags[i].Allowed = true
				e.used = true
				break
			}
		}
	}
	return diags
}

// Unused returns entries that matched nothing — stale exceptions that
// should be deleted.
func (al *Allowlist) Unused() []*AllowEntry {
	if al == nil {
		return nil
	}
	var out []*AllowEntry
	for _, e := range al.Entries {
		if !e.used {
			out = append(out, e)
		}
	}
	return out
}

func (e *AllowEntry) matches(d Diagnostic) bool {
	if e.Analyzer != "*" && e.Analyzer != d.Analyzer {
		return false
	}
	if !pathSuffixMatch(d.Position.Filename, e.Path) {
		return false
	}
	return e.Contains == "" || strings.Contains(d.Message, e.Contains)
}

// pathSuffixMatch reports whether suffix matches file on path-component
// boundaries ("store/store.go" matches ".../internal/store/store.go"
// but not ".../notstore/store.go" unless the suffix says so).
func pathSuffixMatch(file, suffix string) bool {
	file = filepath.ToSlash(file)
	suffix = filepath.ToSlash(suffix)
	if file == suffix {
		return true
	}
	return strings.HasSuffix(file, "/"+suffix)
}
