package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strconv"
)

// JSONSchema identifies the machine-readable output format; bump on
// incompatible change (documented in EXPERIMENTS.md).
//
// midas-lint/2 changed "analyzers" from a list of names to a list of
// objects with per-analyzer wall-clock timing, and added "callgraph"
// (interprocedural graph statistics) and "lockgraph" (the derived
// mutex acquisition-order graph) when the respective analyzers ran.
const JSONSchema = "midas-lint/2"

// jsonReport is the -json document.
type jsonReport struct {
	Schema    string         `json:"schema"`
	Module    string         `json:"module"`
	Analyzers []jsonAnalyzer `json:"analyzers"`
	Count     int            `json:"count"`   // findings that fail the run
	Allowed   int            `json:"allowed"` // findings suppressed by the allowlist
	Diags     []jsonDiag     `json:"diagnostics"`
	CallGraph *jsonCallGraph `json:"callgraph,omitempty"`
	LockGraph *jsonLockGraph `json:"lockgraph,omitempty"`
}

type jsonAnalyzer struct {
	Name   string  `json:"name"`
	Millis float64 `json:"ms"`
}

type jsonCallGraph struct {
	Functions   int     `json:"functions"`
	CallSites   int     `json:"call_sites"`
	Edges       int     `json:"edges"`
	IfaceEdges  int     `json:"iface_edges"`
	BuildMillis float64 `json:"build_ms"`
}

type jsonLockGraph struct {
	Locks []jsonLockNode `json:"locks"`
	Edges []jsonLockEdge `json:"edges"`
}

type jsonLockNode struct {
	Name string `json:"name"`
	Decl string `json:"decl"` // "file:line" of the declaration
}

type jsonLockEdge struct {
	From    string `json:"from"`
	To      string `json:"to"`
	Witness string `json:"witness"`
	Via     string `json:"via,omitempty"`
}

type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-relative when possible
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
	Allowed  bool   `json:"allowed,omitempty"`
}

// WriteJSON renders diagnostics as one midas-lint/2 JSON document.
// stats may be nil (e.g. from callers that only ran Run); analyzer
// entries then carry zero timings.
func WriteJSON(w io.Writer, m *Module, analyzers []*Analyzer, diags []Diagnostic, stats *RunStats) error {
	rep := jsonReport{
		Schema: JSONSchema,
		Module: m.Path,
		Diags:  []jsonDiag{},
	}
	timing := make(map[string]float64)
	if stats != nil {
		for _, at := range stats.Analyzers {
			timing[at.Name] = at.Millis
		}
	}
	for _, a := range analyzers {
		rep.Analyzers = append(rep.Analyzers, jsonAnalyzer{Name: a.Name, Millis: timing[a.Name]})
	}
	if stats != nil && stats.CallGraph != nil {
		rep.CallGraph = &jsonCallGraph{
			Functions:   stats.CallGraph.Functions,
			CallSites:   stats.CallGraph.CallSites,
			Edges:       stats.CallGraph.Edges,
			IfaceEdges:  stats.CallGraph.IfaceEdges,
			BuildMillis: stats.CallGraph.BuildMillis,
		}
	}
	if lg := m.LockGraph(); lg != nil {
		jlg := &jsonLockGraph{Locks: []jsonLockNode{}, Edges: []jsonLockEdge{}}
		for _, l := range lg.Locks {
			decl := l.Pos.Filename
			if rel := relPathForReport(m, decl); rel != "" {
				decl = rel
			}
			jlg.Locks = append(jlg.Locks, jsonLockNode{
				Name: l.Display,
				Decl: decl + ":" + strconv.Itoa(l.Pos.Line),
			})
		}
		for _, e := range lg.Edges {
			jlg.Edges = append(jlg.Edges, jsonLockEdge{From: e.From, To: e.To, Witness: e.Witness, Via: e.Via})
		}
		rep.LockGraph = jlg
	}
	for _, d := range diags {
		file := d.Position.Filename
		if rel := relPathForReport(m, file); rel != "" {
			file = rel
		}
		if d.Allowed {
			rep.Allowed++
		} else {
			rep.Count++
		}
		rep.Diags = append(rep.Diags, jsonDiag{
			Analyzer: d.Analyzer,
			File:     file,
			Line:     d.Position.Line,
			Column:   d.Position.Column,
			Message:  d.Message,
			Allowed:  d.Allowed,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// relPathForReport maps an absolute file path to a module-relative
// slash path, or "" when the file is outside the module.
func relPathForReport(m *Module, file string) string {
	rel, err := filepath.Rel(m.Dir, file)
	if err != nil || filepath.IsAbs(rel) || rel == ".." || hasDotDotPrefix(rel) {
		return ""
	}
	return filepath.ToSlash(rel)
}

func hasDotDotPrefix(rel string) bool {
	return rel == ".." || len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}
