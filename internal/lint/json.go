package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// JSONSchema identifies the machine-readable output format; bump on
// incompatible change (documented in EXPERIMENTS.md).
const JSONSchema = "midas-lint/1"

// jsonReport is the -json document.
type jsonReport struct {
	Schema    string     `json:"schema"`
	Module    string     `json:"module"`
	Analyzers []string   `json:"analyzers"`
	Count     int        `json:"count"`   // findings that fail the run
	Allowed   int        `json:"allowed"` // findings suppressed by the allowlist
	Diags     []jsonDiag `json:"diagnostics"`
}

type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-relative when possible
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
	Allowed  bool   `json:"allowed,omitempty"`
}

// WriteJSON renders diagnostics as one midas-lint/1 JSON document.
func WriteJSON(w io.Writer, m *Module, analyzers []*Analyzer, diags []Diagnostic) error {
	rep := jsonReport{
		Schema: JSONSchema,
		Module: m.Path,
		Diags:  []jsonDiag{},
	}
	for _, a := range analyzers {
		rep.Analyzers = append(rep.Analyzers, a.Name)
	}
	for _, d := range diags {
		file := d.Position.Filename
		if rel, err := filepath.Rel(m.Dir, file); err == nil && !filepath.IsAbs(rel) &&
			rel != ".." && !hasDotDotPrefix(rel) {
			file = filepath.ToSlash(rel)
		}
		if d.Allowed {
			rep.Allowed++
		} else {
			rep.Count++
		}
		rep.Diags = append(rep.Diags, jsonDiag{
			Analyzer: d.Analyzer,
			File:     file,
			Line:     d.Position.Line,
			Column:   d.Position.Column,
			Message:  d.Message,
			Allowed:  d.Allowed,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func hasDotDotPrefix(rel string) bool {
	return rel == ".." || len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}
