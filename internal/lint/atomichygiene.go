package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicHygiene enforces the module's two atomicity contracts.
//
// Mixed access: once any code touches a variable through sync/atomic
// (atomic.AddInt64(&x, ...), atomic.LoadUint64(&x), ...), every other
// access to the same variable must also be atomic — a single plain
// read or write reintroduces the data race the atomic was bought to
// remove, and the race detector only sees it on schedules that
// interleave. The same applies to values of the atomic wrapper types
// (atomic.Bool/Int64/Pointer/Value, ...): they must be operated on
// through their methods, never copied by assignment or by passing by
// value (a copy forks the value and silently drops updates).
//
// Publisher monotonicity: a snapshot Handle's generation state (gen,
// publishedAt, cur) advances only inside (*Handle).Publish — the
// single writer the snapshot protocol's correctness argument rests on.
// Any Store/Add/Swap/CompareAndSwap on those fields elsewhere breaks
// the "readers observe monotonically increasing generations" invariant.
var AtomicHygiene = &Analyzer{
	Name:      "atomichygiene",
	Doc:       "variables accessed via sync/atomic must never be accessed non-atomically; snapshot Handle generations advance only through Publish",
	RunModule: runAtomicHygiene,
}

// handleGenFields are the snapshot.Handle fields owned by Publish.
var handleGenFields = map[string]bool{"gen": true, "cur": true, "publishedAt": true}

func runAtomicHygiene(m *Module, report func(Diagnostic)) {
	g := m.CallGraph()

	// Pass 1: find every variable passed as &x to a sync/atomic
	// function, and remember the sanctioned &x expression spans.
	atomicClasses := make(map[token.Pos]stateClass)
	type span struct{ lo, hi token.Pos }
	sanctioned := make(map[FuncID][]span)
	for _, id := range g.IDs {
		n := g.Nodes[id]
		if n.Test || n.Pkg.ForTest {
			continue
		}
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeOf(n.Pkg.Info, call)
			if !isAtomicFunc(obj) || len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			if c, ok := classOf(n.Pkg, addr.X); ok {
				if _, seen := atomicClasses[c.ID]; !seen {
					atomicClasses[c.ID] = c
				}
				sanctioned[id] = append(sanctioned[id], span{addr.Pos(), addr.End()})
			}
			return true
		})
	}

	// Pass 2: every other use of an atomic class is a violation, and
	// atomic wrapper values must not be copied. Also enforce the Handle
	// publisher rule.
	for _, id := range g.IDs {
		n := g.Nodes[id]
		if n.Test || n.Pkg.ForTest {
			continue
		}
		spans := sanctioned[id]
		inSanctioned := func(pos token.Pos) bool {
			for _, s := range spans {
				if posWithin(pos, s.lo, s.hi) {
					return true
				}
			}
			return false
		}
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			switch v := node.(type) {
			case *ast.Ident:
				vr, ok := n.Pkg.Info.Uses[v].(*types.Var)
				if !ok {
					return true
				}
				c, tracked := atomicClasses[vr.Pos()]
				if !tracked || inSanctioned(v.Pos()) {
					return true
				}
				report(Diagnostic{
					Analyzer: "atomichygiene",
					Position: m.Fset.Position(v.Pos()),
					Message: strings.Join([]string{
						c.Display, "is accessed with sync/atomic elsewhere; this plain access races with it — use the atomic API here too",
					}, " "),
				})
			case *ast.AssignStmt:
				for _, rhs := range v.Rhs {
					reportAtomicCopy(m, n, rhs, "assignment copies", report)
				}
				if v.Tok != token.ASSIGN {
					return true // := defines a fresh variable; the RHS copy is already flagged
				}
				for _, lhs := range v.Lhs {
					// Writing THROUGH an atomic wrapper (h.gen = x) is
					// equally wrong: it bypasses the atomic API.
					if t := n.Pkg.Info.TypeOf(lhs); atomicWrapperType(t) != "" {
						report(Diagnostic{
							Analyzer: "atomichygiene",
							Position: m.Fset.Position(lhs.Pos()),
							Message:  "assignment to " + atomicWrapperType(n.Pkg.Info.TypeOf(lhs)) + " value bypasses the atomic API; use its Store method",
						})
					}
				}
			case *ast.CallExpr:
				enforceHandlePublisher(m, n, v, report)
				for _, arg := range v.Args {
					reportAtomicCopy(m, n, arg, "passing by value copies", report)
				}
			}
			return true
		})
	}
}

// reportAtomicCopy flags expressions that copy an atomic wrapper value.
// Only assignment right-hand sides and call arguments reach here, and
// both copy; method-call receivers (h.gen.Load()) and &h.gen never do.
func reportAtomicCopy(m *Module, n *CGNode, e ast.Expr, how string, report func(Diagnostic)) {
	e = ast.Unparen(e)
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return
	}
	name := atomicWrapperType(n.Pkg.Info.TypeOf(e))
	if name == "" {
		return
	}
	report(Diagnostic{
		Analyzer: "atomichygiene",
		Position: m.Fset.Position(e.Pos()),
		Message:  how + " a " + name + " value, forking its state; operate through its methods or pass a pointer",
	})
}

// atomicWrapperType returns the display name ("atomic.Int64", ...)
// when t is one of sync/atomic's wrapper types, else "".
func atomicWrapperType(t types.Type) string {
	if t == nil {
		return ""
	}
	n, ok := t.(*types.Named)
	if !ok {
		if a, ok := t.(*types.Alias); ok {
			return atomicWrapperType(types.Unalias(a))
		}
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return ""
	}
	switch obj.Name() {
	case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
		return "atomic." + obj.Name()
	}
	return ""
}

// isAtomicFunc reports whether obj is a sync/atomic package function.
func isAtomicFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(fn.Name(), prefix) {
			return true
		}
	}
	return false
}

// enforceHandlePublisher flags Store/Add/Swap/CompareAndSwap method
// calls on snapshot.Handle generation fields outside (*Handle).Publish.
func enforceHandlePublisher(m *Module, n *CGNode, call *ast.CallExpr, report func(Diagnostic)) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch sel.Sel.Name {
	case "Store", "Add", "Swap", "CompareAndSwap":
	default:
		return
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || !handleGenFields[inner.Sel.Name] {
		return
	}
	if t := n.Pkg.Info.TypeOf(inner.X); t == nil || !namedType(t, "snapshot", "Handle") {
		return
	}
	if n.Decl.Name.Name == "Publish" && n.Decl.Recv != nil {
		if recvT := n.Pkg.Info.TypeOf(n.Decl.Recv.List[0].Type); recvT != nil && namedType(recvT, "snapshot", "Handle") {
			return
		}
	}
	report(Diagnostic{
		Analyzer: "atomichygiene",
		Position: m.Fset.Position(call.Pos()),
		Message:  "snapshot.Handle." + inner.Sel.Name + " mutated outside (*Handle).Publish; generations must advance monotonically through the publisher",
	})
}
