package lint

import (
	"fmt"
	"go/ast"
	"regexp"
)

// RegistryHygiene cross-checks the two string-keyed registries the
// stack depends on:
//
// Failpoints — a test arming faultinject.Enable("x") where no
// production code calls faultinject.Hit("x") tests nothing: the
// failpoint fires never, and the crash-safety property the test claims
// to cover is unverified. Every name armed in a test must be declared
// by a Hit call in non-test code.
//
// Telemetry metrics — names must be snake_case, counters must end in
// _total, histograms must carry a unit suffix (_seconds, _bytes,
// _ratio, _distance), and a name registered twice must agree on kind
// and help (registration is idempotent by design, so a conflicting
// re-registration would silently return the older family).
var RegistryHygiene = &Analyzer{
	Name:      "registryhygiene",
	Doc:       "failpoint names armed in tests must exist in production Hit calls; telemetry metric names must be snake_case with unit suffixes and consistent kind/help",
	RunModule: runRegistryHygiene,
}

var (
	snakeCaseRe = regexp.MustCompile(`^[a-z][a-z0-9_]*[a-z0-9]$`)

	histogramUnitSuffixes = []string{"_seconds", "_bytes", "_ratio", "_distance"}
)

// metricConstructors maps telemetry Registry constructor names to the
// family kind they create.
var metricConstructors = map[string]string{
	"NewCounter":      "counter",
	"NewCounterFunc":  "counter",
	"NewCounterVec":   "counter",
	"NewGauge":        "gauge",
	"NewGaugeFunc":    "gauge",
	"NewGaugeVec":     "gauge",
	"NewHistogram":    "histogram",
	"NewHistogramVec": "histogram",
}

func runRegistryHygiene(m *Module, report func(Diagnostic)) {
	checkFailpoints(m, report)
	checkMetricNames(m, report)
}

// ---------------------------------------------------------------------
// Failpoints

func checkFailpoints(m *Module, report func(Diagnostic)) {
	declared := make(map[string]bool)
	type armSite struct {
		pkg  *Package
		call *ast.CallExpr
		name string
	}
	var armed []armSite
	for _, pkg := range m.Packages {
		for i, f := range pkg.Files {
			testFile := pkg.IsTestFile(i)
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := calleeOf(pkg.Info, call)
				if obj == nil || !inModulePkg(m, obj) {
					return true
				}
				switch {
				case isPkgFunc(obj, "faultinject", "Hit") && !testFile:
					if name, ok := stringArg(call, 0); ok {
						declared[name] = true
					}
				case isPkgFunc(obj, "faultinject", "Enable") ||
					isPkgFunc(obj, "faultinject", "EnableErr") ||
					isPkgFunc(obj, "faultinject", "Disable"):
					if testFile {
						if name, ok := stringArg(call, 0); ok {
							armed = append(armed, armSite{pkg: pkg, call: call, name: name})
						}
					}
				}
				return true
			})
		}
	}
	for _, a := range armed {
		if !declared[a.name] {
			report(Diagnostic{
				Analyzer: "registryhygiene",
				Position: m.Fset.Position(a.call.Pos()),
				Message: fmt.Sprintf("failpoint %q is armed in a test but no production code calls faultinject.Hit(%q); the test exercises nothing",
					a.name, a.name),
			})
		}
	}
}

// ---------------------------------------------------------------------
// Metric names

type metricSite struct {
	pkg  *Package
	call *ast.CallExpr
	name string
	kind string
	help string
}

func checkMetricNames(m *Module, report func(Diagnostic)) {
	var sites []metricSite
	for _, pkg := range m.Packages {
		if pkg.ForTest {
			continue
		}
		for i, f := range pkg.Files {
			if pkg.IsTestFile(i) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				kind, ok := metricConstructors[sel.Sel.Name]
				if !ok {
					return true
				}
				if t := pkg.Info.TypeOf(sel.X); t == nil || !namedType(t, "telemetry", "Registry") {
					return true
				}
				name, ok := stringArg(call, 0)
				if !ok {
					return true
				}
				help, _ := stringArg(call, 1)
				sites = append(sites, metricSite{pkg: pkg, call: call, name: name, kind: kind, help: help})
				return true
			})
		}
	}
	reportf := func(s metricSite, format string, args ...interface{}) {
		report(Diagnostic{
			Analyzer: "registryhygiene",
			Position: m.Fset.Position(s.call.Pos()),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	byName := make(map[string]metricSite)
	for _, s := range sites {
		if !snakeCaseRe.MatchString(s.name) {
			reportf(s, "metric name %q is not snake_case ([a-z][a-z0-9_]*)", s.name)
		}
		switch s.kind {
		case "counter":
			if !hasSuffixIn(s.name, []string{"_total"}) {
				reportf(s, "counter %q must end in _total (Prometheus naming: counters count events)", s.name)
			}
		case "gauge":
			if hasSuffixIn(s.name, []string{"_total"}) {
				reportf(s, "gauge %q must not end in _total; _total marks monotonic counters", s.name)
			}
		case "histogram":
			if !hasSuffixIn(s.name, histogramUnitSuffixes) {
				reportf(s, "histogram %q needs a unit suffix (one of %v)", s.name, histogramUnitSuffixes)
			}
		}
		prev, seen := byName[s.name]
		if !seen {
			byName[s.name] = s
			continue
		}
		if prev.kind != s.kind || prev.help != s.help {
			reportf(s, "metric %q re-registered with different %s than at %s; idempotent registration would silently keep the first family",
				s.name, disagreement(prev, s), m.Fset.Position(prev.call.Pos()))
		}
	}
}

func disagreement(a, b metricSite) string {
	if a.kind != b.kind {
		return "kind (" + a.kind + " vs " + b.kind + ")"
	}
	return "help text"
}

func hasSuffixIn(name string, suffixes []string) bool {
	for _, s := range suffixes {
		if len(name) > len(s) && name[len(name)-len(s):] == s {
			return true
		}
	}
	return false
}
