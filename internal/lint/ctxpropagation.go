package lint

import (
	"go/ast"
	"go/types"
)

// CtxPropagation enforces the cancellation contract from PR 1: once a
// function has taken a `ctx context.Context`, every long-running kernel
// it reaches must observe that context. Concretely, inside a function
// with a ctx parameter it flags
//
//   - calls to a module function or method F when the same package or
//     receiver type also declares a cancellable variant (FContext,
//     FCancel or FWithCancel) — the caller is silently dropping
//     cancellation on the floor;
//   - calls to context.Background() / context.TODO() — a fresh root
//     context detaches the callee from the caller's deadline.
//
// The variant lookup is generic, so it tracks the repo's naming
// (MaintainContext, ExactCancel, MCCSWithCancel, ...) without a
// hard-coded table.
var CtxPropagation = &Analyzer{
	Name: "ctxpropagation",
	Doc:  "functions with a ctx parameter must thread it into kernels that have a Context/Cancel variant and must not mint fresh root contexts",
	Run:  runCtxPropagation,
}

var cancelSuffixes = []string{"Context", "WithCancel", "Cancel"}

func runCtxPropagation(pass *Pass) {
	for _, fb := range funcBodies(pass.Pkg) {
		ctxName, ok := hasContextParam(pass.Pkg.Info, fb.Type)
		if !ok {
			continue
		}
		fb := fb
		ast.Inspect(fb.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && lit != fb.Lit {
				// A nested literal with its own ctx parameter is
				// analyzed on its own; one without inherits ours.
				if _, has := hasContextParam(pass.Pkg.Info, lit.Type); has {
					return false
				}
				return true
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCtxCall(pass, fb, ctxName, call)
			return true
		})
	}
}

func checkCtxCall(pass *Pass, fb funcBody, ctxName string, call *ast.CallExpr) {
	info := pass.Pkg.Info
	obj := calleeOf(info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	// Fresh root contexts inside a ctx-bearing function.
	if fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "Background" || fn.Name() == "TODO") {
		pass.Reportf(call.Pos(), "context.%s() inside %s, which already has %s; pass the caller's context instead of detaching", fn.Name(), fb.Name, ctxName)
		return
	}
	if !inModulePkg(pass.Module, fn) {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || signatureTakesContext(sig) {
		return // already cancellable
	}
	if variant := cancellableVariant(fn); variant != "" {
		pass.Reportf(call.Pos(), "%s ignores %s: %s exists; thread the context through it", callDesc(fn), ctxName, variant)
	}
}

func signatureTakesContext(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	// A func()-bool cancel hook or an options struct with a Cancel
	// field also counts as cancellable plumbing.
	for i := 0; i < params.Len(); i++ {
		t := params.At(i).Type()
		if s, ok := t.Underlying().(*types.Signature); ok &&
			s.Params().Len() == 0 && s.Results().Len() == 1 &&
			isBoolType(s.Results().At(0).Type()) {
			return true
		}
		if st, ok := deref(t).Underlying().(*types.Struct); ok {
			for j := 0; j < st.NumFields(); j++ {
				if st.Field(j).Name() == "Cancel" {
					return true
				}
			}
		}
	}
	return false
}

// cancellableVariant returns the name of a Context/Cancel/WithCancel
// sibling of fn (same package for functions, same receiver type for
// methods), or "".
func cancellableVariant(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		named, ok := deref(recv.Type()).(*types.Named)
		if !ok {
			return ""
		}
		for _, suf := range cancelSuffixes {
			want := fn.Name() + suf
			for i := 0; i < named.NumMethods(); i++ {
				if m := named.Method(i); m.Name() == want && variantTakesCancellation(m) {
					return recvName(named) + "." + want
				}
			}
		}
		return ""
	}
	if fn.Pkg() == nil {
		return ""
	}
	scope := fn.Pkg().Scope()
	for _, suf := range cancelSuffixes {
		want := fn.Name() + suf
		if obj, ok := scope.Lookup(want).(*types.Func); ok && variantTakesCancellation(obj) {
			return fn.Pkg().Name() + "." + want
		}
	}
	return ""
}

// variantTakesCancellation double-checks that the candidate variant
// really accepts a context or cancel hook, so e.g. Foo/FooCancel pairs
// with unrelated meanings don't pair up.
func variantTakesCancellation(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		t := params.At(i).Type()
		if isContextType(t) {
			return true
		}
		if s, ok := t.Underlying().(*types.Signature); ok &&
			s.Params().Len() == 0 && s.Results().Len() == 1 &&
			isBoolType(s.Results().At(0).Type()) {
			return true // cancel func() bool hook
		}
	}
	return false
}

func isBoolType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

func recvName(named *types.Named) string {
	if named.Obj().Pkg() != nil {
		return named.Obj().Pkg().Name() + "." + named.Obj().Name()
	}
	return named.Obj().Name()
}

func callDesc(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		if named, ok := deref(recv.Type()).(*types.Named); ok {
			return recvName(named) + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
