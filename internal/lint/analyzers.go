package lint

import (
	"fmt"
	"sort"
	"strings"
)

// All returns every analyzer in the suite, in stable name order.
func All() []*Analyzer {
	as := []*Analyzer{
		AtomicHygiene,
		CtxPropagation,
		ErrWrap,
		FsyncDiscipline,
		GoroLeak,
		IndexDelta,
		LockOrder,
		LockScope,
		MapDeterminism,
		RegistryHygiene,
		SnapshotImmutability,
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

// Select applies -enable/-disable comma lists to the full suite:
// enable narrows to exactly the named analyzers, disable removes names,
// and unknown names are an error so typos don't silently skip checks.
func Select(enable, disable string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	resolve := func(list string) ([]*Analyzer, error) {
		var out []*Analyzer
		for _, name := range strings.Split(list, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("lint: unknown analyzer %q (have %s)", name, analyzerNames())
			}
			out = append(out, a)
		}
		return out, nil
	}
	selected := All()
	if enable != "" {
		var err error
		if selected, err = resolve(enable); err != nil {
			return nil, err
		}
	}
	if disable != "" {
		drop, err := resolve(disable)
		if err != nil {
			return nil, err
		}
		dropSet := make(map[string]bool)
		for _, a := range drop {
			dropSet[a.Name] = true
		}
		var kept []*Analyzer
		for _, a := range selected {
			if !dropSet[a.Name] {
				kept = append(kept, a)
			}
		}
		selected = kept
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("lint: no analyzers selected")
	}
	return selected, nil
}

func analyzerNames() string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}
