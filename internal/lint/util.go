package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// funcBody is one function-shaped region: a declaration or a literal.
type funcBody struct {
	Name string // "(*T).Method", "Func" or "func literal"
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Body *ast.BlockStmt
	Type *ast.FuncType
	File int // index into pkg.Files
}

// funcBodies returns every function declaration and literal in the
// package with a non-nil body.
func funcBodies(pkg *Package) []funcBody {
	var out []funcBody
	for i, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					out = append(out, funcBody{Name: funcDeclName(fn), Decl: fn, Body: fn.Body, Type: fn.Type, File: i})
				}
			case *ast.FuncLit:
				out = append(out, funcBody{Name: "func literal", Lit: fn, Body: fn.Body, Type: fn.Type, File: i})
			}
			return true
		})
	}
	return out
}

func funcDeclName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	recv := exprText(fn.Recv.List[0].Type)
	return "(" + recv + ")." + fn.Name.Name
}

// exprText renders simple expressions (idents, selector chains, stars,
// indexes) for messages and region keys; it is not a full printer.
func exprText(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprText(v.X) + "." + v.Sel.Name
	case *ast.StarExpr:
		return "*" + exprText(v.X)
	case *ast.IndexExpr:
		return exprText(v.X) + "[" + exprText(v.Index) + "]"
	case *ast.CallExpr:
		return exprText(v.Fun) + "(...)"
	case *ast.ParenExpr:
		return "(" + exprText(v.X) + ")"
	case *ast.BasicLit:
		return v.Value
	}
	return "?"
}

// calleeOf resolves the called object of a call expression: a function,
// method or builtin, or nil for indirect calls through variables.
func calleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is a function named name declared in a
// package whose *name* (not path) is pkgName. Matching by package name
// lets the golden testdata packages stand in for the real ones.
func isPkgFunc(obj types.Object, pkgName, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Name() == pkgName && fn.Name() == name
}

// stdlibFunc reports whether obj is the function path.name from the
// standard library (exact import path match).
func stdlibFunc(obj types.Object, path, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == path && fn.Name() == name
}

// stringArg returns the i'th argument when it is a string literal.
func stringArg(call *ast.CallExpr, i int) (string, bool) {
	if i >= len(call.Args) {
		return "", false
	}
	lit, ok := ast.Unparen(call.Args[i]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// deref peels pointers off a type.
func deref(t types.Type) types.Type {
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// namedType reports whether t (after peeling pointers) is the named
// type pkgName.typeName, matching the declaring package by name.
func namedType(t types.Type, pkgName, typeName string) bool {
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Name() == pkgName && obj.Name() == typeName
}

// namedTypePath is namedType with an exact import-path match (stdlib).
func namedTypePath(t types.Type, pkgPath, typeName string) bool {
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == typeName
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return t != nil && namedTypePath(t, "context", "Context")
}

// hasContextParam reports whether the function type declares a
// context.Context parameter and returns its name when it has one.
func hasContextParam(info *types.Info, ft *ast.FuncType) (string, bool) {
	if ft.Params == nil {
		return "", false
	}
	for _, field := range ft.Params.List {
		if t := info.TypeOf(field.Type); isContextType(t) {
			name := "_"
			if len(field.Names) > 0 {
				name = field.Names[0].Name
			}
			return name, true
		}
	}
	return "", false
}

// ioWriter is a structural io.Writer built from universe types, so
// implementsWriter needs no import of the real io package.
var ioWriter = types.NewInterfaceType([]*types.Func{
	types.NewFunc(token.NoPos, nil, "Write", types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(
			types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
			types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type()),
		), false)),
}, nil).Complete()

// implementsWriter reports whether t or *t implements io.Writer.
func implementsWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if types.Implements(t, ioWriter) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), ioWriter)
	}
	return false
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// rootIdentObj returns the object of the leftmost identifier of an
// expression like x, x.f, x.f[i] — the variable whose state the
// expression reads — or nil.
func rootIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(v)
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// inModulePkg reports whether obj is declared in a package belonging to
// the analyzed module.
func inModulePkg(m *Module, obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil &&
		(obj.Pkg().Path() == m.Path || strings.HasPrefix(obj.Pkg().Path(), m.Path+"/"))
}

// posWithin reports whether pos lies within [lo, hi].
func posWithin(pos, lo, hi token.Pos) bool { return pos >= lo && pos <= hi }
