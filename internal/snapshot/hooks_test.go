package snapshot

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/midas-graph/midas"
	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/dataset"
)

func TestAdmitRejectsTerminally(t *testing.T) {
	eng := newEngine(t)
	errFenced := errors.New("fenced: not primary")
	var attempts atomic.Int64
	p, h := startPipeline(t, eng, Config{
		Backoff: time.Hour, // a retry would hang the test
		Admit: func(b Batch) error {
			if !b.FromReplica {
				return errFenced
			}
			return nil
		},
		OnApplied: func(Batch, midas.MaintenanceReport) error {
			attempts.Add(1)
			return nil
		},
	})
	before := eng.DB().Len()
	genBefore := h.Generation()

	// A client write is rejected terminally — no retry, no poison, no
	// engine mutation, no publish.
	tkt, err := p.Submit(Batch{Name: "client", Update: graph.Update{Insert: dataset.BoronicEsters().Generate(2, 9000, 5)}})
	if err != nil {
		t.Fatal(err)
	}
	res := <-tkt.Done
	if !errors.Is(res.Err, errFenced) || res.Applied || res.Poisoned {
		t.Fatalf("fenced write result: %+v", res)
	}
	if eng.DB().Len() != before || h.Generation() != genBefore {
		t.Fatal("fenced write touched the engine or published")
	}
	if len(p.Poisoned()) != 0 {
		t.Fatal("admission rejection must not park a poison record")
	}

	// A replica install passes the same gate.
	tkt, err = p.Submit(Batch{Name: "replica", FromReplica: true,
		Update: graph.Update{Insert: dataset.BoronicEsters().Generate(2, 9100, 5)}})
	if err != nil {
		t.Fatal(err)
	}
	res = <-tkt.Done
	if res.Err != nil || !res.Applied {
		t.Fatalf("replica install failed: %+v", res)
	}
	if attempts.Load() != 1 {
		t.Fatalf("OnApplied ran %d times, want 1", attempts.Load())
	}
}

func TestFromReplicaSkipsRemap(t *testing.T) {
	eng := newEngine(t)
	p, _ := startPipeline(t, eng, Config{})

	// IDs that collide with the seeded database [0, 20): a client batch
	// would be remapped off them; a replica batch must keep them and
	// fail the engine's conflict check instead — proof the verbatim
	// path is taken.
	ins := dataset.BoronicEsters().Generate(1, 3, 5)
	if !eng.DB().Has(ins[0].ID) {
		t.Fatalf("test premise broken: ID %d not occupied", ins[0].ID)
	}
	tkt, err := p.Submit(Batch{Name: "verbatim", FromReplica: true, Update: graph.Update{Insert: ins}})
	if err != nil {
		t.Fatal(err)
	}
	res := <-tkt.Done
	if !errors.Is(res.Err, midas.ErrInvalidUpdate) {
		t.Fatalf("colliding verbatim insert: err = %v, want ErrInvalidUpdate (remap must not run)", res.Err)
	}

	// The same payload without FromReplica is remapped and applies.
	ins2 := dataset.BoronicEsters().Generate(1, 3, 5)
	tkt, err = p.Submit(Batch{Name: "remapped", Update: graph.Update{Insert: ins2}})
	if err != nil {
		t.Fatal(err)
	}
	if res := <-tkt.Done; res.Err != nil || !res.Applied {
		t.Fatalf("client batch failed: %+v", res)
	}
}

func TestOnAppliedOrderingAndRetry(t *testing.T) {
	eng := newEngine(t)
	var afterRuns, onAppliedRuns atomic.Int64
	var sawRemappedIDs atomic.Bool
	var genAtHook atomic.Uint64
	failFirst := make(chan struct{}, 1)
	failFirst <- struct{}{}

	var h *Handle
	p, handle := startPipeline(t, eng, Config{
		Backoff: time.Millisecond,
		OnApplied: func(b Batch, rep midas.MaintenanceReport) error {
			onAppliedRuns.Add(1)
			// Publish has not happened yet for this batch.
			genAtHook.Store(h.Generation())
			// The hook sees post-remap IDs: every insert must hold a slot
			// in the live database (apply committed before the hook).
			ok := true
			for _, g := range b.Update.Insert {
				if !eng.DB().Has(g.ID) {
					ok = false
				}
			}
			sawRemappedIDs.Store(ok)
			select {
			case <-failFirst:
				return errors.New("transient commit-slot failure")
			default:
				return nil
			}
		},
	})
	h = handle

	// Colliding IDs force a remap so the hook's post-remap check means
	// something.
	ins := dataset.BoronicEsters().Generate(2, 0, 5)
	tkt, err := p.Submit(Batch{
		Name:   "commit-slot",
		Update: graph.Update{Insert: ins},
		After:  func(midas.MaintenanceReport) error { afterRuns.Add(1); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	res := <-tkt.Done
	if res.Err != nil || !res.Applied {
		t.Fatalf("batch failed: %+v", res)
	}
	if got := onAppliedRuns.Load(); got != 2 {
		t.Fatalf("OnApplied ran %d times, want 2 (fail + retry)", got)
	}
	if got := afterRuns.Load(); got != 2 {
		t.Fatalf("After ran %d times, want 2 (re-run with OnApplied on retry)", got)
	}
	if !sawRemappedIDs.Load() {
		t.Fatal("OnApplied observed pre-remap (unapplied) insert IDs")
	}
	if genAtHook.Load() != res.Generation-1 {
		t.Fatalf("OnApplied ran at generation %d; batch published %d — hook must precede publish",
			genAtHook.Load(), res.Generation)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", res.Attempts)
	}
}
