// Package snapshot decouples the MIDAS read path from the write path:
// maintenance runs in a single background goroutine against the engine
// (Pipeline), and every successful batch publishes an immutable read
// Snapshot through an atomic generation pointer (Handle) that serving
// handlers load lock-free. Readers always observe either generation N
// or generation N+1, never a partially-applied batch, and a slow,
// failing, panicking or poisoned batch leaves them on the last good
// generation — the RCU-style separation that makes p99 panel latency
// independent of maintenance cost.
//
// Immutability contract: a Snapshot and everything reachable from its
// exported fields is frozen at Publish time. Only this package may
// write to a Snapshot (construction happens here, before the pointer
// swap makes it visible); every other package is a reader. The
// `snapshotimmutability` midas-lint analyzer enforces the field-write
// half of that contract statically.
package snapshot

import (
	"time"

	"sync/atomic"

	"github.com/midas-graph/midas"
	"github.com/midas-graph/midas/graph"
)

// Snapshot is one published generation of the serving state: the
// canned pattern set with its per-pattern statistics and pre-rendered
// SVG views, the set-level quality, the database size, and a query
// engine over an isolated copy of the search structures.
//
// All fields are written exactly once, before the snapshot is
// published; after Publish the snapshot is immutable and safe for any
// number of concurrent readers without synchronisation.
type Snapshot struct {
	// Generation numbers published snapshots from 1, monotonically.
	Generation uint64
	// PublishedAt is when this generation became visible to readers.
	PublishedAt time.Time
	// Degraded marks a snapshot published from salvaged or empty state
	// (midas-serve lost every bundle generation and started anyway).
	Degraded bool

	// DBLen is the database size this generation was computed over.
	DBLen int
	// Patterns is the canned pattern set, in panel order. The graphs
	// are shared with the engine and must not be mutated.
	Patterns []*graph.Graph
	// Stats holds per-pattern statistics, index-aligned with Patterns.
	Stats []midas.PatternStat
	// Quality is the set-level quality report.
	Quality midas.Quality
	// SVGs holds the pre-rendered SVG view per pattern, index-aligned
	// with Patterns (nil when the builder had no renderer).
	SVGs []string
	// Searcher executes subgraph queries against an isolated copy of
	// the generation's database and indices; it is safe for concurrent
	// use and immune to later maintenance.
	Searcher *midas.Searcher
	// Report is the maintenance report of the batch that produced this
	// generation (zero for the bootstrap generation).
	Report midas.MaintenanceReport
}

// BuildOptions parameterises Build.
type BuildOptions struct {
	// RenderSVG, when set, pre-renders each pattern's SVG view into
	// Snapshot.SVGs so read handlers serve bytes instead of rendering.
	RenderSVG func(*graph.Graph) string
	// Degraded marks the snapshot as serving salvaged/empty state.
	Degraded bool
	// Report is the maintenance report of the producing batch.
	Report midas.MaintenanceReport
}

// Build captures an unpublished snapshot of the engine's current state.
// It must be called while no Maintain is in flight — the pipeline calls
// it from the maintenance goroutine after a batch commits, and serving
// shells call it once at startup before traffic. The returned snapshot
// has no generation yet; Handle.Publish assigns one.
func Build(eng *midas.Engine, o BuildOptions) *Snapshot {
	view := eng.ExportView()
	s := &Snapshot{
		Degraded: o.Degraded,
		DBLen:    view.DBLen,
		Patterns: view.Patterns,
		Stats:    view.Stats,
		Quality:  view.Quality,
		Searcher: view.Searcher,
		Report:   o.Report,
	}
	if o.RenderSVG != nil {
		s.SVGs = make([]string, len(s.Patterns))
		for i, p := range s.Patterns {
			s.SVGs[i] = o.RenderSVG(p)
		}
	}
	return s
}

// Scov returns the i'th pattern's subgraph coverage, tolerating a
// stats slice shorter than the pattern slice (it cannot happen through
// Build, but readers stay total).
func (s *Snapshot) Scov(i int) float64 {
	if i < len(s.Stats) {
		return s.Stats[i].Scov
	}
	return 0
}

// SVG returns the i'th pattern's pre-rendered view, or "" when the
// snapshot was built without a renderer.
func (s *Snapshot) SVG(i int) string {
	if i < len(s.SVGs) {
		return s.SVGs[i]
	}
	return ""
}

// Handle is the atomic generation pointer readers load. The zero value
// is NOT ready; use NewHandle.
type Handle struct {
	cur atomic.Pointer[Snapshot]
	gen atomic.Uint64
	// publishedAt mirrors the current snapshot's publish instant as
	// unix nanoseconds so gauges can read it without loading the
	// pointer (0 = never published).
	publishedAt atomic.Int64
}

// NewHandle returns an empty handle: Load returns nil until the first
// Publish — the "never loaded" state /readyz distinguishes from "stale
// but serving".
func NewHandle() *Handle { return &Handle{} }

// Load returns the current snapshot, or nil before the first Publish.
// It is a single atomic pointer load — safe and cheap on every read
// path.
func (h *Handle) Load() *Snapshot { return h.cur.Load() }

// Generation returns the current generation number (0 before the first
// Publish).
func (h *Handle) Generation() uint64 { return h.gen.Load() }

// Publish stamps s with the next generation number and the publish
// instant, then atomically swaps it in as the current snapshot.
// Readers holding the previous generation keep it alive until they
// drop it; new loads observe s. Publish must only be called from the
// single maintenance goroutine (or before serving begins) — it is the
// one writer of the generation counter.
func (h *Handle) Publish(s *Snapshot) uint64 {
	gen := h.gen.Add(1)
	s.Generation = gen
	s.PublishedAt = time.Now()
	h.publishedAt.Store(s.PublishedAt.UnixNano())
	h.cur.Store(s)
	return gen
}

// Age returns how long ago the current snapshot was published (0
// before the first Publish). This is the snapshot's wall-clock age, not
// its staleness: an idle panel's snapshot grows old without being
// stale. Pipeline.Staleness measures lag behind enqueued work.
func (h *Handle) Age() time.Duration {
	ns := h.publishedAt.Load()
	if ns == 0 {
		return 0
	}
	return time.Duration(time.Now().UnixNano() - ns)
}
