package snapshot

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/midas-graph/midas"
	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/dataset"
	"github.com/midas-graph/midas/internal/faultinject"
)

func newEngine(t *testing.T) *midas.Engine {
	t.Helper()
	db := dataset.EMolLike().GenerateDB(20, 3)
	opts := midas.Options{
		Budget:  midas.Budget{MinSize: 2, MaxSize: 4, Count: 5},
		SupMin:  0.4,
		Epsilon: 0.02,
		Walks:   30,
		Seed:    1,
	}
	return midas.New(db, opts)
}

// startPipeline builds a started pipeline with a published bootstrap
// generation, mirroring what panel.Handler does.
func startPipeline(t *testing.T, eng *midas.Engine, cfg Config) (*Pipeline, *Handle) {
	t.Helper()
	h := NewHandle()
	h.Publish(Build(eng, BuildOptions{}))
	p := NewPipeline(eng, h, cfg)
	p.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		p.Stop(ctx)
	})
	return p, h
}

func TestHandlePublishAndLoad(t *testing.T) {
	h := NewHandle()
	if h.Load() != nil || h.Generation() != 0 {
		t.Fatal("fresh handle must be empty")
	}
	if h.Age() != 0 {
		t.Fatal("fresh handle must have zero age")
	}
	s := &Snapshot{DBLen: 7}
	if gen := h.Publish(s); gen != 1 {
		t.Fatalf("first publish generation = %d, want 1", gen)
	}
	got := h.Load()
	if got != s || got.Generation != 1 || got.PublishedAt.IsZero() {
		t.Fatalf("loaded snapshot not the published one: %+v", got)
	}
	if gen := h.Publish(&Snapshot{}); gen != 2 {
		t.Fatalf("second publish generation = %d, want 2", gen)
	}
}

func TestBuildCapturesEngineState(t *testing.T) {
	eng := newEngine(t)
	s := Build(eng, BuildOptions{RenderSVG: func(*graph.Graph) string { return "<svg/>" }})
	if s.DBLen != eng.DB().Len() {
		t.Fatalf("DBLen = %d, want %d", s.DBLen, eng.DB().Len())
	}
	if len(s.Patterns) != len(eng.Patterns()) || len(s.Stats) != len(s.Patterns) {
		t.Fatalf("patterns/stats mismatch: %d patterns, %d stats", len(s.Patterns), len(s.Stats))
	}
	if len(s.SVGs) != len(s.Patterns) {
		t.Fatalf("SVGs = %d, want %d", len(s.SVGs), len(s.Patterns))
	}
	if s.Searcher == nil {
		t.Fatal("snapshot missing searcher")
	}
	if rs, _ := s.Searcher.Query(graph.Path(0, "C", "C"), 0); len(rs) == 0 {
		t.Fatal("snapshot searcher found nothing for C-C")
	}
	// Totality of the tolerant accessors.
	if s.SVG(len(s.Patterns)+5) != "" || s.Scov(len(s.Stats)+5) != 0 {
		t.Fatal("out-of-range accessors must return zero values")
	}
}

func TestPipelineAppliesAndPublishes(t *testing.T) {
	eng := newEngine(t)
	p, h := startPipeline(t, eng, Config{})
	before := eng.DB().Len()

	ins := dataset.BoronicEsters().Generate(4, 0, 9) // colliding IDs on purpose
	tkt, err := p.Submit(Batch{Name: "b1", Update: graph.Update{Insert: ins}})
	if err != nil {
		t.Fatal(err)
	}
	if tkt.Position != 1 {
		t.Fatalf("position = %d, want 1", tkt.Position)
	}
	res := <-tkt.Done
	if res.Err != nil || !res.Applied {
		t.Fatalf("batch failed: %+v", res)
	}
	if res.Generation != 2 {
		t.Fatalf("generation = %d, want 2 (after bootstrap)", res.Generation)
	}
	if eng.DB().Len() != before+4 {
		t.Fatalf("db len = %d, want %d", eng.DB().Len(), before+4)
	}
	snap := h.Load()
	if snap.Generation != 2 || snap.DBLen != before+4 {
		t.Fatalf("published snapshot stale: gen=%d dblen=%d", snap.Generation, snap.DBLen)
	}
	if p.Depth() != 0 || p.Staleness() != 0 {
		t.Fatalf("idle pipeline reports depth=%d staleness=%v", p.Depth(), p.Staleness())
	}
	if p.Applied() != 1 {
		t.Fatalf("applied = %d, want 1", p.Applied())
	}
}

func TestPipelineRejectsInvalidWithoutRetry(t *testing.T) {
	eng := newEngine(t)
	p, h := startPipeline(t, eng, Config{Backoff: time.Hour}) // a retry would hang the test
	tkt, err := p.Submit(Batch{Name: "bad", Update: graph.Update{Delete: []int{99999}}})
	if err != nil {
		t.Fatal(err)
	}
	res := <-tkt.Done
	if !errors.Is(res.Err, midas.ErrInvalidUpdate) {
		t.Fatalf("err = %v, want ErrInvalidUpdate", res.Err)
	}
	if res.Attempts != 1 || res.Poisoned || res.Applied {
		t.Fatalf("invalid update must fail once, unpoisoned: %+v", res)
	}
	if h.Generation() != 1 {
		t.Fatalf("generation moved to %d on a rejected batch", h.Generation())
	}
}

// TestPipelineRetryBackoffAndPoison drives a persistently failing batch
// through the whole retry schedule with a deterministic clock: capped
// exponential backoff with bounded jitter between attempts, a poison
// record at exhaustion, readers and engine state untouched throughout.
func TestPipelineRetryBackoffAndPoison(t *testing.T) {
	eng := newEngine(t)
	stage := "fct"
	faultinject.EnableErr("core.maintain."+stage, fmt.Errorf("injected storage wobble"))
	defer faultinject.Reset()

	fixed := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	var sleeps []time.Duration
	cfg := Config{
		Backoff:     time.Second,
		MaxAttempts: 3,
		Now:         func() time.Time { return fixed },
		Sleep: func(d time.Duration) bool {
			mu.Lock()
			sleeps = append(sleeps, d)
			mu.Unlock()
			return true
		},
	}
	p, h := startPipeline(t, eng, cfg)
	before := eng.DB().Len()

	ins := dataset.BoronicEsters().Generate(2, 9000, 5)
	tkt, err := p.Submit(Batch{Name: "wobbly", Update: graph.Update{Insert: ins}})
	if err != nil {
		t.Fatal(err)
	}
	res := <-tkt.Done
	if !res.Poisoned || res.Attempts != 3 || res.Err == nil {
		t.Fatalf("want poisoned after 3 attempts, got %+v", res)
	}
	if res.Applied {
		t.Fatal("poisoned batch must not report Applied")
	}
	if eng.DB().Len() != before {
		t.Fatal("failed attempts leaked engine mutations (rollback broken)")
	}
	if h.Generation() != 1 {
		t.Fatalf("generation moved to %d on a poisoned batch", h.Generation())
	}
	if p.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", p.Retries())
	}

	// Backoff schedule: attempt n sleeps in [base, base+base/4) with
	// base = Backoff << (n-1); the jitter is a pure function of
	// (name, attempt).
	mu.Lock()
	defer mu.Unlock()
	if len(sleeps) != 2 {
		t.Fatalf("sleeps = %v, want 2 entries", sleeps)
	}
	for i, base := range []time.Duration{time.Second, 2 * time.Second} {
		if sleeps[i] < base || sleeps[i] >= base+base/4 {
			t.Fatalf("sleep %d = %v, want in [%v, %v)", i, sleeps[i], base, base+base/4)
		}
	}

	recs := p.Poisoned()
	if len(recs) != 1 || recs[0].Name != "wobbly" || recs[0].Attempts != 3 || !recs[0].At.Equal(fixed) {
		t.Fatalf("poison record = %+v", recs)
	}
}

// TestPipelineSplitAttemptRetry: once the engine mutation committed, a
// failing After (persist) hook must retry ONLY the hook — re-applying
// the batch would double the update.
func TestPipelineSplitAttemptRetry(t *testing.T) {
	eng := newEngine(t)
	p, h := startPipeline(t, eng, Config{MaxAttempts: 3})
	before := eng.DB().Len()

	var afterCalls int
	ins := dataset.BoronicEsters().Generate(3, 9100, 5)
	tkt, err := p.Submit(Batch{
		Name:   "flaky-persist",
		Update: graph.Update{Insert: ins},
		After: func(midas.MaintenanceReport) error {
			afterCalls++
			if afterCalls == 1 {
				return fmt.Errorf("disk hiccup")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := <-tkt.Done
	if res.Err != nil || res.Attempts != 2 {
		t.Fatalf("want success on attempt 2, got %+v", res)
	}
	if afterCalls != 2 {
		t.Fatalf("after hook ran %d times, want 2", afterCalls)
	}
	if eng.DB().Len() != before+3 {
		t.Fatalf("db len = %d, want %d (applied exactly once)", eng.DB().Len(), before+3)
	}
	if h.Load().DBLen != before+3 {
		t.Fatal("published snapshot missing the applied batch")
	}
}

// TestPipelineHookPanicIsFailure: a panicking hook is a failed attempt,
// not a dead pipeline — later batches still apply and publish.
func TestPipelineHookPanicIsFailure(t *testing.T) {
	eng := newEngine(t)
	p, h := startPipeline(t, eng, Config{MaxAttempts: 2})
	tkt, err := p.Submit(Batch{
		Name:   "panicky",
		Before: func() error { panic("hook bug") },
	})
	if err != nil {
		t.Fatal(err)
	}
	res := <-tkt.Done
	if res.Err == nil || !res.Poisoned {
		t.Fatalf("want poisoned panic failure, got %+v", res)
	}
	if h.Generation() != 1 {
		t.Fatalf("generation moved to %d after panicking batch", h.Generation())
	}

	ins := dataset.BoronicEsters().Generate(2, 9200, 5)
	tkt, err = p.Submit(Batch{Name: "healthy", Update: graph.Update{Insert: ins}})
	if err != nil {
		t.Fatal(err)
	}
	if res := <-tkt.Done; res.Err != nil || res.Generation != 2 {
		t.Fatalf("pipeline dead after panic: %+v", res)
	}
}

func TestPipelineQueueFullBackpressure(t *testing.T) {
	eng := newEngine(t)
	entered := make(chan struct{})
	release := make(chan struct{})
	p, _ := startPipeline(t, eng, Config{QueueSize: 1})

	// Wedge the consumer, fill the one queue slot, then overflow.
	wedge, err := p.Submit(Batch{Name: "wedge", Before: func() error {
		close(entered)
		<-release
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	queued, err := p.Submit(Batch{Name: "queued"})
	if err != nil {
		t.Fatal(err)
	}
	if queued.Position != 2 {
		t.Fatalf("queued position = %d, want 2", queued.Position)
	}
	if _, err := p.Submit(Batch{Name: "overflow"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow err = %v, want ErrQueueFull", err)
	}
	if p.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", p.Depth())
	}
	if p.Staleness() <= 0 {
		t.Fatal("staleness must be positive with pending batches")
	}

	close(release)
	<-wedge.Done
	<-queued.Done
	if p.Depth() != 0 {
		t.Fatalf("depth = %d after drain, want 0", p.Depth())
	}
}

func TestPipelineStopDrainsQueuedBatches(t *testing.T) {
	eng := newEngine(t)
	h := NewHandle()
	h.Publish(Build(eng, BuildOptions{}))
	p := NewPipeline(eng, h, Config{})
	p.Start()

	var tickets []Ticket
	for i := 0; i < 3; i++ {
		ins := dataset.BoronicEsters().Generate(1, 9300+10*i, 5)
		tkt, err := p.Submit(Batch{Name: fmt.Sprintf("drain-%d", i), Update: graph.Update{Insert: ins}})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tkt)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Stop(ctx); err != nil {
		t.Fatalf("drain cut short: %v", err)
	}
	for i, tkt := range tickets {
		if res := <-tkt.Done; res.Err != nil {
			t.Fatalf("drained batch %d failed: %v", i, res.Err)
		}
	}
	if h.Generation() != 4 {
		t.Fatalf("generation = %d, want 4 (bootstrap + 3 batches)", h.Generation())
	}
	if _, err := p.Submit(Batch{Name: "late"}); !errors.Is(err, ErrStopped) {
		t.Fatalf("submit after stop = %v, want ErrStopped", err)
	}
	// Stop is idempotent.
	if err := p.Stop(ctx); err != nil {
		t.Fatalf("second stop: %v", err)
	}
}

// TestPipelineStopHardCancel: when the drain deadline expires, the
// in-flight batch is cancelled (rolling back) and queued batches are
// flushed with terminal errors instead of being applied.
func TestPipelineStopHardCancel(t *testing.T) {
	eng := newEngine(t)
	h := NewHandle()
	h.Publish(Build(eng, BuildOptions{}))
	cancelled := make(chan struct{})
	p := NewPipeline(eng, h, Config{Logf: func(format string, args ...interface{}) {
		if strings.Contains(format, "drain deadline expired") {
			close(cancelled)
		}
	}})
	p.Start()
	before := eng.DB().Len()

	entered := make(chan struct{})
	release := make(chan struct{})
	wedge, err := p.Submit(Batch{Name: "wedge", Before: func() error {
		close(entered)
		<-release
		return nil
	}, Update: graph.Update{Insert: dataset.BoronicEsters().Generate(1, 9400, 5)}})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	queued, err := p.Submit(Batch{Name: "queued", Update: graph.Update{Insert: dataset.BoronicEsters().Generate(1, 9410, 5)}})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	stopped := make(chan error, 1)
	go func() { stopped <- p.Stop(ctx) }()
	// Wait until Stop has actually hard-cancelled (racing on ctx.Done
	// alone could release the hook first), then unblock it: the batch
	// now applies under a dead context and must fail and roll back.
	<-cancelled
	close(release)
	if err := <-stopped; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stop err = %v, want deadline exceeded", err)
	}
	if res := <-wedge.Done; res.Err == nil {
		t.Fatal("hard-cancelled in-flight batch reported success")
	}
	if res := <-queued.Done; res.Err == nil {
		t.Fatal("flushed queued batch reported success")
	}
	if eng.DB().Len() != before {
		t.Fatal("hard cancel leaked engine mutations")
	}
	if h.Generation() != 1 {
		t.Fatalf("generation = %d after hard cancel, want 1", h.Generation())
	}
}

func TestPipelineStopWithoutStartFlushesQueue(t *testing.T) {
	eng := newEngine(t)
	p := NewPipeline(eng, NewHandle(), Config{})
	tkt, err := p.Submit(Batch{Name: "never-run"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := p.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if res := <-tkt.Done; !errors.Is(res.Err, ErrStopped) {
		t.Fatalf("unrun batch result = %+v, want ErrStopped", res)
	}
}

// TestPipelineBatchContextCancellation: a synchronous submitter's
// context bounds its batch — an expired context fails the batch without
// retries and without touching the engine.
func TestPipelineBatchContextCancellation(t *testing.T) {
	eng := newEngine(t)
	p, h := startPipeline(t, eng, Config{Backoff: time.Hour})
	before := eng.DB().Len()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tkt, err := p.Submit(Batch{
		Name:   "cancelled",
		Ctx:    ctx,
		Update: graph.Update{Insert: dataset.BoronicEsters().Generate(2, 9500, 5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := <-tkt.Done
	if !errors.Is(res.Err, context.Canceled) || res.Attempts != 1 || res.Poisoned {
		t.Fatalf("cancelled batch result = %+v", res)
	}
	if eng.DB().Len() != before || h.Generation() != 1 {
		t.Fatal("cancelled batch touched engine or published")
	}
}
