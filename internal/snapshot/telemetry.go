package snapshot

import "github.com/midas-graph/midas/internal/telemetry"

// pipelineTelemetry holds the pipeline's event-driven metric families.
// It is nil until SetTelemetry installs it; every record site
// nil-checks.
type pipelineTelemetry struct {
	retries        *telemetry.Counter    // midas_maintain_retries_total
	batches        *telemetry.CounterVec // midas_maintain_batches_total{outcome}
	publishSeconds *telemetry.Histogram  // midas_snapshot_publish_seconds
}

// SetTelemetry registers the snapshot/pipeline metric families on reg:
// the published generation, how far serving lags behind submitted work,
// queue depth, retry/outcome counters, and publish latency. Scraping
// them is lock-free with respect to the maintenance goroutine — every
// callback reads an atomic. Call before Start.
func (p *Pipeline) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil || reg == telemetry.Nop {
		p.tel = nil
		return
	}
	reg.NewGaugeFunc("midas_snapshot_generation",
		"Generation number of the currently served snapshot (0 = never published).",
		func() float64 { return float64(p.handle.Generation()) })
	reg.NewGaugeFunc("midas_snapshot_staleness_seconds",
		"Age of the oldest maintenance batch not yet reflected in the served snapshot (0 = current).",
		func() float64 { return p.Staleness().Seconds() })
	reg.NewGaugeFunc("midas_snapshot_age_seconds",
		"Wall-clock age of the served snapshot; grows on an idle panel without implying staleness.",
		func() float64 { return p.handle.Age().Seconds() })
	reg.NewGaugeFunc("midas_maintain_queue_depth",
		"Maintenance batches queued or in flight in the async pipeline.",
		func() float64 { return float64(p.Depth()) })
	reg.NewGaugeFunc("midas_maintain_batch_ewma_seconds",
		"Moving average of successful maintenance batch wall time (0 = none yet).",
		func() float64 { return p.BatchEWMA().Seconds() })
	reg.NewGaugeFunc("midas_maintain_poisoned",
		"Maintenance batches parked after exhausting their retry budget.",
		func() float64 {
			p.poisonMu.Lock()
			defer p.poisonMu.Unlock()
			return float64(len(p.poisoned))
		})
	p.tel = &pipelineTelemetry{
		retries: reg.NewCounter("midas_maintain_retries_total",
			"Maintenance batch retry attempts after retryable failures."),
		batches: reg.NewCounterVec("midas_maintain_batches_total",
			"Maintenance batches by terminal outcome.", "outcome"),
		publishSeconds: reg.NewHistogram("midas_snapshot_publish_seconds",
			"Time to build and publish a snapshot generation after a batch commits.", nil),
	}
}
