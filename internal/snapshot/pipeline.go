package snapshot

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/midas-graph/midas"
	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/backoff"
)

// Submission errors. ErrQueueFull is backpressure — the caller should
// surface 429/Retry-After, not block a read path. ErrStopped means the
// pipeline is draining or stopped; batches rejected or cancelled by
// shutdown carry it as their terminal error.
var (
	ErrQueueFull = errors.New("snapshot: maintenance queue full")
	ErrStopped   = errors.New("snapshot: maintenance pipeline stopped")
)

// Batch is one unit of maintenance work submitted to the pipeline.
type Batch struct {
	// Name identifies the batch in logs, poison records and journals.
	Name string
	// Update is the Δ+/Δ- payload. Colliding insert IDs are remapped on
	// the maintenance goroutine right before application (clients often
	// renumber from zero), exactly as the serial handlers used to.
	Update graph.Update
	// Ctx, when set, bounds this batch: if it expires before or during
	// application the batch fails with the context error (the engine
	// rolls back) and is not retried. Synchronous HTTP submissions pass
	// their request context; spool batches leave it nil and run under
	// the pipeline's lifetime.
	Ctx context.Context
	// Before, when set, runs on the maintenance goroutine immediately
	// before the batch is applied — the write-ahead journal's Begin
	// slot. Running it here, on the single consumer, makes journal
	// append order equal apply order by construction. An error fails
	// the attempt (retried like any other failure).
	Before func() error
	// After, when set, runs on the maintenance goroutine after the
	// batch applied, before the new generation is published — the
	// durability slot (persist the state bundle). An error fails the
	// attempt, but the retry re-runs only After: the batch is already
	// applied and must not be applied twice.
	After func(midas.MaintenanceReport) error
	// FromReplica marks a batch installed from a replication stream:
	// its insert IDs are applied verbatim (the primary already remapped
	// them, and the follower's database — a deterministic replay of the
	// primary's — has the same occupancy, so remapping again would
	// diverge). Admission hooks use it to distinguish replica installs
	// from client writes when fencing a follower. FromReplica batches
	// apply via Engine.ApplyReplicated — the database delta plus the
	// shipped ReplicaPatterns — never a local re-run of pattern
	// maintenance, whose decisions are not reproducible from serialized
	// state.
	FromReplica bool
	// ReplicaPatterns is the primary's post-apply pattern set, installed
	// verbatim. Only read when FromReplica is set.
	ReplicaPatterns []*graph.Graph
}

// Result is the terminal outcome of one submitted batch, delivered
// exactly once on the ticket's Done channel.
type Result struct {
	// Name echoes the batch name.
	Name string
	// Report is the maintenance report (valid when the batch applied,
	// even if a later After hook ultimately failed).
	Report midas.MaintenanceReport
	// Generation is the generation published for this batch (0 when it
	// failed, or when publishing itself failed after a successful
	// apply).
	Generation uint64
	// Applied reports whether the engine mutation committed.
	Applied bool
	// Attempts is how many attempts were made.
	Attempts int
	// Err is the terminal error (nil on success).
	Err error
	// Poisoned marks a batch parked after exhausting its retry budget
	// on retryable errors. Non-retryable rejections (invalid updates,
	// expired contexts, shutdown) are not poisoned.
	Poisoned bool
}

// Ticket is the caller's handle on a submitted batch.
type Ticket struct {
	// Position is the batch's 1-based position in the pipeline at
	// submission time (1 = next to run, counting the in-flight batch).
	Position int
	// Done delivers the terminal Result exactly once. The channel is
	// buffered: the pipeline never blocks on an absent reader.
	Done <-chan Result
}

// PoisonRecord describes one parked batch.
type PoisonRecord struct {
	Name     string
	Attempts int
	Err      error
	At       time.Time
}

// Config parameterises a Pipeline. The zero value is usable.
type Config struct {
	// QueueSize bounds the number of queued batches (excluding the
	// in-flight one); submissions beyond it get ErrQueueFull. 0 = 64.
	QueueSize int
	// MaxAttempts is the retry budget per batch for retryable failures
	// (0 = 3). Attempt n+1 waits a capped exponential backoff after
	// attempt n fails.
	MaxAttempts int
	// Backoff seeds the retry schedule: capped exponential growth per
	// consecutive failure (32× cap) plus a deterministic per-batch
	// jitter — the spool watcher's PR 4 discipline. 0 = retry
	// immediately.
	Backoff time.Duration
	// RenderSVG pre-renders pattern views into published snapshots.
	RenderSVG func(*graph.Graph) string
	// Degraded marks published snapshots as serving degraded state
	// (set when the process started from salvage).
	Degraded bool
	// Admit, when set, is consulted on the maintenance goroutine before
	// a batch's first attempt. A non-nil error rejects the batch
	// terminally — no retry, no poison record — with that error as the
	// result. It is the role-fencing seam: a follower's pipeline rejects
	// client writes (batches without FromReplica) while its replication
	// stream keeps flowing, and a demoted primary rejects everything
	// that has not shipped.
	Admit func(Batch) error
	// OnApplied, when set, runs on the maintenance goroutine after a
	// batch's After hook succeeds and before the new generation is
	// published — the replication commit slot. It observes the batch
	// exactly as applied (Update carries post-remap insert IDs) plus the
	// maintenance report; a primary encodes and appends the record to
	// its replication log here, so log order equals apply order by
	// construction. An error fails the attempt; the retry re-runs only
	// After and OnApplied (the engine mutation is already committed), so
	// the hook must be idempotent.
	OnApplied func(Batch, midas.MaintenanceReport) error
	// Gate, when set, is acquired on the maintenance goroutine before a
	// batch's first attempt and released once the batch is terminal. It
	// is the shared-worker-budget seam for multi-tenant serving: a
	// weighted semaphore here keeps one shard's major batch from
	// starving every other shard of maintenance workers. The returned
	// func releases the acquisition; an error fails the batch without
	// retrying (the queue slot is consumed, the engine untouched).
	Gate func(ctx context.Context) (func(), error)
	// Logf, when set, receives diagnostic lines.
	Logf func(format string, args ...interface{})
	// Now and Sleep replace the wall clock for tests. Sleep must return
	// false when interrupted by shutdown.
	Now   func() time.Time
	Sleep func(d time.Duration) bool
}

// Pipeline is the async maintenance pipeline: a bounded queue drained
// by one background goroutine that owns every engine mutation. Each
// successful batch publishes the next snapshot generation; failures
// roll back (the engine's transactional Maintain), are retried with
// capped exponential backoff, and are parked as poisoned once the
// budget is spent — through all of which readers keep loading the last
// good generation.
type Pipeline struct {
	eng    *midas.Engine
	handle *Handle
	cfg    Config

	queue   chan *job
	drainCh chan struct{}
	doneCh  chan struct{}

	rootCtx    context.Context
	rootCancel context.CancelFunc

	mu      sync.Mutex
	started bool
	stopped bool
	// pending holds the enqueue instant of every batch not yet
	// terminal (queued + in-flight), FIFO.
	pending []time.Time

	// oldestNanos mirrors pending's head as unix nanoseconds (0 =
	// idle) so Staleness is a single atomic load on read paths.
	oldestNanos atomic.Int64
	depth       atomic.Int64
	retries     atomic.Uint64
	applied     atomic.Uint64

	// ewmaNanos tracks an exponentially weighted moving average of
	// batch wall time (enqueue wait excluded), in nanoseconds. 0 = no
	// batch has completed yet. Admission control reads it to size
	// Retry-After hints proportionally to observed batch cost.
	ewmaNanos atomic.Int64

	poisonMu sync.Mutex
	poisoned []PoisonRecord

	tel *pipelineTelemetry
}

type job struct {
	batch      Batch
	done       chan Result
	enqueuedAt time.Time
	attempts   int
	appliedOK  bool
	rep        midas.MaintenanceReport
}

// NewPipeline builds a pipeline over eng publishing through handle.
// Call Start before submitting.
func NewPipeline(eng *midas.Engine, handle *Handle, cfg Config) *Pipeline {
	size := cfg.QueueSize
	if size <= 0 {
		size = 64
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Pipeline{
		eng:        eng,
		handle:     handle,
		cfg:        cfg,
		queue:      make(chan *job, size),
		drainCh:    make(chan struct{}),
		doneCh:     make(chan struct{}),
		rootCtx:    ctx,
		rootCancel: cancel,
	}
}

// Handle returns the generation pointer this pipeline publishes to.
func (p *Pipeline) Handle() *Handle { return p.handle }

func (p *Pipeline) maxAttempts() int {
	if p.cfg.MaxAttempts <= 0 {
		return 3
	}
	return p.cfg.MaxAttempts
}

func (p *Pipeline) now() time.Time {
	if p.cfg.Now != nil {
		return p.cfg.Now()
	}
	return time.Now()
}

func (p *Pipeline) logf(format string, args ...interface{}) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

// sleep waits d or until shutdown; reports false when interrupted.
func (p *Pipeline) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	if p.cfg.Sleep != nil {
		return p.cfg.Sleep(d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.rootCtx.Done():
		return false
	}
}

// Start launches the maintenance goroutine. Idempotent.
func (p *Pipeline) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started || p.stopped {
		return
	}
	p.started = true
	go p.run()
}

// Stop drains the pipeline: no new submissions are accepted, queued
// batches are applied normally until ctx expires, after which the
// in-flight batch is cancelled (rolling back cleanly) and the rest are
// flushed with ErrStopped. It returns ctx.Err() when the drain was cut
// short, nil on a clean drain. Safe to call more than once.
func (p *Pipeline) Stop(ctx context.Context) error {
	p.mu.Lock()
	started := p.started
	if !p.stopped {
		p.stopped = true
		close(p.drainCh)
	}
	p.mu.Unlock()
	if !started {
		// Never ran: flush whatever was queued so waiters unblock.
		p.rootCancel()
		for {
			select {
			case j := <-p.queue:
				p.finish(j, Result{Name: j.batch.Name, Attempts: j.attempts, Err: ErrStopped})
			default:
				close(p.doneCh)
				return nil
			}
		}
	}
	select {
	case <-p.doneCh:
		return nil
	case <-ctx.Done():
		p.logf("snapshot: drain deadline expired; cancelling in-flight batch")
		p.rootCancel()
		<-p.doneCh
		return ctx.Err()
	}
}

// Submit enqueues a batch. It never blocks: a full queue returns
// ErrQueueFull (backpressure for the caller to surface), a stopped
// pipeline ErrStopped.
func (p *Pipeline) Submit(b Batch) (Ticket, error) {
	j := &job{batch: b, done: make(chan Result, 1), enqueuedAt: p.now()}
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return Ticket{}, ErrStopped
	}
	select {
	case p.queue <- j:
	default:
		p.mu.Unlock()
		return Ticket{}, ErrQueueFull
	}
	p.pending = append(p.pending, j.enqueuedAt)
	pos := len(p.pending)
	p.oldestNanos.Store(p.pending[0].UnixNano())
	p.depth.Store(int64(pos))
	p.mu.Unlock()
	return Ticket{Position: pos, Done: j.done}, nil
}

// Depth returns the number of non-terminal batches (queued plus
// in-flight).
func (p *Pipeline) Depth() int { return int(p.depth.Load()) }

// Staleness is how far the published snapshot lags behind submitted
// work: the age of the oldest batch not yet terminal, or 0 when the
// pipeline is idle (an idle panel is current, not stale).
func (p *Pipeline) Staleness() time.Duration {
	ns := p.oldestNanos.Load()
	if ns == 0 {
		return 0
	}
	d := p.now().Sub(time.Unix(0, ns))
	if d < 0 {
		return 0
	}
	return d
}

// BatchEWMA returns the moving average of successful batch wall time
// (first attempt through publish, retries included), or 0 before any
// batch completes. Admission control multiplies it by queue depth to
// produce proportional Retry-After hints.
func (p *Pipeline) BatchEWMA() time.Duration {
	return time.Duration(p.ewmaNanos.Load())
}

// observeBatchDuration folds one completed batch into the EWMA. The
// single-consumer loop is the only writer; α=0.3 follows recent
// batches quickly without letting one outlier own the estimate.
func (p *Pipeline) observeBatchDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	old := p.ewmaNanos.Load()
	if old == 0 {
		p.ewmaNanos.Store(int64(d))
		return
	}
	p.ewmaNanos.Store(old + (int64(d)-old)*3/10)
}

// Retries returns the total retry attempts performed.
func (p *Pipeline) Retries() uint64 { return p.retries.Load() }

// Applied returns the total successfully applied batches.
func (p *Pipeline) Applied() uint64 { return p.applied.Load() }

// Poisoned returns the parked batches, oldest first.
func (p *Pipeline) Poisoned() []PoisonRecord {
	p.poisonMu.Lock()
	defer p.poisonMu.Unlock()
	out := make([]PoisonRecord, len(p.poisoned))
	copy(out, p.poisoned)
	return out
}

// run is the maintenance goroutine: the single owner of every engine
// mutation and snapshot publish.
func (p *Pipeline) run() {
	defer close(p.doneCh)
	for {
		select {
		case j := <-p.queue:
			p.process(j)
		case <-p.drainCh:
			for {
				select {
				case j := <-p.queue:
					p.process(j)
				default:
					return
				}
			}
		}
	}
}

// process drives one batch to its terminal state: attempt → retry with
// backoff → publish on success or park on exhaustion.
func (p *Pipeline) process(j *job) {
	ctx, cancel := p.batchCtx(j.batch)
	defer cancel()
	if p.cfg.Admit != nil {
		if err := p.cfg.Admit(j.batch); err != nil {
			if p.tel != nil {
				p.tel.batches.With("rejected").Inc()
			}
			p.finish(j, Result{Name: j.batch.Name, Attempts: j.attempts, Err: err})
			return
		}
	}
	if p.cfg.Gate != nil {
		release, err := p.cfg.Gate(ctx)
		if err != nil {
			if p.tel != nil {
				p.tel.batches.With("rejected").Inc()
			}
			p.finish(j, Result{Name: j.batch.Name, Attempts: j.attempts, Err: err})
			return
		}
		defer release()
	}
	started := p.now()
	for {
		j.attempts++
		err := p.attempt(ctx, j)
		if err == nil {
			gen := p.publish(j)
			p.applied.Add(1)
			p.observeBatchDuration(p.now().Sub(started))
			if p.tel != nil {
				p.tel.batches.With("applied").Inc()
			}
			p.finish(j, Result{
				Name: j.batch.Name, Report: j.rep, Generation: gen,
				Applied: true, Attempts: j.attempts,
			})
			return
		}
		if !retryable(err) {
			if p.tel != nil {
				p.tel.batches.With("rejected").Inc()
			}
			p.finish(j, Result{
				Name: j.batch.Name, Report: j.rep, Applied: j.appliedOK,
				Attempts: j.attempts, Err: err,
			})
			return
		}
		if j.attempts >= p.maxAttempts() {
			p.park(j, err)
			return
		}
		p.retries.Add(1)
		if p.tel != nil {
			p.tel.retries.Inc()
		}
		d := p.retryDelay(j.batch.Name, j.attempts)
		p.logf("snapshot: batch %s attempt %d failed (%v); retrying in %v", j.batch.Name, j.attempts, err, d)
		if !p.sleep(d) {
			p.finish(j, Result{
				Name: j.batch.Name, Report: j.rep, Applied: j.appliedOK,
				Attempts: j.attempts, Err: ErrStopped,
			})
			return
		}
	}
}

// batchCtx derives the context one batch applies under: its own (when
// set) so deadlines interrupt it, additionally cancelled by a hard
// pipeline stop.
func (p *Pipeline) batchCtx(b Batch) (context.Context, context.CancelFunc) {
	if b.Ctx == nil {
		return p.rootCtx, func() {}
	}
	ctx, cancel := context.WithCancel(b.Ctx)
	unhook := context.AfterFunc(p.rootCtx, cancel)
	return ctx, func() { unhook(); cancel() }
}

// attempt runs one try of the batch. Panics anywhere in the hooks or
// the engine are captured as errors: the engine's own Maintain already
// restores its pre-batch state on panic, so a panicking batch is just a
// failed batch and readers never notice. A batch whose apply already
// committed (appliedOK) only re-runs its After hook — applying twice
// would double the update.
func (p *Pipeline) attempt(ctx context.Context, j *job) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("snapshot: batch %s panicked: %v", j.batch.Name, r)
		}
	}()
	if err := ctx.Err(); err != nil {
		return err
	}
	if !j.appliedOK {
		if j.batch.Before != nil {
			if err := j.batch.Before(); err != nil {
				return err
			}
		}
		var rep midas.MaintenanceReport
		var err error
		if j.batch.FromReplica {
			rep, err = p.eng.ApplyReplicated(ctx, j.batch.Update, j.batch.ReplicaPatterns)
		} else {
			p.remapInsertIDs(j.batch.Update)
			rep, err = p.eng.MaintainContext(ctx, j.batch.Update)
		}
		if err != nil {
			return err
		}
		j.appliedOK = true
		j.rep = rep
	}
	if j.batch.After != nil {
		if err := j.batch.After(j.rep); err != nil {
			return err
		}
	}
	if p.cfg.OnApplied != nil {
		if err := p.cfg.OnApplied(j.batch, j.rep); err != nil {
			return err
		}
	}
	return nil
}

// remapInsertIDs renumbers colliding insert IDs against the live
// database — the policy the serial HTTP handler and the spool watcher
// both applied, now centralised on the one goroutine allowed to read
// the engine's database. Idempotent across retries: a rolled-back
// attempt restores the database, so the same collisions resolve the
// same way.
func (p *Pipeline) remapInsertIDs(u graph.Update) {
	db := p.eng.DB()
	next := db.NextID()
	for _, g := range u.Insert {
		if db.Has(g.ID) {
			g.ID = next
			next++
		}
	}
}

// publish builds and swaps in the next generation. The engine state is
// committed at this point; a failure here (it would take a bug in the
// read-only view export) keeps readers on the previous generation and
// is logged rather than failing the batch.
func (p *Pipeline) publish(j *job) (gen uint64) {
	defer func() {
		if r := recover(); r != nil {
			p.logf("snapshot: publishing generation after batch %s panicked: %v; readers stay on generation %d",
				j.batch.Name, r, p.handle.Generation())
			gen = 0
		}
	}()
	if p.tel != nil {
		defer p.tel.publishSeconds.Start().End()
	}
	s := Build(p.eng, BuildOptions{
		RenderSVG: p.cfg.RenderSVG,
		Degraded:  p.cfg.Degraded,
		Report:    j.rep,
	})
	return p.handle.Publish(s)
}

// park records a poisoned batch and reports its terminal failure.
func (p *Pipeline) park(j *job, cause error) {
	rec := PoisonRecord{Name: j.batch.Name, Attempts: j.attempts, Err: cause, At: p.now()}
	p.poisonMu.Lock()
	p.poisoned = append(p.poisoned, rec)
	p.poisonMu.Unlock()
	if p.tel != nil {
		p.tel.batches.With("poisoned").Inc()
	}
	p.logf("snapshot: batch %s poisoned after %d attempts: %v", j.batch.Name, j.attempts, cause)
	p.finish(j, Result{
		Name: j.batch.Name, Report: j.rep, Applied: j.appliedOK,
		Attempts: j.attempts, Err: cause, Poisoned: true,
	})
}

// finish retires a job: pops its pending slot (refreshing the
// staleness mirror) and delivers the terminal result.
func (p *Pipeline) finish(j *job, res Result) {
	p.mu.Lock()
	if len(p.pending) > 0 {
		p.pending = p.pending[1:]
	}
	if len(p.pending) == 0 {
		p.oldestNanos.Store(0)
	} else {
		p.oldestNanos.Store(p.pending[0].UnixNano())
	}
	p.depth.Store(int64(len(p.pending)))
	p.mu.Unlock()
	j.done <- res
}

// retryable classifies terminal-vs-transient failures: invalid updates
// can never succeed (ErrConflict wraps ErrInvalidUpdate), and expired
// or cancelled contexts mean the caller or shutdown withdrew the work.
// Everything else — injected faults, I/O errors from hooks, captured
// panics — gets the retry budget.
func retryable(err error) bool {
	switch {
	case errors.Is(err, midas.ErrInvalidUpdate),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, ErrStopped):
		return false
	}
	return true
}

// retryDelay is the backoff before the batch's next attempt: the
// shared capped-exponential schedule with deterministic per-batch
// jitter (internal/backoff), a pure function of (name, attempt) so
// recovery behaviour is reproducible.
func (p *Pipeline) retryDelay(name string, attempt int) time.Duration {
	return backoff.Delay(p.cfg.Backoff, name, attempt)
}
