package snapshot

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/dataset"
	"github.com/midas-graph/midas/internal/faultinject"
)

// fingerprint reduces everything a reader can observe through a
// snapshot to a deterministic string. Two observations of the same
// generation must produce the same fingerprint — a difference means a
// reader saw a partially-applied batch.
func fingerprint(s *Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "gen=%d db=%d deg=%v q=%.6f|", s.Generation, s.DBLen, s.Degraded, s.Quality)
	for i, p := range s.Patterns {
		fmt.Fprintf(&b, "%d:%d/%d scov=%.6f;", p.ID, p.Order(), p.Size(), s.Scov(i))
	}
	return b.String()
}

// TestConcurrentReadsDuringMaintenance is the PR's core acceptance
// test, meant to run under -race: reader goroutines hammer the handle
// (pattern walks, stats, searcher queries) while the pipeline applies a
// stream of insert/delete batches. Every observation is fingerprinted
// by generation; a generation whose fingerprint ever changes means a
// reader observed a half-applied batch. A failing batch is injected
// mid-stream to check failures are invisible to readers too.
func TestConcurrentReadsDuringMaintenance(t *testing.T) {
	eng := newEngine(t)
	p, h := startPipeline(t, eng, Config{Backoff: 1})

	var (
		prints sync.Map // generation -> fingerprint
		stop   atomic.Bool
		reads  atomic.Int64
	)
	record := func(s *Snapshot) error {
		fp := fingerprint(s)
		if prev, loaded := prints.LoadOrStore(s.Generation, fp); loaded && prev.(string) != fp {
			return fmt.Errorf("generation %d observed with two fingerprints:\n%s\n%s", s.Generation, prev, fp)
		}
		return nil
	}

	const readers = 8
	errCh := make(chan error, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			q := graph.Path(0, "C", "C")
			for !stop.Load() {
				s := h.Load()
				if s == nil {
					continue
				}
				if err := record(s); err != nil {
					errCh <- err
					return
				}
				// Exercise the searcher on every fourth pass — it is
				// the deepest shared structure in the snapshot.
				if reads.Add(1)%4 == 0 {
					rs, _ := s.Searcher.Query(q, 4)
					_ = rs
				}
			}
		}(r)
	}

	// Writer: a stream of applies with one injected mid-batch failure.
	for i := 0; i < 6; i++ {
		if i == 3 {
			st := "csg"
			faultinject.EnableErr("core.maintain."+st, fmt.Errorf("injected mid-stream"))
			tkt, err := p.Submit(Batch{Name: "doomed", Update: graph.Update{
				Insert: dataset.BoronicEsters().Generate(2, 8000, 5)}})
			if err != nil {
				t.Fatal(err)
			}
			res := <-tkt.Done
			faultinject.Reset()
			if res.Err == nil {
				t.Fatal("injected batch applied anyway")
			}
			continue
		}
		ins := dataset.BoronicEsters().Generate(2, 8100+20*i, 5)
		tkt, err := p.Submit(Batch{Name: fmt.Sprintf("stream-%d", i), Update: graph.Update{Insert: ins}})
		if err != nil {
			t.Fatal(err)
		}
		if res := <-tkt.Done; res.Err != nil {
			t.Fatalf("stream batch %d: %v", i, res.Err)
		}
	}

	stop.Store(true)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// 1 bootstrap + 5 applied batches (the doomed one publishes
	// nothing), and readers were actually running throughout.
	if got := h.Generation(); got != 6 {
		t.Fatalf("final generation = %d, want 6", got)
	}
	if reads.Load() == 0 {
		t.Fatal("no reads recorded")
	}
}

// TestFailedBatchInvisibleToReaders pins the old snapshot across a
// mid-batch crash: the pointer a reader held before the failing batch
// is the very pointer still published after it, byte-identical, and the
// engine's database is back to its pre-batch state.
func TestFailedBatchInvisibleToReaders(t *testing.T) {
	eng := newEngine(t)
	p, h := startPipeline(t, eng, Config{Backoff: 1, MaxAttempts: 2})

	held := h.Load()
	heldPrint := fingerprint(held)
	before := eng.DB().Len()

	st := "apply"
	faultinject.EnableErr("core.maintain."+st, fmt.Errorf("injected crash"))
	defer faultinject.Reset()
	tkt, err := p.Submit(Batch{Name: "crashy", Update: graph.Update{
		Insert: dataset.BoronicEsters().Generate(3, 8500, 5)}})
	if err != nil {
		t.Fatal(err)
	}
	res := <-tkt.Done
	if res.Err == nil || !res.Poisoned {
		t.Fatalf("injected batch result = %+v, want poisoned failure", res)
	}

	if got := h.Load(); got != held {
		t.Fatal("published snapshot pointer changed across a failed batch")
	}
	if fingerprint(h.Load()) != heldPrint {
		t.Fatal("snapshot contents changed across a failed batch")
	}
	if eng.DB().Len() != before {
		t.Fatal("failed batch leaked database mutations")
	}

	// The pipeline still works once the fault clears.
	faultinject.Reset()
	tkt, err = p.Submit(Batch{Name: "recovery", Update: graph.Update{
		Insert: dataset.BoronicEsters().Generate(2, 8600, 5)}})
	if err != nil {
		t.Fatal(err)
	}
	if res := <-tkt.Done; res.Err != nil || res.Generation != 2 {
		t.Fatalf("recovery batch = %+v", res)
	}
}
