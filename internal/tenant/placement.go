package tenant

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Placement maps tenants to process slots with a consistent-hash ring
// — the seam toward multi-process deployment. This PR runs every
// tenant in slot 0 of a one-slot ring, but the Router already rejects
// tenants placed elsewhere (421 Misdirected Request), so splitting a
// fleet is a config change, not a code change. Virtual nodes smooth
// the distribution; adding or removing one slot moves only the tenants
// whose arcs it owned, which is the property that makes rebalancing
// cheap.
type Placement struct {
	slots  int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	slot int
}

// placementVnodes is the virtual-node fan-out per slot. 64 keeps the
// largest/smallest arc ratio low single-digit percent at fleet sizes
// this system targets.
const placementVnodes = 64

// NewPlacement builds a ring of n process slots (n < 1 is treated as
// 1).
func NewPlacement(n int) *Placement {
	if n < 1 {
		n = 1
	}
	p := &Placement{slots: n, points: make([]ringPoint, 0, n*placementVnodes)}
	for slot := 0; slot < n; slot++ {
		for v := 0; v < placementVnodes; v++ {
			p.points = append(p.points, ringPoint{
				hash: placementHash(fmt.Sprintf("slot-%d#%d", slot, v)),
				slot: slot,
			})
		}
	}
	sort.Slice(p.points, func(i, j int) bool {
		if p.points[i].hash != p.points[j].hash {
			return p.points[i].hash < p.points[j].hash
		}
		return p.points[i].slot < p.points[j].slot
	})
	return p
}

// Slots returns the ring size.
func (p *Placement) Slots() int {
	if p == nil {
		return 1
	}
	return p.slots
}

// Slot returns the process slot owning the tenant: the first ring
// point clockwise of the tenant's hash.
func (p *Placement) Slot(tenant string) int {
	if p == nil || p.slots <= 1 {
		return 0
	}
	h := placementHash(tenant)
	i := sort.Search(len(p.points), func(i int) bool { return p.points[i].hash >= h })
	if i == len(p.points) {
		i = 0 // wrap: the ring is circular
	}
	return p.points[i].slot
}

// placementHash is fnv-1a with a finalizing avalanche. Raw FNV of
// near-identical keys ("slot-0#17" vs "slot-1#17") clusters by prefix
// — whole slots end up owning contiguous ring regions — so the mix
// step spreads the bits before they hit the ring.
func placementHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a cheap bijective avalanche.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
