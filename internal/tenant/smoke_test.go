package tenant

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"github.com/midas-graph/midas/internal/telemetry"
)

// TestTenantsSmoke is the `make tenants-smoke` target: boot three
// tenants behind one router over real HTTP, maintain exactly one of
// them, query all three, and assert the isolation contract — every
// response names its shard in X-Midas-Tenant, and only the maintained
// tenant's generation moves.
func TestTenantsSmoke(t *testing.T) {
	opts := memoryOptions()
	opts.Budget = NewBudget(2)
	opts.Telemetry = telemetry.NewRegistry()
	r := NewRegistry(opts)
	ids := []string{"aids", "emol", "pubchem"}
	for _, id := range ids {
		addTenant(t, r, id)
	}
	srv := httptest.NewServer(NewRouter(r, opts.Telemetry, nil))
	defer srv.Close()

	// Baseline: query every tenant, record generations and headers.
	genBefore := make(map[string]uint64, len(ids))
	for _, id := range ids {
		resp := httpGet(t, srv.URL+"/t/"+id+"/patterns")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /t/%s/patterns = %d", id, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Midas-Tenant"); got != id {
			t.Fatalf("isolation header = %q, want %q", got, id)
		}
		genBefore[id] = parseGen(t, resp)
		var patterns []map[string]interface{}
		if err := json.NewDecoder(resp.Body).Decode(&patterns); err != nil {
			t.Fatalf("decoding %s patterns: %v", id, err)
		}
		resp.Body.Close()
		if len(patterns) == 0 {
			t.Fatalf("tenant %s serves no patterns", id)
		}
	}

	// Maintain exactly one tenant.
	body := strings.NewReader("t 0\nv 0 C\nv 1 N\nv 2 O\ne 0 1\ne 1 2\n")
	resp, err := http.Post(srv.URL+"/t/emol/maintain", "text/plain", body)
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("maintain emol = %d: %s", resp.StatusCode, payload)
	}
	if got := resp.Header.Get("X-Midas-Tenant"); got != "emol" {
		t.Fatalf("maintain isolation header = %q", got)
	}

	// Re-query all three: only emol's generation moved.
	for _, id := range ids {
		resp := httpGet(t, srv.URL+"/t/"+id+"/patterns")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		gen := parseGen(t, resp)
		switch {
		case id == "emol" && gen != genBefore[id]+1:
			t.Fatalf("emol generation = %d, want %d", gen, genBefore[id]+1)
		case id != "emol" && gen != genBefore[id]:
			t.Fatalf("tenant %s generation moved %d → %d on emol's batch", id, genBefore[id], gen)
		}
	}

	// The aggregated readyz names all three shards, worst-of ok.
	resp = httpGet(t, srv.URL+"/readyz")
	ready, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(ready), "ok (3 tenant(s))") {
		t.Fatalf("readyz = %d:\n%s", resp.StatusCode, ready)
	}
	for _, id := range ids {
		if !strings.Contains(string(ready), id+": ok") {
			t.Fatalf("readyz missing %s:\n%s", id, ready)
		}
	}

	// The shared /metrics carries all three tenant labels.
	resp = httpGet(t, srv.URL+"/metrics")
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, id := range ids {
		if !strings.Contains(string(metrics), fmt.Sprintf(`midas_snapshot_generation{tenant=%q}`, id)) {
			t.Fatalf("/metrics missing tenant %s generation gauge", id)
		}
	}
}

func httpGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func parseGen(t *testing.T, resp *http.Response) uint64 {
	t.Helper()
	gen, err := strconv.ParseUint(resp.Header.Get("X-Midas-Generation"), 10, 64)
	if err != nil {
		t.Fatalf("bad X-Midas-Generation %q: %v", resp.Header.Get("X-Midas-Generation"), err)
	}
	return gen
}
