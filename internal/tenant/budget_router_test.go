package tenant

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"runtime"
	"testing"
	"time"
)

// TestBudgetWaiterRemovedWhileQueued pins the shard-removal path
// through the weighted FIFO: draining a shard cancels its pipeline
// context, which must pull its queued acquisition out of the budget
// without disturbing the waiters around it — no slot leaks, no
// reordering, no stuck neighbours.
func TestBudgetWaiterRemovedWhileQueued(t *testing.T) {
	b := NewBudget(2)
	ctx := context.Background()

	hold, err := b.Acquire(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Queue three waiters in a known order; the middle one belongs to
	// the shard being removed.
	type grant struct {
		name string
		rel  func()
	}
	grants := make(chan grant, 2)
	enqueue := func(name string, weight int, ctx context.Context, errCh chan error) {
		go func() {
			rel, err := b.Acquire(ctx, weight)
			if err != nil {
				errCh <- err
				return
			}
			grants <- grant{name, rel}
		}()
	}

	removedCtx, removeShard := context.WithCancel(ctx)
	removedErr := make(chan error, 1)
	enqueue("a", 2, ctx, nil)
	waitFor(t, func() bool { return b.Waiting() == 1 })
	enqueue("removed", 2, removedCtx, removedErr)
	waitFor(t, func() bool { return b.Waiting() == 2 })
	enqueue("c", 1, ctx, nil)
	waitFor(t, func() bool { return b.Waiting() == 3 })

	// The shard is removed while parked mid-queue.
	removeShard()
	if err := <-removedErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("removed waiter's Acquire = %v, want context.Canceled", err)
	}
	if got := b.Waiting(); got != 2 {
		t.Fatalf("Waiting after removal = %d, want 2", got)
	}

	// The survivors are admitted in their original order once capacity
	// frees. Their weights (2, then 1) cannot fit together, so the
	// admissions are serialized and the order is observable.
	hold()
	g1 := <-grants
	if g1.name != "a" {
		t.Fatalf("first grant went to %s, want a", g1.name)
	}
	if got := b.Waiting(); got != 1 {
		t.Fatalf("Waiting while a holds = %d, want 1", got)
	}
	g1.rel()
	g2 := <-grants
	if g2.name != "c" {
		t.Fatalf("second grant went to %s, want c", g2.name)
	}
	g2.rel()
	if got := b.InUse(); got != 0 {
		t.Fatalf("InUse after releases = %d, want 0", got)
	}
	if got := b.Waiting(); got != 0 {
		t.Fatalf("Waiting after releases = %d, want 0", got)
	}
}

// TestBudgetZeroWeightOneWorkerNoStarvation drives the degenerate
// configuration — a one-worker budget with zero-weight (clamped to 1)
// acquisitions — through a full FIFO rotation: every waiter must be
// admitted, in arrival order, with the budget fully accounted at each
// step.
func TestBudgetZeroWeightOneWorkerNoStarvation(t *testing.T) {
	b := NewBudget(1)
	ctx := context.Background()

	hold, err := b.Acquire(ctx, 0) // clamps to 1
	if err != nil {
		t.Fatal(err)
	}
	if got := b.InUse(); got != 1 {
		t.Fatalf("zero-weight InUse = %d, want 1", got)
	}

	const n = 8
	admitted := make(chan int, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			rel, err := b.Acquire(ctx, 0)
			if err != nil {
				t.Error(err)
				return
			}
			admitted <- i
			rel()
		}()
		// Sequential enqueue makes the FIFO order deterministic.
		waitFor(t, func() bool { return b.Waiting() == i+1 })
	}

	hold()
	for i := 0; i < n; i++ {
		if got := <-admitted; got != i {
			t.Fatalf("admission %d went to waiter %d; FIFO order broken", i, got)
		}
	}
	if got, waiting := b.InUse(), b.Waiting(); got != 0 || waiting != 0 {
		t.Fatalf("after rotation InUse = %d, Waiting = %d; want 0, 0", got, waiting)
	}
}

// TestRouterPathHeaderPrecedence pins tenant resolution: the /t/{id}
// path prefix always wins over the X-Midas-Tenant header — including
// when the path names an unknown tenant — and the header-only fallback
// 404s tenants the registry does not hold.
func TestRouterPathHeaderPrecedence(t *testing.T) {
	r := NewRegistry(memoryOptions())
	addTenant(t, r, "alpha")
	addTenant(t, r, "beta")
	rt := NewRouter(r, nil, nil)

	// Path and header disagree: the path's tenant answers.
	w := get(t, rt, "/t/alpha/patterns", map[string]string{"X-Midas-Tenant": "beta"})
	if w.Code != http.StatusOK {
		t.Fatalf("path+header GET = %d, want 200", w.Code)
	}
	if got := w.Header().Get("X-Midas-Tenant"); got != "alpha" {
		t.Fatalf("answered by %q, want alpha (path must beat header)", got)
	}

	// An unknown path tenant is not rescued by a valid header.
	w = get(t, rt, "/t/ghost/patterns", map[string]string{"X-Midas-Tenant": "alpha"})
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown path tenant = %d, want 404 even with a valid header", w.Code)
	}

	// Header-only fallback reaches the named shard...
	w = get(t, rt, "/patterns", map[string]string{"X-Midas-Tenant": "beta"})
	if w.Code != http.StatusOK {
		t.Fatalf("header-only GET = %d, want 200", w.Code)
	}
	if got := w.Header().Get("X-Midas-Tenant"); got != "beta" {
		t.Fatalf("header-only answered by %q, want beta", got)
	}

	// ...and 404s unknown tenants rather than guessing.
	w = get(t, rt, "/patterns", map[string]string{"X-Midas-Tenant": "ghost"})
	if w.Code != http.StatusNotFound {
		t.Fatalf("header-only unknown tenant = %d, want 404", w.Code)
	}
}

// TestWatcherStopsOnDrain is the goroutine-leak regression for the
// shard's spool watcher (the shape goroleak verifies statically): the
// watcher goroutine must be running after Add and provably gone once
// Drain returns — Drain closes stopWatch and joins watchWG, so a
// surviving panel.(*Watcher).Run frame after Drain is a leak.
func TestWatcherStopsOnDrain(t *testing.T) {
	opts := diskOptions(t.TempDir())
	r := NewRegistry(opts)
	if _, err := r.Add("aids", Overrides{}); err != nil {
		t.Fatalf("Add: %v", err)
	}

	const watcherFrame = "panel.(*Watcher).Run"
	stacks := func() []byte {
		buf := make([]byte, 1<<20)
		return buf[:runtime.Stack(buf, true)]
	}
	waitFor(t, func() bool { return bytes.Contains(stacks(), []byte(watcherFrame)) })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.Remove(ctx, "aids"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	// Drain joins watchWG before returning, so the frame must already
	// be gone — no polling window needed.
	if bytes.Contains(stacks(), []byte(watcherFrame)) {
		t.Fatal("spool watcher goroutine still running after Drain")
	}
}
