package tenant

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/faultinject"
	"github.com/midas-graph/midas/internal/snapshot"
)

// tenantFingerprint reduces everything a reader can observe through a
// shard's snapshot to a deterministic string — the PR 6 read-hammer
// harness, applied across the tenant boundary: if tenant B's failing
// maintenance ever leaks into tenant A, some generation of A prints
// two different fingerprints or A's generation moves.
func tenantFingerprint(s *snapshot.Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "gen=%d db=%d deg=%v q=%.6f|", s.Generation, s.DBLen, s.Degraded, s.Quality)
	for i, p := range s.Patterns {
		fmt.Fprintf(&b, "%d:%d/%d scov=%.6f;", p.ID, p.Order(), p.Size(), s.Scov(i))
	}
	return b.String()
}

// p99 returns the 99th-percentile of observed latencies.
func p99(lat []time.Duration) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[(len(lat)*99)/100]
}

// TestCrossTenantIsolationUnderFailingBatch is the PR's core isolation
// test, meant to run under -race: reader goroutines hammer tenant A's
// endpoints while tenant B grinds through a forced failing + retrying
// major batch on the shared worker budget. Tenant A must be untouched:
// its generation never moves, every observation of a generation is
// byte-identical, and its read p99 stays in the same regime as idle
// (the bound is deliberately loose — CI machines jitter — the
// byte-identical fingerprints are the sharp assertion).
func TestCrossTenantIsolationUnderFailingBatch(t *testing.T) {
	opts := memoryOptions()
	opts.Budget = NewBudget(1) // maximum contention on the shared budget
	r := NewRegistry(opts)
	shA := addTenant(t, r, "aids")
	shB := addTenant(t, r, "emol")
	rt := NewRouter(r, nil, nil)

	handleA := shA.Server().Handle()
	genBefore := handleA.Generation()

	// Phase 1: idle read latency on A, no maintenance anywhere.
	idle := hammerTenantReads(t, rt, handleA, nil, 150*time.Millisecond)

	// Phase 2: B runs major failing batches that exhaust their retry
	// budget while A keeps serving. The failpoint is armed globally but
	// only B submits maintenance, so only B can hit it.
	stage := "apply"
	faultinject.EnableErr("core.maintain."+stage, fmt.Errorf("injected apply failure"))
	defer faultinject.Reset()

	big := make([]*graph.Graph, 0, 40)
	for i := 0; i < 40; i++ {
		big = append(big, graph.Path(1000+i, "C", "N", "O", "C"))
	}
	payload := graph.Marshal(big)
	var wgB sync.WaitGroup
	for i := 0; i < 3; i++ {
		wgB.Add(1)
		go func() {
			defer wgB.Done()
			req := httptest.NewRequest(http.MethodPost, "/t/emol/maintain?async=1", strings.NewReader(payload))
			w := httptest.NewRecorder()
			rt.ServeHTTP(w, req)
			if w.Code != http.StatusAccepted && w.Code != http.StatusTooManyRequests {
				t.Errorf("async maintain on emol = %d: %s", w.Code, w.Body.String())
			}
		}()
	}

	prints := &sync.Map{} // generation -> fingerprint
	busy := hammerTenantReads(t, rt, handleA, prints, 400*time.Millisecond)
	wgB.Wait()

	// B's batches must have actually failed and been parked — the load
	// was real.
	waitFor(t, func() bool { return len(shB.Server().Pipeline().Poisoned()) > 0 })
	if st := shB.Status(); st.State != "poisoned" {
		t.Fatalf("tenant B state = %s, want poisoned", st.State)
	}

	// A: byte-identical fingerprints, frozen generation, still "ok".
	if got := handleA.Generation(); got != genBefore {
		t.Fatalf("tenant A generation moved %d → %d during B's failing batches", genBefore, got)
	}
	count := 0
	prints.Range(func(_, _ interface{}) bool { count++; return true })
	if count != 1 {
		t.Fatalf("tenant A served %d generations during the hammer, want exactly 1", count)
	}
	if st := shA.Status(); st.State != "ok" || st.Poisoned != 0 {
		t.Fatalf("tenant A status = %+v, want untouched ok", st)
	}

	idleP99, busyP99 := p99(idle), p99(busy)
	t.Logf("tenant A read p99: idle=%v during-B-failure=%v (%d/%d samples)", idleP99, busyP99, len(idle), len(busy))
	if floor := 200 * time.Microsecond; idleP99 < floor {
		idleP99 = floor // avoid a zero/noise baseline on fast machines
	}
	if busyP99 > 100*idleP99 {
		t.Fatalf("tenant A read p99 degraded from %v to %v while tenant B failed — isolation broken", p99(idle), busyP99)
	}
}

// hammerTenantReads runs reader goroutines against tenant A through
// the router for d, fingerprinting each observed snapshot into prints
// (when non-nil) and returning per-request latencies.
func hammerTenantReads(t *testing.T, rt *Router, h *snapshot.Handle, prints *sync.Map, d time.Duration) []time.Duration {
	t.Helper()
	const readers = 4
	var (
		stop atomic.Bool
		mu   sync.Mutex
		lats []time.Duration
		wg   sync.WaitGroup
	)
	errCh := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			paths := []string{"/t/aids/patterns", "/t/aids/quality", "/t/aids/readyz"}
			var local []time.Duration
			for n := 0; !stop.Load(); n++ {
				t0 := time.Now()
				req := httptest.NewRequest(http.MethodGet, paths[n%len(paths)], nil)
				w := httptest.NewRecorder()
				rt.ServeHTTP(w, req)
				local = append(local, time.Since(t0))
				if w.Code != http.StatusOK {
					errCh <- fmt.Errorf("read %s = %d", paths[n%len(paths)], w.Code)
					return
				}
				if got := w.Header().Get("X-Midas-Tenant"); got != "aids" {
					errCh <- fmt.Errorf("read answered by tenant %q, want aids", got)
					return
				}
				if prints != nil {
					s := h.Load()
					fp := tenantFingerprint(s)
					if prev, loaded := prints.LoadOrStore(s.Generation, fp); loaded && prev.(string) != fp {
						errCh <- fmt.Errorf("generation %d observed with two fingerprints:\n%s\n%s", s.Generation, prev, fp)
						return
					}
				}
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(i)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	return lats
}
