// Package tenant multiplexes many dataset panels inside one serving
// process — the multi-GUI deployment the paper motivates (one canned
// pattern set per dataset: PubChem, eMolecules, AIDS, ...). Each
// tenant is a Shard owning a full single-tenant serving stack (engine,
// snapshot handle + maintenance pipeline, journal, save bundle, spool
// watcher) rooted under its own directory; a Registry keys shards by
// dataset ID and a Router resolves /t/{tenant}/... to them. Isolation
// is the design center: shards share nothing but the process-wide
// worker Budget and the telemetry registry (through per-tenant label
// views), so one tenant's major batch, poisoned spool file or crash
// salvage never perturbs another tenant's reads.
package tenant

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/midas-graph/midas"
	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/panel"
	"github.com/midas-graph/midas/internal/store"
	"github.com/midas-graph/midas/internal/vfs"
)

// Bundle metadata keys tying a shard's saved state to its spool
// journal — the same keys midas-serve uses, so a single-tenant state
// directory can be adopted as a tenant directory unchanged.
const (
	metaLastBatch    = "lastBatch"
	metaLastBatchSum = "lastBatchSum"
)

// Shard is one tenant's complete serving stack. All fields are wired
// at construction and immutable afterwards; lifecycle state (draining)
// is atomic. Shards are created through Registry.Add.
type Shard struct {
	// ID is the tenant/dataset identifier (ValidateID-clean).
	ID string
	// Dir is the shard's root: <tenants-dir>/<id>/{state,journal,spool}.
	// Empty for purely in-memory shards (NewEngine hook, no Save/Watch).
	Dir string

	engine   *midas.Engine
	server   *panel.Server
	handler  http.Handler
	journal  *store.Journal
	opts     midas.Options
	degraded bool

	savePath string
	metaMu   sync.Mutex
	lastMeta map[string]string

	stopWatch chan struct{}
	watchWG   sync.WaitGroup
	watching  bool

	draining  atomic.Bool
	drainOnce sync.Once
	drainErr  error
}

// Status is one shard's health line in /readyz aggregation and the
// admin API.
type Status struct {
	ID         string `json:"id"`
	State      string `json:"state"` // ok | degraded | poisoned | draining
	Generation uint64 `json:"generation"`
	// AppliedLSN is the shard's journal position: the count of batches
	// the pipeline has applied (each one a journal entry). With the
	// last-publish Generation it tells an operator how far a degraded
	// shard is behind straight from the /readyz probe.
	AppliedLSN       uint64  `json:"appliedLSN"`
	DBLen            int     `json:"dbLen"`
	Patterns         int     `json:"patterns"`
	QueueDepth       int     `json:"queueDepth"`
	StalenessSeconds float64 `json:"stalenessSeconds"`
	Poisoned         int     `json:"poisoned"`
	Degraded         bool    `json:"degraded"`
}

// stateRank orders shard states worst-first for the /readyz worst-of
// summary.
func stateRank(state string) int {
	switch state {
	case "draining":
		return 3
	case "poisoned":
		return 2
	case "degraded":
		return 1
	}
	return 0
}

// newShard cold-starts one tenant: restores or bootstraps its engine,
// wires the panel server, journal, save bundle and spool watcher, and
// publishes the bootstrap snapshot. It does all disk work before the
// Registry links the shard in, so a failed cold start leaves no
// half-built tenant behind.
func newShard(id string, o *Options, ov Overrides) (*Shard, error) {
	opts := o.engineOptions(ov)
	sh := &Shard{ID: id, opts: opts, lastMeta: map[string]string{}}
	if o.Root != "" {
		sh.Dir = filepath.Join(o.Root, id)
	}

	// Engine: the NewEngine hook (tests, bench) bypasses disk entirely;
	// otherwise restore the state bundle, bootstrap from db.graphs, or
	// start empty — a tenant added at runtime begins as an empty panel
	// its spool or POST /maintain populates.
	var meta map[string]string
	switch {
	case o.NewEngine != nil:
		eng, degraded, err := o.NewEngine(id, opts)
		if err != nil {
			return nil, fmt.Errorf("tenant %s: %w", id, err)
		}
		sh.engine, sh.degraded = eng, degraded
	default:
		if sh.Dir == "" {
			return nil, fmt.Errorf("tenant %s: no root directory and no NewEngine hook", id)
		}
		for _, sub := range []string{"state", "journal", "spool"} {
			if err := os.MkdirAll(filepath.Join(sh.Dir, sub), 0o755); err != nil {
				return nil, fmt.Errorf("tenant %s: %w", id, err)
			}
		}
		var err error
		meta, err = sh.bootstrapEngine(o)
		if err != nil {
			return nil, err
		}
	}

	srv := panel.New(sh.engine, opts)
	sh.server = srv
	if o.Logger != nil {
		srv.SetLogger(o.Logger)
	}
	srv.SetRequestTimeout(o.RequestTimeout)
	srv.SetMaxInflight(intOr(ov.MaxInflight, o.MaxInflight))
	srv.SetMaintainQueue(intOr(ov.QueueSize, o.QueueSize))
	srv.SetMaintainRetry(o.Backoff, o.Retries)
	srv.SetDegraded(sh.degraded)
	if o.Telemetry != nil {
		reg := o.Telemetry.WithLabels("tenant", id)
		srv.SetTelemetry(reg)
		sh.engine.SetTelemetry(reg)
	}
	if o.Budget != nil {
		weight := opts.Workers
		budget := o.Budget
		srv.SetMaintainGate(func(ctx context.Context) (func(), error) {
			return budget.Acquire(ctx, weight)
		})
	}

	if o.Save && sh.Dir != "" {
		sh.savePath = filepath.Join(sh.Dir, "state", "panel.state")
		for k, v := range meta {
			sh.lastMeta[k] = v
		}
		srv.SetPostMaintain(func(midas.MaintenanceReport) error { return sh.saveBundle() })

		jp := filepath.Join(sh.Dir, "journal", "batch.journal")
		journal, err := store.OpenJournal(jp)
		if err != nil {
			return nil, fmt.Errorf("tenant %s: %w", id, err)
		}
		if s := journal.Salvage(); s.TailBytes > 0 {
			o.logf("tenant %s: journal salvage: %d torn byte(s) quarantined to %s", id, s.TailBytes, s.QuarantinePath)
		}
		journal.SetCheckpointThreshold(o.Checkpoint)
		sh.journal = journal
		srv.SetJournal(journal)
		sh.engine.SetAfterMaintain(func(midas.MaintenanceReport) {
			if ran, err := journal.MaybeCheckpoint(); err != nil {
				o.logf("tenant %s: journal checkpoint: %v", id, err)
			} else if ran {
				o.logf("tenant %s: journal compacted to %d bytes", id, journal.Size())
			}
		})
	}

	sh.stopWatch = make(chan struct{})
	if o.Watch && sh.Dir != "" {
		w := &panel.Watcher{
			Dir:        filepath.Join(sh.Dir, "spool"),
			Engine:     sh.engine,
			Pipe:       srv.Pipeline(),
			Journal:    sh.journal,
			MaxRetries: o.Retries,
			Backoff:    o.Backoff,
			Logf: func(format string, args ...interface{}) {
				o.logf("tenant "+id+": "+format, args...)
			},
		}
		if sh.journal != nil {
			w.Persist = func(name string, sum uint32) error {
				sh.metaMu.Lock()
				sh.lastMeta[metaLastBatch] = name
				sh.lastMeta[metaLastBatchSum] = fmt.Sprintf("%08x", sum)
				sh.metaMu.Unlock()
				return sh.saveBundle()
			}
			// Seed crash recovery from the restored bundle's metadata.
			w.LastApplied = meta[metaLastBatch]
			if s, err := strconv.ParseUint(meta[metaLastBatchSum], 16, 32); err == nil {
				w.LastAppliedSum = uint32(s)
			}
		}
		sh.watching = true
		sh.watchWG.Add(1)
		go func() {
			defer sh.watchWG.Done()
			w.Run(o.WatchInterval, sh.stopWatch)
		}()
	}

	// Finalise the handler now: the first Handler() call publishes the
	// bootstrap snapshot and starts the maintenance goroutine, and
	// doing it here keeps Router dispatch allocation-free.
	sh.handler = srv.Handler()
	return sh, nil
}

// bootstrapEngine restores the shard's state bundle (salvaging an
// interrupted save), falls back to <dir>/db.graphs, and otherwise
// starts an empty panel. Only unrecoverable corruption marks the
// shard degraded — an absent bundle on a new tenant is the normal
// cold start.
func (sh *Shard) bootstrapEngine(o *Options) (map[string]string, error) {
	statePath := filepath.Join(sh.Dir, "state", "panel.state")
	data, rep, err := store.LoadBundle(vfs.OS, statePath, midas.VerifyState)
	for _, q := range rep.Quarantined {
		o.logf("tenant %s: state salvage: quarantined %s", sh.ID, q)
	}
	sh.degraded = rep.Degraded()
	var meta map[string]string
	if err == nil {
		var eng *midas.Engine
		eng, meta, err = midas.LoadStateMeta(bytes.NewReader(data))
		if err == nil {
			eng.SetWorkers(sh.opts.Workers)
			eng.SetNoDeltaIndex(sh.opts.NoDeltaIndex)
			sh.engine = eng
			return meta, nil
		}
	}
	switch {
	case errors.Is(err, store.ErrCorrupt):
		o.logf("tenant %s: state bundle unrecoverable, starting degraded: %v", sh.ID, err)
		sh.degraded = true
	case errors.Is(err, os.ErrNotExist):
	default:
		return nil, fmt.Errorf("tenant %s: %w", sh.ID, err)
	}

	db := graph.NewDatabase()
	dbPath := filepath.Join(sh.Dir, "db.graphs")
	if f, ferr := os.Open(dbPath); ferr == nil {
		graphs, rerr := graph.Read(f)
		f.Close()
		if rerr != nil {
			return nil, fmt.Errorf("tenant %s: reading %s: %w", sh.ID, dbPath, rerr)
		}
		for _, g := range graphs {
			if aerr := db.Add(g); aerr != nil {
				return nil, fmt.Errorf("tenant %s: %w", sh.ID, aerr)
			}
		}
	} else if !errors.Is(ferr, os.ErrNotExist) {
		return nil, fmt.Errorf("tenant %s: %w", sh.ID, ferr)
	}
	sh.engine = midas.New(db, sh.opts)
	return nil, nil
}

// saveBundle persists the shard's engine state generationally,
// carrying the journal reconciliation metadata forward.
func (sh *Shard) saveBundle() error {
	sh.metaMu.Lock()
	m := make(map[string]string, len(sh.lastMeta))
	for k, v := range sh.lastMeta {
		m[k] = v
	}
	sh.metaMu.Unlock()
	return store.SaveBundle(vfs.OS, sh.savePath, func(w io.Writer) error {
		return midas.SaveStateMeta(w, sh.engine, sh.opts, m)
	})
}

// Handler returns the shard's HTTP handler (the full single-tenant
// route table, middleware included).
func (sh *Shard) Handler() http.Handler { return sh.handler }

// Server exposes the shard's panel server (tests, bench).
func (sh *Shard) Server() *panel.Server { return sh.server }

// Engine exposes the shard's engine (bench seeding; never mutate it
// outside the pipeline).
func (sh *Shard) Engine() *midas.Engine { return sh.engine }

// Status reports the shard's health for /readyz and the admin API.
func (sh *Shard) Status() Status {
	h := sh.server.Handle()
	pipe := sh.server.Pipeline()
	st := Status{
		ID:               sh.ID,
		Generation:       h.Generation(),
		AppliedLSN:       pipe.Applied(),
		QueueDepth:       pipe.Depth(),
		StalenessSeconds: pipe.Staleness().Seconds(),
		Poisoned:         len(pipe.Poisoned()),
		Degraded:         sh.degraded,
	}
	if snap := h.Load(); snap != nil {
		st.DBLen = snap.DBLen
		st.Patterns = len(snap.Patterns)
		st.Degraded = st.Degraded || snap.Degraded
	}
	switch {
	case sh.draining.Load():
		st.State = "draining"
	case st.Poisoned > 0:
		st.State = "poisoned"
	case st.Degraded:
		st.State = "degraded"
	default:
		st.State = "ok"
	}
	return st
}

// Draining reports whether Drain has started.
func (sh *Shard) Draining() bool { return sh.draining.Load() }

// Drain retires the shard cleanly: readiness flips off, the spool
// watcher stops, queued maintenance finishes (bounded by ctx; past
// the deadline the in-flight batch is cancelled and rolls back), the
// journal is checkpointed and closed, and the state bundle is saved
// so the final generation survives. Idempotent; later calls return
// the first outcome. After Drain the shard serves nothing — the
// Registry detaches it before draining.
func (sh *Shard) Drain(ctx context.Context) error {
	sh.drainOnce.Do(func() {
		sh.draining.Store(true)
		sh.server.SetReady(false)
		close(sh.stopWatch)
		sh.watchWG.Wait()
		if err := sh.server.Close(ctx); err != nil {
			sh.drainErr = fmt.Errorf("tenant %s: pipeline drain: %w", sh.ID, err)
		}
		if sh.journal != nil {
			if err := sh.journal.Checkpoint(); err != nil && sh.drainErr == nil {
				sh.drainErr = fmt.Errorf("tenant %s: journal checkpoint: %w", sh.ID, err)
			}
			if err := sh.journal.Close(); err != nil && sh.drainErr == nil {
				sh.drainErr = fmt.Errorf("tenant %s: journal close: %w", sh.ID, err)
			}
		}
		if sh.savePath != "" {
			if err := sh.saveBundle(); err != nil && sh.drainErr == nil {
				sh.drainErr = fmt.Errorf("tenant %s: final save: %w", sh.ID, err)
			}
		}
	})
	return sh.drainErr
}

// intOr returns *p when set, otherwise def.
func intOr(p *int, def int) int {
	if p != nil {
		return *p
	}
	return def
}
