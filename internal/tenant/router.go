package tenant

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"

	"github.com/midas-graph/midas/internal/telemetry"
)

// Router is the process front door for multi-tenant serving. It
// resolves /t/{tenant}/... (or the X-Midas-Tenant request header) to a
// shard and delegates to that shard's full single-tenant handler
// chain, stamping X-Midas-Tenant on the response so clients and tests
// can assert which shard answered. Process-level endpoints — /healthz,
// the aggregated /readyz, /metrics and /debug/vars over the shared
// registry, and the /admin/tenants lifecycle API — are served here,
// outside any shard.
type Router struct {
	reg      *Registry
	metrics  *telemetry.Registry
	logger   *telemetry.Logger
	adminOn  bool
	draining atomic.Bool
}

// NewRouter fronts a registry. metrics, when non-nil, serves /metrics
// and /debug/vars (pass the same base registry the shards label).
func NewRouter(reg *Registry, metrics *telemetry.Registry, logger *telemetry.Logger) *Router {
	return &Router{reg: reg, metrics: metrics, logger: logger}
}

// EnableAdmin exposes POST/DELETE /admin/tenants/{id} — the dynamic
// add/drain API. Off by default: the admin surface mutates disk and
// must be opted into.
func (rt *Router) EnableAdmin() { rt.adminOn = true }

// SetDraining flips the process-wide /readyz verdict during shutdown.
func (rt *Router) SetDraining(on bool) { rt.draining.Store(on) }

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == "/healthz":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	case path == "/readyz":
		rt.handleReadyz(w, r)
	case path == "/metrics" && rt.metrics != nil:
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		rt.metrics.WritePrometheus(w)
	case path == "/debug/vars" && rt.metrics != nil:
		w.Header().Set("Content-Type", "application/json")
		rt.metrics.WriteJSON(w)
	case path == "/admin/tenants" || strings.HasPrefix(path, "/admin/tenants/"):
		rt.handleAdmin(w, r)
	case strings.HasPrefix(path, "/t/"):
		id, rest := splitTenantPath(path)
		rt.dispatch(w, r, id, rest)
	case path == "/":
		rt.handleIndex(w, r)
	default:
		// Header fallback: a reverse proxy that already consumed the
		// path prefix addresses the tenant out of band.
		if id := r.Header.Get("X-Midas-Tenant"); id != "" {
			rt.dispatch(w, r, id, path)
			return
		}
		http.NotFound(w, r)
	}
}

// splitTenantPath splits "/t/{id}/rest" into (id, "/rest"); a bare
// "/t/{id}" maps to the shard's index "/".
func splitTenantPath(path string) (id, rest string) {
	trimmed := strings.TrimPrefix(path, "/t/")
	if i := strings.IndexByte(trimmed, '/'); i >= 0 {
		return trimmed[:i], trimmed[i:]
	}
	return trimmed, "/"
}

// dispatch routes one request into a shard's handler chain with the
// tenant prefix stripped, so shard handlers see the same paths as
// single-tenant serving.
func (rt *Router) dispatch(w http.ResponseWriter, r *http.Request, id, rest string) {
	sh, ok := rt.reg.Get(id)
	if !ok {
		rt.rejectUnknown(w, id)
		return
	}
	w.Header().Set("X-Midas-Tenant", id)
	r2 := r.Clone(r.Context())
	r2.URL.Path = rest
	if r2.URL.RawPath != "" {
		r2.URL.RawPath = ""
	}
	sh.Handler().ServeHTTP(w, r2)
}

// rejectUnknown distinguishes "no such tenant" (404) from "tenant
// placed on another process slot" (421 Misdirected Request — the
// client or balancer should re-resolve placement).
func (rt *Router) rejectUnknown(w http.ResponseWriter, id string) {
	opts := rt.reg.Options()
	if p := opts.Placement; p != nil && ValidateID(id) == nil {
		if slot := p.Slot(id); slot != opts.Slot {
			http.Error(w, fmt.Sprintf("tenant %s is placed on slot %d (this process is slot %d)", id, slot, opts.Slot),
				http.StatusMisdirectedRequest)
			return
		}
	}
	http.Error(w, "unknown tenant", http.StatusNotFound)
}

// handleReadyz aggregates every shard's health: one line per shard
// plus a worst-of summary. Degraded and poisoned shards stay ready —
// serving the last good generation is the design — so the endpoint
// answers 503 only while the process itself is draining.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if rt.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	sts := rt.reg.Statuses()
	worst := "ok"
	for _, st := range sts {
		if stateRank(st.State) > stateRank(worst) {
			worst = st.State
		}
	}
	fmt.Fprintf(w, "%s (%d tenant(s))\n", worst, len(sts))
	for _, st := range sts {
		fmt.Fprintf(w, "%s: %s generation=%d lsn=%d patterns=%d depth=%d staleness=%.3fs poisoned=%d\n",
			st.ID, st.State, st.Generation, st.AppliedLSN, st.Patterns, st.QueueDepth, st.StalenessSeconds, st.Poisoned)
	}
}

// handleIndex lists the attached tenants as JSON — the discovery
// endpoint a GUI uses to offer a dataset picker.
func (rt *Router) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rt.writeJSON(w, http.StatusOK, map[string]interface{}{"tenants": rt.reg.Statuses()})
}

// handleAdmin is the tenant lifecycle API:
//
//	GET    /admin/tenants        list shard statuses
//	GET    /admin/tenants/{id}   one shard's status
//	POST   /admin/tenants/{id}   cold-start and attach (overrides via
//	                             query params, e.g. ?gamma=30&workers=2)
//	DELETE /admin/tenants/{id}   drain and detach
func (rt *Router) handleAdmin(w http.ResponseWriter, r *http.Request) {
	id := strings.Trim(strings.TrimPrefix(r.URL.Path, "/admin/tenants"), "/")
	if strings.ContainsRune(id, '/') {
		http.NotFound(w, r)
		return
	}
	switch {
	case r.Method == http.MethodGet && id == "":
		rt.writeJSON(w, http.StatusOK, map[string]interface{}{"tenants": rt.reg.Statuses()})
	case r.Method == http.MethodGet:
		sh, ok := rt.reg.Get(id)
		if !ok {
			rt.rejectUnknown(w, id)
			return
		}
		rt.writeJSON(w, http.StatusOK, sh.Status())
	case r.Method == http.MethodPost && id != "":
		if !rt.adminOn {
			http.Error(w, "admin API disabled", http.StatusForbidden)
			return
		}
		var ov Overrides
		for key, vals := range r.URL.Query() {
			for _, val := range vals {
				if err := ov.Set(key, val); err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
			}
		}
		sh, err := rt.reg.Add(id, ov)
		switch {
		case errors.Is(err, ErrExists):
			http.Error(w, err.Error(), http.StatusConflict)
		case errors.Is(err, ErrMisplaced):
			http.Error(w, err.Error(), http.StatusMisdirectedRequest)
		case err != nil:
			rt.logf("tenant admin: add %s: %v", id, err)
			http.Error(w, err.Error(), http.StatusBadRequest)
		default:
			rt.writeJSON(w, http.StatusCreated, sh.Status())
		}
	case r.Method == http.MethodDelete && id != "":
		if !rt.adminOn {
			http.Error(w, "admin API disabled", http.StatusForbidden)
			return
		}
		// The request context bounds the drain: a client that gives up
		// cancels the graceful phase and the in-flight batch rolls back.
		err := rt.reg.Remove(r.Context(), id)
		switch {
		case errors.Is(err, ErrUnknown):
			http.Error(w, "unknown tenant", http.StatusNotFound)
		case err != nil:
			rt.logf("tenant admin: drain %s: %v", id, err)
			http.Error(w, err.Error(), http.StatusInternalServerError)
		default:
			rt.writeJSON(w, http.StatusOK, map[string]interface{}{"drained": id})
		}
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (rt *Router) writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		rt.logf("tenant: encoding response: %v", err)
	}
}

func (rt *Router) logf(format string, args ...interface{}) {
	if rt.logger != nil {
		rt.logger.Warnf(format, args...)
	}
}
