package tenant

import (
	"context"
	"sync"
)

// Budget is the process-wide maintenance-worker budget: a weighted
// semaphore every shard's pipeline gate acquires before running a
// batch. One tenant's major batch (weight = its engine's worker count)
// cannot take more than the whole budget, and while it holds its share
// the remaining capacity still admits other shards — so a hot tenant
// saturates its own pipeline, not the process. Waiters are served
// FIFO: a wide batch parked behind the budget is not starved by a
// stream of narrow ones.
//
// A nil Budget (or one built with capacity <= 0) admits everything
// immediately; single-tenant serving costs nothing.
type Budget struct {
	capacity int

	mu      sync.Mutex
	used    int
	waiters []*budgetWaiter
}

type budgetWaiter struct {
	weight int
	ready  chan struct{} // closed when the waiter's share is reserved
}

// NewBudget builds a budget of capacity worker slots. capacity <= 0
// returns nil: an unlimited budget.
func NewBudget(capacity int) *Budget {
	if capacity <= 0 {
		return nil
	}
	return &Budget{capacity: capacity}
}

// Capacity returns the total worker slots (0 = unlimited).
func (b *Budget) Capacity() int {
	if b == nil {
		return 0
	}
	return b.capacity
}

// InUse returns the worker slots currently held.
func (b *Budget) InUse() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Waiting returns the number of acquisitions queued behind the budget.
func (b *Budget) Waiting() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.waiters)
}

// Acquire reserves weight worker slots, blocking FIFO behind earlier
// waiters until they fit or ctx expires. The returned release func is
// idempotent and must be called exactly once conceptually (extra calls
// are no-ops). Weights are clamped to [1, capacity], so a shard whose
// engine is wider than the whole budget still runs — one batch at a
// time, using everything.
func (b *Budget) Acquire(ctx context.Context, weight int) (func(), error) {
	if b == nil {
		return func() {}, nil
	}
	if weight < 1 {
		weight = 1
	}
	if weight > b.capacity {
		weight = b.capacity
	}
	b.mu.Lock()
	if len(b.waiters) == 0 && b.used+weight <= b.capacity {
		b.used += weight
		b.mu.Unlock()
		return b.releaseFunc(weight), nil
	}
	w := &budgetWaiter{weight: weight, ready: make(chan struct{})}
	b.waiters = append(b.waiters, w)
	b.mu.Unlock()

	select {
	case <-w.ready:
		return b.releaseFunc(weight), nil
	case <-ctx.Done():
		b.mu.Lock()
		select {
		case <-w.ready:
			// Granted while we were giving up: the share is ours to put
			// back, and doing so may admit the next waiter.
			b.used -= weight
			b.admitLocked()
		default:
			b.removeWaiterLocked(w)
		}
		b.mu.Unlock()
		return nil, ctx.Err()
	}
}

// releaseFunc returns the idempotent release for a granted share.
func (b *Budget) releaseFunc(weight int) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			b.mu.Lock()
			b.used -= weight
			b.admitLocked()
			b.mu.Unlock()
		})
	}
}

// admitLocked grants queued waiters FIFO while they fit. Stopping at
// the first waiter that does not fit keeps the order strict: narrow
// latecomers cannot leapfrog a wide batch.
func (b *Budget) admitLocked() {
	for len(b.waiters) > 0 {
		w := b.waiters[0]
		if b.used+w.weight > b.capacity {
			return
		}
		b.used += w.weight
		b.waiters = b.waiters[1:]
		close(w.ready)
	}
}

func (b *Budget) removeWaiterLocked(target *budgetWaiter) {
	for i, w := range b.waiters {
		if w == target {
			b.waiters = append(b.waiters[:i], b.waiters[i+1:]...)
			return
		}
	}
}
