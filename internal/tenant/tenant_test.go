package tenant

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/midas-graph/midas"
	"github.com/midas-graph/midas/internal/dataset"
	"github.com/midas-graph/midas/internal/telemetry"
)

// testEngineOptions is the small-but-real engine configuration the
// snapshot pipeline tests established: quick to bootstrap, big enough
// to exercise maintenance for real.
func testEngineOptions() midas.Options {
	return midas.Options{
		Budget:  midas.Budget{MinSize: 2, MaxSize: 4, Count: 5},
		SupMin:  0.4,
		Epsilon: 0.02,
		Walks:   30,
		Seed:    1,
		Workers: 1,
	}
}

// memoryOptions builds registry options whose shards live entirely in
// memory: no disk, no watcher — each tenant gets its own generated
// database with a tenant-specific seed so their pattern sets differ.
func memoryOptions() Options {
	return Options{
		Engine:  testEngineOptions(),
		Retries: 2,
		Backoff: time.Millisecond,
		NewEngine: func(id string, opts midas.Options) (*midas.Engine, bool, error) {
			seed := int64(1)
			for i := 0; i < len(id); i++ {
				seed = seed*31 + int64(id[i])
			}
			db := dataset.EMolLike().GenerateDB(16, seed)
			return midas.New(db, opts), false, nil
		},
	}
}

func addTenant(t *testing.T, r *Registry, id string) *Shard {
	t.Helper()
	sh, err := r.Add(id, Overrides{})
	if err != nil {
		t.Fatalf("Add(%s): %v", id, err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Remove is idempotent via ErrUnknown: tests that already
		// removed the tenant don't double-drain.
		if err := r.Remove(ctx, id); err != nil && !errors.Is(err, ErrUnknown) {
			t.Errorf("cleanup drain %s: %v", id, err)
		}
	})
	return sh
}

func get(t *testing.T, h http.Handler, path string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestValidateID(t *testing.T) {
	for _, ok := range []string{"aids", "pub_chem", "emol-2024", "a", strings.Repeat("x", 64)} {
		if err := ValidateID(ok); err != nil {
			t.Errorf("ValidateID(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", "-lead", "Upper", "dot.dot", "sla/sh", "sp ace", "..", strings.Repeat("x", 65)} {
		if err := ValidateID(bad); err == nil {
			t.Errorf("ValidateID(%q) = nil, want error", bad)
		}
	}
}

func TestParseManifest(t *testing.T) {
	src := `
# production tenants
aids
pubchem  gamma=30 supmin=0.3   # override the display budget
emol     workers=2 max-inflight=8 maintain-queue=16 seed=7
`
	entries, err := ParseManifest(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("parsed %d entries, want 3", len(entries))
	}
	if entries[0].ID != "aids" || entries[1].ID != "pubchem" || entries[2].ID != "emol" {
		t.Fatalf("ids = %v %v %v", entries[0].ID, entries[1].ID, entries[2].ID)
	}
	pc := entries[1].Overrides
	if pc.Gamma == nil || *pc.Gamma != 30 || pc.SupMin == nil || *pc.SupMin != 0.3 {
		t.Fatalf("pubchem overrides = %+v", pc)
	}
	em := entries[2].Overrides
	if em.Workers == nil || *em.Workers != 2 || em.MaxInflight == nil || *em.MaxInflight != 8 ||
		em.QueueSize == nil || *em.QueueSize != 16 || em.Seed == nil || *em.Seed != 7 {
		t.Fatalf("emol overrides = %+v", em)
	}

	for _, bad := range []string{
		"aids\naids\n",           // duplicate
		"BadID\n",                // invalid id
		"aids gamma\n",           // malformed override
		"aids gamma=x\n",         // malformed value
		"aids nonsense=3\n",      // unknown key
		"aids max-inflight=-1\n", // negative
	} {
		if _, err := ParseManifest(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseManifest(%q) succeeded, want error", bad)
		}
	}
}

func TestBudgetWeightedFIFO(t *testing.T) {
	b := NewBudget(4)
	ctx := context.Background()

	rel1, err := b.Acquire(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.InUse(); got != 3 {
		t.Fatalf("InUse = %d, want 3", got)
	}

	// A wide waiter queues; a narrow one that would fit must not
	// leapfrog it (strict FIFO, no starvation of wide batches).
	wideDone := make(chan struct{})
	narrowDone := make(chan struct{})
	ready := make(chan struct{}, 2)
	go func() {
		ready <- struct{}{}
		rel, err := b.Acquire(ctx, 4)
		if err != nil {
			t.Error(err)
		}
		close(wideDone)
		rel()
	}()
	<-ready
	waitFor(t, func() bool { return b.Waiting() == 1 })
	go func() {
		ready <- struct{}{}
		rel, err := b.Acquire(ctx, 1)
		if err != nil {
			t.Error(err)
		}
		close(narrowDone)
		rel()
	}()
	<-ready
	waitFor(t, func() bool { return b.Waiting() == 2 })
	select {
	case <-wideDone:
		t.Fatal("wide waiter admitted while capacity was held")
	case <-narrowDone:
		t.Fatal("narrow waiter leapfrogged the wide one")
	case <-time.After(20 * time.Millisecond):
	}

	rel1()
	<-wideDone
	<-narrowDone

	// Weight clamping: a batch wider than the whole budget still runs.
	rel, err := b.Acquire(ctx, 99)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.InUse(); got != 4 {
		t.Fatalf("clamped InUse = %d, want 4", got)
	}
	rel()
	rel() // idempotent
	if got := b.InUse(); got != 0 {
		t.Fatalf("after release InUse = %d, want 0", got)
	}

	// Context cancellation removes the waiter.
	relHold, _ := b.Acquire(ctx, 4)
	cctx, cancel := context.WithCancel(ctx)
	errCh := make(chan error, 1)
	go func() {
		_, err := b.Acquire(cctx, 1)
		errCh <- err
	}()
	waitFor(t, func() bool { return b.Waiting() == 1 })
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Acquire = %v, want context.Canceled", err)
	}
	if got := b.Waiting(); got != 0 {
		t.Fatalf("Waiting after cancel = %d, want 0", got)
	}
	relHold()

	// nil budget admits everything.
	var nb *Budget
	rel, err = nb.Acquire(ctx, 100)
	if err != nil {
		t.Fatal(err)
	}
	rel()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPlacementStableAndBalanced(t *testing.T) {
	p3 := NewPlacement(3)
	tenants := make([]string, 200)
	counts := make([]int, 3)
	for i := range tenants {
		tenants[i] = fmt.Sprintf("tenant-%d", i)
		slot := p3.Slot(tenants[i])
		if slot < 0 || slot > 2 {
			t.Fatalf("slot out of range: %d", slot)
		}
		counts[slot]++
		if again := p3.Slot(tenants[i]); again != slot {
			t.Fatalf("placement not deterministic for %s: %d vs %d", tenants[i], slot, again)
		}
	}
	for slot, n := range counts {
		if n == 0 {
			t.Fatalf("slot %d received no tenants: %v", slot, counts)
		}
	}

	// Consistency: growing the ring 3→4 must only move tenants, never
	// shuffle tenants between surviving slots arbitrarily — every
	// tenant either keeps its slot or moves to the new one.
	p4 := NewPlacement(4)
	moved := 0
	for _, id := range tenants {
		from, to := p3.Slot(id), p4.Slot(id)
		if from == to {
			continue
		}
		moved++
		if to != 3 {
			t.Fatalf("tenant %s moved %d→%d when only slot 3 was added", id, from, to)
		}
	}
	if moved == 0 || moved == len(tenants) {
		t.Fatalf("adding a slot moved %d/%d tenants — consistent hashing should move roughly 1/4", moved, len(tenants))
	}

	// One-slot ring pins everything to 0.
	p1 := NewPlacement(1)
	for _, id := range tenants[:10] {
		if p1.Slot(id) != 0 {
			t.Fatal("one-slot ring must place everything on slot 0")
		}
	}
}

func TestRegistryAddGetRemove(t *testing.T) {
	r := NewRegistry(memoryOptions())
	shA := addTenant(t, r, "aids")
	if got, ok := r.Get("aids"); !ok || got != shA {
		t.Fatal("Get must return the attached shard")
	}
	if _, err := r.Add("aids", Overrides{}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Add = %v, want ErrExists", err)
	}
	if _, err := r.Add("Bad/ID", Overrides{}); err == nil {
		t.Fatal("invalid id must be rejected")
	}
	addTenant(t, r, "emol")
	if ids := r.IDs(); len(ids) != 2 || ids[0] != "aids" || ids[1] != "emol" {
		t.Fatalf("IDs = %v", ids)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.Remove(ctx, "aids"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, ok := r.Get("aids"); ok {
		t.Fatal("removed tenant still routable")
	}
	if err := r.Remove(ctx, "aids"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("second Remove = %v, want ErrUnknown", err)
	}
	// Re-add after drain: the ID is free again.
	addTenant(t, r, "aids")
}

func TestRegistryPlacementScoping(t *testing.T) {
	opts := memoryOptions()
	opts.Placement = NewPlacement(2)
	// Find a tenant for each slot.
	var mine, other string
	for i := 0; mine == "" || other == ""; i++ {
		id := fmt.Sprintf("tenant-%d", i)
		if opts.Placement.Slot(id) == 0 {
			if mine == "" {
				mine = id
			}
		} else if other == "" {
			other = id
		}
	}
	opts.Slot = 0
	r := NewRegistry(opts)
	addTenant(t, r, mine)
	if _, err := r.Add(other, Overrides{}); !errors.Is(err, ErrMisplaced) {
		t.Fatalf("Add(%s) on wrong slot = %v, want ErrMisplaced", other, err)
	}

	// The router answers 421 for misplaced tenants, 404 for unknowns.
	rt := NewRouter(r, nil, nil)
	if w := get(t, rt, "/t/"+other+"/patterns", nil); w.Code != http.StatusMisdirectedRequest {
		t.Fatalf("misplaced tenant status = %d, want 421", w.Code)
	}
}

func TestRouterDispatchAndHeaders(t *testing.T) {
	r := NewRegistry(memoryOptions())
	addTenant(t, r, "aids")
	addTenant(t, r, "emol")
	rt := NewRouter(r, nil, nil)

	// Path routing with the prefix stripped, response stamped.
	w := get(t, rt, "/t/aids/patterns", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("/t/aids/patterns = %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Midas-Tenant"); got != "aids" {
		t.Fatalf("X-Midas-Tenant = %q, want aids", got)
	}
	if w.Header().Get("X-Midas-Generation") == "" {
		t.Fatal("shard headers must pass through the router")
	}

	// Bare /t/{id} serves the shard index.
	if w := get(t, rt, "/t/emol", nil); w.Code != http.StatusOK ||
		!strings.Contains(w.Body.String(), "Canned patterns") {
		t.Fatalf("/t/emol = %d", w.Code)
	}

	// Header fallback addresses the tenant without the path prefix.
	w = get(t, rt, "/quality", map[string]string{"X-Midas-Tenant": "emol"})
	if w.Code != http.StatusOK || w.Header().Get("X-Midas-Tenant") != "emol" {
		t.Fatalf("header-fallback = %d tenant=%q", w.Code, w.Header().Get("X-Midas-Tenant"))
	}

	// Unknown tenants 404 with the contract message.
	w = get(t, rt, "/t/nope/patterns", nil)
	if w.Code != http.StatusNotFound || !strings.Contains(w.Body.String(), "unknown tenant") {
		t.Fatalf("unknown tenant = %d %q", w.Code, w.Body.String())
	}
	if w := get(t, rt, "/untenanted", nil); w.Code != http.StatusNotFound {
		t.Fatalf("no tenant, no header = %d, want 404", w.Code)
	}

	// Process index lists both tenants.
	w = get(t, rt, "/", nil)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"aids"`) ||
		!strings.Contains(w.Body.String(), `"emol"`) {
		t.Fatalf("index = %d %s", w.Code, w.Body.String())
	}

	// Distinct shards, distinct engines: different pattern payloads.
	a := get(t, rt, "/t/aids/patterns", nil).Body.String()
	e := get(t, rt, "/t/emol/patterns", nil).Body.String()
	if a == e {
		t.Fatal("two tenants with different seeds served identical pattern sets")
	}

	// /healthz and aggregated /readyz.
	if w := get(t, rt, "/healthz", nil); w.Code != http.StatusOK {
		t.Fatal("healthz")
	}
	w = get(t, rt, "/readyz", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("readyz = %d", w.Code)
	}
	body := w.Body.String()
	if !strings.HasPrefix(body, "ok (2 tenant(s))") ||
		!strings.Contains(body, "aids: ok") || !strings.Contains(body, "emol: ok") {
		t.Fatalf("readyz body:\n%s", body)
	}
	rt.SetDraining(true)
	if w := get(t, rt, "/readyz", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", w.Code)
	}
}

func TestRouterAdminLifecycle(t *testing.T) {
	r := NewRegistry(memoryOptions())
	rt := NewRouter(r, nil, nil)

	do := func(method, path string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(method, path, nil)
		w := httptest.NewRecorder()
		rt.ServeHTTP(w, req)
		return w
	}

	// Admin off: mutations are forbidden, listing still works.
	if w := do(http.MethodPost, "/admin/tenants/aids"); w.Code != http.StatusForbidden {
		t.Fatalf("admin-off POST = %d, want 403", w.Code)
	}
	rt.EnableAdmin()

	if w := do(http.MethodPost, "/admin/tenants/aids?gamma=4"); w.Code != http.StatusCreated {
		t.Fatalf("POST add = %d: %s", w.Code, w.Body.String())
	}
	sh, ok := r.Get("aids")
	if !ok {
		t.Fatal("admin-added tenant not routable")
	}
	if got := sh.opts.Budget.Count; got != 4 {
		t.Fatalf("gamma override not applied: %d", got)
	}
	if w := do(http.MethodPost, "/admin/tenants/aids"); w.Code != http.StatusConflict {
		t.Fatalf("duplicate POST = %d, want 409", w.Code)
	}
	if w := do(http.MethodPost, "/admin/tenants/aids?gamma=oops"); w.Code != http.StatusConflict {
		// Overrides parse before Add; an existing tenant still conflicts
		// only when the overrides are valid.
		if w.Code != http.StatusBadRequest {
			t.Fatalf("bad override POST = %d", w.Code)
		}
	}
	if w := do(http.MethodGet, "/admin/tenants/aids"); w.Code != http.StatusOK ||
		!strings.Contains(w.Body.String(), `"state": "ok"`) {
		t.Fatalf("GET status = %d %s", w.Code, w.Body.String())
	}
	if w := do(http.MethodGet, "/admin/tenants"); !strings.Contains(w.Body.String(), `"aids"`) {
		t.Fatalf("GET list: %s", w.Body.String())
	}

	if w := do(http.MethodDelete, "/admin/tenants/aids"); w.Code != http.StatusOK {
		t.Fatalf("DELETE = %d: %s", w.Code, w.Body.String())
	}
	if _, ok := r.Get("aids"); ok {
		t.Fatal("deleted tenant still routable")
	}
	if w := do(http.MethodDelete, "/admin/tenants/aids"); w.Code != http.StatusNotFound {
		t.Fatalf("second DELETE = %d, want 404", w.Code)
	}
}

// TestSharedBudgetSerializesMaintenance pins the isolation mechanism:
// with a budget of exactly one worker, two tenants' batches must run
// one at a time — the gate is actually acquired through the pipeline.
func TestSharedBudgetSerializesMaintenance(t *testing.T) {
	opts := memoryOptions()
	opts.Budget = NewBudget(1)
	r := NewRegistry(opts)
	shA := addTenant(t, r, "aids")
	shB := addTenant(t, r, "emol")

	var inFlight, maxInFlight atomic.Int64
	hook := func(midas.MaintenanceReport) error {
		if v := inFlight.Add(1); v > maxInFlight.Load() {
			maxInFlight.Store(v)
		}
		time.Sleep(5 * time.Millisecond)
		inFlight.Add(-1)
		return nil
	}
	shA.Server().SetPostMaintain(hook)
	shB.Server().SetPostMaintain(hook)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		for _, sh := range []*Shard{shA, shB} {
			wg.Add(1)
			go func(sh *Shard, i int) {
				defer wg.Done()
				body := strings.NewReader("t 0\nv 0 C\nv 1 C\ne 0 1\n")
				req := httptest.NewRequest(http.MethodPost, "/maintain", body)
				w := httptest.NewRecorder()
				sh.Handler().ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					t.Errorf("maintain on %s = %d: %s", sh.ID, w.Code, w.Body.String())
				}
			}(sh, i)
		}
	}
	wg.Wait()
	if got := maxInFlight.Load(); got != 1 {
		t.Fatalf("max concurrent post-maintain hooks = %d, want 1 under a 1-worker budget", got)
	}
}

// TestPerTenantTelemetryLabels asserts the acceptance criterion: every
// panel/snapshot/pipeline family carries the tenant label, once per
// shard, on one shared registry.
func TestPerTenantTelemetryLabels(t *testing.T) {
	opts := memoryOptions()
	opts.Telemetry = telemetry.NewRegistry()
	r := NewRegistry(opts)
	addTenant(t, r, "aids")
	addTenant(t, r, "emol")
	rt := NewRouter(r, opts.Telemetry, nil)

	// Generate some traffic so request-counter children exist.
	if w := get(t, rt, "/t/aids/patterns", nil); w.Code != http.StatusOK {
		t.Fatalf("patterns = %d", w.Code)
	}
	if w := get(t, rt, "/t/emol/quality", nil); w.Code != http.StatusOK {
		t.Fatalf("quality = %d", w.Code)
	}

	w := get(t, rt, "/metrics", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", w.Code)
	}
	doc := w.Body.String()
	for _, want := range []string{
		// snapshot/pipeline families, one child per tenant
		`midas_snapshot_generation{tenant="aids"}`,
		`midas_snapshot_generation{tenant="emol"}`,
		`midas_maintain_queue_depth{tenant="aids"}`,
		`midas_maintain_batch_ewma_seconds{tenant="aids"}`,
		// panel HTTP families keep their own labels after the constant one
		`panel_http_requests_total{tenant="aids",route="patterns",class="2xx"}`,
		`panel_http_requests_total{tenant="emol",route="quality",class="2xx"}`,
		// registry-level gauges
		`midas_tenants 2`,
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(doc, "panel_http_requests_total{route=") {
		t.Error("found unlabelled panel family — tenant label missing")
	}
}
