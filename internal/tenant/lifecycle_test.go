package tenant

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/midas-graph/midas"
	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/dataset"
	"github.com/midas-graph/midas/internal/store"
	"github.com/midas-graph/midas/internal/vfs"
)

// diskOptions builds registry options for real on-disk shards: state
// bundles, journals and spool watchers under root.
func diskOptions(root string) Options {
	return Options{
		Root:          root,
		Engine:        testEngineOptions(),
		Retries:       2,
		Backoff:       time.Millisecond,
		Checkpoint:    1, // compact eagerly so the test sees checkpointing work
		Save:          true,
		Watch:         true,
		WatchInterval: 10 * time.Millisecond,
	}
}

// seedTenantDB writes a bootstrap db.graphs into the tenant's
// directory before its first cold start.
func seedTenantDB(t *testing.T, root, id string, n int, seed int64) {
	t.Helper()
	dir := filepath.Join(root, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	db := dataset.EMolLike().GenerateDB(n, seed)
	graphs := make([]*graph.Graph, 0, db.Len())
	for _, g := range db.Graphs() {
		graphs = append(graphs, g)
	}
	if err := os.WriteFile(filepath.Join(dir, "db.graphs"), []byte(graph.Marshal(graphs)), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestTenantLifecycleAddDrainReadd is the lifecycle satellite, meant
// to run under -race: add a tenant, put it under concurrent maintain +
// read load, drain it mid-load, and verify the drain contract — the
// journal is checkpointed clean, the save bundle holds the final
// generation, no goroutines leak — then re-add the same tenant and
// check it restores the drained state.
func TestTenantLifecycleAddDrainReadd(t *testing.T) {
	root := t.TempDir()
	seedTenantDB(t, root, "aids", 16, 3)
	r := NewRegistry(diskOptions(root))

	baseline := runtime.NumGoroutine()
	sh := addTenant(t, r, "aids")
	if got := sh.Engine().DB().Len(); got != 16 {
		t.Fatalf("bootstrap DB len = %d, want 16", got)
	}

	// Load: writers stream maintain batches and readers poll patterns
	// while the drain lands mid-flight. Rejections (429/503 during the
	// drain) are part of the contract, not errors.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				body := strings.NewReader("t 0\nv 0 C\nv 1 N\ne 0 1\n")
				req := httptest.NewRequest(http.MethodPost, "/maintain", body)
				w := httptest.NewRecorder()
				sh.Handler().ServeHTTP(w, req)
				switch w.Code {
				case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable,
					http.StatusGatewayTimeout, http.StatusConflict:
				default:
					t.Errorf("maintain during lifecycle = %d: %s", w.Code, w.Body.String())
					return
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			w := httptest.NewRecorder()
			sh.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/patterns", nil))
		}
	}()

	// Let some batches land, then drain under load.
	waitFor(t, func() bool { return sh.Server().Handle().Generation() > 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.Remove(ctx, "aids"); err != nil {
		t.Fatalf("Remove under load: %v", err)
	}
	close(stop)
	wg.Wait()

	finalGen := sh.Server().Handle().Generation()
	finalLen := sh.Engine().DB().Len()

	// Journal contract: checkpointed clean — no pending entries survive
	// a graceful drain, and the compacted file is empty.
	jp := filepath.Join(root, "aids", "journal", "batch.journal")
	j, err := store.OpenJournal(jp)
	if err != nil {
		t.Fatalf("reopening drained journal: %v", err)
	}
	if pending := j.Pending(); len(pending) != 0 {
		t.Fatalf("drained journal still has pending entries: %v", pending)
	}
	if size := j.Size(); size != 0 {
		t.Fatalf("drained journal size = %d bytes, want 0 after checkpoint", size)
	}
	j.Close()

	// Save-bundle contract: the bundle loads and matches the drained
	// engine.
	data, rep, err := store.LoadBundle(vfs.OS, filepath.Join(root, "aids", "state", "panel.state"), midas.VerifyState)
	if err != nil {
		t.Fatalf("loading drained bundle: %v", err)
	}
	if rep.Degraded() {
		t.Fatalf("drained bundle needed salvage: %+v", rep)
	}
	eng2, _, err := midas.LoadStateMeta(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got := eng2.DB().Len(); got != finalLen {
		t.Fatalf("drained bundle DB len = %d, engine had %d", got, finalLen)
	}

	// Goroutine contract: the watcher, pipeline and waiters are gone.
	assertNoGoroutineLeak(t, baseline)

	// Re-add: the tenant cold-starts from its drained bundle, not the
	// seed db.graphs.
	sh2 := addTenant(t, r, "aids")
	if got := sh2.Engine().DB().Len(); got != finalLen {
		t.Fatalf("re-added DB len = %d, want restored %d", got, finalLen)
	}
	if sh2.Status().State != "ok" {
		t.Fatalf("re-added state = %s", sh2.Status().State)
	}
	if finalGen < 2 {
		t.Fatalf("test never maintained: final generation %d", finalGen)
	}

	// And the re-added shard serves.
	w := httptest.NewRecorder()
	sh2.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/patterns", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("re-added tenant /patterns = %d", w.Code)
	}
}

// TestDrainIdempotentAndRouterDetach covers the drain edges: a drained
// shard 404s through the router immediately, Drain is idempotent, and
// DrainAll retires every shard concurrently.
func TestDrainIdempotentAndRouterDetach(t *testing.T) {
	root := t.TempDir()
	r := NewRegistry(diskOptions(root))
	rt := NewRouter(r, nil, nil)
	baseline := runtime.NumGoroutine()
	addTenant(t, r, "aids")
	addTenant(t, r, "emol")

	if w := get(t, rt, "/t/aids/patterns", nil); w.Code != http.StatusOK {
		t.Fatalf("pre-drain read = %d", w.Code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.Remove(ctx, "aids"); err != nil {
		t.Fatal(err)
	}
	if w := get(t, rt, "/t/aids/patterns", nil); w.Code != http.StatusNotFound {
		t.Fatalf("post-drain read = %d, want 404", w.Code)
	}
	if w := get(t, rt, "/t/emol/patterns", nil); w.Code != http.StatusOK {
		t.Fatalf("sibling read after drain = %d, want 200", w.Code)
	}

	if err := r.DrainAll(ctx); err != nil {
		t.Fatalf("DrainAll: %v", err)
	}
	if r.Len() != 0 {
		t.Fatalf("Len after DrainAll = %d", r.Len())
	}
	assertNoGoroutineLeak(t, baseline)
}

// assertNoGoroutineLeak polls for the goroutine count to return to the
// baseline (with small slack for runtime background goroutines).
func assertNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
