package tenant

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/midas-graph/midas"
	"github.com/midas-graph/midas/internal/telemetry"
)

// Registry lifecycle errors.
var (
	// ErrUnknown names a tenant the registry does not serve.
	ErrUnknown = errors.New("tenant: unknown tenant")
	// ErrExists rejects adding a tenant that is already serving (or
	// mid-cold-start).
	ErrExists = errors.New("tenant: already exists")
	// ErrMisplaced rejects a tenant whose Placement slot is not this
	// process.
	ErrMisplaced = errors.New("tenant: placed on another slot")
)

// Options configures a Registry: the process-wide defaults every shard
// starts from. The zero value is usable for in-memory serving when a
// NewEngine hook is set.
type Options struct {
	// Root is the tenants directory; each shard lives in Root/<id>.
	Root string
	// Engine is the default engine configuration; manifest overrides
	// refine it per tenant.
	Engine midas.Options
	// RequestTimeout bounds each shard request (0 = none).
	RequestTimeout time.Duration
	// MaxInflight is the default per-shard heavy-request bound (0 =
	// unbounded).
	MaxInflight int
	// QueueSize is the default per-shard maintenance queue bound (0 =
	// pipeline default).
	QueueSize int
	// Retries and Backoff set each shard's batch retry discipline.
	Retries int
	Backoff time.Duration
	// Checkpoint is the per-shard journal compaction threshold in
	// bytes (0 disables).
	Checkpoint int64
	// Watch starts a spool watcher per shard on Root/<id>/spool.
	Watch bool
	// WatchInterval is the spool polling interval.
	WatchInterval time.Duration
	// Save persists each shard's state bundle to Root/<id>/state and
	// journals batches to Root/<id>/journal.
	Save bool
	// Budget, when set, is the shared maintenance-worker budget every
	// shard's pipeline gate acquires from.
	Budget *Budget
	// Telemetry, when set, receives every shard's metric families
	// through a per-tenant label view, plus the registry-level gauges.
	Telemetry *telemetry.Registry
	// Logger receives shard lifecycle diagnostics.
	Logger *telemetry.Logger
	// Placement, with Slot, scopes this process to its share of the
	// tenant space: Add refuses tenants whose ring slot differs.
	Placement *Placement
	Slot      int
	// NewEngine, when set, replaces disk bootstrap (tests and bench
	// build engines in memory). It returns the engine and whether it
	// starts degraded.
	NewEngine func(id string, opts midas.Options) (*midas.Engine, bool, error)
}

// engineOptions merges a tenant's overrides over the process defaults.
func (o *Options) engineOptions(ov Overrides) midas.Options {
	opts := o.Engine
	if ov.Gamma != nil {
		opts.Budget.Count = *ov.Gamma
	}
	if ov.MinSize != nil {
		opts.Budget.MinSize = *ov.MinSize
	}
	if ov.MaxSize != nil {
		opts.Budget.MaxSize = *ov.MaxSize
	}
	if ov.SupMin != nil {
		opts.SupMin = *ov.SupMin
	}
	if ov.Epsilon != nil {
		opts.Epsilon = *ov.Epsilon
	}
	if ov.Seed != nil {
		opts.Seed = *ov.Seed
	}
	if ov.Workers != nil {
		opts.Workers = *ov.Workers
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	return opts
}

func (o *Options) logf(format string, args ...interface{}) {
	if o.Logger != nil {
		o.Logger.Infof(format, args...)
	}
}

// Registry keys shards by dataset ID. Lookups are RLock-cheap; adds
// build the shard entirely outside the lock (a cold start loads
// bundles and bootstraps engines — unbounded work that must not block
// request routing), holding a reservation so concurrent adds of the
// same ID conflict cleanly.
type Registry struct {
	opts Options

	mu       sync.RWMutex
	shards   map[string]*Shard
	reserved map[string]bool
}

// NewRegistry builds an empty registry and, when telemetry is
// configured, registers the registry-level gauges (shard count and
// shared-budget occupancy).
func NewRegistry(opts Options) *Registry {
	if opts.WatchInterval <= 0 {
		opts.WatchInterval = time.Minute
	}
	r := &Registry{
		opts:     opts,
		shards:   make(map[string]*Shard),
		reserved: make(map[string]bool),
	}
	if reg := opts.Telemetry; reg != nil {
		reg.NewGaugeFunc("midas_tenants",
			"Tenant shards currently attached to the registry.",
			func() float64 { return float64(r.Len()) })
		if b := opts.Budget; b != nil {
			reg.NewGaugeFunc("midas_tenant_budget_capacity_workers",
				"Total maintenance worker slots shared across tenant shards.",
				func() float64 { return float64(b.Capacity()) })
			reg.NewGaugeFunc("midas_tenant_budget_used_workers",
				"Maintenance worker slots currently held by running batches.",
				func() float64 { return float64(b.InUse()) })
			reg.NewGaugeFunc("midas_tenant_budget_queued_batches",
				"Maintenance batches waiting for shared worker slots.",
				func() float64 { return float64(b.Waiting()) })
		}
	}
	return r
}

// Options returns the registry's process-wide defaults.
func (r *Registry) Options() Options { return r.opts }

// Len returns the number of attached shards.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.shards)
}

// Get resolves a tenant ID to its shard.
func (r *Registry) Get(id string) (*Shard, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	sh, ok := r.shards[id]
	return sh, ok
}

// IDs returns the attached tenant IDs, sorted.
func (r *Registry) IDs() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.shards))
	for id := range r.shards {
		out = append(out, id)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Shards returns the attached shards, sorted by ID.
func (r *Registry) Shards() []*Shard {
	r.mu.RLock()
	out := make([]*Shard, 0, len(r.shards))
	for _, sh := range r.shards {
		out = append(out, sh)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Statuses returns every shard's health line, sorted by ID.
func (r *Registry) Statuses() []Status {
	shards := r.Shards()
	out := make([]Status, len(shards))
	for i, sh := range shards {
		out[i] = sh.Status()
	}
	return out
}

// Add cold-starts a tenant and attaches it. The build runs outside
// the registry lock — other tenants keep serving while this one loads
// its bundle and bootstraps — with the ID reserved so a concurrent
// Add of the same tenant gets ErrExists, not a second engine.
func (r *Registry) Add(id string, ov Overrides) (*Shard, error) {
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	if p := r.opts.Placement; p != nil && p.Slot(id) != r.opts.Slot {
		return nil, fmt.Errorf("%w: tenant %s belongs to slot %d, this process is slot %d",
			ErrMisplaced, id, p.Slot(id), r.opts.Slot)
	}
	r.mu.Lock()
	if _, ok := r.shards[id]; ok || r.reserved[id] {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrExists, id)
	}
	r.reserved[id] = true
	r.mu.Unlock()

	sh, err := newShard(id, &r.opts, ov)

	r.mu.Lock()
	delete(r.reserved, id)
	if err == nil {
		r.shards[id] = sh
	}
	r.mu.Unlock()
	if err != nil {
		return nil, err
	}
	r.opts.logf("tenant %s: attached (%d graphs, %d patterns)", id, sh.engine.DB().Len(), len(sh.engine.Patterns()))
	return sh, nil
}

// Remove detaches a tenant and drains it: the shard disappears from
// routing first (new requests get 404), then finishes queued work,
// checkpoints its journal and saves its final state under ctx's
// deadline. Other shards are untouched throughout.
func (r *Registry) Remove(ctx context.Context, id string) error {
	r.mu.Lock()
	sh, ok := r.shards[id]
	if ok {
		delete(r.shards, id)
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknown, id)
	}
	err := sh.Drain(ctx)
	if err == nil {
		r.opts.logf("tenant %s: drained and detached", id)
	}
	return err
}

// DrainAll detaches and drains every shard concurrently (process
// shutdown). The first error is returned; all shards drain regardless.
func (r *Registry) DrainAll(ctx context.Context) error {
	r.mu.Lock()
	shards := make([]*Shard, 0, len(r.shards))
	for _, sh := range r.shards {
		shards = append(shards, sh)
	}
	r.shards = make(map[string]*Shard)
	r.mu.Unlock()
	// Drains run concurrently so order does not affect the outcome, but
	// deterministic launch order keeps the drain logs reproducible.
	sort.Slice(shards, func(i, j int) bool { return shards[i].ID < shards[j].ID })

	errCh := make(chan error, len(shards))
	var wg sync.WaitGroup
	for _, sh := range shards {
		wg.Add(1)
		go func(sh *Shard) {
			defer wg.Done()
			errCh <- sh.Drain(ctx)
		}(sh)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}
	return nil
}
