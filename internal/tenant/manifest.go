package tenant

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Overrides carries a tenant's per-shard deviations from the process
// defaults. Pointer fields distinguish "not set" from an explicit
// zero, so a manifest line can pin exactly the knobs it cares about.
type Overrides struct {
	Gamma       *int     // -gamma: displayed pattern count γ
	MinSize     *int     // -min: minimum pattern size
	MaxSize     *int     // -max: maximum pattern size
	SupMin      *float64 // -supmin: FCT support threshold
	Epsilon     *float64 // -epsilon: evolution ratio threshold ε
	Seed        *int64   // -seed
	Workers     *int     // -workers: this shard's kernel fan-out (and budget weight)
	MaxInflight *int     // -max-inflight: per-shard heavy-request shedding bound
	QueueSize   *int     // -maintain-queue: per-shard maintenance queue bound
}

// ManifestEntry is one tenant declaration: an ID plus its overrides.
type ManifestEntry struct {
	ID        string
	Overrides Overrides
}

// ParseManifest reads the -tenants manifest format: one tenant per
// line — an ID followed by optional key=value overrides — with blank
// lines and #-comments ignored.
//
//	# id [key=value ...]
//	aids
//	pubchem  gamma=30 supmin=0.3
//	emol     workers=2 max-inflight=8
//
// Keys mirror the single-tenant flags: gamma, min, max, supmin,
// epsilon, seed, workers, max-inflight, maintain-queue. Unknown keys
// and malformed values are errors — a typo in a production manifest
// must fail loudly at boot, not silently serve defaults.
func ParseManifest(r io.Reader) ([]ManifestEntry, error) {
	var out []ManifestEntry
	seen := make(map[string]bool)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		id := fields[0]
		if err := ValidateID(id); err != nil {
			return nil, fmt.Errorf("tenant: manifest line %d: %w", lineNo, err)
		}
		if seen[id] {
			return nil, fmt.Errorf("tenant: manifest line %d: duplicate tenant %q", lineNo, id)
		}
		seen[id] = true
		ov, err := parseOverrides(fields[1:])
		if err != nil {
			return nil, fmt.Errorf("tenant: manifest line %d (%s): %w", lineNo, id, err)
		}
		out = append(out, ManifestEntry{ID: id, Overrides: ov})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tenant: reading manifest: %w", err)
	}
	return out, nil
}

// parseOverrides parses key=value tokens (the manifest's per-line tail
// and the admin API's query parameters share this grammar).
func parseOverrides(tokens []string) (Overrides, error) {
	var ov Overrides
	for _, tok := range tokens {
		key, val, ok := strings.Cut(tok, "=")
		if !ok || val == "" {
			return ov, fmt.Errorf("malformed override %q (want key=value)", tok)
		}
		if err := ov.Set(key, val); err != nil {
			return ov, err
		}
	}
	return ov, nil
}

// Set applies one key=value override; unknown keys and malformed
// values are errors.
func (o *Overrides) Set(key, val string) error {
	switch key {
	case "gamma", "min", "max", "workers", "max-inflight", "maintain-queue":
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return fmt.Errorf("override %s=%q: want a non-negative integer", key, val)
		}
		switch key {
		case "gamma":
			o.Gamma = &n
		case "min":
			o.MinSize = &n
		case "max":
			o.MaxSize = &n
		case "workers":
			o.Workers = &n
		case "max-inflight":
			o.MaxInflight = &n
		case "maintain-queue":
			o.QueueSize = &n
		}
	case "supmin", "epsilon":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 {
			return fmt.Errorf("override %s=%q: want a non-negative number", key, val)
		}
		if key == "supmin" {
			o.SupMin = &f
		} else {
			o.Epsilon = &f
		}
	case "seed":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("override seed=%q: want an integer", val)
		}
		o.Seed = &n
	default:
		return fmt.Errorf("unknown override key %q", key)
	}
	return nil
}

// ValidateID rejects tenant IDs that cannot serve as a URL path
// segment, a directory name and a metric label value at once:
// lowercase letters, digits, '-' and '_', 1–64 bytes, not starting
// with '-' or '.'.
func ValidateID(id string) error {
	if id == "" {
		return fmt.Errorf("empty tenant id")
	}
	if len(id) > 64 {
		return fmt.Errorf("tenant id %q too long (max 64)", id)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_':
		case c == '-':
			if i == 0 {
				return fmt.Errorf("tenant id %q starts with '-'", id)
			}
		default:
			return fmt.Errorf("tenant id %q: character %q not allowed (want [a-z0-9_-])", id, c)
		}
	}
	return nil
}
