package ged

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/midas-graph/midas/graph"
)

func TestHungarianIdentity(t *testing.T) {
	cost := [][]float64{
		{0, 1, 1},
		{1, 0, 1},
		{1, 1, 0},
	}
	assign, total := Hungarian(cost)
	if total != 0 {
		t.Fatalf("total = %v, want 0", total)
	}
	for i, j := range assign {
		if i != j {
			t.Fatalf("assign = %v, want identity", assign)
		}
	}
}

func TestHungarianKnown(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	_, total := Hungarian(cost)
	if total != 5 { // 1 + 2 + 2
		t.Fatalf("total = %v, want 5", total)
	}
}

func TestHungarianEmpty(t *testing.T) {
	if _, total := Hungarian(nil); total != 0 {
		t.Fatalf("empty total = %v", total)
	}
}

func TestHungarianOptimalBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = float64(r.Intn(20))
			}
		}
		_, got := Hungarian(cost)
		want := bruteAssign(cost)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func bruteAssign(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.MaxFloat64
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			s := 0.0
			for r, c := range perm {
				s += cost[r][c]
			}
			if s < best {
				best = s
			}
			return
		}
		for j := i; j < n; j++ {
			perm[i], perm[j] = perm[j], perm[i]
			rec(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	rec(0)
	return best
}

func TestExactIdentical(t *testing.T) {
	g := graph.Cycle(0, "C", "O", "N", "C")
	d, exact := Exact(g, g.Clone(), 0)
	if !exact || d != 0 {
		t.Fatalf("GED(g,g) = %v exact=%v, want 0 exact", d, exact)
	}
}

func TestExactSingleRelabel(t *testing.T) {
	a := graph.Path(0, "C", "O", "N")
	b := graph.Path(1, "C", "O", "S")
	d, exact := Exact(a, b, 0)
	if !exact || d != 1 {
		t.Fatalf("GED = %v exact=%v, want 1", d, exact)
	}
}

func TestExactEdgeInsertion(t *testing.T) {
	a := graph.Path(0, "C", "C", "C")
	b := graph.Cycle(1, "C", "C", "C")
	d, exact := Exact(a, b, 0)
	if !exact || d != 1 {
		t.Fatalf("GED path->cycle = %v exact=%v, want 1", d, exact)
	}
}

func TestExactVertexInsertion(t *testing.T) {
	a := graph.Path(0, "C", "O")
	b := graph.Path(1, "C", "O", "N")
	// Insert vertex N and edge O-N: cost 2.
	d, exact := Exact(a, b, 0)
	if !exact || d != 2 {
		t.Fatalf("GED = %v exact=%v, want 2", d, exact)
	}
}

func TestExactEmpty(t *testing.T) {
	a := graph.New(0)
	b := graph.Path(1, "C", "O")
	d, exact := Exact(a, b, 0)
	if !exact || d != 3 { // two vertex insertions + one edge
		t.Fatalf("GED = %v exact=%v, want 3", d, exact)
	}
}

func TestExactSymmetric(t *testing.T) {
	a := graph.Cycle(0, "C", "O", "C", "N")
	b := graph.Path(1, "C", "O", "N")
	d1, e1 := Exact(a, b, 0)
	d2, e2 := Exact(b, a, 0)
	if !e1 || !e2 {
		t.Fatal("small instances should be exact")
	}
	if d1 != d2 {
		t.Fatalf("GED not symmetric: %v vs %v", d1, d2)
	}
}

func TestBipartiteUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomGraph(r, 6)
		b := randomGraph(r, 6)
		exact, ok := Exact(a, b, 300000)
		if !ok {
			return true // skip: budget exceeded
		}
		bi := Bipartite(a, b)
		return bi >= exact-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLowerBoundLabelAdmissible(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomGraph(r, 6)
		b := randomGraph(r, 6)
		exact, ok := Exact(a, b, 300000)
		if !ok {
			return true
		}
		return LowerBoundLabel(a, b) <= exact+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLowerBoundLabelKnown(t *testing.T) {
	a := graph.Path(0, "C", "O", "N")
	b := graph.Path(1, "C", "O", "S")
	// |V|: |3-3| + 3 - |{C,O}∩| = 0 + 3 - 2 = 1; |E|: 0.
	if got := LowerBoundLabel(a, b); got != 1 {
		t.Fatalf("GED_l = %v, want 1", got)
	}
}

func TestTighterLowerBound(t *testing.T) {
	a := graph.Path(0, "C", "O", "N")
	b := graph.Path(1, "C", "O", "S")
	if got := TighterLowerBound(a, b, 2); got != 3 {
		t.Fatalf("GED'_l = %v, want 3", got)
	}
	if got := TighterLowerBound(a, b, -5); got != 1 {
		t.Fatalf("GED'_l with negative n = %v, want 1", got)
	}
}

func TestDistanceConsistency(t *testing.T) {
	a := graph.Path(0, "C", "O", "N")
	b := graph.Path(1, "C", "O", "S")
	if d := Distance(a, b); d != 1 {
		t.Fatalf("Distance = %v, want 1 (exact regime)", d)
	}
}

func TestExactBudget(t *testing.T) {
	labels := make([]string, 9)
	for i := range labels {
		labels[i] = "A"
	}
	a := graph.Clique(0, labels...)
	b := graph.Cycle(1, labels...)
	// With a tiny budget the search must terminate and return a valid
	// upper bound; it may still prove exactness via bound pruning.
	d, _ := Exact(a, b, 10)
	if d <= 0 {
		t.Fatalf("budgeted GED = %v, want > 0", d)
	}
	full, ok := Exact(a, b, 0)
	if ok && d < full-1e-9 {
		t.Fatalf("budgeted result %v below exact %v", d, full)
	}
}

func randomGraph(r *rand.Rand, maxN int) *graph.Graph {
	labels := []string{"C", "O", "N"}
	n := 1 + r.Intn(maxN)
	g := graph.New(0)
	for i := 0; i < n; i++ {
		g.AddVertex(labels[r.Intn(len(labels))])
	}
	for i := 1; i < n; i++ {
		g.AddEdge(i, r.Intn(i))
	}
	for i := 0; i < n/2; i++ {
		g.AddEdge(r.Intn(n), r.Intn(n))
	}
	g.SortAdjacency()
	return g
}

func TestPropertyGEDTriangleInequalityish(t *testing.T) {
	// Exact GED is a metric; verify symmetry and identity on random
	// small graphs (triangle inequality is implied by metric proofs; we
	// spot-check it too).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomGraph(r, 5)
		b := randomGraph(r, 5)
		c := randomGraph(r, 5)
		dab, ok1 := Exact(a, b, 300000)
		dbc, ok2 := Exact(b, c, 300000)
		dac, ok3 := Exact(a, c, 300000)
		if !ok1 || !ok2 || !ok3 {
			return true
		}
		return dac <= dab+dbc+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
