package ged

import (
	"sync/atomic"

	"github.com/midas-graph/midas/internal/telemetry"
)

// Process-wide GED kernel counters, maintained with one flush of atomic
// adds per public call (the A* loop counts expansions locally). Like
// internal/iso, per-batch attribution is done by diffing Snapshot()
// around a unit of work.
var kernelStats struct {
	exactCalls     atomic.Uint64
	exactExpanded  atomic.Uint64
	exactCapHits   atomic.Uint64
	bipartiteCalls atomic.Uint64
	beamCalls      atomic.Uint64
}

// Stats is a snapshot of the package's counters.
type Stats struct {
	// ExactCalls counts A* GED computations, ExactExpanded the nodes
	// they popped and expanded, ExactCapHits the searches that ran out
	// of node budget (or were cancelled) and returned an upper bound.
	ExactCalls, ExactExpanded, ExactCapHits uint64
	// BipartiteCalls and BeamCalls count the approximation entry points.
	BipartiteCalls, BeamCalls uint64
}

// Snapshot returns the current counters.
func Snapshot() Stats {
	return Stats{
		ExactCalls:     kernelStats.exactCalls.Load(),
		ExactExpanded:  kernelStats.exactExpanded.Load(),
		ExactCapHits:   kernelStats.exactCapHits.Load(),
		BipartiteCalls: kernelStats.bipartiteCalls.Load(),
		BeamCalls:      kernelStats.beamCalls.Load(),
	}
}

func flushExact(expanded int, capped bool) {
	kernelStats.exactCalls.Add(1)
	kernelStats.exactExpanded.Add(uint64(expanded))
	if capped {
		kernelStats.exactCapHits.Add(1)
	}
}

// RegisterMetrics exposes the GED counters on reg in Prometheus form.
// Registration is idempotent; a Nop registry is a no-op.
func RegisterMetrics(reg *telemetry.Registry) {
	reg.NewCounterFunc("midas_ged_exact_calls_total",
		"A* graph edit distance computations.",
		func() float64 { return float64(kernelStats.exactCalls.Load()) })
	reg.NewCounterFunc("midas_ged_expanded_total",
		"A* GED search nodes expanded.",
		func() float64 { return float64(kernelStats.exactExpanded.Load()) })
	reg.NewCounterFunc("midas_ged_cap_hits_total",
		"GED searches stopped by the node budget or cancellation.",
		func() float64 { return float64(kernelStats.exactCapHits.Load()) })
	reg.NewCounterFunc("midas_ged_bipartite_calls_total",
		"Bipartite (assignment) GED approximations computed.",
		func() float64 { return float64(kernelStats.bipartiteCalls.Load()) })
	reg.NewCounterFunc("midas_ged_beam_calls_total",
		"Beam-search GED upper bounds computed.",
		func() float64 { return float64(kernelStats.beamCalls.Load()) })
}
