package ged

import (
	"container/heap"
	"fmt"
	"sort"

	"github.com/midas-graph/midas/graph"
)

func heapInit(pq *gedPQ)             { heap.Init(pq) }
func heapPush(pq *gedPQ, n *gedNode) { heap.Push(pq, n) }
func heapPop(pq *gedPQ) *gedNode     { return heap.Pop(pq).(*gedNode) }

func sortByDegreeDesc(g *graph.Graph, order []int) {
	sort.Slice(order, func(i, j int) bool {
		return g.Degree(order[i]) > g.Degree(order[j])
	})
}

// Edit paths. Beyond the distance value, interfaces want the concrete
// edit script: when a user drops a canned pattern, the GUI can show the
// operations that turn it into (part of) the query. An edit path is
// derived from a vertex mapping; its cost equals the mapping's edit
// cost, and applying it to the source graph yields a graph isomorphic
// to the target (tested property).

// OpKind enumerates edit operations.
type OpKind int

const (
	// RelabelVertex changes the label of source vertex V to Label.
	RelabelVertex OpKind = iota
	// DeleteVertex removes source vertex V (its incident edges are
	// deleted by explicit DeleteEdge ops first).
	DeleteVertex
	// InsertVertex adds a new vertex with the given Label; Temp names
	// it for later InsertEdge references.
	InsertVertex
	// DeleteEdge removes the source edge (U, V).
	DeleteEdge
	// InsertEdge adds an edge between two endpoints, each either a kept
	// source vertex or an inserted Temp vertex.
	InsertEdge
)

// EndpointRef references an edit-path endpoint: a source-graph vertex
// (Source=true) or an inserted vertex's Temp index.
type EndpointRef struct {
	Source bool
	V      int
}

// EditOp is one operation of an edit path.
type EditOp struct {
	Kind  OpKind
	V     int    // vertex for Relabel/DeleteVertex; Temp for InsertVertex
	U     int    // first endpoint for DeleteEdge
	W     int    // second endpoint for DeleteEdge
	Label string // for RelabelVertex / InsertVertex
	A, B  EndpointRef
}

// Cost returns the uniform cost of the operation (always 1; relabels to
// the same label are never emitted).
func (EditOp) Cost() float64 { return 1 }

// PathFromMapping derives the edit path induced by a vertex mapping:
// mapping[av] = bv >= 0 substitutes, -1 deletes; b vertices not in the
// image are inserted. The path's total cost equals
// editCostOfMappingDirect(a, b, mapping).
func PathFromMapping(a, b *graph.Graph, mapping []int) []EditOp {
	var ops []EditOp
	usedB := make([]bool, b.Order())
	for _, bv := range mapping {
		if bv >= 0 {
			usedB[bv] = true
		}
	}
	// 1. Delete a-edges that are not preserved.
	for _, e := range a.Edges() {
		u, v := mapping[e.U], mapping[e.V]
		if u < 0 || v < 0 || !b.HasEdge(u, v) {
			ops = append(ops, EditOp{Kind: DeleteEdge, U: e.U, W: e.V})
		}
	}
	// 2. Delete unmapped a-vertices.
	for av, bv := range mapping {
		if bv < 0 {
			ops = append(ops, EditOp{Kind: DeleteVertex, V: av})
		}
	}
	// 3. Relabel substituted vertices with differing labels.
	for av, bv := range mapping {
		if bv >= 0 && a.Label(av) != b.Label(bv) {
			ops = append(ops, EditOp{Kind: RelabelVertex, V: av, Label: b.Label(bv)})
		}
	}
	// 4. Insert missing b-vertices; temp index = b vertex ID.
	for bv := 0; bv < b.Order(); bv++ {
		if !usedB[bv] {
			ops = append(ops, EditOp{Kind: InsertVertex, V: bv, Label: b.Label(bv)})
		}
	}
	// 5. Insert b-edges not covered by preserved a-edges.
	inv := make([]int, b.Order())
	for i := range inv {
		inv[i] = -1
	}
	for av, bv := range mapping {
		if bv >= 0 {
			inv[bv] = av
		}
	}
	ref := func(bv int) EndpointRef {
		if inv[bv] >= 0 {
			return EndpointRef{Source: true, V: inv[bv]}
		}
		return EndpointRef{Source: false, V: bv}
	}
	for _, e := range b.Edges() {
		au, av := inv[e.U], inv[e.V]
		if au >= 0 && av >= 0 && a.HasEdge(au, av) {
			continue // preserved
		}
		ops = append(ops, EditOp{Kind: InsertEdge, A: ref(e.U), B: ref(e.V)})
	}
	return ops
}

// EditPath returns an edit script from a to b and its cost: the exact
// optimum for small instances (within the default search budget),
// otherwise the bipartite approximation's script.
func EditPath(a, b *graph.Graph) ([]EditOp, float64) {
	if a.Order()+b.Order() <= 16 {
		if d, mapping, ok := ExactWithMapping(a, b, 200000); ok {
			return PathFromMapping(a, b, mapping), d
		}
	}
	mapping := bipartiteMapping(a, b)
	ops := PathFromMapping(a, b, mapping)
	return ops, float64(len(ops))
}

// Apply executes an edit path on a copy of a, producing the edited
// graph (vertices renumbered densely: kept a-vertices in ID order, then
// inserted vertices in op order). It fails on references to missing
// vertices or edges.
func Apply(a *graph.Graph, ops []EditOp) (*graph.Graph, error) {
	deletedV := make(map[int]bool)
	relabel := make(map[int]string)
	deletedE := make(map[graph.Edge]bool)
	var inserts []EditOp
	var insertEdges []EditOp
	for _, op := range ops {
		switch op.Kind {
		case DeleteVertex:
			if op.V < 0 || op.V >= a.Order() {
				return nil, fmt.Errorf("ged: DeleteVertex %d out of range", op.V)
			}
			deletedV[op.V] = true
		case RelabelVertex:
			if op.V < 0 || op.V >= a.Order() {
				return nil, fmt.Errorf("ged: RelabelVertex %d out of range", op.V)
			}
			relabel[op.V] = op.Label
		case DeleteEdge:
			e := graph.Edge{U: op.U, V: op.W}.Canon()
			if !a.HasEdge(e.U, e.V) {
				return nil, fmt.Errorf("ged: DeleteEdge (%d,%d) not in source", op.U, op.W)
			}
			deletedE[e] = true
		case InsertVertex:
			inserts = append(inserts, op)
		case InsertEdge:
			insertEdges = append(insertEdges, op)
		}
	}
	// Deleted vertices must not retain live edges.
	for _, e := range a.Edges() {
		if (deletedV[e.U] || deletedV[e.V]) && !deletedE[e] {
			return nil, fmt.Errorf("ged: vertex deletion leaves live edge (%d,%d)", e.U, e.V)
		}
	}
	out := graph.New(a.ID)
	idx := make(map[int]int) // source vertex -> out vertex
	for v := 0; v < a.Order(); v++ {
		if deletedV[v] {
			continue
		}
		label := a.Label(v)
		if l, ok := relabel[v]; ok {
			label = l
		}
		idx[v] = out.AddVertex(label)
	}
	tempIdx := make(map[int]int) // temp id -> out vertex
	for _, op := range inserts {
		tempIdx[op.V] = out.AddVertex(op.Label)
	}
	for _, e := range a.Edges() {
		if deletedE[e] || deletedV[e.U] || deletedV[e.V] {
			continue
		}
		out.AddEdge(idx[e.U], idx[e.V])
	}
	resolve := func(r EndpointRef) (int, error) {
		if r.Source {
			i, ok := idx[r.V]
			if !ok {
				return 0, fmt.Errorf("ged: InsertEdge references deleted vertex %d", r.V)
			}
			return i, nil
		}
		i, ok := tempIdx[r.V]
		if !ok {
			return 0, fmt.Errorf("ged: InsertEdge references unknown temp %d", r.V)
		}
		return i, nil
	}
	for _, op := range insertEdges {
		u, err := resolve(op.A)
		if err != nil {
			return nil, err
		}
		v, err := resolve(op.B)
		if err != nil {
			return nil, err
		}
		if !out.AddEdge(u, v) {
			return nil, fmt.Errorf("ged: InsertEdge (%v,%v) invalid or duplicate", op.A, op.B)
		}
	}
	out.SortAdjacency()
	return out, nil
}

// ExactWithMapping is Exact but also returns the optimal vertex mapping
// (a vertex -> b vertex or -1). The boolean reports exactness; on
// budget exhaustion the best-known mapping (possibly from the bipartite
// seed) is returned.
func ExactWithMapping(a, b *graph.Graph, maxNodes int) (float64, []int, bool) {
	// Re-run the A* tracking the incumbent mapping. Mirrors Exact; kept
	// separate so the hot distance-only path stays allocation-light.
	if maxNodes <= 0 {
		maxNodes = 400000
	}
	orderA := make([]int, a.Order())
	for i := range orderA {
		orderA[i] = i
	}
	sortByDegreeDesc(a, orderA)

	bestMapping := bipartiteMapping(a, b)
	upper := editCostOfMappingDirect(a, b, bestMapping)

	start := &gedNode{mapping: make([]int, 0, a.Order())}
	start.f = heuristic(a, b, start.mapping, orderA)
	pq := &gedPQ{start}
	heapInit(pq)
	expanded := 0
	for pq.Len() > 0 {
		cur := heapPop(pq)
		if cur.f >= upper {
			return upper, bestMapping, true
		}
		if len(cur.mapping) == a.Order() {
			total := cur.g + insertionCost(a, b, cur.mapping, orderA)
			if total < upper {
				upper = total
				bestMapping = mappingInVertexOrder(cur.mapping, orderA, a.Order())
			}
			continue
		}
		expanded++
		if expanded > maxNodes {
			return upper, bestMapping, false
		}
		av := orderA[len(cur.mapping)]
		for bv := 0; bv < b.Order(); bv++ {
			if cur.uses(bv) {
				continue
			}
			child := cur.extend(bv)
			child.g = cur.g + substitutionCost(a, b, av, bv, cur.mapping, orderA)
			child.f = child.g + heuristic(a, b, child.mapping, orderA)
			if child.f < upper {
				heapPush(pq, child)
			}
		}
		child := cur.extend(-1)
		child.g = cur.g + 1 + float64(mappedDegree(a, av, cur.mapping, orderA))
		child.f = child.g + heuristic(a, b, child.mapping, orderA)
		if child.f < upper {
			heapPush(pq, child)
		}
	}
	return upper, bestMapping, true
}

// mappingInVertexOrder converts an order-indexed mapping back to vertex
// indexing.
func mappingInVertexOrder(orderMapping, orderA []int, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	for i, bv := range orderMapping {
		out[orderA[i]] = bv
	}
	return out
}

// bipartiteMapping returns the assignment-based vertex mapping
// (a vertex -> b vertex or -1).
func bipartiteMapping(a, b *graph.Graph) []int {
	na, nb := a.Order(), b.Order()
	if na == 0 {
		return nil
	}
	if nb == 0 {
		out := make([]int, na)
		for i := range out {
			out[i] = -1
		}
		return out
	}
	n := na + nb
	const big = 1e18
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
	}
	for i := 0; i < na; i++ {
		for j := 0; j < nb; j++ {
			c := 0.0
			if a.Label(i) != b.Label(j) {
				c = 1
			}
			c += 0.5 * float64(intAbs(a.Degree(i)-b.Degree(j)))
			cost[i][j] = c
		}
		for j := nb; j < n; j++ {
			if j-nb == i {
				cost[i][j] = 1 + 0.5*float64(a.Degree(i))
			} else {
				cost[i][j] = big
			}
		}
	}
	for i := na; i < n; i++ {
		for j := 0; j < nb; j++ {
			if i-na == j {
				cost[i][j] = 1 + 0.5*float64(b.Degree(j))
			} else {
				cost[i][j] = big
			}
		}
	}
	assign, _ := Hungarian(cost)
	out := make([]int, na)
	for i := 0; i < na; i++ {
		if assign[i] < nb {
			out[i] = assign[i]
		} else {
			out[i] = -1
		}
	}
	return out
}

// editCostOfMappingDirect is editCostOfMapping for a vertex-indexed
// mapping.
func editCostOfMappingDirect(a, b *graph.Graph, mapping []int) float64 {
	cost := 0.0
	usedB := make([]bool, b.Order())
	for av, bv := range mapping {
		if bv >= 0 {
			usedB[bv] = true
			if a.Label(av) != b.Label(bv) {
				cost++
			}
		} else {
			cost++
		}
	}
	for bv := 0; bv < b.Order(); bv++ {
		if !usedB[bv] {
			cost++
		}
	}
	preserved := 0
	for _, e := range a.Edges() {
		u, v := mapping[e.U], mapping[e.V]
		if u >= 0 && v >= 0 && b.HasEdge(u, v) {
			preserved++
		} else {
			cost++
		}
	}
	cost += float64(b.Size() - preserved)
	return cost
}
