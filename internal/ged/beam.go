package ged

import (
	"sort"

	"github.com/midas-graph/midas/graph"
)

// Beam computes a GED upper bound via beam search over the same vertex
// -assignment search tree as Exact, keeping only the `width` best
// partial mappings per level. Width 1 is a greedy assignment; growing
// widths trade time for tightness, converging to the exact value — the
// classic anytime variant of the A* formulation used alongside the
// bipartite approximation in the Riesen–Bunke family [32].
func Beam(a, b *graph.Graph, width int) float64 {
	kernelStats.beamCalls.Add(1)
	if width < 1 {
		width = 1
	}
	orderA := make([]int, a.Order())
	for i := range orderA {
		orderA[i] = i
	}
	sort.Slice(orderA, func(i, j int) bool { return a.Degree(orderA[i]) > a.Degree(orderA[j]) })

	type partial struct {
		mapping []int
		g       float64
	}
	level := []partial{{mapping: []int{}}}
	for depth := 0; depth < a.Order(); depth++ {
		av := orderA[depth]
		var next []partial
		for _, p := range level {
			used := make(map[int]bool, len(p.mapping))
			for _, m := range p.mapping {
				if m >= 0 {
					used[m] = true
				}
			}
			for bv := 0; bv < b.Order(); bv++ {
				if used[bv] {
					continue
				}
				child := append(append([]int{}, p.mapping...), bv)
				next = append(next, partial{
					mapping: child,
					g:       p.g + substitutionCost(a, b, av, bv, p.mapping, orderA),
				})
			}
			del := append(append([]int{}, p.mapping...), -1)
			next = append(next, partial{
				mapping: del,
				g:       p.g + 1 + float64(mappedDegree(a, av, p.mapping, orderA)),
			})
		}
		// Keep the best `width` by g + admissible heuristic.
		sort.SliceStable(next, func(i, j int) bool {
			fi := next[i].g + heuristic(a, b, next[i].mapping, orderA)
			fj := next[j].g + heuristic(a, b, next[j].mapping, orderA)
			return fi < fj
		})
		if len(next) > width {
			next = next[:width]
		}
		level = next
	}
	best := -1.0
	for _, p := range level {
		total := p.g + insertionCost(a, b, p.mapping, orderA)
		if best < 0 || total < best {
			best = total
		}
	}
	if best < 0 {
		// a has no vertices: cost is building b outright.
		return float64(b.Order() + b.Size())
	}
	return best
}
