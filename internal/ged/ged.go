package ged

import (
	"container/heap"
	"sort"

	"github.com/midas-graph/midas/graph"
)

// LowerBoundLabel returns the label-count lower bound GED_l of Lemma 6.1
// with zero relaxed edges:
//
//	|V| = ||V_A|-|V_B|| + Min(|V_A|,|V_B|) - |L(V_A) ∩ L(V_B)|
//	|E| = ||E_A|-|E_B||
//
// where the label intersection is over multisets.
func LowerBoundLabel(a, b *graph.Graph) float64 {
	return float64(vertexTerm(a, b) + intAbs(a.Size()-b.Size()))
}

// TighterLowerBound returns GED'_l = GED_l + n where n is the number of
// relaxed edges determined externally (e.g. from the PF-matrix feature
// containment test of §6.1).
func TighterLowerBound(a, b *graph.Graph, relaxedEdges int) float64 {
	if relaxedEdges < 0 {
		relaxedEdges = 0
	}
	return float64(vertexTerm(a,
		b) + intAbs(a.Size()-b.Size()) + relaxedEdges)
}

func vertexTerm(a, b *graph.Graph) int {
	la := graph.SortedVertexLabels(a)
	lb := graph.SortedVertexLabels(b)
	common := multisetIntersection(la, lb)
	minV := a.Order()
	if b.Order() < minV {
		minV = b.Order()
	}
	return intAbs(a.Order()-b.Order()) + minV - common
}

// multisetIntersection returns |A ∩ B| for two sorted string multisets.
func multisetIntersection(a, b []string) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

func intAbs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Bipartite returns the assignment-based GED approximation of [32]: each
// vertex of a is assigned to a vertex of b (substitution), to deletion,
// or left for insertion, with local costs that include the incident-edge
// mismatch; the induced edit path cost is returned. It is an upper bound
// on the exact GED.
func Bipartite(a, b *graph.Graph) float64 {
	kernelStats.bipartiteCalls.Add(1)
	na, nb := a.Order(), b.Order()
	n := na + nb
	if n == 0 {
		return 0
	}
	const big = 1e18
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
	}
	for i := 0; i < na; i++ {
		for j := 0; j < nb; j++ {
			c := 0.0
			if a.Label(i) != b.Label(j) {
				c = 1
			}
			// Local edge structure: degree difference approximates the
			// edge edits caused by this substitution.
			c += 0.5 * float64(intAbs(a.Degree(i)-b.Degree(j)))
			cost[i][j] = c
		}
		for j := nb; j < n; j++ {
			if j-nb == i {
				cost[i][j] = 1 + 0.5*float64(a.Degree(i)) // delete vertex i
			} else {
				cost[i][j] = big
			}
		}
	}
	for i := na; i < n; i++ {
		for j := 0; j < nb; j++ {
			if i-na == j {
				cost[i][j] = 1 + 0.5*float64(b.Degree(j)) // insert vertex j
			} else {
				cost[i][j] = big
			}
		}
		for j := nb; j < n; j++ {
			cost[i][j] = 0
		}
	}
	assign, _ := Hungarian(cost)
	// Derive the true edit cost of the induced vertex mapping.
	return editCostOfMapping(a, b, assign[:na])
}

// editCostOfMapping computes the exact cost of the edit path induced by
// a vertex mapping: mapping[i] in [0,nb) substitutes, >= nb deletes.
func editCostOfMapping(a, b *graph.Graph, mapping []int) float64 {
	nb := b.Order()
	cost := 0.0
	mapped := make([]int, a.Order())
	usedB := make([]bool, nb)
	for i, j := range mapping {
		if j < nb {
			mapped[i] = j
			usedB[j] = true
			if a.Label(i) != b.Label(j) {
				cost++ // relabel
			}
		} else {
			mapped[i] = -1
			cost++ // delete vertex
		}
	}
	for j := 0; j < nb; j++ {
		if !usedB[j] {
			cost++ // insert vertex
		}
	}
	// Edges of a: preserved if both endpoints map to adjacent b vertices.
	preserved := 0
	for _, e := range a.Edges() {
		u, v := mapped[e.U], mapped[e.V]
		if u >= 0 && v >= 0 && b.HasEdge(u, v) {
			preserved++
		} else {
			cost++ // delete edge
		}
	}
	cost += float64(b.Size() - preserved) // insert remaining b edges
	return cost
}

// Exact computes the exact uniform-cost GED between a and b via A*,
// exploring at most maxNodes search states (<=0 means a generous
// default). The second result reports whether the value is exact; when
// false, the returned value is the best upper bound found (never below
// the true distance... it is the bipartite bound if the search yielded
// nothing better).
func Exact(a, b *graph.Graph, maxNodes int) (float64, bool) {
	return ExactCancel(a, b, maxNodes, nil)
}

// ExactCancel is Exact with an optional cancellation hook polled in the
// A* expansion loop alongside the node budget; when it fires, the best
// upper bound found so far is returned (marked inexact).
func ExactCancel(a, b *graph.Graph, maxNodes int, cancel func() bool) (float64, bool) {
	if maxNodes <= 0 {
		maxNodes = 400000
	}
	// Search maps vertices of a (in descending-degree order) to vertices
	// of b or to deletion; insertions are settled at the end.
	orderA := make([]int, a.Order())
	for i := range orderA {
		orderA[i] = i
	}
	sort.Slice(orderA, func(i, j int) bool { return a.Degree(orderA[i]) > a.Degree(orderA[j]) })

	upper := Bipartite(a, b)
	start := &gedNode{mapping: make([]int, 0, a.Order())}
	start.f = heuristic(a, b, start.mapping, orderA)
	pq := &gedPQ{start}
	heap.Init(pq)
	expanded := 0
	exact := true
	defer func() { flushExact(expanded, !exact) }()
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(*gedNode)
		if cur.f >= upper {
			// Everything remaining costs at least the known upper bound.
			return upper, true
		}
		if len(cur.mapping) == a.Order() {
			total := cur.g + insertionCost(a, b, cur.mapping, orderA)
			if total < upper {
				upper = total
			}
			// First goal popped with admissible h is optimal, but since
			// our insertion cost is settled at goal time, we continue
			// until the frontier cannot improve. The check above handles
			// termination.
			continue
		}
		expanded++
		if expanded > maxNodes {
			exact = false
			return upper, false
		}
		if cancel != nil && expanded&0xFF == 0 && cancel() {
			exact = false
			return upper, false
		}
		av := orderA[len(cur.mapping)]
		// Substitute with each unused b vertex.
		for bv := 0; bv < b.Order(); bv++ {
			if cur.uses(bv) {
				continue
			}
			child := cur.extend(bv)
			child.g = cur.g + substitutionCost(a, b, av, bv, cur.mapping, orderA)
			child.f = child.g + heuristic(a, b, child.mapping, orderA)
			if child.f < upper {
				heap.Push(pq, child)
			}
		}
		// Delete av.
		child := cur.extend(-1)
		child.g = cur.g + 1 + float64(mappedDegree(a, av, cur.mapping, orderA))
		child.f = child.g + heuristic(a, b, child.mapping, orderA)
		if child.f < upper {
			heap.Push(pq, child)
		}
	}
	return upper, true
}

// substitutionCost is the incremental cost of mapping av->bv given the
// existing partial mapping: label mismatch plus edge edits between av and
// previously mapped vertices.
func substitutionCost(a, b *graph.Graph, av, bv int, mapping []int, orderA []int) float64 {
	c := 0.0
	if a.Label(av) != b.Label(bv) {
		c = 1
	}
	for i, m := range mapping {
		au := orderA[i]
		aEdge := a.HasEdge(av, au)
		if m == -1 {
			if aEdge {
				c++ // edge to deleted vertex must be deleted
			}
			continue
		}
		bEdge := b.HasEdge(bv, m)
		if aEdge != bEdge {
			c++
		}
	}
	return c
}

// mappedDegree counts edges from av to already-mapped (or deleted)
// a-vertices; deleting av deletes those edges.
func mappedDegree(a *graph.Graph, av int, mapping []int, orderA []int) int {
	n := 0
	for i := range mapping {
		if a.HasEdge(av, orderA[i]) {
			n++
		}
	}
	return n
}

// insertionCost closes a complete mapping: unmatched b vertices are
// inserted along with every b edge not matched by an a edge; edges of b
// between two substituted vertices were already accounted.
func insertionCost(a, b *graph.Graph, mapping []int, orderA []int) float64 {
	used := make([]bool, b.Order())
	aimg := make([]int, a.Order())
	for i := range aimg {
		aimg[i] = -1
	}
	for i, m := range mapping {
		if m >= 0 {
			used[m] = true
			aimg[orderA[i]] = m
		}
	}
	cost := 0.0
	for v := 0; v < b.Order(); v++ {
		if !used[v] {
			cost++
		}
	}
	// b edges with at least one un-mapped endpoint are insertions; those
	// between mapped endpoints were charged during substitution.
	for _, e := range b.Edges() {
		if !used[e.U] || !used[e.V] {
			cost++
		}
	}
	return cost
}

// heuristic is an admissible estimate of the remaining cost: label
// multiset mismatch between unmapped a vertices and unused b vertices,
// plus the difference between remaining edge counts.
func heuristic(a, b *graph.Graph, mapping []int, orderA []int) float64 {
	usedB := make([]bool, b.Order())
	for _, m := range mapping {
		if m >= 0 {
			usedB[m] = true
		}
	}
	var remA, remB []string
	for i := len(mapping); i < a.Order(); i++ {
		remA = append(remA, a.Label(orderA[i]))
	}
	for v := 0; v < b.Order(); v++ {
		if !usedB[v] {
			remB = append(remB, b.Label(v))
		}
	}
	sort.Strings(remA)
	sort.Strings(remB)
	common := multisetIntersection(remA, remB)
	maxR := len(remA)
	if len(remB) > maxR {
		maxR = len(remB)
	}
	hv := float64(maxR - common)

	// Remaining-edge counts: a edges with an unmapped endpoint vs b edges
	// with an unused endpoint.
	inMapping := make([]bool, a.Order())
	for i := range mapping {
		inMapping[orderA[i]] = true
	}
	ea, eb := 0, 0
	for _, e := range a.Edges() {
		if !inMapping[e.U] || !inMapping[e.V] {
			ea++
		}
	}
	for _, e := range b.Edges() {
		if !usedB[e.U] || !usedB[e.V] {
			eb++
		}
	}
	he := float64(intAbs(ea - eb))
	return hv + he
}

type gedNode struct {
	mapping []int // orderA[i] -> b vertex or -1 (deleted)
	g, f    float64
}

func (n *gedNode) uses(bv int) bool {
	for _, m := range n.mapping {
		if m == bv {
			return true
		}
	}
	return false
}

func (n *gedNode) extend(bv int) *gedNode {
	m := make([]int, len(n.mapping)+1)
	copy(m, n.mapping)
	m[len(n.mapping)] = bv
	return &gedNode{mapping: m}
}

type gedPQ []*gedNode

func (q gedPQ) Len() int            { return len(q) }
func (q gedPQ) Less(i, j int) bool  { return q[i].f < q[j].f }
func (q gedPQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *gedPQ) Push(x interface{}) { *q = append(*q, x.(*gedNode)) }
func (q *gedPQ) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// Distance returns a practical GED estimate: exact for small graphs
// (within a default node budget), otherwise the bipartite upper bound.
func Distance(a, b *graph.Graph) float64 {
	return DistanceCancel(a, b, nil)
}

// DistanceCancel is Distance with an optional cancellation hook; on
// cancellation the (cheap) bipartite upper bound is returned.
func DistanceCancel(a, b *graph.Graph, cancel func() bool) float64 {
	if a.Order()+b.Order() <= 16 {
		if d, exact := ExactCancel(a, b, 200000, cancel); exact {
			return d
		}
	}
	return Bipartite(a, b)
}
