package ged

import (
	"math/rand"
	"testing"
)

func BenchmarkExactSmall(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := randomGraph(r, 7)
	c := randomGraph(r, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Exact(a, c, 0)
	}
}

func BenchmarkBipartite(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := randomGraph(r, 14)
	c := randomGraph(r, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Bipartite(a, c)
	}
}

func BenchmarkBeam(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := randomGraph(r, 14)
	c := randomGraph(r, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Beam(a, c, 8)
	}
}
