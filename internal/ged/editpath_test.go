package ged

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/iso"
)

func TestEditPathIdentical(t *testing.T) {
	g := graph.Cycle(0, "C", "O", "N")
	ops, cost := EditPath(g, g.Clone())
	if len(ops) != 0 || cost != 0 {
		t.Fatalf("ops=%d cost=%v, want empty path", len(ops), cost)
	}
}

func TestEditPathSingleRelabel(t *testing.T) {
	a := graph.Path(0, "C", "O", "N")
	b := graph.Path(1, "C", "O", "S")
	ops, cost := EditPath(a, b)
	if cost != 1 || len(ops) != 1 {
		t.Fatalf("ops=%v cost=%v, want one relabel", ops, cost)
	}
	if ops[0].Kind != RelabelVertex || ops[0].Label != "S" {
		t.Fatalf("op = %+v, want relabel to S", ops[0])
	}
}

func TestEditPathCostMatchesExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomGraph(r, 6)
		b := randomGraph(r, 6)
		exact, ok := Exact(a, b, 300000)
		if !ok {
			return true
		}
		_, cost := EditPath(a, b)
		return math.Abs(cost-exact) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEditPathApplyReachesTarget(t *testing.T) {
	// The defining property: applying the path to a yields a graph
	// isomorphic to b.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomGraph(r, 6)
		b := randomGraph(r, 6)
		ops, _ := EditPath(a, b)
		got, err := Apply(a, ops)
		if err != nil {
			return false
		}
		return iso.Isomorphic(got, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEditPathApplyBipartiteRegime(t *testing.T) {
	// Larger graphs route through the bipartite mapping; the apply
	// property must still hold.
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		a := randomGraph(r, 12)
		b := randomGraph(r, 12)
		ops, cost := EditPath(a, b)
		got, err := Apply(a, ops)
		if err != nil {
			t.Fatal(err)
		}
		if !iso.Isomorphic(got, b) {
			t.Fatal("bipartite edit path does not reach target")
		}
		if cost != float64(len(ops)) {
			t.Fatalf("cost %v != op count %d", cost, len(ops))
		}
	}
}

func TestPathFromMappingCost(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomGraph(r, 6)
		b := randomGraph(r, 6)
		m := bipartiteMapping(a, b)
		ops := PathFromMapping(a, b, m)
		return math.Abs(float64(len(ops))-editCostOfMappingDirect(a, b, m)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyRejectsBadOps(t *testing.T) {
	a := graph.Path(0, "C", "O")
	cases := [][]EditOp{
		{{Kind: DeleteVertex, V: 9}},
		{{Kind: RelabelVertex, V: 9, Label: "X"}},
		{{Kind: DeleteEdge, U: 0, W: 9}},
		{{Kind: DeleteVertex, V: 0}}, // leaves live edge (0,1)
		{{Kind: InsertEdge, A: EndpointRef{Source: false, V: 99}, B: EndpointRef{Source: true, V: 0}}},
		{{Kind: InsertEdge, A: EndpointRef{Source: true, V: 0}, B: EndpointRef{Source: true, V: 1}}}, // duplicate
	}
	for i, ops := range cases {
		if _, err := Apply(a, ops); err == nil {
			t.Fatalf("case %d: invalid ops accepted", i)
		}
	}
}

func TestExactWithMappingAgreesWithExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomGraph(r, 6)
		b := randomGraph(r, 6)
		d1, ok1 := Exact(a, b, 300000)
		d2, m, ok2 := ExactWithMapping(a, b, 300000)
		if ok1 != ok2 {
			return true // budget boundary; skip
		}
		if !ok1 {
			return true
		}
		if math.Abs(d1-d2) > 1e-9 {
			return false
		}
		// The returned mapping must realise the distance.
		return math.Abs(editCostOfMappingDirect(a, b, m)-d2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEditPathEmptySource(t *testing.T) {
	a := graph.New(0)
	b := graph.Path(1, "C", "O")
	ops, cost := EditPath(a, b)
	if cost != 3 {
		t.Fatalf("cost = %v, want 3", cost)
	}
	got, err := Apply(a, ops)
	if err != nil {
		t.Fatal(err)
	}
	if !iso.Isomorphic(got, b) {
		t.Fatal("path from empty graph does not build target")
	}
}
