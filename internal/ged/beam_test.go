package ged

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/midas-graph/midas/graph"
)

func TestBeamIdentical(t *testing.T) {
	g := graph.Cycle(0, "C", "O", "N", "C")
	if d := Beam(g, g.Clone(), 4); d != 0 {
		t.Fatalf("Beam(g,g) = %v, want 0", d)
	}
}

func TestBeamUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomGraph(r, 6)
		b := randomGraph(r, 6)
		exact, ok := Exact(a, b, 300000)
		if !ok {
			return true
		}
		for _, w := range []int{1, 4, 16} {
			if Beam(a, b, w) < exact-1e-9 {
				return false // beam must never go below the true distance
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBeamWidthMonotoneOnAverage(t *testing.T) {
	// Wider beams are not pointwise monotone, but on aggregate they must
	// not be worse than greedy width-1.
	r := rand.New(rand.NewSource(7))
	var sum1, sum16 float64
	for i := 0; i < 30; i++ {
		a := randomGraph(r, 7)
		b := randomGraph(r, 7)
		sum1 += Beam(a, b, 1)
		sum16 += Beam(a, b, 16)
	}
	if sum16 > sum1+1e-9 {
		t.Fatalf("width 16 aggregate %v worse than width 1 %v", sum16, sum1)
	}
}

func TestBeamEmptyGraphs(t *testing.T) {
	empty := graph.New(0)
	b := graph.Path(1, "C", "O")
	if d := Beam(empty, b, 2); d != 3 {
		t.Fatalf("Beam(empty, P2) = %v, want 3", d)
	}
	if d := Beam(b, empty, 2); d != 3 {
		t.Fatalf("Beam(P2, empty) = %v, want 3", d)
	}
}

func TestBeamConvergesToExactSmall(t *testing.T) {
	a := graph.Path(0, "C", "O", "N")
	b := graph.Cycle(1, "C", "O", "N")
	exact, ok := Exact(a, b, 0)
	if !ok {
		t.Fatal("exact failed")
	}
	if d := Beam(a, b, 64); d != exact {
		t.Fatalf("wide beam = %v, exact = %v", d, exact)
	}
}
