package ged

import (
	"testing"

	"github.com/midas-graph/midas/graph"
)

// TestDistanceCachedMatchesUncached: every pair, both directions, cold
// and warm — the memoised distance is exactly the plain kernel's.
func TestDistanceCachedMatchesUncached(t *testing.T) {
	ResetMemo()
	gs := []*graph.Graph{
		graph.Path(0, "C", "O", "C"),
		graph.Path(1, "C", "O", "C", "O", "C"),
		graph.Star(2, "C", "N", "N", "N"),
		graph.Star(3, "B", "O", "O", "O"),
	}
	for _, a := range gs {
		for _, b := range gs {
			want := DistanceCancel(a, b, nil)
			if got := DistanceCached(a, b, nil); got != want {
				t.Fatalf("(%d,%d) cold: %v want %v", a.ID, b.ID, got, want)
			}
			if got := DistanceCached(a, b, nil); got != want {
				t.Fatalf("(%d,%d) warm: %v want %v", a.ID, b.ID, got, want)
			}
			if d, ok := MemoLookup(a, b); !ok || d != want {
				t.Fatalf("(%d,%d) MemoLookup: %v,%v want %v,true", a.ID, b.ID, d, ok, want)
			}
		}
	}
}

// TestDistanceCachedNoCacheAfterCancel: a bipartite fallback forced by
// a fired cancel hook must not be memoised as the pair's distance.
func TestDistanceCachedNoCacheAfterCancel(t *testing.T) {
	ResetMemo()
	a := graph.Path(0, "C", "O", "C", "O", "C")
	b := graph.Star(1, "N", "S", "S", "S")
	DistanceCached(a, b, func() bool { return true })
	if _, ok := MemoLookup(a, b); ok {
		t.Fatal("cancelled computation was cached")
	}
	want := DistanceCancel(a, b, nil)
	if got := DistanceCached(a, b, nil); got != want {
		t.Fatalf("retry after cancel: %v want %v", got, want)
	}
}

// TestMemoDirectional: the bipartite upper bound is asymmetric, so the
// memo must never serve (b,a) for (a,b).
func TestMemoDirectional(t *testing.T) {
	ResetMemo()
	a := graph.Path(0, "C", "O", "C")
	b := graph.Star(1, "N", "S", "S", "S")
	DistanceCached(a, b, nil)
	if _, ok := MemoLookup(b, a); ok {
		t.Fatal("reverse direction served from forward entry")
	}
	if got, want := DistanceCached(b, a, nil), DistanceCancel(b, a, nil); got != want {
		t.Fatalf("reverse: %v want %v", got, want)
	}
}
