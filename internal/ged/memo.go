package ged

import (
	"github.com/midas-graph/midas/internal/parallel"

	"github.com/midas-graph/midas/graph"
)

// distMemo is the process-wide memo cache for DistanceCancel results.
// Keys are instance-exact ordered pairs: the bipartite upper bound used
// for larger graphs is not symmetric in its arguments and, like any
// heuristic, depends on the concrete vertex numbering — so neither
// direction collapsing nor isomorphism-invariant keying would be
// result-neutral. See internal/iso/memo.go for the shared rationale.
var distMemo = parallel.NewCache[float64]("ged_dist", 1<<16)

// ResetMemo drops the package's memo cache (cold-cache benchmarking).
func ResetMemo() { distMemo.Reset() }

// MemoLookup returns the cached DistanceCancel value of the ordered
// pair (a,b), if present. Callers that can prune a computation via a
// cheaper lower bound check the cache first so pruning only applies to
// values that would actually be computed.
func MemoLookup(a, b *graph.Graph) (float64, bool) {
	return distMemo.Get(parallel.PairKey(a, b))
}

// DistanceCached is DistanceCancel with process-wide memoization.
// Results computed after the cancellation hook fired are not cached
// (they are timing-dependent, not functions of the inputs).
func DistanceCached(a, b *graph.Graph, cancel func() bool) float64 {
	key := parallel.PairKey(a, b)
	if d, ok := distMemo.Get(key); ok {
		return d
	}
	d := DistanceCancel(a, b, cancel)
	if cancel == nil || !cancel() {
		distMemo.Put(key, d)
	}
	return d
}
