// Package ged implements graph edit distance machinery: an exact A*
// search for small graphs, the bipartite (assignment-based) approximation
// of Riesen–Bunke [32] used by CATAPULT, the label-count lower bound
// GED_l, and the paper's tighter lower bound GED'_l (Lemma 6.1) that adds
// a relaxed-edge count derived from feature embeddings.
//
// All edit costs are uniform (1 per vertex/edge insertion, deletion or
// relabelling), the convention used by the paper's diversity measure.
package ged

import "math"

// Hungarian solves the square assignment problem: given an n×n cost
// matrix, it returns an assignment (row -> column) of minimum total cost
// and that cost. It runs the O(n³) Jonker-style shortest augmenting path
// variant of the Kuhn–Munkres algorithm.
func Hungarian(cost [][]float64) ([]int, float64) {
	n := len(cost)
	if n == 0 {
		return nil, 0
	}
	const inf = math.MaxFloat64
	// Potentials and matching, 1-based internally.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row matched to column j
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}
	assign := make([]int, n)
	total := 0.0
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			assign[p[j]-1] = j - 1
			total += cost[p[j]-1][j-1]
		}
	}
	return assign, total
}
