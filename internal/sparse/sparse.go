// Package sparse provides the sparse integer matrices backing the four
// MIDAS index matrices (TG, TP, EG, EP; paper §5.1). The paper stores
// only non-zero entries as (row, column, value) triplets; this package
// offers the same storage discipline with string-keyed rows (feature
// canonical strings) and integer columns (graph or pattern IDs), plus the
// row/column insertion and deletion operations of the index-maintenance
// procedure.
package sparse

import "sort"

// Matrix is a sparse non-negative integer matrix with string row keys and
// integer column keys. Zero entries are not stored; setting an entry to
// zero deletes it.
type Matrix struct {
	rows map[string]map[int]int
	cols map[int]map[string]struct{} // column -> rows with non-zero entry
}

// New returns an empty matrix.
func New() *Matrix {
	return &Matrix{
		rows: make(map[string]map[int]int),
		cols: make(map[int]map[string]struct{}),
	}
}

// Set stores value at (row, col). A zero (or negative) value removes the
// entry.
func (m *Matrix) Set(row string, col int, value int) {
	if value <= 0 {
		m.remove(row, col)
		return
	}
	r := m.rows[row]
	if r == nil {
		r = make(map[int]int)
		m.rows[row] = r
	}
	r[col] = value
	c := m.cols[col]
	if c == nil {
		c = make(map[string]struct{})
		m.cols[col] = c
	}
	c[row] = struct{}{}
}

// Get returns the value at (row, col); missing entries are 0.
func (m *Matrix) Get(row string, col int) int {
	return m.rows[row][col]
}

// Incr adds delta (may be negative) to (row, col), clamping at zero.
func (m *Matrix) Incr(row string, col int, delta int) {
	m.Set(row, col, m.Get(row, col)+delta)
}

func (m *Matrix) remove(row string, col int) {
	if r, ok := m.rows[row]; ok {
		delete(r, col)
		if len(r) == 0 {
			delete(m.rows, row)
		}
	}
	if c, ok := m.cols[col]; ok {
		delete(c, row)
		if len(c) == 0 {
			delete(m.cols, col)
		}
	}
}

// DeleteRow removes an entire row (e.g. a feature that stopped being
// frequent).
func (m *Matrix) DeleteRow(row string) {
	for col := range m.rows[row] {
		if c, ok := m.cols[col]; ok {
			delete(c, row)
			if len(c) == 0 {
				delete(m.cols, col)
			}
		}
	}
	delete(m.rows, row)
}

// DeleteCol removes an entire column (e.g. a deleted graph or swapped-out
// pattern).
func (m *Matrix) DeleteCol(col int) {
	for row := range m.cols[col] {
		if r, ok := m.rows[row]; ok {
			delete(r, col)
			if len(r) == 0 {
				delete(m.rows, row)
			}
		}
	}
	delete(m.cols, col)
}

// HasRow reports whether the row has any non-zero entry.
func (m *Matrix) HasRow(row string) bool { return len(m.rows[row]) > 0 }

// Row returns a copy of the non-zero entries of a row.
func (m *Matrix) Row(row string) map[int]int {
	src := m.rows[row]
	out := make(map[int]int, len(src))
	for c, v := range src {
		out[c] = v
	}
	return out
}

// RowCols returns the sorted column keys with non-zero entries in row.
func (m *Matrix) RowCols(row string) []int {
	src := m.rows[row]
	out := make([]int, 0, len(src))
	for c := range src {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// Col returns a copy of the non-zero entries of a column keyed by row.
func (m *Matrix) Col(col int) map[string]int {
	out := make(map[string]int, len(m.cols[col]))
	for row := range m.cols[col] {
		out[row] = m.rows[row][col]
	}
	return out
}

// Cols returns the sorted column keys present in the matrix.
func (m *Matrix) Cols() []int {
	out := make([]int, 0, len(m.cols))
	for c := range m.cols {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// Rows returns the sorted row keys present in the matrix.
func (m *Matrix) Rows() []string {
	out := make([]string, 0, len(m.rows))
	for r := range m.rows {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// NNZ returns the number of stored (non-zero) entries.
func (m *Matrix) NNZ() int {
	n := 0
	for _, r := range m.rows {
		n += len(r)
	}
	return n
}

// Triplet is one stored entry, the paper's (a_row, a_column, a_value).
type Triplet struct {
	Row   string
	Col   int
	Value int
}

// Triplets returns all stored entries sorted by (row, col), the
// serialisable triplet representation of §5.1.
func (m *Matrix) Triplets() []Triplet {
	out := make([]Triplet, 0, m.NNZ())
	for _, row := range m.Rows() {
		for _, col := range m.RowCols(row) {
			out = append(out, Triplet{Row: row, Col: col, Value: m.rows[row][col]})
		}
	}
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New()
	for row, r := range m.rows {
		for col, v := range r {
			c.Set(row, col, v)
		}
	}
	return c
}
