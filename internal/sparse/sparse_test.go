package sparse

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSetGet(t *testing.T) {
	m := New()
	m.Set("f1", 3, 2)
	if m.Get("f1", 3) != 2 {
		t.Fatal("Get after Set failed")
	}
	if m.Get("f1", 4) != 0 || m.Get("f2", 3) != 0 {
		t.Fatal("missing entries should be 0")
	}
	m.Set("f1", 3, 0)
	if m.Get("f1", 3) != 0 || m.NNZ() != 0 {
		t.Fatal("Set 0 should delete entry")
	}
	if m.HasRow("f1") {
		t.Fatal("empty row should report absent")
	}
}

func TestIncr(t *testing.T) {
	m := New()
	m.Incr("f", 1, 2)
	m.Incr("f", 1, 3)
	if m.Get("f", 1) != 5 {
		t.Fatalf("Incr = %d, want 5", m.Get("f", 1))
	}
	m.Incr("f", 1, -10)
	if m.Get("f", 1) != 0 || m.NNZ() != 0 {
		t.Fatal("negative clamp failed")
	}
}

func TestDeleteRow(t *testing.T) {
	m := New()
	m.Set("a", 1, 1)
	m.Set("a", 2, 1)
	m.Set("b", 1, 1)
	m.DeleteRow("a")
	if m.HasRow("a") || m.Get("a", 1) != 0 {
		t.Fatal("row not deleted")
	}
	if m.Get("b", 1) != 1 {
		t.Fatal("unrelated row damaged")
	}
	if got := m.Cols(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("cols = %v, want [1]", got)
	}
}

func TestDeleteCol(t *testing.T) {
	m := New()
	m.Set("a", 1, 1)
	m.Set("a", 2, 2)
	m.Set("b", 2, 3)
	m.DeleteCol(2)
	if m.Get("a", 2) != 0 || m.Get("b", 2) != 0 {
		t.Fatal("column not deleted")
	}
	if m.Get("a", 1) != 1 {
		t.Fatal("unrelated column damaged")
	}
	if m.HasRow("b") {
		t.Fatal("row b should be empty now")
	}
}

func TestRowColViews(t *testing.T) {
	m := New()
	m.Set("f", 5, 1)
	m.Set("f", 2, 2)
	m.Set("g", 5, 3)
	if got := m.RowCols("f"); !reflect.DeepEqual(got, []int{2, 5}) {
		t.Fatalf("RowCols = %v", got)
	}
	if got := m.Col(5); !reflect.DeepEqual(got, map[string]int{"f": 1, "g": 3}) {
		t.Fatalf("Col = %v", got)
	}
	if got := m.Rows(); !reflect.DeepEqual(got, []string{"f", "g"}) {
		t.Fatalf("Rows = %v", got)
	}
	// Mutating returned copies must not affect the matrix.
	r := m.Row("f")
	r[2] = 99
	if m.Get("f", 2) != 2 {
		t.Fatal("Row returned aliased storage")
	}
}

func TestTriplets(t *testing.T) {
	m := New()
	m.Set("b", 1, 4)
	m.Set("a", 2, 5)
	m.Set("a", 1, 6)
	want := []Triplet{{"a", 1, 6}, {"a", 2, 5}, {"b", 1, 4}}
	if got := m.Triplets(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Triplets = %v", got)
	}
}

func TestClone(t *testing.T) {
	m := New()
	m.Set("a", 1, 2)
	c := m.Clone()
	c.Set("a", 1, 9)
	if m.Get("a", 1) != 2 {
		t.Fatal("clone shares storage")
	}
}

func TestPropertyMatchesDenseModel(t *testing.T) {
	// Random operations replayed against a plain map oracle.
	type op struct {
		kind, row, col, val int
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := []string{"r0", "r1", "r2"}
		m := New()
		oracle := map[[2]interface{}]int{}
		for i := 0; i < 200; i++ {
			o := op{r.Intn(4), r.Intn(3), r.Intn(4), r.Intn(5)}
			key := [2]interface{}{rows[o.row], o.col}
			switch o.kind {
			case 0:
				m.Set(rows[o.row], o.col, o.val)
				if o.val <= 0 {
					delete(oracle, key)
				} else {
					oracle[key] = o.val
				}
			case 1:
				m.Incr(rows[o.row], o.col, o.val-2)
				nv := oracle[key] + o.val - 2
				if nv <= 0 {
					delete(oracle, key)
				} else {
					oracle[key] = nv
				}
			case 2:
				m.DeleteRow(rows[o.row])
				for k := range oracle {
					if k[0] == rows[o.row] {
						delete(oracle, k)
					}
				}
			case 3:
				m.DeleteCol(o.col)
				for k := range oracle {
					if k[1] == o.col {
						delete(oracle, k)
					}
				}
			}
		}
		if m.NNZ() != len(oracle) {
			return false
		}
		for k, v := range oracle {
			if m.Get(k[0].(string), k[1].(int)) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
