package vfs

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// OpKind identifies one mutating filesystem operation in a Sim trace.
type OpKind int

const (
	// OpCreate: path now names a brand-new empty inode (file creation,
	// or truncate-on-open).
	OpCreate OpKind = iota
	// OpWrite: Data written at offset Off.
	OpWrite
	// OpSync: the file's content was flushed to durable storage.
	OpSync
	// OpTruncate: the file was resized to Off bytes.
	OpTruncate
	// OpRename: Path renamed to To.
	OpRename
	// OpRemove: Path unlinked.
	OpRemove
	// OpSyncDir: directory Path fsynced — its entries became durable.
	OpSyncDir
)

func (k OpKind) String() string {
	switch k {
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpTruncate:
		return "truncate"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpSyncDir:
		return "syncdir"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one recorded mutating operation. The record is self-contained
// (paths and written bytes included) so a trace prefix can be replayed
// into a fresh Sim to reconstruct the exact disk image a crash at that
// point could expose.
type Op struct {
	Kind OpKind
	Path string
	To   string // rename destination
	Off  int64  // write offset, or truncate size
	Data []byte // bytes written
}

func (o Op) String() string {
	switch o.Kind {
	case OpWrite:
		return fmt.Sprintf("write %s @%d +%d", o.Path, o.Off, len(o.Data))
	case OpRename:
		return fmt.Sprintf("rename %s -> %s", o.Path, o.To)
	case OpTruncate:
		return fmt.Sprintf("truncate %s %d", o.Path, o.Off)
	}
	return o.Kind.String() + " " + o.Path
}

// CrashPlan describes which parts of the applied operations survive a
// simulated crash.
type CrashPlan struct {
	// LoseUnsynced drops everything that was not explicitly made
	// durable: file content reverts to the last Sync, directory entries
	// (creations, renames, removals) to the last SyncDir. When false
	// the crash is "friendly": the kernel had flushed everything.
	LoseUnsynced bool
	// TearFinalWrite, when >= 0, applies only that many bytes of the
	// final write operation — a torn write that partially reached the
	// platter. It lands in the durable image even under LoseUnsynced,
	// because partial page flushes are exactly how torn writes happen.
	// -1 disables tearing.
	TearFinalWrite int
}

// inode is one file's content: data is the live (volatile) view,
// synced the content as of the last fsync.
type inode struct {
	data   []byte
	synced []byte
}

// Sim is the deterministic in-memory filesystem simulator. It models
// the volatile/durable split of a page cache: writes, creations,
// renames and removals are applied to the live view immediately but
// only become durable through Sync (file content) and SyncDir
// (directory entries). Every mutating operation is recorded in a
// trace; ReplayCrash reconstructs the disk image of a crash after any
// trace prefix. All methods are safe for concurrent use.
type Sim struct {
	mu      sync.Mutex
	files   map[string]*inode // live directory view
	durable map[string]*inode // entries that survive a lossy crash
	trace   []Op
	opSeq   int
	failAt  map[int]error
	tmpSeq  int
}

// NewSim returns an empty simulator.
func NewSim() *Sim {
	return &Sim{
		files:   make(map[string]*inode),
		durable: make(map[string]*inode),
	}
}

var _ FS = (*Sim)(nil)

func clip(b []byte) []byte { return append([]byte(nil), b...) }

func norm(p string) string { return filepath.Clean(p) }

// record appends op to the trace. Callers hold s.mu.
func (s *Sim) record(op Op) { s.trace = append(s.trace, op) }

// gate numbers the mutating operation and returns the injected error
// when a failure is scheduled at this index. Callers hold s.mu.
func (s *Sim) gate() error {
	seq := s.opSeq
	s.opSeq++
	if err := s.failAt[seq]; err != nil {
		return err
	}
	return nil
}

// FailAt schedules err to be returned by the n'th mutating operation
// (0-based, counted since construction or the last ResetTrace /
// SetDurable). The failed operation is not applied and not recorded —
// the VFS equivalent of an armed failpoint, without hand-placed hooks.
func (s *Sim) FailAt(n int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failAt == nil {
		s.failAt = make(map[int]error)
	}
	s.failAt[n] = err
}

// Trace returns a copy of the recorded mutating-operation trace.
func (s *Sim) Trace() []Op {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Op(nil), s.trace...)
}

// Ops returns the number of recorded mutating operations.
func (s *Sim) Ops() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.trace)
}

// ResetTrace clears the trace and the operation counter (armed FailAt
// schedules are dropped with it).
func (s *Sim) ResetTrace() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.trace, s.opSeq, s.failAt = nil, 0, nil
}

// SetDurable declares the current state fully durable — as if every
// file and directory had been fsynced — and clears the trace. Crash
// sweeps call it after preparing fixtures, so the sweep's crash states
// only vary over the workload's own operations.
func (s *Sim) SetDurable() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.durable = make(map[string]*inode, len(s.files))
	for p, ino := range s.files {
		ino.synced = clip(ino.data)
		s.durable[p] = ino
	}
	s.trace, s.opSeq, s.failAt = nil, 0, nil
}

// Clone returns a deep copy sharing no state with s. Inode identity is
// preserved across the live and durable views, so a clone crashes the
// same way the original would.
func (s *Sim) Clone() *Sim {
	s.mu.Lock()
	defer s.mu.Unlock()
	memo := make(map[*inode]*inode)
	cp := func(ino *inode) *inode {
		if c, ok := memo[ino]; ok {
			return c
		}
		c := &inode{data: clip(ino.data), synced: clip(ino.synced)}
		memo[ino] = c
		return c
	}
	out := NewSim()
	for p, ino := range s.files {
		out.files[p] = cp(ino)
	}
	for p, ino := range s.durable {
		out.durable[p] = cp(ino)
	}
	out.trace = append([]Op(nil), s.trace...)
	out.opSeq = s.opSeq
	out.tmpSeq = s.tmpSeq
	return out
}

// apply plays one operation into the live view. Callers hold s.mu.
func (s *Sim) apply(op Op) {
	switch op.Kind {
	case OpCreate:
		s.files[op.Path] = &inode{}
	case OpWrite:
		ino := s.files[op.Path]
		if ino == nil {
			ino = &inode{}
			s.files[op.Path] = ino
		}
		ino.data = writeAt(ino.data, op.Off, op.Data)
	case OpSync:
		if ino := s.files[op.Path]; ino != nil {
			ino.synced = clip(ino.data)
		}
	case OpTruncate:
		if ino := s.files[op.Path]; ino != nil {
			ino.data = writeAt(ino.data, op.Off, nil)[:op.Off]
		}
	case OpRename:
		if ino := s.files[op.Path]; ino != nil {
			s.files[op.To] = ino
			delete(s.files, op.Path)
		}
	case OpRemove:
		delete(s.files, op.Path)
	case OpSyncDir:
		s.syncDirLocked(op.Path)
	}
}

// writeAt returns data with p written at offset off, zero-padding any
// gap (a flushed block beyond a hole reads back as zeros).
func writeAt(data []byte, off int64, p []byte) []byte {
	need := int(off) + len(p)
	for len(data) < need {
		data = append(data, make([]byte, need-len(data))...)
	}
	copy(data[off:], p)
	return data
}

func (s *Sim) syncDirLocked(dir string) {
	dir = norm(dir)
	// Entry durability only: the content an entry points at still
	// reverts to its last Sync on a lossy crash.
	for p, ino := range s.files {
		if filepath.Dir(p) == dir {
			s.durable[p] = ino
		}
	}
	for p := range s.durable {
		if filepath.Dir(p) == dir {
			if _, ok := s.files[p]; !ok {
				delete(s.durable, p)
			}
		}
	}
}

// ReplayCrash applies a recorded trace prefix to s and then crashes it
// according to plan: the live view is replaced by what the plan says
// survived. Handles opened before the call are invalid afterwards. The
// replayed operations are not re-recorded.
func (s *Sim) ReplayCrash(ops []Op, plan CrashPlan) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var tornPath string
	var tornOp Op
	for i, op := range ops {
		if i == len(ops)-1 && op.Kind == OpWrite && plan.TearFinalWrite >= 0 {
			t := plan.TearFinalWrite
			if t > len(op.Data) {
				t = len(op.Data)
			}
			op.Data = op.Data[:t]
			tornPath, tornOp = op.Path, op
		}
		s.apply(op)
	}
	if !plan.LoseUnsynced {
		// Friendly crash: the kernel flushed everything applied.
		s.durable = make(map[string]*inode, len(s.files))
		for p, ino := range s.files {
			ino.synced = clip(ino.data)
			s.durable[p] = ino
		}
	} else if tornPath != "" {
		// A torn write partially reached the platter: fold the torn
		// bytes into the durable content of the inode it targeted, when
		// that inode survives the crash at all.
		for _, ino := range s.durable {
			if ino == s.files[tornPath] {
				ino.synced = writeAt(clip(ino.synced), tornOp.Off, tornOp.Data)
			}
		}
	}
	// The crash: the live view becomes exactly the durable image.
	s.files = make(map[string]*inode, len(s.durable))
	fresh := make(map[string]*inode, len(s.durable))
	memo := make(map[*inode]*inode)
	for p, ino := range s.durable {
		c, ok := memo[ino]
		if !ok {
			c = &inode{data: clip(ino.synced), synced: clip(ino.synced)}
			memo[ino] = c
		}
		s.files[p] = c
		fresh[p] = c
	}
	s.durable = fresh
}

// ---------------------------------------------------------------------
// FS implementation

// simFile is one open handle.
type simFile struct {
	sim      *Sim
	path     string
	ino      *inode
	off      int64
	readOnly bool
	closed   bool
}

func (s *Sim) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	name = norm(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	ino, exists := s.files[name]
	create := flag&os.O_CREATE != 0
	trunc := flag&os.O_TRUNC != 0
	switch {
	case !exists && !create:
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	case !exists || trunc:
		if err := s.gate(); err != nil {
			return nil, &os.PathError{Op: "open", Path: name, Err: err}
		}
		s.record(Op{Kind: OpCreate, Path: name})
		ino = &inode{}
		s.files[name] = ino
	}
	f := &simFile{sim: s, path: name, ino: ino, readOnly: flag&(os.O_WRONLY|os.O_RDWR) == 0}
	if flag&os.O_APPEND != 0 {
		f.off = int64(len(ino.data))
	}
	return f, nil
}

func (s *Sim) Open(name string) (File, error) {
	return s.OpenFile(name, os.O_RDONLY, 0)
}

func (s *Sim) CreateTemp(dir, pattern string) (File, error) {
	s.mu.Lock()
	s.tmpSeq++
	seq := s.tmpSeq
	s.mu.Unlock()
	// Deterministic naming: the '*' is replaced by a sequence number, so
	// a recorded trace replays against the same paths every time.
	base := pattern
	if i := strings.LastIndexByte(pattern, '*'); i >= 0 {
		base = pattern[:i] + fmt.Sprintf("%06d", seq) + pattern[i+1:]
	} else {
		base = pattern + fmt.Sprintf("%06d", seq)
	}
	return s.OpenFile(filepath.Join(dir, base), os.O_RDWR|os.O_CREATE|os.O_TRUNC|os.O_EXCL, 0o600)
}

func (s *Sim) ReadFile(name string) ([]byte, error) {
	name = norm(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	ino := s.files[name]
	if ino == nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return clip(ino.data), nil
}

func (s *Sim) Rename(oldname, newname string) error {
	oldname, newname = norm(oldname), norm(newname)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.files[oldname]; !ok {
		return &os.LinkError{Op: "rename", Old: oldname, New: newname, Err: os.ErrNotExist}
	}
	if err := s.gate(); err != nil {
		return &os.LinkError{Op: "rename", Old: oldname, New: newname, Err: err}
	}
	s.record(Op{Kind: OpRename, Path: oldname, To: newname})
	s.apply(Op{Kind: OpRename, Path: oldname, To: newname})
	return nil
}

func (s *Sim) Remove(name string) error {
	name = norm(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	if err := s.gate(); err != nil {
		return &os.PathError{Op: "remove", Path: name, Err: err}
	}
	s.record(Op{Kind: OpRemove, Path: name})
	s.apply(Op{Kind: OpRemove, Path: name})
	return nil
}

func (s *Sim) Stat(name string) (int64, error) {
	name = norm(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	ino := s.files[name]
	if ino == nil {
		return 0, &os.PathError{Op: "stat", Path: name, Err: os.ErrNotExist}
	}
	return int64(len(ino.data)), nil
}

func (s *Sim) ReadDir(name string) ([]DirEntry, error) {
	name = norm(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[string]bool)
	var out []DirEntry
	prefix := name + string(filepath.Separator)
	if name == "." {
		prefix = ""
	}
	for p := range s.files {
		if !strings.HasPrefix(p, prefix) || p == name {
			continue
		}
		rest := p[len(prefix):]
		child := rest
		isDir := false
		if i := strings.IndexByte(rest, filepath.Separator); i >= 0 {
			child, isDir = rest[:i], true
		}
		if seen[child] {
			continue
		}
		seen[child] = true
		out = append(out, DirEntry{Name: child, IsDir: isDir})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func (s *Sim) SyncDir(dir string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.gate(); err != nil {
		return err
	}
	dir = norm(dir)
	s.record(Op{Kind: OpSyncDir, Path: dir})
	s.syncDirLocked(dir)
	return nil
}

// ---------------------------------------------------------------------
// simFile

func (f *simFile) Name() string { return f.path }

func (f *simFile) Read(p []byte) (int, error) {
	f.sim.mu.Lock()
	defer f.sim.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	if f.off >= int64(len(f.ino.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.ino.data[f.off:])
	f.off += int64(n)
	return n, nil
}

func (f *simFile) Write(p []byte) (int, error) {
	f.sim.mu.Lock()
	defer f.sim.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	if f.readOnly {
		return 0, &os.PathError{Op: "write", Path: f.path, Err: os.ErrPermission}
	}
	if err := f.sim.gate(); err != nil {
		return 0, &os.PathError{Op: "write", Path: f.path, Err: err}
	}
	op := Op{Kind: OpWrite, Path: f.path, Off: f.off, Data: clip(p)}
	f.sim.record(op)
	f.ino.data = writeAt(f.ino.data, f.off, p)
	f.off += int64(len(p))
	return len(p), nil
}

func (f *simFile) Seek(offset int64, whence int) (int64, error) {
	f.sim.mu.Lock()
	defer f.sim.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	switch whence {
	case io.SeekStart:
		f.off = offset
	case io.SeekCurrent:
		f.off += offset
	case io.SeekEnd:
		f.off = int64(len(f.ino.data)) + offset
	default:
		return 0, fmt.Errorf("vfs: bad whence %d", whence)
	}
	if f.off < 0 {
		f.off = 0
	}
	return f.off, nil
}

func (f *simFile) Sync() error {
	f.sim.mu.Lock()
	defer f.sim.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	if err := f.sim.gate(); err != nil {
		return &os.PathError{Op: "sync", Path: f.path, Err: err}
	}
	f.sim.record(Op{Kind: OpSync, Path: f.path})
	f.ino.synced = clip(f.ino.data)
	return nil
}

func (f *simFile) Truncate(size int64) error {
	f.sim.mu.Lock()
	defer f.sim.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	if err := f.sim.gate(); err != nil {
		return &os.PathError{Op: "truncate", Path: f.path, Err: err}
	}
	f.sim.record(Op{Kind: OpTruncate, Path: f.path, Off: size})
	f.sim.apply(Op{Kind: OpTruncate, Path: f.path, Off: size})
	return nil
}

func (f *simFile) Close() error {
	f.sim.mu.Lock()
	defer f.sim.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	f.closed = true
	return nil
}
