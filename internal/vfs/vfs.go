// Package vfs is the filesystem seam of the durability layer: a small
// interface over the handful of file operations the store and the
// spool watcher perform (open, write, sync, rename, remove, readdir,
// directory fsync), a production passthrough to the os package (OS),
// and a deterministic in-memory simulator (Sim) that records every
// mutating operation, models the volatile/durable split of a real page
// cache, and can tear writes at byte granularity or fail at any
// operation index.
//
// Everything in internal/store and the panel watcher's spool handling
// goes through this seam — enforced by the fsyncdiscipline lint
// analyzer — so the crash-consistency sweep (internal/store/crashtest)
// can enumerate every intermediate disk state a crash could expose and
// prove recovery handles each one. The seam is deliberately narrower
// than io/fs: it only carries what the durability code needs, which
// keeps the simulator's operation model exhaustive.
package vfs

import (
	"io"
	"os"
)

// File is one open file handle. The subset mirrors *os.File; Sync is
// part of the interface because the whole point of the seam is making
// sync placement observable.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Seek repositions the handle (whence as in io.Seeker).
	Seek(offset int64, whence int) (int64, error)
	// Sync flushes the file's content to durable storage.
	Sync() error
	// Truncate resizes the file.
	Truncate(size int64) error
	// Name returns the path the handle was opened with.
	Name() string
}

// DirEntry is one directory listing entry — the minimal shape the
// spool watcher needs.
type DirEntry struct {
	Name  string
	IsDir bool
}

// FS is the filesystem seam. Implementations must be safe for
// concurrent use by multiple goroutines.
type FS interface {
	// OpenFile opens a file with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens a file read-only.
	Open(name string) (File, error)
	// CreateTemp creates a new temporary file in dir with os.CreateTemp
	// naming semantics.
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile returns the file's contents.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname's file. Like a
	// POSIX rename, the swap is atomic in the live view but only
	// durable after SyncDir on the parent.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// Stat returns the file's size, or an error satisfying
	// os.IsNotExist semantics (errors.Is(err, os.ErrNotExist)).
	Stat(name string) (size int64, err error)
	// ReadDir lists a directory.
	ReadDir(name string) ([]DirEntry, error)
	// SyncDir fsyncs a directory so completed renames, creations and
	// removals inside it survive a crash. Filesystems without
	// directory fsync are tolerated: the call must not fail the
	// workload.
	SyncDir(dir string) error
}

// OS is the production filesystem: a passthrough to the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Stat(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func (osFS) ReadDir(name string) ([]DirEntry, error) {
	entries, err := os.ReadDir(name)
	if err != nil {
		return nil, err
	}
	out := make([]DirEntry, len(entries))
	for i, e := range entries {
		out[i] = DirEntry{Name: e.Name(), IsDir: e.IsDir()}
	}
	return out, nil
}

// SyncDir opens and fsyncs the directory. Filesystems that do not
// support directory fsync (or cannot open directories) are tolerated:
// the rename discipline degrades to rename-without-dir-durability,
// which the recovery paths are verified to handle.
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
