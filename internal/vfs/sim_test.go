package vfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// both runs a subtest against the simulator and the real filesystem,
// pinning the Sim to OS semantics for the operations the store uses.
func both(t *testing.T, name string, fn func(t *testing.T, fsys FS, dir string)) {
	t.Helper()
	t.Run(name+"/sim", func(t *testing.T) { fn(t, NewSim(), "d") })
	t.Run(name+"/os", func(t *testing.T) { fn(t, OS, t.TempDir()) })
}

func write(t *testing.T, fsys FS, path, content string) {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(f, content); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFSSemanticsMatchOS(t *testing.T) {
	both(t, "write-read-rename", func(t *testing.T, fsys FS, dir string) {
		p := filepath.Join(dir, "a")
		write(t, fsys, p, "hello")
		b, err := fsys.ReadFile(p)
		if err != nil || string(b) != "hello" {
			t.Fatalf("ReadFile = %q, %v", b, err)
		}
		if n, err := fsys.Stat(p); err != nil || n != 5 {
			t.Fatalf("Stat = %d, %v", n, err)
		}
		q := filepath.Join(dir, "b")
		if err := fsys.Rename(p, q); err != nil {
			t.Fatal(err)
		}
		if _, err := fsys.ReadFile(p); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("old name after rename: %v", err)
		}
		if b, _ := fsys.ReadFile(q); string(b) != "hello" {
			t.Fatalf("new name = %q", b)
		}
		if err := fsys.SyncDir(dir); err != nil {
			t.Fatal(err)
		}
		if err := fsys.Remove(q); err != nil {
			t.Fatal(err)
		}
		if _, err := fsys.Stat(q); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("Stat after remove: %v", err)
		}
	})
	both(t, "readdir", func(t *testing.T, fsys FS, dir string) {
		write(t, fsys, filepath.Join(dir, "b.graphs"), "x")
		write(t, fsys, filepath.Join(dir, "a.graphs"), "y")
		entries, err := fsys.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, e := range entries {
			names = append(names, e.Name)
		}
		for _, n := range []string{"a.graphs", "b.graphs"} {
			found := false
			for _, g := range names {
				if g == n {
					found = true
				}
			}
			if !found {
				t.Fatalf("ReadDir missing %s: %v", n, names)
			}
		}
	})
	both(t, "seek-append", func(t *testing.T, fsys FS, dir string) {
		p := filepath.Join(dir, "log")
		write(t, fsys, p, "one\n")
		f, err := fsys.OpenFile(p, os.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if pos, err := f.Seek(0, io.SeekEnd); err != nil || pos != 4 {
			t.Fatalf("Seek end = %d, %v", pos, err)
		}
		if _, err := io.WriteString(f, "two\n"); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		b, _ := fsys.ReadFile(p)
		if string(b) != "one\ntwo\n" {
			t.Fatalf("appended = %q", b)
		}
		if err := f.Truncate(4); err != nil {
			t.Fatal(err)
		}
		b, _ = fsys.ReadFile(p)
		if string(b) != "one\n" {
			t.Fatalf("truncated = %q", b)
		}
	})
}

func TestSimLossyCrashDropsUnsynced(t *testing.T) {
	base := NewSim()
	write(t, base, "d/f", "durable")
	base.SetDurable()

	work := base.Clone()
	f, _ := work.OpenFile("d/f", os.O_WRONLY|os.O_TRUNC, 0o644)
	io.WriteString(f, "volatile")
	f.Close()
	trace := work.Trace()
	if len(trace) == 0 {
		t.Fatal("no ops recorded")
	}

	// Lossy crash: the unsynced overwrite vanishes.
	crash := base.Clone()
	crash.ReplayCrash(trace, CrashPlan{LoseUnsynced: true, TearFinalWrite: -1})
	if b, _ := crash.ReadFile("d/f"); string(b) != "durable" {
		t.Fatalf("lossy crash kept unsynced data: %q", b)
	}

	// Friendly crash: everything applied survives.
	crash = base.Clone()
	crash.ReplayCrash(trace, CrashPlan{LoseUnsynced: false, TearFinalWrite: -1})
	if b, _ := crash.ReadFile("d/f"); string(b) != "volatile" {
		t.Fatalf("friendly crash lost applied data: %q", b)
	}
}

func TestSimRenameNeedsSyncDir(t *testing.T) {
	base := NewSim()
	write(t, base, "d/old", "v1")
	base.SetDurable()

	work := base.Clone()
	write(t, work, "d/new.tmp", "v2")
	if err := work.Rename("d/new.tmp", "d/old"); err != nil {
		t.Fatal(err)
	}
	trace := work.Trace()

	// Without SyncDir the rename (and the temp file's creation) are
	// volatile: a lossy crash reverts to v1.
	crash := base.Clone()
	crash.ReplayCrash(trace, CrashPlan{LoseUnsynced: true, TearFinalWrite: -1})
	if b, _ := crash.ReadFile("d/old"); string(b) != "v1" {
		t.Fatalf("un-dir-synced rename survived lossy crash: %q", b)
	}

	// With SyncDir the new generation is durable.
	if err := work.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	crash = base.Clone()
	crash.ReplayCrash(work.Trace(), CrashPlan{LoseUnsynced: true, TearFinalWrite: -1})
	if b, _ := crash.ReadFile("d/old"); string(b) != "v2" {
		t.Fatalf("dir-synced rename lost: %q", b)
	}
}

func TestSimTornFinalWrite(t *testing.T) {
	base := NewSim()
	write(t, base, "d/log", "aaaa")
	base.SetDurable()

	work := base.Clone()
	f, _ := work.OpenFile("d/log", os.O_RDWR, 0o644)
	f.Seek(0, io.SeekEnd)
	io.WriteString(f, "bbbb")
	f.Close()

	for tear := 0; tear <= 4; tear++ {
		crash := base.Clone()
		crash.ReplayCrash(work.Trace(), CrashPlan{LoseUnsynced: true, TearFinalWrite: tear})
		want := "aaaa" + "bbbb"[:tear]
		if b, _ := crash.ReadFile("d/log"); string(b) != want {
			t.Fatalf("tear %d: %q, want %q", tear, b, want)
		}
	}
}

func TestSimFailAt(t *testing.T) {
	s := NewSim()
	boom := errors.New("boom")
	// Op 0 is the create, op 1 the write: fail the write.
	s.FailAt(1, boom)
	f, err := s.OpenFile("d/f", os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(f, "x"); !errors.Is(err, boom) {
		t.Fatalf("write err = %v, want boom", err)
	}
	// The failed op was neither applied nor recorded.
	if b, _ := s.ReadFile("d/f"); len(b) != 0 {
		t.Fatalf("failed write applied: %q", b)
	}
	if got := s.Ops(); got != 1 {
		t.Fatalf("trace ops = %d, want 1 (create only)", got)
	}
	// The next attempt succeeds.
	if _, err := io.WriteString(f, "x"); err != nil {
		t.Fatal(err)
	}
}

func TestSimCreateTempDeterministic(t *testing.T) {
	a, b := NewSim(), NewSim()
	fa, err := a.CreateTemp("d", "bundle.tmp*")
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.CreateTemp("d", "bundle.tmp*")
	if err != nil {
		t.Fatal(err)
	}
	if fa.Name() != fb.Name() {
		t.Fatalf("temp names diverge: %q vs %q", fa.Name(), fb.Name())
	}
}

func TestSimCloneIsolated(t *testing.T) {
	a := NewSim()
	write(t, a, "d/f", "one")
	a.SetDurable()
	b := a.Clone()
	write(t, b, "d/f", "two")
	if got, _ := a.ReadFile("d/f"); string(got) != "one" {
		t.Fatalf("clone write leaked into original: %q", got)
	}
	if got, _ := b.ReadFile("d/f"); string(got) != "two" {
		t.Fatalf("clone = %q", got)
	}
}
