package graphlet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/midas-graph/midas/graph"
)

func TestCountPath3(t *testing.T) {
	g := graph.Path(0, "A", "B", "C")
	c := Count(g)
	if c[Path3] != 1 || c.Total() != 1 {
		t.Fatalf("counts = %v", c)
	}
}

func TestCountTriangle(t *testing.T) {
	g := graph.Clique(0, "A", "B", "C")
	c := Count(g)
	if c[Triangle] != 1 || c[Path3] != 0 {
		t.Fatalf("counts = %v", c)
	}
}

func TestCountPath4(t *testing.T) {
	g := graph.Path(0, "A", "B", "C", "D")
	c := Count(g)
	if c[Path4] != 1 {
		t.Fatalf("P4 count = %d, want 1", c[Path4])
	}
	if c[Path3] != 2 {
		t.Fatalf("P3 count = %d, want 2", c[Path3])
	}
}

func TestCountStar4(t *testing.T) {
	g := graph.Star(0, "C", "H", "H", "H")
	c := Count(g)
	if c[Star4] != 1 || c[Path4] != 0 {
		t.Fatalf("counts = %v", c)
	}
	if c[Path3] != 3 { // choose 2 of 3 leaves
		t.Fatalf("P3 = %d, want 3", c[Path3])
	}
}

func TestCountCycle4(t *testing.T) {
	g := graph.Cycle(0, "A", "B", "C", "D")
	c := Count(g)
	if c[Cycle4] != 1 || c[Path4] != 0 {
		t.Fatalf("counts = %v", c)
	}
	if c[Path3] != 4 {
		t.Fatalf("P3 = %d, want 4", c[Path3])
	}
}

func TestCountTailedTriangle(t *testing.T) {
	g := graph.FromEdges(0, []string{"A", "B", "C", "D"},
		[][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	c := Count(g)
	if c[TailedTriangle] != 1 {
		t.Fatalf("paw = %d, want 1; counts=%v", c[TailedTriangle], c)
	}
	if c[Triangle] != 1 {
		t.Fatalf("triangle = %d, want 1", c[Triangle])
	}
}

func TestCountDiamond(t *testing.T) {
	g := graph.FromEdges(0, []string{"A", "B", "C", "D"},
		[][2]int{{0, 1}, {1, 2}, {0, 2}, {0, 3}, {2, 3}})
	c := Count(g)
	if c[Diamond] != 1 {
		t.Fatalf("diamond = %d, want 1; counts=%v", c[Diamond], c)
	}
}

func TestCountClique4(t *testing.T) {
	g := graph.Clique(0, "A", "B", "C", "D")
	c := Count(g)
	if c[Clique4] != 1 {
		t.Fatalf("K4 = %d, want 1", c[Clique4])
	}
	if c[Triangle] != 4 {
		t.Fatalf("triangles in K4 = %d, want 4", c[Triangle])
	}
	if c[Diamond] != 0 || c[Cycle4] != 0 {
		t.Fatalf("induced counts wrong: %v", c)
	}
}

func TestCountK5Closed(t *testing.T) {
	// K5: C(5,3)=10 triangles, C(5,4)=5 K4s, nothing else.
	g := graph.Clique(0, "A", "B", "C", "D", "E")
	c := Count(g)
	if c[Triangle] != 10 || c[Clique4] != 5 {
		t.Fatalf("K5 counts = %v", c)
	}
	if c[Path3] != 0 || c[Path4] != 0 || c[Star4] != 0 || c[Cycle4] != 0 ||
		c[TailedTriangle] != 0 || c[Diamond] != 0 {
		t.Fatalf("K5 has unexpected induced graphlets: %v", c)
	}
}

// bruteCount counts graphlets by complete subset enumeration, as an
// oracle for the ESU implementation.
func bruteCount(g *graph.Graph) Counts {
	var c Counts
	n := g.Order()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				vs := []int{i, j, k}
				if connectedWithin(g, vs) {
					c[classify3(g, vs)]++
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				for l := k + 1; l < n; l++ {
					vs := []int{i, j, k, l}
					if connectedWithin(g, vs) {
						c[classify4(g, vs)]++
					}
				}
			}
		}
	}
	return c
}

func connectedWithin(g *graph.Graph, vs []int) bool {
	sub := g.InducedSubgraph(vs)
	return sub.IsConnected() && sub.Size() >= len(vs)-1
}

func TestPropertyESUMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 9)
		return Count(g) == bruteCount(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func randomGraph(r *rand.Rand, maxN int) *graph.Graph {
	n := 1 + r.Intn(maxN)
	g := graph.New(0)
	for i := 0; i < n; i++ {
		g.AddVertex("A")
	}
	for i := 1; i < n; i++ {
		g.AddEdge(i, r.Intn(i))
	}
	for i := 0; i < n; i++ {
		g.AddEdge(r.Intn(n), r.Intn(n))
	}
	g.SortAdjacency()
	return g
}

func TestDistribution(t *testing.T) {
	var c Counts
	c[Path3] = 3
	c[Triangle] = 1
	d := c.Distribution()
	if math.Abs(d[Path3]-0.75) > 1e-9 || math.Abs(d[Triangle]-0.25) > 1e-9 {
		t.Fatalf("distribution = %v", d)
	}
	var zero Counts
	if zero.Distribution() != ([NumTypes]float64{}) {
		t.Fatal("zero counts should give zero distribution")
	}
}

func TestDistance(t *testing.T) {
	a := [NumTypes]float64{1, 0}
	b := [NumTypes]float64{0, 1}
	if got := Distance(a, b); math.Abs(got-math.Sqrt2) > 1e-9 {
		t.Fatalf("distance = %v, want sqrt2", got)
	}
	if Distance(a, a) != 0 {
		t.Fatal("self distance should be 0")
	}
}

func TestCounterIncremental(t *testing.T) {
	d := graph.DatabaseOf(
		graph.Path(0, "A", "B", "C"),
		graph.Clique(1, "A", "B", "C"),
	)
	c := NewCounter(d)
	if c.Total()[Path3] != 1 || c.Total()[Triangle] != 1 {
		t.Fatalf("initial totals = %v", c.Total())
	}

	u := graph.Update{
		Insert: []*graph.Graph{graph.Cycle(2, "A", "B", "C", "D")},
		Delete: []int{0},
	}
	// DistributionAfter must not mutate.
	after := c.DistributionAfter(u)
	if c.Total()[Path3] != 1 {
		t.Fatal("DistributionAfter mutated the counter")
	}
	c.Apply(u)
	if got := c.Distribution(); got != after {
		t.Fatalf("Apply distribution %v != preview %v", got, after)
	}
	if c.Total()[Path3] != 4 || c.Total()[Cycle4] != 1 || c.Total()[Triangle] != 1 {
		t.Fatalf("totals after update = %v", c.Total())
	}
}

func TestCounterMatchesScratch(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := graph.NewDatabase()
		for i := 0; i < 5; i++ {
			g := randomGraph(r, 8)
			g.ID = i
			if err := d.Add(g); err != nil {
				return false
			}
		}
		c := NewCounter(d)
		u := graph.Update{Delete: []int{1, 3}}
		for i := 0; i < 2; i++ {
			g := randomGraph(r, 8)
			g.ID = 10 + i
			u.Insert = append(u.Insert, g)
		}
		c.Apply(u)
		if err := d.Apply(u); err != nil {
			return false
		}
		scratch := NewCounter(d)
		return c.Total() == scratch.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeString(t *testing.T) {
	if Path3.String() != "path3" || Clique4.String() != "clique4" {
		t.Fatal("type names wrong")
	}
	if Type(99).String() != "unknown" {
		t.Fatal("out of range should be unknown")
	}
}

func TestRemoveGraphIdempotent(t *testing.T) {
	d := graph.DatabaseOf(graph.Path(0, "A", "B", "C"))
	c := NewCounter(d)
	c.RemoveGraph(0)
	c.RemoveGraph(0)
	if c.Total().Total() != 0 {
		t.Fatalf("totals = %v, want zero", c.Total())
	}
}
