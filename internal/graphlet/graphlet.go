// Package graphlet counts connected 3-node and 4-node graphlets and
// maintains the graphlet frequency distribution ψ_D of a graph database,
// which MIDAS compares before and after a batch update to classify a
// modification as major or minor (paper §3.4).
//
// The eight connected graphlet types (the standard G1..G8 of [31],
// restricted to 3- and 4-node graphlets) are enumerated with the ESU
// (FANMOD) algorithm over induced subgraphs, which is efficient on the
// sparse molecule-like graphs the paper targets.
package graphlet

import (
	"math"

	"github.com/midas-graph/midas/graph"
)

// Type identifies a connected graphlet shape.
type Type int

const (
	Path3 Type = iota // 3 vertices, 2 edges
	Triangle
	Path4 // 4 vertices, 3 edges, degrees 1,1,2,2
	Star4 // claw: degrees 1,1,1,3
	Cycle4
	TailedTriangle // paw: degrees 1,2,2,3
	Diamond        // degrees 2,2,3,3
	Clique4
	NumTypes // sentinel
)

var typeNames = [...]string{
	"path3", "triangle", "path4", "star4", "cycle4",
	"tailedtriangle", "diamond", "clique4",
}

// String returns the graphlet type name.
func (t Type) String() string {
	if t < 0 || int(t) >= len(typeNames) {
		return "unknown"
	}
	return typeNames[t]
}

// Counts holds occurrence counts per graphlet type.
type Counts [NumTypes]int64

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	for i := range c {
		c[i] += other[i]
	}
}

// Sub subtracts other from c.
func (c *Counts) Sub(other Counts) {
	for i := range c {
		c[i] -= other[i]
	}
}

// Total returns the total number of graphlet occurrences.
func (c Counts) Total() int64 {
	var t int64
	for _, v := range c {
		t += v
	}
	return t
}

// Distribution returns the normalised frequency vector ψ. An all-zero
// count yields an all-zero distribution.
func (c Counts) Distribution() [NumTypes]float64 {
	var d [NumTypes]float64
	total := c.Total()
	if total == 0 {
		return d
	}
	for i, v := range c {
		d[i] = float64(v) / float64(total)
	}
	return d
}

// Count enumerates all connected induced 3- and 4-vertex subgraphs of g
// and returns counts per graphlet type.
func Count(g *graph.Graph) Counts {
	var c Counts
	enumerate(g, 3, func(vs []int) { c[classify3(g, vs)]++ })
	enumerate(g, 4, func(vs []int) { c[classify4(g, vs)]++ })
	return c
}

// enumerate runs ESU: it emits every connected induced subgraph of g with
// exactly k vertices, each exactly once.
func enumerate(g *graph.Graph, k int, emit func(vs []int)) {
	n := g.Order()
	inSub := make([]bool, n)
	inExt := make([]bool, n)
	sub := make([]int, 0, k)

	var extend func(ext []int, root int)
	extend = func(ext []int, root int) {
		if len(sub) == k {
			emit(sub)
			return
		}
		// Iterate over a private copy: recursion mutates ext.
		for i := 0; i < len(ext); i++ {
			w := ext[i]
			// Remaining extension after removing w.
			rest := make([]int, 0, len(ext)+4)
			rest = append(rest, ext[i+1:]...)
			// Add exclusive neighbours of w: > root and not adjacent to
			// the current subgraph (i.e. not already in ext or sub).
			var added []int
			for _, x := range g.Neighbors(w) {
				if x > root && !inSub[x] && !inExt[x] {
					rest = append(rest, x)
					added = append(added, x)
					inExt[x] = true
				}
			}
			sub = append(sub, w)
			inSub[w] = true
			extend(rest, root)
			inSub[w] = false
			sub = sub[:len(sub)-1]
			for _, x := range added {
				inExt[x] = false
			}
		}
	}

	for v := 0; v < n; v++ {
		var ext []int
		for _, w := range g.Neighbors(v) {
			if w > v {
				ext = append(ext, w)
				inExt[w] = true
			}
		}
		sub = append(sub, v)
		inSub[v] = true
		extend(ext, v)
		inSub[v] = false
		sub = sub[:0]
		for _, w := range ext {
			inExt[w] = false
		}
	}
}

func classify3(g *graph.Graph, vs []int) Type {
	edges := countEdges(g, vs)
	if edges == 3 {
		return Triangle
	}
	return Path3
}

func classify4(g *graph.Graph, vs []int) Type {
	switch countEdges(g, vs) {
	case 3:
		// Star (1,1,1,3) vs path (1,1,2,2): a star has a degree-3 vertex.
		if maxDegreeWithin(g, vs) == 3 {
			return Star4
		}
		return Path4
	case 4:
		// Cycle (2,2,2,2) vs tailed triangle (1,2,2,3).
		if maxDegreeWithin(g, vs) == 3 {
			return TailedTriangle
		}
		return Cycle4
	case 5:
		return Diamond
	default:
		return Clique4
	}
}

func countEdges(g *graph.Graph, vs []int) int {
	e := 0
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if g.HasEdge(vs[i], vs[j]) {
				e++
			}
		}
	}
	return e
}

func maxDegreeWithin(g *graph.Graph, vs []int) int {
	best := 0
	for _, v := range vs {
		d := 0
		for _, w := range vs {
			if v != w && g.HasEdge(v, w) {
				d++
			}
		}
		if d > best {
			best = d
		}
	}
	return best
}

// Counter caches per-graph graphlet counts so that the database-level
// distribution can be updated incrementally under batch updates: MIDAS
// needs ψ_D and ψ_{D⊕ΔD} for every maintenance invocation (Algorithm 1,
// lines 3–4) without recounting unchanged graphs.
type Counter struct {
	perGraph map[int]Counts
	total    Counts
}

// NewCounter builds a counter over an initial database.
func NewCounter(d *graph.Database) *Counter {
	c := &Counter{perGraph: make(map[int]Counts, d.Len())}
	for _, g := range d.Graphs() {
		c.AddGraph(g)
	}
	return c
}

// AddGraph counts and caches graphlets of g. Re-adding an existing ID
// first removes the stale counts.
func (c *Counter) AddGraph(g *graph.Graph) {
	if old, ok := c.perGraph[g.ID]; ok {
		c.total.Sub(old)
	}
	counts := Count(g)
	c.perGraph[g.ID] = counts
	c.total.Add(counts)
}

// RemoveGraph discards the cached counts of graph id.
func (c *Counter) RemoveGraph(id int) {
	if old, ok := c.perGraph[id]; ok {
		c.total.Sub(old)
		delete(c.perGraph, id)
	}
}

// Total returns the aggregate counts over all cached graphs.
func (c *Counter) Total() Counts { return c.total }

// Distribution returns ψ over the cached graphs.
func (c *Counter) Distribution() [NumTypes]float64 {
	return c.total.Distribution()
}

// DistributionAfter returns ψ_{D⊕ΔD} without mutating the counter: the
// update's insertions are counted fresh and deletions subtracted from the
// cache.
func (c *Counter) DistributionAfter(u graph.Update) [NumTypes]float64 {
	after := c.total
	for _, id := range u.Delete {
		if old, ok := c.perGraph[id]; ok {
			after.Sub(old)
		}
	}
	for _, g := range u.Insert {
		after.Add(Count(g))
	}
	return after.Distribution()
}

// Apply updates the counter for the batch update.
func (c *Counter) Apply(u graph.Update) {
	for _, id := range u.Delete {
		c.RemoveGraph(id)
	}
	for _, g := range u.Insert {
		c.AddGraph(g)
	}
}

// Distance returns the Euclidean distance between two graphlet frequency
// distributions, dist(ψ_D, ψ_{D⊕ΔD}) of §3.4.
func Distance(a, b [NumTypes]float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Measure selects the distribution distance used to classify
// modifications. The paper reports that alternative measures do not
// significantly change behaviour (§3.4, technical report); all three
// are provided so that claim can be checked (see the distance-measure
// ablation bench).
type Measure int

const (
	// L2 is the paper's default Euclidean distance.
	L2 Measure = iota
	// L1 is the Manhattan distance.
	L1
	// Hellinger is the Hellinger distance, bounded in [0,1].
	Hellinger
)

// String names the measure.
func (m Measure) String() string {
	switch m {
	case L1:
		return "l1"
	case Hellinger:
		return "hellinger"
	default:
		return "l2"
	}
}

// DistanceWith computes the distance between two distributions under
// the chosen measure.
func DistanceWith(m Measure, a, b [NumTypes]float64) float64 {
	switch m {
	case L1:
		s := 0.0
		for i := range a {
			s += math.Abs(a[i] - b[i])
		}
		return s
	case Hellinger:
		s := 0.0
		for i := range a {
			d := math.Sqrt(a[i]) - math.Sqrt(b[i])
			s += d * d
		}
		return math.Sqrt(s) / math.Sqrt2
	default:
		return Distance(a, b)
	}
}
