package graphlet

// Clone returns a copy of the counter for transactional rollback.
// Counts is a value type, so copying the per-graph map entries is a
// full deep copy.
func (c *Counter) Clone() *Counter {
	out := &Counter{perGraph: make(map[int]Counts, len(c.perGraph)), total: c.total}
	for id, counts := range c.perGraph {
		out.perGraph[id] = counts
	}
	return out
}
