package graphlet

import (
	"math/rand"
	"testing"
)

func BenchmarkCount(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	g := randomGraph(r, 25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Count(g)
	}
}
