package graphlet

import (
	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/parallel"
)

// The batch census is embarrassingly parallel: Count is a pure function
// of one graph, so the per-graph censuses of an insertion batch can fan
// out across workers while every cache and total update stays
// sequential in batch order. Integer counter addition is exact, so the
// parallel variants below are byte-identical to their sequential
// counterparts at any worker count.

// countBatch computes Count for every inserted graph, fanning out over
// the pool. No cancellation hook: a census is cheap and bounded, and
// callers need complete slices.
func countBatch(workers int, gs []*graph.Graph) []Counts {
	return parallel.Map(workers, len(gs), nil, func(i int) Counts {
		return Count(gs[i])
	})
}

// DistributionAfterParallel is DistributionAfter with the insertion
// censuses computed via the parallel pool.
func (c *Counter) DistributionAfterParallel(workers int, u graph.Update) [NumTypes]float64 {
	after := c.total
	for _, id := range u.Delete {
		if old, ok := c.perGraph[id]; ok {
			after.Sub(old)
		}
	}
	counts := countBatch(workers, u.Insert)
	for _, cs := range counts {
		after.Add(cs)
	}
	return after.Distribution()
}

// ApplyParallel is Apply with the insertion censuses computed via the
// parallel pool.
func (c *Counter) ApplyParallel(workers int, u graph.Update) {
	for _, id := range u.Delete {
		c.RemoveGraph(id)
	}
	counts := countBatch(workers, u.Insert)
	for i, g := range u.Insert {
		if old, ok := c.perGraph[g.ID]; ok {
			c.total.Sub(old)
		}
		c.perGraph[g.ID] = counts[i]
		c.total.Add(counts[i])
	}
}
