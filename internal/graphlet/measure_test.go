package graphlet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistanceWithL2MatchesDistance(t *testing.T) {
	a := [NumTypes]float64{0.5, 0.5}
	b := [NumTypes]float64{0.25, 0.75}
	if DistanceWith(L2, a, b) != Distance(a, b) {
		t.Fatal("L2 should match Distance")
	}
}

func TestDistanceWithL1(t *testing.T) {
	a := [NumTypes]float64{1, 0}
	b := [NumTypes]float64{0, 1}
	if got := DistanceWith(L1, a, b); math.Abs(got-2) > 1e-9 {
		t.Fatalf("L1 = %v, want 2", got)
	}
}

func TestDistanceWithHellingerBounds(t *testing.T) {
	a := [NumTypes]float64{1, 0}
	b := [NumTypes]float64{0, 1}
	if got := DistanceWith(Hellinger, a, b); math.Abs(got-1) > 1e-9 {
		t.Fatalf("Hellinger of disjoint distributions = %v, want 1", got)
	}
	if DistanceWith(Hellinger, a, a) != 0 {
		t.Fatal("self-distance should be 0")
	}
}

func TestMeasureString(t *testing.T) {
	if L2.String() != "l2" || L1.String() != "l1" || Hellinger.String() != "hellinger" {
		t.Fatal("measure names wrong")
	}
}

func TestPropertyMeasuresAgreeOnOrdering(t *testing.T) {
	// The paper's claim: the choice of measure barely matters. Verify a
	// necessary version: for random distribution pairs, if one pair is
	// clearly farther than another under L2 (by 2x), every measure
	// agrees on the ordering.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := randomDist(r)
		near := perturb(r, base, 0.02)
		far := perturb(r, base, 0.3)
		for _, m := range []Measure{L2, L1, Hellinger} {
			dn := DistanceWith(m, base, near)
			df := DistanceWith(m, base, far)
			if dn > df {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func randomDist(r *rand.Rand) [NumTypes]float64 {
	var d [NumTypes]float64
	total := 0.0
	for i := range d {
		d[i] = r.Float64()
		total += d[i]
	}
	for i := range d {
		d[i] /= total
	}
	return d
}

// perturb shifts mass between buckets by roughly eps and renormalises.
func perturb(r *rand.Rand, d [NumTypes]float64, eps float64) [NumTypes]float64 {
	out := d
	for i := range out {
		out[i] += eps * r.Float64()
	}
	total := 0.0
	for _, x := range out {
		total += x
	}
	for i := range out {
		out[i] /= total
	}
	return out
}
