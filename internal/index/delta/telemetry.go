package delta

import "sync/atomic"

// Per-node telemetry, process-wide like the iso/ged kernel counters:
// cheap atomic increments on the maintenance path, snapshotted by
// benchmarks and the -compare-index report to show how much work the
// network actually did versus a from-scratch recompute.
var (
	graphDeltas      atomic.Uint64 // Δ⁺/Δ⁻ graph events propagated
	patternDeltas    atomic.Uint64 // pattern register/unregister events
	coverDeltas      atomic.Uint64 // cover-set membership additions+removals applied
	rowsTouched      atomic.Uint64 // profile rows probed by candidacy and churn patching
	verdictsComputed atomic.Uint64 // exact containment checks run
	verdictsCached   atomic.Uint64 // containment checks answered from the verdict cache
	reconciles       atomic.Uint64 // patterns whose profile changed under feature churn
	rebuilds         atomic.Uint64 // full-rebuild fallbacks taken
)

// Stats is a point-in-time snapshot of the network counters.
type Stats struct {
	GraphDeltas      uint64 `json:"graph_deltas"`
	PatternDeltas    uint64 `json:"pattern_deltas"`
	CoverDeltas      uint64 `json:"cover_deltas"`
	RowsTouched      uint64 `json:"rows_touched"`
	VerdictsComputed uint64 `json:"verdicts_computed"`
	VerdictsCached   uint64 `json:"verdicts_cached"`
	Reconciles       uint64 `json:"reconciles"`
	Rebuilds         uint64 `json:"rebuilds"`
}

// Snapshot returns the current counter values.
func Snapshot() Stats {
	return Stats{
		GraphDeltas:      graphDeltas.Load(),
		PatternDeltas:    patternDeltas.Load(),
		CoverDeltas:      coverDeltas.Load(),
		RowsTouched:      rowsTouched.Load(),
		VerdictsComputed: verdictsComputed.Load(),
		VerdictsCached:   verdictsCached.Load(),
		Reconciles:       reconciles.Load(),
		Rebuilds:         rebuilds.Load(),
	}
}

// ResetStats zeroes the counters (test isolation).
func ResetStats() {
	graphDeltas.Store(0)
	patternDeltas.Store(0)
	coverDeltas.Store(0)
	rowsTouched.Store(0)
	verdictsComputed.Store(0)
	verdictsCached.Store(0)
	reconciles.Store(0)
	rebuilds.Store(0)
}
