// Package delta implements incremental maintenance of the MIDAS index
// consumers as a small discrimination network (after MV4PG's
// materialized graph views and Beyhl & Giese's generalized
// discrimination networks): a batch's Δ⁺/Δ⁻ graph set flows through
//
//   - feature-count nodes — the per-feature embedding counts of the
//     TG/EG matrix columns, updated by internal/index only for the
//     touched graphs (the network observes those updates and probes
//     only the touched columns),
//   - a cover-set node — a materialised G_scov(p) per registered
//     pattern, maintained by add/remove membership deltas instead of
//     the per-batch from-scratch CoverSet recomputation, backed by a
//     per-pattern feature profile and a verdict cache of exact
//     containment checks, and
//   - an exclusive-coverage node — per-graph covering-pattern counts
//     feeding the exclusive/union statistics of Definition 5.5 and
//     Equation 2 without re-unioning every cover set.
//
// The determinism contract is strict: after every batch, the
// materialised state must be byte-identical to what a from-scratch
// index.Build + CoverSet over the post-batch database produces, at
// every worker count, warm or cold kernel memo. The differential
// oracle in internal/core and the package's own fuzz target enforce
// it. The network therefore never approximates: candidacy uses the
// exact dominance test of index.CandidatesOf over the live matrices,
// and verification uses index.Contains — the same budgeted kernel the
// from-scratch path runs. Verdicts are pure functions of the concrete
// (pattern, graph) instances, so caching them across batches (and
// dropping them when a graph ID is removed, since IDs may be reused)
// preserves byte-identity while skipping almost all repeated VF2 work.
//
// Concurrency: verdict computations fan out over the internal/parallel
// pool; results are applied sequentially in sorted (pattern ID, graph
// ID) order, so the materialised state is identical at every Workers
// setting. The network itself is not goroutine-safe — it is owned by
// the engine's maintenance path, which is single-threaded.
package delta

import (
	"bytes"
	"fmt"
	"sort"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/index"
	"github.com/midas-graph/midas/internal/parallel"
)

// patternState is the cover-set node's row for one registered pattern.
type patternState struct {
	p *graph.Graph
	// fct and ife mirror the pattern's TP/EP column — its feature
	// profile, reconciled against row churn so candidacy never
	// recounts embeddings of features in the pattern.
	fct map[string]int
	ife map[string]int
	// verdicts caches index.Contains(p, g) per data-graph ID. Entries
	// are dropped when the graph is removed (IDs may be reused).
	verdicts map[int]bool
	// cover is the materialised G_scov(p) over the full database.
	cover map[int]struct{}
}

// Network is the delta network over one engine's Indices. It holds no
// reference to the index, database or tree set: every event receives
// them explicitly, so cloning the network for snapshot/rollback is a
// pure map copy and a restored engine re-pairs it with the restored
// structures.
type Network struct {
	byID  map[int]*patternState
	byPtr map[*graph.Graph]*patternState
	// owner is the exclusive-coverage node: data-graph ID -> number of
	// registered patterns whose cover set contains it. union =
	// {id : owner[id] > 0}; a pattern's exclusive count is the number
	// of its cover members with owner == 1.
	owner map[int]int
}

// NewNetwork builds the network over an index whose patterns are
// already registered (columns present in TP/EP).
func NewNetwork(ix *index.Indices, db *graph.Database, patterns []*graph.Graph, workers int) *Network {
	n := &Network{}
	n.rebuild(ix, db, patterns, workers)
	return n
}

// rebuild discards the candidacy-derived state and recomputes every
// pattern's profile and cover from the live matrices. Verdict caches
// are kept — verdicts are pure (pattern, graph) functions, so reuse is
// byte-neutral.
func (n *Network) rebuild(ix *index.Indices, db *graph.Database, patterns []*graph.Graph, workers int) {
	old := n.byPtr
	n.byID = make(map[int]*patternState, len(patterns))
	n.byPtr = make(map[*graph.Graph]*patternState, len(patterns))
	n.owner = make(map[int]int)
	for _, p := range patterns {
		var verdicts map[int]bool
		if st := old[p]; st != nil {
			verdicts = st.verdicts
		}
		n.register(ix, db, p, workers, verdicts)
	}
}

// RegisterPattern materialises the cover-set row of a pattern whose
// TP/EP column ix.RegisterPattern has already populated.
func (n *Network) RegisterPattern(ix *index.Indices, db *graph.Database, p *graph.Graph, workers int) {
	n.register(ix, db, p, workers, nil)
	patternDeltas.Add(1)
}

func (n *Network) register(ix *index.Indices, db *graph.Database, p *graph.Graph, workers int, verdicts map[int]bool) {
	st := &patternState{
		p:        p,
		fct:      ix.TP.Col(p.ID),
		ife:      ix.EP.Col(p.ID),
		verdicts: verdicts,
		cover:    make(map[int]struct{}),
	}
	if st.verdicts == nil {
		st.verdicts = make(map[int]bool)
	}
	n.byID[p.ID] = st
	n.byPtr[p] = st
	n.reconcile(ix, db, st, workers)
}

// UnregisterPattern drops a pattern's row and retracts its cover
// memberships from the exclusive-coverage node.
func (n *Network) UnregisterPattern(id int) {
	st := n.byID[id]
	if st == nil {
		return
	}
	for gid := range st.cover {
		n.ownerDec(gid)
	}
	coverDeltas.Add(uint64(len(st.cover)))
	delete(n.byID, id)
	delete(n.byPtr, st.p)
	patternDeltas.Add(1)
}

// AddGraph propagates one Δ⁺ graph: ix.AddGraph(g) has already
// populated g's TG/EG column, so each registered pattern probes only
// that column for candidacy and verifies membership exactly. Verdicts
// fan out over the pool; application runs in sorted pattern-ID order.
func (n *Network) AddGraph(ix *index.Indices, g *graph.Graph, workers int) {
	graphDeltas.Add(1)
	ids := n.sortedIDs()
	const (
		notCandidate = iota
		member
		nonMember
	)
	verdicts := parallel.Map(workers, len(ids), nil, func(i int) int {
		st := n.byID[ids[i]]
		rowsTouched.Add(uint64(len(st.fct) + len(st.ife)))
		if !ix.ColumnDominates(st.fct, st.ife, g.ID) {
			return notCandidate
		}
		verdictsComputed.Add(1)
		if index.Contains(st.p, g) {
			return member
		}
		return nonMember
	})
	for i, id := range ids {
		st := n.byID[id]
		switch verdicts[i] {
		case member:
			st.verdicts[g.ID] = true
			st.cover[g.ID] = struct{}{}
			n.owner[g.ID]++
			coverDeltas.Add(1)
		case nonMember:
			st.verdicts[g.ID] = false
		}
	}
}

// RemoveGraph propagates one Δ⁻ graph: membership and cached verdicts
// for the ID are dropped from every pattern row (graph IDs may be
// reused by later insertions, so stale verdicts must not survive).
func (n *Network) RemoveGraph(id int) {
	graphDeltas.Add(1)
	for _, pid := range n.sortedIDs() {
		st := n.byID[pid]
		delete(st.verdicts, id)
		if _, ok := st.cover[id]; ok {
			delete(st.cover, id)
			n.ownerDec(id)
			coverDeltas.Add(1)
		}
	}
}

// SyncFeatures reconciles the cover-set node after index row churn:
// ix.SyncFeatures has already added/removed the matrix rows and
// re-counted pattern columns for new features, so each pattern's
// profile is patched from the churn lists alone, and only patterns
// whose profile actually changed re-derive their candidate set (new
// candidates verify through the verdict cache). When the churn
// replaces at least half of the resulting row set, the network falls
// back to a deterministic full rebuild — at that point the reconcile
// would touch nearly every row anyway.
func (n *Network) SyncFeatures(ix *index.Indices, db *graph.Database, churn index.Churn, workers int) {
	if churn.Empty() {
		return
	}
	rows := ix.Trie.Len() + len(ix.IFELabels())
	if 2*churn.Size() >= rows {
		rebuilds.Add(1)
		n.rebuild(ix, db, n.patterns(), workers)
		return
	}
	for _, pid := range n.sortedIDs() {
		st := n.byID[pid]
		rowsTouched.Add(uint64(churn.Size()))
		if !patchProfile(ix, st, churn) {
			continue
		}
		reconciles.Add(1)
		n.reconcile(ix, db, st, workers)
	}
}

// patchProfile applies the row churn to one pattern's materialised
// profile and reports whether the profile changed (in which case its
// candidate set must be re-derived).
func patchProfile(ix *index.Indices, st *patternState, churn index.Churn) bool {
	changed := false
	for _, key := range churn.RemovedFeatures {
		if _, ok := st.fct[key]; ok {
			delete(st.fct, key)
			changed = true
		}
	}
	for _, key := range churn.AddedFeatures {
		if c := ix.TP.Get(key, st.p.ID); c > 0 {
			st.fct[key] = c
			changed = true
		}
	}
	for _, label := range churn.RemovedIFE {
		if _, ok := st.ife[label]; ok {
			delete(st.ife, label)
			changed = true
		}
	}
	for _, label := range churn.AddedIFE {
		if c := ix.EP.Get(label, st.p.ID); c > 0 {
			st.ife[label] = c
			changed = true
		}
	}
	return changed
}

// reconcile re-derives one pattern's candidate set from the live
// matrices and diffs the verified cover against the materialised one,
// emitting membership deltas to the exclusive-coverage node. Missing
// verdicts fan out; everything applies in sorted graph-ID order.
func (n *Network) reconcile(ix *index.Indices, db *graph.Database, st *patternState, workers int) {
	cands := ix.CandidatesOf(st.fct, st.ife, universe(db))
	missing := make([]int, 0, len(cands))
	for _, id := range cands {
		if _, ok := st.verdicts[id]; !ok {
			missing = append(missing, id)
		}
	}
	verdictsCached.Add(uint64(len(cands) - len(missing)))
	verdictsComputed.Add(uint64(len(missing)))
	computed := parallel.Map(workers, len(missing), nil, func(i int) bool {
		g := db.Get(missing[i])
		return g != nil && index.Contains(st.p, g)
	})
	for i, id := range missing {
		st.verdicts[id] = computed[i]
	}
	next := make(map[int]struct{}, len(st.cover))
	for _, id := range cands {
		if st.verdicts[id] {
			next[id] = struct{}{}
		}
	}
	for id := range st.cover {
		if _, ok := next[id]; !ok {
			n.ownerDec(id)
			coverDeltas.Add(1)
		}
	}
	for id := range next {
		if _, ok := st.cover[id]; !ok {
			n.owner[id]++
			coverDeltas.Add(1)
		}
	}
	st.cover = next
}

// Cover returns the materialised full-database cover set of a
// registered pattern, looked up by the exact graph instance (candidate
// patterns that were never registered miss). The returned map is live
// network state: callers must treat it as read-only and must not
// retain it across maintenance events.
func (n *Network) Cover(p *graph.Graph) (map[int]struct{}, bool) {
	st := n.byPtr[p]
	if st == nil || st.p.ID != p.ID {
		return nil, false
	}
	return st.cover, true
}

// Covers returns the cover sets of the given patterns in order, or
// ok=false if any of them is not registered.
func (n *Network) Covers(patterns []*graph.Graph) ([]map[int]struct{}, bool) {
	out := make([]map[int]struct{}, len(patterns))
	for i, p := range patterns {
		c, ok := n.Cover(p)
		if !ok {
			return nil, false
		}
		out[i] = c
	}
	return out, true
}

// ExclusiveStats serves, for the given pattern list, each pattern's
// exclusive cover count |G_scov(p) \ ∪_{p'≠p} G_scov(p')| and the
// union cover — the inputs of Definition 5.5 and Equation 2 — from the
// maintained owner counts. ok is false when the list does not exactly
// match the registered set (the caller then falls back to the pure
// recomputation); the union map is a fresh copy the caller owns.
func (n *Network) ExclusiveStats(patterns []*graph.Graph) (exclusive []int, union map[int]struct{}, ok bool) {
	if len(patterns) != len(n.byID) {
		return nil, nil, false
	}
	states := make([]*patternState, len(patterns))
	for i, p := range patterns {
		st := n.byPtr[p]
		if st == nil || st.p.ID != p.ID {
			return nil, nil, false
		}
		states[i] = st
	}
	union = make(map[int]struct{}, len(n.owner))
	for id := range n.owner {
		union[id] = struct{}{}
	}
	exclusive = make([]int, len(states))
	for i, st := range states {
		c := 0
		for id := range st.cover {
			if n.owner[id] == 1 {
				c++
			}
		}
		exclusive[i] = c
	}
	return exclusive, union, true
}

// Clone deep-copies the network for transactional rollback. Pattern
// graph pointers are shared (the engine never structurally mutates
// registered patterns); every map is copied.
func (n *Network) Clone() *Network {
	c := &Network{
		byID:  make(map[int]*patternState, len(n.byID)),
		byPtr: make(map[*graph.Graph]*patternState, len(n.byPtr)),
		owner: make(map[int]int, len(n.owner)),
	}
	for id, st := range n.byID {
		cs := &patternState{
			p:        st.p,
			fct:      make(map[string]int, len(st.fct)),
			ife:      make(map[string]int, len(st.ife)),
			verdicts: make(map[int]bool, len(st.verdicts)),
			cover:    make(map[int]struct{}, len(st.cover)),
		}
		for k, v := range st.fct {
			cs.fct[k] = v
		}
		for k, v := range st.ife {
			cs.ife[k] = v
		}
		for k, v := range st.verdicts {
			cs.verdicts[k] = v
		}
		for k := range st.cover {
			cs.cover[k] = struct{}{}
		}
		c.byID[id] = cs
		c.byPtr[st.p] = cs
	}
	for id, v := range n.owner {
		c.owner[id] = v
	}
	return c
}

// Fingerprint returns a canonical byte serialisation of the
// materialised state — per-pattern profiles and cover sets plus the
// owner counts — for the differential oracle and the clone-isolation
// regression tests.
func (n *Network) Fingerprint() []byte {
	var buf bytes.Buffer
	ids := n.sortedIDs()
	fmt.Fprintf(&buf, "patterns %d\n", len(ids))
	for _, id := range ids {
		st := n.byID[id]
		fmt.Fprintf(&buf, "p %d fct=%s ife=%s cover=%v\n",
			id, profileString(st.fct), profileString(st.ife), sortedKeys(st.cover))
	}
	owners := make([]int, 0, len(n.owner))
	for id := range n.owner {
		owners = append(owners, id)
	}
	sort.Ints(owners)
	fmt.Fprintf(&buf, "owner %d\n", len(owners))
	for _, id := range owners {
		fmt.Fprintf(&buf, "o %d %d\n", id, n.owner[id])
	}
	return buf.Bytes()
}

// Len returns the number of registered pattern rows.
func (n *Network) Len() int { return len(n.byID) }

func (n *Network) sortedIDs() []int {
	ids := make([]int, 0, len(n.byID))
	for id := range n.byID {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// patterns returns the registered patterns in sorted-ID order.
func (n *Network) patterns() []*graph.Graph {
	ids := n.sortedIDs()
	out := make([]*graph.Graph, len(ids))
	for i, id := range ids {
		out[i] = n.byID[id].p
	}
	return out
}

func (n *Network) ownerDec(id int) {
	if n.owner[id] <= 1 {
		delete(n.owner, id)
		return
	}
	n.owner[id]--
}

func universe(db *graph.Database) []int {
	out := make([]int, 0, db.Len())
	for _, g := range db.Graphs() {
		out = append(out, g.ID)
	}
	sort.Ints(out)
	return out
}

func profileString(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			buf.WriteByte(' ')
		}
		fmt.Fprintf(&buf, "%q:%d", k, m[k])
	}
	buf.WriteByte('}')
	return buf.String()
}

func sortedKeys(m map[int]struct{}) []int {
	out := make([]int, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
