package delta

import (
	"testing"

	"github.com/midas-graph/midas/graph"
)

// FuzzDeltaIndex interprets the input as a sequence of (op, arg) byte
// pairs driving random interleavings of the five delta events — graph
// batch insert, batch delete, mixed batch, pattern register and
// unregister (feature churn rides along with every batch via
// SyncFeatures) — and after every event compares the delta-maintained
// index and network byte-for-byte against a from-scratch Build oracle
// over the same state.
//
// Ops are batch-level on purpose: the oracle's Build reads the tree
// set's current posting lists, so database, tree set and index must
// move together, exactly as the engine's index stage moves them.
func FuzzDeltaIndex(f *testing.F) {
	// One seed per op plus mixed histories; the committed corpus under
	// testdata/fuzz/FuzzDeltaIndex mirrors these.
	f.Add([]byte{0, 3})                                     // single insert batch
	f.Add([]byte{0, 7, 1, 2})                               // insert then delete
	f.Add([]byte{2, 5, 3, 0, 2, 9})                         // register/unregister churn
	f.Add([]byte{4, 11, 4, 6, 4, 1})                        // mixed batches
	f.Add([]byte{0, 250, 2, 13, 4, 9, 1, 4, 3, 1, 0, 17})   // long interleaving
	f.Add([]byte{2, 1, 2, 2, 2, 3, 1, 0, 1, 1, 1, 2, 1, 3}) // pattern-heavy, delete-heavy

	f.Fuzz(func(t *testing.T, data []byte) {
		h := newHarness(t)
		ops := 0
		for i := 0; i+1 < len(data) && ops < 24; i += 2 {
			op, arg := int(data[i])%5, int(data[i+1])
			switch op {
			case 0: // insert batch
				h.applyBatch(t, h.fuzzInserts(1+arg%3, arg), nil)
			case 1: // delete batch
				if del := h.fuzzDeletes(1+arg%2, arg); len(del) > 0 {
					h.applyBatch(t, nil, del)
				}
			case 2: // register a fresh pattern
				h.register(fuzzGraph(h.allocPat(), arg))
			case 3: // unregister one registered pattern
				if len(h.patterns) > 0 {
					h.unregister(h.patterns[arg%len(h.patterns)].ID)
				}
			case 4: // mixed batch
				h.applyBatch(t, h.fuzzInserts(1+arg%2, arg+1), h.fuzzDeletes(arg%2, arg))
			}
			ops++
			h.checkOracle(t, "fuzz op")
		}
	})
}

// fuzzInserts builds n fresh graphs whose shape and labels derive from
// arg.
func (h *harness) fuzzInserts(n, arg int) []*graph.Graph {
	out := make([]*graph.Graph, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fuzzGraph(h.nextID, arg+i))
		h.nextID++
	}
	return out
}

// fuzzDeletes picks up to n live graph IDs deterministically from arg,
// keeping the database non-empty.
func (h *harness) fuzzDeletes(n, arg int) []int {
	ids := append([]int(nil), h.db.IDs()...)
	sortInts(ids)
	var out []int
	for i := 0; i < n && len(ids) > 1; i++ {
		k := (arg + i) % len(ids)
		out = append(out, ids[k])
		ids = append(ids[:k], ids[k+1:]...)
	}
	return out
}

// fuzzGraph derives a small path or star from arg over a fixed label
// alphabet, so features overlap across ops and churn actually happens.
func fuzzGraph(id, arg int) *graph.Graph {
	labels := []string{"C", "O", "N", "B", "H"}
	l := func(k int) string { return labels[k%len(labels)] }
	if arg%2 == 0 {
		return graph.Path(id, l(arg), l(arg/2), l(arg/4))
	}
	return graph.Star(id, l(arg), l(arg/2), l(arg/4), l(arg/8))
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
