package delta

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/index"
	"github.com/midas-graph/midas/internal/iso"
	"github.com/midas-graph/midas/internal/tree"
)

// harness drives an index + network through delta maintenance exactly
// the way the engine's index stage does: database and tree-set first,
// then per-graph column updates, then feature churn. It is shared by
// the unit tests, the property tests and FuzzDeltaIndex.
type harness struct {
	db       *graph.Database
	set      *tree.Set
	ix       *index.Indices
	dx       *Network
	patterns []*graph.Graph
	nextID   int
	nextPat  int
}

func newHarness(t testing.TB) *harness {
	t.Helper()
	db := graph.DatabaseOf(
		graph.Path(0, "C", "O", "C"),
		graph.Path(1, "C", "O", "C"),
		graph.Path(2, "C", "O", "C", "O"),
		graph.Star(3, "C", "N", "N", "N"),
		graph.Star(4, "C", "N", "N", "N"),
		graph.Path(5, "C", "N"),
	)
	set := tree.Mine(db, 0.4, 3)
	ix := index.Build(set, db, nil)
	h := &harness{db: db, set: set, ix: ix, nextID: 6, nextPat: 1000}
	h.dx = NewNetwork(ix, db, nil, 0)
	h.register(graph.Path(h.allocPat(), "C", "O", "C"))
	h.register(graph.Star(h.allocPat(), "C", "N", "N"))
	return h
}

func (h *harness) allocPat() int {
	id := h.nextPat
	h.nextPat++
	return id
}

// applyBatch runs one maintenance batch: db/tree-set update, graph
// column deltas, then feature churn — the engine's index-stage order.
func (h *harness) applyBatch(t testing.TB, ins []*graph.Graph, del []int) {
	t.Helper()
	u := graph.Update{Insert: ins, Delete: del}
	if err := h.db.Apply(u); err != nil {
		t.Fatalf("apply: %v", err)
	}
	h.set.Update(h.db, u)
	for _, id := range del {
		h.ix.RemoveGraph(id)
		h.dx.RemoveGraph(id)
	}
	for _, g := range ins {
		h.ix.AddGraph(g)
		h.dx.AddGraph(h.ix, g, 0)
	}
	churn := h.ix.SyncFeatures(h.set, h.db, h.patterns)
	h.dx.SyncFeatures(h.ix, h.db, churn, 0)
}

func (h *harness) register(p *graph.Graph) {
	h.ix.RegisterPattern(p)
	h.dx.RegisterPattern(h.ix, h.db, p, 0)
	h.patterns = append(h.patterns, p)
}

func (h *harness) unregister(id int) {
	h.ix.UnregisterPattern(id)
	h.dx.UnregisterPattern(id)
	kept := h.patterns[:0]
	for _, p := range h.patterns {
		if p.ID != id {
			kept = append(kept, p)
		}
	}
	h.patterns = kept
}

// checkOracle compares the delta-maintained index and network against a
// from-scratch Build over the harness's current state.
func (h *harness) checkOracle(t testing.TB, tag string) {
	t.Helper()
	oracle := index.Build(h.set, h.db, nil)
	for _, p := range h.patterns {
		oracle.RegisterPattern(p)
	}
	if got, want := h.ix.Fingerprint(), oracle.Fingerprint(); !bytes.Equal(got, want) {
		t.Fatalf("%s: index diverged from from-scratch Build\ngot:\n%s\nwant:\n%s", tag, got, want)
	}
	ref := NewNetwork(oracle, h.db, h.patterns, 0)
	if got, want := h.dx.Fingerprint(), ref.Fingerprint(); !bytes.Equal(got, want) {
		t.Fatalf("%s: network diverged from from-scratch rebuild\ngot:\n%s\nwant:\n%s", tag, got, want)
	}
}

// evolve drives the harness through a fixed churn-heavy history: it
// promotes C.N to frequent (feature churn both ways), removes early
// graphs and swaps a pattern — leaving genuinely delta-maintained
// state for the property tests below.
func (h *harness) evolve(t testing.TB) {
	t.Helper()
	h.applyBatch(t, []*graph.Graph{
		graph.Path(h.nextID, "C", "N"),
		graph.Path(h.nextID+1, "C", "N", "C"),
		graph.Path(h.nextID+2, "C", "N", "C"),
	}, []int{0})
	h.nextID += 3
	h.checkOracle(t, "evolve batch 1")
	old := h.patterns[0].ID
	h.unregister(old)
	h.register(graph.Path(h.allocPat(), "C", "N", "C"))
	h.checkOracle(t, "evolve swap")
	h.applyBatch(t, []*graph.Graph{graph.Star(h.nextID, "B", "O", "O", "O")}, []int{1, 2})
	h.nextID++
	h.checkOracle(t, "evolve batch 2")
}

func TestNetworkMatchesOracleThroughMaintenance(t *testing.T) {
	h := newHarness(t)
	h.checkOracle(t, "bootstrap")
	h.evolve(t)
}

func TestCoverAndExclusiveStats(t *testing.T) {
	h := newHarness(t)
	h.evolve(t)
	for _, p := range h.patterns {
		got, ok := h.dx.Cover(p)
		if !ok {
			t.Fatalf("pattern %d missing", p.ID)
		}
		want := h.ix.CoverSet(p, h.db)
		if len(got) != len(want) {
			t.Fatalf("cover of %d = %v, want %v", p.ID, got, want)
		}
		for id := range want {
			if _, in := got[id]; !in {
				t.Fatalf("cover of %d missing graph %d", p.ID, id)
			}
		}
	}
	excl, union, ok := h.dx.ExclusiveStats(h.patterns)
	if !ok {
		t.Fatal("ExclusiveStats rejected the registered set")
	}
	// Recompute the pure way.
	owner := map[int]int{}
	for _, p := range h.patterns {
		c, _ := h.dx.Cover(p)
		for id := range c {
			owner[id]++
		}
	}
	if len(union) != len(owner) {
		t.Fatalf("union = %v, want keys of %v", union, owner)
	}
	for i, p := range h.patterns {
		c, _ := h.dx.Cover(p)
		n := 0
		for id := range c {
			if owner[id] == 1 {
				n++
			}
		}
		if excl[i] != n {
			t.Fatalf("exclusive[%d] = %d, want %d", i, excl[i], n)
		}
	}
	// A list that does not match the registered set must be rejected,
	// not silently mis-served.
	if _, _, ok := h.dx.ExclusiveStats(h.patterns[:1]); ok {
		t.Fatal("ExclusiveStats accepted a truncated pattern list")
	}
	if _, _, ok := h.dx.ExclusiveStats(append([]*graph.Graph(nil), append(h.patterns[:len(h.patterns)-1:len(h.patterns)-1], graph.Path(9999, "C", "O"))...)); ok {
		t.Fatal("ExclusiveStats accepted a foreign pattern")
	}
}

// TestCandidateGraphsSupersetUnderDeltaMaintenance pins the candidacy
// soundness invariant — CandidateGraphs never dismisses a true match —
// against a delta-maintained index rather than a freshly built one.
func TestCandidateGraphsSupersetUnderDeltaMaintenance(t *testing.T) {
	h := newHarness(t)
	h.evolve(t)
	universe := h.db.IDs()
	f := func(seed int64) bool {
		p := randomPattern(rand.New(rand.NewSource(seed)))
		cand := map[int]struct{}{}
		for _, id := range h.ix.CandidateGraphs(p, universe) {
			cand[id] = struct{}{}
		}
		for _, g := range h.db.Graphs() {
			if iso.HasSubgraph(p, g, iso.Options{}) {
				if _, ok := cand[g.ID]; !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCoverSetPruningMatchesBruteForceUnderDeltaMaintenance pins the
// exactness invariant — index-pruned cover sets equal brute-force
// subgraph checks — against a delta-maintained index.
func TestCoverSetPruningMatchesBruteForceUnderDeltaMaintenance(t *testing.T) {
	h := newHarness(t)
	h.evolve(t)
	f := func(seed int64) bool {
		p := randomPattern(rand.New(rand.NewSource(seed)))
		cover := h.ix.CoverSet(p, h.db)
		for _, g := range h.db.Graphs() {
			truth := iso.HasSubgraph(p, g, iso.Options{})
			_, got := cover[g.ID]
			if truth != got {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func randomPattern(r *rand.Rand) *graph.Graph {
	labels := []string{"C", "O", "N"}
	n := 2 + r.Intn(4)
	g := graph.New(999)
	for i := 0; i < n; i++ {
		g.AddVertex(labels[r.Intn(len(labels))])
	}
	for i := 1; i < n; i++ {
		g.AddEdge(i, r.Intn(i))
	}
	g.SortAdjacency()
	return g
}

// TestNetworkCloneIsolation protects the rollback invariant: mutating a
// clone's delta state (graph deltas, pattern churn, feature churn) must
// leave the original bit-unchanged, and vice versa.
func TestNetworkCloneIsolation(t *testing.T) {
	h := newHarness(t)
	h.evolve(t)
	before := h.dx.Fingerprint()
	clone := h.dx.Clone()
	if !bytes.Equal(clone.Fingerprint(), before) {
		t.Fatal("clone does not reproduce the original state")
	}

	// Mutate the clone through every delta event against a scratch copy
	// of the index state.
	scratchSet := h.set.Clone()
	scratchIx := h.ix.Clone(scratchSet)
	g := graph.Path(777, "C", "O", "C")
	scratchIx.AddGraph(g)
	clone.AddGraph(scratchIx, g, 0)
	clone.RemoveGraph(3)
	p := graph.Path(8888, "C", "O")
	scratchIx.RegisterPattern(p)
	clone.RegisterPattern(scratchIx, h.db, p, 0)
	clone.UnregisterPattern(h.patterns[0].ID)

	if got := h.dx.Fingerprint(); !bytes.Equal(got, before) {
		t.Fatalf("mutating the clone changed the original\nbefore:\n%s\nafter:\n%s", before, got)
	}
	// And the original index must be untouched by the scratch mutations.
	h.checkOracle(t, "after clone mutation")

	// Mutating the original must not leak into the clone either.
	cloneBefore := clone.Fingerprint()
	h.applyBatch(t, []*graph.Graph{graph.Path(h.nextID, "C", "O")}, nil)
	h.nextID++
	if got := clone.Fingerprint(); !bytes.Equal(got, cloneBefore) {
		t.Fatal("mutating the original changed the clone")
	}
}

func TestTelemetryCountsWork(t *testing.T) {
	ResetStats()
	h := newHarness(t)
	h.evolve(t)
	s := Snapshot()
	if s.GraphDeltas == 0 || s.PatternDeltas == 0 || s.CoverDeltas == 0 {
		t.Fatalf("delta counters did not move: %+v", s)
	}
	if s.VerdictsComputed == 0 {
		t.Fatalf("no verdicts computed: %+v", s)
	}
	if s.RowsTouched == 0 {
		t.Fatalf("no rows touched: %+v", s)
	}
}

// TestSyncFeaturesRebuildFallback forces churn large enough to trip the
// deterministic full-rebuild rule and checks the result still matches
// the oracle (and is counted).
func TestSyncFeaturesRebuildFallback(t *testing.T) {
	ResetStats()
	h := newHarness(t)
	// Replace most of the database with a brand-new label family: the
	// surviving feature set churns almost completely.
	var ins []*graph.Graph
	for i := 0; i < 8; i++ {
		ins = append(ins, graph.Star(h.nextID, "B", "F", "F", "F"))
		h.nextID++
	}
	h.applyBatch(t, ins, []int{0, 1, 2, 3, 4})
	h.checkOracle(t, "after churn-heavy batch")
	if Snapshot().Rebuilds == 0 {
		t.Skip("churn did not trip the rebuild threshold on this fixture")
	}
}
