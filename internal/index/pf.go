package index

import (
	"sort"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/ged"
	"github.com/midas-graph/midas/internal/iso"
	"github.com/midas-graph/midas/internal/tree"
)

// PF is the pattern–feature matrix of §6.1: one row per pattern edge,
// one column per feature *embedding* (a feature may contribute several
// embedding columns, unlike the per-graph columns of TG/EG). Entry (i,j)
// is 1 when edge i participates in embedding j.
type PF struct {
	// EdgeRows indexes pattern edges.
	EdgeRows []graph.Edge
	// Cols[j] describes embedding j: the feature key and the set of row
	// indices (pattern edges) the embedding uses.
	Cols []PFColumn
}

// PFColumn is one feature-embedding column.
type PFColumn struct {
	FeatureKey string
	EdgeRows   []int
}

// BuildPF enumerates embeddings of each feature into pattern p. The
// number of embeddings per feature is capped (countCap); features whose
// enumeration hits the cap are skipped, keeping downstream bounds sound.
func BuildPF(p *graph.Graph, features []*tree.Tree) *PF {
	pf := &PF{EdgeRows: append([]graph.Edge(nil), p.Edges()...)}
	rowOf := make(map[graph.Edge]int, len(pf.EdgeRows))
	for i, e := range pf.EdgeRows {
		rowOf[e] = i
	}
	for _, f := range features {
		embs := iso.AllEmbeddings(f.G, p, iso.Options{Limit: countCap, MaxSteps: countBudget})
		if len(embs) >= countCap {
			continue // truncated enumeration: excess counts untrustworthy
		}
		for _, m := range embs {
			var rows []int
			for _, fe := range f.G.Edges() {
				pe := graph.Edge{U: m[fe.U], V: m[fe.V]}.Canon()
				if r, ok := rowOf[pe]; ok {
					rows = append(rows, r)
				}
			}
			sort.Ints(rows)
			pf.Cols = append(pf.Cols, PFColumn{FeatureKey: f.Key, EdgeRows: rows})
		}
	}
	return pf
}

// embeddingStats summarises a PF matrix per feature: total embeddings
// and the maximum number of embeddings sharing one pattern edge.
func (pf *PF) embeddingStats() map[string]struct{ total, maxPerEdge int } {
	perEdge := make(map[string]map[int]int)
	total := make(map[string]int)
	for _, col := range pf.Cols {
		total[col.FeatureKey]++
		pe := perEdge[col.FeatureKey]
		if pe == nil {
			pe = make(map[int]int)
			perEdge[col.FeatureKey] = pe
		}
		for _, r := range col.EdgeRows {
			pe[r]++
		}
	}
	out := make(map[string]struct{ total, maxPerEdge int }, len(total))
	for k, t := range total {
		maxPE := 0
		for _, c := range perEdge[k] {
			if c > maxPE {
				maxPE = c
			}
		}
		if maxPE == 0 {
			maxPE = 1
		}
		out[k] = struct{ total, maxPerEdge int }{t, maxPE}
	}
	return out
}

// RelaxedEdges returns a sound lower bound n on the number of edges of a
// that must be "relaxed" before a's feature-embedding multiset fits
// inside b's (§6.1): destroying the excess embeddings of feature f
// requires at least ceil(excess_f / maxEmbeddingsPerEdge_f) relaxed
// edges, and a relaxed edge may serve every feature at once, so the
// bound is the maximum over features.
func RelaxedEdges(a, b *graph.Graph, features []*tree.Tree) int {
	pfa := BuildPF(a, features)
	statsA := pfa.embeddingStats()
	if len(statsA) == 0 {
		return 0
	}
	// Count embeddings in b only for features a exhibits.
	n := 0
	for key, sa := range statsA {
		f := featureByKey(features, key)
		if f == nil {
			continue
		}
		cb := iso.CountEmbeddings(f.G, b, iso.Options{Limit: countCap, MaxSteps: countBudget})
		if cb >= countCap {
			continue // truncated: cannot certify an excess
		}
		excess := sa.total - cb
		if excess <= 0 {
			continue
		}
		need := (excess + sa.maxPerEdge - 1) / sa.maxPerEdge
		if need > n {
			n = need
		}
	}
	return n
}

func featureByKey(features []*tree.Tree, key string) *tree.Tree {
	for _, f := range features {
		if f.Key == key {
			return f
		}
	}
	return nil
}

// TighterGED returns GED'_l(a,b) = GED_l(a,b) + n with n from
// RelaxedEdges, the pruning bound of Lemma 6.1 used when computing
// pattern-set diversity.
func (ix *Indices) TighterGED(a, b *graph.Graph) float64 {
	feats := make([]*tree.Tree, 0, len(ix.features)+len(ix.ife))
	for _, k := range ix.FeatureKeys() {
		feats = append(feats, ix.features[k])
	}
	for _, l := range ix.IFELabels() {
		feats = append(feats, ix.ife[l])
	}
	return ged.TighterLowerBound(a, b, RelaxedEdges(a, b, feats))
}
