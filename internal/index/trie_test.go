package index

import (
	"reflect"
	"testing"
)

func TestTrieInsertLookup(t *testing.T) {
	tr := NewTrie()
	tr.Insert([]string{"C", "O", "S", "$"}, "f2")
	tr.Insert([]string{"C", "O", "$"}, "f1")
	if key, ok := tr.Lookup([]string{"C", "O", "$"}); !ok || key != "f1" {
		t.Fatalf("Lookup = %q,%v", key, ok)
	}
	if key, ok := tr.Lookup([]string{"C", "O", "S", "$"}); !ok || key != "f2" {
		t.Fatalf("Lookup = %q,%v", key, ok)
	}
	if _, ok := tr.Lookup([]string{"C", "O"}); ok {
		t.Fatal("prefix should not be terminal")
	}
	if _, ok := tr.Lookup([]string{"X"}); ok {
		t.Fatal("absent token should not resolve")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
}

func TestTrieSharing(t *testing.T) {
	tr := NewTrie()
	tr.Insert([]string{"C", "O"}, "a")
	nodesBefore := tr.NodeCount()
	tr.Insert([]string{"C", "N"}, "b")
	// Only one new node: C is shared.
	if tr.NodeCount() != nodesBefore+1 {
		t.Fatalf("nodes = %d, want %d", tr.NodeCount(), nodesBefore+1)
	}
}

func TestTrieRemove(t *testing.T) {
	tr := NewTrie()
	tr.Insert([]string{"C", "O", "S"}, "long")
	tr.Insert([]string{"C"}, "short")
	if !tr.Remove([]string{"C", "O", "S"}) {
		t.Fatal("Remove failed")
	}
	if tr.Remove([]string{"C", "O", "S"}) {
		t.Fatal("double Remove succeeded")
	}
	if _, ok := tr.Lookup([]string{"C"}); !ok {
		t.Fatal("shared prefix terminal lost")
	}
	// Suffix nodes pruned: only root + C remain.
	if tr.NodeCount() != 2 {
		t.Fatalf("nodes = %d, want 2", tr.NodeCount())
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestTrieRemoveKeepsBranch(t *testing.T) {
	tr := NewTrie()
	tr.Insert([]string{"C", "O"}, "a")
	tr.Insert([]string{"C", "O", "S"}, "b")
	tr.Remove([]string{"C", "O"})
	if _, ok := tr.Lookup([]string{"C", "O", "S"}); !ok {
		t.Fatal("descendant terminal lost after prefix removal")
	}
}

func TestTrieDepthAndKeys(t *testing.T) {
	tr := NewTrie()
	tr.Insert([]string{"C", "O", "S"}, "b")
	tr.Insert([]string{"N"}, "a")
	if tr.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", tr.Depth())
	}
	if got := tr.Keys(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Keys = %v", got)
	}
}

func TestTrieEmpty(t *testing.T) {
	tr := NewTrie()
	if tr.Len() != 0 || tr.Depth() != 0 || tr.NodeCount() != 1 {
		t.Fatal("empty trie invariants broken")
	}
	if tr.Remove([]string{"X"}) {
		t.Fatal("Remove on empty trie should fail")
	}
}
