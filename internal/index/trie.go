// Package index implements the two MIDAS indices (paper §5.1): the
// FCT-Index — a token trie over the canonical strings of frequent closed
// trees and frequent edges, whose terminal nodes point at rows of the
// sparse trie–graph (TG) and trie–pattern (TP) embedding-count matrices —
// and the IFE-Index — edge–graph (EG) and edge–pattern (EP) matrices for
// infrequent edges. Together they answer "which data graphs can contain
// this pattern" without subgraph-isomorphism tests, powering fast scov
// estimation (§6.1) and the coverage-based candidate pruning of §5.2.
package index

import "sort"

// Trie is the token trie of the FCT-Index. Each vertex corresponds to a
// token of a canonical string (a vertex label or the sibling separator
// "$"); terminal vertices carry the feature key whose row the graph and
// pattern pointers reference.
type Trie struct {
	root  *trieNode
	nodes int
	terms int
}

type trieNode struct {
	children map[string]*trieNode
	terminal bool
	key      string // feature canonical key at terminal nodes
}

// NewTrie returns an empty trie.
func NewTrie() *Trie {
	return &Trie{root: &trieNode{children: make(map[string]*trieNode)}, nodes: 1}
}

// Insert adds a token sequence terminating at the given feature key.
// Re-inserting an existing sequence updates the key.
func (t *Trie) Insert(tokens []string, key string) {
	cur := t.root
	for _, tok := range tokens {
		next := cur.children[tok]
		if next == nil {
			next = &trieNode{children: make(map[string]*trieNode)}
			cur.children[tok] = next
			t.nodes++
		}
		cur = next
	}
	if !cur.terminal {
		t.terms++
	}
	cur.terminal = true
	cur.key = key
}

// Remove deletes a token sequence's terminal marker and prunes any
// childless suffix nodes. It reports whether the sequence was present.
func (t *Trie) Remove(tokens []string) bool {
	path := make([]*trieNode, 0, len(tokens)+1)
	cur := t.root
	path = append(path, cur)
	for _, tok := range tokens {
		next := cur.children[tok]
		if next == nil {
			return false
		}
		cur = next
		path = append(path, cur)
	}
	if !cur.terminal {
		return false
	}
	cur.terminal = false
	cur.key = ""
	t.terms--
	// Prune childless non-terminal suffix.
	for i := len(path) - 1; i > 0; i-- {
		node := path[i]
		if len(node.children) > 0 || node.terminal {
			break
		}
		delete(path[i-1].children, tokens[i-1])
		t.nodes--
	}
	return true
}

// Lookup returns the feature key at the end of the token sequence and
// whether the sequence terminates a feature.
func (t *Trie) Lookup(tokens []string) (string, bool) {
	cur := t.root
	for _, tok := range tokens {
		cur = cur.children[tok]
		if cur == nil {
			return "", false
		}
	}
	if !cur.terminal {
		return "", false
	}
	return cur.key, true
}

// Len returns the number of terminal (feature) entries.
func (t *Trie) Len() int { return t.terms }

// NodeCount returns the number of trie vertices including the root.
func (t *Trie) NodeCount() int { return t.nodes }

// Depth returns the maximum depth (m in Lemma 5.3).
func (t *Trie) Depth() int {
	var rec func(n *trieNode) int
	rec = func(n *trieNode) int {
		best := 0
		for _, c := range n.children {
			if d := 1 + rec(c); d > best {
				best = d
			}
		}
		return best
	}
	return rec(t.root)
}

// Keys returns the sorted feature keys stored in the trie.
func (t *Trie) Keys() []string {
	var out []string
	var rec func(n *trieNode)
	rec = func(n *trieNode) {
		if n.terminal {
			out = append(out, n.key)
		}
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(t.root)
	sort.Strings(out)
	return out
}
