package index

import (
	"bytes"
	"fmt"

	"github.com/midas-graph/midas/internal/sparse"
)

// Fingerprint returns a canonical byte serialisation of the full index
// state: the sorted feature and infrequent-edge row keys, the trie's
// terminal keys and size counters, and the four matrices as sorted
// (row, col, value) triplets. Two Indices with the same logical content
// produce identical bytes regardless of the operation history that
// built them, so the differential oracle can compare a delta-maintained
// index against a from-scratch Build with bytes.Equal.
func (ix *Indices) Fingerprint() []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "features %d\n", len(ix.features))
	for _, key := range ix.FeatureKeys() {
		fmt.Fprintf(&buf, "f %q\n", key)
	}
	fmt.Fprintf(&buf, "ife %d\n", len(ix.ife))
	for _, label := range ix.IFELabels() {
		fmt.Fprintf(&buf, "e %q\n", label)
	}
	fmt.Fprintf(&buf, "trie nodes=%d terms=%d\n", ix.Trie.NodeCount(), ix.Trie.Len())
	for _, key := range ix.Trie.Keys() {
		fmt.Fprintf(&buf, "t %q\n", key)
	}
	writeMatrix(&buf, "TG", ix.TG)
	writeMatrix(&buf, "TP", ix.TP)
	writeMatrix(&buf, "EG", ix.EG)
	writeMatrix(&buf, "EP", ix.EP)
	return buf.Bytes()
}

func writeMatrix(buf *bytes.Buffer, name string, m *sparse.Matrix) {
	ts := m.Triplets()
	fmt.Fprintf(buf, "%s nnz=%d\n", name, len(ts))
	for _, t := range ts {
		fmt.Fprintf(buf, "%q %d %d\n", t.Row, t.Col, t.Value)
	}
}
