package index

import (
	"bytes"
	"testing"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/tree"
)

// TestCloneIsolatedFromDeltaMaintenance protects the rollback
// invariant: a snapshot clone and the live index share no mutable
// structure, so driving the live copy through every delta-maintenance
// event — graph columns, pattern columns, feature churn (which inserts
// and removes trie rows) — must leave the clone's matrices, trie and
// cover sets bit-unchanged, and vice versa.
func TestCloneIsolatedFromDeltaMaintenance(t *testing.T) {
	d, set := fixture()
	p := graph.Path(100, "C", "O", "C")
	ix := Build(set, d, []*graph.Graph{p})
	ix.RegisterPattern(p)

	snapSet := set.Clone()
	clone := ix.Clone(snapSet)
	before := clone.Fingerprint()
	liveBefore := ix.Fingerprint()
	if !bytes.Equal(before, liveBefore) {
		t.Fatal("clone does not reproduce the original bytes")
	}
	coverBefore := clone.CoverSet(p, d)

	// Mutate the live index through the full delta-event alphabet.
	ins := []*graph.Graph{
		graph.Path(10, "C", "N"),
		graph.Path(11, "C", "N"),
		graph.Path(12, "C", "N", "C"),
	}
	after, err := d.ApplyToCopy(graph.Update{Insert: ins, Delete: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	set.Update(after, graph.Update{Insert: ins, Delete: []int{1}})
	ix.RemoveGraph(1)
	for _, g := range ins {
		ix.AddGraph(g)
	}
	ix.UnregisterPattern(100)
	p2 := graph.Path(101, "C", "N")
	ix.RegisterPattern(p2)
	// C.N turns frequent here: SyncFeatures inserts new trie rows and
	// deletes the IFE row — the churn that motivates this regression.
	if churn := ix.SyncFeatures(set, after, []*graph.Graph{p2}); churn.Empty() {
		t.Fatal("fixture produced no feature churn; the test lost its teeth")
	}

	if got := clone.Fingerprint(); !bytes.Equal(got, before) {
		t.Fatalf("delta maintenance on the live index mutated the clone\nbefore:\n%s\nafter:\n%s", before, got)
	}
	cover := clone.CoverSet(p, d)
	if len(cover) != len(coverBefore) {
		t.Fatalf("clone cover set changed: %v -> %v", coverBefore, cover)
	}
	for id := range coverBefore {
		if _, ok := cover[id]; !ok {
			t.Fatalf("clone cover set changed: %v -> %v", coverBefore, cover)
		}
	}

	// And the other direction: mutating the clone leaves the live index
	// untouched.
	liveNow := ix.Fingerprint()
	clone.AddGraph(graph.Path(50, "C", "O", "C"))
	clone.UnregisterPattern(100)
	clone.RegisterPattern(graph.Path(102, "C", "O"))
	clone.Trie.Insert([]string{"zz", "fabricated"}, "zz-fabricated-key")
	if got := ix.Fingerprint(); !bytes.Equal(got, liveNow) {
		t.Fatal("mutating the clone changed the live index")
	}
}

// TestTrieCloneDeep pins Trie.Clone as a structural deep copy: inserts
// and removals on either side are invisible to the other.
func TestTrieCloneDeep(t *testing.T) {
	d, set := fixture()
	ix := Build(set, d, nil)
	orig := ix.Trie
	cl := orig.Clone()
	if orig.Len() == 0 {
		t.Fatal("fixture trie empty")
	}
	// Use a real feature's token path so Remove prunes shared suffixes.
	var tokens []string
	var key string
	for _, fk := range ix.FeatureKeys() {
		f := ix.Feature(fk)
		tokens = tree.CanonicalTokens(f.G)
		key = fk
		break
	}
	nodes, terms := orig.NodeCount(), orig.Len()

	if !cl.Remove(tokens) {
		t.Fatalf("clone missing fixture key %q", key)
	}
	cl.Insert([]string{"only", "in", "clone"}, "only-in-clone")
	if orig.NodeCount() != nodes || orig.Len() != terms {
		t.Fatalf("clone mutation changed original: nodes %d->%d terms %d->%d", nodes, orig.NodeCount(), terms, orig.Len())
	}
	if got, ok := orig.Lookup(tokens); !ok || got != key {
		t.Fatalf("removed key vanished from original: %q %v", got, ok)
	}

	orig.Insert([]string{"only", "in", "original"}, "only-in-original")
	if _, ok := cl.Lookup([]string{"only", "in", "original"}); ok {
		t.Fatal("original insert leaked into clone")
	}
}
