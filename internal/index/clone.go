package index

import "github.com/midas-graph/midas/internal/tree"

// Clone returns a deep copy of the trie.
func (t *Trie) Clone() *Trie {
	return &Trie{root: t.root.clone(), nodes: t.nodes, terms: t.terms}
}

func (n *trieNode) clone() *trieNode {
	c := &trieNode{
		children: make(map[string]*trieNode, len(n.children)),
		terminal: n.terminal,
		key:      n.key,
	}
	for tok, child := range n.children {
		c.children[tok] = child.clone()
	}
	return c
}

// Clone returns a deep copy of the indices for transactional rollback.
// Feature rows are re-pointed at the trees of the given set — the
// snapshot copy of the live tree set — so that posting-list mutations
// on the live set cannot reach the cloned indices. Rows whose tree is
// absent from the set (which should not happen while SyncFeatures keeps
// them aligned) fall back to the original pointer.
func (ix *Indices) Clone(set *tree.Set) *Indices {
	out := &Indices{
		Trie:     ix.Trie.Clone(),
		TG:       ix.TG.Clone(),
		TP:       ix.TP.Clone(),
		EG:       ix.EG.Clone(),
		EP:       ix.EP.Clone(),
		features: make(map[string]*tree.Tree, len(ix.features)),
		ife:      make(map[string]*tree.Tree, len(ix.ife)),
	}
	for key, f := range ix.features {
		if t := set.Lookup(key); t != nil {
			f = t
		}
		out.features[key] = f
	}
	for label, f := range ix.ife {
		if t := set.EdgeTree(label); t != nil {
			f = t
		}
		out.ife[label] = f
	}
	return out
}
