package index

import (
	"sort"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/iso"
	"github.com/midas-graph/midas/internal/sparse"
	"github.com/midas-graph/midas/internal/tree"
)

// Embedding counts stored in the matrices are capped: the containment
// filter only needs "count(f,p) <= count(f,G)", which capping preserves
// (min(x,L) <= min(y,L) whenever x <= y), and exact large counts are
// expensive to enumerate.
const (
	countCap    = 64
	countBudget = 100000
)

// Indices bundles the FCT-Index and IFE-Index of §5.1.
type Indices struct {
	// Trie over canonical strings of FCTs and frequent edges.
	Trie *Trie
	// TG / TP: feature row -> graph / pattern column -> embedding count.
	TG *sparse.Matrix
	TP *sparse.Matrix
	// EG / EP: infrequent-edge row -> graph / pattern column.
	EG *sparse.Matrix
	EP *sparse.Matrix

	// features maps a row key to the feature tree it indexes.
	features map[string]*tree.Tree
	// ife maps an infrequent-edge row key (edge label) to its tree.
	ife map[string]*tree.Tree
}

// CountFeature returns the (capped) number of embeddings of feature f in
// g. Single-edge features count label-matching edges directly.
func CountFeature(f *tree.Tree, g *graph.Graph) int {
	if f.G.Size() == 1 {
		e := f.G.Edges()[0]
		label := f.G.EdgeLabel(e.U, e.V)
		n := 0
		for _, ge := range g.Edges() {
			if g.EdgeLabel(ge.U, ge.V) == label {
				n++
				if n >= countCap {
					break
				}
			}
		}
		return n
	}
	return iso.CountEmbeddings(f.G, g, iso.Options{Limit: countCap, MaxSteps: countBudget})
}

// Build constructs both indices from the mined tree set over database
// db and the current canned patterns (columns keyed by pattern graph
// ID).
func Build(set *tree.Set, db *graph.Database, patterns []*graph.Graph) *Indices {
	ix := &Indices{
		Trie:     NewTrie(),
		TG:       sparse.New(),
		TP:       sparse.New(),
		EG:       sparse.New(),
		EP:       sparse.New(),
		features: make(map[string]*tree.Tree),
		ife:      make(map[string]*tree.Tree),
	}
	for _, f := range fctFeatures(set) {
		ix.addFeature(f, db, patterns)
	}
	for _, f := range set.InfrequentEdges() {
		ix.addIFE(f, patterns)
	}
	return ix
}

// fctFeatures returns the FCT-Index rows: frequent closed trees plus
// frequent edges, deduplicated by canonical key.
func fctFeatures(set *tree.Set) []*tree.Tree {
	seen := make(map[string]struct{})
	var out []*tree.Tree
	for _, f := range set.FrequentClosed() {
		if _, dup := seen[f.Key]; !dup {
			seen[f.Key] = struct{}{}
			out = append(out, f)
		}
	}
	for _, f := range set.FrequentEdges() {
		if _, dup := seen[f.Key]; !dup {
			seen[f.Key] = struct{}{}
			out = append(out, f)
		}
	}
	return out
}

func (ix *Indices) addFeature(f *tree.Tree, db *graph.Database, patterns []*graph.Graph) {
	ix.features[f.Key] = f
	ix.Trie.Insert(tree.CanonicalTokens(f.G), f.Key)
	for id := range f.Post {
		if g := db.Get(id); g != nil {
			ix.TG.Set(f.Key, id, CountFeature(f, g))
		}
	}
	for _, p := range patterns {
		if c := CountFeature(f, p); c > 0 {
			ix.TP.Set(f.Key, p.ID, c)
		}
	}
}

func (ix *Indices) addIFE(f *tree.Tree, patterns []*graph.Graph) {
	fe := f.G.Edges()[0]
	label := f.G.EdgeLabel(fe.U, fe.V)
	ix.ife[label] = f
	for id := range f.Post {
		// For edges the posting list is exact; store the occurrence
		// count lazily as 1 (presence) — EG consumers need candidacy,
		// not multiplicity, and recounting requires the graph itself.
		ix.EG.Set(label, id, 1)
	}
	for _, p := range patterns {
		if c := CountFeature(f, p); c > 0 {
			ix.EP.Set(label, p.ID, c)
		}
	}
}

// FeatureKeys returns the sorted FCT-Index row keys.
func (ix *Indices) FeatureKeys() []string {
	out := make([]string, 0, len(ix.features))
	for k := range ix.features {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Feature returns the indexed feature with the given key, or nil.
func (ix *Indices) Feature(key string) *tree.Tree { return ix.features[key] }

// IFELabels returns the sorted infrequent-edge row keys.
func (ix *Indices) IFELabels() []string {
	out := make([]string, 0, len(ix.ife))
	for k := range ix.ife {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PatternProfile computes the feature-count column of an arbitrary
// pattern graph (not necessarily registered): FCT-Index feature counts
// and infrequent-edge counts.
func (ix *Indices) PatternProfile(p *graph.Graph) (fct map[string]int, ife map[string]int) {
	fct = make(map[string]int)
	for key, f := range ix.features {
		if c := CountFeature(f, p); c > 0 {
			fct[key] = c
		}
	}
	ife = make(map[string]int)
	for label, f := range ix.ife {
		if c := CountFeature(f, p); c > 0 {
			ife[label] = c
		}
	}
	return fct, ife
}

// CandidateGraphs returns the IDs of data graphs that may contain p
// according to the indices: every graph whose TG/EG column dominates p's
// feature profile. Graphs lacking any of p's features are excluded; the
// result is a superset of the true cover set (§6.1's (p,G) candidate
// pairs).
//
// universe is the full set of graph IDs (used when p exhibits no indexed
// feature, in which case nothing can be pruned).
func (ix *Indices) CandidateGraphs(p *graph.Graph, universe []int) []int {
	fct, ife := ix.PatternProfile(p)
	return ix.CandidatesOf(fct, ife, universe)
}

// CandidatesOf is CandidateGraphs for a feature profile that is already
// materialised — e.g. a registered pattern's TP/EP column, which the
// delta network reads back instead of re-counting embeddings. The
// dominance semantics are identical to CandidateGraphs.
func (ix *Indices) CandidatesOf(fct, ife map[string]int, universe []int) []int {
	if len(fct) == 0 && len(ife) == 0 {
		return append([]int(nil), universe...)
	}
	var cand map[int]struct{}
	intersect := func(row map[int]int, need int, presenceOnly bool) {
		keep := make(map[int]struct{})
		for id, c := range row {
			if presenceOnly || c >= need {
				if cand == nil {
					keep[id] = struct{}{}
				} else if _, ok := cand[id]; ok {
					keep[id] = struct{}{}
				}
			}
		}
		cand = keep
	}
	// Deterministic iteration order for reproducibility.
	keys := make([]string, 0, len(fct))
	for k := range fct {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		intersect(ix.TG.Row(k), fct[k], false)
	}
	labels := make([]string, 0, len(ife))
	for l := range ife {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		// EG stores presence; an infrequent edge in p requires presence
		// in G.
		intersect(ix.EG.Row(l), 1, true)
	}
	out := make([]int, 0, len(cand))
	for id := range cand {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// ColumnDominates reports whether data-graph column id dominates the
// given feature profile — the single-column candidacy test the delta
// network applies to an inserted graph. It agrees with CandidatesOf:
// id is a candidate of (fct, ife) iff ColumnDominates(fct, ife, id),
// except for the empty profile, where CandidatesOf falls back to the
// universe (ColumnDominates returns true there too).
func (ix *Indices) ColumnDominates(fct, ife map[string]int, id int) bool {
	for key, need := range fct {
		if ix.TG.Get(key, id) < need {
			return false
		}
	}
	for label := range ife {
		if ix.EG.Get(label, id) < 1 {
			return false
		}
	}
	return true
}

// Contains is the exact verification step applied to every candidate
// of CoverSet: subgraph isomorphism under the index verification
// budget. Exposed so incremental cover-set maintenance (the delta
// network) applies byte-for-byte the same verdict function the
// from-scratch path does.
func Contains(p, g *graph.Graph) bool {
	return iso.HasSubgraph(p, g, iso.Options{MaxSteps: countBudget})
}

// CoverSet returns G_scov(p): the IDs of graphs in db containing p,
// computed with index filtering followed by exact verification.
func (ix *Indices) CoverSet(p *graph.Graph, db *graph.Database) map[int]struct{} {
	universe := make([]int, 0, db.Len())
	for _, g := range db.Graphs() {
		universe = append(universe, g.ID)
	}
	out := make(map[int]struct{})
	for _, id := range ix.CandidateGraphs(p, universe) {
		g := db.Get(id)
		if g != nil && Contains(p, g) {
			out[id] = struct{}{}
		}
	}
	return out
}

// Scov returns scov(p, db) = |G_p| / |db|.
func (ix *Indices) Scov(p *graph.Graph, db *graph.Database) float64 {
	if db.Len() == 0 {
		return 0
	}
	return float64(len(ix.CoverSet(p, db))) / float64(db.Len())
}

// RegisterPattern adds pattern columns to TP and EP (index maintenance
// step 3 for patterns).
func (ix *Indices) RegisterPattern(p *graph.Graph) {
	for key, f := range ix.features {
		if c := CountFeature(f, p); c > 0 {
			ix.TP.Set(key, p.ID, c)
		}
	}
	for label, f := range ix.ife {
		if c := CountFeature(f, p); c > 0 {
			ix.EP.Set(label, p.ID, c)
		}
	}
}

// UnregisterPattern removes a pattern column (maintenance step 4).
func (ix *Indices) UnregisterPattern(patternID int) {
	ix.TP.DeleteCol(patternID)
	ix.EP.DeleteCol(patternID)
}

// AddGraph adds a data-graph column (maintenance step 3) by counting the
// indexed features it contains.
func (ix *Indices) AddGraph(g *graph.Graph) {
	for key, f := range ix.features {
		if c := CountFeature(f, g); c > 0 {
			ix.TG.Set(key, g.ID, c)
		}
	}
	for label, f := range ix.ife {
		if c := CountFeature(f, g); c > 0 {
			ix.EG.Set(label, g.ID, 1)
		}
	}
}

// RemoveGraph removes a data-graph column (maintenance step 4).
func (ix *Indices) RemoveGraph(id int) {
	ix.TG.DeleteCol(id)
	ix.EG.DeleteCol(id)
}

// Churn summarises the row turnover of one SyncFeatures call: which
// FCT-Index feature rows and IFE-Index edge rows were added or removed.
// The delta network consumes it to reconcile materialised per-pattern
// state against exactly the rows that changed; all four lists are
// sorted so consumers iterate deterministically.
type Churn struct {
	AddedFeatures   []string
	RemovedFeatures []string
	AddedIFE        []string
	RemovedIFE      []string
}

// Empty reports whether the sync changed no rows.
func (c Churn) Empty() bool {
	return len(c.AddedFeatures) == 0 && len(c.RemovedFeatures) == 0 &&
		len(c.AddedIFE) == 0 && len(c.RemovedIFE) == 0
}

// Size returns the total number of rows added or removed.
func (c Churn) Size() int {
	return len(c.AddedFeatures) + len(c.RemovedFeatures) + len(c.AddedIFE) + len(c.RemovedIFE)
}

// SyncFeatures reconciles rows after FCT maintenance (maintenance steps
// 1–2): features that stopped being frequent/closed lose their rows and
// trie entries; new features gain rows computed over db and patterns.
// It returns the churn summary of the reconcile.
func (ix *Indices) SyncFeatures(set *tree.Set, db *graph.Database, patterns []*graph.Graph) Churn {
	var churn Churn
	want := make(map[string]*tree.Tree)
	for _, f := range fctFeatures(set) {
		want[f.Key] = f
	}
	for key, f := range ix.features {
		if _, keep := want[key]; !keep {
			ix.Trie.Remove(tree.CanonicalTokens(f.G))
			ix.TG.DeleteRow(key)
			ix.TP.DeleteRow(key)
			delete(ix.features, key)
			churn.RemovedFeatures = append(churn.RemovedFeatures, key)
		}
	}
	for key, f := range want {
		if _, have := ix.features[key]; !have {
			ix.addFeature(f, db, patterns)
			churn.AddedFeatures = append(churn.AddedFeatures, key)
		} else {
			// Refresh the posting-derived TG row: supports may have
			// shifted under the batch update.
			ix.features[key] = f
		}
	}
	wantIFE := make(map[string]*tree.Tree)
	for _, f := range set.InfrequentEdges() {
		fe := f.G.Edges()[0]
		wantIFE[f.G.EdgeLabel(fe.U, fe.V)] = f
	}
	for label := range ix.ife {
		if _, keep := wantIFE[label]; !keep {
			ix.EG.DeleteRow(label)
			ix.EP.DeleteRow(label)
			delete(ix.ife, label)
			churn.RemovedIFE = append(churn.RemovedIFE, label)
		}
	}
	for label, f := range wantIFE {
		if _, have := ix.ife[label]; !have {
			ix.addIFE(f, patterns)
			churn.AddedIFE = append(churn.AddedIFE, label)
		} else {
			ix.ife[label] = f
		}
	}
	sort.Strings(churn.AddedFeatures)
	sort.Strings(churn.RemovedFeatures)
	sort.Strings(churn.AddedIFE)
	sort.Strings(churn.RemovedIFE)
	return churn
}
