package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/ged"
	"github.com/midas-graph/midas/internal/iso"
	"github.com/midas-graph/midas/internal/tree"
)

// fixture: chains of C-O-C dominate; a rare C-N edge appears once.
func fixture() (*graph.Database, *tree.Set) {
	d := graph.DatabaseOf(
		graph.Path(1, "C", "O", "C"),
		graph.Path(2, "C", "O", "C"),
		graph.Path(3, "C", "O", "C", "O"),
		graph.Path(4, "C", "N"),
	)
	return d, tree.Mine(d, 0.5, 3)
}

func TestBuildPopulatesMatrices(t *testing.T) {
	d, set := fixture()
	p := graph.Path(100, "C", "O", "C")
	ix := Build(set, d, []*graph.Graph{p})
	if ix.Trie.Len() == 0 {
		t.Fatal("trie empty")
	}
	if ix.TG.NNZ() == 0 {
		t.Fatal("TG empty")
	}
	if ix.TP.NNZ() == 0 {
		t.Fatal("TP empty: the pattern contains frequent features")
	}
	// Infrequent edge C.N must be in EG with graph 4.
	if ix.EG.Get("C.N", 4) != 1 {
		t.Fatalf("EG(C.N, 4) = %d, want 1", ix.EG.Get("C.N", 4))
	}
}

func TestCountFeatureEdge(t *testing.T) {
	f := &tree.Tree{G: graph.Path(0, "C", "O"), Key: "co"}
	g := graph.Path(1, "C", "O", "C")
	if got := CountFeature(f, g); got != 2 {
		t.Fatalf("edge occurrences = %d, want 2", got)
	}
}

func TestCandidateGraphsSupersetOfTruth(t *testing.T) {
	d, set := fixture()
	ix := Build(set, d, nil)
	universe := d.IDs()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPattern(r)
		cand := map[int]struct{}{}
		for _, id := range ix.CandidateGraphs(p, universe) {
			cand[id] = struct{}{}
		}
		for _, g := range d.Graphs() {
			if iso.HasSubgraph(p, g, iso.Options{}) {
				if _, ok := cand[g.ID]; !ok {
					return false // filter dismissed a true match
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func randomPattern(r *rand.Rand) *graph.Graph {
	labels := []string{"C", "O", "N"}
	n := 2 + r.Intn(4)
	g := graph.New(999)
	for i := 0; i < n; i++ {
		g.AddVertex(labels[r.Intn(len(labels))])
	}
	for i := 1; i < n; i++ {
		g.AddEdge(i, r.Intn(i))
	}
	g.SortAdjacency()
	return g
}

func TestCoverSetExact(t *testing.T) {
	d, set := fixture()
	ix := Build(set, d, nil)
	p := graph.Path(100, "C", "O", "C")
	cover := ix.CoverSet(p, d)
	want := map[int]bool{1: true, 2: true, 3: true}
	if len(cover) != len(want) {
		t.Fatalf("cover = %v, want graphs 1,2,3", cover)
	}
	for id := range want {
		if _, ok := cover[id]; !ok {
			t.Fatalf("graph %d missing from cover", id)
		}
	}
	if got := ix.Scov(p, d); got != 0.75 {
		t.Fatalf("scov = %v, want 0.75", got)
	}
}

func TestCoverSetPruningMatchesBruteForce(t *testing.T) {
	d, set := fixture()
	ix := Build(set, d, nil)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPattern(r)
		cover := ix.CoverSet(p, d)
		for _, g := range d.Graphs() {
			truth := iso.HasSubgraph(p, g, iso.Options{})
			_, got := cover[g.ID]
			if truth != got {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterUnregisterPattern(t *testing.T) {
	d, set := fixture()
	ix := Build(set, d, nil)
	p := graph.Path(7, "C", "O", "C")
	ix.RegisterPattern(p)
	if ix.TP.Col(7) == nil || len(ix.TP.Col(7)) == 0 {
		t.Fatal("pattern column missing after register")
	}
	ix.UnregisterPattern(7)
	if len(ix.TP.Col(7)) != 0 || len(ix.EP.Col(7)) != 0 {
		t.Fatal("pattern column present after unregister")
	}
}

func TestAddRemoveGraph(t *testing.T) {
	d, set := fixture()
	ix := Build(set, d, nil)
	g := graph.Path(50, "C", "O", "C")
	ix.AddGraph(g)
	found := false
	for _, key := range ix.FeatureKeys() {
		if ix.TG.Get(key, 50) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("new graph has no TG entries")
	}
	ix.RemoveGraph(50)
	for _, key := range ix.FeatureKeys() {
		if ix.TG.Get(key, 50) != 0 {
			t.Fatal("TG entries remain after RemoveGraph")
		}
	}
}

func TestSyncFeatures(t *testing.T) {
	d, set := fixture()
	ix := Build(set, d, nil)
	before := len(ix.FeatureKeys())
	if before == 0 {
		t.Fatal("no features indexed")
	}

	// Make C.N frequent by adding three more C-N graphs; sync must move
	// it from the IFE index into the FCT index.
	var ins []*graph.Graph
	for i := 0; i < 3; i++ {
		ins = append(ins, graph.Path(10+i, "C", "N"))
	}
	after, err := d.ApplyToCopy(graph.Update{Insert: ins})
	if err != nil {
		t.Fatal(err)
	}
	set.Add(after, ins)
	ix.SyncFeatures(set, after, nil)

	for _, l := range ix.IFELabels() {
		if l == "C.N" {
			t.Fatal("C.N still indexed as infrequent")
		}
	}
	cnKey := tree.CanonicalKey(graph.Path(0, "C", "N"))
	if ix.Feature(cnKey) == nil {
		t.Fatal("C.N not promoted to FCT-Index")
	}
}

func TestBuildPF(t *testing.T) {
	p := graph.Path(0, "C", "O", "C")
	co := &tree.Tree{G: graph.Path(0, "C", "O"), Key: "co"}
	pf := BuildPF(p, []*tree.Tree{co})
	if len(pf.EdgeRows) != 2 {
		t.Fatalf("edge rows = %d, want 2", len(pf.EdgeRows))
	}
	if len(pf.Cols) != 2 {
		t.Fatalf("embedding cols = %d, want 2 (two C-O embeddings)", len(pf.Cols))
	}
	for _, col := range pf.Cols {
		if col.FeatureKey != "co" || len(col.EdgeRows) != 1 {
			t.Fatalf("bad column %+v", col)
		}
	}
}

func TestRelaxedEdges(t *testing.T) {
	co := &tree.Tree{G: graph.Path(0, "C", "O"), Key: tree.CanonicalKey(graph.Path(0, "C", "O"))}
	a := graph.Path(1, "C", "O", "C") // two C-O embeddings
	b := graph.Path(2, "C", "O")      // one
	n := RelaxedEdges(a, b, []*tree.Tree{co})
	if n != 1 {
		t.Fatalf("RelaxedEdges = %d, want 1", n)
	}
	if RelaxedEdges(b, a, []*tree.Tree{co}) != 0 {
		t.Fatal("no excess in the other direction")
	}
}

func TestTighterGEDDominatesPlainBound(t *testing.T) {
	d, set := fixture()
	ix := Build(set, d, nil)
	a := graph.Path(1, "C", "O", "C", "O", "C")
	b := graph.Path(2, "C", "O")
	plain := ged.LowerBoundLabel(a, b)
	tight := ix.TighterGED(a, b)
	if tight < plain {
		t.Fatalf("GED'_l %v < GED_l %v", tight, plain)
	}
}

// TestMaintenanceSequence drives the indices through a realistic
// sequence — graphs added and removed, features promoted and demoted,
// patterns registered and swapped — and checks consistency with a
// freshly built index at the end.
func TestMaintenanceSequence(t *testing.T) {
	d := graph.DatabaseOf(
		graph.Path(1, "C", "O", "C"),
		graph.Path(2, "C", "O", "C"),
		graph.Path(3, "C", "N"),
	)
	set := tree.Mine(d, 0.5, 3)
	p1 := graph.Path(100, "C", "O", "C")
	ix := Build(set, d, []*graph.Graph{p1})

	// Round 1: add graphs that promote C.N to frequent.
	ins := []*graph.Graph{graph.Path(4, "C", "N"), graph.Path(5, "C", "N", "C")}
	after, err := d.ApplyToCopy(graph.Update{Insert: ins})
	if err != nil {
		t.Fatal(err)
	}
	set.Add(after, ins)
	for _, g := range ins {
		ix.AddGraph(g)
	}
	ix.SyncFeatures(set, after, []*graph.Graph{p1})

	// Round 2: remove a graph and swap the pattern.
	after2, err := after.ApplyToCopy(graph.Update{Delete: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	set.Remove(after2.Len(), []int{1})
	ix.RemoveGraph(1)
	p2 := graph.Path(101, "C", "N", "C")
	ix.UnregisterPattern(100)
	ix.RegisterPattern(p2)
	ix.SyncFeatures(set, after2, []*graph.Graph{p2})

	// Consistency: the maintained index answers cover sets identically
	// to one built from scratch over the final state.
	fresh := Build(tree.Mine(after2, 0.5, 3), after2, []*graph.Graph{p2})
	for _, q := range []*graph.Graph{
		graph.Path(0, "C", "O"),
		graph.Path(0, "C", "N"),
		graph.Path(0, "C", "N", "C"),
		graph.Path(0, "C", "O", "C"),
	} {
		a := ix.CoverSet(q, after2)
		b := fresh.CoverSet(q, after2)
		if len(a) != len(b) {
			t.Fatalf("cover sets diverge for %v: %v vs %v", q, a, b)
		}
		for id := range a {
			if _, ok := b[id]; !ok {
				t.Fatalf("cover sets diverge for %v: %v vs %v", q, a, b)
			}
		}
	}
	// No stale columns.
	for _, col := range ix.TG.Cols() {
		if !after2.Has(col) {
			t.Fatalf("stale TG column %d", col)
		}
	}
	if len(ix.TP.Col(100)) != 0 {
		t.Fatal("stale TP column for swapped-out pattern")
	}
}
