package backoff

import (
	"testing"
	"time"
)

func TestDelayTable(t *testing.T) {
	const base = 100 * time.Millisecond
	cases := []struct {
		name    string
		base    time.Duration
		key     string
		attempt int
		min     time.Duration // inclusive lower bound (the capped exponential)
		max     time.Duration // exclusive upper bound (bound + 25% jitter)
	}{
		{"zero base", 0, "a", 3, 0, 1},
		{"attempt zero", base, "a", 0, 0, 1},
		{"negative attempt", base, "a", -2, 0, 1},
		{"first attempt", base, "a", 1, base, base + base/4},
		{"second attempt", base, "a", 2, 2 * base, 2*base + 2*base/4},
		{"growth caps at 32x", base, "a", 6, 32 * base, 32*base + 32*base/4},
		{"beyond the cap stays capped", base, "a", 60, 32 * base, 32*base + 32*base/4},
		{"tiny base skips jitter", 3, "a", 1, 3, 4},
	}
	for _, c := range cases {
		got := Delay(c.base, c.key, c.attempt)
		if got < c.min || got >= c.max {
			t.Errorf("%s: Delay(%v, %q, %d) = %v, want in [%v, %v)",
				c.name, c.base, c.key, c.attempt, got, c.min, c.max)
		}
	}
}

func TestDelayDeterministic(t *testing.T) {
	const base = 50 * time.Millisecond
	for attempt := 1; attempt <= 8; attempt++ {
		a := Delay(base, "batch-7.graphs", attempt)
		b := Delay(base, "batch-7.graphs", attempt)
		if a != b {
			t.Fatalf("attempt %d: jitter is not deterministic: %v vs %v", attempt, a, b)
		}
	}
}

func TestDelayJitterSpreadsKeys(t *testing.T) {
	// Different keys must not retry in lockstep: at least two of a
	// handful of keys should land on different delays at the same
	// attempt. (The jitter is a hash — collisions are possible for any
	// two keys, vanishingly unlikely across five.)
	const base = time.Second
	keys := []string{"a", "b", "c", "d", "e"}
	seen := map[time.Duration]bool{}
	for _, k := range keys {
		seen[Delay(base, k, 1)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("all %d keys produced the same delay; jitter is not spreading", len(keys))
	}
}

func TestScanTable(t *testing.T) {
	const base = 100 * time.Millisecond
	cases := []struct {
		base     time.Duration
		failures int
		want     time.Duration
	}{
		{0, 3, 0},
		{base, 0, 0},
		{base, -1, 0},
		{base, 1, base},
		{base, 2, 2 * base},
		{base, 6, 32 * base},
		{base, 100, 32 * base},
	}
	for _, c := range cases {
		if got := Scan(c.base, c.failures); got != c.want {
			t.Errorf("Scan(%v, %d) = %v, want %v", c.base, c.failures, got, c.want)
		}
	}
}
