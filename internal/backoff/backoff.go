// Package backoff is the repo's one retry-delay policy: capped
// exponential growth with deterministic per-key jitter. The spool
// watcher (PR 4), the maintenance pipeline (PR 6) and the replication
// loop all retry transient failures on unattended paths, and all three
// need the same two properties: consecutive failures must spread out
// (exponential growth, capped so a poison input cannot push the delay
// unboundedly), and simultaneously-failing work items must not retry
// in lockstep (jitter) while staying reproducible in tests and crash
// recovery (the jitter is a pure function of the key and attempt
// number, never a live RNG).
package backoff

import (
	"fmt"
	"hash/crc32"
	"time"
)

// maxShift caps the exponential growth at base << maxShift (32×).
const maxShift = 5

// Delay returns the wait before the key'd work item's next attempt
// after its attempt'th consecutive failure (attempt counts from 1):
// exponential growth from base, capped at 32×, plus a deterministic
// jitter of up to 25% of the capped delay derived from (key, attempt).
// A base <= 0 or attempt < 1 means retry immediately.
func Delay(base time.Duration, key string, attempt int) time.Duration {
	if base <= 0 || attempt < 1 {
		return 0
	}
	shift := attempt - 1
	if shift > maxShift {
		shift = maxShift
	}
	d := base << shift
	span := int64(d / 4)
	if span <= 0 {
		return d
	}
	h := crc32.ChecksumIEEE([]byte(fmt.Sprintf("%s#%d", key, attempt)))
	return d + time.Duration(int64(h)%span)
}

// Scan returns the keyless scan-level delay after failures consecutive
// failing scans: the same capped exponential schedule without jitter
// (one scanner has nothing to desynchronise from). Zero failures or a
// base <= 0 mean no delay.
func Scan(base time.Duration, failures int) time.Duration {
	if base <= 0 || failures <= 0 {
		return 0
	}
	shift := failures - 1
	if shift > maxShift {
		shift = maxShift
	}
	return base << shift
}
