package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanStd(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if !almostEq(Mean(xs), 2.5) {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if !almostEq(StdDev(xs), math.Sqrt(1.25)) {
		t.Fatalf("StdDev = %v", StdDev(xs))
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty slices should give 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty slices should give 0")
	}
}

func TestEuclidean(t *testing.T) {
	if !almostEq(Euclidean([]float64{0, 0}, []float64{3, 4}), 5) {
		t.Fatal("3-4-5 failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	Euclidean([]float64{1}, []float64{1, 2})
}

func TestL1(t *testing.T) {
	if !almostEq(L1([]float64{1, 2}, []float64{3, 0}), 4) {
		t.Fatal("L1 failed")
	}
}

func TestKSIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if KSStatistic(a, a) != 0 {
		t.Fatalf("KS(a,a) = %v, want 0", KSStatistic(a, a))
	}
	if !KSSimilar(a, a, 0.05) {
		t.Fatal("identical samples should be similar")
	}
}

func TestKSDisjoint(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if !almostEq(KSStatistic(a, b), 1) {
		t.Fatalf("KS disjoint = %v, want 1", KSStatistic(a, b))
	}
}

func TestKSKnown(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{1, 2, 3, 4}
	// F1 jumps to 1 at 2; F2(2) = 0.5 -> D = 0.5.
	if !almostEq(KSStatistic(a, b), 0.5) {
		t.Fatalf("KS = %v, want 0.5", KSStatistic(a, b))
	}
}

func TestKSSimilarRejects(t *testing.T) {
	var a, b []float64
	for i := 0; i < 100; i++ {
		a = append(a, float64(i))
		b = append(b, float64(i)+100)
	}
	if KSSimilar(a, b, 0.05) {
		t.Fatal("shifted distributions should be rejected")
	}
}

func TestKSEmpty(t *testing.T) {
	if KSStatistic(nil, []float64{1}) != 0 {
		t.Fatal("empty sample should give 0")
	}
	if !KSSimilar(nil, []float64{1}, 0.05) {
		t.Fatal("empty sample should be vacuously similar")
	}
}

func TestKSPropertyBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := make([]float64, 1+r.Intn(20))
		b := make([]float64, 1+r.Intn(20))
		for i := range a {
			a[i] = r.NormFloat64()
		}
		for i := range b {
			b[i] = r.NormFloat64()
		}
		d := KSStatistic(a, b)
		if d < 0 || d > 1 {
			return false
		}
		// Symmetry.
		return almostEq(d, KSStatistic(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	for i, c := range h {
		if c != 2 {
			t.Fatalf("bin %d = %d, want 2 (h=%v)", i, c, h)
		}
	}
	h2 := Histogram([]float64{5, 5, 5}, 3)
	if h2[0] != 3 {
		t.Fatalf("constant data histogram = %v", h2)
	}
	if got := Histogram(nil, 3); got[0] != 0 {
		t.Fatal("empty histogram should be zero")
	}
}
