// Package stats provides the small statistical toolkit MIDAS needs: a
// two-sample Kolmogorov–Smirnov test (used by the multi-scan swap to
// check that a swap does not significantly change the pattern size
// distribution, §6.2), distances, and descriptive statistics for the
// experiment harness.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean; it is 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Min returns the minimum; it is 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum; it is 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Euclidean returns the L2 distance between equal-length vectors. It
// panics on length mismatch so that misuse fails loudly.
func Euclidean(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: Euclidean length mismatch")
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// L1 returns the Manhattan distance between equal-length vectors.
func L1(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: L1 length mismatch")
	}
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// KSStatistic returns the two-sample Kolmogorov–Smirnov statistic
// D = sup_x |F1(x) - F2(x)| for empirical samples a and b.
func KSStatistic(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	i, j := 0, 0
	d := 0.0
	for i < len(sa) && j < len(sb) {
		x := sa[i]
		if sb[j] < x {
			x = sb[j]
		}
		for i < len(sa) && sa[i] <= x {
			i++
		}
		for j < len(sb) && sb[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(sa)) - float64(j)/float64(len(sb)))
		if diff > d {
			d = diff
		}
	}
	return d
}

// KSSimilar reports whether two samples pass a two-sample KS test at
// significance level alpha (i.e. the null "same distribution" is NOT
// rejected). It uses the large-sample critical value
// c(α)·sqrt((n+m)/(n·m)) with c(α) = sqrt(-ln(α/2)/2).
func KSSimilar(a, b []float64, alpha float64) bool {
	if len(a) == 0 || len(b) == 0 {
		return true
	}
	d := KSStatistic(a, b)
	n, m := float64(len(a)), float64(len(b))
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	crit := c * math.Sqrt((n+m)/(n*m))
	return d <= crit
}

// Histogram buckets xs into k equal-width bins over [min, max]. Useful
// for experiment reporting.
func Histogram(xs []float64, k int) []int {
	out := make([]int, k)
	if len(xs) == 0 || k == 0 {
		return out
	}
	lo, hi := Min(xs), Max(xs)
	if hi == lo {
		out[0] = len(xs)
		return out
	}
	w := (hi - lo) / float64(k)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i >= k {
			i = k - 1
		}
		out[i]++
	}
	return out
}
