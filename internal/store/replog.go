package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"github.com/midas-graph/midas/internal/vfs"
)

// RepLog errors.
var (
	// ErrCompacted means the requested LSN range was dropped by
	// CompactTo — the reader must re-bootstrap from a bundle instead of
	// tailing the log.
	ErrCompacted = errors.New("store: replication log compacted past requested LSN")
	// ErrLogSealed rejects appends to a log whose epoch is behind the
	// record being appended, or control misuse (Seed on a non-empty
	// log).
	ErrLogSealed = errors.New("store: replication log sealed")
)

// RecordKind distinguishes shipped batch payloads from epoch control
// records.
type RecordKind uint8

const (
	// RecData carries one committed maintenance batch: the update
	// payload as applied (post ID-remap) plus the primary's post-apply
	// state fingerprint.
	RecData RecordKind = 0
	// RecEpoch marks an epoch transition (promotion fencing) or a log
	// seed. It consumes an LSN like any record so fencing is totally
	// ordered with data.
	RecEpoch RecordKind = 1
)

// RepRecord is one framed record of the replication log — the unit a
// primary ships to its followers. LSNs are contiguous and monotonic;
// Epoch never decreases along the log.
type RepRecord struct {
	Kind RecordKind
	// LSN is the record's log sequence number (first record of a fresh
	// log is 1).
	LSN uint64
	// Epoch is the primacy epoch the record was committed under.
	Epoch uint64
	// Name is the batch name (empty for control records).
	Name string
	// Fingerprint is the primary's canonical state fingerprint after
	// applying this record — the per-LSN divergence check a follower
	// compares its own state against.
	Fingerprint uint64
	// Data is the encoded update payload (nil for control records).
	Data []byte
}

// Frame layout (big-endian):
//
//	magic   "MR1\n"              (4 bytes, per record — self-resynchronising for salvage)
//	kind    u8
//	lsn     u64
//	epoch   u64
//	fpr     u64
//	nameLen u16
//	dataLen u32
//	name    nameLen bytes
//	data    dataLen bytes
//	crc     u32 over everything above (magic included)
const (
	repMagic      = "MR1\n"
	repHeaderLen  = 4 + 1 + 8 + 8 + 8 + 2 + 4
	repMaxName    = 1 << 12
	repMaxPayload = 1 << 28
)

// EncodeRecord frames one record — the same bytes live in the log and
// on the replication wire, so a torn frame is detected identically in
// both places.
func EncodeRecord(r RepRecord) []byte {
	buf := make([]byte, repHeaderLen+len(r.Name)+len(r.Data)+4)
	copy(buf, repMagic)
	buf[4] = byte(r.Kind)
	binary.BigEndian.PutUint64(buf[5:], r.LSN)
	binary.BigEndian.PutUint64(buf[13:], r.Epoch)
	binary.BigEndian.PutUint64(buf[21:], r.Fingerprint)
	binary.BigEndian.PutUint16(buf[29:], uint16(len(r.Name)))
	binary.BigEndian.PutUint32(buf[31:], uint32(len(r.Data)))
	copy(buf[repHeaderLen:], r.Name)
	copy(buf[repHeaderLen+len(r.Name):], r.Data)
	sum := crc32.ChecksumIEEE(buf[:len(buf)-4])
	binary.BigEndian.PutUint32(buf[len(buf)-4:], sum)
	return buf
}

// DecodeRecord parses one framed record from the front of b, returning
// the record and the number of bytes consumed. Truncation, a bad magic,
// an oversized length field or a checksum mismatch return an error
// wrapping ErrCorrupt.
func DecodeRecord(b []byte) (RepRecord, int, error) {
	var r RepRecord
	if len(b) < repHeaderLen+4 {
		return r, 0, fmt.Errorf("store: replication frame truncated (%d bytes): %w", len(b), ErrCorrupt)
	}
	if string(b[:4]) != repMagic {
		return r, 0, fmt.Errorf("store: bad replication frame magic: %w", ErrCorrupt)
	}
	r.Kind = RecordKind(b[4])
	r.LSN = binary.BigEndian.Uint64(b[5:])
	r.Epoch = binary.BigEndian.Uint64(b[13:])
	r.Fingerprint = binary.BigEndian.Uint64(b[21:])
	nameLen := int(binary.BigEndian.Uint16(b[29:]))
	dataLen := int(binary.BigEndian.Uint32(b[31:]))
	if nameLen > repMaxName || dataLen > repMaxPayload {
		return r, 0, fmt.Errorf("store: replication frame length out of range (name %d, data %d): %w",
			nameLen, dataLen, ErrCorrupt)
	}
	total := repHeaderLen + nameLen + dataLen + 4
	if len(b) < total {
		return r, 0, fmt.Errorf("store: replication frame truncated (%d of %d bytes): %w", len(b), total, ErrCorrupt)
	}
	want := binary.BigEndian.Uint32(b[total-4:])
	if got := crc32.ChecksumIEEE(b[:total-4]); got != want {
		return r, 0, fmt.Errorf("store: replication frame checksum mismatch (%08x != %08x): %w", got, want, ErrCorrupt)
	}
	r.Name = string(b[repHeaderLen : repHeaderLen+nameLen])
	if dataLen > 0 {
		r.Data = append([]byte(nil), b[repHeaderLen+nameLen:repHeaderLen+nameLen+dataLen]...)
	}
	return r, total, nil
}

// EncodeRecords frames a batch of records back to back — the wire form
// of one replication push.
func EncodeRecords(recs []RepRecord) []byte {
	var buf bytes.Buffer
	for _, r := range recs {
		buf.Write(EncodeRecord(r))
	}
	return buf.Bytes()
}

// DecodeRecords parses a back-to-back frame batch. Any damage
// (truncation, checksum, magic) fails the whole batch — the receiver
// rejects it and the sender retries; frames are never half-trusted.
func DecodeRecords(b []byte) ([]RepRecord, error) {
	var out []RepRecord
	for len(b) > 0 {
		r, n, err := DecodeRecord(b)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
		b = b[n:]
	}
	return out, nil
}

// RepLog is the durable, append-fsync replication log: the shippable
// form of a shard's committed maintenance history. Every committed
// batch is one framed, CRC'd record tagged with a contiguous LSN and
// the primacy epoch it was committed under; epoch transitions are
// control records in the same sequence, so fencing is totally ordered
// with data. Opening salvages the valid prefix exactly like the batch
// journal: the first record that fails to parse cuts the log, the torn
// tail is quarantined to *.corrupt, and appends continue after the
// prefix.
//
// RepLog is safe for concurrent use: the maintenance goroutine appends
// while shipper goroutines ReadFrom/Wait the tail.
type RepLog struct {
	mu      sync.Mutex
	fsys    vfs.FS
	path    string
	f       vfs.File
	size    int64
	first   uint64 // LSN of the earliest retained record (0 = empty log)
	last    uint64 // LSN of the latest record (0 = empty log)
	epoch   uint64 // epoch of the latest record
	offsets map[uint64]int64
	// lastName/lastSum make Append idempotent across the pipeline's
	// After-hook retries: re-appending the batch that is already the
	// tail is a no-op.
	lastName string
	lastSum  uint32
	salvage  JournalSalvage
	// tailCh is closed and replaced on every append; Wait blocks on it.
	tailCh chan struct{}
}

// OpenRepLog opens (creating if needed) the replication log at path on
// the production filesystem. See OpenRepLogFS.
func OpenRepLog(path string) (*RepLog, error) {
	return OpenRepLogFS(vfs.OS, path)
}

// OpenRepLogFS opens (creating if needed) the replication log at path
// and indexes its records. The log is trusted only up to the last
// record that parses completely and continues the LSN sequence; the
// damaged tail is quarantined to path+".corrupt" and truncated, so
// recovery never needs manual repair.
func OpenRepLogFS(fsys vfs.FS, path string) (*RepLog, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open replication log: %w", err)
	}
	data, err := fsys.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: read replication log: %w", err)
	}
	l := &RepLog{fsys: fsys, path: path, f: f, offsets: make(map[uint64]int64), tailCh: make(chan struct{})}

	validEnd := 0
	for validEnd < len(data) {
		r, n, err := DecodeRecord(data[validEnd:])
		if err != nil {
			break
		}
		if l.last != 0 && (r.LSN != l.last+1 || r.Epoch < l.epoch) {
			// A record that breaks LSN contiguity or regresses the epoch
			// cannot be trusted, nor can anything after it.
			break
		}
		if l.first == 0 {
			l.first = r.LSN
		}
		l.offsets[r.LSN] = int64(validEnd)
		l.last, l.epoch = r.LSN, r.Epoch
		l.lastName = r.Name
		l.lastSum = crc32.ChecksumIEEE(r.Data)
		validEnd += n
	}
	if validEnd < len(data) {
		tail := data[validEnd:]
		qp := path + corruptSuffix
		if err := quarantineBytes(fsys, qp, tail); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: replication log quarantine: %w", err)
		}
		if err := f.Truncate(int64(validEnd)); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: replication log repair: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: replication log repair sync: %w", err)
		}
		l.salvage = JournalSalvage{TailBytes: len(tail), QuarantinePath: qp}
		salvageStats.events.Add(1)
		salvageStats.quarantinedFiles.Add(1)
		salvageStats.journalTornBytes.Add(uint64(len(tail)))
	}
	if _, err := f.Seek(int64(validEnd), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seek replication log: %w", err)
	}
	l.size = int64(validEnd)
	return l, nil
}

// Salvage reports what OpenRepLogFS had to repair (zero value when the
// log was clean).
func (l *RepLog) Salvage() JournalSalvage { return l.salvage }

// FirstLSN returns the earliest retained LSN (0 on an empty log).
func (l *RepLog) FirstLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.first
}

// LastLSN returns the latest LSN (0 on an empty log).
func (l *RepLog) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last
}

// Epoch returns the current primacy epoch (the latest record's; 0 on
// an empty log).
func (l *RepLog) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// Size returns the log file's current size in bytes.
func (l *RepLog) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Append durably appends one committed data batch under the current
// epoch and returns its LSN. Re-appending the batch that is already
// the tail record (same name and payload — the pipeline's After-hook
// retry) is a no-op returning the existing LSN.
func (l *RepLog) Append(name string, fingerprint uint64, data []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	sum := crc32.ChecksumIEEE(data)
	if l.last != 0 && name != "" && l.lastName == name && l.lastSum == sum {
		return l.last, nil
	}
	rec := RepRecord{Kind: RecData, LSN: l.last + 1, Epoch: l.epoch, Name: name, Fingerprint: fingerprint, Data: data}
	if rec.LSN == 1 && l.epoch == 0 {
		rec.Epoch = 1 // a fresh primary's first commit opens epoch 1
	}
	if err := l.appendLocked(rec); err != nil {
		return 0, err
	}
	return rec.LSN, nil
}

// AppendRecord durably appends a record verbatim — the follower's
// install path, which must preserve the primary's LSN, epoch and
// fingerprint. The record must continue the local sequence: LSN =
// LastLSN+1 (or anything on an empty/seeded log boundary) and a
// non-decreasing epoch. A record already in the log (LSN <= LastLSN)
// is a duplicate delivery and is ignored.
func (l *RepLog) AppendRecord(rec RepRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.last != 0 && rec.LSN <= l.last {
		return nil // duplicate delivery
	}
	if l.last != 0 && rec.LSN != l.last+1 {
		return fmt.Errorf("store: replication log gap: have LSN %d, got %d: %w", l.last, rec.LSN, ErrLogSealed)
	}
	if rec.Epoch < l.epoch {
		return fmt.Errorf("store: replication log epoch regression: have %d, got %d: %w", l.epoch, rec.Epoch, ErrLogSealed)
	}
	return l.appendLocked(rec)
}

// Seed establishes the base position of an empty log — the follower's
// bootstrap step after installing the primary's bundle: subsequent
// records continue from (lsn, epoch). Seeding a non-empty log is an
// error.
func (l *RepLog) Seed(lsn, epoch uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.last != 0 {
		return fmt.Errorf("store: seed of non-empty replication log (last LSN %d): %w", l.last, ErrLogSealed)
	}
	return l.appendLocked(RepRecord{Kind: RecEpoch, LSN: lsn, Epoch: epoch})
}

// BumpEpoch durably opens the next primacy epoch (promotion fencing)
// and returns it with the control record's LSN. Everything committed
// afterwards carries the new epoch; an old primary's stream is fenced
// against it.
func (l *RepLog) BumpEpoch() (epoch, lsn uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	next := l.epoch + 1
	rec := RepRecord{Kind: RecEpoch, LSN: l.last + 1, Epoch: next}
	if err := l.appendLocked(rec); err != nil {
		return 0, 0, err
	}
	return next, rec.LSN, nil
}

// appendLocked writes and fsyncs one record with l.mu held.
func (l *RepLog) appendLocked(rec RepRecord) error {
	buf := EncodeRecord(rec)
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("store: replication log append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("store: replication log sync: %w", err)
	}
	l.offsets[rec.LSN] = l.size
	l.size += int64(len(buf))
	if l.first == 0 {
		l.first = rec.LSN
	}
	l.last, l.epoch = rec.LSN, rec.Epoch
	l.lastName = rec.Name
	l.lastSum = crc32.ChecksumIEEE(rec.Data)
	ch := l.tailCh
	l.tailCh = make(chan struct{})
	close(ch)
	return nil
}

// ReadFrom returns up to max records with LSN > after, in LSN order
// (max <= 0 means no bound). Asking for records older than the
// earliest retained LSN returns ErrCompacted — the reader must
// re-bootstrap from a bundle.
func (l *RepLog) ReadFrom(after uint64, max int) ([]RepRecord, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.last == 0 || after >= l.last {
		return nil, nil
	}
	start := after + 1
	if start < l.first {
		return nil, fmt.Errorf("%w (want LSN %d, earliest retained %d)", ErrCompacted, start, l.first)
	}
	off, ok := l.offsets[start]
	if !ok {
		return nil, fmt.Errorf("%w (want LSN %d, earliest retained %d)", ErrCompacted, start, l.first)
	}
	// Read the suffix under the lock: appends are fsync-paced, so the
	// copy is short and the alternative (reading racily) could observe
	// a torn in-flight append.
	data, err := l.fsys.ReadFile(l.path)
	if err != nil {
		return nil, fmt.Errorf("store: read replication log: %w", err)
	}
	if off > int64(len(data)) {
		return nil, fmt.Errorf("store: replication log shorter than index: %w", ErrCorrupt)
	}
	var out []RepRecord
	b := data[off:l.size]
	for len(b) > 0 && (max <= 0 || len(out) < max) {
		r, n, err := DecodeRecord(b)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
		b = b[n:]
	}
	return out, nil
}

// Wait blocks until a record with LSN > after exists or done is
// closed, reporting whether new records arrived — the tail-follow
// primitive shipper goroutines park on.
func (l *RepLog) Wait(done <-chan struct{}, after uint64) bool {
	for {
		l.mu.Lock()
		if l.last > after {
			l.mu.Unlock()
			return true
		}
		ch := l.tailCh
		l.mu.Unlock()
		select {
		case <-ch:
		case <-done:
			return false
		}
	}
}

// CompactTo drops records with LSN <= keep, retaining the current
// epoch by re-seeding the compacted log with a control record at the
// compaction boundary. The rewrite is atomic (tmp + fsync + rename +
// dir fsync); a crash leaves either the old log or the compacted one.
// Compaction is safe once every follower the caller cares about has
// acknowledged keep — a slower follower gets ErrCompacted and
// re-bootstraps from the bundle.
func (l *RepLog) CompactTo(keep uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if keep < l.first || l.last == 0 {
		return nil
	}
	if keep > l.last {
		keep = l.last
	}
	var retained []RepRecord
	if keep < l.last {
		data, err := l.fsys.ReadFile(l.path)
		if err != nil {
			return fmt.Errorf("store: read replication log: %w", err)
		}
		off := l.offsets[keep+1]
		b := data[off:l.size]
		for len(b) > 0 {
			r, n, err := DecodeRecord(b)
			if err != nil {
				return err
			}
			retained = append(retained, r)
			b = b[n:]
		}
	}
	seedEpoch := l.epoch
	if len(retained) > 0 {
		seedEpoch = retained[0].Epoch
	}
	seed := RepRecord{Kind: RecEpoch, LSN: keep, Epoch: seedEpoch}
	err := WriteAtomicFS(l.fsys, l.path, func(w io.Writer) error {
		if _, err := w.Write(EncodeRecord(seed)); err != nil {
			return err
		}
		for _, r := range retained {
			if _, err := w.Write(EncodeRecord(r)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: replication log compact: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("store: replication log compact close: %w", err)
	}
	f, err := l.fsys.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: replication log compact reopen: %w", err)
	}
	size, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return fmt.Errorf("store: replication log compact seek: %w", err)
	}
	l.f, l.size = f, size
	l.offsets = make(map[uint64]int64)
	off := int64(0)
	l.offsets[seed.LSN] = off
	off += int64(len(EncodeRecord(seed)))
	for _, r := range retained {
		l.offsets[r.LSN] = off
		off += int64(len(EncodeRecord(r)))
	}
	l.first = keep
	salvageStats.checkpoints.Add(1)
	return nil
}

// Close closes the log file.
func (l *RepLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
