package crashtest

import (
	"os"
	"testing"

	"github.com/midas-graph/midas/internal/store"
	"github.com/midas-graph/midas/internal/vfs"
)

// TestCrashSweep is the exhaustive crash-consistency model check: every
// crash point of every workload trace, friendly and lossy, with every
// torn length of a final write. `make crashtest` runs the full
// enumeration; -short samples crash points and tear lengths so the
// default `go test ./...` path stays fast.
func TestCrashSweep(t *testing.T) {
	var opt Options
	if testing.Short() {
		opt = Options{MaxCrashPoints: 10, MaxTearLengths: 4}
	}
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			res, err := Sweep(w, opt)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %d crash points, %d scenarios", w.Name, res.CrashPoints, res.Cases)
			for _, v := range res.Violations {
				t.Error(v)
			}
		})
	}
}

// TestSweepCatchesBrokenDiscipline pins the checker's teeth: a bundle
// "save" that skips the temp-file indirection and rewrites the file in
// place must produce hybrid states the sweep reports.
func TestSweepCatchesBrokenDiscipline(t *testing.T) {
	w := brokenSaveWorkload()
	res, err := Sweep(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("sweep accepted an in-place overwrite; the checker has no teeth")
	}
}

// brokenSaveWorkload "saves" the bundle by truncating and rewriting it
// in place — the classic torn-write bug the real SaveBundle exists to
// prevent. There is no .prev generation to fall back to, so a crash
// mid-write strands an invalid bundle.
func brokenSaveWorkload() Workload {
	overwrite := func(fsys vfs.FS, m bundleMeta) error {
		f, err := fsys.OpenFile(statePath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write(encodeBundle(m)); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return Workload{
		Name:    "broken-save",
		Prepare: func(fsys vfs.FS) error { return overwrite(fsys, bundleMeta{content: "v1"}) },
		Steps: []Step{
			func(fsys vfs.FS) error { return overwrite(fsys, bundleMeta{content: "v2-longer-content"}) },
		},
		Recover: func(fsys vfs.FS) (string, error) {
			data, _, err := store.LoadBundle(fsys, statePath, validateBundle)
			if err != nil {
				return "", err
			}
			m, err := decodeBundle(data)
			if err != nil {
				return "", err
			}
			return "state=" + m.content, nil
		},
	}
}
