// Package crashtest is the crash-consistency model checker for the
// durability layer. A Workload describes a unit of durable work as a
// Prepare function (the pre-crash on-disk state), a sequence of Steps
// (each one an atomic commit point), and a Recover function (the
// production recovery path plus a canonical fingerprint of the logical
// recovered state).
//
// Sweep records the workload's full operation trace on a simulated
// filesystem (internal/vfs), then for every crash point k replays the
// first k operations into a fresh simulator — with and without lost
// un-synced data, and for final writes at every torn length — runs
// recovery, and checks the invariant: the recovered logical state must
// equal the state at one of the workload's commit points (complete
// pre-crash state, complete post-crash state, or a step boundary in
// between), recovery must not error (no manual repair), and running
// recovery a second time must not change the outcome (idempotence).
//
// Fingerprints must capture logical state only — bundle content,
// journal decisions, spool listings — never incidental artifacts such
// as .prev/.tmp/.corrupt files, whose presence legitimately varies with
// the crash point.
package crashtest

import (
	"fmt"
	"strings"

	"github.com/midas-graph/midas/internal/vfs"
)

// Step is one atomic commit point of a workload.
type Step func(fsys vfs.FS) error

// Workload is one durable-work scenario swept by the model checker.
type Workload struct {
	Name string
	// Prepare sets up the durable pre-crash state.
	Prepare func(fsys vfs.FS) error
	// Steps run the workload whose operation trace is swept. Each step
	// is an atomic commit point: crash recovery may land on any step
	// boundary, but never between two.
	Steps []Step
	// Recover runs crash recovery against the (possibly torn)
	// filesystem and returns a canonical fingerprint of the logical
	// recovered state. A returned error means manual repair would be
	// needed — always a violation.
	Recover func(fsys vfs.FS) (string, error)
}

// Options bounds the sweep for -short runs. Zero values mean full
// enumeration.
type Options struct {
	// MaxCrashPoints caps the crash points sampled per workload
	// (always including 0 and the full trace).
	MaxCrashPoints int
	// MaxTearLengths caps the torn-write lengths tried per final
	// write (always including 0 and len-1).
	MaxTearLengths int
}

// Violation is one crash scenario whose recovery broke the invariant.
type Violation struct {
	Workload    string
	CrashPoint  int
	Plan        vfs.CrashPlan
	Fingerprint string
	Err         error
	Allowed     []string
}

func (v Violation) String() string {
	plan := "friendly"
	if v.Plan.LoseUnsynced {
		plan = "lossy"
	}
	if v.Plan.TearFinalWrite >= 0 {
		plan += fmt.Sprintf("+tear@%d", v.Plan.TearFinalWrite)
	}
	if v.Err != nil {
		return fmt.Sprintf("%s: crash at op %d (%s): recovery needs manual repair: %v",
			v.Workload, v.CrashPoint, plan, v.Err)
	}
	return fmt.Sprintf("%s: crash at op %d (%s): recovered hybrid state %q; allowed: %s",
		v.Workload, v.CrashPoint, plan, v.Fingerprint, strings.Join(v.Allowed, " | "))
}

// Result summarises one sweep.
type Result struct {
	// Cases is the number of (crash point, crash plan) scenarios run.
	Cases int
	// CrashPoints is the number of distinct trace prefixes swept.
	CrashPoints int
	// Violations holds every scenario that broke the invariant.
	Violations []Violation
}

// Sweep model-checks one workload. The returned error reports harness
// failures (Prepare or a Step failing on an un-crashed filesystem);
// invariant violations are collected in the Result.
func Sweep(w Workload, opt Options) (Result, error) {
	var res Result

	base := vfs.NewSim()
	if err := w.Prepare(base); err != nil {
		return res, fmt.Errorf("%s: prepare: %w", w.Name, err)
	}
	base.SetDurable()

	// The allowed fingerprints: the recovered logical state at every
	// step boundary, from untouched (pre) to fully done (post).
	allowedSet := make(map[string]bool)
	var allowed []string
	cur := base.Clone()
	for i := 0; ; i++ {
		fp, err := w.Recover(cur.Clone())
		if err != nil {
			return res, fmt.Errorf("%s: recover at step boundary %d: %w", w.Name, i, err)
		}
		if !allowedSet[fp] {
			allowedSet[fp] = true
			allowed = append(allowed, fp)
		}
		if i == len(w.Steps) {
			break
		}
		if err := w.Steps[i](cur); err != nil {
			return res, fmt.Errorf("%s: step %d: %w", w.Name, i, err)
		}
	}

	// Record the workload's operation trace.
	work := base.Clone()
	for i, step := range w.Steps {
		if err := step(work); err != nil {
			return res, fmt.Errorf("%s: step %d (traced): %w", w.Name, i, err)
		}
	}
	trace := work.Trace()

	for _, k := range samplePoints(len(trace), opt.MaxCrashPoints) {
		res.CrashPoints++
		prefix := trace[:k]
		plans := []vfs.CrashPlan{
			{LoseUnsynced: false, TearFinalWrite: -1},
			{LoseUnsynced: true, TearFinalWrite: -1},
		}
		if k > 0 && prefix[k-1].Kind == vfs.OpWrite && len(prefix[k-1].Data) > 0 {
			for _, n := range tearLengths(len(prefix[k-1].Data), opt.MaxTearLengths) {
				plans = append(plans,
					vfs.CrashPlan{LoseUnsynced: false, TearFinalWrite: n},
					vfs.CrashPlan{LoseUnsynced: true, TearFinalWrite: n})
			}
		}
		for _, plan := range plans {
			res.Cases++
			sim := base.Clone()
			sim.ReplayCrash(prefix, plan)
			fp, err := w.Recover(sim)
			if err != nil {
				res.Violations = append(res.Violations, Violation{
					Workload: w.Name, CrashPoint: k, Plan: plan, Err: err, Allowed: allowed})
				continue
			}
			if !allowedSet[fp] {
				res.Violations = append(res.Violations, Violation{
					Workload: w.Name, CrashPoint: k, Plan: plan, Fingerprint: fp, Allowed: allowed})
				continue
			}
			// Recovery must be a fixpoint: running it again on the
			// recovered filesystem must land on the same state.
			fp2, err2 := w.Recover(sim)
			if err2 != nil || fp2 != fp {
				res.Violations = append(res.Violations, Violation{
					Workload: w.Name, CrashPoint: k, Plan: plan,
					Fingerprint: fmt.Sprintf("not idempotent: %q then %q", fp, fp2),
					Err:         err2, Allowed: allowed})
			}
		}
	}
	return res, nil
}

// samplePoints returns the crash points to sweep: every 0..n when max
// is zero, else an evenly-strided sample that always includes 0 and n.
func samplePoints(n, max int) []int {
	if max <= 0 || n+1 <= max {
		out := make([]int, n+1)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := []int{0}
	for i := 1; i < max-1; i++ {
		out = append(out, i*n/(max-1))
	}
	out = append(out, n)
	// De-duplicate (integer stride can repeat for small n).
	uniq := out[:1]
	for _, k := range out[1:] {
		if k != uniq[len(uniq)-1] {
			uniq = append(uniq, k)
		}
	}
	return uniq
}

// tearLengths returns the torn-write lengths to try for a final write
// of n bytes: every 0..n-1 when max is zero, else a sample including
// the empty and almost-complete tears.
func tearLengths(n, max int) []int {
	if max <= 0 || n <= max {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := []int{0}
	for i := 1; i < max-1; i++ {
		out = append(out, i*(n-1)/(max-1))
	}
	out = append(out, n-1)
	uniq := out[:1]
	for _, k := range out[1:] {
		if k != uniq[len(uniq)-1] {
			uniq = append(uniq, k)
		}
	}
	return uniq
}
