package crashtest

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/midas-graph/midas/internal/store"
	"github.com/midas-graph/midas/internal/vfs"
)

// The on-disk layout every workload uses.
const (
	statePath   = "d/state"
	journalPath = "d/journal"
	spoolDir    = "d/spool"
	batchName   = "b1.graphs"
)

// Workloads returns the durable-work scenarios the sweep covers: the
// generational bundle save, the journal record protocol (append through
// all-done truncation), journal checkpoint compaction, and the full
// spool batch protocol with its restart recovery.
func Workloads() []Workload {
	return []Workload{
		saveBundleWorkload(),
		journalAppendWorkload(),
		journalCheckpointWorkload(),
		spoolBatchWorkload(),
		followerInstallWorkload(),
	}
}

// --- toy bundle format -------------------------------------------------
//
// The sweep needs a bundle format whose torn or bit-rotted forms are
// detectable, like the real MIDAS-STATE v2 envelope, but cheap enough
// to validate thousands of times. Layout (one line):
//
//	<crc32 hex of rest> last=<batch|-> sum=<crc32 hex> state=<content>
//
// "last"/"sum" mirror the server's bundle metadata (the last applied
// spool batch), which closes the crash window between saving state and
// journalling the batch as applied.

type bundleMeta struct {
	last    string
	lastSum uint32
	content string
}

func encodeBundle(m bundleMeta) []byte {
	last := m.last
	if last == "" {
		last = "-"
	}
	line := fmt.Sprintf("last=%s sum=%08x state=%s", last, m.lastSum, m.content)
	return []byte(fmt.Sprintf("%08x %s\n", store.ChecksumBytes([]byte(line)), line))
}

func decodeBundle(b []byte) (bundleMeta, error) {
	var m bundleMeta
	text := strings.TrimSuffix(string(b), "\n")
	crcHex, line, ok := strings.Cut(text, " ")
	if !ok {
		return m, fmt.Errorf("bundle: no checksum field: %w", store.ErrCorrupt)
	}
	var want uint32
	if _, err := fmt.Sscanf(crcHex, "%08x", &want); err != nil {
		return m, fmt.Errorf("bundle: bad checksum %q: %w", crcHex, store.ErrCorrupt)
	}
	if got := store.ChecksumBytes([]byte(line)); got != want {
		return m, fmt.Errorf("bundle: checksum %08x, header says %08x: %w", got, want, store.ErrCorrupt)
	}
	fields := strings.SplitN(line, " ", 3)
	if len(fields) != 3 {
		return m, fmt.Errorf("bundle: %d fields: %w", len(fields), store.ErrCorrupt)
	}
	if _, err := fmt.Sscanf(fields[0], "last=%s", &m.last); err != nil {
		return m, fmt.Errorf("bundle: bad last field: %w", store.ErrCorrupt)
	}
	if m.last == "-" {
		m.last = ""
	}
	if _, err := fmt.Sscanf(fields[1], "sum=%08x", &m.lastSum); err != nil {
		return m, fmt.Errorf("bundle: bad sum field: %w", store.ErrCorrupt)
	}
	m.content = strings.TrimPrefix(fields[2], "state=")
	return m, nil
}

func validateBundle(b []byte) error {
	_, err := decodeBundle(b)
	return err
}

// --- workload: generational bundle save --------------------------------

func saveBundleWorkload() Workload {
	save := func(fsys vfs.FS, m bundleMeta) error {
		return store.SaveBundle(fsys, statePath, func(w io.Writer) error {
			_, err := w.Write(encodeBundle(m))
			return err
		})
	}
	return Workload{
		Name: "save-bundle",
		Prepare: func(fsys vfs.FS) error {
			// Two generations on disk, as in steady state.
			if err := save(fsys, bundleMeta{content: "v0"}); err != nil {
				return err
			}
			return save(fsys, bundleMeta{content: "v1"})
		},
		Steps: []Step{
			func(fsys vfs.FS) error { return save(fsys, bundleMeta{content: "v2"}) },
		},
		Recover: func(fsys vfs.FS) (string, error) {
			data, _, err := store.LoadBundle(fsys, statePath, validateBundle)
			if err != nil {
				return "", err
			}
			m, err := decodeBundle(data)
			if err != nil {
				return "", err
			}
			return "state=" + m.content, nil
		},
	}
}

// --- workload: journal record protocol ---------------------------------

// journalStep opens the journal, applies one record, and closes it.
// Opening a clean journal adds no mutating operations, so the crash
// points are exactly the appends.
func journalStep(do func(j *store.Journal) error) Step {
	return func(fsys vfs.FS) error {
		j, err := store.OpenJournalFS(fsys, journalPath)
		if err != nil {
			return err
		}
		defer j.Close()
		return do(j)
	}
}

// journalFingerprint is the journal's logical recovery state: the
// entries that still demand action. Done entries (and the truncation
// that eventually drops them) are invisible by design.
func journalFingerprint(j *store.Journal) string {
	var parts []string
	for _, name := range j.Pending() {
		st, sum, _ := j.State(name)
		parts = append(parts, fmt.Sprintf("%s=%s:%08x", name, st, sum))
	}
	return "journal{" + strings.Join(parts, ",") + "}"
}

func recoverJournal(fsys vfs.FS) (string, error) {
	j, err := store.OpenJournalFS(fsys, journalPath)
	if err != nil {
		return "", err
	}
	defer j.Close()
	return journalFingerprint(j), nil
}

func journalAppendWorkload() Workload {
	return Workload{
		Name: "journal-append",
		Prepare: func(fsys vfs.FS) error {
			j, err := store.OpenJournalFS(fsys, journalPath)
			if err != nil {
				return err
			}
			return j.Close()
		},
		Steps: []Step{
			journalStep(func(j *store.Journal) error { return j.Begin("b1", 0x1111) }),
			journalStep(func(j *store.Journal) error { return j.MarkApplied("b1") }),
			journalStep(func(j *store.Journal) error { return j.Begin("b2", 0x2222) }),
			journalStep(func(j *store.Journal) error { return j.MarkApplied("b2") }),
			journalStep(func(j *store.Journal) error { return j.MarkDone("b1") }),
			// The final MarkDone leaves no pending entries and
			// truncates the journal in place.
			journalStep(func(j *store.Journal) error { return j.MarkDone("b2") }),
		},
		Recover: recoverJournal,
	}
}

// --- workload: journal checkpoint compaction ---------------------------

func journalCheckpointWorkload() Workload {
	return Workload{
		Name: "journal-checkpoint",
		Prepare: func(fsys vfs.FS) error {
			j, err := store.OpenJournalFS(fsys, journalPath)
			if err != nil {
				return err
			}
			defer j.Close()
			// Steady-state mix: one applied, one done (compactable),
			// one begun.
			for _, op := range []func() error{
				func() error { return j.Begin("b0", 0x0a0a) },
				func() error { return j.MarkApplied("b0") },
				func() error { return j.Begin("b1", 0x1b1b) },
				func() error { return j.MarkApplied("b1") },
				func() error { return j.MarkDone("b1") },
				func() error { return j.Begin("b2", 0x2c2c) },
			} {
				if err := op(); err != nil {
					return err
				}
			}
			return nil
		},
		Steps: []Step{
			journalStep(func(j *store.Journal) error {
				j.SetCheckpointThreshold(1)
				ran, err := j.MaybeCheckpoint()
				if err == nil && !ran {
					return errors.New("checkpoint did not run")
				}
				return err
			}),
		},
		// Compaction must never change recovery decisions: pre and
		// post fingerprints are identical, so every crash point must
		// land on that single state.
		Recover: recoverJournal,
	}
}

// --- workload: spool batch protocol ------------------------------------

// processBatch is the store-level model of the panel watcher's batch
// protocol: begin → apply (here: append the batch text to the bundle
// content, a deliberately non-idempotent operation so double-apply is
// visible) → save bundle with last-batch metadata → applied → rename
// the spool file away → done.
func processBatch(fsys vfs.FS, name string) error {
	j, err := store.OpenJournalFS(fsys, journalPath)
	if err != nil {
		return err
	}
	defer j.Close()
	spool := spoolDir + "/" + name
	data, err := fsys.ReadFile(spool)
	if err != nil {
		return err
	}
	sum := store.ChecksumBytes(data)
	if err := j.Begin(name, sum); err != nil {
		return err
	}
	return applyAndFinish(fsys, j, name, sum, data)
}

// applyAndFinish runs the batch protocol from after Begin: apply, save,
// mark applied, retire the spool file, mark done.
func applyAndFinish(fsys vfs.FS, j *store.Journal, name string, sum uint32, data []byte) error {
	cur, _, err := store.LoadBundle(fsys, statePath, validateBundle)
	if err != nil {
		return err
	}
	m, err := decodeBundle(cur)
	if err != nil {
		return err
	}
	m.content += "+" + string(data)
	m.last, m.lastSum = name, sum
	if err := store.SaveBundle(fsys, statePath, func(w io.Writer) error {
		_, err := w.Write(encodeBundle(m))
		return err
	}); err != nil {
		return err
	}
	if err := j.MarkApplied(name); err != nil {
		return err
	}
	return finishBatch(fsys, j, name)
}

// finishBatch retires the spool file and records done.
func finishBatch(fsys vfs.FS, j *store.Journal, name string) error {
	spool := spoolDir + "/" + name
	if _, err := fsys.Stat(spool); err == nil {
		if err := fsys.Rename(spool, spool+".done"); err != nil {
			return err
		}
		if err := fsys.SyncDir(spoolDir); err != nil {
			return err
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return j.MarkDone(name)
}

// recoverSpool is the restart path: salvage bundle + journal via
// store.Recover, settle every pending journal entry (using the bundle's
// last-batch metadata to avoid double-applying a batch whose applied
// record was lost), then scan the spool for batches the journal never
// saw. It converges: every crash state recovers to the fully-processed
// state.
func recoverSpool(fsys vfs.FS) (string, error) {
	res, err := store.Recover(fsys, statePath, journalPath, validateBundle)
	if err != nil {
		return "", err
	}
	j := res.Journal
	defer j.Close()
	if res.Bundle == nil {
		return "", errors.New("spool recovery: bundle lost")
	}
	m, err := decodeBundle(res.Bundle)
	if err != nil {
		return "", err
	}

	// Settle entries the journal knows about.
	for _, name := range j.Pending() {
		st, sum, _ := j.State(name)
		data, rerr := fsys.ReadFile(spoolDir + "/" + name)
		switch st {
		case store.Applied:
			// Bundle is saved; just retire the spool file (if its
			// rename was lost) and close out.
			if err := finishBatch(fsys, j, name); err != nil {
				return "", err
			}
		case store.Begun:
			if rerr != nil {
				return "", fmt.Errorf("spool recovery: begun entry %s has no spool file: %w", name, rerr)
			}
			if m.last == name && m.lastSum == sum && store.ChecksumBytes(data) == sum {
				// The bundle already contains this batch: the crash hit
				// between the bundle save and the applied record.
				if err := j.MarkApplied(name); err != nil {
					return "", err
				}
				if err := finishBatch(fsys, j, name); err != nil {
					return "", err
				}
				continue
			}
			if err := applyAndFinish(fsys, j, name, store.ChecksumBytes(data), data); err != nil {
				return "", err
			}
		}
	}

	// Scan for spool files the journal never recorded — including a
	// batch whose entire journal lifecycle was lost but whose apply
	// survived in the bundle metadata.
	entries, err := fsys.ReadDir(spoolDir)
	if err != nil {
		return "", err
	}
	for _, e := range entries {
		if e.IsDir || !strings.HasSuffix(e.Name, ".graphs") {
			continue
		}
		if _, _, ok := j.State(e.Name); ok {
			continue
		}
		data, err := fsys.ReadFile(spoolDir + "/" + e.Name)
		if err != nil {
			return "", err
		}
		sum := store.ChecksumBytes(data)
		if err := j.Begin(e.Name, sum); err != nil {
			return "", err
		}
		if m.last == e.Name && m.lastSum == sum {
			if err := j.MarkApplied(e.Name); err != nil {
				return "", err
			}
			if err := finishBatch(fsys, j, e.Name); err != nil {
				return "", err
			}
			continue
		}
		if err := applyAndFinish(fsys, j, e.Name, sum, data); err != nil {
			return "", err
		}
	}

	// Fingerprint: bundle content + journal decisions + spool listing.
	final, _, err := store.LoadBundle(fsys, statePath, validateBundle)
	if err != nil {
		return "", err
	}
	fm, err := decodeBundle(final)
	if err != nil {
		return "", err
	}
	list, err := fsys.ReadDir(spoolDir)
	if err != nil {
		return "", err
	}
	var names []string
	for _, e := range list {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return fmt.Sprintf("state=%s last=%s %s spool=[%s]",
		fm.content, fm.last, journalFingerprint(j), strings.Join(names, ",")), nil
}

// --- workload: follower bundle-fetch + journal-suffix install -----------

// The on-disk layout of a replication follower (internal/replica):
// a state bundle plus the replication log it tails.
const (
	followerState = "d/fstate"
	followerLog   = "d/freplog"
)

// followerInstallWorkload models the follower's cold-start install
// path: fetch the primary's bundle (here a constant — the upstream is
// not on the swept filesystem), seed a fresh replication log at the
// bundle's position, then per streamed record append it to the log and
// roll the bundle forward. A crash at any point must leave the
// follower able to restart the catch-up with no manual repair: the
// recovery path is open-with-salvage on both artifacts, then replay
// the log suffix past the bundle's LSN — exactly the node's
// replaySuffix discipline.
func followerInstallWorkload() Workload {
	const (
		upLSN   = 2 // the upstream bundle's position
		upEpoch = 1
	)
	// The streamed journal suffix: two committed batches past the
	// bundle.
	recs := []store.RepRecord{
		{Kind: store.RecData, LSN: 3, Epoch: upEpoch, Name: "r3", Data: []byte("r3")},
		{Kind: store.RecData, LSN: 4, Epoch: upEpoch, Name: "r4", Data: []byte("r4")},
	}

	// The bundle's last/sum fields carry the replication position, as
	// the real bundle's metadata does.
	saveAt := func(fsys vfs.FS, content string, lsn uint64) error {
		return store.SaveBundle(fsys, followerState, func(w io.Writer) error {
			_, err := w.Write(encodeBundle(bundleMeta{
				content: content, last: fmt.Sprintf("lsn%d", lsn), lastSum: uint32(lsn)}))
			return err
		})
	}
	appendRec := func(fsys vfs.FS, rec store.RepRecord) error {
		l, err := store.OpenRepLogFS(fsys, followerLog)
		if err != nil {
			return err
		}
		defer l.Close()
		return l.AppendRecord(rec)
	}

	return Workload{
		Name:    "follower-install",
		Prepare: func(fsys vfs.FS) error { return nil },
		Steps: []Step{
			// Install the fetched upstream bundle.
			func(fsys vfs.FS) error { return saveAt(fsys, "u", upLSN) },
			// Seed a fresh log at the bundle's position.
			func(fsys vfs.FS) error {
				l, err := store.OpenRepLogFS(fsys, followerLog)
				if err != nil {
					return err
				}
				defer l.Close()
				return l.Seed(upLSN, upEpoch)
			},
			// Per record: durable log append, then roll the bundle
			// forward. A crash between the two leaves the log ahead of
			// the bundle — the replay suffix closes the gap.
			func(fsys vfs.FS) error { return appendRec(fsys, recs[0]) },
			func(fsys vfs.FS) error { return saveAt(fsys, "u+r3", 3) },
			func(fsys vfs.FS) error { return appendRec(fsys, recs[1]) },
			func(fsys vfs.FS) error { return saveAt(fsys, "u+r3+r4", 4) },
		},
		Recover: recoverFollower,
	}
}

// recoverFollower is the follower's restart path: salvage the
// replication log (torn tail quarantined and truncated) and the bundle
// (torn save rolled back to the previous generation), re-seed an empty
// log at the bundle's position, replay the log suffix past the
// bundle's LSN, and persist the rolled-forward bundle so a second
// recovery is a no-op. A follower with no bundle at all restarts the
// catch-up from scratch — a legal state, never an error.
func recoverFollower(fsys vfs.FS) (string, error) {
	l, err := store.OpenRepLogFS(fsys, followerLog)
	if err != nil {
		return "", err
	}
	defer l.Close()

	data, _, err := store.LoadBundle(fsys, followerState, validateBundle)
	if errors.Is(err, os.ErrNotExist) || errors.Is(err, store.ErrCorrupt) {
		// Nothing installed before the crash — or the very first
		// install was torn with no previous generation to salvage.
		// Unlike a primary's state, the follower's is reproducible: it
		// re-fetches the upstream bundle and restarts the catch-up from
		// scratch.
		return "fresh", nil
	}
	if err != nil {
		return "", err
	}
	m, err := decodeBundle(data)
	if err != nil {
		return "", err
	}
	lsn := uint64(m.lastSum)

	if l.LastLSN() == 0 {
		// The crash hit between the bundle install and the log seed.
		if err := l.Seed(lsn, 1); err != nil {
			return "", err
		}
	}
	suffix, err := l.ReadFrom(lsn, 0)
	if err != nil {
		return "", err
	}
	for _, rec := range suffix {
		if rec.Kind != store.RecData {
			continue
		}
		m.content += "+" + string(rec.Data)
		lsn = rec.LSN
	}
	if len(suffix) > 0 {
		if err := store.SaveBundle(fsys, followerState, func(w io.Writer) error {
			_, err := w.Write(encodeBundle(bundleMeta{
				content: m.content, last: fmt.Sprintf("lsn%d", lsn), lastSum: uint32(lsn)}))
			return err
		}); err != nil {
			return "", err
		}
	}
	return fmt.Sprintf("state=%s lsn=%d log=%d..%d@%d",
		m.content, lsn, l.FirstLSN(), l.LastLSN(), l.Epoch()), nil
}

func spoolBatchWorkload() Workload {
	return Workload{
		Name: "spool-batch",
		Prepare: func(fsys vfs.FS) error {
			if err := store.SaveBundle(fsys, statePath, func(w io.Writer) error {
				_, err := w.Write(encodeBundle(bundleMeta{content: "v1"}))
				return err
			}); err != nil {
				return err
			}
			j, err := store.OpenJournalFS(fsys, journalPath)
			if err != nil {
				return err
			}
			if err := j.Close(); err != nil {
				return err
			}
			f, err := fsys.OpenFile(spoolDir+"/"+batchName, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
			if err != nil {
				return err
			}
			if _, err := io.WriteString(f, "g1"); err != nil {
				return err
			}
			if err := f.Sync(); err != nil {
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			return fsys.SyncDir(spoolDir)
		},
		Steps: []Step{
			func(fsys vfs.FS) error { return processBatch(fsys, batchName) },
		},
		// Spool recovery converges: both step boundaries recover to the
		// same fully-processed state, so every crash point must too —
		// with the batch applied exactly once.
		Recover: recoverSpool,
	}
}
