package store

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bundle")
	if err := WriteAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "v1")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := WriteAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "v2")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "v2" {
		t.Fatalf("content = %q, want v2", b)
	}
}

func TestWriteAtomicFailureLeavesOriginal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bundle")
	if err := os.WriteFile(path, []byte("orig"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "partial")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	b, _ := os.ReadFile(path)
	if string(b) != "orig" {
		t.Fatalf("original clobbered: %q", b)
	}
	// No temp litter.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("left %d files, want 1", len(entries))
	}
}

func TestChecksums(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	os.WriteFile(path, []byte("hello"), 0o644)
	fromFile, err := ChecksumFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fromFile != ChecksumBytes([]byte("hello")) {
		t.Fatal("file and byte checksums disagree")
	}
	if ChecksumBytes([]byte("hello")) == ChecksumBytes([]byte("hellp")) {
		t.Fatal("checksum collision on near-identical input")
	}
}

func TestJournalLifecycle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Begin("b1", 0xDEAD); err != nil {
		t.Fatal(err)
	}
	if st, sum, ok := j.State("b1"); !ok || st != Begun || sum != 0xDEAD {
		t.Fatalf("state = %v %x %v", st, sum, ok)
	}
	if err := j.MarkApplied("b1"); err != nil {
		t.Fatal(err)
	}
	if st, _, _ := j.State("b1"); st != Applied {
		t.Fatalf("state = %v, want Applied", st)
	}
	if err := j.MarkDone("b1"); err != nil {
		t.Fatal(err)
	}
	// All done -> truncated.
	if fi, _ := os.Stat(path); fi.Size() != 0 {
		t.Fatalf("journal not truncated: %d bytes", fi.Size())
	}
	if _, _, ok := j.State("b1"); ok {
		t.Fatal("entry survived truncation")
	}
	j.Close()
}

func TestJournalReplayAfterCrash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Begin("applied-batch", 1)
	j.MarkApplied("applied-batch")
	j.Begin("begun-batch", 2)
	j.Close() // simulated crash: reopen from disk

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if st, _, _ := j2.State("applied-batch"); st != Applied {
		t.Fatalf("applied-batch replayed as %v", st)
	}
	if st, sum, _ := j2.State("begun-batch"); st != Begun || sum != 2 {
		t.Fatalf("begun-batch replayed as %v sum %d", st, sum)
	}
	pending := j2.Pending()
	if len(pending) != 2 {
		t.Fatalf("pending = %v", pending)
	}
}

func TestJournalIgnoresTornLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal")
	content := "begin ok 0000000a\napplied ok\nbegin torn" // no checksum, no newline
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if st, sum, ok := j.State("ok"); !ok || st != Applied || sum != 10 {
		t.Fatalf("ok = %v %d %v", st, sum, ok)
	}
	if _, _, ok := j.State("torn"); ok {
		t.Fatal("torn record should be dropped")
	}
	// The torn bytes are cut off the journal and quarantined; appends
	// continue cleanly after the valid prefix.
	if sal := j.Salvage(); sal.TailBytes != len("begin torn") {
		t.Fatalf("salvage = %+v", sal)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("torn tail not quarantined: %v", err)
	}
	if err := j.Begin("next", 3); err != nil {
		t.Fatal(err)
	}
}

func TestJournalRebeginRefreshesChecksum(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.Begin("b", 1)
	j.Begin("b", 2)
	if _, sum, _ := j.State("b"); sum != 2 {
		t.Fatalf("sum = %d, want 2", sum)
	}
	if err := j.MarkApplied("nope"); err == nil || !strings.Contains(err.Error(), "no begin") {
		t.Fatalf("MarkApplied without begin: %v", err)
	}
}
