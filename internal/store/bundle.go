package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/midas-graph/midas/internal/vfs"
)

// ErrCorrupt marks on-disk bytes that failed validation (checksum
// mismatch, truncation, unparseable structure). Errors returned by the
// bundle and journal recovery paths wrap it together with the offending
// path, so callers can errors.Is(err, store.ErrCorrupt) and still see
// which file died.
var ErrCorrupt = errors.New("corrupt data")

// Suffixes of the generational bundle scheme. For a bundle at "state":
//
//	state        — the current generation
//	state.tmp    — a generation being written (adopted by recovery if
//	               complete and valid when "state" is missing)
//	state.prev   — the previous generation (rollback target)
//	*.corrupt    — quarantined bytes that failed validation
const (
	tmpSuffix     = ".tmp"
	prevSuffix    = ".prev"
	corruptSuffix = ".corrupt"
)

// SalvageReport describes what recovery had to do beyond the happy
// path. The zero value means a clean load.
type SalvageReport struct {
	// Quarantined lists files that failed validation and were moved
	// aside to *.corrupt for post-mortem.
	Quarantined []string
	// RolledForward: the current generation was missing but a complete,
	// valid new generation was found under the .tmp name (crash between
	// the two renames of SaveBundle) and adopted.
	RolledForward bool
	// RolledBack: the current generation was missing or corrupt and the
	// previous generation was restored.
	RolledBack bool
	// JournalTailBytes counts torn journal bytes truncated and
	// quarantined (set by Recover).
	JournalTailBytes int
}

// Degraded reports whether the recovered state may be older than the
// latest successful save — the operator signal to inspect *.corrupt
// files and re-submit recent batches if needed.
func (r SalvageReport) Degraded() bool {
	return r.RolledBack || len(r.Quarantined) > 0
}

// Empty reports whether recovery was a clean load with no salvage.
func (r SalvageReport) Empty() bool {
	return !r.RolledForward && !r.RolledBack &&
		len(r.Quarantined) == 0 && r.JournalTailBytes == 0
}

// SaveBundle durably replaces the bundle at path with the bytes
// produced by write, keeping the previous generation at path+".prev"
// as a rollback target. The sequence is:
//
//  1. write path+".tmp" (truncate, write, fsync, close)
//  2. rename path → path+".prev" (if path exists)
//  3. rename path+".tmp" → path
//  4. fsync the parent directory
//
// A crash at any step leaves a state LoadBundle recovers from: the old
// generation (steps 1–2 undone or lost), the new generation reachable
// under .tmp with path absent (between steps 2 and 3 — rolled
// forward), or the new generation in place.
func SaveBundle(fsys vfs.FS, path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmpName := path + tmpSuffix
	tmp, err := fsys.OpenFile(tmpName, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: create %s: %w", tmpName, err)
	}
	if err := write(tmp); err != nil {
		tmp.Close()
		fsys.Remove(tmpName)
		return fmt.Errorf("store: write %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		fsys.Remove(tmpName)
		return fmt.Errorf("store: sync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmpName)
		return fmt.Errorf("store: close %s: %w", tmpName, err)
	}
	if _, err := fsys.Stat(path); err == nil {
		if err := fsys.Rename(path, path+prevSuffix); err != nil {
			return fmt.Errorf("store: retire %s: %w", path, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: stat %s: %w", path, err)
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		return fmt.Errorf("store: rename %s: %w", path, err)
	}
	return fsys.SyncDir(dir)
}

// LoadBundle reads the bundle at path, validating each candidate
// generation with validate (nil means any readable file is valid) and
// salvaging whatever a crash or corruption left behind:
//
//   - path valid → returned as-is; a leftover .tmp is deleted.
//   - path corrupt → quarantined to path+".corrupt"; recovery continues.
//   - path absent, .tmp valid → the interrupted save is rolled forward
//     (renamed into place).
//   - otherwise, .prev valid → rolled back to the previous generation.
//
// Invalid candidates are quarantined to <name>+".corrupt". If no valid
// generation remains but corrupt ones existed, the error wraps
// ErrCorrupt and names the bundle path; if nothing existed at all, the
// error wraps os.ErrNotExist.
func LoadBundle(fsys vfs.FS, path string, validate func([]byte) error) ([]byte, SalvageReport, error) {
	var rep SalvageReport
	dir := filepath.Dir(path)
	quarantine := func(p string) error {
		if err := fsys.Rename(p, p+corruptSuffix); err != nil {
			return fmt.Errorf("store: quarantine %s: %w", p, err)
		}
		if err := fsys.SyncDir(dir); err != nil {
			return err
		}
		rep.Quarantined = append(rep.Quarantined, p+corruptSuffix)
		salvageStats.events.Add(1)
		salvageStats.quarantinedFiles.Add(1)
		return nil
	}
	sawAny := false
	var firstBad error

	// Current generation.
	data, err := fsys.ReadFile(path)
	switch {
	case err == nil:
		sawAny = true
		verr := error(nil)
		if validate != nil {
			verr = validate(data)
		}
		if verr == nil {
			// Clean load. A leftover .tmp is debris from a save that
			// never reached its renames; the durable truth is path.
			if _, err := fsys.Stat(path + tmpSuffix); err == nil {
				fsys.Remove(path + tmpSuffix)
			}
			return data, rep, nil
		}
		firstBad = verr
		if err := quarantine(path); err != nil {
			return nil, rep, err
		}
	case !errors.Is(err, os.ErrNotExist):
		return nil, rep, fmt.Errorf("store: read %s: %w", path, err)
	}

	// Interrupted save: adopt a complete new generation left at .tmp.
	tmpName := path + tmpSuffix
	if data, err := fsys.ReadFile(tmpName); err == nil {
		sawAny = true
		verr := error(nil)
		if validate != nil {
			verr = validate(data)
		}
		if verr == nil {
			if err := fsys.Rename(tmpName, path); err != nil {
				return nil, rep, fmt.Errorf("store: roll forward %s: %w", path, err)
			}
			if err := fsys.SyncDir(dir); err != nil {
				return nil, rep, err
			}
			rep.RolledForward = true
			salvageStats.events.Add(1)
			salvageStats.rollForwards.Add(1)
			return data, rep, nil
		}
		if firstBad == nil {
			firstBad = verr
		}
		if err := quarantine(tmpName); err != nil {
			return nil, rep, err
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, rep, fmt.Errorf("store: read %s: %w", tmpName, err)
	}

	// Fall back to the previous generation.
	prevName := path + prevSuffix
	if data, err := fsys.ReadFile(prevName); err == nil {
		sawAny = true
		verr := error(nil)
		if validate != nil {
			verr = validate(data)
		}
		if verr == nil {
			if err := fsys.Rename(prevName, path); err != nil {
				return nil, rep, fmt.Errorf("store: roll back %s: %w", path, err)
			}
			if err := fsys.SyncDir(dir); err != nil {
				return nil, rep, err
			}
			rep.RolledBack = true
			salvageStats.events.Add(1)
			salvageStats.rollBacks.Add(1)
			return data, rep, nil
		}
		if firstBad == nil {
			firstBad = verr
		}
		if err := quarantine(prevName); err != nil {
			return nil, rep, err
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, rep, fmt.Errorf("store: read %s: %w", prevName, err)
	}

	if sawAny {
		return nil, rep, fmt.Errorf("store: bundle %s: no valid generation: %w (%w)",
			path, ErrCorrupt, firstBad)
	}
	return nil, rep, fmt.Errorf("store: bundle %s: %w", path, os.ErrNotExist)
}

// RecoverResult is the outcome of Recover: the best recoverable bundle
// (nil when none exists on disk), the opened journal (nil when no
// journal path was given), and everything salvage had to do.
type RecoverResult struct {
	Bundle  []byte
	Journal *Journal
	Salvage SalvageReport
}

// Recover is the salvage-mode startup path used by midas-serve and
// midas-maintain: load the bundle with LoadBundle, open the journal
// with OpenJournalFS, and fold both salvage reports together. Unlike
// LoadBundle, an all-generations-corrupt bundle is not an error: the
// damage is already quarantined, so the caller starts degraded (empty
// state, salvage report populated) instead of crash-looping. Only
// unexpected I/O errors are returned.
func Recover(fsys vfs.FS, bundlePath, journalPath string, validate func([]byte) error) (*RecoverResult, error) {
	res := &RecoverResult{}
	data, rep, err := LoadBundle(fsys, bundlePath, validate)
	res.Salvage = rep
	switch {
	case err == nil:
		res.Bundle = data
	case errors.Is(err, os.ErrNotExist):
		// First boot: nothing to recover.
	case errors.Is(err, ErrCorrupt):
		// Every generation failed validation and is quarantined; start
		// degraded rather than refuse to start.
	default:
		return nil, err
	}
	if journalPath != "" {
		j, err := OpenJournalFS(fsys, journalPath)
		if err != nil {
			return nil, err
		}
		res.Journal = j
		if s := j.Salvage(); s.TailBytes > 0 {
			res.Salvage.JournalTailBytes = s.TailBytes
			res.Salvage.Quarantined = append(res.Salvage.Quarantined, s.QuarantinePath)
		}
	}
	return res, nil
}
