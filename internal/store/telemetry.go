package store

import (
	"sync/atomic"

	"github.com/midas-graph/midas/internal/telemetry"
)

// Process-wide salvage and checkpoint counters, following the
// accumulate-atomically / expose-via-CounterFunc idiom of internal/iso.
// They are bumped by LoadBundle, OpenJournalFS and Journal.Checkpoint
// regardless of which vfs.FS is underneath, so both production and the
// crash sweep observe them.
var salvageStats struct {
	events           atomic.Uint64
	quarantinedFiles atomic.Uint64
	rollForwards     atomic.Uint64
	rollBacks        atomic.Uint64
	journalTornBytes atomic.Uint64
	checkpoints      atomic.Uint64
}

// Stats is a snapshot of the store's salvage and checkpoint counters.
type Stats struct {
	// SalvageEvents counts recovery actions beyond a clean load:
	// quarantines, roll-forwards, roll-backs and journal tail repairs.
	SalvageEvents uint64
	// QuarantinedFiles counts files moved or written aside as *.corrupt.
	QuarantinedFiles uint64
	// RollForwards counts interrupted saves adopted from .tmp.
	RollForwards uint64
	// RollBacks counts restarts that fell back to the .prev generation.
	RollBacks uint64
	// JournalTornBytes counts bytes truncated off torn journal tails.
	JournalTornBytes uint64
	// JournalCheckpoints counts journal compactions.
	JournalCheckpoints uint64
}

// Snapshot returns the current counters.
func Snapshot() Stats {
	return Stats{
		SalvageEvents:      salvageStats.events.Load(),
		QuarantinedFiles:   salvageStats.quarantinedFiles.Load(),
		RollForwards:       salvageStats.rollForwards.Load(),
		RollBacks:          salvageStats.rollBacks.Load(),
		JournalTornBytes:   salvageStats.journalTornBytes.Load(),
		JournalCheckpoints: salvageStats.checkpoints.Load(),
	}
}

// RegisterMetrics exposes the store counters on reg in Prometheus form.
// Registration is idempotent; a Nop registry is a no-op.
func RegisterMetrics(reg *telemetry.Registry) {
	reg.NewCounterFunc("store_salvage_total",
		"Salvage actions taken by bundle/journal recovery (quarantine, roll-forward, roll-back, torn-tail repair).",
		func() float64 { return float64(salvageStats.events.Load()) })
	reg.NewCounterFunc("store_quarantined_files_total",
		"Files moved or written aside as *.corrupt for post-mortem.",
		func() float64 { return float64(salvageStats.quarantinedFiles.Load()) })
	reg.NewCounterFunc("store_bundle_rollforward_total",
		"Interrupted bundle saves adopted from the .tmp generation.",
		func() float64 { return float64(salvageStats.rollForwards.Load()) })
	reg.NewCounterFunc("store_bundle_rollback_total",
		"Recoveries that fell back to the .prev bundle generation.",
		func() float64 { return float64(salvageStats.rollBacks.Load()) })
	reg.NewCounterFunc("store_journal_torn_bytes_total",
		"Bytes truncated off torn journal tails and quarantined.",
		func() float64 { return float64(salvageStats.journalTornBytes.Load()) })
	reg.NewCounterFunc("store_journal_checkpoints_total",
		"Journal checkpoint compactions.",
		func() float64 { return float64(salvageStats.checkpoints.Load()) })
}
