// Package store provides the durability primitives of the serving
// layer: atomic checksummed file writes (tmp + fsync + rename + parent
// fsync), a generational state-bundle scheme with salvage-mode
// recovery, and an append-fsync batch journal with torn-tail salvage
// and size-bounded checkpointing, giving the spool watcher exactly-once
// semantics across crashes.
//
// Every file operation in this package goes through the vfs seam
// (internal/vfs) — never the os package directly — so the
// crash-consistency sweep in internal/store/crashtest can replay every
// prefix of the recorded operation trace into a simulated filesystem
// and prove that recovery always lands on the complete pre-crash or
// complete post-crash state. The fsyncdiscipline lint analyzer enforces
// the seam.
package store

import (
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"

	"github.com/midas-graph/midas/internal/vfs"
)

// WriteAtomic durably replaces the file at path with the bytes produced
// by write, using the production filesystem. See WriteAtomicFS.
func WriteAtomic(path string, write func(w io.Writer) error) error {
	return WriteAtomicFS(vfs.OS, path, write)
}

// WriteAtomicFS durably replaces the file at path with the bytes
// produced by write: the content goes to a temporary file in the same
// directory, is fsynced, renamed over path, and the parent directory is
// fsynced so the rename itself survives a crash. On any error the
// temporary file is removed and path is left untouched.
func WriteAtomicFS(fsys vfs.FS, path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: create temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer func() {
		if tmpName != "" {
			tmp.Close()
			fsys.Remove(tmpName)
		}
	}()
	if err := write(tmp); err != nil {
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("store: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", path, err)
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		fsys.Remove(tmpName)
		tmpName = ""
		return fmt.Errorf("store: rename %s: %w", path, err)
	}
	tmpName = "" // renamed; nothing to clean up
	return fsys.SyncDir(dir)
}

// ChecksumBytes returns the IEEE CRC32 of b — the checksum family used
// for both state bundles and journal batch fingerprints.
func ChecksumBytes(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// ChecksumFile returns the IEEE CRC32 of the file's contents.
func ChecksumFile(path string) (uint32, error) {
	return ChecksumFileFS(vfs.OS, path)
}

// ChecksumFileFS is ChecksumFile through the vfs seam.
func ChecksumFileFS(fsys vfs.FS, path string) (uint32, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	h := crc32.NewIEEE()
	if _, err := io.Copy(h, f); err != nil {
		return 0, err
	}
	return h.Sum32(), nil
}
