// Package store provides the durability primitives of the serving
// layer: atomic checksummed file writes (tmp + fsync + rename + parent
// fsync) and an append-fsync batch journal giving the spool watcher
// exactly-once semantics across crashes.
package store

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// WriteAtomic durably replaces the file at path with the bytes produced
// by write: the content goes to a temporary file in the same directory,
// is fsynced, renamed over path, and the parent directory is fsynced so
// the rename itself survives a crash. On any error the temporary file
// is removed and path is left untouched.
func WriteAtomic(path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: create temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer func() {
		if tmpName != "" {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if err := write(tmp); err != nil {
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("store: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		tmpName = ""
		return fmt.Errorf("store: rename %s: %w", path, err)
	}
	tmpName = "" // renamed; nothing to clean up
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename inside it is
// durable. Filesystems that do not support directory fsync are
// tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// ChecksumBytes returns the IEEE CRC32 of b — the checksum family used
// for both state bundles and journal batch fingerprints.
func ChecksumBytes(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// ChecksumFile returns the IEEE CRC32 of the file's contents.
func ChecksumFile(path string) (uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	h := crc32.NewIEEE()
	if _, err := io.Copy(h, f); err != nil {
		return 0, err
	}
	return h.Sum32(), nil
}
