package store

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"github.com/midas-graph/midas/internal/vfs"
)

func TestRepRecordRoundTrip(t *testing.T) {
	recs := []RepRecord{
		{Kind: RecData, LSN: 1, Epoch: 1, Name: "batch-1.graphs", Fingerprint: 0xdeadbeef, Data: []byte(`{"insert":"g"}`)},
		{Kind: RecEpoch, LSN: 2, Epoch: 2},
		{Kind: RecData, LSN: 3, Epoch: 2, Name: "batch-2.graphs", Fingerprint: 42, Data: []byte("x")},
	}
	wire := EncodeRecords(recs)
	got, err := DecodeRecords(wire)
	if err != nil {
		t.Fatalf("DecodeRecords: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Kind != recs[i].Kind || got[i].LSN != recs[i].LSN || got[i].Epoch != recs[i].Epoch ||
			got[i].Name != recs[i].Name || got[i].Fingerprint != recs[i].Fingerprint ||
			!bytes.Equal(got[i].Data, recs[i].Data) {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestDecodeRecordRejectsDamage(t *testing.T) {
	rec := RepRecord{Kind: RecData, LSN: 7, Epoch: 3, Name: "b", Fingerprint: 9, Data: []byte("payload")}
	good := EncodeRecord(rec)

	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated header", func(b []byte) []byte { return b[:10] }},
		{"truncated body", func(b []byte) []byte { return b[:len(b)-5] }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"flipped payload bit", func(b []byte) []byte { b[repHeaderLen+1] ^= 0x01; return b }},
		{"flipped crc bit", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
	}
	for _, c := range cases {
		b := c.mut(append([]byte(nil), good...))
		if _, _, err := DecodeRecord(b); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", c.name, err)
		}
	}
}

func TestRepLogAppendReadFrom(t *testing.T) {
	sim := vfs.NewSim()
	l, err := OpenRepLogFS(sim, "rep.log")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	if l.FirstLSN() != 0 || l.LastLSN() != 0 || l.Epoch() != 0 {
		t.Fatalf("fresh log not empty: first=%d last=%d epoch=%d", l.FirstLSN(), l.LastLSN(), l.Epoch())
	}

	lsn, err := l.Append("batch-1.graphs", 111, []byte("u1"))
	if err != nil || lsn != 1 {
		t.Fatalf("Append #1 = (%d, %v), want (1, nil)", lsn, err)
	}
	if l.Epoch() != 1 {
		t.Fatalf("first commit should open epoch 1, got %d", l.Epoch())
	}
	lsn, err = l.Append("batch-2.graphs", 222, []byte("u2"))
	if err != nil || lsn != 2 {
		t.Fatalf("Append #2 = (%d, %v), want (2, nil)", lsn, err)
	}

	// Retry idempotence: re-appending the tail batch is a no-op.
	lsn, err = l.Append("batch-2.graphs", 222, []byte("u2"))
	if err != nil || lsn != 2 {
		t.Fatalf("duplicate Append = (%d, %v), want (2, nil)", lsn, err)
	}
	if l.LastLSN() != 2 {
		t.Fatalf("LastLSN = %d after duplicate append, want 2", l.LastLSN())
	}

	recs, err := l.ReadFrom(0, 0)
	if err != nil {
		t.Fatalf("ReadFrom(0): %v", err)
	}
	if len(recs) != 2 || recs[0].LSN != 1 || recs[1].LSN != 2 {
		t.Fatalf("ReadFrom(0) = %+v", recs)
	}
	if recs[0].Fingerprint != 111 || string(recs[1].Data) != "u2" {
		t.Fatalf("record contents mangled: %+v", recs)
	}
	recs, err = l.ReadFrom(1, 0)
	if err != nil || len(recs) != 1 || recs[0].LSN != 2 {
		t.Fatalf("ReadFrom(1) = %+v, %v", recs, err)
	}
	recs, err = l.ReadFrom(2, 0)
	if err != nil || recs != nil {
		t.Fatalf("ReadFrom(tail) = %+v, %v, want nil, nil", recs, err)
	}
	recs, err = l.ReadFrom(0, 1)
	if err != nil || len(recs) != 1 {
		t.Fatalf("ReadFrom(0, max=1) = %+v, %v", recs, err)
	}
}

func TestRepLogReopenContinues(t *testing.T) {
	sim := vfs.NewSim()
	l, err := OpenRepLogFS(sim, "rep.log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append("a", 1, []byte("u1")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.BumpEpoch(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append("b", 2, []byte("u2")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, err := OpenRepLogFS(sim, "rep.log")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if s := l2.Salvage(); s.TailBytes != 0 {
		t.Fatalf("clean reopen salvaged %d bytes", s.TailBytes)
	}
	if l2.FirstLSN() != 1 || l2.LastLSN() != 3 || l2.Epoch() != 2 {
		t.Fatalf("reopen state: first=%d last=%d epoch=%d, want 1/3/2",
			l2.FirstLSN(), l2.LastLSN(), l2.Epoch())
	}
	lsn, err := l2.Append("c", 3, []byte("u3"))
	if err != nil || lsn != 4 {
		t.Fatalf("append after reopen = (%d, %v), want (4, nil)", lsn, err)
	}
	recs, err := l2.ReadFrom(0, 0)
	if err != nil || len(recs) != 4 {
		t.Fatalf("ReadFrom after reopen: %d records, %v", len(recs), err)
	}
	if recs[3].Epoch != 2 {
		t.Fatalf("post-bump append carries epoch %d, want 2", recs[3].Epoch)
	}
}

func TestRepLogSalvagesTornTail(t *testing.T) {
	sim := vfs.NewSim()
	l, err := OpenRepLogFS(sim, "rep.log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append("a", 1, []byte("u1")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append("b", 2, []byte("u2")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Tear the final record mid-frame, as a crash during append would.
	data, err := sim.ReadFile("rep.log")
	if err != nil {
		t.Fatal(err)
	}
	torn := append([]byte(nil), data[:len(data)-7]...)
	if err := WriteAtomicFS(sim, "rep.log", func(w io.Writer) error {
		_, err := w.Write(torn)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenRepLogFS(sim, "rep.log")
	if err != nil {
		t.Fatalf("open torn log: %v", err)
	}
	defer l2.Close()
	sal := l2.Salvage()
	if sal.TailBytes == 0 {
		t.Fatal("torn tail not salvaged")
	}
	if sal.QuarantinePath != "rep.log"+corruptSuffix {
		t.Fatalf("QuarantinePath = %q", sal.QuarantinePath)
	}
	if _, err := sim.ReadFile(sal.QuarantinePath); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if l2.LastLSN() != 1 {
		t.Fatalf("LastLSN after salvage = %d, want 1", l2.LastLSN())
	}
	// The log must accept new appends continuing the valid prefix.
	lsn, err := l2.Append("c", 3, []byte("u3"))
	if err != nil || lsn != 2 {
		t.Fatalf("append after salvage = (%d, %v), want (2, nil)", lsn, err)
	}
}

func TestRepLogAppendRecord(t *testing.T) {
	sim := vfs.NewSim()
	l, err := OpenRepLogFS(sim, "rep.log")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Follower bootstrap: seed at the bundle's position, then install
	// shipped records verbatim.
	if err := l.Seed(10, 3); err != nil {
		t.Fatalf("Seed: %v", err)
	}
	if err := l.Seed(10, 3); !errors.Is(err, ErrLogSealed) {
		t.Fatalf("double Seed err = %v, want ErrLogSealed", err)
	}
	rec := RepRecord{Kind: RecData, LSN: 11, Epoch: 3, Name: "a", Fingerprint: 5, Data: []byte("u")}
	if err := l.AppendRecord(rec); err != nil {
		t.Fatalf("AppendRecord: %v", err)
	}
	// Duplicate delivery is ignored.
	if err := l.AppendRecord(rec); err != nil {
		t.Fatalf("duplicate AppendRecord: %v", err)
	}
	if l.LastLSN() != 11 {
		t.Fatalf("LastLSN = %d, want 11", l.LastLSN())
	}
	// A gap is rejected — the follower must repair via pull first.
	gap := RepRecord{Kind: RecData, LSN: 13, Epoch: 3, Name: "c"}
	if err := l.AppendRecord(gap); !errors.Is(err, ErrLogSealed) {
		t.Fatalf("gap AppendRecord err = %v, want ErrLogSealed", err)
	}
	// Epoch regression is rejected (fencing).
	old := RepRecord{Kind: RecData, LSN: 12, Epoch: 2, Name: "b"}
	if err := l.AppendRecord(old); !errors.Is(err, ErrLogSealed) {
		t.Fatalf("epoch-regression AppendRecord err = %v, want ErrLogSealed", err)
	}
}

func TestRepLogCompactTo(t *testing.T) {
	sim := vfs.NewSim()
	l, err := OpenRepLogFS(sim, "rep.log")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if _, err := l.Append("batch", uint64(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		// Defeat dedup by alternating names.
		if _, err := l.Append("other", uint64(i)+100, []byte{byte(i), 0xff}); err != nil {
			t.Fatal(err)
		}
	}
	if l.LastLSN() != 10 {
		t.Fatalf("LastLSN = %d, want 10", l.LastLSN())
	}
	if err := l.CompactTo(6); err != nil {
		t.Fatalf("CompactTo: %v", err)
	}
	if l.FirstLSN() != 6 || l.LastLSN() != 10 {
		t.Fatalf("after compact: first=%d last=%d, want 6/10", l.FirstLSN(), l.LastLSN())
	}
	if _, err := l.ReadFrom(3, 0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("ReadFrom(3) err = %v, want ErrCompacted", err)
	}
	recs, err := l.ReadFrom(6, 0)
	if err != nil || len(recs) != 4 || recs[0].LSN != 7 {
		t.Fatalf("ReadFrom(6) = %d records (first %+v), %v", len(recs), recs[0], err)
	}
	// Appends continue past the compaction.
	lsn, err := l.Append("batch", 999, []byte("new"))
	if err != nil || lsn != 11 {
		t.Fatalf("append after compact = (%d, %v), want (11, nil)", lsn, err)
	}
	l.Close()

	// The compacted log survives reopen with the same boundaries.
	l2, err := OpenRepLogFS(sim, "rep.log")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.FirstLSN() != 6 || l2.LastLSN() != 11 {
		t.Fatalf("reopen after compact: first=%d last=%d, want 6/11", l2.FirstLSN(), l2.LastLSN())
	}
}

func TestRepLogWait(t *testing.T) {
	sim := vfs.NewSim()
	l, err := OpenRepLogFS(sim, "rep.log")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append("a", 1, []byte("u")); err != nil {
		t.Fatal(err)
	}

	// Already-satisfied wait returns immediately.
	if !l.Wait(nil, 0) {
		t.Fatal("Wait(after=0) with LSN 1 present should return true")
	}

	done := make(chan struct{})
	got := make(chan bool, 1)
	go func() { got <- l.Wait(done, 1) }()
	if _, err := l.Append("b", 2, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if ok := <-got; !ok {
		t.Fatal("Wait should report new records after append")
	}

	// Cancellation unblocks a parked waiter.
	go func() { got <- l.Wait(done, l.LastLSN()) }()
	close(done)
	if ok := <-got; ok {
		t.Fatal("cancelled Wait should return false")
	}
}
