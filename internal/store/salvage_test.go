package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"

	"github.com/midas-graph/midas/internal/vfs"
)

// writeSim seeds a file on a simulated filesystem and makes it durable.
func writeSim(t *testing.T, sim *vfs.Sim, path, content string) {
	t.Helper()
	f, err := sim.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(f, content); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sim.SetDurable()
}

// TestJournalTornTailEveryTruncation opens a journal truncated at every
// possible length of its final record. In every case the valid prefix
// must replay, the torn bytes must be quarantined to *.corrupt, the
// journal must be cut back to the valid prefix, and appends must keep
// working — recovery never needs manual repair.
func TestJournalTornTailEveryTruncation(t *testing.T) {
	prefix := "begin b1 0000000a\napplied b1\nbegin b2 0000000b\n"
	final := "applied b2\n"
	for cut := 0; cut < len(final); cut++ {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			sim := vfs.NewSim()
			writeSim(t, sim, "journal", prefix+final[:cut])

			j, err := OpenJournalFS(sim, "journal")
			if err != nil {
				t.Fatal(err)
			}
			defer j.Close()

			// The valid prefix replays in full.
			if st, _, ok := j.State("b1"); !ok || st != Applied {
				t.Fatalf("b1 = %v %v, want Applied", st, ok)
			}
			if st, _, ok := j.State("b2"); !ok || st != Begun {
				t.Fatalf("b2 = %v %v, want Begun", st, ok)
			}

			sal := j.Salvage()
			if cut == 0 {
				// Nothing after the prefix: a clean journal, no salvage.
				if sal.TailBytes != 0 {
					t.Fatalf("clean journal reported salvage: %+v", sal)
				}
			} else {
				if sal.TailBytes != cut {
					t.Fatalf("TailBytes = %d, want %d", sal.TailBytes, cut)
				}
				if sal.QuarantinePath != "journal"+corruptSuffix {
					t.Fatalf("QuarantinePath = %q", sal.QuarantinePath)
				}
				q, err := sim.ReadFile(sal.QuarantinePath)
				if err != nil {
					t.Fatalf("quarantine file: %v", err)
				}
				if string(q) != final[:cut] {
					t.Fatalf("quarantined %q, want %q", q, final[:cut])
				}
			}
			// The file itself is cut back to the valid prefix.
			if on, _ := sim.ReadFile("journal"); string(on) != prefix {
				t.Fatalf("journal content = %q, want the valid prefix", on)
			}

			// Appends continue after the prefix and survive a reopen.
			if err := j.Begin("b3", 0xC); err != nil {
				t.Fatal(err)
			}
			j.Close()
			j2, err := OpenJournalFS(sim, "journal")
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			if got := j2.Pending(); strings.Join(got, ",") != "b1,b2,b3" {
				t.Fatalf("pending after reopen = %v", got)
			}
			if j2.Salvage().TailBytes != 0 {
				t.Fatal("repaired journal reported salvage again on reopen")
			}
		})
	}
}

// TestJournalTornChecksumQuarantined covers the subtler tear: the final
// line is newline-terminated but its begin record lost the checksum
// field, so it parses incomplete and is cut.
func TestJournalTornChecksumQuarantined(t *testing.T) {
	sim := vfs.NewSim()
	writeSim(t, sim, "journal", "begin ok 00000001\nbegin torn\n")
	j, err := OpenJournalFS(sim, "journal")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, _, ok := j.State("torn"); ok {
		t.Fatal("checksum-less begin replayed")
	}
	if sal := j.Salvage(); sal.TailBytes != len("begin torn\n") {
		t.Fatalf("TailBytes = %d", sal.TailBytes)
	}
}

// TestJournalCheckpointCompacts pins the compaction contract directly:
// Done entries vanish, live entries are rewritten minimally, and the
// compacted journal keeps accepting appends.
func TestJournalCheckpointCompacts(t *testing.T) {
	sim := vfs.NewSim()
	j, err := OpenJournalFS(sim, "journal")
	if err != nil {
		t.Fatal(err)
	}
	// One fully-done batch (kept pending by a sibling so the journal
	// doesn't self-truncate), one applied, one begun.
	j.Begin("done-batch", 1)
	j.MarkApplied("done-batch")
	j.Begin("applied-batch", 2)
	j.MarkApplied("applied-batch")
	j.Begin("begun-batch", 3)
	j.MarkDone("done-batch")
	before := j.Size()

	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if j.Size() >= before {
		t.Fatalf("checkpoint did not shrink the journal: %d -> %d", before, j.Size())
	}
	content, _ := sim.ReadFile("journal")
	want := "begin applied-batch 00000002\napplied applied-batch\nbegin begun-batch 00000003\n"
	if string(content) != want {
		t.Fatalf("compacted journal = %q, want %q", content, want)
	}

	// The reopened handle appends to the compacted file.
	if err := j.Begin("later", 4); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := OpenJournalFS(sim, "journal")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Pending(); strings.Join(got, ",") != "applied-batch,begun-batch,later" {
		t.Fatalf("pending after checkpoint+reopen = %v", got)
	}
}

// TestMaybeCheckpointThreshold pins the knob: below the threshold (or
// with the knob off) nothing runs; at the threshold it compacts.
func TestMaybeCheckpointThreshold(t *testing.T) {
	sim := vfs.NewSim()
	j, err := OpenJournalFS(sim, "journal")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.Begin("b", 1)
	if ran, err := j.MaybeCheckpoint(); err != nil || ran {
		t.Fatalf("disabled checkpoint ran: %v %v", ran, err)
	}
	j.SetCheckpointThreshold(j.Size() + 1)
	if ran, err := j.MaybeCheckpoint(); err != nil || ran {
		t.Fatalf("below-threshold checkpoint ran: %v %v", ran, err)
	}
	j.SetCheckpointThreshold(j.Size())
	if ran, err := j.MaybeCheckpoint(); err != nil || !ran {
		t.Fatalf("at-threshold checkpoint skipped: %v %v", ran, err)
	}
}

// TestSimFailAtReplacesFileFailpoints demonstrates the VFS failure
// schedule that supersedes ad-hoc file failpoints: arm the simulated
// filesystem to fail at each mutating op of a bundle save and check the
// previous generation always survives — the same guarantee the old
// error-injection style asserted, but exhaustively over the op trace.
func TestSimFailAtReplacesFileFailpoints(t *testing.T) {
	seed := func() *vfs.Sim {
		sim := vfs.NewSim()
		if err := SaveBundle(sim, "bundle", func(w io.Writer) error {
			_, err := io.WriteString(w, "v1")
			return err
		}); err != nil {
			t.Fatal(err)
		}
		sim.SetDurable()
		sim.ResetTrace()
		return sim
	}
	// Count the ops of an unimpeded save.
	probe := seed()
	if err := SaveBundle(probe, "bundle", func(w io.Writer) error {
		_, err := io.WriteString(w, "v2")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	ops := probe.Ops()
	if ops == 0 {
		t.Fatal("save produced no ops to fail")
	}

	for k := 0; k < ops; k++ {
		sim := seed()
		sim.FailAt(k, fmt.Errorf("injected fault at op %d", k))
		err := SaveBundle(sim, "bundle", func(w io.Writer) error {
			_, err := io.WriteString(w, "v2")
			return err
		})
		if err == nil {
			t.Fatalf("op %d: injected fault not surfaced", k)
		}
		data, _, err := LoadBundle(sim, "bundle", func([]byte) error { return nil })
		if err != nil {
			t.Fatalf("op %d: recovery failed: %v", k, err)
		}
		if got := string(data); got != "v1" && got != "v2" {
			t.Fatalf("op %d: hybrid bundle %q", k, got)
		}
	}
}

// TestLoadBundleWrapsErrCorruptWithPath pins the error contract: when
// every generation is damaged the error names the bundle path and
// unwraps to ErrCorrupt.
func TestLoadBundleWrapsErrCorruptWithPath(t *testing.T) {
	sim := vfs.NewSim()
	writeSim(t, sim, "d-bundle", "garbage")
	bad := errors.New("checksum mismatch")
	_, rep, err := LoadBundle(sim, "d-bundle", func([]byte) error { return bad })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "d-bundle") {
		t.Fatalf("error does not name the offending path: %v", err)
	}
	if len(rep.Quarantined) == 0 {
		t.Fatal("damaged bundle not quarantined")
	}
	if _, err := sim.ReadFile("d-bundle" + corruptSuffix); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
}
