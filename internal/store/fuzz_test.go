package store

import (
	"io"
	"os"
	"strings"
	"testing"

	"github.com/midas-graph/midas/internal/vfs"
)

// FuzzJournalReplay feeds arbitrary bytes to the journal recovery path:
// OpenJournalFS must never panic, must trust only a valid record
// prefix, and its salvage must reach a fixpoint — reopening the
// repaired journal finds nothing further to quarantine.
func FuzzJournalReplay(f *testing.F) {
	f.Add("begin b1 0000000a\napplied b1\ndone b1\n")
	f.Add("begin b1 0000000a\napplied b1\nbegin b2 00")
	f.Add("applied orphan\ndone orphan\n")
	f.Add("begin b1 zzzz\n")
	f.Add("garbage\x00\xff\n")
	f.Add("")
	f.Add("begin\n")
	f.Add("begin b1 0000000a")
	f.Fuzz(func(t *testing.T, input string) {
		sim := vfs.NewSim()
		seedSimFile(t, sim, "journal", input)

		j, err := OpenJournalFS(sim, "journal")
		if err != nil {
			return // injected-fault style errors are fine; panics are not
		}
		salv := j.Salvage()
		if salv.TailBytes > len(input) {
			t.Fatalf("salvage claims %d torn bytes from %d input bytes", salv.TailBytes, len(input))
		}
		pending := j.Pending()
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}

		// Fixpoint: the repaired journal must reopen cleanly, with the
		// same surviving state and nothing left to salvage.
		j2, err := OpenJournalFS(sim, "journal")
		if err != nil {
			t.Fatalf("repaired journal failed to reopen: %v", err)
		}
		defer j2.Close()
		if s2 := j2.Salvage(); s2.TailBytes != 0 {
			t.Fatalf("salvage not a fixpoint: second open quarantined %d bytes", s2.TailBytes)
		}
		p2 := j2.Pending()
		if strings.Join(p2, ",") != strings.Join(pending, ",") {
			t.Fatalf("pending set changed across reopen: %v vs %v", p2, pending)
		}
	})
}

// FuzzJournalAppendAfterReplay: whatever state recovery lands in, the
// journal must accept a fresh batch lifecycle afterwards.
func FuzzJournalAppendAfterReplay(f *testing.F) {
	f.Add("begin b1 0000000a\n")
	f.Add("begin batch-00000001 0dcbf109\napplied batch-00000001\ndone batch-00000001\nbegin batch-")
	f.Fuzz(func(t *testing.T, input string) {
		sim := vfs.NewSim()
		seedSimFile(t, sim, "journal", input)
		j, err := OpenJournalFS(sim, "journal")
		if err != nil {
			return
		}
		defer j.Close()
		if err := j.Begin("fuzz-batch", 42); err != nil {
			t.Fatalf("Begin after replay: %v", err)
		}
		if err := j.MarkApplied("fuzz-batch"); err != nil {
			t.Fatalf("MarkApplied after replay: %v", err)
		}
		if st, _, ok := j.State("fuzz-batch"); !ok || st != Applied {
			t.Fatalf("fresh batch state = %v,%v, want Applied", st, ok)
		}
		// MarkDone may truncate the whole journal (when every tracked
		// entry is done), after which the entry is legitimately gone —
		// only the call itself must succeed.
		if err := j.MarkDone("fuzz-batch"); err != nil {
			t.Fatalf("MarkDone after replay: %v", err)
		}
		if st, _, ok := j.State("fuzz-batch"); ok && st != Done {
			t.Fatalf("fresh batch state = %v after MarkDone", st)
		}
	})
}

// seedSimFile writes content durably to the simulated filesystem.
func seedSimFile(t *testing.T, sim *vfs.Sim, path, content string) {
	t.Helper()
	f, err := sim.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(f, content); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sim.SetDurable()
}
