package store

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// EntryState is the lifecycle position of one journal entry.
type EntryState int

const (
	// Begun: intent recorded, the batch may or may not have been
	// applied — re-applying is safe because Maintain is transactional
	// and the state bundle is only persisted after success.
	Begun EntryState = iota
	// Applied: the batch's effects are durably in the state bundle;
	// the spool file must not be re-applied, only marked done.
	Applied
	// Done: fully processed (spool file renamed); kept only until the
	// journal truncates.
	Done
)

func (s EntryState) String() string {
	switch s {
	case Begun:
		return "begun"
	case Applied:
		return "applied"
	case Done:
		return "done"
	}
	return fmt.Sprintf("EntryState(%d)", int(s))
}

type journalEntry struct {
	state EntryState
	sum   uint32
}

// Journal is an append-fsync write-ahead log for spool batch
// processing. Each batch goes through three durable records:
//
//	begin <name> <crc32>   — written before Engine.Maintain
//	applied <name>         — written after the state bundle is saved
//	done <name>            — written after the spool file is renamed
//
// On restart, OpenJournal replays the records: a batch that is
// "applied" but not "done" must be renamed without re-applying; a batch
// that is only "begun" is re-applied (the pre-batch state bundle is
// what's on disk). The checksum ties the record to the batch file's
// contents, so a same-named file with different content is treated as a
// new batch. When every entry reaches Done the journal truncates
// itself.
type Journal struct {
	path    string
	f       *os.File
	entries map[string]*journalEntry
}

// OpenJournal opens (creating if needed) the journal at path and
// replays any existing records. A torn trailing line — the crash
// signature of an interrupted append — is ignored.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open journal: %w", err)
	}
	j := &Journal{path: path, f: f, entries: make(map[string]*journalEntry)}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		j.replay(sc.Text())
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: read journal: %w", err)
	}
	end, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seek journal: %w", err)
	}
	// Terminate a torn trailing line so later appends start fresh.
	if end > 0 {
		last := make([]byte, 1)
		if _, err := f.ReadAt(last, end-1); err == nil && last[0] != '\n' {
			if _, err := f.WriteString("\n"); err != nil {
				f.Close()
				return nil, fmt.Errorf("store: journal repair: %w", err)
			}
		}
	}
	return j, nil
}

func (j *Journal) replay(line string) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return // blank or torn line
	}
	name := fields[1]
	switch fields[0] {
	case "begin":
		if len(fields) < 3 {
			return // torn: checksum missing
		}
		sum, err := strconv.ParseUint(fields[2], 16, 32)
		if err != nil {
			return
		}
		j.entries[name] = &journalEntry{state: Begun, sum: uint32(sum)}
	case "applied":
		if e := j.entries[name]; e != nil {
			e.state = Applied
		}
	case "done":
		if e := j.entries[name]; e != nil {
			e.state = Done
		}
	}
}

func (j *Journal) append(line string) error {
	if _, err := j.f.WriteString(line + "\n"); err != nil {
		return fmt.Errorf("store: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: journal sync: %w", err)
	}
	return nil
}

// Begin durably records the intent to apply the named batch with the
// given content checksum. Re-beginning a batch (e.g. a retry after a
// failed Maintain) refreshes its checksum.
func (j *Journal) Begin(name string, sum uint32) error {
	if err := j.append(fmt.Sprintf("begin %s %08x", name, sum)); err != nil {
		return err
	}
	j.entries[name] = &journalEntry{state: Begun, sum: sum}
	return nil
}

// MarkApplied durably records that the batch's effects are persisted.
func (j *Journal) MarkApplied(name string) error {
	e := j.entries[name]
	if e == nil {
		return fmt.Errorf("store: MarkApplied(%s): no begin record", name)
	}
	if err := j.append("applied " + name); err != nil {
		return err
	}
	e.state = Applied
	return nil
}

// MarkDone durably records that the batch's spool file was renamed.
// When every tracked entry is done, the journal truncates to empty so
// it never grows without bound.
func (j *Journal) MarkDone(name string) error {
	e := j.entries[name]
	if e == nil {
		return fmt.Errorf("store: MarkDone(%s): no begin record", name)
	}
	if err := j.append("done " + name); err != nil {
		return err
	}
	e.state = Done
	for _, e := range j.entries {
		if e.state != Done {
			return nil
		}
	}
	return j.truncate()
}

func (j *Journal) truncate() error {
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("store: journal truncate: %w", err)
	}
	if _, err := j.f.Seek(0, 0); err != nil {
		return fmt.Errorf("store: journal seek: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: journal sync: %w", err)
	}
	j.entries = make(map[string]*journalEntry)
	return nil
}

// State reports the recorded state and checksum of a batch name.
func (j *Journal) State(name string) (EntryState, uint32, bool) {
	e := j.entries[name]
	if e == nil {
		return 0, 0, false
	}
	return e.state, e.sum, true
}

// Pending returns the names (sorted) of entries that are not Done —
// the crash-recovery work list.
func (j *Journal) Pending() []string {
	var out []string
	for name, e := range j.entries {
		if e.state != Done {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Close closes the journal file.
func (j *Journal) Close() error { return j.f.Close() }
