package store

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/midas-graph/midas/internal/vfs"
)

// EntryState is the lifecycle position of one journal entry.
type EntryState int

const (
	// Begun: intent recorded, the batch may or may not have been
	// applied — re-applying is safe because Maintain is transactional
	// and the state bundle is only persisted after success.
	Begun EntryState = iota
	// Applied: the batch's effects are durably in the state bundle;
	// the spool file must not be re-applied, only marked done.
	Applied
	// Done: fully processed (spool file renamed); kept only until the
	// journal truncates or checkpoints.
	Done
)

func (s EntryState) String() string {
	switch s {
	case Begun:
		return "begun"
	case Applied:
		return "applied"
	case Done:
		return "done"
	}
	return fmt.Sprintf("EntryState(%d)", int(s))
}

type journalEntry struct {
	state EntryState
	sum   uint32
}

// JournalSalvage describes what OpenJournalFS had to repair: a torn or
// corrupt tail (the crash signature of an interrupted append, or
// bit rot) that was cut off the journal and quarantined for
// post-mortem.
type JournalSalvage struct {
	// TailBytes is the number of bytes truncated off the journal.
	TailBytes int
	// QuarantinePath is the *.corrupt file holding the truncated bytes
	// ("" when nothing was salvaged).
	QuarantinePath string
}

// Journal is an append-fsync write-ahead log for spool batch
// processing. Each batch goes through three durable records:
//
//	begin <name> <crc32>   — written before Engine.Maintain
//	applied <name>         — written after the state bundle is saved
//	done <name>            — written after the spool file is renamed
//
// On restart, OpenJournal replays the records: a batch that is
// "applied" but not "done" must be renamed without re-applying; a batch
// that is only "begun" is re-applied (the pre-batch state bundle is
// what's on disk). The checksum ties the record to the batch file's
// contents, so a same-named file with different content is treated as a
// new batch. When every entry reaches Done the journal truncates
// itself; long runs with always-pending entries are bounded by
// checkpointing (SetCheckpointThreshold + MaybeCheckpoint).
//
// Journal is safe for concurrent use: the spool watcher appends records
// while the post-Maintain checkpoint hook may compact from another
// request goroutine.
type Journal struct {
	mu        sync.Mutex
	fsys      vfs.FS
	path      string
	f         vfs.File
	entries   map[string]*journalEntry
	size      int64 // current journal file size in bytes
	threshold int64 // MaybeCheckpoint compaction threshold (<=0: disabled)
	salvage   JournalSalvage
}

// OpenJournal opens (creating if needed) the journal at path on the
// production filesystem. See OpenJournalFS.
func OpenJournal(path string) (*Journal, error) {
	return OpenJournalFS(vfs.OS, path)
}

// OpenJournalFS opens (creating if needed) the journal at path and
// replays any existing records. The journal is trusted only up to the
// last record that parses completely: a torn trailing line, a record
// with a malformed checksum, or any other damage cuts the journal at
// that point — the damaged tail is quarantined to path+".corrupt",
// the journal file is truncated to the valid prefix, and the salvage is
// reported via Salvage(). Recovery therefore never needs manual repair:
// the valid prefix replays, and new appends continue after it.
func OpenJournalFS(fsys vfs.FS, path string) (*Journal, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open journal: %w", err)
	}
	data, err := fsys.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: read journal: %w", err)
	}
	j := &Journal{fsys: fsys, path: path, f: f, entries: make(map[string]*journalEntry)}

	// Replay the maximal valid prefix. Everything from the first record
	// that fails to parse — including any later lines, whose alignment
	// can no longer be trusted — is the torn tail.
	validEnd := 0
	for validEnd < len(data) {
		nl := bytes.IndexByte(data[validEnd:], '\n')
		if nl < 0 {
			break // unterminated final record
		}
		line := string(data[validEnd : validEnd+nl])
		if !j.replay(line) {
			break
		}
		validEnd += nl + 1
	}
	if validEnd < len(data) {
		tail := data[validEnd:]
		qp := path + corruptSuffix
		if err := quarantineBytes(fsys, qp, tail); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: journal quarantine: %w", err)
		}
		if err := f.Truncate(int64(validEnd)); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: journal repair: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: journal repair sync: %w", err)
		}
		j.salvage = JournalSalvage{TailBytes: len(tail), QuarantinePath: qp}
		salvageStats.events.Add(1)
		salvageStats.quarantinedFiles.Add(1)
		salvageStats.journalTornBytes.Add(uint64(len(tail)))
	}
	if _, err := f.Seek(int64(validEnd), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seek journal: %w", err)
	}
	j.size = int64(validEnd)
	return j, nil
}

// quarantineBytes durably writes b to path (overwriting a previous
// quarantine of the same artifact).
func quarantineBytes(fsys vfs.FS, path string, b []byte) error {
	q, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := q.Write(b); err != nil {
		q.Close()
		return err
	}
	if err := q.Sync(); err != nil {
		q.Close()
		return err
	}
	return q.Close()
}

// replay applies one journal line, reporting whether it parsed as a
// complete record. Records for unknown names ("applied"/"done" with no
// prior "begin") parse fine and are ignored — they are leftovers of an
// earlier truncation.
func (j *Journal) replay(line string) bool {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return false
	}
	name := fields[1]
	switch fields[0] {
	case "begin":
		if len(fields) != 3 {
			return false // torn: checksum missing
		}
		sum, err := strconv.ParseUint(fields[2], 16, 32)
		if err != nil {
			return false
		}
		j.entries[name] = &journalEntry{state: Begun, sum: uint32(sum)}
	case "applied":
		if len(fields) != 2 {
			return false
		}
		if e := j.entries[name]; e != nil {
			e.state = Applied
		}
	case "done":
		if len(fields) != 2 {
			return false
		}
		if e := j.entries[name]; e != nil {
			e.state = Done
		}
	default:
		return false
	}
	return true
}

// Salvage reports what OpenJournalFS had to repair (zero value when the
// journal was clean).
func (j *Journal) Salvage() JournalSalvage { return j.salvage }

// Size returns the journal file's current size in bytes.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// SetCheckpointThreshold sets the size in bytes above which
// MaybeCheckpoint compacts the journal. A value <= 0 disables
// checkpointing.
func (j *Journal) SetCheckpointThreshold(n int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.threshold = n
}

// Begin durably records the intent to apply the named batch with the
// given content checksum. Re-beginning a batch (e.g. a retry after a
// failed Maintain) refreshes its checksum.
func (j *Journal) Begin(name string, sum uint32) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.appendRecord(fmt.Sprintf("begin %s %08x", name, sum)); err != nil {
		return err
	}
	j.entries[name] = &journalEntry{state: Begun, sum: sum}
	return nil
}

// MarkApplied durably records that the batch's effects are persisted.
func (j *Journal) MarkApplied(name string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	e := j.entries[name]
	if e == nil {
		return fmt.Errorf("store: MarkApplied(%s): no begin record", name)
	}
	if err := j.appendRecord("applied " + name); err != nil {
		return err
	}
	e.state = Applied
	return nil
}

// MarkDone durably records that the batch's spool file was renamed.
// When every tracked entry is done, the journal truncates to empty so
// it never grows without bound.
func (j *Journal) MarkDone(name string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	e := j.entries[name]
	if e == nil {
		return fmt.Errorf("store: MarkDone(%s): no begin record", name)
	}
	if err := j.appendRecord("done " + name); err != nil {
		return err
	}
	e.state = Done
	for _, e := range j.entries {
		if e.state != Done {
			return nil
		}
	}
	return j.truncate()
}

func (j *Journal) appendRecord(line string) error {
	if _, err := io.WriteString(j.f, line+"\n"); err != nil {
		return fmt.Errorf("store: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: journal sync: %w", err)
	}
	j.size += int64(len(line)) + 1
	return nil
}

func (j *Journal) truncate() error {
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("store: journal truncate: %w", err)
	}
	if _, err := j.f.Seek(0, 0); err != nil {
		return fmt.Errorf("store: journal seek: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: journal sync: %w", err)
	}
	j.entries = make(map[string]*journalEntry)
	j.size = 0
	return nil
}

// MaybeCheckpoint compacts the journal if a threshold is set and the
// file has outgrown it. It reports whether a checkpoint ran.
func (j *Journal) MaybeCheckpoint() (bool, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.threshold <= 0 || j.size < j.threshold {
		return false, nil
	}
	return true, j.checkpoint()
}

// Checkpoint compacts the journal to the minimal record set that
// replays to the same recovery decisions: Done entries (their spool
// files are already renamed away) are dropped, and each live entry is
// rewritten as a fresh begin (+ applied) pair. The new content is
// written atomically (tmp + fsync + rename + dir fsync) and the journal
// reopens the renamed file, so a crash at any operation leaves either
// the old journal or the compacted one — never a mix.
func (j *Journal) Checkpoint() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.checkpoint()
}

// checkpoint is Checkpoint with j.mu held.
func (j *Journal) checkpoint() error {
	var names []string
	for name, e := range j.entries {
		if e.state != Done {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	err := WriteAtomicFS(j.fsys, j.path, func(w io.Writer) error {
		for _, name := range names {
			e := j.entries[name]
			if _, err := fmt.Fprintf(w, "begin %s %08x\n", name, e.sum); err != nil {
				return err
			}
			if e.state == Applied {
				if _, err := fmt.Fprintf(w, "applied %s\n", name); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: journal checkpoint: %w", err)
	}
	// The open handle still points at the replaced file; reopen the
	// compacted journal by path and continue appending at its end.
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("store: journal checkpoint close: %w", err)
	}
	f, err := j.fsys.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: journal checkpoint reopen: %w", err)
	}
	size, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return fmt.Errorf("store: journal checkpoint seek: %w", err)
	}
	j.f = f
	j.size = size
	for name, e := range j.entries {
		if e.state == Done {
			delete(j.entries, name)
		}
	}
	salvageStats.checkpoints.Add(1)
	return nil
}

// State reports the recorded state and checksum of a batch name.
func (j *Journal) State(name string) (EntryState, uint32, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e := j.entries[name]
	if e == nil {
		return 0, 0, false
	}
	return e.state, e.sum, true
}

// Pending returns the names (sorted) of entries that are not Done —
// the crash-recovery work list.
func (j *Journal) Pending() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []string
	for name, e := range j.entries {
		if e.state != Done {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
