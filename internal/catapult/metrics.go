// Package catapult implements the CATAPULT canned-pattern selection
// framework (paper §2.3) that MIDAS builds on: pattern-set quality
// metrics (subgraph coverage, label coverage, diversity, cognitive
// load), the pattern score of Definition 2.1 and its MIDAS variant s'_p
// (§6.1), and the greedy weighted-random-walk selection of canned
// patterns from cluster summary graphs, with the multiplicative-weights
// update between iterations.
package catapult

import (
	"math/rand"
	"sort"
	"sync"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/ged"
	"github.com/midas-graph/midas/internal/index"
	"github.com/midas-graph/midas/internal/iso"
	"github.com/midas-graph/midas/internal/parallel"
	"github.com/midas-graph/midas/internal/tree"
)

// Budget is the pattern budget b = (η_min, η_max, γ) of Definition 3.1.
type Budget struct {
	MinSize int // η_min, minimum pattern size (edges), > 2 in the paper
	MaxSize int // η_max, maximum pattern size (edges)
	Count   int // γ, number of patterns displayed on the GUI
}

// PerSizeCap returns ⌈γ / (η_max − η_min + 1)⌉, the maximum number of
// patterns of any one size (Definition 3.1).
func (b Budget) PerSizeCap() int {
	span := b.MaxSize - b.MinSize + 1
	if span < 1 {
		span = 1
	}
	return (b.Count + span - 1) / span
}

// Quality aggregates the four objective values of a pattern set.
type Quality struct {
	Scov float64 // f_scov: fraction of data graphs covered by >=1 pattern
	Lcov float64 // f_lcov: fraction covered by >=1 pattern edge label
	Div  float64 // f_div: minimum pairwise pattern diversity (GED)
	Cog  float64 // f_cog: maximum pattern cognitive load
}

// Score returns the multiplicative set score s'_P = scov × lcov × div /
// cog used to compare pattern sets (§6.1, [37]).
func (q Quality) Score() float64 {
	if q.Cog == 0 {
		return 0
	}
	return q.Scov * q.Lcov * q.Div / q.Cog
}

// Metrics evaluates patterns against a database. The optional index
// accelerates cover-set computation; SampleSize > 0 enables the lazy
// sampling of [23] for scov on large databases.
type Metrics struct {
	DB         *graph.Database
	Set        *tree.Set
	Ix         *index.Indices
	SampleSize int
	Seed       int64

	// Memo, when true, routes pairwise GED computations through the
	// process-wide memo cache in internal/ged instead of the per-Metrics
	// distCache, so distances survive engine rebuilds. Both caches are
	// keyed by exact graph instances, so the computed values — and hence
	// every score — are identical in either mode.
	Memo bool

	// mu guards the caches and the lazy sample so scoring can fan out
	// across goroutines (scores are pure, so concurrency cannot change
	// results — only which values end up memoised).
	mu         sync.Mutex
	sample     *graph.Database
	coverCache map[string]map[int]struct{}
	distCache  map[string]float64

	// cancel, when set, is polled inside cover-set and diversity loops
	// and handed down to the VF2/GED kernels so an in-flight
	// maintenance call can be abandoned promptly. Values computed after
	// cancellation fires are not cached.
	cancel func() bool

	// coverSource, when set, is consulted before computing a cover set:
	// it returns the full-database G_scov(p) for patterns some external
	// structure (the engine's delta network) maintains incrementally,
	// and ok=false for everything else (candidate patterns, foreign
	// instances). The source must return exactly what the compute path
	// below would produce over the full DB — the differential suite
	// enforces this. When scov is sampled, the sourced cover is
	// intersected with the sample, which equals the sampled compute
	// since membership is decided per (pattern, graph) pair.
	coverSource func(p *graph.Graph) (map[int]struct{}, bool)
}

// NewMetrics builds a metrics evaluator.
func NewMetrics(db *graph.Database, set *tree.Set, ix *index.Indices, sampleSize int, seed int64) *Metrics {
	return &Metrics{DB: db, Set: set, Ix: ix, SampleSize: sampleSize, Seed: seed,
		coverCache: make(map[string]map[int]struct{}),
		distCache:  make(map[string]float64)}
}

// scovDB returns the database scov is computed against: the full DB or
// a deterministic sample of SampleSize graphs.
func (m *Metrics) scovDB() *graph.Database {
	if m.SampleSize <= 0 || m.DB.Len() <= m.SampleSize {
		return m.DB
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sample != nil {
		return m.sample
	}
	rng := rand.New(rand.NewSource(m.Seed))
	graphs := m.DB.Graphs()
	perm := rng.Perm(len(graphs))
	s := graph.NewDatabase()
	for i := 0; i < m.SampleSize; i++ {
		if err := s.Add(graphs[perm[i]]); err != nil {
			panic(err) // unreachable: IDs unique in source
		}
	}
	m.sample = s
	return s
}

// SetCoverSource installs (or, with nil, removes) the incremental
// cover-set source consulted by CoverSet.
func (m *Metrics) SetCoverSource(fn func(p *graph.Graph) (map[int]struct{}, bool)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.coverSource = fn
}

// SetCancel installs (or, with nil, removes) the cancellation hook.
func (m *Metrics) SetCancel(fn func() bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cancel = fn
}

// cancelled reports whether the installed hook requests abandonment.
func (m *Metrics) cancelled() bool {
	m.mu.Lock()
	fn := m.cancel
	m.mu.Unlock()
	return fn != nil && fn()
}

// cancelHook returns the installed hook (possibly nil) for handing to
// kernels.
func (m *Metrics) cancelHook() func() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cancel
}

// InvalidateSample drops the cached sample and cover cache (call after
// the database changes).
func (m *Metrics) InvalidateSample() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sample = nil
	m.coverCache = make(map[string]map[int]struct{})
}

// CoverSet returns G_scov(p) over the scov database. The cache is keyed
// by the exact graph instance (parallel.GraphKey), not the isomorphism
// signature: the step-capped VF2 searches underneath depend on concrete
// vertex numbering, so only instance-exact reuse is guaranteed to be
// result-neutral when calls fan out across goroutines.
func (m *Metrics) CoverSet(p *graph.Graph) map[int]struct{} {
	sig := parallel.GraphKey(p)
	m.mu.Lock()
	c, ok := m.coverCache[sig]
	src := m.coverSource
	m.mu.Unlock()
	if ok {
		return c
	}
	db := m.scovDB()
	if src != nil {
		if full, hit := src(p); hit {
			// Copy (and, under sampling, intersect with the sample):
			// the sourced map is live incremental state, while cached
			// covers must stay frozen until InvalidateSample.
			out := make(map[int]struct{}, len(full))
			if db != m.DB {
				for _, g := range db.Graphs() {
					if _, in := full[g.ID]; in {
						out[g.ID] = struct{}{}
					}
				}
			} else {
				for id := range full {
					out[id] = struct{}{}
				}
			}
			m.mu.Lock()
			m.coverCache[sig] = out
			m.mu.Unlock()
			return out
		}
	}
	cancel := m.cancelHook()
	var out map[int]struct{}
	if m.Ix != nil {
		full := m.Ix.CoverSet(p, db)
		out = full
	} else {
		out = make(map[int]struct{})
		for _, g := range db.Graphs() {
			if cancel != nil && cancel() {
				return out // partial; not cached
			}
			if hasAllEdgeLabels(p, g) && iso.HasSubgraph(p, g, iso.Options{MaxSteps: 200000, Cancel: cancel}) {
				out[g.ID] = struct{}{}
			}
		}
	}
	if cancel != nil && cancel() {
		return out // possibly truncated by kernel cancellation
	}
	m.mu.Lock()
	m.coverCache[sig] = out
	m.mu.Unlock()
	return out
}

// Scov returns scov(p, D) = |G_p| / |D| over the scov database.
func (m *Metrics) Scov(p *graph.Graph) float64 {
	db := m.scovDB()
	if db.Len() == 0 {
		return 0
	}
	return float64(len(m.CoverSet(p))) / float64(db.Len())
}

// SetScov returns f_scov(P): the fraction of graphs containing at least
// one pattern.
func (m *Metrics) SetScov(ps []*graph.Graph) float64 {
	db := m.scovDB()
	if db.Len() == 0 {
		return 0
	}
	union := make(map[int]struct{})
	for _, p := range ps {
		for id := range m.CoverSet(p) {
			union[id] = struct{}{}
		}
	}
	return float64(len(union)) / float64(db.Len())
}

// LcovOne returns lcov(p, D): the fraction of data graphs containing at
// least one edge whose label occurs in p.
func (m *Metrics) LcovOne(p *graph.Graph) float64 {
	return m.lcovLabels(p.EdgeLabels())
}

// SetLcov returns f_lcov(P) over the union of all pattern edge labels.
func (m *Metrics) SetLcov(ps []*graph.Graph) float64 {
	labels := make(map[string]struct{})
	for _, p := range ps {
		for l := range p.EdgeLabels() {
			labels[l] = struct{}{}
		}
	}
	return m.lcovLabels(labels)
}

func (m *Metrics) lcovLabels(labels map[string]struct{}) float64 {
	if m.DB.Len() == 0 {
		return 0
	}
	union := make(map[int]struct{})
	for l := range labels {
		if et := m.Set.EdgeTree(l); et != nil {
			for id := range et.Post {
				union[id] = struct{}{}
			}
		}
	}
	return float64(len(union)) / float64(m.DB.Len())
}

// Cog returns cog(p) = |E_p| × ρ_p (§2.2).
func Cog(p *graph.Graph) float64 { return p.CognitiveLoad() }

// SetCog returns f_cog(P) = max_p cog(p).
func SetCog(ps []*graph.Graph) float64 {
	best := 0.0
	for _, p := range ps {
		if c := Cog(p); c > best {
			best = c
		}
	}
	return best
}

// distLookup consults the per-Metrics distance cache. Memo mode must
// NOT look up the process-wide ged memo here: that cache outlives this
// engine, and a warm hit would bypass the lb-prune in Div for a pair
// this engine's own history never computed — the prune is part of the
// algorithm (GED'_l is a heuristic bound, not guaranteed to sit below
// the approximate distances), so the reference path and the memoised
// path must skip exactly the same pairs.
func (m *Metrics) distLookup(p, o *graph.Graph) (float64, bool) {
	key := parallel.PairKey(p, o)
	m.mu.Lock()
	d, ok := m.distCache[key]
	m.mu.Unlock()
	return d, ok
}

// Div returns div(p, others) = min GED(p, p_i). With no others it is the
// neutral 1 so that multiplicative scores stay meaningful.
func (m *Metrics) Div(p *graph.Graph, others []*graph.Graph) float64 {
	if len(others) == 0 {
		return 1
	}
	best := -1.0
	cancel := m.cancelHook()
	for _, o := range others {
		if cancel != nil && cancel() {
			break
		}
		// Distances between pattern pairs repeat heavily across scoring
		// rounds; cache by the exact ordered instance pair. (The
		// bipartite upper bound used for larger pairs is neither
		// symmetric nor isomorphism-invariant, so directional
		// instance-exact keys are the only reuse that provably preserves
		// the sequential values.) The lookup/prune/compute order below
		// is the algorithm's definition and is identical in both modes;
		// Memo mode only swaps the compute step for the process-wide ged
		// memo, which returns exactly what DistanceCancel would.
		d, ok := m.distLookup(p, o)
		if !ok {
			if m.Ix != nil {
				// Tighter lower bound GED'_l prunes exact computations:
				// if even the bound exceeds the current minimum, skip
				// without caching (the bound is pair-specific).
				if lb := m.Ix.TighterGED(p, o); best >= 0 && lb >= best {
					continue
				}
			}
			if m.Memo {
				d = ged.DistanceCached(p, o, cancel)
			} else {
				d = ged.DistanceCancel(p, o, cancel)
			}
			if cancel == nil || !cancel() {
				key := parallel.PairKey(p, o)
				m.mu.Lock()
				m.distCache[key] = d
				m.mu.Unlock()
			}
		}
		if best < 0 || d < best {
			best = d
		}
	}
	if best < 0 {
		best = 0
	}
	return best
}

// SetDiv returns f_div(P) = min_p div(p, P \ p).
func (m *Metrics) SetDiv(ps []*graph.Graph) float64 {
	if len(ps) < 2 {
		return float64(len(ps)) // 0 for empty, 1 (neutral) for singleton
	}
	best := -1.0
	for i, p := range ps {
		others := make([]*graph.Graph, 0, len(ps)-1)
		for j, o := range ps {
			if i != j {
				others = append(others, o)
			}
		}
		if d := m.Div(p, others); best < 0 || d < best {
			best = d
		}
	}
	return best
}

// Evaluate computes the full quality vector of a pattern set.
func (m *Metrics) Evaluate(ps []*graph.Graph) Quality {
	return Quality{
		Scov: m.SetScov(ps),
		Lcov: m.SetLcov(ps),
		Div:  m.SetDiv(ps),
		Cog:  SetCog(ps),
	}
}

// ScoreMIDAS returns s'_p = scov(p,D) × lcov(p,D) × div(p,P\p) / cog(p),
// the MIDAS pattern score (§6.1).
func (m *Metrics) ScoreMIDAS(p *graph.Graph, others []*graph.Graph) float64 {
	c := Cog(p)
	if c == 0 {
		return 0
	}
	return m.Scov(p) * m.LcovOne(p) * m.Div(p, others) / c
}

// ScoreCATAPULT returns s_p = ccov(p,cw,C) × lcov(p,D) × div(p,P\p) /
// cog(p) (Definition 2.1); ccov must be supplied by the caller, which
// owns clusters and summaries.
func (m *Metrics) ScoreCATAPULT(p *graph.Graph, others []*graph.Graph, ccov float64) float64 {
	c := Cog(p)
	if c == 0 {
		return 0
	}
	return ccov * m.LcovOne(p) * m.Div(p, others) / c
}

func hasAllEdgeLabels(p, g *graph.Graph) bool {
	gl := g.EdgeLabels()
	for l := range p.EdgeLabels() {
		if _, ok := gl[l]; !ok {
			return false
		}
	}
	return true
}

// SortPatterns orders patterns deterministically by ID.
func SortPatterns(ps []*graph.Graph) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].ID < ps[j].ID })
}
