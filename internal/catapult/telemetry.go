package catapult

import (
	"sync/atomic"
	"time"

	"github.com/midas-graph/midas/internal/telemetry"
)

// Process-wide selection counters: how often the CATAPULT selection
// machinery ran, how long it spent, and how much work it proposed.
// Accumulated locally per call and flushed with a few atomic adds.
var selStats struct {
	selectRuns    atomic.Uint64
	selectNanos   atomic.Uint64
	generateRuns  atomic.Uint64
	generateNanos atomic.Uint64
	candidates    atomic.Uint64
	walks         atomic.Uint64
}

// SelStats is a snapshot of the selection counters.
type SelStats struct {
	// SelectRuns counts full greedy Select loops, SelectSeconds their
	// cumulative wall clock.
	SelectRuns    uint64
	SelectSeconds float64
	// GenerateRuns counts GenerateFCPs invocations (candidate
	// generation), GenerateSeconds their cumulative wall clock.
	GenerateRuns    uint64
	GenerateSeconds float64
	// Candidates counts FCPs proposed; Walks the random walks taken.
	Candidates, Walks uint64
}

// Snapshot returns the current selection counters.
func Snapshot() SelStats {
	return SelStats{
		SelectRuns:      selStats.selectRuns.Load(),
		SelectSeconds:   float64(selStats.selectNanos.Load()) / 1e9,
		GenerateRuns:    selStats.generateRuns.Load(),
		GenerateSeconds: float64(selStats.generateNanos.Load()) / 1e9,
		Candidates:      selStats.candidates.Load(),
		Walks:           selStats.walks.Load(),
	}
}

func flushSelect(d time.Duration) {
	selStats.selectRuns.Add(1)
	selStats.selectNanos.Add(uint64(d.Nanoseconds()))
}

func flushGenerate(d time.Duration, candidates, walks int) {
	selStats.generateRuns.Add(1)
	selStats.generateNanos.Add(uint64(d.Nanoseconds()))
	selStats.candidates.Add(uint64(candidates))
	selStats.walks.Add(uint64(walks))
}

// RegisterMetrics exposes the selection counters on reg in Prometheus
// form. Registration is idempotent; a Nop registry is a no-op.
func RegisterMetrics(reg *telemetry.Registry) {
	reg.NewCounterFunc("midas_catapult_select_runs_total",
		"Full greedy pattern-selection loops executed.",
		func() float64 { return float64(selStats.selectRuns.Load()) })
	reg.NewCounterFunc("midas_catapult_select_seconds_total",
		"Cumulative wall-clock seconds spent in pattern selection.",
		func() float64 { return float64(selStats.selectNanos.Load()) / 1e9 })
	reg.NewCounterFunc("midas_catapult_generate_runs_total",
		"Candidate-generation (GenerateFCPs) invocations.",
		func() float64 { return float64(selStats.generateRuns.Load()) })
	reg.NewCounterFunc("midas_catapult_generate_seconds_total",
		"Cumulative wall-clock seconds spent generating candidates.",
		func() float64 { return float64(selStats.generateNanos.Load()) / 1e9 })
	reg.NewCounterFunc("midas_catapult_candidates_total",
		"Final candidate patterns (FCPs) proposed.",
		func() float64 { return float64(selStats.candidates.Load()) })
	reg.NewCounterFunc("midas_catapult_walks_total",
		"Weighted random walks taken over cluster summary graphs.",
		func() float64 { return float64(selStats.walks.Load()) })
}
