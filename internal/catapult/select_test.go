package catapult

import (
	"math/rand"
	"testing"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/cluster"
	"github.com/midas-graph/midas/internal/csg"
	"github.com/midas-graph/midas/internal/iso"
	"github.com/midas-graph/midas/internal/tree"
)

// pipeline builds the full CATAPULT stack over a two-family database.
func pipeline(t *testing.T, seed int64) (*graph.Database, *tree.Set, *cluster.Clustering, *csg.Manager, *Metrics) {
	t.Helper()
	d := graph.NewDatabase()
	id := 0
	for i := 0; i < 8; i++ {
		d.Add(graph.Path(id, "C", "O", "C", "O", "C"))
		id++
	}
	for i := 0; i < 8; i++ {
		d.Add(graph.Star(id, "C", "N", "N", "N", "H"))
		id++
	}
	set := tree.Mine(d, 0.3, 3)
	cl := cluster.Build(d, set, cluster.Config{K: 2, MaxSize: 50}, rand.New(rand.NewSource(seed)))
	mgr := csg.NewManager(0)
	mgr.BuildAll(cl)
	m := NewMetrics(d, set, nil, 0, seed)
	return d, set, cl, mgr, m
}

func TestSelectReturnsBudget(t *testing.T) {
	d, _, cl, mgr, m := pipeline(t, 1)
	cfg := SelectConfig{Budget: Budget{MinSize: 2, MaxSize: 4, Count: 4}, Walks: 50, Seed: 1}
	ps := Select(m, cl, mgr, cfg)
	if len(ps) == 0 {
		t.Fatal("no patterns selected")
	}
	if len(ps) > 4 {
		t.Fatalf("selected %d > γ=4", len(ps))
	}
	for _, p := range ps {
		if p.Size() < 2 || p.Size() > 4 {
			t.Fatalf("pattern size %d outside budget", p.Size())
		}
		if !p.IsConnected() {
			t.Fatal("pattern not connected")
		}
	}
	// Patterns should cover most of the database.
	if got := m.SetScov(ps); got < 0.5 {
		t.Fatalf("f_scov = %v, want >= 0.5", got)
	}
	_ = d
}

func TestSelectDeterministic(t *testing.T) {
	_, _, cl1, mgr1, m1 := pipeline(t, 3)
	_, _, cl2, mgr2, m2 := pipeline(t, 3)
	cfg := SelectConfig{Budget: Budget{MinSize: 2, MaxSize: 4, Count: 4}, Walks: 30, Seed: 9}
	a := Select(m1, cl1, mgr1, cfg)
	b := Select(m2, cl2, mgr2, cfg)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if graph.Signature(a[i]) != graph.Signature(b[i]) {
			t.Fatalf("pattern %d differs between identical runs", i)
		}
	}
}

func TestSelectNoDuplicates(t *testing.T) {
	_, _, cl, mgr, m := pipeline(t, 5)
	cfg := SelectConfig{Budget: Budget{MinSize: 2, MaxSize: 4, Count: 6}, Walks: 50, Seed: 2}
	ps := Select(m, cl, mgr, cfg)
	for i := 0; i < len(ps); i++ {
		for j := i + 1; j < len(ps); j++ {
			if iso.Isomorphic(ps[i], ps[j]) {
				t.Fatalf("patterns %d and %d isomorphic", i, j)
			}
		}
	}
}

func TestSelectPerSizeCap(t *testing.T) {
	_, _, cl, mgr, m := pipeline(t, 7)
	cfg := SelectConfig{Budget: Budget{MinSize: 2, MaxSize: 3, Count: 4}, Walks: 50, Seed: 3}
	ps := Select(m, cl, mgr, cfg)
	perSize := map[int]int{}
	for _, p := range ps {
		perSize[p.Size()]++
	}
	cap := cfg.Budget.PerSizeCap()
	for size, n := range perSize {
		if n > cap {
			t.Fatalf("size %d has %d patterns, cap %d", size, n, cap)
		}
	}
}

func TestSelectPatternsFromSummaries(t *testing.T) {
	// Every selected pattern must be contained in at least one summary.
	_, _, cl, mgr, m := pipeline(t, 11)
	cfg := SelectConfig{Budget: Budget{MinSize: 2, MaxSize: 4, Count: 4}, Walks: 50, Seed: 4}
	ps := Select(m, cl, mgr, cfg)
	for _, p := range ps {
		ok := false
		for _, cid := range mgr.ClusterIDs() {
			if iso.HasSubgraph(p, mgr.Get(cid).G, iso.Options{}) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("pattern %v not in any summary", p)
		}
	}
}

func TestPrunerStopsGrowth(t *testing.T) {
	_, _, cl, mgr, m := pipeline(t, 13)
	// A pruner rejecting everything yields no patterns.
	cfg := SelectConfig{
		Budget: Budget{MinSize: 2, MaxSize: 4, Count: 4},
		Walks:  30, Seed: 5,
		Pruner: func(string) bool { return true },
	}
	ps := Select(m, cl, mgr, cfg)
	if len(ps) != 0 {
		t.Fatalf("pruner rejected everything but got %d patterns", len(ps))
	}
}

func TestDownWeightReducesWeights(t *testing.T) {
	_, _, cl, mgr, m := pipeline(t, 17)
	cfg := SelectConfig{Budget: Budget{MinSize: 2, MaxSize: 3, Count: 2}, Walks: 30, Seed: 6}
	sel := NewSelector(m, cl, mgr, cfg)
	cands := sel.GenerateFCPs(mgr.ClusterIDs())
	if len(cands) == 0 {
		t.Fatal("no candidates generated")
	}
	c := cands[0]
	before := 0.0
	for _, w := range sel.Weights(c.ClusterID()) {
		before += w
	}
	sel.DownWeight(c.ClusterID(), c.Pattern())
	after := 0.0
	for _, w := range sel.Weights(c.ClusterID()) {
		after += w
	}
	if after >= before {
		t.Fatalf("weights did not decrease: %v -> %v", before, after)
	}
}

func TestCCov(t *testing.T) {
	_, _, cl, mgr, m := pipeline(t, 19)
	sel := NewSelector(m, cl, mgr, SelectConfig{Budget: Budget{MinSize: 2, MaxSize: 3, Count: 2}, Seed: 1})
	// The C-O edge pattern is in the chain family summary only; ccov
	// should be about half the database weight.
	p := graph.Path(500, "C", "O")
	cc := sel.CCov(p)
	if cc <= 0 || cc > 1 {
		t.Fatalf("ccov = %v, want in (0,1]", cc)
	}
	// An absent structure has zero ccov.
	if sel.CCov(graph.Path(501, "X", "Y")) != 0 {
		t.Fatal("ccov of absent pattern should be 0")
	}
}

func TestSelectEmptyDatabase(t *testing.T) {
	d := graph.NewDatabase()
	set := tree.Mine(d, 0.5, 3)
	cl := cluster.Build(d, set, cluster.Config{}, rand.New(rand.NewSource(1)))
	mgr := csg.NewManager(0)
	mgr.BuildAll(cl)
	m := NewMetrics(d, set, nil, 0, 1)
	ps := Select(m, cl, mgr, SelectConfig{Budget: Budget{MinSize: 2, MaxSize: 3, Count: 3}, Seed: 1})
	if len(ps) != 0 {
		t.Fatal("empty database should select nothing")
	}
}

func TestSelectParallelMatchesSequential(t *testing.T) {
	build := func(parallel int) []*graph.Graph {
		_, _, cl, mgr, m := pipeline(t, 23)
		cfg := SelectConfig{
			Budget: Budget{MinSize: 2, MaxSize: 4, Count: 5},
			Walks:  40, Seed: 9, Parallel: parallel,
		}
		return Select(m, cl, mgr, cfg)
	}
	seq := build(1)
	par := build(4)
	if len(seq) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if graph.Signature(seq[i]) != graph.Signature(par[i]) {
			t.Fatalf("pattern %d differs between parallel and sequential", i)
		}
	}
}
