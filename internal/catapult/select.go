package catapult

import (
	"math/rand"
	"sort"
	"time"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/cluster"
	"github.com/midas-graph/midas/internal/csg"
	"github.com/midas-graph/midas/internal/iso"
	"github.com/midas-graph/midas/internal/parallel"
)

// Pruner lets MIDAS inject the coverage-based early-termination test of
// Equation 2 into FCP growth: it is consulted before each edge is added
// to a partially constructed candidate and returns true when the edge's
// marginal subgraph coverage is too low to continue (§5.2). A nil
// pruner never terminates early (plain CATAPULT behaviour).
type Pruner func(edgeLabel string) bool

// SelectConfig controls pattern selection.
type SelectConfig struct {
	Budget Budget
	// Walks is the number of random walks per summary graph per
	// selection round (the paper uses 100).
	Walks int
	// StartEdges is how many distinct top-traversed starting edges
	// propose candidates per summary and size (the PCP variety).
	StartEdges int
	// Seed drives all randomness; equal seeds reproduce selections.
	Seed int64
	// Pruner, when set, enables MIDAS's coverage-based pruning.
	Pruner Pruner
	// MWUBeta is the multiplicative-weights down-weighting applied to
	// summary edges used by a selected pattern (default 0.5).
	MWUBeta float64
	// Parallel sets the candidate-scoring fan-out (default 1,
	// sequential). Scores are pure functions, so results are identical
	// at any setting; only wall-clock changes.
	Parallel int
	// Cancel, when set, is polled in the walk and growth loops (and
	// passed to the matching kernels) so a cancelled maintenance call
	// abandons candidate generation promptly with partial results; the
	// caller then surfaces the cancellation error.
	Cancel func() bool
}

func (c SelectConfig) withDefaults() SelectConfig {
	if c.Walks <= 0 {
		c.Walks = 100
	}
	if c.StartEdges <= 0 {
		c.StartEdges = 3
	}
	if c.MWUBeta <= 0 || c.MWUBeta >= 1 {
		c.MWUBeta = 0.5
	}
	return c
}

// Selector runs CATAPULT's greedy iterative selection over a set of
// weighted summary graphs.
type Selector struct {
	cfg     SelectConfig
	metrics *Metrics
	cl      *cluster.Clustering
	csgs    *csg.Manager
	weights map[int]map[graph.Edge]float64 // cluster ID -> edge weights
	rng     *rand.Rand
}

// NewSelector prepares selection state; edge weights are initialised to
// w_e = lcov(e,D) × lcov(e,C) (§2.3).
func NewSelector(m *Metrics, cl *cluster.Clustering, csgs *csg.Manager, cfg SelectConfig) *Selector {
	cfg = cfg.withDefaults()
	s := &Selector{
		cfg:     cfg,
		metrics: m,
		cl:      cl,
		csgs:    csgs,
		weights: make(map[int]map[graph.Edge]float64),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	lcovD := func(label string) float64 {
		if et := m.Set.EdgeTree(label); et != nil {
			return et.Support(m.DB.Len())
		}
		return 0
	}
	for _, cid := range csgs.ClusterIDs() {
		c := cl.Cluster(cid)
		size := 0
		if c != nil {
			size = c.Len()
		}
		s.weights[cid] = csgs.Get(cid).Weights(lcovD, size)
	}
	return s
}

// Weights exposes the current edge weights of a summary (for tests and
// the MIDAS core).
func (s *Selector) Weights(clusterID int) map[graph.Edge]float64 {
	return s.weights[clusterID]
}

// Select runs the full greedy loop and returns up to γ patterns, IDs
// assigned from nextID upward.
func (s *Selector) Select(nextID int) []*graph.Graph {
	defer func(t0 time.Time) { flushSelect(time.Since(t0)) }(time.Now())
	var selected []*graph.Graph
	perSize := make(map[int]int)
	cap := s.cfg.Budget.PerSizeCap()
	for len(selected) < s.cfg.Budget.Count {
		cands := s.GenerateFCPs(s.csgs.ClusterIDs())
		best := s.pickBest(cands, selected, perSize, cap)
		if best == nil {
			break
		}
		best.p.ID = nextID
		nextID++
		selected = append(selected, best.p)
		perSize[best.p.Size()]++
		s.DownWeight(best.clusterID, best.p)
	}
	return selected
}

// Candidate is one final candidate pattern (FCP) with its provenance.
type Candidate struct {
	p         *graph.Graph
	clusterID int
}

// Pattern returns the candidate pattern graph.
func (c *Candidate) Pattern() *graph.Graph { return c.p }

// ClusterID returns the summary the candidate was grown from.
func (c *Candidate) ClusterID() int { return c.clusterID }

// GenerateFCPs proposes candidate patterns from the given summaries:
// weighted random walks gather edge-traversal statistics, and for every
// size in [η_min, η_max] a candidate is grown from each of the top
// starting edges by repeatedly attaching the most-traversed adjacent
// edge (§2.3), subject to the pruner (§5.2). Duplicate structures are
// removed.
func (s *Selector) GenerateFCPs(clusterIDs []int) []*Candidate {
	t0 := time.Now()
	walks := 0
	var out []*Candidate
	defer func() { flushGenerate(time.Since(t0), len(out), walks) }()
	seen := make(map[string]struct{})
	for _, cid := range clusterIDs {
		if s.cfg.Cancel != nil && s.cfg.Cancel() {
			return out
		}
		sg := s.csgs.Get(cid)
		if sg == nil || sg.Size() == 0 {
			continue
		}
		traversal, taken := s.walk(sg, s.weights[cid])
		walks += taken
		starts := startEdges(sg, traversal, s.cfg.StartEdges)
		for size := s.cfg.Budget.MinSize; size <= s.cfg.Budget.MaxSize; size++ {
			for _, start := range starts {
				p := s.growFCP(sg, traversal, start, size)
				if p == nil {
					continue
				}
				sig := graph.Signature(p)
				if _, dup := seen[sig]; dup {
					continue
				}
				seen[sig] = struct{}{}
				out = append(out, &Candidate{p: p, clusterID: cid})
			}
		}
	}
	return out
}

// walk performs the weighted random walks and returns per-edge
// traversal counts plus the number of walks actually taken (the count
// feeds the selection telemetry).
func (s *Selector) walk(sg *csg.CSG, weights map[graph.Edge]float64) (map[graph.Edge]float64, int) {
	counts := make(map[graph.Edge]float64, sg.Size())
	taken := 0
	edges := sg.Edges()
	if len(edges) == 0 {
		return counts, taken
	}
	for it := 0; it < s.cfg.Walks; it++ {
		if s.cfg.Cancel != nil && s.cfg.Cancel() {
			break
		}
		cur, ok := s.sampleEdge(edges, weights)
		if !ok {
			break
		}
		taken++
		counts[cur]++
		for step := 0; step < s.cfg.Budget.MaxSize; step++ {
			adj := adjacentEdges(sg.G, cur)
			next, ok := s.sampleEdge(adj, weights)
			if !ok {
				break
			}
			counts[next]++
			cur = next
		}
	}
	return counts, taken
}

// sampleEdge draws an edge proportionally to its weight; uniform when
// all weights vanish. It fails only on an empty candidate list.
func (s *Selector) sampleEdge(edges []graph.Edge, weights map[graph.Edge]float64) (graph.Edge, bool) {
	if len(edges) == 0 {
		return graph.Edge{}, false
	}
	total := 0.0
	for _, e := range edges {
		total += weights[e]
	}
	if total <= 0 {
		return edges[s.rng.Intn(len(edges))], true
	}
	x := s.rng.Float64() * total
	for _, e := range edges {
		x -= weights[e]
		if x <= 0 {
			return e, true
		}
	}
	return edges[len(edges)-1], true
}

// adjacentEdges returns summary edges sharing an endpoint with e, in
// deterministic order.
func adjacentEdges(g *graph.Graph, e graph.Edge) []graph.Edge {
	var out []graph.Edge
	add := func(u int) {
		for _, w := range g.Neighbors(u) {
			ne := graph.Edge{U: u, V: w}.Canon()
			if ne != e {
				out = append(out, ne)
			}
		}
	}
	add(e.U)
	add(e.V)
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// startEdges proposes candidate growth seeds: the k most-traversed
// edges overall, plus the most-traversed edge of every distinct edge
// label. The per-label seeds realise the PCP "variety" of §2.3 — a
// summary dominated by high-coverage labels still proposes candidates
// anchored on rarer structures (e.g. a new compound family's functional
// group).
func startEdges(sg *csg.CSG, traversal map[graph.Edge]float64, k int) []graph.Edge {
	starts := topEdges(traversal, k)
	seen := make(map[graph.Edge]struct{}, len(starts))
	for _, e := range starts {
		seen[e] = struct{}{}
	}
	bestPerLabel := make(map[string]graph.Edge)
	for _, e := range sg.Edges() {
		label := sg.G.EdgeLabel(e.U, e.V)
		cur, ok := bestPerLabel[label]
		if !ok || traversal[e] > traversal[cur] ||
			(traversal[e] == traversal[cur] && lessEdge(e, cur)) {
			bestPerLabel[label] = e
		}
	}
	labels := make([]string, 0, len(bestPerLabel))
	for l := range bestPerLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		e := bestPerLabel[l]
		if _, dup := seen[e]; !dup {
			seen[e] = struct{}{}
			starts = append(starts, e)
		}
	}
	return starts
}

// topEdges returns up to k edges with the highest traversal counts.
func topEdges(traversal map[graph.Edge]float64, k int) []graph.Edge {
	edges := make([]graph.Edge, 0, len(traversal))
	for e := range traversal {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if traversal[edges[i]] != traversal[edges[j]] {
			return traversal[edges[i]] > traversal[edges[j]]
		}
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	if len(edges) > k {
		edges = edges[:k]
	}
	return edges
}

// growFCP grows a connected candidate of exactly `size` edges starting
// from `start`, attaching the most-traversed adjacent summary edge at
// each step. It returns nil if growth stalls or the pruner fires before
// the candidate is complete.
func (s *Selector) growFCP(sg *csg.CSG, traversal map[graph.Edge]float64, start graph.Edge, size int) *graph.Graph {
	if size < 1 {
		return nil
	}
	chosen := map[graph.Edge]struct{}{start: {}}
	vertices := map[int]struct{}{start.U: {}, start.V: {}}
	for len(chosen) < size {
		var best graph.Edge
		bestScore := -1.0
		found := false
		for v := range vertices {
			for _, w := range sg.G.Neighbors(v) {
				e := graph.Edge{U: v, V: w}.Canon()
				if _, dup := chosen[e]; dup {
					continue
				}
				score := traversal[e]
				if !found || score > bestScore ||
					(score == bestScore && lessEdge(e, best)) {
					best, bestScore, found = e, score, true
				}
			}
		}
		if !found {
			return nil // summary region exhausted before target size
		}
		if s.cfg.Pruner != nil && s.cfg.Pruner(sg.G.EdgeLabel(best.U, best.V)) {
			return nil // early termination (Equation 2)
		}
		chosen[best] = struct{}{}
		vertices[best.U] = struct{}{}
		vertices[best.V] = struct{}{}
	}
	edges := make([]graph.Edge, 0, len(chosen))
	for e := range chosen {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool { return lessEdge(edges[i], edges[j]) })
	p := sg.G.EdgeSubgraph(edges)
	p.SortAdjacency()
	return p
}

func lessEdge(a, b graph.Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// pickBest scores candidates (Definition 2.1) and returns the best one
// admissible under the per-size cap and not isomorphic to an existing
// pattern, or nil. Scoring fans out over cfg.Parallel workers; the
// argmax is taken sequentially in candidate order, so the result is
// independent of the fan-out.
func (s *Selector) pickBest(cands []*Candidate, selected []*graph.Graph, perSize map[int]int, sizeCap int) *Candidate {
	admissible := make([]bool, len(cands))
	for i, c := range cands {
		admissible[i] = perSize[c.p.Size()] < sizeCap && !isDuplicate(c.p, selected)
	}
	scores := make([]float64, len(cands))
	parallel.Do(s.cfg.Parallel, len(cands), s.cfg.Cancel, func(i int) {
		if admissible[i] {
			scores[i] = s.metrics.ScoreCATAPULT(cands[i].p, selected, s.ccov(cands[i].p))
		}
	})
	var best *Candidate
	bestScore := -1.0
	for i, c := range cands {
		if admissible[i] && scores[i] > bestScore {
			best, bestScore = c, scores[i]
		}
	}
	return best
}

// ccov computes cluster coverage Σ cw_i × I(csg_i ⊇ p) (Definition 2.1).
func (s *Selector) ccov(p *graph.Graph) float64 {
	total := 0.0
	for _, cid := range s.csgs.ClusterIDs() {
		c := s.cl.Cluster(cid)
		if c == nil {
			continue
		}
		sg := s.csgs.Get(cid)
		if sg != nil && iso.HasSubgraph(p, sg.G, iso.Options{MaxSteps: 100000, Cancel: s.cfg.Cancel}) {
			total += c.Weight(s.metrics.DB.Len())
		}
	}
	return total
}

// CCov exposes cluster coverage for external scoring.
func (s *Selector) CCov(p *graph.Graph) float64 { return s.ccov(p) }

// DownWeight applies the multiplicative-weights update after selecting
// pattern p from the given summary: every summary edge matched by p is
// down-weighted by β so later rounds explore elsewhere (§2.3, [7]).
func (s *Selector) DownWeight(clusterID int, p *graph.Graph) {
	sg := s.csgs.Get(clusterID)
	w := s.weights[clusterID]
	if sg == nil || w == nil {
		return
	}
	m := iso.FindEmbedding(p, sg.G, iso.Options{MaxSteps: 100000})
	if m == nil {
		return
	}
	for _, pe := range p.Edges() {
		se := graph.Edge{U: m[pe.U], V: m[pe.V]}.Canon()
		if _, ok := w[se]; ok {
			w[se] *= s.cfg.MWUBeta
		}
	}
}

func isDuplicate(p *graph.Graph, selected []*graph.Graph) bool {
	for _, q := range selected {
		if iso.Isomorphic(p, q) {
			return true
		}
	}
	return false
}

// Select is the package-level convenience running a full CATAPULT
// selection: metrics, selector and greedy loop in one call.
func Select(m *Metrics, cl *cluster.Clustering, csgs *csg.Manager, cfg SelectConfig) []*graph.Graph {
	return NewSelector(m, cl, csgs, cfg).Select(0)
}
