package catapult

import (
	"math"
	"testing"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/index"
	"github.com/midas-graph/midas/internal/tree"
)

func fixture() (*graph.Database, *tree.Set) {
	d := graph.DatabaseOf(
		graph.Path(1, "C", "O", "C"),
		graph.Path(2, "C", "O", "C"),
		graph.Path(3, "C", "O", "C", "O"),
		graph.Path(4, "C", "N"),
	)
	return d, tree.Mine(d, 0.5, 3)
}

func TestBudgetPerSizeCap(t *testing.T) {
	b := Budget{MinSize: 3, MaxSize: 12, Count: 30}
	if b.PerSizeCap() != 3 {
		t.Fatalf("cap = %d, want 3", b.PerSizeCap())
	}
	b2 := Budget{MinSize: 3, MaxSize: 4, Count: 5}
	if b2.PerSizeCap() != 3 { // ceil(5/2)
		t.Fatalf("cap = %d, want 3", b2.PerSizeCap())
	}
}

func TestScovWithAndWithoutIndex(t *testing.T) {
	d, set := fixture()
	p := graph.Path(100, "C", "O", "C")
	plain := NewMetrics(d, set, nil, 0, 1)
	ix := index.Build(set, d, nil)
	fast := NewMetrics(d, set, ix, 0, 1)
	if got, want := plain.Scov(p), 0.75; got != want {
		t.Fatalf("plain scov = %v, want %v", got, want)
	}
	if plain.Scov(p) != fast.Scov(p) {
		t.Fatal("indexed and plain scov disagree")
	}
}

func TestSetScovUnion(t *testing.T) {
	d, set := fixture()
	m := NewMetrics(d, set, nil, 0, 1)
	p1 := graph.Path(100, "C", "O", "C")
	p2 := graph.Path(101, "C", "N")
	if got := m.SetScov([]*graph.Graph{p1, p2}); got != 1.0 {
		t.Fatalf("f_scov = %v, want 1.0", got)
	}
	if got := m.SetScov(nil); got != 0 {
		t.Fatalf("f_scov(empty) = %v, want 0", got)
	}
}

func TestLcov(t *testing.T) {
	d, set := fixture()
	m := NewMetrics(d, set, nil, 0, 1)
	p := graph.Path(100, "C", "O")
	if got := m.LcovOne(p); got != 0.75 {
		t.Fatalf("lcov = %v, want 0.75 (3 of 4 graphs have a C-O edge)", got)
	}
	pn := graph.Path(101, "C", "N")
	if got := m.SetLcov([]*graph.Graph{p, pn}); got != 1.0 {
		t.Fatalf("f_lcov = %v, want 1.0", got)
	}
}

func TestCog(t *testing.T) {
	k3 := graph.Clique(0, "A", "B", "C")
	if Cog(k3) != 3 {
		t.Fatalf("cog(K3) = %v, want 3", Cog(k3))
	}
	ps := []*graph.Graph{graph.Path(0, "A", "B", "C"), k3}
	if SetCog(ps) != 3 {
		t.Fatalf("f_cog = %v, want 3 (max)", SetCog(ps))
	}
}

func TestDiv(t *testing.T) {
	d, set := fixture()
	m := NewMetrics(d, set, nil, 0, 1)
	p := graph.Path(0, "C", "O", "N")
	if m.Div(p, nil) != 1 {
		t.Fatal("div with no others should be neutral 1")
	}
	identical := graph.Path(1, "C", "O", "N")
	if m.Div(p, []*graph.Graph{identical}) != 0 {
		t.Fatal("div against an identical pattern should be 0")
	}
	far := graph.Star(2, "S", "P", "P", "P")
	if m.Div(p, []*graph.Graph{far}) <= 0 {
		t.Fatal("div against a distant pattern should be positive")
	}
}

func TestSetDiv(t *testing.T) {
	d, set := fixture()
	m := NewMetrics(d, set, nil, 0, 1)
	if m.SetDiv(nil) != 0 {
		t.Fatal("empty set div should be 0")
	}
	single := []*graph.Graph{graph.Path(0, "C", "O")}
	if m.SetDiv(single) != 1 {
		t.Fatal("singleton set div should be 1")
	}
	ps := []*graph.Graph{
		graph.Path(0, "C", "O", "C"),
		graph.Path(1, "C", "O", "C"),
		graph.Star(2, "S", "P", "P", "P"),
	}
	if m.SetDiv(ps) != 0 {
		t.Fatal("set with duplicate patterns should have div 0")
	}
}

func TestQualityScore(t *testing.T) {
	q := Quality{Scov: 0.8, Lcov: 0.5, Div: 2, Cog: 4}
	if got := q.Score(); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("score = %v, want 0.2", got)
	}
	if (Quality{}).Score() != 0 {
		t.Fatal("zero-cog quality score should be 0")
	}
}

func TestScoreMIDAS(t *testing.T) {
	d, set := fixture()
	m := NewMetrics(d, set, nil, 0, 1)
	p := graph.Path(100, "C", "O", "C")
	got := m.ScoreMIDAS(p, nil)
	// scov=0.75, lcov=0.75, div=1, cog = 2 * (2*2)/(3*2) = 4/3.
	want := 0.75 * 0.75 * 1 / (4.0 / 3.0)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("s'_p = %v, want %v", got, want)
	}
}

func TestLazySampling(t *testing.T) {
	d := graph.NewDatabase()
	for i := 0; i < 50; i++ {
		d.Add(graph.Path(i, "C", "O", "C"))
	}
	set := tree.Mine(d, 0.5, 3)
	m := NewMetrics(d, set, nil, 10, 7)
	p := graph.Path(100, "C", "O", "C")
	// Every graph contains p: sampled scov is still exactly 1.
	if got := m.Scov(p); got != 1 {
		t.Fatalf("sampled scov = %v, want 1", got)
	}
	// Deterministic resampling.
	m2 := NewMetrics(d, set, nil, 10, 7)
	if m.Scov(p) != m2.Scov(p) {
		t.Fatal("same seed should sample identically")
	}
	m.InvalidateSample()
	if got := m.Scov(p); got != 1 {
		t.Fatalf("scov after invalidate = %v, want 1", got)
	}
}
