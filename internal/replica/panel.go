package replica

import (
	"github.com/midas-graph/midas/internal/panel"
)

// Panel wires a panel.Server over the node the way midas-serve mounts
// it. The server owns none of the serving plumbing: reads load the
// node's snapshot handle lock-free, /maintain submits through the
// node's *current* pipeline — resolved per request, because a
// divergence re-bootstrap swaps the pipeline underneath a long-lived
// server — and the node's admission hook fences writes while the node
// is a follower or demoted (503 + Retry-After + X-Midas-Primary).
// Every snapshot-served response carries X-Midas-Replica and
// X-Midas-Replication-Lag, and /readyz details the journal LSN,
// last-publish generation, role and lag.
func (n *Node) Panel() *panel.Server {
	srv := panel.NewReplicated(n.cfg.Options, n.Handle(), n.Pipeline)
	srv.SetReplicaInfo(&panel.ReplicaInfo{
		Role:    func() string { return n.Role().String() },
		LSN:     n.LastLSN,
		Lag:     n.Lag,
		Primary: n.PrimaryURL,
	})
	return srv
}
