package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"github.com/midas-graph/midas/internal/store"
)

// Transport is a node's view of one peer — the seam between the
// replication protocol and the network, mirroring internal/vfs: the
// production implementation speaks HTTP, tests inject drops,
// duplicates, reorders, torn frames and stalls behind the same
// interface.
type Transport interface {
	// Push delivers a batch of records to the peer and returns its ack.
	// The peer's AppliedLSN tells the sender where to resume: a
	// duplicate delivery acks the existing position, a gap acks the
	// position before it, so the sender rewinds instead of guessing.
	Push(ctx context.Context, req PushRequest) (PushResponse, error)
	// Bundle fetches the peer's current state bundle — the follower's
	// cold-start and re-bootstrap source.
	Bundle(ctx context.Context) (BundleResponse, error)
	// Records fetches records with LSN > after from the peer's
	// replication log (pull repair and follower catch-up). A peer that
	// compacted past the requested position returns an error wrapping
	// store.ErrCompacted.
	Records(ctx context.Context, after uint64, max int) ([]store.RepRecord, error)
}

// PushRequest is one replication stream delivery.
type PushRequest struct {
	// Epoch is the sender's primacy epoch — the fencing token. A
	// receiver on a higher epoch rejects the push.
	Epoch   uint64
	Records []store.RepRecord
}

// PushResponse acknowledges a push.
type PushResponse struct {
	// AppliedLSN is the receiver's durable replication position after
	// processing the push.
	AppliedLSN uint64
	// Epoch is the receiver's current epoch.
	Epoch uint64
	// Fenced reports that the push was rejected because the sender's
	// epoch is stale. A sender seeing Fenced with a higher responder
	// epoch must demote itself.
	Fenced bool
}

// BundleResponse carries a state bundle and the replication position
// it reflects.
type BundleResponse struct {
	Data  []byte
	LSN   uint64
	Epoch uint64
}

// Wire header names shared by the HTTP transport's two ends.
const (
	headerEpoch = "X-Midas-Replica-Epoch"
	headerLSN   = "X-Midas-Replica-LSN"
)

// HTTPTransport speaks the replication protocol to a peer's
// /replica/* endpoints (served by Node.Handler).
type HTTPTransport struct {
	// Base is the peer's base URL, e.g. "http://10.0.0.2:8081".
	Base string
	// Client defaults to a client with a 30s timeout.
	Client *http.Client
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (t *HTTPTransport) url(path string, q url.Values) string {
	u := strings.TrimRight(t.Base, "/") + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	return u
}

// Push POSTs the framed records to /replica/push.
func (t *HTTPTransport) Push(ctx context.Context, req PushRequest) (PushResponse, error) {
	body := store.EncodeRecords(req.Records)
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, t.url("/replica/push", nil), strings.NewReader(string(body)))
	if err != nil {
		return PushResponse{}, err
	}
	hreq.Header.Set("Content-Type", "application/octet-stream")
	hreq.Header.Set(headerEpoch, strconv.FormatUint(req.Epoch, 10))
	resp, err := t.client().Do(hreq)
	if err != nil {
		return PushResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return PushResponse{}, fmt.Errorf("replica: push: %s: %s", resp.Status, strings.TrimSpace(string(b)))
	}
	var out PushResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return PushResponse{}, fmt.Errorf("replica: decoding push ack: %w", err)
	}
	return out, nil
}

// Bundle GETs /replica/bundle.
func (t *HTTPTransport) Bundle(ctx context.Context) (BundleResponse, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, t.url("/replica/bundle", nil), nil)
	if err != nil {
		return BundleResponse{}, err
	}
	resp, err := t.client().Do(hreq)
	if err != nil {
		return BundleResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return BundleResponse{}, fmt.Errorf("replica: bundle: %s: %s", resp.Status, strings.TrimSpace(string(b)))
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return BundleResponse{}, err
	}
	lsn, _ := strconv.ParseUint(resp.Header.Get(headerLSN), 10, 64)
	epoch, _ := strconv.ParseUint(resp.Header.Get(headerEpoch), 10, 64)
	return BundleResponse{Data: data, LSN: lsn, Epoch: epoch}, nil
}

// Records GETs /replica/records. A 410 Gone (the peer compacted past
// the requested position) is returned as an error wrapping
// store.ErrCompacted so the caller re-bootstraps.
func (t *HTTPTransport) Records(ctx context.Context, after uint64, max int) ([]store.RepRecord, error) {
	q := url.Values{}
	q.Set("after", strconv.FormatUint(after, 10))
	if max > 0 {
		q.Set("max", strconv.Itoa(max))
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, t.url("/replica/records", q), nil)
	if err != nil {
		return nil, err
	}
	resp, err := t.client().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		return nil, fmt.Errorf("replica: records after %d: %w", after, store.ErrCompacted)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return nil, fmt.Errorf("replica: records: %s: %s", resp.Status, strings.TrimSpace(string(b)))
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return store.DecodeRecords(data)
}

// errGap is the follower's rejection of a push that skips past its
// applied position; the ack's AppliedLSN already tells the sender
// where to rewind, so this never crosses the wire as a failure.
var errGap = errors.New("replica: push leaves a log gap")
