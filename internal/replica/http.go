package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"github.com/midas-graph/midas/internal/store"
)

// Handler serves the replication protocol and its admin verbs:
//
//	POST /replica/push     — receive a primary's record stream
//	GET  /replica/bundle   — serve the current bundle (follower bootstrap)
//	GET  /replica/records  — serve log records after ?after= (pull repair)
//	GET  /replica/status   — role, epoch, LSN, lag, parked records
//	POST /replica/promote  — promote this node to primary (epoch bump)
//	POST /replica/demote   — demote this node (operator fencing)
//
// Mount it beside the panel handler (midas-serve nests it under the
// same listener, or a dedicated -replica-listen).
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/replica/push", n.handlePush)
	mux.HandleFunc("/replica/bundle", n.handleBundle)
	mux.HandleFunc("/replica/records", n.handleRecords)
	mux.HandleFunc("/replica/status", n.handleStatus)
	mux.HandleFunc("/replica/promote", n.handlePromote)
	mux.HandleFunc("/replica/demote", n.handleDemote)
	return mux
}

func (n *Node) handlePush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 256<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	recs, err := store.DecodeRecords(body)
	if err != nil {
		// A torn or corrupted frame batch is rejected whole; the sender
		// retries intact.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	epoch, err := strconv.ParseUint(r.Header.Get(headerEpoch), 10, 64)
	if err != nil {
		http.Error(w, "bad or missing "+headerEpoch+" header", http.StatusBadRequest)
		return
	}
	resp := n.ReceivePush(PushRequest{Epoch: epoch, Records: recs})
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (n *Node) handleBundle(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	data, lsn, epoch, err := n.BundleBytes()
	if err != nil {
		http.Error(w, fmt.Sprintf("no bundle available: %v", err), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(headerLSN, strconv.FormatUint(lsn, 10))
	w.Header().Set(headerEpoch, strconv.FormatUint(epoch, 10))
	w.Write(data)
}

func (n *Node) handleRecords(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	after, err := strconv.ParseUint(r.URL.Query().Get("after"), 10, 64)
	if err != nil {
		http.Error(w, "bad after parameter", http.StatusBadRequest)
		return
	}
	max := 0
	if m := r.URL.Query().Get("max"); m != "" {
		if max, err = strconv.Atoi(m); err != nil {
			http.Error(w, "bad max parameter", http.StatusBadRequest)
			return
		}
	}
	recs, err := n.ReadRecords(after, max)
	if err != nil {
		if errors.Is(err, store.ErrCompacted) {
			// 410: the suffix the peer wants is gone; it must take the
			// bundle instead.
			http.Error(w, err.Error(), http.StatusGone)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(store.EncodeRecords(recs))
}

// StatusJSON is the /replica/status document.
type StatusJSON struct {
	Role       string  `json:"role"`
	Epoch      uint64  `json:"epoch"`
	LSN        uint64  `json:"lsn"`
	Generation uint64  `json:"generation"`
	LagSeconds float64 `json:"lagSeconds"`
	Parked     int     `json:"parked"`
	Primary    string  `json:"primary,omitempty"`
}

// Status summarises the node for probes and the admin API.
func (n *Node) Status() StatusJSON {
	return StatusJSON{
		Role:       n.Role().String(),
		Epoch:      n.Epoch(),
		LSN:        n.LastLSN(),
		Generation: n.handle.Generation(),
		LagSeconds: n.Lag().Seconds(),
		Parked:     len(n.Parked()),
		Primary:    n.cfg.PrimaryURL,
	}
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(n.Status())
}

func (n *Node) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if err := n.Promote(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(n.Status())
}

func (n *Node) handleDemote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	n.Demote(n.Epoch())
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(n.Status())
}
