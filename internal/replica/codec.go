// Package replica implements journal-shipping replication for MIDAS
// serving shards: a primary appends every committed maintenance batch
// to a durable replication log (store.RepLog) and streams it to warm
// followers, which re-apply the batches through their own snapshot
// pipeline and serve reads from atomically-swapped snapshots. Failover
// is epoch-fenced: promoting a follower bumps the epoch with a control
// record in the same log, and a deposed primary's stream is rejected
// and demotes itself.
//
// Replication ships results, not computations. Pattern maintenance is
// not reproducible from serialized state: swap decisions read engine
// internals that evolve across batches and are rebuilt — not restored
// — by LoadState (the incremental clustering, the carried
// approximation bound σ, the metric evaluator's sample). Each shipped
// record therefore carries the post-remap update AND the primary's
// post-apply pattern set; a follower applies the database delta
// mechanically (deterministic) and installs the shipped patterns
// verbatim (Engine.ApplyReplicated). The replicated state — database +
// patterns, exactly what SaveState captures — is then a deterministic
// function of the record stream, verified continuously by per-LSN
// fingerprints.
package replica

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"github.com/midas-graph/midas"
	"github.com/midas-graph/midas/graph"
)

// updatePayload is the wire form of one committed batch: the Δ- IDs,
// the Δ+ graphs in the text format (which carries each graph's ID, so
// the primary's post-remap IDs arrive verbatim), and the primary's
// post-apply pattern set, shipped as a result for verbatim install.
type updatePayload struct {
	Delete   []int  `json:"delete,omitempty"`
	Insert   string `json:"insert,omitempty"`
	Patterns string `json:"patterns"`
}

// EncodeUpdate serialises one committed batch: the update exactly as
// applied plus the pattern set the primary's maintenance decided. It
// must be called after the batch applied (the pipeline's OnApplied
// hook observes the post-remap update and the post-apply engine), so a
// follower installs the same IDs and the same patterns.
func EncodeUpdate(u graph.Update, patterns []*graph.Graph) ([]byte, error) {
	p := updatePayload{Delete: u.Delete, Patterns: graph.Marshal(patterns)}
	if len(u.Insert) > 0 {
		p.Insert = graph.Marshal(u.Insert)
	}
	return json.Marshal(p)
}

// DecodeUpdate parses a payload encoded by EncodeUpdate.
func DecodeUpdate(b []byte) (graph.Update, []*graph.Graph, error) {
	var p updatePayload
	if err := json.Unmarshal(b, &p); err != nil {
		return graph.Update{}, nil, fmt.Errorf("replica: decoding update payload: %w", err)
	}
	u := graph.Update{Delete: p.Delete}
	if p.Insert != "" {
		ins, err := graph.Unmarshal(p.Insert)
		if err != nil {
			return graph.Update{}, nil, fmt.Errorf("replica: decoding insert graphs: %w", err)
		}
		u.Insert = ins
	}
	patterns, err := graph.Unmarshal(p.Patterns)
	if err != nil {
		return graph.Update{}, nil, fmt.Errorf("replica: decoding pattern set: %w", err)
	}
	return u, patterns, nil
}

// Fingerprint is the canonical state fingerprint: FNV-64a over the
// engine's serialised state (database + patterns + options, no
// metadata). The primary stamps it on every shipped record after
// applying the batch; the follower recomputes it after re-applying and
// any mismatch is divergence — the replica quarantines its state and
// re-bootstraps from the primary's bundle. SaveState is deterministic
// (ordered sections, canonical JSON header), so equal engine state
// means equal fingerprint on both sides.
func Fingerprint(eng *midas.Engine, opts midas.Options) (uint64, error) {
	h := fnv.New64a()
	if err := midas.SaveState(h, eng, opts); err != nil {
		return 0, fmt.Errorf("replica: fingerprinting state: %w", err)
	}
	return h.Sum64(), nil
}

// Bundle metadata keys: the replication position a saved bundle
// reflects. A restart — primary or follower alike — loads the bundle
// and replays its replication log's suffix past this LSN.
const (
	metaLSN   = "replicaLSN"
	metaEpoch = "replicaEpoch"
)

func positionMeta(lsn, epoch uint64) map[string]string {
	return map[string]string{
		metaLSN:   strconv.FormatUint(lsn, 10),
		metaEpoch: strconv.FormatUint(epoch, 10),
	}
}

func positionFromMeta(meta map[string]string) (lsn, epoch uint64) {
	lsn, _ = strconv.ParseUint(meta[metaLSN], 10, 64)
	epoch, _ = strconv.ParseUint(meta[metaEpoch], 10, 64)
	return lsn, epoch
}

// bundlePosition extracts the replication position from raw bundle
// bytes without rebuilding an engine: the bundle's second line is its
// JSON header, whose meta map carries the position. Bytes that are not
// a bundle (or carry no position) report position zero.
func bundlePosition(b []byte) (lsn, epoch uint64) {
	s := string(b)
	nl := strings.IndexByte(s, '\n')
	if nl < 0 {
		return 0, 0
	}
	rest := s[nl+1:]
	nl2 := strings.IndexByte(rest, '\n')
	if nl2 < 0 {
		return 0, 0
	}
	var hdr struct {
		Meta map[string]string `json:"meta"`
	}
	if err := json.Unmarshal([]byte(rest[:nl2]), &hdr); err != nil {
		return 0, 0
	}
	return positionFromMeta(hdr.Meta)
}
