package replica

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/midas-graph/midas"
	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/backoff"
	"github.com/midas-graph/midas/internal/snapshot"
	"github.com/midas-graph/midas/internal/store"
	"github.com/midas-graph/midas/internal/telemetry"
	"github.com/midas-graph/midas/internal/vfs"
)

// Role is a node's current replication role.
type Role int32

const (
	// RolePrimary accepts client writes and ships its log to peers.
	RolePrimary Role = iota
	// RoleFollower re-applies the primary's stream and serves reads.
	RoleFollower
)

func (r Role) String() string {
	if r == RolePrimary {
		return "primary"
	}
	return "follower"
}

// notPrimaryError rejects client writes on a node that is not the
// primary. It carries its HTTP mapping (503 — the client should retry
// against the primary) so the panel layer can translate it without
// importing this package.
type notPrimaryError struct{}

func (notPrimaryError) Error() string   { return "replica: not the primary; writes are fenced" }
func (notPrimaryError) HTTPStatus() int { return http.StatusServiceUnavailable }

// ErrNotPrimary is returned to writes submitted to a follower or a
// demoted primary.
var ErrNotPrimary error = notPrimaryError{}

// ErrDiverged marks a follower whose recomputed state fingerprint
// disagreed with the primary's for the same LSN. The follower
// quarantines its state and re-bootstraps; the record's source sees
// this error.
var ErrDiverged = errors.New("replica: state fingerprint diverged from primary")

// ParkedRecord is a committed-but-unshipped log record stranded by a
// demotion: the old primary accepted it, no follower acknowledged it,
// and the new epoch's history does not contain it. It is parked —
// surfaced for operators to replay or discard — never silently
// dropped.
type ParkedRecord struct {
	LSN   uint64
	Epoch uint64
	Name  string
	At    time.Time
}

// Config parameterises a Node.
type Config struct {
	// FS is the filesystem seam (vfs.OS in production).
	FS vfs.FS
	// Dir holds the node's durable state: state.bundle (+ .prev/.tmp
	// generations) and replication.log.
	Dir string
	// Options are the engine options; they seed every deterministic RNG
	// and are embedded in fingerprints.
	Options midas.Options
	// Bootstrap builds the initial engine when a primary cold-starts
	// with no bundle. Followers bootstrap from the upstream bundle
	// instead.
	Bootstrap func() (*midas.Engine, error)
	// Upstream, when set, starts the node as a follower of that peer.
	Upstream Transport
	// PrimaryURL is the advertised primary address, surfaced to clients
	// whose writes are rejected (X-Midas-Primary) and in status.
	PrimaryURL string
	// Peers are the followers a primary ships to, keyed by a stable
	// name (used for backoff jitter and metrics).
	Peers map[string]Transport

	// QueueSize, MaxAttempts and Backoff parameterise the node's
	// snapshot pipeline exactly as panel.Server's knobs do.
	QueueSize   int
	MaxAttempts int
	Backoff     time.Duration
	// ShipBackoff seeds the replication loops' retry schedule
	// (capped exponential with deterministic jitter; default 50ms).
	ShipBackoff time.Duration
	// PollInterval is the follower's pull cadence when the push stream
	// is quiet (default 250ms).
	PollInterval time.Duration
	// ShipMax bounds records per push or pull (default 64).
	ShipMax int

	// RenderSVG pre-renders pattern views in published snapshots.
	RenderSVG func(*graph.Graph) string
	// Telemetry registers the node's metric families when set.
	Telemetry *telemetry.Registry
	// Logf receives diagnostic lines.
	Logf func(format string, args ...interface{})
}

// Node is one replicated serving stack: the engine, its snapshot
// handle and maintenance pipeline, and the replication log, in either
// role. The handle outlives engine swaps (its generation counter is
// monotonic), so readers never observe a reset even across follower
// re-bootstraps.
type Node struct {
	cfg  Config
	fsys vfs.FS

	bundlePath string
	logPath    string

	handle *snapshot.Handle

	// mu guards the swappable pointers (eng, pipe, log) and parked.
	mu   sync.RWMutex
	eng  *midas.Engine
	pipe *snapshot.Pipeline
	log  *store.RepLog

	// applyMu serialises everything that mutates engine state outside
	// the pipeline's own goroutine: record installs, promotion,
	// re-bootstrap. While held, the pipeline is quiesced between
	// submissions, so reading the engine (fingerprints, bundle saves)
	// is race-free.
	applyMu sync.Mutex

	role        atomic.Int32
	epoch       atomic.Uint64
	lastApplied atomic.Uint64
	// lastSyncNanos is the last instant a follower knew it was caught
	// up with (or had just received from) its upstream; Lag measures
	// from it. 0 until first contact.
	lastSyncNanos atomic.Int64

	parked []ParkedRecord

	// shipper ack positions, keyed by peer name.
	ackMu sync.Mutex
	acked map[string]uint64

	runCtx  context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	started bool

	tel *nodeTelemetry
}

// NewNode builds a node; call Start to bootstrap and begin serving.
func NewNode(cfg Config) *Node {
	if cfg.FS == nil {
		cfg.FS = vfs.OS
	}
	if cfg.ShipBackoff <= 0 {
		cfg.ShipBackoff = 50 * time.Millisecond
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 250 * time.Millisecond
	}
	if cfg.ShipMax <= 0 {
		cfg.ShipMax = 64
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := &Node{
		cfg:        cfg,
		fsys:       cfg.FS,
		bundlePath: filepath.Join(cfg.Dir, "state.bundle"),
		logPath:    filepath.Join(cfg.Dir, "replication.log"),
		handle:     snapshot.NewHandle(),
		acked:      make(map[string]uint64),
		runCtx:     ctx,
		cancel:     cancel,
	}
	if cfg.Upstream != nil {
		n.role.Store(int32(RoleFollower))
	}
	n.setTelemetry(cfg.Telemetry)
	return n
}

func (n *Node) logf(format string, args ...interface{}) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// Role returns the node's current role.
func (n *Node) Role() Role { return Role(n.role.Load()) }

// Epoch returns the node's current primacy epoch.
func (n *Node) Epoch() uint64 { return n.epoch.Load() }

// LastLSN returns the node's applied replication position.
func (n *Node) LastLSN() uint64 { return n.lastApplied.Load() }

// FirstLSN returns the earliest LSN retained in the node's log — the
// bootstrap seed position on a follower, 1 on an uncompacted primary.
// The log pointer is copied out under mu so the (log-internal) read
// does not run inside the node's lock.
func (n *Node) FirstLSN() uint64 {
	n.mu.RLock()
	log := n.log
	n.mu.RUnlock()
	if log == nil {
		return 0
	}
	return log.FirstLSN()
}

// Lag is the follower's replication lag: how long since it last knew
// itself in sync with its upstream. A primary (or a follower that has
// never reached its upstream) reports 0.
func (n *Node) Lag() time.Duration {
	ns := n.lastSyncNanos.Load()
	if ns == 0 || n.Role() == RolePrimary {
		return 0
	}
	d := time.Since(time.Unix(0, ns))
	if d < 0 {
		return 0
	}
	return d
}

// PrimaryURL is the advertised primary address for write redirection.
func (n *Node) PrimaryURL() string { return n.cfg.PrimaryURL }

// Handle returns the snapshot generation pointer read handlers load.
func (n *Node) Handle() *snapshot.Handle { return n.handle }

// Pipeline returns the node's current maintenance pipeline. The
// pointer changes across follower re-bootstraps; callers must re-fetch
// rather than cache.
func (n *Node) Pipeline() *snapshot.Pipeline {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.pipe
}

// Parked returns the records stranded by demotions, oldest first.
func (n *Node) Parked() []ParkedRecord {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]ParkedRecord, len(n.parked))
	copy(out, n.parked)
	return out
}

// Start bootstraps the node — load or fetch state, open the
// replication log, replay the unapplied suffix, publish the first
// snapshot — and launches the replication goroutines. ctx bounds only
// the bootstrap (a follower's bundle fetch); the running node is
// stopped with Stop.
func (n *Node) Start(ctx context.Context) error {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return nil
	}
	n.started = true
	n.mu.Unlock()

	eng, log, lsn, epoch, err := n.bootstrap(ctx)
	if err != nil {
		return err
	}
	pipe := n.buildPipeline(eng, log)

	n.mu.Lock()
	n.eng, n.log, n.pipe = eng, log, pipe
	n.mu.Unlock()
	n.lastApplied.Store(lsn)
	n.epoch.Store(epoch)

	n.handle.Publish(snapshot.Build(eng, snapshot.BuildOptions{
		RenderSVG: n.cfg.RenderSVG,
	}))
	pipe.Start()

	if n.cfg.Upstream != nil {
		n.wg.Add(1)
		go n.pullLoop()
	}
	for name, tr := range n.cfg.Peers {
		n.wg.Add(1)
		go n.shipLoop(name, tr)
	}
	return nil
}

// Stop terminates the replication goroutines and drains the pipeline.
func (n *Node) Stop(ctx context.Context) error {
	n.cancel()
	n.wg.Wait()
	n.mu.RLock()
	pipe, log := n.pipe, n.log
	n.mu.RUnlock()
	var err error
	if pipe != nil {
		err = pipe.Stop(ctx)
	}
	if log != nil {
		if cerr := log.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// bootstrap restores or fetches the node's state and returns the
// engine, open log and applied position. The sequence is identical for
// crash recovery and first start:
//
//  1. open the replication log (salvaging a torn tail),
//  2. load the newest valid bundle generation (salvage ladder), or —
//     follower with no local state — fetch and install the upstream's
//     bundle,
//  3. replay the log suffix past the bundle's position through the
//     engine, verifying each record's fingerprint.
func (n *Node) bootstrap(ctx context.Context) (*midas.Engine, *store.RepLog, uint64, uint64, error) {
	log, err := store.OpenRepLogFS(n.fsys, n.logPath)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	if s := log.Salvage(); s.TailBytes > 0 {
		n.logf("replica: salvaged replication log: %d torn bytes quarantined to %s", s.TailBytes, s.QuarantinePath)
	}

	data, _, lerr := store.LoadBundle(n.fsys, n.bundlePath, midas.VerifyState)
	switch {
	case lerr == nil:
		eng, meta, err := midas.LoadStateMeta(byteReader(data))
		if err != nil {
			log.Close()
			return nil, nil, 0, 0, fmt.Errorf("replica: loading bundle: %w", err)
		}
		lsn, epoch := positionFromMeta(meta)
		lsn, epoch, err = n.replaySuffix(eng, log, lsn, epoch)
		if err != nil {
			log.Close()
			return nil, nil, 0, 0, err
		}
		return eng, log, lsn, epoch, nil

	case n.cfg.Upstream != nil:
		// Cold follower: no usable local bundle — install the
		// upstream's, then catch up over the stream.
		eng, lsn, epoch, err := n.installUpstreamBundle(ctx, &log)
		if err != nil {
			log.Close()
			return nil, nil, 0, 0, err
		}
		lsn, epoch, err = n.replaySuffix(eng, log, lsn, epoch)
		if err != nil {
			log.Close()
			return nil, nil, 0, 0, err
		}
		return eng, log, lsn, epoch, nil

	default:
		// Cold primary: build the initial engine and persist the first
		// bundle so followers can bootstrap from us immediately.
		if n.cfg.Bootstrap == nil {
			log.Close()
			return nil, nil, 0, 0, fmt.Errorf("replica: no bundle (%w) and no Bootstrap configured", lerr)
		}
		eng, err := n.cfg.Bootstrap()
		if err != nil {
			log.Close()
			return nil, nil, 0, 0, err
		}
		lsn, epoch := log.LastLSN(), log.Epoch()
		if err := n.saveBundle(eng, lsn, epoch); err != nil {
			log.Close()
			return nil, nil, 0, 0, err
		}
		return eng, log, lsn, epoch, nil
	}
}

// installUpstreamBundle fetches the upstream's bundle, persists it
// verbatim as the local bundle and seeds a fresh replication log at its
// position. A pre-existing local log that conflicts with the fetched
// position is quarantined. The fetch retries with capped backoff until
// ctx is done: a warm standby routinely boots before (or during) its
// primary's restart, and giving up would demote "start the follower
// first" into an ordering constraint.
func (n *Node) installUpstreamBundle(ctx context.Context, logp **store.RepLog) (*midas.Engine, uint64, uint64, error) {
	var br BundleResponse
	for attempt := 1; ; attempt++ {
		var err error
		br, err = n.cfg.Upstream.Bundle(ctx)
		if err == nil {
			break
		}
		if attempt <= 3 || attempt%25 == 0 {
			n.logf("replica: upstream bundle fetch attempt %d: %v; retrying", attempt, err)
		}
		if !sleepCtx(ctx, backoff.Delay(n.cfg.ShipBackoff, "bootstrap", attempt)) {
			return nil, 0, 0, fmt.Errorf("replica: fetching upstream bundle: %w", err)
		}
	}
	eng, meta, err := midas.LoadStateMeta(byteReader(br.Data))
	if err != nil {
		return nil, 0, 0, fmt.Errorf("replica: upstream bundle: %w", err)
	}
	lsn, epoch := positionFromMeta(meta)
	if err := store.SaveBundle(n.fsys, n.bundlePath, func(w io.Writer) error {
		_, err := w.Write(br.Data)
		return err
	}); err != nil {
		return nil, 0, 0, fmt.Errorf("replica: installing upstream bundle: %w", err)
	}
	log := *logp
	if log.LastLSN() != 0 && log.LastLSN() < lsn {
		// The local log predates the fetched bundle (e.g. it was lost
		// and recreated upstream, or compacted away): it cannot seed a
		// replay, so quarantine and restart it at the bundle position.
		log.Close()
		if err := n.fsys.Rename(n.logPath, n.logPath+".stale"); err != nil {
			return nil, 0, 0, fmt.Errorf("replica: quarantining stale log: %w", err)
		}
		if log, err = store.OpenRepLogFS(n.fsys, n.logPath); err != nil {
			return nil, 0, 0, err
		}
		*logp = log
	}
	if log.LastLSN() == 0 && lsn > 0 {
		if err := log.Seed(lsn, epoch); err != nil {
			return nil, 0, 0, err
		}
	}
	return eng, lsn, epoch, nil
}

// replaySuffix applies the log records past the bundle's position
// directly to the engine (the pipeline is not running yet), verifying
// each data record's fingerprint. This is the one recovery path both
// roles share: a crash anywhere between a log append and a bundle save
// lands here and converges.
func (n *Node) replaySuffix(eng *midas.Engine, log *store.RepLog, lsn, epoch uint64) (uint64, uint64, error) {
	if log.LastLSN() <= lsn {
		// Log at or behind the bundle (compacted, or bundle saved after
		// the final append). Nothing to replay.
		if log.LastLSN() == 0 && lsn > 0 {
			if err := log.Seed(lsn, epoch); err != nil {
				return 0, 0, err
			}
		}
		if e := log.Epoch(); e > epoch {
			epoch = e
		}
		return lsn, epoch, nil
	}
	recs, err := log.ReadFrom(lsn, 0)
	if err != nil {
		return 0, 0, fmt.Errorf("replica: reading replay suffix after LSN %d: %w", lsn, err)
	}
	for _, rec := range recs {
		if rec.Kind == store.RecEpoch {
			lsn, epoch = rec.LSN, rec.Epoch
			continue
		}
		u, patterns, err := DecodeUpdate(rec.Data)
		if err != nil {
			return 0, 0, fmt.Errorf("replica: replaying LSN %d: %w", rec.LSN, err)
		}
		if _, err := eng.ApplyReplicated(context.Background(), u, patterns); err != nil {
			return 0, 0, fmt.Errorf("replica: replaying LSN %d: %w", rec.LSN, err)
		}
		fpr, err := Fingerprint(eng, n.cfg.Options)
		if err != nil {
			return 0, 0, err
		}
		if fpr != rec.Fingerprint {
			return 0, 0, fmt.Errorf("replica: replay of LSN %d produced fingerprint %016x, log says %016x: %w",
				rec.LSN, fpr, rec.Fingerprint, ErrDiverged)
		}
		lsn, epoch = rec.LSN, rec.Epoch
	}
	// Roll the bundle forward to the replayed position, so the next
	// restart skips the replay and peers bootstrapping from us see
	// current state.
	if err := n.saveBundle(eng, lsn, epoch); err != nil {
		return 0, 0, err
	}
	n.logf("replica: replayed %d log records to LSN %d", len(recs), lsn)
	return lsn, epoch, nil
}

// buildPipeline constructs the node's maintenance pipeline over eng,
// publishing through the node's one handle. The commit slot
// (OnApplied) captures eng and log so a later swap cannot cross wires.
func (n *Node) buildPipeline(eng *midas.Engine, log *store.RepLog) *snapshot.Pipeline {
	cfg := snapshot.Config{
		QueueSize:   n.cfg.QueueSize,
		MaxAttempts: n.cfg.MaxAttempts,
		Backoff:     n.cfg.Backoff,
		RenderSVG:   n.cfg.RenderSVG,
		Logf:        n.cfg.Logf,
		Admit: func(b snapshot.Batch) error {
			if b.FromReplica {
				return nil
			}
			if n.Role() != RolePrimary {
				return ErrNotPrimary
			}
			return nil
		},
		OnApplied: func(b snapshot.Batch, rep midas.MaintenanceReport) error {
			if b.FromReplica {
				// Follower installs persist via the batch's After hook,
				// keyed to the shipped record's exact position.
				return nil
			}
			return n.commitPrimary(eng, log, b)
		},
	}
	return snapshot.NewPipeline(eng, n.handle, cfg)
}

// commitPrimary is the primary's commit slot, on the pipeline
// goroutine after a client batch applied: fingerprint the post-apply
// state, append the post-remap update to the replication log, persist
// the bundle at the new position. Idempotent across After-retries —
// the log append dedups the tail batch, the bundle save is atomic.
func (n *Node) commitPrimary(eng *midas.Engine, log *store.RepLog, b snapshot.Batch) error {
	fpr, err := Fingerprint(eng, n.cfg.Options)
	if err != nil {
		return err
	}
	data, err := EncodeUpdate(b.Update, eng.Patterns())
	if err != nil {
		return err
	}
	lsn, err := log.Append(b.Name, fpr, data)
	if err != nil {
		return err
	}
	if err := n.saveBundle(eng, lsn, log.Epoch()); err != nil {
		return err
	}
	n.lastApplied.Store(lsn)
	n.epoch.Store(log.Epoch())
	if n.tel != nil {
		n.tel.committed.Inc()
	}
	return nil
}

// saveBundle persists the engine state with the replication position
// in the bundle metadata, through the generational scheme (tmp
// roll-forward, prev rollback).
func (n *Node) saveBundle(eng *midas.Engine, lsn, epoch uint64) error {
	return store.SaveBundle(n.fsys, n.bundlePath, func(w io.Writer) error {
		return midas.SaveStateMeta(w, eng, n.cfg.Options, positionMeta(lsn, epoch))
	})
}

// BundleBytes returns the newest valid persisted bundle and the
// replication position it reflects — what a follower installs to
// bootstrap.
func (n *Node) BundleBytes() ([]byte, uint64, uint64, error) {
	data, _, err := store.LoadBundle(n.fsys, n.bundlePath, midas.VerifyState)
	if err != nil {
		return nil, 0, 0, err
	}
	lsn, epoch := bundlePosition(data)
	return data, lsn, epoch, nil
}

// ReadRecords serves the node's log to pulling peers.
func (n *Node) ReadRecords(after uint64, max int) ([]store.RepRecord, error) {
	n.mu.RLock()
	log := n.log
	n.mu.RUnlock()
	if log == nil {
		return nil, nil
	}
	return log.ReadFrom(after, max)
}

// Promote turns a follower into the primary: it quiesces installs,
// bumps the epoch with a control record in its own log (fencing every
// older primary), persists the new position and starts admitting
// writes. Idempotent on an existing primary.
func (n *Node) Promote() error {
	n.applyMu.Lock()
	defer n.applyMu.Unlock()
	if n.Role() == RolePrimary {
		return nil
	}
	n.mu.RLock()
	eng, log := n.eng, n.log
	n.mu.RUnlock()
	epoch, lsn, err := log.BumpEpoch()
	if err != nil {
		return err
	}
	if err := n.saveBundle(eng, lsn, epoch); err != nil {
		return err
	}
	n.lastApplied.Store(lsn)
	n.epoch.Store(epoch)
	n.role.Store(int32(RolePrimary))
	if n.tel != nil {
		n.tel.promotions.Inc()
	}
	n.logf("replica: promoted to primary at epoch %d (LSN %d)", epoch, lsn)
	return nil
}

// Demote steps a primary down after seeing a higher epoch (or by
// operator request): writes are fenced immediately, and every
// committed record no follower acknowledged is parked — visible, not
// silently dropped — because the new epoch's history will never
// contain it.
func (n *Node) Demote(seenEpoch uint64) {
	if n.Role() != RolePrimary {
		return
	}
	n.role.Store(int32(RoleFollower))
	maxAcked := uint64(0)
	n.ackMu.Lock()
	for _, a := range n.acked {
		if a > maxAcked {
			maxAcked = a
		}
	}
	n.ackMu.Unlock()
	n.mu.Lock()
	log := n.log
	n.mu.Unlock()
	var stranded []store.RepRecord
	if log != nil {
		if recs, err := log.ReadFrom(maxAcked, 0); err == nil {
			stranded = recs
		}
	}
	now := time.Now()
	n.mu.Lock()
	for _, rec := range stranded {
		if rec.Kind != store.RecData {
			continue
		}
		n.parked = append(n.parked, ParkedRecord{LSN: rec.LSN, Epoch: rec.Epoch, Name: rec.Name, At: now})
	}
	parked := len(n.parked)
	n.mu.Unlock()
	if n.tel != nil {
		n.tel.demotions.Inc()
	}
	n.logf("replica: demoted (saw epoch %d > %d); %d unshipped record(s) parked", seenEpoch, n.Epoch(), parked)
}

func byteReader(b []byte) io.Reader { return bytes.NewReader(b) }
