package replica

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/midas-graph/midas/graph"
	"github.com/midas-graph/midas/internal/dataset"
	"github.com/midas-graph/midas/internal/vfs"
)

// TestPanelOverReplica serves the full panel route table over a
// replicated pair: follower reads answer lock-free with the replica
// headers, follower writes are fenced with the redirect hints, and
// /readyz details the journal position.
func TestPanelOverReplica(t *testing.T) {
	psim, fsim := vfs.NewSim(), vfs.NewSim()
	p := startNode(t, Config{FS: psim, Dir: "p", Options: testOptions(), Bootstrap: testBootstrap})
	psrv := httptest.NewServer(p.Handler())
	defer psrv.Close()

	f := startNode(t, Config{FS: fsim, Dir: "f", Options: testOptions(),
		Upstream:     &HTTPTransport{Base: psrv.URL},
		PollInterval: 5 * time.Millisecond, PrimaryURL: psrv.URL})

	ppanel := httptest.NewServer(p.Panel().Handler())
	defer ppanel.Close()
	fpanel := httptest.NewServer(f.Panel().Handler())
	defer fpanel.Close()

	// A write through the primary's panel commits to the log and
	// replicates.
	body := graph.Marshal(dataset.BoronicEsters().Generate(2, 0, 5))
	resp, err := http.Post(ppanel.URL+"/maintain", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("primary panel write = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Midas-Generation"); got == "" {
		t.Fatal("no generation header on primary write")
	}
	waitConverged(t, f, 1)

	// Follower reads: lock-free snapshot with the replica headers.
	resp, err = http.Get(fpanel.URL + "/patterns")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower read = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Midas-Replica"); got != "follower" {
		t.Fatalf("X-Midas-Replica = %q, want follower", got)
	}
	if got := resp.Header.Get("X-Midas-Replication-Lag"); got == "" {
		t.Fatal("no replication-lag header on follower read")
	}

	// Follower writes: fenced with 503 + Retry-After + the primary's
	// address.
	resp, err = http.Post(fpanel.URL+"/maintain", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower write = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("fenced write carries no Retry-After")
	}
	if got := resp.Header.Get("X-Midas-Primary"); got != psrv.URL {
		t.Fatalf("X-Midas-Primary = %q, want %q", got, psrv.URL)
	}

	// /readyz details the journal position, generation and role.
	resp, err = http.Get(fpanel.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 512)
	nread, _ := resp.Body.Read(b)
	resp.Body.Close()
	ready := string(b[:nread])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower readyz = %d:\n%s", resp.StatusCode, ready)
	}
	for _, want := range []string{"lsn=1", "generation=", "role=follower", "lag="} {
		if !strings.Contains(ready, want) {
			t.Fatalf("readyz missing %q:\n%s", want, ready)
		}
	}

	// Promotion flips the served role without restarting the panel.
	if err := f.Promote(); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(fpanel.URL + "/patterns")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Midas-Replica"); got != "primary" {
		t.Fatalf("X-Midas-Replica after promote = %q, want primary", got)
	}
	resp, err = http.Post(fpanel.URL+"/maintain?delete=0", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("write after promote = %d", resp.StatusCode)
	}
}
