package replica

import "github.com/midas-graph/midas/internal/telemetry"

// nodeTelemetry holds the replication metric families. nil until
// telemetry is installed; every record site nil-checks.
type nodeTelemetry struct {
	committed    *telemetry.Counter // midas_replica_commits_total
	shipped      *telemetry.Counter // midas_replica_records_shipped_total
	installed    *telemetry.Counter // midas_replica_records_installed_total
	shipErrors   *telemetry.Counter // midas_replica_ship_errors_total
	pullErrors   *telemetry.Counter // midas_replica_pull_errors_total
	fenced       *telemetry.Counter // midas_replica_fenced_pushes_total
	divergences  *telemetry.Counter // midas_replica_divergences_total
	rebootstraps *telemetry.Counter // midas_replica_rebootstraps_total
	promotions   *telemetry.Counter // midas_replica_promotions_total
	demotions    *telemetry.Counter // midas_replica_demotions_total
}

// setTelemetry registers the replication families on reg: role, epoch
// and position gauges (lock-free atomic reads), plus the event
// counters.
func (n *Node) setTelemetry(reg *telemetry.Registry) {
	if reg == nil || reg == telemetry.Nop {
		return
	}
	reg.NewGaugeFunc("midas_replica_role",
		"Replication role of this node (0 = primary, 1 = follower).",
		func() float64 { return float64(n.role.Load()) })
	reg.NewGaugeFunc("midas_replica_epoch",
		"Current primacy epoch.",
		func() float64 { return float64(n.Epoch()) })
	reg.NewGaugeFunc("midas_replica_lsn",
		"Applied replication log position.",
		func() float64 { return float64(n.LastLSN()) })
	reg.NewGaugeFunc("midas_replica_lag_seconds",
		"Follower replication lag: seconds since last confirmed sync with the upstream (0 on a primary).",
		func() float64 { return n.Lag().Seconds() })
	reg.NewGaugeFunc("midas_replica_parked",
		"Committed-but-unshipped records parked by demotions.",
		func() float64 { return float64(len(n.Parked())) })
	n.tel = &nodeTelemetry{
		committed: reg.NewCounter("midas_replica_commits_total",
			"Client batches committed to the replication log by this primary."),
		shipped: reg.NewCounter("midas_replica_records_shipped_total",
			"Records pushed to followers and acknowledged."),
		installed: reg.NewCounter("midas_replica_records_installed_total",
			"Replicated records durably installed and applied on this follower."),
		shipErrors: reg.NewCounter("midas_replica_ship_errors_total",
			"Push attempts that failed in transport."),
		pullErrors: reg.NewCounter("midas_replica_pull_errors_total",
			"Pull attempts that failed in transport."),
		fenced: reg.NewCounter("midas_replica_fenced_pushes_total",
			"Pushes rejected by epoch fencing."),
		divergences: reg.NewCounter("midas_replica_divergences_total",
			"Per-LSN fingerprint mismatches detected against the primary."),
		rebootstraps: reg.NewCounter("midas_replica_rebootstraps_total",
			"Follower state re-installs from the upstream bundle."),
		promotions: reg.NewCounter("midas_replica_promotions_total",
			"Follower-to-primary promotions (epoch bumps)."),
		demotions: reg.NewCounter("midas_replica_demotions_total",
			"Primary demotions after observing a higher epoch."),
	}
}
